#!/usr/bin/env bash
# Executable documentation: extracts every line starting with "$ " inside
# fenced code blocks of README.md and EXPERIMENTS.md and runs them, in
# document order, from the repository root. CI runs this job on every
# change, so a renamed scenario, dropped flag or stale example fails the
# build instead of silently rotting in the docs.
#
# Convention: inside a ``` fence, "$ cmd" is a command this script runs
# verbatim; lines without the prefix (comments, sample output) are prose.
set -euo pipefail
cd "$(dirname "$0")/.."

extract() {
  awk '
    /^```/ { fence = !fence; next }
    fence && /^\$ / { print substr($0, 3) }
  ' "$1"
}

status=0
for doc in README.md EXPERIMENTS.md; do
  echo "==== $doc"
  mapfile -t cmds < <(extract "$doc")
  if [ "${#cmds[@]}" -eq 0 ]; then
    echo "error: no \$-prefixed commands found in $doc" >&2
    exit 1
  fi
  for cmd in "${cmds[@]}"; do
    echo "---- \$ $cmd"
    if ! eval "$cmd" </dev/null; then
      echo "FAILED: $cmd (from $doc)" >&2
      status=1
    fi
  done
done
[ "$status" -eq 0 ] && echo "docs-smoke: every documented command succeeded"
exit "$status"
