#!/usr/bin/env python3
"""Compare a fresh bench_micro run against the committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json
        [--threshold 2.0] [--noise-floor-ns 1500] [--report FILE]

Reads the machine-readable perf records bench_micro writes (one entry per
benchmark with ns/op) and reports the per-benchmark ratio
current/baseline. Exit status 1 when any benchmark regressed by more than
``--threshold`` x, so CI can gate on it.

Design choices, so the gate stays useful rather than noisy:

*  The threshold is deliberately loose (2x by default): CI machines are
   shared and jittery, and the committed baseline usually comes from a
   different box. The gate exists to catch algorithmic regressions
   (accidental O(N^2), a dropped fast path), which show up as integer
   multiples, not percentages.
*  Benchmarks under the noise floor (default 1500 ns/op in *both* runs)
   are reported but never gated: sub-microsecond-to-low-microsecond
   timings swing whole multiples on loaded machines (measured: a 550 ns
   benchmark hitting 1.26 us mid-suite on an otherwise idle box).
*  A benchmark present in the baseline but missing from the current run
   fails the gate: losing coverage silently is itself a regression. New
   benchmarks are reported and pass (the baseline refresh rides the same
   change).
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict[str, float]:
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for entry in doc.get("benchmarks", []):
        out[entry["name"]] = float(entry["ns_per_op"])
    if not out:
        sys.exit(f"error: no benchmark entries in {path}")
    return out


def fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="fail when current/baseline exceeds this (default 2.0)")
    ap.add_argument("--noise-floor-ns", type=float, default=1500.0,
                    help="never gate benchmarks under this ns/op (default 1500)")
    ap.add_argument("--report", default=None,
                    help="also write the comparison table to this file")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    rows = []
    regressions = []
    missing = []
    for name, base_ns in sorted(base.items()):
        if name not in cur:
            missing.append(name)
            rows.append((name, base_ns, None, None, "MISSING"))
            continue
        cur_ns = cur[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        noisy = base_ns < args.noise_floor_ns and cur_ns < args.noise_floor_ns
        if ratio > args.threshold and not noisy:
            verdict = "REGRESSED"
            regressions.append(name)
        elif ratio > args.threshold:
            verdict = "noisy (under floor)"
        elif ratio < 1.0 / args.threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append((name, base_ns, cur_ns, ratio, verdict))
    for name in sorted(set(cur) - set(base)):
        rows.append((name, None, cur[name], None, "new"))

    width = max(len(r[0]) for r in rows)
    lines = [f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  "
             f"{'ratio':>6}  verdict"]
    for name, base_ns, cur_ns, ratio, verdict in rows:
        lines.append(
            f"{name:<{width}}  "
            f"{fmt_ns(base_ns) if base_ns is not None else '-':>10}  "
            f"{fmt_ns(cur_ns) if cur_ns is not None else '-':>10}  "
            f"{f'{ratio:.2f}x' if ratio is not None else '-':>6}  {verdict}")
    lines.append("")
    if regressions or missing:
        lines.append(f"FAIL: {len(regressions)} regression(s) beyond "
                     f"{args.threshold}x, {len(missing)} missing benchmark(s)")
    else:
        lines.append(f"OK: no regression beyond {args.threshold}x "
                     f"(noise floor {args.noise_floor_ns:.0f}ns)")
    text = "\n".join(lines) + "\n"
    sys.stdout.write(text)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(text)
    return 1 if regressions or missing else 0


if __name__ == "__main__":
    sys.exit(main())
