// Heterogeneous cluster: exercises the §13 generalizations together —
// uniform machines (sites with different computing powers), the preemptive
// local scheduler, and data-volume-decorated arcs with finite link
// throughput. Models a small edge/backbone deployment: slow edge sites
// where jobs arrive, fast backbone sites one hop away.
#include <iostream>

#include "core/rtds_system.hpp"
#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace rtds;

namespace {

/// 4 slow edge sites (power 1) in a ring, each uplinked to one of 2 fast
/// backbone sites (power `backbone_power`) which are interconnected.
Topology make_cluster(double backbone_power) {
  Topology topo;
  const SiteId e0 = topo.add_site(1.0), e1 = topo.add_site(1.0);
  const SiteId e2 = topo.add_site(1.0), e3 = topo.add_site(1.0);
  const SiteId b0 = topo.add_site(backbone_power);
  const SiteId b1 = topo.add_site(backbone_power);
  const double throughput = 50.0;  // data units per time unit
  topo.add_link(e0, e1, 0.3, throughput);
  topo.add_link(e1, e2, 0.3, throughput);
  topo.add_link(e2, e3, 0.3, throughput);
  topo.add_link(e3, e0, 0.3, throughput);
  topo.add_link(e0, b0, 0.1, throughput);
  topo.add_link(e1, b0, 0.1, throughput);
  topo.add_link(e2, b1, 0.1, throughput);
  topo.add_link(e3, b1, 0.1, throughput);
  topo.add_link(b0, b1, 0.05, throughput);
  return topo;
}

/// Pipeline job with data volumes on the arcs (ingest -> N workers ->
/// merge), the §13 "Communication Delays" decoration.
std::shared_ptr<Job> make_pipeline(JobId id, Time release, double laxity,
                                   Rng& rng) {
  auto job = std::make_shared<Job>();
  job->id = id;
  Dag& dag = job->dag;
  const TaskId ingest = dag.add_task(rng.uniform(2.0, 4.0), "ingest");
  const TaskId merge = dag.add_task(rng.uniform(2.0, 4.0), "merge");
  const int workers = static_cast<int>(rng.uniform_int(3, 6));
  for (int w = 0; w < workers; ++w) {
    const TaskId t = dag.add_task(rng.uniform(4.0, 9.0));
    dag.add_arc(ingest, t, rng.uniform(5.0, 30.0));   // data volume
    dag.add_arc(t, merge, rng.uniform(5.0, 30.0));
  }
  dag.finalize();
  job->release = release;
  job->deadline = release + laxity * critical_path_length(dag);
  return job;
}

RunMetrics run_with(Topology topo, const std::vector<JobArrival>& arrivals,
                    bool preemptive, bool account_volumes) {
  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;
  if (preemptive) cfg.node.sched.policy = AdmissionPolicy::kPreemptive;
  if (account_volumes) {
    cfg.node.mapper.account_data_volumes = true;
    cfg.node.mapper.link_throughput = 50.0;
  }
  RtdsSystem system(std::move(topo), cfg);
  system.run(arrivals);
  return system.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double backbone_power = flags.get_double("backbone-power", 3.0);
  const double rate = flags.get_double("rate", 0.03);
  const auto seed = flags.get_seed("seed", 42);
  flags.check_unused();

  Rng rng(seed);
  std::vector<JobArrival> arrivals;
  JobId next = 1;
  for (SiteId edge = 0; edge < 4; ++edge) {
    Rng site_rng = rng.split();
    Time t = 0.0;
    for (;;) {
      t += site_rng.exponential(rate);
      if (t >= 600.0) break;
      arrivals.push_back(
          {edge, make_pipeline(next++, t, site_rng.uniform(1.1, 1.8),
                               site_rng)});
    }
  }
  std::sort(arrivals.begin(), arrivals.end(), [](const auto& a, const auto& b) {
    return a.job->release < b.job->release;
  });

  std::cout << "heterogeneous cluster: 4 edge sites (power 1) + 2 backbone "
               "sites (power " << backbone_power << "), " << arrivals.size()
            << " pipeline jobs arriving at the edge\n\n";

  Table t({"configuration", "ratio%", "local", "remote"});
  struct Case {
    const char* name;
    double power;
    bool preemptive, volumes;
  };
  for (const Case c : {Case{"uniform powers (all 1.0)", 1.0, false, false},
                       Case{"fast backbone", backbone_power, false, false},
                       Case{"fast backbone + preemptive", backbone_power, true,
                            false},
                       Case{"fast backbone + data volumes", backbone_power,
                            false, true}}) {
    const auto m =
        run_with(make_cluster(c.power), arrivals, c.preemptive, c.volumes);
    t.add_row({c.name, Table::num(100.0 * m.guarantee_ratio(), 1),
               Table::num(std::size_t{m.accepted_local}),
               Table::num(std::size_t{m.accepted_remote})});
  }
  t.print(std::cout);
  std::cout << "\nFaster backbone sites absorb edge overflow (§13 uniform "
               "machines); volume accounting makes the mapper honest about "
               "transfer times and may trade acceptance for safety.\n";
  return 0;
}
