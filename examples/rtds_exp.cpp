// rtds_exp — list and run registered experiment scenarios and policies.
//
//   rtds_exp --list
//       names + descriptions of every sweep scenario, report, and
//       registered scheduler policy
//   rtds_exp --scenario=NAME [--jobs=N] [--replicates=R]
//            [--seeds=fixed|derived] [--sink=table|csv|jsonl] [--out=FILE]
//            [--verify]
//       run one sweep: trials fan out over N worker threads; aggregates
//       are bit-identical for any N (--verify re-runs serially and checks).
//       --seeds=derived gives every (grid point, replicate) its own
//       reproducible seed; --seeds=fixed (scenario default for the legacy
//       paper tables) reuses the scenario's fixed seed everywhere.
//   rtds_exp --report=NAME [--out=FILE]
//       print a report scenario (worked examples, protocol traces)
//   rtds_exp --policy=NAME [--describe] [--set key=value ...]
//            [condition flags] [--json] [--out=FILE]
//       run one registered policy over one generated condition and print
//       its metrics (--json: the RunMetrics::to_jsonl record instead of
//       the table). --set validates against the policy's ParamSchema
//       (unknown keys and bad values fail loudly with the schema).
//       --describe prints the schema instead of running. Condition flags:
//       --net --sites --rate --horizon --laxity-min --laxity-max
//       --delay-min --delay-max --min-tasks --max-tasks --seed.
//
// Open-system mode (src/load/, DESIGN.md §13):
//   --duration=T    switch from the closed batch to an open streamed run of
//                   length T. In --policy mode the rtds policy streams
//                   lazily (bounded memory) and reports steady-state
//                   windowed metrics; baselines run the duration prefix as
//                   a batch. In --scenario/--report mode the override is
//                   visible to duration-aware scenarios (e9_steady_state,
//                   e9_saturation) and bounds their run length.
//   --warmup=T --window=W
//                   steady-state measurement: trim completions before T,
//                   then tumble W-wide quantile windows (policy mode).
//   --workload-trace=FILE
//                   replay a saved arrival trace (rtds_cli gen-load /
//                   core/trace_io format) instead of generating arrivals.
//                   Validated against the topology's site count. Note:
//                   --trace=FILE is unrelated — it *writes* obs events.
//
// Observability (scenario and policy modes, DESIGN.md §11):
//   --trace=FILE    record per-message / per-protocol-phase events; FILE
//                   ending in .jsonl gets the compact JSONL stream, any
//                   other name gets Chrome trace-event JSON (Perfetto).
//   --metrics=FILE  write merged obs counters as JSONL, one metric per
//                   line, name-sorted — byte-identical for any --jobs.
//   --profile       time the coarse phases (APSP build, bring-up, run,
//                   repair) on the wall clock; table goes to stderr so
//                   determinism surfaces stay untouched.
//
// Exit status: 0 on success, 1 on a failed --verify, 2 on usage errors.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/trace_io.hpp"
#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"
#include "fault/invariants.hpp"
#include "load/engine.hpp"
#include "load/load_params.hpp"
#include "obs/profile.hpp"
#include "policy/policy.hpp"
#include "snap/io.hpp"
#include "snap/warm_start.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace rtds;
using namespace rtds::exp;

namespace {

[[noreturn]] void usage() {
  std::cerr <<
      "usage: rtds_exp --list\n"
      "       rtds_exp --scenario=NAME [--jobs=N] [--replicates=R]\n"
      "                [--seeds=fixed|derived] [--sink=table|csv|jsonl]\n"
      "                [--out=FILE] [--verify] [--check-invariants]\n"
      "                [--duration=T] [--warm-start]\n"
      "                [--checkpoint=FILE] [--resume]\n"
      "                [--trace=FILE] [--metrics=FILE] [--profile]\n"
      "       rtds_exp --report=NAME [--out=FILE] [--duration=T]\n"
      "       rtds_exp --policy=NAME [--describe] [--set key=value ...]\n"
      "                [--net=grid --sites=64 --rate=0.02 --horizon=400\n"
      "                 --laxity-min --laxity-max --delay-min --delay-max\n"
      "                 --min-tasks --max-tasks --seed] [--json] [--out=FILE]\n"
      "                [--duration=T --warmup=T --window=W]\n"
      "                [--workload-trace=FILE] [--warm-start]\n"
      "                [--checkpoint=FILE --checkpoint-every=N] [--resume]\n"
      "                [--trace=FILE] [--metrics=FILE] [--profile]\n";
  std::exit(2);
}

void list_scenarios() {
  const auto& registry = Registry::instance();
  Table sweeps({"scenario", "grid", "reps", "warm-start", "metrics",
                "description"});
  for (const auto& name : registry.scenario_names()) {
    const ScenarioSpec* spec = registry.find(name);
    // The emitted-metrics column: what this sweep's trials measure —
    // the columns of its table/CSV output, in declaration order.
    std::string metrics;
    for (const auto& m : spec->metrics) {
      if (!metrics.empty()) metrics += ",";
      metrics += m.key;
    }
    sweeps.add_row({name, Table::num(spec->grid_size()),
                    Table::num(spec->replicates),
                    spec->warm_start ? "yes" : "no", metrics,
                    spec->description});
  }
  std::cout << "sweep scenarios:\n";
  sweeps.print(std::cout);

  Table reports({"report", "description"});
  for (const auto& name : registry.report_names())
    reports.add_row({name, registry.report_description(name)});
  std::cout << "\nreport scenarios:\n";
  reports.print(std::cout);

  Table policies({"policy", "params", "description"});
  for (const auto& name : policy::PolicyRegistry::instance().names()) {
    const auto p = policy::PolicyRegistry::instance().create(name);
    policies.add_row({name,
                      Table::num(p->describe_params().specs().size()),
                      p->description()});
  }
  std::cout << "\nregistered policies (run with --policy=NAME, inspect with "
               "--policy=NAME --describe):\n";
  policies.print(std::cout);
}

/// --trace output: FILE ending in .jsonl gets the compact per-event
/// stream; any other name gets Chrome trace-event JSON (Perfetto).
void write_trace_file(const std::string& path,
                      std::span<const obs::TraceRecorder> trials) {
  std::ofstream file(path);
  RTDS_REQUIRE_MSG(file.good(), "cannot open " << path);
  if (path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0)
    obs::TraceRecorder::write_jsonl(file, trials);
  else
    obs::TraceRecorder::write_chrome(file, trials);
}

void write_metrics_file(const std::string& path,
                        const obs::MetricsBuffer& metrics) {
  std::ofstream file(path);
  RTDS_REQUIRE_MSG(file.good(), "cannot open " << path);
  metrics.write_jsonl(file);
}

/// Reads the shared observability flags and arms the profiler. Returns
/// true when a RunObservation needs to be attached.
struct ObsFlags {
  std::string trace_file;
  std::string metrics_file;
  bool profile = false;
  bool want_observation() const {
    return !trace_file.empty() || !metrics_file.empty();
  }
};

ObsFlags parse_obs_flags(const Flags& flags) {
  ObsFlags o;
  o.trace_file = flags.get_string("trace", "");
  o.metrics_file = flags.get_string("metrics", "");
  o.profile = flags.get_bool("profile", false);
  if (o.profile) {
    obs::Profiler::set_enabled(true);
    obs::Profiler::instance().reset();
  }
  return o;
}

/// --policy mode: one registered policy, one generated condition.
int run_policy_cmd(const std::string& name, const Flags& flags) {
  const auto policy = policy::PolicyRegistry::instance().create(name);

  if (flags.get_bool("describe", false)) {
    // --set is valid alongside --describe (usage lists them independently);
    // validate the assignments so typos still fail, but don't run.
    policy->parse_params(flags.get_all("set"));
    flags.check_unused();
    std::cout << name << " — " << policy->description() << "\nparams:\n"
              << policy->describe_params().describe();
    return 0;
  }

  const std::vector<std::string> assignments = flags.get_all("set");
  const policy::ParamMap params = policy->parse_params(assignments);

  ConditionSpec cs;
  cs.net = net_shape_from_string(flags.get_string("net", "grid"));
  cs.sites = static_cast<std::size_t>(flags.get_int("sites", 64));
  cs.rate = flags.get_double("rate", 0.02);
  cs.horizon = flags.get_double("horizon", 400.0);
  cs.laxity_min = flags.get_double("laxity-min", 2.0);
  cs.laxity_max = flags.get_double("laxity-max", 6.0);
  cs.delay_min = flags.get_double("delay-min", 0.5);
  cs.delay_max = flags.get_double("delay-max", 2.0);
  cs.min_tasks = static_cast<std::size_t>(flags.get_int("min-tasks", 4));
  cs.max_tasks = static_cast<std::size_t>(flags.get_int("max-tasks", 12));
  cs.seed = flags.get_seed("seed", 42);
  const std::string out = flags.get_string("out", "");
  const bool json = flags.get_bool("json", false);
  // Open-system mode: --duration (read once in main) switches from the
  // closed batch to a streamed run; --warmup/--window shape its windows.
  const Time duration = load::scenario_duration(0.0);
  const Time warmup = flags.get_double("warmup", 100.0);
  const Time window_width = flags.get_double("window", 50.0);
  const std::string workload_trace = flags.get_string("workload-trace", "");
  // Checkpoint/resume for long open runs (snap/, DESIGN.md §14).
  const std::string checkpoint = flags.get_string("checkpoint", "");
  const std::uint64_t checkpoint_every = static_cast<std::uint64_t>(
      flags.get_int("checkpoint-every", 100'000));
  const bool resume = flags.get_bool("resume", false);
  if ((resume || !checkpoint.empty()) &&
      (duration <= 0.0 || name != "rtds")) {
    std::cerr << "error: --checkpoint/--resume apply to open rtds runs only "
                 "(--policy=rtds --duration=T)\n";
    return 2;
  }
  if (resume && checkpoint.empty()) {
    std::cerr << "error: --resume needs --checkpoint=FILE\n";
    return 2;
  }
  const ObsFlags obs_flags = parse_obs_flags(flags);
  flags.check_unused();

  // The workload.* --set keys steer generation (bursty/diurnal arrivals,
  // deadline base); with none set the spec — and the closed-path bytes —
  // are untouched.
  apply_workload_params(params, cs);
  const Topology topo = make_topology(cs);
  load::ArrivalSpec aspec;
  aspec.kind = load::arrival_kind_from(params);
  aspec.site_count = topo.site_count();
  aspec.workload = workload_config(cs);
  if (!workload_trace.empty()) {
    // Replay a saved trace (validated against this topology) instead of
    // generating. Distinct from --trace=FILE, which *writes* obs events.
    std::ifstream file(workload_trace);
    RTDS_REQUIRE_MSG(file.good(), "cannot open " << workload_trace);
    aspec.kind = load::ArrivalKind::kTrace;
    aspec.trace = read_trace(file, topo.site_count());
  }

  obs::MetricsBuffer obs_metrics;
  std::vector<obs::TraceRecorder> traces(1);
  RunMetrics m;
  std::optional<load::OpenRunResult> open_result;
  {
    // Single run, so bind the obs context directly (runner not involved).
    std::optional<obs::Scope> scope;
    if (obs_flags.want_observation())
      scope.emplace(&obs_metrics, !obs_flags.trace_file.empty()
                                      ? &traces.front()
                                      : nullptr);
    if (duration > 0.0) {
      const auto source = load::make_arrival_source(aspec);
      if (name == "rtds") {
        load::OpenConfig ocfg;
        ocfg.duration = duration;
        ocfg.window.warmup = warmup;
        ocfg.window.width = window_width;
        ocfg.checkpoint_path = checkpoint;
        ocfg.checkpoint_every = checkpoint_every;
        ocfg.resume = resume;
        try {
          open_result = load::run_open_rtds(topo, *source, ocfg, params);
        } catch (const ContractViolation& e) {
          if (!resume) throw;
          std::cerr << "error: " << e.what()
                    << "\nhint: --resume reads the checkpoint a previous "
                       "--checkpoint=FILE run with identical topology and "
                       "params wrote (container: RTDSNAP magic, format v"
                    << snap::kFormatVersion
                    << ", config hash; then checksummed sections "
                       "clock/tables/fault/checker/nodes/transport/system/"
                       "events/obs/collector/source)\n";
          return 2;
        }
        m = open_result->metrics;
      } else {
        m = load::run_open_policy(*policy, topo, *source, duration, params);
      }
    } else {
      std::vector<JobArrival> arrivals;
      if (aspec.kind == load::ArrivalKind::kTrace)
        arrivals = std::move(aspec.trace);
      else if (aspec.kind == load::ArrivalKind::kDiurnal)
        // The diurnal curve only exists in the open generator; the closed
        // batch uses its eager path over the condition's horizon.
        arrivals = load::generate_open_workload(aspec, cs.horizon);
      else
        arrivals = generate_workload(topo.site_count(), aspec.workload);
      m = policy->run(topo, arrivals, params);
    }
  }
  if (!obs_flags.trace_file.empty())
    write_trace_file(obs_flags.trace_file, traces);
  if (!obs_flags.metrics_file.empty())
    write_metrics_file(obs_flags.metrics_file, obs_metrics);
  if (obs_flags.profile) obs::Profiler::instance().report(std::cerr);

  if (json) {
    std::ostringstream text;
    m.to_jsonl(text);
    if (out.empty()) {
      std::cout << text.str();
    } else {
      std::ofstream file(out);
      RTDS_REQUIRE_MSG(file.good(), "cannot open " << out);
      file << text.str();
    }
    return 0;
  }

  Table t({"metric", "value"});
  t.add_row({"policy", name});
  for (const auto& assignment : assignments) t.add_row({"set", assignment});
  t.add_row({"jobs", Table::num(std::size_t{m.arrived})});
  t.add_row({"guarantee ratio", Table::num(m.guarantee_ratio(), 4)});
  t.add_row({"delivered ratio", Table::num(m.delivered_ratio(), 4)});
  t.add_row({"accepted local", Table::num(std::size_t{m.accepted_local})});
  t.add_row({"accepted remote", Table::num(std::size_t{m.accepted_remote})});
  t.add_row({"rejected", Table::num(std::size_t{m.rejected})});
  t.add_row({"deadline misses", Table::num(std::size_t{m.deadline_misses})});
  t.add_row({"jobs lost", Table::num(std::size_t{m.jobs_lost})});
  t.add_row({"jobs rescheduled", Table::num(std::size_t{m.jobs_rescheduled})});
  t.add_row({"repair messages", Table::num(std::size_t{m.repair_messages})});
  t.add_row({"messages dropped",
             Table::num(std::size_t{m.transport.messages_dropped})});
  t.add_row({"link messages",
             Table::num(std::size_t{m.transport.total_link_messages})});
  t.add_row({"msgs/job mean",
             Table::num(m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0,
                        2)});
  t.add_row({"decision latency mean",
             Table::num(
                 m.decision_latency.count() ? m.decision_latency.mean() : 0.0,
                 3)});
  if (open_result) {
    // Steady-state block (open rtds runs only): post-warm-up windowed
    // sojourn quantiles and the saturation knee.
    const auto& s = open_result->steady;
    const auto shed_it =
        m.reject_by_reason.find(static_cast<int>(RejectReason::kShed));
    t.add_row({"jobs shed",
               Table::num(std::size_t{
                   shed_it == m.reject_by_reason.end() ? 0u : shed_it->second})});
    t.add_row({"steady completed", Table::num(std::size_t{s.completed})});
    t.add_row({"sojourn mean", Table::num(s.sojourn_mean, 3)});
    t.add_row({"sojourn p50", Table::num(s.p50, 3)});
    t.add_row({"sojourn p95", Table::num(s.p95, 3)});
    t.add_row({"sojourn p99", Table::num(s.p99, 3)});
    t.add_row({"knee window", Table::num(static_cast<long long>(s.knee_window))});
    t.add_row({"windows", Table::num(open_result->windows.size())});
  }

  std::ostringstream text;
  t.print(text);
  if (out.empty()) {
    std::cout << text.str();
  } else {
    std::ofstream file(out);
    RTDS_REQUIRE_MSG(file.good(), "cannot open " << out);
    file << text.str();
  }
  return 0;
}

int run_sweep(const ScenarioSpec& base, const Flags& flags) {
  ScenarioSpec spec = base;
  const std::string seeds = flags.get_string("seeds", "");
  if (seeds == "fixed") {
    spec.seed_mode = SeedMode::kFixed;
  } else if (seeds == "derived") {
    spec.seed_mode = SeedMode::kDerived;
  } else if (!seeds.empty()) {
    usage();
  }

  RunOptions opts;
  opts.jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  opts.replicates = static_cast<std::size_t>(flags.get_int("replicates", 0));
  if (opts.replicates > 1 && spec.seed_mode == SeedMode::kFixed) {
    // Replicates under one shared seed recompute the identical trial N
    // times — stddev 0 at N× the cost. Auto-derive per-replicate seeds
    // unless the user explicitly insisted on the fixed seed.
    if (seeds == "fixed") {
      std::cerr << "warning: --replicates with --seeds=fixed reruns the "
                   "same seed; every replicate will be identical\n";
    } else {
      spec.seed_mode = SeedMode::kDerived;
      std::cerr << "note: --replicates switches to derived per-trial seeds "
                   "(use --seeds=fixed to override)\n";
    }
  }
  const bool verify = flags.get_bool("verify", false);
  const std::string sink_name = flags.get_string("sink", "table");
  const std::string out = flags.get_string("out", "");
  opts.warm_start = snap::warm_start_enabled();  // --warm-start (main)
  opts.journal_path = flags.get_string("checkpoint", "");
  opts.resume = flags.get_bool("resume", false);
  if (opts.resume && opts.journal_path.empty()) {
    std::cerr << "error: --resume needs --checkpoint=FILE\n";
    return 2;
  }
  const ObsFlags obs_flags = parse_obs_flags(flags);
  flags.check_unused();
  const auto sink = make_sink(sink_name);  // validate before the sweep runs

  RunObservation observation;
  if (obs_flags.want_observation()) {
    observation.record_traces = !obs_flags.trace_file.empty();
    opts.observe = &observation;
  }
  std::vector<AggregateRow> rows;
  try {
    rows = run_scenario(spec, opts);
  } catch (const ContractViolation& e) {
    if (!opts.resume) throw;
    std::cerr << "error: " << e.what()
              << "\nhint: --resume reads the sweep journal a previous "
                 "--checkpoint=FILE run of this exact sweep wrote ("
                 "container: RTDSNAP magic, format v"
              << snap::kFormatVersion
              << ", sweep-identity hash over scenario/grid/replicates/"
                 "seeds/observe; then checksummed \"trial\" sections)\n";
    return 2;
  }
  if (!obs_flags.trace_file.empty())
    write_trace_file(obs_flags.trace_file, observation.traces);
  if (!obs_flags.metrics_file.empty())
    write_metrics_file(obs_flags.metrics_file, observation.metrics);
  if (obs_flags.profile) obs::Profiler::instance().report(std::cerr);

  if (verify) {
    RunOptions serial = opts;
    serial.jobs = 1;
    serial.observe = nullptr;  // the reference run keeps its own surfaces
    const auto reference = run_scenario(spec, serial);
    if (!aggregates_identical(rows, reference)) {
      std::cerr << "FAIL: parallel aggregates (" << opts.jobs
                << " jobs) differ from the serial run\n";
      return 1;
    }
    std::cerr << "verified: " << opts.jobs
              << "-worker aggregates bit-identical to serial\n";
  }

  std::ostringstream text;
  if (sink_name == "table" && !spec.title.empty()) text << spec.title << "\n";
  sink->write(spec, rows, text);
  if (out.empty()) {
    std::cout << text.str();
  } else {
    std::ofstream file(out);
    RTDS_REQUIRE_MSG(file.good(), "cannot open " << out);
    file << text.str();
  }
  return 0;
}

int run_report_cmd(const std::string& name, const Flags& flags) {
  const std::string out = flags.get_string("out", "");
  flags.check_unused();
  if (out.empty()) {
    run_report(name, std::cout);
  } else {
    std::ofstream file(out);
    RTDS_REQUIRE_MSG(file.good(), "cannot open " << out);
    run_report(name, file);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    register_builtin_scenarios();
    Flags flags(argc, argv, {"set"});

    // §12 runtime invariant checker, for any command that runs policies.
    // Non-fatal here: violations count into the metrics and the obs layer
    // (a test wanting hard failure sets fault::set_invariants_fatal).
    if (flags.get_bool("check-invariants", false))
      fault::set_check_invariants(true);

    // Open-system run length, honoured by --policy mode and by
    // duration-aware scenarios/reports (load::scenario_duration).
    const Time duration = flags.get_double("duration", 0.0);
    if (duration > 0.0) load::set_scenario_duration(duration);

    // Warm-start cache (DESIGN.md §14): share one serialized bring-up per
    // (topology, h) across every RtdsSystem this process constructs.
    // Bit-identical to cold runs — pinned by tests/warm_start_test.cpp.
    if (flags.get_bool("warm-start", false))
      snap::set_warm_start_enabled(true);

    if (flags.get_bool("list", false)) {
      flags.check_unused();
      list_scenarios();
      return 0;
    }

    const std::string scenario = flags.get_string("scenario", "");
    const std::string report = flags.get_string("report", "");
    const std::string policy_name = flags.get_string("policy", "");
    if (!policy_name.empty()) return run_policy_cmd(policy_name, flags);
    if (!scenario.empty()) {
      const ScenarioSpec* spec = Registry::instance().find(scenario);
      if (spec == nullptr) {
        // Allow --scenario to name a report too, for discoverability.
        if (Registry::instance().find_report(scenario) != nullptr)
          return run_report_cmd(scenario, flags);
        std::cerr << "unknown scenario " << scenario
                  << " (try --list)\n";
        return 2;
      }
      return run_sweep(*spec, flags);
    }
    if (!report.empty()) {
      if (Registry::instance().find_report(report) == nullptr) {
        std::cerr << "unknown report " << report << " (try --list)\n";
        return 2;
      }
      return run_report_cmd(report, flags);
    }
    usage();
  } catch (const std::exception& e) {
    // Same exit-path contract as rtds_cli: every uncaught std::exception
    // becomes a non-zero exit with a diagnostic plus a schema hint, never
    // a raw terminate (pinned by the EXPERIMENTS.md docs-smoke negative
    // check).
    std::cerr << "error: " << e.what() << "\n"
              << "hint: `rtds_exp --list` names the registered scenarios "
                 "and policies; inspect a policy's parameter schema with "
                 "`rtds_exp --policy=NAME --describe`\n";
    return 2;
  }
}
