// Quickstart: the smallest complete RTDS program.
//
// Builds a 5-site network, starts an RTDS system (which constructs every
// site's Potential Computing Sphere), submits two jobs — one that fits
// locally and one that needs the sphere — and prints what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <iostream>

#include "core/rtds_system.hpp"
#include "dag/generators.hpp"
#include "util/table.hpp"

using namespace rtds;

int main() {
  // 1. Describe the network (§2: arbitrary connected graph, delays on
  //    links). Here: a ring of 5 identical sites.
  Topology topo;
  for (int i = 0; i < 5; ++i) topo.add_site();
  for (SiteId i = 0; i < 5; ++i)
    topo.add_link(i, (i + 1) % 5, /*delay=*/0.2);

  // 2. Configure RTDS: sphere radius h, local-scheduler policy, enrollment
  //    policy. Defaults are sensible; h is the knob that matters.
  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;

  // 3. Start the system. This runs the §7 interrupted all-pairs-shortest-
  //    paths construction and builds each site's PCS.
  RtdsSystem system(std::move(topo), cfg);

  // 4. Describe jobs: a DAG of tasks with costs + a release and deadline.
  //    Job 1: a 4-task chain with a generous deadline -> fits locally.
  auto easy = std::make_shared<Job>();
  easy->id = 1;
  {
    const TaskId a = easy->dag.add_task(3.0, "read");
    const TaskId b = easy->dag.add_task(5.0, "transform");
    const TaskId c = easy->dag.add_task(5.0, "reduce");
    const TaskId d = easy->dag.add_task(2.0, "write");
    easy->dag.add_arc(a, b);
    easy->dag.add_arc(b, c);
    easy->dag.add_arc(c, d);
    easy->dag.finalize();
  }
  easy->release = 0.0;
  easy->deadline = 60.0;

  //    Job 2: the paper's Figure 2 DAG with a window tighter than its total
  //    work (21) -> cannot run on one site, must be distributed.
  auto parallel = std::make_shared<Job>();
  parallel->id = 2;
  parallel->dag = paper_example();
  parallel->release = 1.0;
  parallel->deadline = 1.0 + 19.5;  // < 21 units of total work

  // 5. Run. Jobs arrive on site 0; the simulator plays out the protocol.
  system.run({{0, easy}, {0, parallel}});

  // 6. Inspect the decisions.
  Table t({"job", "outcome", "sites used", "link messages", "decided at"});
  for (const auto& d : system.decisions())
    t.add_row({std::to_string(d.job), to_string(d.outcome),
               Table::num(d.acs_size), Table::num(std::size_t{d.link_messages}),
               Table::num(d.decision_time, 2)});
  t.print(std::cout);

  std::cout << "\nguarantee ratio: "
            << system.metrics().guarantee_ratio() * 100 << "%  ("
            << system.metrics().accepted_local << " local, "
            << system.metrics().accepted_remote << " distributed)\n";
  return 0;
}
