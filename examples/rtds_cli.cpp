// rtds_cli — file-driven command-line front end for the whole library.
//
// Subcommands:
//   gen-net    --net=<shape> --sites=N [--delay-min --delay-max --seed]
//              [--out=FILE]            generate a topology file
//   gen-load   --sites=N [--rate --horizon --laxity-min --laxity-max
//              --process=poisson|bursty|diurnal --burst-on --burst-off
//              --burst-mult --deadline=cp|work --seed]
//              [--out=FILE]            generate a workload trace file
//   run        --net=FILE --load=FILE [--policy=NAME | --scheduler=NAME]
//              (--workload-trace=FILE is an alias for --load; the flag name
//              matches rtds_exp, where --trace means the obs event output)
//              [--set key=value ...] [--h --policy=edf|exact|preemptive
//              --transport=ideal|contended --bandwidth --slack]
//              [--faults=k=v,k=v,...]
//              [--trace=FILE] [--metrics=FILE] [--profile]
//              run a registered scheduler policy over saved inputs; --set
//              is validated against the policy's ParamSchema. --faults is
//              shorthand for fault-injection overrides: each k=v becomes
//              --set faults.k=v (e.g. --faults=site_rate=0.002,drop=0.01).
//              --trace records protocol/message events (FILE.jsonl =
//              compact stream, otherwise Chrome trace JSON for Perfetto),
//              --metrics dumps the run's obs counters as JSONL, --profile
//              prints wall-clock phase timings to stderr (DESIGN.md §11)
//   inspect    --net=FILE | --load=FILE   summarize a saved artifact
//   --repro=FILE [--quiet]   replay a fuzzer .repro scenario bit-identically
//              (src/fuzz, DESIGN.md §15): re-runs the pinned scenario under
//              the fatal invariant checker plus its recorded cross-checks.
//              Exit 0 iff the repro behaves as pinned — a benign repro must
//              pass (its metrics JSONL goes to stdout for byte-diffing), a
//              failure repro must reproduce its expected-failure tag.
//
// Scheduler dispatch goes through the PolicyRegistry: any registered
// policy name works for --policy/--scheduler (rtds, local, central, bcast,
// bid, random, plus whatever else registered). `--policy=edf|exact|
// preemptive` keeps its legacy meaning — the §5 local admission test —
// and maps to `--set admission=...`.
//
// Everything round-trips through the text formats in dag/io, net/io and
// core/trace_io, so experiments are archivable and replayable byte-for-byte.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/trace_io.hpp"
#include "dag/analysis.hpp"
#include "fault/invariants.hpp"
#include "fuzz/checks.hpp"
#include "load/source.hpp"
#include "net/generators.hpp"
#include "net/io.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "policy/policy.hpp"
#include "snap/warm_start.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace rtds;

namespace {

[[noreturn]] void usage() {
  std::cerr <<
      "usage: rtds_cli <gen-net|gen-load|run|inspect> [--flags]\n"
      "  gen-net  --net=grid --sites=64 [--delay-min=0.5 --delay-max=2.0\n"
      "           --seed=42 --out=net.txt]\n"
      "  gen-load --sites=64 [--rate=0.02 --horizon=1000 --laxity-min=2\n"
      "           --laxity-max=6 --process=poisson|bursty|diurnal\n"
      "           --burst-on=50 --burst-off=200 --burst-mult=6\n"
      "           --deadline=cp|work --seed=42 --out=load.txt]\n"
      "  run      --net=net.txt (--load=load.txt | --workload-trace=load.txt)\n"
      "           [--policy=rtds\n"
      "           --set h=2 --set admission=edf ... | --h=2 --policy=edf\n"
      "           --transport=ideal --bandwidth=100]\n"
      "           [--faults=site_rate=0.002,site_mttr=25,drop=0.01]\n"
      "           [--check-invariants] [--warm-start]\n"
      "           [--trace=FILE] [--metrics=FILE] [--profile]\n"
      "  inspect  --net=net.txt | --load=load.txt\n"
      "  rtds_cli --repro=finding.repro [--quiet]   replay a fuzzer repro\n";
  std::exit(2);
}

void write_file_or_stdout(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  RTDS_REQUIRE_MSG(out.good(), "cannot open " << path);
  out << text;
  std::cout << "wrote " << path << "\n";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  RTDS_REQUIRE_MSG(in.good(), "cannot open " << path);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

int cmd_gen_net(const Flags& flags) {
  const auto shape = net_shape_from_string(flags.get_string("net", "grid"));
  const auto sites = static_cast<std::size_t>(flags.get_int("sites", 64));
  DelayRange delays{flags.get_double("delay-min", 0.5),
                    flags.get_double("delay-max", 2.0)};
  Rng rng(flags.get_seed("seed", 42));
  const auto out = flags.get_string("out", "");
  flags.check_unused();
  const Topology topo = make_net(shape, sites, delays, rng);
  write_file_or_stdout(out, topology_to_string(topo));
  return 0;
}

int cmd_gen_load(const Flags& flags) {
  const auto sites = static_cast<std::size_t>(flags.get_int("sites", 64));
  WorkloadConfig wl;
  wl.arrival_rate_per_site = flags.get_double("rate", 0.02);
  wl.horizon = flags.get_double("horizon", 1000.0);
  wl.laxity_min = flags.get_double("laxity-min", 2.0);
  wl.laxity_max = flags.get_double("laxity-max", 6.0);
  wl.min_tasks = static_cast<std::size_t>(flags.get_int("min-tasks", 4));
  wl.max_tasks = static_cast<std::size_t>(flags.get_int("max-tasks", 12));
  wl.seed = flags.get_seed("seed", 42);
  wl.burst_on_mean = flags.get_double("burst-on", wl.burst_on_mean);
  wl.burst_off_mean = flags.get_double("burst-off", wl.burst_off_mean);
  wl.burst_multiplier = flags.get_double("burst-mult", wl.burst_multiplier);
  const auto process = flags.get_string("process", "poisson");
  bool diurnal = false;
  if (process == "bursty")
    wl.arrival_process = ArrivalProcess::kBursty;
  else if (process == "diurnal")
    diurnal = true;  // open-generator curve, materialized over the horizon
  else
    RTDS_REQUIRE_MSG(process == "poisson", "unknown --process=" << process);
  const auto deadline = flags.get_string("deadline", "cp");
  if (deadline == "work")
    wl.deadline_model = DeadlineModel::kTotalWork;
  else
    RTDS_REQUIRE_MSG(deadline == "cp", "unknown --deadline=" << deadline);
  const auto out = flags.get_string("out", "");
  flags.check_unused();
  std::vector<JobArrival> arrivals;
  if (diurnal) {
    // The diurnal rate curve only exists in the open-system generator
    // (src/load/); its eager path is the closed-batch equivalent.
    load::ArrivalSpec spec;
    spec.kind = load::ArrivalKind::kDiurnal;
    spec.site_count = sites;
    spec.workload = wl;
    arrivals = load::generate_open_workload(spec, wl.horizon);
  } else {
    arrivals = generate_workload(sites, wl);
  }
  write_file_or_stdout(out, trace_to_string(arrivals));
  if (!out.empty())
    std::cout << arrivals.size() << " jobs over " << sites << " sites\n";
  return 0;
}

int cmd_run(const Flags& flags) {
  const auto net_path = flags.get_string("net", "");
  // --workload-trace is the canonical spelling (matching rtds_exp, where
  // --trace already means the obs event *output*); --load stays as the
  // historical alias. Same file format either way (core/trace_io).
  const auto load_path = flags.get_string("load", "");
  const auto workload_trace = flags.get_string("workload-trace", "");
  RTDS_REQUIRE_MSG(load_path.empty() || workload_trace.empty(),
                   "--load and --workload-trace are aliases; pass only one");
  const auto trace_path = load_path.empty() ? workload_trace : load_path;
  RTDS_REQUIRE_MSG(!net_path.empty() && !trace_path.empty(),
                   "run needs --net=FILE and --load=FILE "
                   "(or --workload-trace=FILE)");

  // Family selection: --scheduler, or --policy when it names a registered
  // policy. A non-policy --policy value keeps its legacy meaning (the §5
  // admission test) and becomes a `--set admission=...` override.
  auto& registry = policy::PolicyRegistry::instance();
  std::string family = flags.get_string("scheduler", "");
  const std::string policy_flag = flags.get_string("policy", "");
  std::string admission;
  if (registry.contains(policy_flag)) {
    RTDS_REQUIRE_MSG(family.empty() || family == policy_flag,
                     "--scheduler=" << family << " and --policy="
                                    << policy_flag << " disagree");
    family = policy_flag;
  } else if (policy_flag == "edf" || policy_flag == "exact" ||
             policy_flag == "preemptive") {
    admission = policy_flag;
  } else if (!policy_flag.empty()) {
    // Anything else is a typo'd family name, not an admission label —
    // diagnose it as such instead of forwarding it into the ParamMap.
    std::ostringstream os;
    for (const auto& known : registry.names()) os << " " << known;
    RTDS_REQUIRE_MSG(false, "unknown --policy=" << policy_flag
                                                << "; registered policies:"
                                                << os.str()
                                                << "; admission tests: edf "
                                                   "exact preemptive");
  }
  if (family.empty()) family = "rtds";
  const auto policy = registry.create(family);  // throws, listing names

  // Convenience flags become schema overrides; explicit --set wins (last
  // assignment takes precedence in ParamMap::parse).
  std::vector<std::string> sets;
  if (!admission.empty()) sets.push_back("admission=" + admission);
  if (flags.has("h")) sets.push_back("h=" + flags.get_string("h", ""));
  const std::string transport = flags.get_string("transport", "");
  if (!transport.empty()) {
    sets.push_back("transport=" + transport);
    if (transport == "contended") {
      sets.push_back("bandwidth=" + flags.get_string("bandwidth", "100"));
      // The contended transport needs protocol-overhead slack to absorb
      // queueing; keep this front end's historical default of 1.0.
      sets.push_back("overhead_slack=" + flags.get_string("slack", "1"));
    }
  }
  // --faults=k=v,k=v is sugar over the schema's faults.* keys; explicit
  // --set still wins (later assignments take precedence).
  const std::string faults = flags.get_string("faults", "");
  if (!faults.empty()) {
    std::istringstream in(faults);
    std::string item;
    while (std::getline(in, item, ',')) {
      RTDS_REQUIRE_MSG(item.find('=') != std::string::npos,
                       "--faults expects k=v[,k=v...], got '" << item << "'");
      sets.push_back("faults." + item);
    }
  }
  for (const auto& assignment : flags.get_all("set"))
    sets.push_back(assignment);
  const std::string trace_file = flags.get_string("trace", "");
  const std::string metrics_file = flags.get_string("metrics", "");
  const bool profile = flags.get_bool("profile", false);
  // §12 runtime invariant checker (non-fatal: violations count into the
  // metrics row below and the obs layer).
  if (flags.get_bool("check-invariants", false))
    fault::set_check_invariants(true);
  // Warm-start bring-up cache (DESIGN.md §14) — bit-identical output,
  // pinned by tests/warm_start_test.cpp.
  if (flags.get_bool("warm-start", false))
    snap::set_warm_start_enabled(true);
  flags.check_unused();
  const policy::ParamMap params = policy->parse_params(sets);

  const Topology topo = topology_from_string(read_file(net_path));
  // read_trace validates format, times, arrival order and — given the
  // site count — that every job lands inside this topology.
  const auto arrivals =
      trace_from_string(read_file(trace_path), topo.site_count());

  if (profile) {
    obs::Profiler::set_enabled(true);
    obs::Profiler::instance().reset();
  }
  obs::MetricsBuffer obs_metrics;
  std::vector<obs::TraceRecorder> traces(1);
  RunMetrics metrics;
  {
    // One run == one trial: bind the obs context for its duration only.
    std::optional<obs::Scope> scope;
    if (!trace_file.empty() || !metrics_file.empty())
      scope.emplace(&obs_metrics,
                    !trace_file.empty() ? &traces.front() : nullptr);
    metrics = policy->run(topo, arrivals, params);
  }
  if (!trace_file.empty()) {
    std::ofstream file(trace_file);
    RTDS_REQUIRE_MSG(file.good(), "cannot open " << trace_file);
    if (trace_file.size() >= 6 &&
        trace_file.compare(trace_file.size() - 6, 6, ".jsonl") == 0)
      obs::TraceRecorder::write_jsonl(file, traces);
    else
      obs::TraceRecorder::write_chrome(file, traces);
    std::cout << "wrote " << trace_file << " (" << traces.front().size()
              << " events)\n";
  }
  if (!metrics_file.empty()) {
    std::ofstream file(metrics_file);
    RTDS_REQUIRE_MSG(file.good(), "cannot open " << metrics_file);
    obs_metrics.write_jsonl(file);
    std::cout << "wrote " << metrics_file << "\n";
  }
  if (profile) obs::Profiler::instance().report(std::cerr);

  Table t({"metric", "value"});
  t.add_row({"scheduler", family});
  t.add_row({"jobs", Table::num(std::size_t{metrics.arrived})});
  t.add_row({"guarantee ratio", Table::num(metrics.guarantee_ratio(), 4)});
  t.add_row({"delivered ratio", Table::num(metrics.delivered_ratio(), 4)});
  t.add_row({"accepted local", Table::num(std::size_t{metrics.accepted_local})});
  t.add_row({"accepted remote", Table::num(std::size_t{metrics.accepted_remote})});
  t.add_row({"rejected", Table::num(std::size_t{metrics.rejected})});
  t.add_row({"deadline misses", Table::num(std::size_t{metrics.deadline_misses})});
  t.add_row({"dispatch failures", Table::num(std::size_t{metrics.dispatch_failures})});
  t.add_row({"jobs lost", Table::num(std::size_t{metrics.jobs_lost})});
  t.add_row({"jobs rescheduled", Table::num(std::size_t{metrics.jobs_rescheduled})});
  t.add_row({"repair messages", Table::num(std::size_t{metrics.repair_messages})});
  t.add_row({"messages dropped",
             Table::num(std::size_t{metrics.transport.messages_dropped})});
  t.add_row({"messages duplicated",
             Table::num(std::size_t{metrics.messages_duplicated})});
  t.add_row({"retransmits", Table::num(std::size_t{metrics.retransmits})});
  t.add_row({"invariant violations",
             Table::num(std::size_t{metrics.invariant_violations})});
  t.add_row({"link messages", Table::num(std::size_t{metrics.transport.total_link_messages})});
  t.add_row({"msgs/job mean",
             Table::num(metrics.msgs_per_job.count() ? metrics.msgs_per_job.mean() : 0.0, 2)});
  t.add_row({"decision latency mean",
             Table::num(metrics.decision_latency.count()
                            ? metrics.decision_latency.mean()
                            : 0.0, 3)});
  t.print(std::cout);
  return 0;
}

int cmd_inspect(const Flags& flags) {
  const auto net_path = flags.get_string("net", "");
  const auto load_path = flags.get_string("load", "");
  flags.check_unused();
  if (!net_path.empty()) {
    const Topology topo = topology_from_string(read_file(net_path));
    std::cout << "topology: " << topo.site_count() << " sites, "
              << topo.link_count() << " links, connected="
              << (topo.connected() ? "yes" : "no") << "\n";
    RunningStat delay, degree;
    for (const auto& l : topo.links()) delay.add(l.delay);
    for (SiteId s = 0; s < topo.site_count(); ++s)
      degree.add(double(topo.neighbors(s).size()));
    std::cout << "link delay mean " << delay.mean() << " [" << delay.min()
              << ", " << delay.max() << "]; degree mean " << degree.mean()
              << " max " << degree.max() << "\n";
  }
  if (!load_path.empty()) {
    const auto arrivals = trace_from_string(read_file(load_path));
    RunningStat tasks, laxity, work;
    for (const auto& a : arrivals) {
      tasks.add(double(a.job->dag.task_count()));
      work.add(a.job->dag.total_work());
      laxity.add((a.job->deadline - a.job->release) /
                 critical_path_length(a.job->dag));
    }
    std::cout << "trace: " << arrivals.size() << " jobs";
    if (!arrivals.empty()) {
      std::cout << " over [" << arrivals.front().job->release << ", "
                << arrivals.back().job->release << "]\n"
                << "tasks/job mean " << tasks.mean() << "; work mean "
                << work.mean() << "; laxity (vs CP) mean " << laxity.mean()
                << " [" << laxity.min() << ", " << laxity.max() << "]";
    }
    std::cout << "\n";
  }
  if (net_path.empty() && load_path.empty()) usage();
  return 0;
}

}  // namespace

int cmd_repro(const Flags& flags) {
  const std::string path = flags.get_string("repro", "");
  const bool quiet = flags.get_bool("quiet", false);
  flags.check_unused();
  RTDS_REQUIRE_MSG(!path.empty(), "--repro needs a file path");
  const fuzz::FuzzScenario scenario = fuzz::from_repro(read_file(path));
  const fuzz::FatalScope fatal;
  const fuzz::CheckResult r = fuzz::run_scenario_checks(scenario);
  // Benign repros (no expected tag) print their reference metrics as one
  // JSONL line — the byte-diffable replay-determinism contract the CI
  // corpus check rests on. Failure repros succeed by reproducing.
  if (!r.metrics_jsonl.empty()) std::cout << r.metrics_jsonl << "\n";
  if (r.failed) {
    std::cerr << "repro: FAILED [" << r.tag << "] " << r.message << "\n";
    return 1;
  }
  if (!quiet)
    std::cerr << (scenario.expect.empty()
                      ? "repro: ok (benign scenario passed all checks)"
                      : "repro: reproduced [" + scenario.expect + "]")
              << "\n";
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) usage();
  policy::register_builtin_policies();
  const std::string command = argv[1];
  try {
    // Flags parsing belongs INSIDE the try: a malformed value (--sites=x)
    // throws from the constructor, and an uncaught exception would
    // terminate without a diagnostic or a usable exit status.
    if (command.rfind("--repro", 0) == 0) {
      const Flags flags(argc, argv);
      return cmd_repro(flags);
    }
    const Flags flags(argc - 1, argv + 1, {"set"});
    if (command == "gen-net") return cmd_gen_net(flags);
    if (command == "gen-load") return cmd_gen_load(flags);
    if (command == "run") return cmd_run(flags);
    if (command == "inspect") return cmd_inspect(flags);
  } catch (const std::exception& e) {
    // Covers ContractViolation (bad params, unknown keys, malformed
    // files) and any std:: parse error alike.
    std::cerr << "error: " << e.what() << "\n"
              << "hint: run with a registered <command>; for run, "
                 "inspect parameter schemas with "
                 "`rtds_exp --policy=NAME --describe`\n";
    return 1;
  }
  usage();
}
