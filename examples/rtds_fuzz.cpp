// rtds_fuzz — deterministic chaos-fuzzing campaign driver (src/fuzz,
// DESIGN.md §15).
//
//   rtds_fuzz [--seed=42] [--runs=100 | --budget-seconds=90] [--jobs=N]
//             [--out-dir=DIR] [--minimize=true] [--shrink-attempts=200]
//             [--progress-every=25] [--metrics=FILE]
//
// Walks the scenario sequence keyed by --seed: each scenario samples a
// topology family × size × sphere radius × policy × workload × scripted
// fault plan, runs under the fatal invariant checker, and cross-checks for
// silent wrong answers (replay, snapshot-resume, repair-vs-recompute,
// worker-count invariance). Findings are shrunk by delta debugging and
// written as versioned .repro files that `rtds_cli --repro=FILE` replays
// bit-identically. Exit status: 0 = no findings, 1 = findings, 2 = usage.
//
// Scenario i is a pure function of (--seed, i), and findings are reported
// in index order — a --runs-bounded campaign produces identical findings
// whatever --jobs is (pinned by tests/fuzz_test.cpp).
#include <fstream>
#include <iostream>

#include "fuzz/fuzzer.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"

using namespace rtds;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    fuzz::FuzzOptions opts;
    opts.seed = flags.get_seed("seed", 42);
    opts.runs = static_cast<std::uint64_t>(flags.get_int("runs", 100));
    opts.budget_seconds = flags.get_double("budget-seconds", 0.0);
    opts.jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
    opts.minimize = flags.get_bool("minimize", true);
    opts.shrink_attempts =
        static_cast<std::size_t>(flags.get_int("shrink-attempts", 200));
    opts.out_dir = flags.get_string("out-dir", "");
    opts.progress_every =
        static_cast<std::uint64_t>(flags.get_int("progress-every", 25));
    const std::string metrics_file = flags.get_string("metrics", "");
    flags.check_unused();
    if (opts.runs == 0 && opts.budget_seconds <= 0.0) {
      std::cerr << "error: give --runs=N and/or --budget-seconds=S\n";
      return 2;
    }

    obs::MetricsBuffer metrics;
    fuzz::FuzzReport report;
    {
      const obs::Scope scope(&metrics, nullptr);
      report = fuzz::run_fuzz(opts, std::cerr);
    }
    if (!metrics_file.empty()) {
      std::ofstream os(metrics_file);
      RTDS_REQUIRE_MSG(os.good(), "cannot open " << metrics_file);
      metrics.write_jsonl(os);
    }

    std::cout << "fuzz campaign seed=" << opts.seed << ": "
              << report.runs_done << " scenario(s), "
              << report.findings.size() << " finding(s)\n";
    for (const auto& f : report.findings) {
      std::cout << "  scenario " << f.index << " [" << f.tag << "] size "
                << f.repro.size();
      if (!f.repro_path.empty()) std::cout << " -> " << f.repro_path;
      std::cout << "\n";
    }
    return report.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n"
              << "hint: rtds_fuzz [--seed --runs --budget-seconds --jobs "
                 "--out-dir --minimize --metrics]\n";
    return 2;
  }
}
