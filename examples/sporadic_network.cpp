// Example: a full sporadic-workload simulation on a wide network, comparing
// RTDS against the LOCAL / BID / RANDOM / CENTRAL baselines and printing a
// metrics breakdown (guarantee ratio, reject reasons, message costs).
//
// Usage:
//   sporadic_network [--sites=64] [--net=geometric] [--h=2] [--rate=0.01]
//                    [--horizon=2000] [--laxity-min=2] [--laxity-max=6]
//                    [--delay-min=0.5] [--delay-max=2.0]
//                    [--seed=42] [--policy=edf|exact|preemptive]
#include <iostream>

#include "baseline/centralized.hpp"
#include "baseline/local_only.hpp"
#include "baseline/offload.hpp"
#include "core/rtds_system.hpp"
#include "net/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace rtds {
namespace {

NetShape parse_net(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(NetShape::kScaleFree); ++i)
    if (name == to_string(static_cast<NetShape>(i)))
      return static_cast<NetShape>(i);
  RTDS_REQUIRE_MSG(false, "unknown --net=" << name);
  return NetShape::kGrid;
}

AdmissionPolicy parse_policy(const std::string& name) {
  if (name == "edf") return AdmissionPolicy::kEdf;
  if (name == "exact") return AdmissionPolicy::kExact;
  if (name == "preemptive") return AdmissionPolicy::kPreemptive;
  RTDS_REQUIRE_MSG(false, "unknown --policy=" << name);
  return AdmissionPolicy::kEdf;
}

void add_metrics_row(Table& table, const std::string& name,
                     const RunMetrics& m) {
  table.add_row({name, Table::num(m.arrived),
                 Table::num(m.guarantee_ratio(), 3),
                 Table::num(std::size_t{m.accepted_local}),
                 Table::num(std::size_t{m.accepted_remote}),
                 Table::num(std::size_t{m.rejected}),
                 Table::num(m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0, 1),
                 Table::num(m.decision_latency.count()
                                ? m.decision_latency.mean()
                                : 0.0, 2)});
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sites = static_cast<std::size_t>(flags.get_int("sites", 64));
  const auto net_name = flags.get_string("net", "geometric");
  const auto h = static_cast<std::size_t>(flags.get_int("h", 2));
  const double rate = flags.get_double("rate", 0.01);
  const double horizon = flags.get_double("horizon", 2000.0);
  const double laxity_min = flags.get_double("laxity-min", 2.0);
  const double laxity_max = flags.get_double("laxity-max", 6.0);
  const double delay_min = flags.get_double("delay-min", 0.5);
  const double delay_max = flags.get_double("delay-max", 2.0);
  const auto seed = flags.get_seed("seed", 42);
  const auto policy = parse_policy(flags.get_string("policy", "edf"));
  flags.check_unused();

  Rng rng(seed);
  const Topology topo =
      make_net(parse_net(net_name), sites, DelayRange{delay_min, delay_max}, rng);

  WorkloadConfig wl;
  wl.arrival_rate_per_site = rate;
  wl.horizon = horizon;
  wl.laxity_min = laxity_min;
  wl.laxity_max = laxity_max;
  wl.seed = seed;
  const auto arrivals = generate_workload(topo.site_count(), wl);

  std::cout << "network: " << net_name << " (" << topo.site_count()
            << " sites, " << topo.link_count() << " links), h=" << h
            << ", jobs=" << arrivals.size() << "\n\n";

  LocalSchedulerConfig sched_cfg;
  sched_cfg.policy = policy;

  SystemConfig rtds_cfg;
  rtds_cfg.node.sphere_radius_h = h;
  rtds_cfg.node.sched = sched_cfg;
  RtdsSystem rtds(topo, rtds_cfg);
  rtds.run(arrivals);

  const auto local = run_local_only(topo, arrivals, sched_cfg);
  OffloadConfig bid_cfg;
  bid_cfg.sphere_radius_h = h;
  bid_cfg.sched = sched_cfg;
  const auto bid = run_offload(topo, arrivals, bid_cfg);
  OffloadConfig rnd_cfg = bid_cfg;
  rnd_cfg.policy = OffloadPolicy::kRandom;
  const auto random = run_offload(topo, arrivals, rnd_cfg);
  CentralizedConfig central_cfg;
  central_cfg.sched = sched_cfg;
  const auto central = run_centralized(topo, arrivals, central_cfg);

  Table table({"scheduler", "jobs", "ratio", "local", "remote", "rejected",
               "msgs/job", "latency"});
  add_metrics_row(table, "RTDS", rtds.metrics());
  add_metrics_row(table, "LOCAL", local);
  add_metrics_row(table, "BID", bid);
  add_metrics_row(table, "RANDOM", random);
  add_metrics_row(table, "CENTRAL", central);
  table.print(std::cout);

  std::cout << "\nRTDS reject reasons:\n";
  for (const auto& [reason, count] : rtds.metrics().reject_by_reason)
    std::cout << "  " << to_string(static_cast<RejectReason>(reason)) << ": "
              << count << "\n";
  std::cout << "RTDS adjustment cases:";
  for (const auto& [c, count] : rtds.metrics().adjustment_cases)
    std::cout << "  case" << c << "=" << count;
  std::cout << "\nRTDS ACS size: mean "
            << (rtds.metrics().acs_size.count()
                    ? rtds.metrics().acs_size.mean()
                    : 0.0)
            << "\n";
  return 0;
}

}  // namespace
}  // namespace rtds

int main(int argc, char** argv) { return rtds::run(argc, argv); }
