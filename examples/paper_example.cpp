// Walks through the paper's §12 worked example step by step, printing every
// intermediate quantity with the formula that produced it — a companion to
// reading the paper. bench_fig2_table1 prints the same artifacts in table
// form; this example narrates them.
#include <iostream>

#include "core/mapper.hpp"
#include "dag/analysis.hpp"
#include "dag/generators.hpp"

using namespace rtds;

int main() {
  const Dag dag = paper_example();

  std::cout << "The job (Fig. 2): 5 tasks, costs c = {6, 4, 4, 2, 5}\n";
  std::cout << "arcs: t1->t3 t2->t3 t1->t4 t2->t4 t3->t5 t4->t5\n\n";

  std::cout << "List-scheduling priorities (longest node-weighted path to a "
               "sink, task included):\n";
  const auto bl = bottom_levels(dag);
  for (TaskId t = 0; t < dag.task_count(); ++t)
    std::cout << "  priority(t" << t + 1 << ") = " << bl[t] << "\n";

  MapperInput in;
  in.dag = &dag;
  in.release = 0.0;
  in.deadline = 66.0;
  in.surpluses = {0.5, 0.4};
  in.comm_diameter = 3.0;
  std::cout << "\nMapper inputs: surpluses I1 = 0.5, I2 = 0.4; ACS diameter "
               "omega = 3; job window [0, 66]\n\n";

  const auto m = build_trial_mapping(in);
  if (!m) {
    std::cerr << "unexpected rejection\n";
    return 1;
  }

  std::cout << "Schedule S (execution time = c(t)/I, start >= preds' d + "
               "omega when crossing processors):\n";
  for (TaskId t = 0; t < dag.task_count(); ++t)
    std::cout << "  t" << t + 1 << " on p" << m->assignment[t] + 1 << ": r_"
              << t + 1 << " = " << m->s_start[t] << ", d_" << t + 1 << " = "
              << m->s_finish[t] << "   (duration " << dag.cost(t) << "/"
              << m->surpluses[m->assignment[t]] << ")\n";
  std::cout << "  makespan M = " << m->makespan << "\n\n";

  std::cout << "Schedule S* (same mapping, surpluses = 100%):\n";
  for (TaskId t = 0; t < dag.task_count(); ++t)
    std::cout << "  t" << t + 1 << ": [" << m->star_start[t] << ", "
              << m->star_finish[t] << ")\n";
  std::cout << "  makespan M* = " << m->makespan_full
            << "  (lower bound of M for this mapping)\n\n";

  std::cout << "Case analysis (§12.2): M* = " << m->makespan_full
            << " <= d - r = 66 and M = " << m->makespan
            << " <= d - r, so case (ii): stretch by (d-r)/M = "
            << 66.0 / m->makespan << "\n\n";

  std::cout << "Adjusted windows (eq. 3 then eq. 5) — Table 1:\n";
  std::cout << "  ti   ri   di   r(ti)   d(ti)\n";
  for (TaskId t = 0; t < dag.task_count(); ++t)
    std::cout << "  t" << t + 1 << "    " << m->s_start[t] << "    "
              << m->s_finish[t] << "    " << m->release[t] << "    "
              << m->deadline[t] << "\n";

  std::cout << "\nThese windows are what the ACS sites validate against "
               "their exact idle intervals (§10); the maximum coupling then "
               "binds logical processors p1, p2 to physical sites.\n";
  return 0;
}
