// Sphere tuning: how to pick the radius h for a deployment.
//
// Runs the same sporadic workload at several radii and prints the
// acceptance / message / latency trade-off plus a recommendation (the
// smallest h within 2% of the best ratio). Mirrors bench_e3 but as a
// user-facing tool with flags.
//
// Usage:
//   sphere_tuning [--sites=64] [--net=geometric] [--rate=0.02]
//                 [--laxity-min=1.2] [--laxity-max=1.8] [--hmax=5]
//                 [--delay-min=0.1] [--delay-max=0.4] [--seed=42]
#include <iostream>

#include "core/rtds_system.hpp"
#include "net/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace rtds;

namespace {

NetShape parse_net(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(NetShape::kScaleFree); ++i)
    if (name == to_string(static_cast<NetShape>(i)))
      return static_cast<NetShape>(i);
  RTDS_REQUIRE_MSG(false, "unknown --net=" << name);
  return NetShape::kGrid;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sites = static_cast<std::size_t>(flags.get_int("sites", 64));
  const auto net_name = flags.get_string("net", "geometric");
  const double rate = flags.get_double("rate", 0.02);
  const double laxity_min = flags.get_double("laxity-min", 1.2);
  const double laxity_max = flags.get_double("laxity-max", 1.8);
  const auto hmax = static_cast<std::size_t>(flags.get_int("hmax", 5));
  const double delay_min = flags.get_double("delay-min", 0.1);
  const double delay_max = flags.get_double("delay-max", 0.4);
  const auto seed = flags.get_seed("seed", 42);
  flags.check_unused();

  Rng rng(seed);
  const Topology topo = make_net(parse_net(net_name), sites,
                                 DelayRange{delay_min, delay_max}, rng);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = rate;
  wl.horizon = 800.0;
  wl.laxity_min = laxity_min;
  wl.laxity_max = laxity_max;
  wl.seed = seed;
  const auto arrivals = generate_workload(topo.site_count(), wl);

  std::cout << "tuning h on " << net_name << " (" << topo.site_count()
            << " sites), " << arrivals.size() << " jobs\n\n";

  Table table({"h", "ratio%", "msgs/job", "latency", "PCS max", "one-time "
               "PCS msgs"});
  std::vector<double> ratios;
  for (std::size_t h = 0; h <= hmax; ++h) {
    SystemConfig cfg;
    cfg.node.sphere_radius_h = h;
    cfg.measure_pcs_build_cost = h > 0;
    RtdsSystem system(topo, cfg);
    system.run(arrivals);
    const auto& m = system.metrics();
    std::size_t max_pcs = 0;
    for (SiteId s = 0; s < topo.site_count(); ++s)
      max_pcs = std::max(max_pcs, system.node(s).pcs().size());
    ratios.push_back(m.guarantee_ratio());
    table.add_row(
        {Table::num(h), Table::num(100.0 * m.guarantee_ratio(), 1),
         Table::num(m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0, 1),
         Table::num(m.decision_latency.mean(), 2), Table::num(max_pcs),
         Table::num(std::size_t{m.pcs_build_messages})});
  }
  table.print(std::cout);

  double best = 0.0;
  for (double r : ratios) best = std::max(best, r);
  std::size_t pick = 0;
  while (pick < ratios.size() && ratios[pick] < best - 0.02) ++pick;
  std::cout << "\nrecommendation: h = " << pick << " (smallest radius within "
            << "2% of the best ratio " << 100.0 * best << "%)\n";
  return 0;
}
