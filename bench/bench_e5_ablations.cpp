// E5 — ablations of every design choice DESIGN.md calls out:
//   1. enrollment policy: Nack vs faithful Timeout (§8 under-specification)
//   2. pre-enrollment gate: none / critical-path / protocol-aware (§9)
//   3. surplus window: job-relative vs fixed observation window (§2)
//   4. §13 busyness-weighted laxity dispatching
//   5. local admission test: greedy EDF vs exact B&B vs preemptive (§13)
//   6. §13 "local knowledge of k": exact initiator idle intervals
//   7. transport model: ideal vs contended store-and-forward (§13)
//   8. mapper task-selection heuristic (§9)
// Each group is one e5_* scenario; each row = one toggled configuration on
// the same workload.
#include <iostream>

#include "common.hpp"

int main() {
  rtds::exp::register_builtin_scenarios();
  std::cout << "E5: design ablations (8x8 grid)\n\n";
  for (const char* scenario :
       {"e5_enroll_policy", "e5_enroll_gate", "e5_surplus_window",
        "e5_laxity_weighting", "e5_admission_policy", "e5_local_knowledge",
        "e5_transport", "e5_mapper_priority"}) {
    rtds::exp::run_and_print(scenario, std::cout);
    std::cout << "\n";
  }
  std::cout << "Expectation: nack ~ timeout in ratio but lower latency; the "
               "critical-path gate saves messages for free; job-window "
               "surplus reduces matching failures; busyness laxity is a "
               "small case-iii effect; exact/preemptive admission >= EDF.\n";
  return 0;
}
