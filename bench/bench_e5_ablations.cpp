// E5 — ablations of every design choice DESIGN.md calls out:
//   1. enrollment policy: Nack vs faithful Timeout (§8 under-specification)
//   2. pre-enrollment gate: none / critical-path / protocol-aware (§9)
//   3. surplus window: job-relative vs fixed observation window (§2)
//   4. §13 busyness-weighted laxity dispatching
//   5. local admission test: greedy EDF vs exact B&B vs preemptive (§13)
//   6. §13 "local knowledge of k": exact initiator idle intervals
//   7. transport model: ideal vs contended store-and-forward (§13)
// Each row = one toggled configuration on the same workload pair.
#include "common.hpp"

using namespace rtds;
using namespace rtds::bench;

namespace {

struct Variant {
  std::string name;
  SystemConfig cfg;
};

void run_variants(const char* title, const Condition& c,
                  const std::vector<Variant>& variants) {
  std::cout << title << "\n";
  Table table({"variant", "ratio%", "local", "remote", "msgs/job", "latency"});
  for (const auto& v : variants) {
    RtdsSystem system(c.topo, v.cfg);
    system.run(c.arrivals);
    const auto& m = system.metrics();
    table.add_row(
        {v.name, pct(m.guarantee_ratio()),
         Table::num(std::size_t{m.accepted_local}),
         Table::num(std::size_t{m.accepted_remote}),
         Table::num(m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0, 1),
         Table::num(m.decision_latency.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

SystemConfig base_cfg() {
  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;
  return cfg;
}

}  // namespace

int main() {
  std::cout << "E5: design ablations (8x8 grid)\n\n";

  ConditionSpec par = parallel_regime();
  par.net = NetShape::kGrid;
  par.sites = 64;
  par.horizon = 600.0;
  par.rate = 0.02;
  const Condition parallel = make_condition(par);

  ConditionSpec off = offload_regime();
  off.net = NetShape::kGrid;
  off.sites = 64;
  off.horizon = 600.0;
  off.rate = 0.04;
  const Condition offload = make_condition(off);

  // 1. enrollment policy -----------------------------------------------
  {
    std::vector<Variant> variants;
    Variant nack{"enroll=nack (default)", base_cfg()};
    Variant timeout{"enroll=timeout (faithful §8)", base_cfg()};
    timeout.cfg.node.enroll_policy = EnrollPolicy::kTimeout;
    variants.push_back(nack);
    variants.push_back(timeout);
    run_variants("(1) enrollment policy [parallel regime]", parallel,
                 variants);
  }

  // 2. pre-enrollment gate ----------------------------------------------
  {
    std::vector<Variant> variants;
    for (const auto gate : {EnrollGate::kNone, EnrollGate::kCriticalPath,
                            EnrollGate::kProtocolAware}) {
      Variant v{std::string("gate=") + to_string(gate), base_cfg()};
      v.cfg.node.enroll_gate = gate;
      variants.push_back(v);
    }
    run_variants("(2) pre-enrollment gate [offload regime, loaded]", offload,
                 variants);
  }

  // 3. surplus window -----------------------------------------------------
  {
    std::vector<Variant> variants;
    Variant jobwin{"surplus=job-window (default)", base_cfg()};
    Variant fixed{"surplus=fixed-window (literal §2)", base_cfg()};
    fixed.cfg.node.job_window_surplus = false;
    variants.push_back(jobwin);
    variants.push_back(fixed);
    run_variants("(3) surplus observation window [offload regime]", offload,
                 variants);
  }

  // 4. busyness-weighted laxity (§13) -------------------------------------
  {
    std::vector<Variant> variants;
    Variant uniform{"laxity=uniform (eq. 4)", base_cfg()};
    Variant weighted{"laxity=busyness-weighted (§13)", base_cfg()};
    weighted.cfg.node.mapper.busyness_weighted_laxity = true;
    variants.push_back(uniform);
    variants.push_back(weighted);
    run_variants("(4) laxity dispatching [parallel regime]", parallel,
                 variants);
  }

  // 5. local admission policy ---------------------------------------------
  {
    std::vector<Variant> variants;
    for (const auto policy :
         {AdmissionPolicy::kEdf, AdmissionPolicy::kExact,
          AdmissionPolicy::kPreemptive}) {
      Variant v{std::string("admission=") + to_string(policy), base_cfg()};
      v.cfg.node.sched.policy = policy;
      variants.push_back(v);
    }
    run_variants("(5) local admission test [parallel regime]", parallel,
                 variants);
  }


  // 6. §13 local knowledge of k -------------------------------------------
  {
    std::vector<Variant> variants;
    Variant off{"initiator=surplus-only (paper base)", base_cfg()};
    Variant on{"initiator=exact-idle-intervals (§13)", base_cfg()};
    on.cfg.node.initiator_local_knowledge = true;
    variants.push_back(off);
    variants.push_back(on);
    run_variants("(6) local knowledge of k [parallel regime]", parallel,
                 variants);
  }


  // 7. transport model (§13 throughput realism) ----------------------------
  {
    std::vector<Variant> variants;
    Variant ideal{"transport=ideal (paper model)", base_cfg()};
    Variant roomy{"transport=contended bw=100", base_cfg()};
    roomy.cfg.transport_model = TransportModel::kContended;
    roomy.cfg.link_bandwidth = 100.0;
    Variant tight{"transport=contended bw=8", base_cfg()};
    tight.cfg.transport_model = TransportModel::kContended;
    tight.cfg.link_bandwidth = 8.0;
    Variant roomy_slack{"contended bw=100 + slack 1", base_cfg()};
    roomy_slack.cfg.transport_model = TransportModel::kContended;
    roomy_slack.cfg.link_bandwidth = 100.0;
    roomy_slack.cfg.node.protocol_overhead_slack = 1.0;
    Variant tuned{"contended bw=8 + x2 + slack 8", base_cfg()};
    tuned.cfg.transport_model = TransportModel::kContended;
    tuned.cfg.link_bandwidth = 8.0;
    tuned.cfg.node.protocol_overhead_factor = 2.0;
    tuned.cfg.node.protocol_overhead_slack = 8.0;
    variants.push_back(ideal);
    variants.push_back(roomy);
    variants.push_back(roomy_slack);
    variants.push_back(tight);
    variants.push_back(tuned);
    std::cout << "(7) transport model [parallel regime]\n";
    Table table(
        {"variant", "delivered%", "remote", "failed jobs", "latency"});
    for (const auto& v : variants) {
      RtdsSystem system(parallel.topo, v.cfg);
      system.run(parallel.arrivals);
      const auto& m = system.metrics();
      table.add_row({v.name, pct(m.delivered_ratio()),
                     Table::num(std::size_t{m.accepted_remote}),
                     Table::num(std::size_t{m.failed_jobs}),
                     Table::num(m.decision_latency.mean(), 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }


  // 8. mapper task-selection heuristic (§9) --------------------------------
  {
    std::vector<Variant> variants;
    for (const auto prio : {TaskPriority::kBottomLevel, TaskPriority::kCost,
                            TaskPriority::kFifo}) {
      Variant v{std::string("mapper-priority=") + to_string(prio), base_cfg()};
      v.cfg.node.mapper.task_priority = prio;
      variants.push_back(v);
    }
    run_variants("(8) mapper task selection [parallel regime]", parallel,
                 variants);
  }

  std::cout << "Expectation: nack ~ timeout in ratio but lower latency; the "
               "critical-path gate saves messages for free; job-window "
               "surplus reduces matching failures; busyness laxity is a "
               "small case-iii effect; exact/preemptive admission >= EDF.\n";
  return 0;
}
