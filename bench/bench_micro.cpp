// E6 — google-benchmark microbenchmarks of every hot component: the event
// engine, routing-table merges and phased APSP, PCS construction, the §5
// admission tests, the §12 mapper, maximum matching, and one end-to-end
// protocol round. These bound the per-job CPU cost a production deployment
// of the management processor would pay — and hence the per-worker trial
// cost the src/exp/ TrialRunner fans out.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/mapper.hpp"
#include "dag/analysis.hpp"
#include "core/rtds_system.hpp"
#include "dag/generators.hpp"
#include "exp/condition.hpp"
#include "matching/bipartite.hpp"
#include "fault/fault.hpp"
#include "load/engine.hpp"
#include "load/source.hpp"
#include "net/generators.hpp"
#include "policy/policy.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/apsp.hpp"
#include "routing/pcs.hpp"
#include "sched/admission.hpp"
#include "snap/snapshot.hpp"
#include "snap/warm_start.hpp"

namespace rtds {
namespace {

// ------------------------------------------------------------ sim core ----

void BM_EventQueue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<Time> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1000.0);
  for (auto _ : state) {
    Simulator sim;
    std::size_t fired = 0;
    for (Time t : times)
      sim.schedule_at(t, [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000)->Arg(100000);

// ------------------------------------------------------------- routing ----

void BM_PhasedApsp(benchmark::State& state) {
  Rng rng(2);
  const auto side = static_cast<std::size_t>(state.range(0));
  const Topology topo = make_grid(side, side, DelayRange{0.5, 2.0}, rng);
  for (auto _ : state) {
    auto tables = phased_apsp(topo, 4);
    benchmark::DoNotOptimize(tables);
  }
  state.SetLabel(std::to_string(side * side) + " sites, 4 phases");
}
BENCHMARK(BM_PhasedApsp)->Arg(8)->Arg(16)->Arg(24);

void BM_PcsBuild(benchmark::State& state) {
  Rng rng(3);
  const Topology topo = make_grid(16, 16, DelayRange{0.5, 2.0}, rng);
  const auto tables = phased_apsp(topo, 4);
  for (auto _ : state) {
    auto pcs = Pcs::build(tables, 128, 2);
    benchmark::DoNotOptimize(pcs);
  }
}
BENCHMARK(BM_PcsBuild);

// ---------------------------------------------------------- large topo ----
//
// The DESIGN.md §10 scale path: sphere-local tables and incremental repair
// are what keep these sub-millisecond at 1024 sites — the pre-PR-5 dense
// tables and full-recompute repair were quadratic-to-cubic here.

void BM_LargeTopoPcsBuild(benchmark::State& state) {
  // Full control-plane bring-up at N=1024: interrupted APSP plus every
  // site's sphere, exactly what RtdsSystem construction pays.
  Rng rng(12);
  const Topology topo = make_grid(32, 32, DelayRange{0.5, 2.0}, rng);
  for (auto _ : state) {
    const auto tables = phased_apsp(topo, 4);
    std::size_t members = 0;
    for (SiteId s = 0; s < topo.site_count(); ++s)
      members += Pcs::build(tables, s, 2).size();
    benchmark::DoNotOptimize(members);
  }
  state.SetLabel("1024 sites: APSP + all spheres, h=2");
}
BENCHMARK(BM_LargeTopoPcsBuild);

void BM_LargeTopoRepairLinkFlap(benchmark::State& state) {
  // One link flap (down + up) against prebuilt tables — the §7 repair the
  // fault layer triggers on every topology change. Timed per repair.
  Rng rng(13);
  const auto side = static_cast<std::size_t>(state.range(0));
  const Topology topo = make_grid(side, side, DelayRange{0.5, 2.0}, rng);
  // Flap a central link so the dirty region does not fall off the grid.
  const SiteId a = static_cast<SiteId>(side * (side / 2) + side / 2);
  const SiteId b = a + 1;
  fault::FaultPlan plan;
  plan.events = {fault::FaultEvent{1.0, fault::FaultKind::kLinkDown, a, b},
                 fault::FaultEvent{2.0, fault::FaultKind::kLinkUp, a, b}};
  fault::FaultState faults(topo, plan);
  auto tables = phased_apsp(topo, 4);
  ApspRepairer repairer(topo, 4);  // reused across events, as RtdsSystem does
  const SiteId changed[2] = {a, b};
  for (auto _ : state) {
    faults.apply(plan.events[0]);
    repairer.repair(tables, &faults, changed);
    faults.apply(plan.events[1]);
    repairer.repair(tables, &faults, changed);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 2);  // repairs
  state.SetLabel(std::to_string(side * side) + " sites, per flap=2 repairs");
}
BENCHMARK(BM_LargeTopoRepairLinkFlap)->Arg(16)->Arg(32);

void BM_LargeTopoEndToEndRound(benchmark::State& state) {
  // Whole-system round at N=1024: construction (APSP + 1024 spheres) plus
  // one distributed protocol round.
  Rng topo_rng(14);
  const Topology topo = make_grid(32, 32, DelayRange{0.5, 1.0}, topo_rng);
  for (auto _ : state) {
    RtdsSystem system(topo, SystemConfig{});
    Rng rng(15);
    auto job = std::make_shared<Job>();
    job->id = 1;
    job->dag = make_fork_join(8, CostRange{3.0, 6.0}, rng);
    job->release = 0.1;
    job->deadline = 0.1 + 0.8 * job->dag.total_work();
    system.run({{512, job}});
    benchmark::DoNotOptimize(system.metrics().arrived);
  }
  state.SetLabel("1024 sites: system build + 1 round");
}
BENCHMARK(BM_LargeTopoEndToEndRound);

// ----------------------------------------------------------- admission ----

std::vector<WindowedTask> random_tasks(std::size_t n, Rng& rng) {
  std::vector<WindowedTask> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const Time r = rng.uniform(0.0, 20.0);
    const Time c = rng.uniform(0.5, 4.0);
    tasks.push_back(WindowedTask{static_cast<TaskId>(i), r,
                                 r + c + rng.uniform(0.0, 10.0), c});
  }
  return tasks;
}

SchedulingPlan random_plan(Rng& rng) {
  SchedulingPlan plan;
  Time cursor = 0.0;
  for (int b = 0; b < 6; ++b) {
    cursor += rng.uniform(1.0, 4.0);
    const Time len = rng.uniform(0.5, 2.0);
    plan.reserve(Reservation{9, 0, cursor, cursor + len});
    cursor += len;
  }
  return plan;
}

void BM_AdmitEdf(benchmark::State& state) {
  Rng rng(4);
  const auto plan = random_plan(rng);
  const auto tasks = random_tasks(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto p = admit_edf(plan, tasks);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_AdmitEdf)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_AdmitExact(benchmark::State& state) {
  Rng rng(5);
  const auto plan = random_plan(rng);
  const auto tasks = random_tasks(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto p = admit_exact(plan, tasks);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_AdmitExact)->Arg(4)->Arg(8)->Arg(10);

void BM_AdmitPreemptive(benchmark::State& state) {
  Rng rng(6);
  const auto plan = random_plan(rng);
  const auto tasks = random_tasks(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto p = admit_preemptive(plan, tasks);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_AdmitPreemptive)->Arg(4)->Arg(16)->Arg(32);

// -------------------------------------------------------------- mapper ----

void BM_Mapper(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Dag dag = make_layered(n / 4 ? n / 4 : 1, 4, 0.4,
                               CostRange{1.0, 8.0}, rng);
  MapperInput in;
  in.dag = &dag;
  in.release = 0.0;
  in.deadline = 10.0 * critical_path_length(dag);
  in.surpluses = {1.0, 0.8, 0.6, 0.5};
  in.comm_diameter = 2.0;
  for (auto _ : state) {
    auto m = build_trial_mapping(in);
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel(std::to_string(dag.task_count()) + " tasks");
}
BENCHMARK(BM_Mapper)->Arg(16)->Arg(64)->Arg(256);

// ------------------------------------------------------------ matching ----

void BM_HopcroftKarp(benchmark::State& state) {
  Rng rng(8);
  const auto n = static_cast<std::size_t>(state.range(0));
  BipartiteGraph g(n, n);
  for (std::size_t l = 0; l < n; ++l)
    for (int k = 0; k < 4; ++k)
      g.add_edge(l, static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  for (auto _ : state) {
    auto m = max_matching_hopcroft_karp(g);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(16)->Arg(128)->Arg(1024);

// ------------------------------------------------------- whole protocol ----

void BM_EndToEndProtocolRound(benchmark::State& state) {
  // One full distributed round (local fail -> enroll -> map -> validate ->
  // match -> dispatch) on a 3x3 grid, including simulator overhead.
  Rng topo_rng(9);
  const Topology topo = make_grid(3, 3, DelayRange{0.5, 1.0}, topo_rng);
  for (auto _ : state) {
    RtdsSystem system(topo, SystemConfig{});
    Rng rng(10);
    auto filler = std::make_shared<Job>();
    filler->id = 1;
    filler->dag = make_fork_join(8, CostRange{3.0, 6.0}, rng);
    filler->release = 0.0;
    filler->deadline = 1000.0;
    auto job = std::make_shared<Job>();
    job->id = 2;
    job->dag = make_fork_join(8, CostRange{3.0, 6.0}, rng);
    job->release = 0.1;
    job->deadline = 0.1 + 0.8 * job->dag.total_work();
    system.run({{4, filler}, {4, job}});
    benchmark::DoNotOptimize(system.metrics().arrived);
  }
}
BENCHMARK(BM_EndToEndProtocolRound);

// ------------------------------------------------------- observability ----

void BM_MetricsHotPath(benchmark::State& state) {
  // The RTDS_COUNT fast path in its three states (DESIGN.md §11 overhead
  // model): arg 0 = no Scope bound (every experiment table's default —
  // one TLS load + branch), arg 1 = bound counter increment, arg 2 =
  // bound histogram observe (bit_width bin + min/max).
  const int mode = static_cast<int>(state.range(0));
  obs::MetricsBuffer buffer;
  std::optional<obs::Scope> scope;
  if (mode != 0) scope.emplace(&buffer);
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (mode == 2) {
      RTDS_HIST("bench.obs.hist", i);
    } else {
      RTDS_COUNT("bench.obs.count");
    }
    benchmark::DoNotOptimize(++i);
  }
  state.SetLabel(mode == 0   ? "unbound (TLS load + branch)"
                 : mode == 1 ? "bound counter"
                             : "bound histogram");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHotPath)->Arg(0)->Arg(1)->Arg(2);

void BM_EndToEndProtocolRoundTraced(benchmark::State& state) {
  // BM_EndToEndProtocolRound with a full obs binding (metrics + trace):
  // the traced-vs-untraced pair bounds the observability tax on a whole
  // protocol round. tools/bench_compare.py gates the *untraced* twin, so
  // an obs regression that leaks into the unbound path fails CI.
  Rng topo_rng(9);
  const Topology topo = make_grid(3, 3, DelayRange{0.5, 1.0}, topo_rng);
  obs::MetricsBuffer metrics;
  obs::TraceRecorder trace;
  for (auto _ : state) {
    trace.clear();
    obs::Scope scope(&metrics, &trace);
    RtdsSystem system(topo, SystemConfig{});
    Rng rng(10);
    auto filler = std::make_shared<Job>();
    filler->id = 1;
    filler->dag = make_fork_join(8, CostRange{3.0, 6.0}, rng);
    filler->release = 0.0;
    filler->deadline = 1000.0;
    auto job = std::make_shared<Job>();
    job->id = 2;
    job->dag = make_fork_join(8, CostRange{3.0, 6.0}, rng);
    job->release = 0.1;
    job->deadline = 0.1 + 0.8 * job->dag.total_work();
    system.run({{4, filler}, {4, job}});
    benchmark::DoNotOptimize(system.metrics().arrived);
  }
}
BENCHMARK(BM_EndToEndProtocolRoundTraced);

void BM_WorkloadSimulation(benchmark::State& state) {
  // Sustained simulation throughput: jobs decided per wall-second. Uses
  // the exp condition machinery, so this is exactly one scenario trial.
  exp::ConditionSpec cs;
  cs.net = NetShape::kGrid;
  cs.sites = 36;
  cs.delay_min = 0.2;
  cs.delay_max = 0.8;
  cs.rate = 0.02;
  cs.horizon = 200.0;
  cs.seed = 11;
  const exp::Condition c = exp::make_condition(cs);
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    RtdsSystem system(c.topo, SystemConfig{});
    system.run(c.arrivals);
    jobs += system.metrics().arrived;
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_WorkloadSimulation);

// ------------------------------------------------------- §12 hardening ----

void BM_DedupWindow(benchmark::State& state) {
  // The per-delivery cost of the anti-replay window on a realistic mix:
  // mostly in-order sequences with periodic duplicates and in-window
  // back-fills (the shape chaos runs actually produce).
  std::uint64_t accepted = 0;
  for (auto _ : state) {
    fault::DedupWindow w;
    std::uint64_t seq = 0;
    for (int i = 0; i < 1000; ++i) {
      accepted += w.accept(++seq);       // fresh, in order
      if (i % 7 == 0) accepted += w.accept(seq);       // network duplicate
      if (i % 13 == 0 && seq > 4) accepted += w.accept(seq - 4);  // reorder
    }
    benchmark::DoNotOptimize(w.max_seq());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
  benchmark::DoNotOptimize(accepted);
}
BENCHMARK(BM_DedupWindow);

void BM_ChaosRecoveryRound(benchmark::State& state) {
  // The retransmit path end to end: a lossy duplicate-and-reorder network
  // forces the backoff ladder (arm / fire / fresh-seq resend / cancel)
  // on every protocol round. Compare against BM_WorkloadSimulation for
  // the price of chaos recovery itself.
  exp::ConditionSpec cs;
  cs.net = NetShape::kGrid;
  cs.sites = 36;
  cs.delay_min = 0.2;
  cs.delay_max = 0.8;
  cs.rate = 0.02;
  cs.horizon = 200.0;
  cs.seed = 11;
  const exp::Condition c = exp::make_condition(cs);
  SystemConfig cfg;
  cfg.faults.drop_prob = 0.05;
  cfg.faults.dup_prob = 0.05;
  cfg.faults.reorder_prob = 0.1;
  cfg.node.retransmit = true;
  std::uint64_t retransmits = 0;
  for (auto _ : state) {
    RtdsSystem system(c.topo, cfg);
    system.run(c.arrivals);
    retransmits += system.metrics().retransmits;
  }
  state.SetItemsProcessed(static_cast<int64_t>(retransmits));
  state.SetLabel("items = retransmissions");
}
BENCHMARK(BM_ChaosRecoveryRound);

// ---------------------------------------------------------- checkpoints ----

void BM_SnapshotSaveRestore(benchmark::State& state) {
  // One full checkpoint cycle of a mid-run system: serialize the live
  // state (clock, pending events, node machines, tables, metrics), then
  // restore it into a freshly constructed system. This is the per-save
  // cost `rtds_exp --checkpoint-every` pays, and the restore half is what
  // a warm-start cache hit pays instead of sphere bring-up.
  exp::ConditionSpec cs;
  cs.net = NetShape::kGrid;
  cs.sites = 36;
  cs.delay_min = 0.2;
  cs.delay_max = 0.8;
  cs.rate = 0.02;
  cs.horizon = 200.0;
  cs.seed = 11;
  const exp::Condition c = exp::make_condition(cs);
  SystemConfig cfg;
  cfg.record_events = true;
  RtdsSystem system(c.topo, cfg);
  system.start(c.arrivals);
  system.step_events(2000);  // snapshot mid-run, with real pending events
  const std::string snapshot = snap::Snapshot::save(system);
  for (auto _ : state) {
    std::string bytes = snap::Snapshot::save(system);
    RtdsSystem restored(c.topo, cfg);
    snap::Snapshot::load(std::move(bytes), restored);
    benchmark::DoNotOptimize(restored.metrics().arrived);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(snapshot.size()));
  state.SetLabel(std::to_string(snapshot.size()) +
                 "-byte snapshot, 36 sites mid-run");
}
BENCHMARK(BM_SnapshotSaveRestore);

void BM_WarmStartBringUp(benchmark::State& state) {
  // RtdsSystem construction with the bring-up cache hot vs cold (arg
  // 1/0): the per-trial saving `rtds_exp --warm-start` buys a sweep that
  // reuses one topology. Pure construction — no events fired.
  const bool warm = state.range(0) != 0;
  Rng rng(18);
  const Topology topo = make_grid(16, 16, DelayRange{0.5, 2.0}, rng);
  snap::warm_start_clear();
  snap::set_warm_start_enabled(warm);
  if (warm) {  // populate the cache
    RtdsSystem prime(topo, SystemConfig{});
    benchmark::DoNotOptimize(prime.metrics().arrived);
  }
  for (auto _ : state) {
    RtdsSystem system(topo, SystemConfig{});
    benchmark::DoNotOptimize(system.metrics().arrived);
  }
  snap::set_warm_start_enabled(false);
  snap::warm_start_clear();
  state.SetLabel(warm ? "256 sites, cache hit" : "256 sites, cold build");
}
BENCHMARK(BM_WarmStartBringUp)->Arg(0)->Arg(1);

// ------------------------------------------------- open-system traffic ----

void BM_ArrivalSourceNext(benchmark::State& state) {
  // Per-arrival cost of the lazy streaming generator: the price every
  // open-system run pays per job before any protocol work happens.
  // Arg: 0 = poisson, 1 = bursty (MMPP), 2 = diurnal curve.
  load::ArrivalSpec spec;
  spec.kind = static_cast<load::ArrivalKind>(state.range(0));
  spec.site_count = 64;
  spec.workload.arrival_rate_per_site = 0.05;
  spec.workload.seed = 17;
  std::uint64_t pulled = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto source = load::make_arrival_source(spec);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      auto a = source->next();
      benchmark::DoNotOptimize(a);
      ++pulled;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(pulled));
  state.SetLabel(load::to_string(spec.kind));
}
BENCHMARK(BM_ArrivalSourceNext)->Arg(0)->Arg(1)->Arg(2);

void BM_ShedQueuePush(benchmark::State& state) {
  // The overload path end to end: a heavily oversubscribed open run with
  // a one-slot admission queue, so nearly every arrival exercises the
  // bounded-queue shed decision (drop-lowest-laxity: the O(cap) victim
  // scan). items = jobs shed per wall-second.
  Rng rng(13);
  const Topology topo = make_net(NetShape::kGrid, 16, DelayRange{0.5, 2.0},
                                 rng);
  load::ArrivalSpec spec;
  spec.site_count = 16;
  spec.workload.arrival_rate_per_site = 0.3;
  spec.workload.seed = 13;
  policy::register_builtin_policies();  // idempotent
  const auto policy = policy::PolicyRegistry::instance().create("rtds");
  const auto params = policy::ParamMap::parse_pairs(
      {{"shed.cap", "1"}, {"shed.policy", "drop_lowest_laxity"}},
      policy->describe_params());
  load::OpenConfig cfg;
  cfg.duration = 60.0;
  std::uint64_t shed = 0;
  for (auto _ : state) {
    const auto source = load::make_arrival_source(spec);
    const auto r = load::run_open_rtds(topo, *source, cfg, params);
    const auto it = r.metrics.reject_by_reason.find(
        static_cast<int>(RejectReason::kShed));
    shed += it == r.metrics.reject_by_reason.end() ? 0 : it->second;
  }
  state.SetItemsProcessed(static_cast<int64_t>(shed));
  state.SetLabel("items = jobs shed");
}
BENCHMARK(BM_ShedQueuePush);

}  // namespace
}  // namespace rtds

namespace {

/// Console reporter that additionally writes the machine-readable perf
/// record: one JSON object per benchmark with ns/op (real and CPU) and
/// items/s, so CI can track the perf trajectory commit over commit.
/// Target file is BENCH_micro.json in the working directory (override:
/// RTDS_BENCH_JSON). Wraps the display reporter because google-benchmark
/// ignores a custom file reporter unless --benchmark_out is set.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      e.real_ns = run.GetAdjustedRealTime();
      e.cpu_ns = run.GetAdjustedCPUTime();
      e.iterations = static_cast<double>(run.iterations);
      const auto it = run.counters.find("items_per_second");
      e.items_per_second = it != run.counters.end() ? it->second.value : 0.0;
      entries_.push_back(std::move(e));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    const char* env_path = std::getenv("RTDS_BENCH_JSON");
    const std::string path = env_path ? env_path : "BENCH_micro.json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_micro: cannot write " << path << "\n";
      return;
    }
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "    {\"name\": \"" << e.name << "\", \"ns_per_op\": "
          << std::setprecision(17) << e.real_ns
          << ", \"cpu_ns_per_op\": " << e.cpu_ns
          << ", \"items_per_second\": " << e.items_per_second
          << ", \"iterations\": " << e.iterations << "}"
          << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "bench_micro: wrote " << path << " (" << entries_.size()
              << " benchmarks)\n";
  }

 private:
  struct Entry {
    std::string name;
    double real_ns = 0.0;
    double cpu_ns = 0.0;
    double items_per_second = 0.0;
    double iterations = 0.0;
  };
  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
