// E3 — the sphere radius h is THE design knob of the paper: h=0 degenerates
// to local-only scheduling; growing h buys acceptance ratio at the price of
// per-job messages, locked sites, and protocol latency; past the network's
// natural radius it saturates. This bench sweeps h in both regimes and
// prints the full trade-off curve.
#include "common.hpp"

using namespace rtds;
using namespace rtds::bench;

namespace {

void sweep(const char* title, ConditionSpec spec) {
  std::cout << title << "\n";
  const Condition c = make_condition(spec);
  Table table({"h", "ratio%", "remote", "msgs/job", "ACS mean", "latency",
               "PCS max"});
  for (std::size_t h = 0; h <= 5; ++h) {
    SystemConfig cfg;
    cfg.node.sphere_radius_h = h;
    RtdsSystem system(c.topo, cfg);
    system.run(c.arrivals);
    const auto& m = system.metrics();
    std::size_t max_pcs = 0;
    for (SiteId s = 0; s < c.topo.site_count(); ++s)
      max_pcs = std::max(max_pcs, system.node(s).pcs().size());
    table.add_row(
        {Table::num(h), pct(m.guarantee_ratio()),
         Table::num(std::size_t{m.accepted_remote}),
         Table::num(m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0, 1),
         Table::num(m.acs_size.count() ? m.acs_size.mean() : 0.0, 1),
         Table::num(m.decision_latency.mean(), 2), Table::num(max_pcs)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "E3: sphere radius sweep (8x8 grid)\n\n";
  ConditionSpec parallel = parallel_regime();
  parallel.net = NetShape::kGrid;
  parallel.sites = 64;
  parallel.horizon = 600.0;
  parallel.rate = 0.02;
  sweep("(a) parallel regime", parallel);

  ConditionSpec offload = offload_regime();
  offload.net = NetShape::kGrid;
  offload.sites = 64;
  offload.horizon = 600.0;
  offload.rate = 0.04;
  sweep("(b) offload regime", offload);

  std::cout << "Expectation: ratio rises with h then knees; msgs/job and "
               "ACS size keep growing — pick the knee.\n";
  return 0;
}
