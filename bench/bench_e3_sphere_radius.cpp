// E3 — the sphere radius h is THE design knob of the paper: h=0 degenerates
// to local-only scheduling; growing h buys acceptance ratio at the price of
// per-job messages, locked sites, and protocol latency; past the network's
// natural radius it saturates. Scenarios: e3_sphere_radius (parallel
// regime), e3_sphere_radius_offload.
#include <iostream>

#include "common.hpp"

int main() {
  rtds::exp::register_builtin_scenarios();
  std::cout << "E3: sphere radius sweep (8x8 grid)\n\n";
  rtds::exp::run_and_print("e3_sphere_radius", std::cout);
  std::cout << "\n";
  rtds::exp::run_and_print("e3_sphere_radius_offload", std::cout);
  std::cout << "\n";
  std::cout << "Expectation: ratio rises with h then knees; msgs/job and "
               "ACS size keep growing — pick the knee.\n";
  return 0;
}
