// E2 — guarantee ratio vs load, RTDS against all baselines, in the two
// regimes DESIGN.md motivates:
//   (a) offload regime  — generous windows, expensive links: every kind of
//       cooperation helps; RTDS, BID and RANDOM all beat LOCAL.
//   (b) parallel regime — windows tighter than total work, cheap links:
//       whole-job schemes (LOCAL/BID/RANDOM) hit a structural ceiling and
//       only DAG partitioning (RTDS) approaches the omniscient CENTRAL.
// The paper's §14 claim is qualitative ("increase of the number of
// accepted jobs"); these tables are the quantitative version.
#include "baseline/broadcast.hpp"
#include "common.hpp"

using namespace rtds;
using namespace rtds::bench;

namespace {

void sweep(const char* title, ConditionSpec base,
           const std::vector<double>& rates) {
  std::cout << title << "\n";
  Table table({"rate/site", "jobs", "RTDS%", "LOCAL%", "BID%", "RANDOM%",
               "BCAST%", "CENTRAL%"});
  for (double rate : rates) {
    ConditionSpec spec = base;
    spec.rate = rate;
    const Condition c = make_condition(spec);

    SystemConfig rtds_cfg;
    rtds_cfg.node.sphere_radius_h = 2;
    const auto rtds = run_rtds(c, rtds_cfg);
    const auto local =
        run_local_only(c.topo, c.arrivals, LocalSchedulerConfig{});
    OffloadConfig bid_cfg;
    const auto bid = run_offload(c.topo, c.arrivals, bid_cfg);
    OffloadConfig rnd_cfg;
    rnd_cfg.policy = OffloadPolicy::kRandom;
    const auto rnd = run_offload(c.topo, c.arrivals, rnd_cfg);
    BroadcastConfig bcast_cfg;
    const auto bcast = run_broadcast(c.topo, c.arrivals, bcast_cfg);
    const auto central =
        run_centralized(c.topo, c.arrivals, CentralizedConfig{});

    table.add_row({Table::num(rate, 3), Table::num(std::size_t{rtds.arrived}),
                   pct(rtds.guarantee_ratio()), pct(local.guarantee_ratio()),
                   pct(bid.guarantee_ratio()), pct(rnd.guarantee_ratio()),
                   pct(bcast.guarantee_ratio()),
                   pct(central.guarantee_ratio())});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "E2: guarantee ratio vs offered load (8x8 grid, h=2)\n\n";

  ConditionSpec offload = offload_regime();
  offload.net = NetShape::kGrid;
  offload.sites = 64;
  offload.horizon = 800.0;
  sweep("(a) offload regime: laxity 2-6, link delay 0.5-2.0", offload,
        {0.005, 0.01, 0.02, 0.04, 0.08});

  ConditionSpec parallel = parallel_regime();
  parallel.net = NetShape::kGrid;
  parallel.sites = 64;
  parallel.horizon = 800.0;
  sweep("(b) parallel regime: laxity 1.2-1.8, link delay 0.05-0.2", parallel,
        {0.005, 0.01, 0.02, 0.04});

  std::cout << "Expectation: (a) CENTRAL >= BID >= RTDS > RANDOM > LOCAL "
               "with gaps widening under load;\n"
               "             (b) CENTRAL >= RTDS >> BID ~ RANDOM ~ LOCAL "
               "(whole-job schemes hit the window<work ceiling).\n";
  return 0;
}
