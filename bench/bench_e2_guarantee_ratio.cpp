// E2 — guarantee ratio vs load, RTDS against all baselines, in the two
// regimes DESIGN.md motivates:
//   (a) offload regime  — generous windows, expensive links: every kind of
//       cooperation helps; RTDS, BID and RANDOM all beat LOCAL.
//   (b) parallel regime — windows tighter than total work, cheap links:
//       whole-job schemes (LOCAL/BID/RANDOM) hit a structural ceiling and
//       only DAG partitioning (RTDS) approaches the omniscient CENTRAL.
// The paper's §14 claim is qualitative ("increase of the number of
// accepted jobs"); these tables are the quantitative version. Scenarios:
// e2_guarantee_ratio, e2_guarantee_ratio_parallel.
#include <iostream>

#include "common.hpp"

int main() {
  rtds::exp::register_builtin_scenarios();
  std::cout << "E2: guarantee ratio vs offered load (8x8 grid, h=2)\n\n";
  rtds::exp::run_and_print("e2_guarantee_ratio", std::cout);
  std::cout << "\n";
  rtds::exp::run_and_print("e2_guarantee_ratio_parallel", std::cout);
  std::cout << "\n";
  std::cout << "Expectation: (a) CENTRAL >= BID >= RTDS > RANDOM > LOCAL "
               "with gaps widening under load;\n"
               "             (b) CENTRAL >= RTDS >> BID ~ RANDOM ~ LOCAL "
               "(whole-job schemes hit the window<work ceiling).\n";
  return 0;
}
