// E1 — the paper's headline systems claim (§1, §6, §14): because RTDS only
// ever talks inside a Computing Sphere, the number of sites and link
// messages used per job is bounded by the sphere and *independent of the
// network size*, unlike schemes that broadcast (e.g. [4], which floods
// surplus updates network-wide).
//
// Output: one row per network size N (grid, fixed h=2, fixed per-site
// load): mean/max link-messages per job for RTDS, the analytic sphere
// bound, and the cost a network-wide broadcast enrollment would have paid
// (N-1 contacts × average hop distance) — the latter grows with N while
// RTDS stays flat.
#include "baseline/broadcast.hpp"
#include "common.hpp"
#include "net/shortest_paths.hpp"

using namespace rtds;
using namespace rtds::bench;

int main() {
  std::cout << "E1: per-job message cost vs network size (grid, h=2, "
               "rate=0.02/site, laxity 1.5-3)\n\n";
  Table table({"sites", "jobs", "ratio%", "msgs/job mean", "msgs/job max",
               "sphere bound", "BCAST msgs/job", "PCS size max"});
  for (std::size_t side : {4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    ConditionSpec spec;
    spec.net = NetShape::kGrid;
    spec.sites = side * side;
    spec.rate = 0.02;
    spec.horizon = 400.0;
    spec.laxity_min = 1.5;
    spec.laxity_max = 3.0;
    spec.delay_min = 0.2;
    spec.delay_max = 0.8;
    spec.seed = 42;
    const Condition c = make_condition(spec);

    SystemConfig cfg;
    cfg.node.sphere_radius_h = 2;
    RtdsSystem system(c.topo, cfg);
    system.run(c.arrivals);
    const auto& m = system.metrics();

    std::size_t max_pcs = 0, max_hop_diam = 0;
    for (SiteId s = 0; s < c.topo.site_count(); ++s) {
      max_pcs = std::max(max_pcs, system.node(s).pcs().size());
      max_hop_diam =
          std::max(max_hop_diam, system.node(s).pcs().hop_diameter());
    }
    // Analytic per-job bound: 4 sphere-wide rounds (enroll, reply,
    // validate+reply, dispatch) of |PCS|-1 sends, each <= hop-diameter
    // hops, plus unlock slack -> 8 covers every code path.
    const double bound = 8.0 * double(max_pcs) * double(max_hop_diam);

    // Measured cost of the [4]-style periodic network-wide surplus flood
    // (BCAST baseline), amortized per job. Skipped above 256 sites: the
    // flood itself is what makes large runs expensive — which is the point.
    std::string bcast_cell = "-";
    if (c.topo.site_count() <= 256) {
      BroadcastConfig bcfg;
      const auto bm = run_broadcast(c.topo, c.arrivals, bcfg);
      bcast_cell = Table::num(
          double(bm.transport.total_link_messages) / double(bm.arrived), 1);
    }

    table.add_row({Table::num(c.topo.site_count()),
                   Table::num(std::size_t{m.arrived}),
                   pct(m.guarantee_ratio()),
                   Table::num(m.msgs_per_job.mean(), 1),
                   Table::num(m.msgs_per_job.max(), 0),
                   Table::num(bound, 0), bcast_cell,
                   Table::num(max_pcs)});
  }
  table.print(std::cout);
  std::cout << "\nExpectation (paper §6/§14): RTDS msgs/job flat in N; the "
               "measured [4]-style broadcast cost grows superlinearly.\n";
  return 0;
}
