// E1 — the paper's headline systems claim (§1, §6, §14): because RTDS only
// ever talks inside a Computing Sphere, the number of sites and link
// messages used per job is bounded by the sphere and *independent of the
// network size*, unlike schemes that broadcast (e.g. [4], which floods
// surplus updates network-wide). Scenario: e1_message_bound (see
// src/exp/scenarios.cpp for the declarative spec and EXPERIMENTS.md for
// the expected table).
#include <iostream>

#include "common.hpp"

int main() {
  rtds::exp::register_builtin_scenarios();
  std::cout << "E1: per-job message cost vs network size (grid, h=2, "
               "rate=0.02/site, laxity 1.5-3)\n\n";
  rtds::exp::run_and_print("e1_message_bound", std::cout);
  std::cout << "\nExpectation (paper §6/§14): RTDS msgs/job flat in N; the "
               "measured [4]-style broadcast cost grows superlinearly.\n";
  return 0;
}
