// Regenerates Figure 1 (the RTDS algorithm overview) as a live protocol
// trace: the paper's example DAG arrives on a 3x3 grid whose arrival site
// is pre-loaded, forcing the full pipeline — local test failure, ACS
// enrollment over the sphere, Trial-Mapping construction, validation,
// maximum coupling and distributed execution. The trace body lives in the
// fig1_protocol report scenario (src/exp/reports.cpp).
#include <iostream>

#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"

int main() {
  rtds::exp::register_builtin_scenarios();
  rtds::exp::run_report("fig1_protocol", std::cout);
  return 0;
}
