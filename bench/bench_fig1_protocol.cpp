// Regenerates Figure 1 (the RTDS algorithm overview) as a live protocol
// trace: the paper's example DAG arrives on a 3x3 grid whose arrival site
// is pre-loaded, forcing the full pipeline — local test failure, ACS
// enrollment over the sphere, Trial-Mapping construction, validation,
// maximum coupling and distributed execution. Every protocol event is
// printed with its simulated timestamp.
#include <iostream>

#include "core/rtds_system.hpp"
#include "dag/generators.hpp"
#include "net/generators.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace rtds;

int main() {
  Log::set_level(LogLevel::kTrace);
  Log::set_sink([](LogLevel, const std::string& msg) {
    std::cout << "  | " << msg << "\n";
  });

  Rng rng(7);
  Topology topo = make_grid(3, 3, DelayRange{0.5, 1.0}, rng);
  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;
  RtdsSystem system(std::move(topo), cfg);

  std::cout << "=== Figure 1: RTDS phase flow (traced run) ===\n";
  std::cout << "network: 3x3 grid, h=2; job = paper Figure 2 DAG\n\n";

  // Pre-load the arrival site so the §5 local test fails.
  auto filler = std::make_shared<Job>();
  filler->id = 1;
  filler->dag = paper_example();
  filler->release = 0.0;
  filler->deadline = 1000.0;

  auto job = std::make_shared<Job>();
  job->id = 2;
  job->dag = paper_example();
  job->release = 0.5;
  job->deadline = 0.5 + 1.6 * job->dag.total_work();

  std::cout << "[phase] job 1 arrives at site 4 (filler, accepted locally)\n";
  std::cout << "[phase] job 2 arrives at site 4: local test -> ACS -> "
               "mapping -> validation -> coupling -> execution\n\n";
  system.run({{4, filler}, {4, job}});

  std::cout << "\n=== outcome ===\n";
  Table t({"job", "outcome", "ACS size", "link messages", "decision time"});
  for (const auto& d : system.decisions())
    t.add_row({std::to_string(d.job), to_string(d.outcome),
               Table::num(d.acs_size), Table::num(std::size_t{d.link_messages}),
               Table::num(d.decision_time, 2)});
  t.print(std::cout);

  std::cout << "\nmessage budget by category:\n";
  Table cat({"category", "sends", "link messages"});
  for (const auto& [category, entry] :
       system.metrics().transport.by_category)
    cat.add_row({msg_category_name(category), Table::num(std::size_t{entry.sends}),
                 Table::num(std::size_t{entry.link_messages})});
  cat.print(std::cout);
  Log::set_sink(nullptr);
  return 0;
}
