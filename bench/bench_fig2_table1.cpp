// Regenerates the paper's worked example artifacts:
//   Figure 2 — the 5-task example DAG (printed as an arc list + DOT)
//   Figure 3 — schedule S computed by the Mapper (I1=0.5, I2=0.4, ω=3)
//   Figure 4 — schedule S* at 100% surplus
//   Table 1  — adjusted r(ti) and d(ti)  (case ii, scaling factor 2)
// The printed values must match the paper cell-for-cell; a gtest
// (paper_example_test.cpp) asserts the same numbers.
#include <iostream>

#include "core/mapper.hpp"
#include "dag/dot.hpp"
#include "dag/generators.hpp"
#include "sched/gantt.hpp"
#include "util/table.hpp"

using namespace rtds;

namespace {

void print_schedule(const char* title, const Dag& dag,
                    const TrialMapping& m, const std::vector<Time>& start,
                    const std::vector<Time>& finish) {
  std::cout << title << "\n";
  Table t({"task", "processor", "start", "finish"});
  for (TaskId task = 0; task < dag.task_count(); ++task)
    t.add_row({"t" + std::to_string(task + 1),
               "p" + std::to_string(m.assignment[task] + 1),
               Table::num(start[task], 1), Table::num(finish[task], 1)});
  t.print(std::cout);
  // Gantt view, one row per logical processor (as drawn in the paper).
  std::vector<GanttRow> rows(m.used_processors);
  Time horizon = 0.0;
  for (TaskId task = 0; task < dag.task_count(); ++task) {
    auto& row = rows[m.assignment[task]];
    row.label = "p" + std::to_string(m.assignment[task] + 1);
    row.reservations.push_back(
        Reservation{0, task, start[task], finish[task]});
    horizon = std::max(horizon, finish[task]);
  }
  std::cout << "\n" << render_gantt(rows, 0.0, horizon) << "\n";
}

}  // namespace

int main() {
  const Dag dag = paper_example();

  std::cout << "=== Figure 2: task graph instance ===\n";
  Table fig2({"task", "c(ti)", "successors"});
  for (TaskId t = 0; t < dag.task_count(); ++t) {
    std::string succs;
    for (TaskId s : dag.successors(t)) {
      if (!succs.empty()) succs += ", ";
      succs += "t" + std::to_string(s + 1);
    }
    fig2.add_row({"t" + std::to_string(t + 1), Table::num(dag.cost(t), 0),
                  succs.empty() ? "-" : succs});
  }
  fig2.print(std::cout);
  std::cout << "\nDOT:\n" << to_dot(dag, "figure2") << "\n";

  MapperInput in;
  in.dag = &dag;
  in.release = 0.0;
  in.deadline = 66.0;
  in.surpluses = {0.5, 0.4};
  in.comm_diameter = 3.0;
  const auto m = build_trial_mapping(in);
  if (!m) {
    std::cerr << "mapper unexpectedly rejected the paper instance\n";
    return 1;
  }

  std::cout << "parameters: I1=0.5  I2=0.4  omega(ACS diameter)=3  r=0  d=66\n\n";
  print_schedule("=== Figure 3: schedule S (surplus-degraded) ===", dag, *m,
                 m->s_start, m->s_finish);
  std::cout << "makespan M = " << m->makespan << "   (paper: 33)\n\n";
  print_schedule("=== Figure 4: schedule S* (100% surplus) ===", dag, *m,
                 m->star_start, m->star_finish);
  std::cout << "makespan M* = " << m->makespan_full << "   (paper: 19)\n\n";

  std::cout << "=== Table 1: adjusted r(ti) and d(ti) ===\n";
  std::cout << "adjustment: case " << to_string(m->adjustment)
            << ", scaling factor (d-r)/M = "
            << (in.deadline - in.release) / m->makespan << "\n";
  Table t1({"ti", "ri", "di", "r(ti)", "d(ti)"});
  for (TaskId t = 0; t < dag.task_count(); ++t)
    t1.add_row({std::to_string(t + 1), Table::num(m->s_start[t], 0),
                Table::num(m->s_finish[t], 0), Table::num(m->release[t], 0),
                Table::num(m->deadline[t], 0)});
  t1.print(std::cout);
  std::cout << "\npaper Table 1:   (0,12,0,24) (0,10,0,20) (13,21,24,42) "
               "(15,20,27,40) (23,33,43,66)\n";
  return 0;
}
