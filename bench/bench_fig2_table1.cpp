// Regenerates the paper's worked example artifacts:
//   Figure 2 — the 5-task example DAG (printed as an arc list + DOT)
//   Figure 3 — schedule S computed by the Mapper (I1=0.5, I2=0.4, ω=3)
//   Figure 4 — schedule S* at 100% surplus
//   Table 1  — adjusted r(ti) and d(ti)  (case ii, scaling factor 2)
// The printed values must match the paper cell-for-cell; a gtest
// (paper_example_test.cpp) asserts the same numbers. The body lives in the
// fig2_table1 report scenario (src/exp/reports.cpp).
#include <iostream>

#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"

int main() {
  rtds::exp::register_builtin_scenarios();
  rtds::exp::run_report("fig2_table1", std::cout);
  return 0;
}
