// Shared include for the bench binaries.
//
// The condition setup, trial loops and table printing that used to live
// here moved into the src/exp/ experiment subsystem: conditions are
// declared in exp/condition.hpp, sweeps are registered as declarative
// ScenarioSpecs in exp/scenarios.cpp, trials fan out through the parallel
// TrialRunner (exp/runner.hpp), and output goes through pluggable sinks
// (exp/sinks.hpp — legacy table, CSV, JSON lines). Each bench_e* binary is
// now a thin driver that prints its experiment heading and calls
// run_and_print / run_report over registered scenario names; `rtds_exp`
// runs the same scenarios from the command line with worker-thread
// fan-out. See EXPERIMENTS.md for the experiment -> scenario mapping and
// DESIGN.md §6 for the seed-derivation / parallel-determinism contract.
#pragma once

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"
