// Shared helpers for the experiment regenerators (bench_e*). Each bench
// prints the table(s) documented in EXPERIMENTS.md via rtds::Table so the
// output is uniform and diff-able.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "baseline/centralized.hpp"
#include "baseline/local_only.hpp"
#include "baseline/offload.hpp"
#include "core/rtds_system.hpp"
#include "net/generators.hpp"
#include "util/table.hpp"

namespace rtds::bench {

/// One experiment condition: a topology plus a workload on it.
struct Condition {
  Topology topo;
  std::vector<JobArrival> arrivals;
};

struct ConditionSpec {
  NetShape net = NetShape::kGrid;
  std::size_t sites = 64;
  double delay_min = 0.5, delay_max = 2.0;
  double rate = 0.02;
  Time horizon = 1500.0;
  double laxity_min = 2.0, laxity_max = 6.0;
  std::size_t min_tasks = 4, max_tasks = 12;
  std::uint64_t seed = 42;
};

inline Condition make_condition(const ConditionSpec& spec) {
  Rng rng(spec.seed);
  Condition c;
  c.topo = make_net(spec.net, spec.sites,
                    DelayRange{spec.delay_min, spec.delay_max}, rng);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = spec.rate;
  wl.horizon = spec.horizon;
  wl.laxity_min = spec.laxity_min;
  wl.laxity_max = spec.laxity_max;
  wl.min_tasks = spec.min_tasks;
  wl.max_tasks = spec.max_tasks;
  wl.seed = spec.seed;
  c.arrivals = generate_workload(c.topo.site_count(), wl);
  return c;
}

inline RunMetrics run_rtds(const Condition& c, const SystemConfig& cfg) {
  RtdsSystem system(c.topo, cfg);
  system.run(c.arrivals);
  return system.metrics();
}

/// The two workload regimes discussed throughout EXPERIMENTS.md.
inline ConditionSpec offload_regime() {
  ConditionSpec spec;
  spec.rate = 0.025;
  spec.laxity_min = 2.0;
  spec.laxity_max = 6.0;
  spec.delay_min = 0.5;
  spec.delay_max = 2.0;
  return spec;
}

inline ConditionSpec parallel_regime() {
  ConditionSpec spec;
  spec.rate = 0.015;
  spec.laxity_min = 1.2;
  spec.laxity_max = 1.8;
  spec.delay_min = 0.05;
  spec.delay_max = 0.2;
  return spec;
}

inline std::string pct(double x) { return Table::num(100.0 * x, 1); }

}  // namespace rtds::bench
