// E4 — behaviour of the §12.2 release/deadline adjustment across the laxity
// spectrum: which of cases (i)/(ii)/(iii) fires how often, how often the
// defensive window rejection triggers, and how validation fares downstream
// of each case. Also a direct mapper-level sweep on the paper's example
// instance showing the exact case boundaries at d-r = M* and d-r = M.
#include "common.hpp"
#include "dag/generators.hpp"

using namespace rtds;
using namespace rtds::bench;

int main() {
  // ---- mapper-level boundary sweep on the paper instance ----------------
  std::cout << "E4a: case boundaries on the paper example "
               "(M* = 19, M = 33)\n\n";
  {
    const Dag dag = paper_example();
    Table t({"d - r", "case", "accepted windows"});
    for (double window : {15.0, 19.0, 22.0, 28.0, 32.999, 33.0, 40.0, 66.0}) {
      MapperInput in;
      in.dag = &dag;
      in.release = 0.0;
      in.deadline = window;
      in.surpluses = {0.5, 0.4};
      in.comm_diameter = 3.0;
      AdjustmentCase failure = AdjustmentCase::kReject;
      const auto m = build_trial_mapping(in, {}, &failure);
      t.add_row({Table::num(window, 3),
                 m ? to_string(m->adjustment) : to_string(failure),
                 m ? "yes" : "no"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // ---- system-level laxity sweep ----------------------------------------
  std::cout << "E4b: adjustment-case frequencies vs laxity "
               "(8x8 grid, h=2, rate=0.02, delay 0.1-0.4)\n\n";
  Table table({"laxity", "jobs", "ratio%", "case_ii", "case_iii", "reject_i",
               "reject_win", "match_fail", "gated"});
  struct Band {
    double lo, hi;
  };
  for (const Band band : {Band{1.05, 1.2}, Band{1.2, 1.5}, Band{1.5, 2.0},
                          Band{2.0, 3.0}, Band{3.0, 5.0}, Band{5.0, 8.0}}) {
    ConditionSpec spec;
    spec.net = NetShape::kGrid;
    spec.sites = 64;
    spec.rate = 0.02;
    spec.horizon = 600.0;
    spec.laxity_min = band.lo;
    spec.laxity_max = band.hi;
    spec.delay_min = 0.1;
    spec.delay_max = 0.4;
    const Condition c = make_condition(spec);
    SystemConfig cfg;
    RtdsSystem system(c.topo, cfg);
    system.run(c.arrivals);
    const auto& m = system.metrics();
    auto count = [&](RejectReason r) -> std::uint64_t {
      const auto it = m.reject_by_reason.find(static_cast<int>(r));
      return it == m.reject_by_reason.end() ? 0 : it->second;
    };
    auto cases = [&](int cse) -> std::uint64_t {
      const auto it = m.adjustment_cases.find(cse);
      return it == m.adjustment_cases.end() ? 0 : it->second;
    };
    table.add_row({Table::num(band.lo, 2) + "-" + Table::num(band.hi, 2),
                   Table::num(std::size_t{m.arrived}),
                   pct(m.guarantee_ratio()), Table::num(std::size_t{cases(2)}),
                   Table::num(std::size_t{cases(3)}),
                   Table::num(std::size_t{count(RejectReason::kMapperCaseI)}),
                   Table::num(std::size_t{count(RejectReason::kMapperWindows)}),
                   Table::num(std::size_t{count(RejectReason::kMatchingFailed)}),
                   Table::num(std::size_t{count(RejectReason::kGated)})});
  }
  table.print(std::cout);
  std::cout << "\nExpectation: tight laxity -> case iii and case-i rejects "
               "dominate; loose laxity -> case ii dominates and the ratio "
               "approaches 100%.\n";
  return 0;
}
