// E4 — behaviour of the §12.2 release/deadline adjustment across the laxity
// spectrum: which of cases (i)/(ii)/(iii) fires how often, how often the
// defensive window rejection triggers, and how validation fares downstream
// of each case. Report e4a_case_boundaries gives the mapper-level boundary
// sweep on the paper instance; scenario e4_adjustment_cases gives the
// system-level laxity sweep.
#include <iostream>

#include "common.hpp"

int main() {
  rtds::exp::register_builtin_scenarios();
  std::cout << "E4a: case boundaries on the paper example "
               "(M* = 19, M = 33)\n\n";
  rtds::exp::run_report("e4a_case_boundaries", std::cout);
  std::cout << "\n";
  std::cout << "E4b: adjustment-case frequencies vs laxity "
               "(8x8 grid, h=2, rate=0.02, delay 0.1-0.4)\n\n";
  rtds::exp::run_and_print("e4_adjustment_cases", std::cout);
  std::cout << "\nExpectation: tight laxity -> case iii and case-i rejects "
               "dominate; loose laxity -> case ii dominates and the ratio "
               "approaches 100%.\n";
  return 0;
}
