// Snapshot-equivalence suite (DESIGN.md §14).
//
// The claim the snap/ subsystem makes — "resuming from a checkpoint is
// bit-identical to never having stopped" — is only as good as these tests:
//  (a) property: over random event sequences under chaos faults (drops,
//      duplication, reordering, partitions, site crashes, retransmit on),
//      snapshot at a random event index, restore into a fresh system,
//      drain, and require the final RunMetrics JSONL and obs metrics JSONL
//      to be byte-identical to the uninterrupted run — across seeds and
//      transport models, including a second-generation snapshot taken
//      *after* a resume;
//  (b) recording parity: turning record_events on changes no output bytes;
//  (c) sweep journal: a journal-checkpointed sweep reproduces the plain
//      sweep's aggregates at --jobs 1/3/8, and resuming from a truncated
//      journal (the SIGKILL artifact) still lands bit-identical;
//  (d) negative: truncation at every section boundary, a bit flip in every
//      section body, wrong magic, future-version headers and config-hash
//      mismatches each throw ContractViolation naming the damage — never a
//      crash (the suite runs under ASan/UBSan in CI);
//  (e) the open-system extras (ArrivalSource positions, steady-state
//      collector) round-trip through the engine's checkpoint path.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/rtds_system.hpp"
#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"
#include "fault/fault_params.hpp"
#include "load/engine.hpp"
#include "load/source.hpp"
#include "obs/obs.hpp"
#include "policy/policy.hpp"
#include "policy/rtds_params.hpp"
#include "snap/io.hpp"
#include "snap/journal.hpp"
#include "snap/snapshot.hpp"
#include "util/error.hpp"

namespace rtds {
namespace {

using snap::Snapshot;
using snap::SnapshotExtras;

// ------------------------------------------------------------ fixtures --

/// Chaos parameters exercising every serialized subsystem: crashes and
/// partitions (FaultState + routing repair), drops with retransmit on
/// (retry slots, RTO RNG, dedup windows), duplication and reordering
/// (recv windows), plus the invariant checker riding along.
std::vector<std::string> chaos_params(std::uint64_t seed,
                                      const std::string& transport) {
  std::vector<std::string> p = {
      "faults.site_rate=0.004",     "faults.site_mttr=8",
      "faults.drop=0.03",           "faults.dup=0.08",
      "faults.reorder=0.15",        "faults.reorder_delay=0.8",
      "faults.partition_rate=0.02", "faults.partition_mttr=6",
      "faults.retransmit=true",     "check_invariants=true",
      "faults.seed=" + std::to_string(seed)};
  if (transport == "contended") {
    p.push_back("transport=contended");
    p.push_back("bandwidth=60");
    p.push_back("overhead_slack=1");
  }
  return p;
}

struct ChaosCase {
  exp::Condition condition;
  SystemConfig cfg;
};

ChaosCase make_chaos_case(std::uint64_t seed, const std::string& transport) {
  exp::ConditionSpec cs;
  cs.sites = 25;
  cs.rate = 0.05;
  cs.horizon = 120.0;
  cs.seed = seed;
  ChaosCase cc;
  cc.condition = exp::make_condition(cs);
  const auto policy = policy::PolicyRegistry::instance().create("rtds");
  const policy::ParamMap params =
      policy->parse_params(chaos_params(seed, transport));
  cc.cfg = policy::rtds_system_config_from(params);
  cc.cfg.faults = fault::FaultPlan::from_spec(
      fault::fault_spec_from(params,
                             fault::fault_horizon(cc.condition.arrivals)),
      cc.condition.topo);
  cc.cfg.record_events = true;
  return cc;
}

std::string metrics_bytes(const RunMetrics& m) {
  std::ostringstream os;
  m.to_jsonl(os);
  return os.str();
}

std::string obs_bytes(const obs::MetricsBuffer& b) {
  std::ostringstream os;
  b.write_jsonl(os);
  return os.str();
}

void drain(RtdsSystem& sys) {
  while (sys.step_events(4096) > 0) {
  }
  sys.finish();
}

/// The uninterrupted reference: start, drain, finish — under an obs scope
/// so the run also produces the metrics-JSONL determinism surface.
struct RunOutput {
  std::string metrics;
  std::string obs;
};

RunOutput run_uninterrupted(const ChaosCase& cc) {
  obs::MetricsBuffer buf;
  RtdsSystem sys(cc.condition.topo, cc.cfg);
  {
    obs::Scope scope(&buf);
    sys.start(cc.condition.arrivals);
    drain(sys);
  }
  return {metrics_bytes(sys.metrics()), obs_bytes(buf)};
}

/// Snapshot after `cut` events, restore into a fresh system, drain there.
/// With `second_generation`, snapshot the *resumed* system again after a
/// few more events and finish in a third system — a resumed run must stay
/// checkpointable.
RunOutput run_interrupted(const ChaosCase& cc, std::size_t cut,
                          bool second_generation = false) {
  obs::MetricsBuffer buf1;
  std::string snapshot;
  {
    RtdsSystem sys(cc.condition.topo, cc.cfg);
    obs::Scope scope(&buf1);
    sys.start(cc.condition.arrivals);
    sys.step_events(cut);
    SnapshotExtras extras;
    extras.metrics = &buf1;
    snapshot = Snapshot::save(sys, extras);
    // sys is abandoned mid-run — the crash this simulates.
  }
  obs::MetricsBuffer buf2;
  RtdsSystem resumed(cc.condition.topo, cc.cfg);
  SnapshotExtras extras2;
  extras2.metrics = &buf2;
  Snapshot::load(std::move(snapshot), resumed, extras2);
  {
    obs::Scope scope(&buf2);
    if (second_generation) {
      resumed.step_events(cut / 2 + 1);
      SnapshotExtras extras3;
      extras3.metrics = &buf2;
      std::string again = Snapshot::save(resumed, extras3);
      obs::MetricsBuffer buf3;
      RtdsSystem third(cc.condition.topo, cc.cfg);
      SnapshotExtras extras4;
      extras4.metrics = &buf3;
      Snapshot::load(std::move(again), third, extras4);
      {
        obs::Scope inner(&buf3);
        drain(third);
      }
      return {metrics_bytes(third.metrics()), obs_bytes(buf3)};
    }
    drain(resumed);
  }
  return {metrics_bytes(resumed.metrics()), obs_bytes(buf2)};
}

// ------------------------------------------------- (a) resume property --

class SnapshotProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {
};

TEST_P(SnapshotProperty, ResumeEqualsUninterrupted) {
  const auto [seed, transport] = GetParam();
  const ChaosCase cc = make_chaos_case(seed, transport);
  const RunOutput reference = run_uninterrupted(cc);
  // Random-but-seeded cut points, spread from "almost immediately" into
  // the bulk of the run; one deep cut exercises a nearly drained queue.
  std::uint64_t x = seed * 2654435761u + 12345u;
  for (int i = 0; i < 4; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::size_t cut = 1 + static_cast<std::size_t>(x % 4000);
    const RunOutput out = run_interrupted(cc, cut);
    EXPECT_EQ(out.metrics, reference.metrics)
        << "RunMetrics diverged after resume at event " << cut;
    EXPECT_EQ(out.obs, reference.obs)
        << "obs metrics JSONL diverged after resume at event " << cut;
  }
  const RunOutput chained = run_interrupted(cc, 600, /*second_generation=*/true);
  EXPECT_EQ(chained.metrics, reference.metrics)
      << "second-generation snapshot (resume, then snapshot again) diverged";
  EXPECT_EQ(chained.obs, reference.obs);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTransports, SnapshotProperty,
    ::testing::Values(std::make_tuple(std::uint64_t{1}, "ideal"),
                      std::make_tuple(std::uint64_t{2}, "ideal"),
                      std::make_tuple(std::uint64_t{3}, "contended"),
                      std::make_tuple(std::uint64_t{7}, "contended")));

// ---------------------------------------------- (b) recording parity --

TEST(SnapshotRecording, RecordingChangesNoOutputBytes) {
  ChaosCase cc = make_chaos_case(5, "ideal");
  const RunOutput recorded = run_uninterrupted(cc);
  cc.cfg.record_events = false;
  const RunOutput plain = run_uninterrupted(cc);
  EXPECT_EQ(recorded.metrics, plain.metrics)
      << "record_events must be a pure side channel";
  EXPECT_EQ(recorded.obs, plain.obs);
}

TEST(SnapshotRecording, SaveWithoutRecordingThrows) {
  ChaosCase cc = make_chaos_case(5, "ideal");
  cc.cfg.record_events = false;
  RtdsSystem sys(cc.condition.topo, cc.cfg);
  sys.start(cc.condition.arrivals);
  EXPECT_THROW(Snapshot::save(sys), ContractViolation);
}

// ------------------------------------------------ (c) sweep journal --

/// E1 restricted to its smallest network so the journal matrix stays fast.
exp::ScenarioSpec tiny_e1() {
  exp::register_builtin_scenarios();
  const exp::ScenarioSpec* base =
      exp::Registry::instance().find("e1_message_bound");
  RTDS_REQUIRE_MSG(base != nullptr, "e1_message_bound is not registered");
  exp::ScenarioSpec spec = *base;
  spec.axes.at(0).values.resize(2);
  return spec;
}

std::string sweep_csv(const exp::ScenarioSpec& spec,
                      const std::vector<exp::AggregateRow>& rows) {
  std::ostringstream os;
  exp::CsvSink{}.write(spec, rows, os);
  return os.str();
}

TEST(SweepJournal, CheckpointedSweepMatchesPlainSweepAcrossWorkerCounts) {
  const exp::ScenarioSpec spec = tiny_e1();
  const auto reference = exp::run_scenario(spec, {});
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3},
                                 std::size_t{8}}) {
    const std::string path = ::testing::TempDir() + "snapshot_test_journal_" +
                             std::to_string(jobs) + ".bin";
    exp::RunOptions opts;
    opts.jobs = jobs;
    opts.journal_path = path;
    const auto rows = exp::run_scenario(spec, opts);
    EXPECT_TRUE(exp::aggregates_identical(rows, reference))
        << "journaled sweep diverged at jobs=" << jobs;

    // Crash recovery: chop the journal mid-file (the SIGKILL artifact —
    // a truncated tail section) and resume; the aggregates and the CSV
    // bytes must come out as if nothing happened.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    in.close();
    ASSERT_GT(bytes.size(), 64u);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    exp::RunOptions resume_opts;
    resume_opts.jobs = jobs;
    resume_opts.journal_path = path;
    resume_opts.resume = true;
    const auto resumed = exp::run_scenario(spec, resume_opts);
    EXPECT_TRUE(exp::aggregates_identical(resumed, reference))
        << "resume from a truncated journal diverged at jobs=" << jobs;
    EXPECT_EQ(sweep_csv(spec, resumed), sweep_csv(spec, reference));
  }
}

TEST(SweepJournal, ResumeRejectsForeignJournal) {
  const exp::ScenarioSpec spec = tiny_e1();
  const std::string path =
      ::testing::TempDir() + "snapshot_test_foreign_journal.bin";
  // A journal written for a different sweep shape (2 replicates).
  exp::RunOptions opts;
  opts.replicates = 2;
  opts.journal_path = path;
  exp::run_scenario(spec, opts);
  exp::RunOptions resume_opts;
  resume_opts.replicates = 1;
  resume_opts.journal_path = path;
  resume_opts.resume = true;
  EXPECT_THROW(exp::run_scenario(spec, resume_opts), ContractViolation);
}

TEST(SweepJournal, ResumeMissingFileThrows) {
  const exp::ScenarioSpec spec = tiny_e1();
  exp::RunOptions opts;
  opts.journal_path = ::testing::TempDir() + "snapshot_test_never_written.bin";
  opts.resume = true;
  EXPECT_THROW(exp::run_scenario(spec, opts), ContractViolation);
}

// ---------------------------------------------------- (d) negative --

std::string valid_snapshot(const ChaosCase& cc) {
  RtdsSystem sys(cc.condition.topo, cc.cfg);
  sys.start(cc.condition.arrivals);
  sys.step_events(400);
  return Snapshot::save(sys);
}

void expect_load_violation(const ChaosCase& cc, std::string bytes,
                           const char* what) {
  RtdsSystem fresh(cc.condition.topo, cc.cfg);
  try {
    Snapshot::load(std::move(bytes), fresh);
    FAIL() << "corrupt snapshot accepted: " << what;
  } catch (const ContractViolation& e) {
    // Decode failures must say where they happened: every io.hpp error
    // names the surface ("snapshot"), and body damage names its section.
    EXPECT_NE(std::string(e.what()).find("snapshot"), std::string::npos)
        << what << " produced an unlocated error: " << e.what();
  }
}

TEST(SnapshotNegative, TruncationAtEveryPrefixLengthThrows) {
  const ChaosCase cc = make_chaos_case(11, "ideal");
  const std::string good = valid_snapshot(cc);
  // Every header prefix, then section-spanning strides through the body.
  for (std::size_t len = 0; len < 32; ++len)
    expect_load_violation(cc, good.substr(0, len), "header truncation");
  for (std::size_t len = 32; len < good.size();
       len += good.size() / 97 + 1)
    expect_load_violation(cc, good.substr(0, len), "body truncation");
}

TEST(SnapshotNegative, BitFlipsThroughEverySectionThrow) {
  const ChaosCase cc = make_chaos_case(11, "ideal");
  const std::string good = valid_snapshot(cc);
  // A flip every ~1/61 of the file walks every section (headers and
  // bodies both); checksums catch body damage, structural validation the
  // rest. Flips may NOT legally round-trip: either load throws, or — for
  // a flip in a section-length field that still parses — the reader must
  // still fault on the mangled layout.
  for (std::size_t pos = 21; pos < good.size();
       pos += good.size() / 61 + 1) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    expect_load_violation(cc, std::move(bad), "bit flip");
  }
}

TEST(SnapshotNegative, WrongMagicThrows) {
  const ChaosCase cc = make_chaos_case(11, "ideal");
  std::string bad = valid_snapshot(cc);
  bad[0] = 'X';
  expect_load_violation(cc, std::move(bad), "wrong magic");
}

TEST(SnapshotNegative, FutureVersionThrows) {
  const ChaosCase cc = make_chaos_case(11, "ideal");
  std::string bad = valid_snapshot(cc);
  bad[8] = static_cast<char>(snap::kFormatVersion + 1);  // little-endian u32
  expect_load_violation(cc, std::move(bad), "future version");
}

TEST(SnapshotNegative, ConfigHashMismatchThrows) {
  const ChaosCase cc = make_chaos_case(11, "ideal");
  const std::string good = valid_snapshot(cc);
  // Same bytes, different target config: the header hash must reject it
  // before any section is believed.
  ChaosCase other = make_chaos_case(11, "ideal");
  other.cfg.node.sphere_radius_h += 1;
  RtdsSystem fresh(other.condition.topo, other.cfg);
  EXPECT_THROW(Snapshot::load(good, fresh), ContractViolation);
}

TEST(SnapshotNegative, ExtrasPresenceMismatchThrows) {
  const ChaosCase cc = make_chaos_case(11, "ideal");
  const std::string good = valid_snapshot(cc);  // saved WITHOUT extras
  RtdsSystem fresh(cc.condition.topo, cc.cfg);
  obs::MetricsBuffer buf;
  SnapshotExtras extras;
  extras.metrics = &buf;
  EXPECT_THROW(Snapshot::load(good, fresh, extras), ContractViolation);
}

TEST(SnapshotNegative, LoadIntoUsedSystemThrows) {
  const ChaosCase cc = make_chaos_case(11, "ideal");
  const std::string good = valid_snapshot(cc);
  RtdsSystem used(cc.condition.topo, cc.cfg);
  used.start(cc.condition.arrivals);
  drain(used);
  EXPECT_THROW(Snapshot::load(good, used), ContractViolation);
}

// --------------------------------------- (e) open-system checkpointing --

TEST(OpenCheckpoint, EngineResumeMatchesUninterruptedRun) {
  exp::ConditionSpec cs;
  cs.sites = 16;
  cs.rate = 0.05;
  cs.seed = 9;
  const Topology topo = exp::make_topology(cs);
  const auto policy = policy::PolicyRegistry::instance().create("rtds");
  const policy::ParamMap params = policy->parse_params(
      {"faults.drop=0.01", "faults.retransmit=true", "faults.seed=9"});

  load::ArrivalSpec aspec;
  aspec.kind = load::ArrivalKind::kBursty;
  aspec.site_count = topo.site_count();
  aspec.workload = exp::workload_config(cs);

  load::OpenConfig ocfg;
  ocfg.duration = 150.0;
  ocfg.window.warmup = 20.0;
  ocfg.window.width = 10.0;

  const auto reference_source = load::make_arrival_source(aspec);
  const auto reference = load::run_open_rtds(topo, *reference_source, ocfg,
                                             params);

  // Checkpoint every few thousand events to exercise repeated saves, then
  // run again resuming from the last checkpoint file mid-run: drive the
  // first half manually so a checkpoint exists, then hand the *same* path
  // to a resume run with a fresh source (its position is in the file).
  const std::string path =
      ::testing::TempDir() + "snapshot_test_open_checkpoint.bin";
  load::OpenConfig ckpt = ocfg;
  ckpt.checkpoint_path = path;
  ckpt.checkpoint_every = 500;
  {
    const auto source = load::make_arrival_source(aspec);
    const auto full = load::run_open_rtds(topo, *source, ckpt, params);
    ASSERT_EQ(metrics_bytes(full.metrics), metrics_bytes(reference.metrics))
        << "checkpointing changed the run itself";
  }
  load::OpenConfig resume = ckpt;
  resume.resume = true;
  const auto fresh_source = load::make_arrival_source(aspec);
  const auto resumed = load::run_open_rtds(topo, *fresh_source, resume,
                                           params);
  EXPECT_EQ(metrics_bytes(resumed.metrics), metrics_bytes(reference.metrics))
      << "resume from the last checkpoint diverged";
  EXPECT_EQ(resumed.steady.completed, reference.steady.completed);
  EXPECT_EQ(resumed.steady.p99, reference.steady.p99);
  EXPECT_EQ(resumed.windows.size(), reference.windows.size());
}

}  // namespace
}  // namespace rtds
