// Adversarial-network hardening regression (DESIGN.md §12).
//
// Four contracts are pinned here:
//  (a) the hardening layer is invisible when idle: enabling retransmit and
//      the invariant checker on a faultless run is bit-identical to a run
//      that never heard of either (and the E1–E7 golden digests in
//      determinism_test/fault_test run unchanged in this same suite);
//  (b) chaos is deterministic: the same seed with duplication, reordering,
//      drops and partitions replays every metric bit-for-bit, and the E8
//      sweep digest is identical for any worker count;
//  (c) the protocol survives chaos: a 20-seed soak across every policy
//      under dup+reorder+partition+crash faults runs with the invariant
//      checker fatal — one double-guarantee, leaked lock, or lost decision
//      fails the suite;
//  (d) malformed scripted fault plans are rejected up front with
//      ContractViolation, not discovered mid-run.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/rtds_system.hpp"
#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"
#include "fault/dedup.hpp"
#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "policy/policy.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace rtds {
namespace {

using fault::DedupWindow;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultState;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Topology line3() {
  Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_site();
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 1.0);
  return topo;
}

// ----------------------------------------------------------- dedup window --

TEST(DedupWindowTest, InOrderSequencesAllAccepted) {
  DedupWindow w;
  for (std::uint64_t s = 1; s <= 200; ++s) EXPECT_TRUE(w.accept(s));
  EXPECT_EQ(w.max_seq(), 200u);
}

TEST(DedupWindowTest, DuplicatesRejectedOnceAccepted) {
  DedupWindow w;
  EXPECT_TRUE(w.accept(5));
  EXPECT_FALSE(w.accept(5));
  EXPECT_TRUE(w.accept(7));
  EXPECT_FALSE(w.accept(5)) << "older duplicate after window advanced";
  EXPECT_FALSE(w.accept(7));
}

TEST(DedupWindowTest, InWindowGapsBackfillExactlyOnce) {
  DedupWindow w;
  EXPECT_TRUE(w.accept(10));  // 1..9 are now in-window gaps
  EXPECT_TRUE(w.accept(3));
  EXPECT_FALSE(w.accept(3));
  EXPECT_TRUE(w.accept(9));
  EXPECT_TRUE(w.accept(1));
  EXPECT_FALSE(w.accept(10));
}

TEST(DedupWindowTest, SequencesOlderThanWindowRejected) {
  DedupWindow w;
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(1 + DedupWindow::kWindow));
  // seq 1 is now exactly kWindow behind: conservatively a duplicate.
  EXPECT_FALSE(w.accept(1));
  // seq 2 is kWindow-1 behind: still in the window, never seen, fresh.
  EXPECT_TRUE(w.accept(2));
}

TEST(DedupWindowTest, JumpBeyondWindowResetsBitmap) {
  DedupWindow w;
  for (std::uint64_t s = 1; s <= 5; ++s) EXPECT_TRUE(w.accept(s));
  EXPECT_TRUE(w.accept(500));  // shift >= kWindow wipes the mask
  EXPECT_TRUE(w.accept(499)) << "in-window gap behind the jump is fresh";
  EXPECT_FALSE(w.accept(5)) << "pre-jump history stays rejected (too old)";
}

// ------------------------------------------------------- plan validation --

TEST(FaultPlanValidate, AcceptsWellFormedScriptedPlan) {
  FaultPlan plan;
  plan.events = {FaultEvent{1.0, FaultKind::kSiteDown, 1, kNoSite},
                 FaultEvent{2.0, FaultKind::kLinkDown, 0, 1},
                 FaultEvent{3.0, FaultKind::kPartition, 1, kNoSite},
                 FaultEvent{4.0, FaultKind::kHeal, 0, kNoSite}};
  EXPECT_NO_THROW(plan.validate(line3()));
}

TEST(FaultPlanValidate, RejectsSiteOutOfRange) {
  FaultPlan plan;
  plan.events = {FaultEvent{1.0, FaultKind::kSiteDown, 3, kNoSite}};
  EXPECT_THROW(plan.validate(line3()), ContractViolation);
}

TEST(FaultPlanValidate, RejectsLinkAbsentFromTopology) {
  FaultPlan plan;
  plan.events = {FaultEvent{1.0, FaultKind::kLinkDown, 0, 2}};
  EXPECT_THROW(plan.validate(line3()), ContractViolation);  // no 0--2 link
  plan.events = {FaultEvent{1.0, FaultKind::kLinkUp, 0, 9}};
  EXPECT_THROW(plan.validate(line3()), ContractViolation);  // out of range
}

TEST(FaultPlanValidate, RejectsPartitionBoundaryOutsideRange) {
  FaultPlan plan;
  plan.events = {FaultEvent{1.0, FaultKind::kPartition, 0, kNoSite}};
  EXPECT_THROW(plan.validate(line3()), ContractViolation);
  plan.events = {FaultEvent{1.0, FaultKind::kPartition, 3, kNoSite}};
  EXPECT_THROW(plan.validate(line3()), ContractViolation);
}

TEST(FaultPlanValidate, RejectsNonMonotoneAndNegativeTimes) {
  FaultPlan plan;
  plan.events = {FaultEvent{5.0, FaultKind::kSiteDown, 1, kNoSite},
                 FaultEvent{2.0, FaultKind::kSiteUp, 1, kNoSite}};
  EXPECT_THROW(plan.validate(line3()), ContractViolation);
  plan.events = {FaultEvent{-1.0, FaultKind::kSiteDown, 1, kNoSite}};
  EXPECT_THROW(plan.validate(line3()), ContractViolation);
}

TEST(FaultPlanValidate, SystemConstructorRunsValidation) {
  SystemConfig cfg;
  cfg.faults.events = {FaultEvent{1.0, FaultKind::kSiteDown, 99, kNoSite}};
  EXPECT_THROW(RtdsSystem(line3(), cfg), ContractViolation);
}

// -------------------------------------------------- partition fault state --

TEST(FaultStatePartition, CutDownsCrossLinksHealRestoresOnlyTheCut) {
  const Topology topo = line3();
  FaultPlan plan;
  plan.events = {FaultEvent{1.0, FaultKind::kPartition, 1, kNoSite}};
  FaultState state(topo, plan);

  // Boundary 1 splits {0} from {1, 2}: only link 0--1 crosses the cut.
  EXPECT_TRUE(state.apply(FaultEvent{1.0, FaultKind::kPartition, 1, kNoSite}));
  EXPECT_EQ(state.partition_boundary(), 1u);
  EXPECT_FALSE(state.link_up(0, 1));
  EXPECT_TRUE(state.link_up(1, 2));
  EXPECT_TRUE(state.site_up(0)) << "partition downs links, not sites";
  EXPECT_FALSE(state.partition_changed_sites().empty());

  // An independent link fault inside one side, then the heal: the heal
  // must restore exactly the cut-owned links and nothing else.
  EXPECT_TRUE(state.apply(FaultEvent{2.0, FaultKind::kLinkDown, 1, 2}));
  EXPECT_TRUE(state.apply(FaultEvent{3.0, FaultKind::kHeal, 0, kNoSite}));
  EXPECT_EQ(state.partition_boundary(), 0u);
  EXPECT_TRUE(state.link_up(0, 1)) << "cut link restored by heal";
  EXPECT_FALSE(state.link_up(1, 2)) << "independent fault survives the heal";
}

// ------------------------------------------------------ duplication model --

TEST(SimNetworkFaults, DuplicationDeliversTwiceAndCountsOnce) {
  const Topology topo = line3();
  Simulator sim;
  SimNetwork net(sim, topo);
  FaultPlan plan;
  plan.dup_prob = 1.0;  // every send duplicated, deterministically
  FaultState state(topo, plan);
  net.set_fault_state(&state);
  int delivered = 0;
  for (SiteId s = 0; s < 3; ++s)
    net.set_handler(s, [&](SiteId, const MessageBody&) { ++delivered; });

  net.send_adjacent(0, 1, std::string("twice"), 1);
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().messages_duplicated, 1u);
  EXPECT_EQ(net.stats().total_sends, 1u) << "a duplicate is not a new send";
}

// --------------------------------------------------- partition resilience --

/// A job one site cannot hold (4 parallel tasks of cost 3 in a window of
/// 4) but a 3-site sphere could — it must go through enrollment.
std::shared_ptr<Job> parallel_job(JobId id, Time release) {
  auto job = std::make_shared<Job>();
  job->id = id;
  for (int t = 0; t < 4; ++t) job->dag.add_task(3.0);
  job->dag.finalize();
  job->release = release;
  job->deadline = release + 4.0;
  return job;
}

TEST(ProtocolChaos, PartitionDuringEnrollmentLeaksNothing) {
  SystemConfig cfg;
  // The cut isolates site 0 from {1, 2} while site 1's enrollment round is
  // in flight; it heals long after every protocol timeout. The round must
  // close (timeout or retransmit), decide the job, and leak no locks.
  cfg.faults.events = {FaultEvent{1.2, FaultKind::kPartition, 1, kNoSite},
                       FaultEvent{40.0, FaultKind::kHeal, 0, kNoSite}};
  cfg.node.retransmit = true;
  cfg.check_invariants = true;
  RtdsSystem system(line3(), cfg);
  system.run({{1, parallel_job(1, 0.0)}});

  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_FALSE(system.node(s).locked()) << "site " << s << " leaked a lock";
    EXPECT_EQ(system.node(s).active_initiations(), 0u);
  }
  const RunMetrics& m = system.metrics();
  EXPECT_EQ(m.arrived, 1u);
  EXPECT_EQ(m.accepted() + m.rejected, 1u) << "partition swallowed a decision";
  EXPECT_EQ(m.invariant_violations, 0u);
}

// ------------------------------------------------- hardened idle parity --

/// Exact-equality probe over every externally observable RunMetrics field
/// the sweeps print, including the §12 hardening counters.
void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.accepted_local, b.accepted_local);
  EXPECT_EQ(a.accepted_remote, b.accepted_remote);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.dispatch_failures, b.dispatch_failures);
  EXPECT_EQ(a.failed_jobs, b.failed_jobs);
  EXPECT_EQ(a.jobs_lost, b.jobs_lost);
  EXPECT_EQ(a.jobs_rescheduled, b.jobs_rescheduled);
  EXPECT_EQ(a.repair_messages, b.repair_messages);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.reject_by_reason, b.reject_by_reason);
  EXPECT_EQ(a.adjustment_cases, b.adjustment_cases);
  EXPECT_EQ(a.decision_latency.count(), b.decision_latency.count());
  EXPECT_EQ(a.decision_latency.mean(), b.decision_latency.mean());
  EXPECT_EQ(a.msgs_per_job.mean(), b.msgs_per_job.mean());
  EXPECT_EQ(a.job_lateness.mean(), b.job_lateness.mean());
  EXPECT_EQ(a.acs_size.mean(), b.acs_size.mean());
  EXPECT_EQ(a.transport.total_sends, b.transport.total_sends);
  EXPECT_EQ(a.transport.total_link_messages, b.transport.total_link_messages);
  EXPECT_EQ(a.transport.messages_dropped, b.transport.messages_dropped);
  EXPECT_EQ(a.transport.messages_duplicated, b.transport.messages_duplicated);
}

TEST(HardenedIdleParity, RetransmitAndCheckerAreBitInvisibleWhenFaultless) {
  policy::register_builtin_policies();
  exp::ConditionSpec cs;
  cs.sites = 36;
  cs.horizon = 150.0;
  const exp::Condition c = exp::make_condition(cs);
  const auto policy = policy::PolicyRegistry::instance().create("rtds");
  const RunMetrics plain =
      policy->run(c.topo, c.arrivals, policy->parse_params({}));
  const RunMetrics hardened = policy->run(
      c.topo, c.arrivals,
      policy->parse_params({"faults.dup=0", "faults.reorder=0",
                            "faults.partition_rate=0", "faults.retransmit=true",
                            "faults.retransmit_tries=5",
                            "check_invariants=true"}));
  expect_identical(plain, hardened);
  EXPECT_EQ(hardened.retransmits, 0u) << "no retry may arm without faults";
  EXPECT_EQ(hardened.invariant_violations, 0u);
}

// -------------------------------------------------- chaos determinism --

std::vector<std::string> chaos_params(std::uint64_t seed) {
  return {"faults.site_rate=0.003",     "faults.site_mttr=10",
          "faults.drop=0.03",           "faults.dup=0.08",
          "faults.reorder=0.15",        "faults.reorder_delay=0.8",
          "faults.partition_rate=0.02", "faults.partition_mttr=8",
          "faults.retransmit=true",     "check_invariants=true",
          "faults.seed=" + std::to_string(seed)};
}

TEST(ChaosDeterminism, SameSeedReplaysEveryMetricBitForBit) {
  policy::register_builtin_policies();
  exp::ConditionSpec cs;
  cs.sites = 25;
  cs.rate = 0.04;
  cs.horizon = 100.0;
  const exp::Condition c = exp::make_condition(cs);
  const auto policy = policy::PolicyRegistry::instance().create("rtds");
  const RunMetrics a =
      policy->run(c.topo, c.arrivals, policy->parse_params(chaos_params(7)));
  const RunMetrics b =
      policy->run(c.topo, c.arrivals, policy->parse_params(chaos_params(7)));
  expect_identical(a, b);
  EXPECT_GT(a.retransmits, 0u) << "chaos too mild to exercise the retry path";
  EXPECT_GT(a.messages_duplicated, 0u);
  EXPECT_EQ(a.invariant_violations, 0u);

  const RunMetrics other =
      policy->run(c.topo, c.arrivals, policy->parse_params(chaos_params(8)));
  EXPECT_NE(a.transport.total_sends, other.transport.total_sends)
      << "a different fault seed should draw a different chaos schedule";
}

// ------------------------------------------------------------ chaos soak --

/// Restores the process-global checker flags even when an assertion fires.
struct FatalCheckerScope {
  FatalCheckerScope() {
    fault::set_check_invariants(true);
    fault::set_invariants_fatal(true);
  }
  ~FatalCheckerScope() {
    fault::set_check_invariants(false);
    fault::set_invariants_fatal(false);
  }
};

TEST(ChaosSoak, TwentySeedsAcrossEveryPolicyHoldAllInvariants) {
  policy::register_builtin_policies();
  const FatalCheckerScope scope;  // first violation throws, failing the test
  const auto& names = policy::PolicyRegistry::instance().names();
  ASSERT_GE(names.size(), 6u);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    exp::ConditionSpec cs;
    cs.sites = 25;
    cs.rate = 0.04;
    cs.horizon = 100.0;
    cs.seed = 1000 + seed;
    const exp::Condition c = exp::make_condition(cs);
    for (const auto& name : names) {
      SCOPED_TRACE("policy " + name + " seed " + std::to_string(seed));
      const auto policy = policy::PolicyRegistry::instance().create(name);
      // rtds takes the full adversarial surface; the baselines' analytic
      // transports only share the crash process.
      const std::vector<std::string> params =
          name == "rtds" ? chaos_params(seed)
                         : std::vector<std::string>{
                               "faults.site_rate=0.003", "faults.site_mttr=10",
                               "faults.seed=" + std::to_string(seed)};
      const RunMetrics m =
          policy->run(c.topo, c.arrivals, policy->parse_params(params));
      EXPECT_EQ(m.accepted() + m.rejected, m.arrived)
          << "job conservation broke under chaos";
      EXPECT_EQ(m.invariant_violations, 0u);
    }
  }
}

// ------------------------------------------------------ E8 golden digest --

// Digest recorded from the serial run of the full E8 sweep at the commit
// that introduced it; any worker count must reproduce every byte.
// Re-recorded in PR 10: crash() now declares dispatch failures for
// in-flight dispatch retries it wipes (a fuzzer-found accounting bug —
// guaranteed jobs could otherwise end the run short of completions
// without ever being marked failed), which shifts the hardened-rtds
// cells of the chaos sweep.
constexpr std::uint64_t kE8CsvDigest = 17125420496582938490ull;

std::uint64_t e8_digest(std::size_t jobs) {
  exp::register_builtin_scenarios();
  const exp::ScenarioSpec* spec = exp::Registry::instance().find("e8_chaos");
  EXPECT_NE(spec, nullptr);
  exp::RunOptions opts;
  opts.jobs = jobs;
  const auto rows = exp::run_scenario(*spec, opts);
  std::ostringstream os;
  exp::CsvSink{}.write(*spec, rows, os);
  return fnv1a(os.str());
}

TEST(E8GoldenDigest, SerialMatchesRecordedDigest) {
  EXPECT_EQ(e8_digest(1), kE8CsvDigest);
}

TEST(E8GoldenDigest, ThreeWorkersMatchesRecordedDigest) {
  EXPECT_EQ(e8_digest(3), kE8CsvDigest);
}

TEST(E8GoldenDigest, EightWorkersMatchesRecordedDigest) {
  EXPECT_EQ(e8_digest(8), kE8CsvDigest);
}

}  // namespace
}  // namespace rtds
