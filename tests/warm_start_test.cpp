// Warm-start equivalence suite (DESIGN.md §14).
//
// The warm-start cache (snap/warm_start.hpp) shares one serialized
// post-bring-up state — routing tables + spheres — across every RtdsSystem
// constructed on the same (topology, h). Its whole value proposition is
// "free speedup, zero output change", so these tests pin:
//  * a cache *hit* produces byte-identical RunMetrics to a cold build;
//  * every registered sweep scenario renders byte-identical CSV warm vs
//    cold (reduced grids so the matrix runs in seconds);
//  * the pre-rewrite golden digests (tests/determinism_test.cpp) still
//    reproduce with the cache enabled — reduced E1 CSV and the
//    fig2_table1 report;
//  * every built-in sweep advertises warm-start support (the rtds_exp
//    --list column);
//  * the cache actually engages (hit/miss counters move).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"
#include "load/engine.hpp"
#include "snap/warm_start.hpp"

namespace rtds {
namespace {

// Same golden constants as tests/determinism_test.cpp: recorded on the
// pre-rewrite core, reproduced ever since. Warm start must not move them.
constexpr std::uint64_t kE1CsvDigest = 5809446339941925635ull;
constexpr std::uint64_t kFig2ReportDigest = 11203551605208720222ull;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Restores the process-global warm-start switch and empties the cache on
/// both edges, so tests compose in any order within the gtest process.
class WarmStartGuard {
 public:
  explicit WarmStartGuard(bool enable)
      : previous_(snap::warm_start_enabled()) {
    snap::warm_start_clear();
    snap::set_warm_start_enabled(enable);
  }
  ~WarmStartGuard() {
    snap::set_warm_start_enabled(previous_);
    snap::warm_start_clear();
  }
  WarmStartGuard(const WarmStartGuard&) = delete;
  WarmStartGuard& operator=(const WarmStartGuard&) = delete;

 private:
  bool previous_;
};

std::string metrics_bytes(const RunMetrics& m) {
  std::ostringstream os;
  m.to_jsonl(os);
  return os.str();
}

// ----------------------------------------------- hit == cold, bitwise --

TEST(WarmStart, CacheHitIsByteIdenticalToColdBuild) {
  exp::ConditionSpec cs = exp::offload_regime();
  cs.sites = 25;
  cs.horizon = 300.0;
  const exp::Condition c = exp::make_condition(cs);
  SystemConfig cfg;

  std::string cold;
  {
    const WarmStartGuard off(false);
    cold = metrics_bytes(exp::run_rtds(c, cfg));
  }

  const WarmStartGuard on(true);
  const std::size_t hits0 = snap::warm_start_hits();
  const std::size_t misses0 = snap::warm_start_misses();
  const std::string first = metrics_bytes(exp::run_rtds(c, cfg));
  const std::string second = metrics_bytes(exp::run_rtds(c, cfg));
  EXPECT_EQ(first, cold) << "the storing (miss) run diverged from cold";
  EXPECT_EQ(second, cold) << "the cache-hit run diverged from cold";
  EXPECT_GE(snap::warm_start_misses() - misses0, 1u)
      << "first build on an empty cache should miss";
  EXPECT_GE(snap::warm_start_hits() - hits0, 1u)
      << "second build of the same (topology, h) should hit";
}

// ------------------------------------- every registered sweep, reduced --

/// One grid point, one replicate: enough to exercise the cache on every
/// scenario's real trial function without paying full-sweep runtimes.
exp::ScenarioSpec reduced(const exp::ScenarioSpec& base) {
  exp::ScenarioSpec spec = base;
  for (exp::GridAxis& axis : spec.axes) axis.values.resize(1);
  return spec;
}

std::string csv_bytes(const exp::ScenarioSpec& spec,
                      const std::vector<exp::AggregateRow>& rows) {
  std::ostringstream os;
  exp::CsvSink{}.write(spec, rows, os);
  return os.str();
}

TEST(WarmStart, EveryRegisteredScenarioMatchesColdStart) {
  exp::register_builtin_scenarios();
  // Keep the duration-driven scenarios (e9) short; 0 restores the default.
  load::set_scenario_duration(120.0);
  for (const std::string& name : exp::Registry::instance().scenario_names()) {
    const exp::ScenarioSpec* base = exp::Registry::instance().find(name);
    ASSERT_NE(base, nullptr);
    EXPECT_TRUE(base->warm_start)
        << name << " opted out of warm start; the rtds_exp --list column "
        << "and this suite must be updated together";
    const exp::ScenarioSpec spec = reduced(*base);
    exp::RunOptions opts;
    opts.replicates = 1;

    WarmStartGuard off(false);
    const auto cold = exp::run_scenario(spec, opts);

    const WarmStartGuard on(true);
    opts.warm_start = true;
    const auto warm = exp::run_scenario(spec, opts);

    EXPECT_TRUE(exp::aggregates_identical(warm, cold))
        << name << ": warm-start aggregates diverged from cold start";
    EXPECT_EQ(csv_bytes(spec, warm), csv_bytes(spec, cold))
        << name << ": warm-start CSV bytes diverged from cold start";
  }
  load::set_scenario_duration(0.0);
}

// --------------------------------------------- golden digests, warmed --

TEST(WarmStart, ReducedE1GoldenDigestReproduces) {
  exp::register_builtin_scenarios();
  const exp::ScenarioSpec* base =
      exp::Registry::instance().find("e1_message_bound");
  ASSERT_NE(base, nullptr);
  exp::ScenarioSpec spec = *base;
  spec.axes.at(0).values.resize(3);  // same reduction as determinism_test
  const WarmStartGuard on(true);
  exp::RunOptions opts;
  opts.warm_start = true;
  const auto rows = exp::run_scenario(spec, opts);
  EXPECT_EQ(fnv1a(csv_bytes(spec, rows)), kE1CsvDigest);
}

TEST(WarmStart, Fig2ReportDigestReproduces) {
  exp::register_builtin_scenarios();
  const WarmStartGuard on(true);
  std::ostringstream os;
  exp::run_report("fig2_table1", os);
  EXPECT_EQ(fnv1a(os.str()), kFig2ReportDigest);
}

TEST(WarmStart, EveryRegisteredReportMatchesColdStart) {
  exp::register_builtin_scenarios();
  load::set_scenario_duration(60.0);  // bounds e9_saturation
  for (const std::string& name : exp::Registry::instance().report_names()) {
    std::ostringstream cold_os;
    {
      WarmStartGuard off(false);
      exp::run_report(name, cold_os);
    }
    const WarmStartGuard on(true);
    std::ostringstream warm_os;
    exp::run_report(name, warm_os);
    EXPECT_EQ(warm_os.str(), cold_os.str())
        << name << ": warm-start report bytes diverged from cold start";
  }
  load::set_scenario_duration(0.0);
}

}  // namespace
}  // namespace rtds
