// src/exp/ subsystem tests: deterministic seed derivation, grid expansion,
// parallel == serial aggregate identity, trial reproducibility on a real
// RTDS scenario, and sink round-trips.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"
#include "exp/seed.hpp"
#include "exp/sinks.hpp"
#include "policy/policy.hpp"
#include "util/error.hpp"

namespace rtds::exp {
namespace {

// ---------------------------------------------------------------- seed ----

TEST(TrialSeed, DeterministicAndDistinct) {
  EXPECT_EQ(trial_seed("e2", 3, 1), trial_seed("e2", 3, 1));
  std::set<std::uint64_t> seeds;
  for (std::size_t point = 0; point < 16; ++point)
    for (std::size_t rep = 0; rep < 16; ++rep)
      seeds.insert(trial_seed("e2_guarantee_ratio", point, rep));
  EXPECT_EQ(seeds.size(), 256u);  // no collisions across the grid
  EXPECT_NE(trial_seed("a", 0, 0), trial_seed("b", 0, 0));
}

TEST(TrialSeed, SpecSeedModes) {
  ScenarioSpec spec;
  spec.name = "seed_mode_probe";
  spec.seed_mode = SeedMode::kFixed;
  spec.fixed_seed = 99;
  EXPECT_EQ(spec.seed_for(5, 7), 99u);
  spec.seed_mode = SeedMode::kDerived;
  EXPECT_EQ(spec.seed_for(5, 7), trial_seed("seed_mode_probe", 5, 7));
  EXPECT_NE(spec.seed_for(5, 7), spec.seed_for(5, 8));
}

// ---------------------------------------------------------------- grid ----

ScenarioSpec synthetic_spec() {
  ScenarioSpec spec;
  spec.name = "synthetic";
  spec.axes = {GridAxis::numeric("a", "a", {1.0, 2.0, 3.0}, 0),
               GridAxis::labeled("b", "b", {"x", "y"})};
  spec.metrics = {MetricSpec{"m0", "m0", 3},
                  MetricSpec{"m1", "m1", 3}};
  spec.replicates = 4;
  // Pure function of (point, seed): exercises the runner, not the sim.
  spec.trial = [](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    const double s = static_cast<double>(seed % 1000);
    return {p.value(0) * 10.0 + p.value(1) + s,
            p.value(0) - p.value(1) * 0.5 + s * 2.0};
  };
  return spec;
}

TEST(Grid, ExpansionCounts) {
  const ScenarioSpec spec = synthetic_spec();
  EXPECT_EQ(spec.grid_size(), 6u);       // 3 x 2
  EXPECT_EQ(spec.trial_count(), 24u);    // x 4 replicates

  // Row-major decode, first axis slowest.
  EXPECT_EQ(spec.grid_point(0).value(0), 1.0);
  EXPECT_EQ(spec.grid_point(0).label(1), "x");
  EXPECT_EQ(spec.grid_point(1).value(0), 1.0);
  EXPECT_EQ(spec.grid_point(1).label(1), "y");
  EXPECT_EQ(spec.grid_point(5).value(0), 3.0);
  EXPECT_EQ(spec.grid_point(5).label(1), "y");
  EXPECT_THROW(spec.grid_point(6), ContractViolation);

  // The runner visits every (point, replicate) exactly once.
  std::atomic<int> calls{0};
  ScenarioSpec counted = spec;
  auto inner = spec.trial;
  counted.trial = [&calls, inner](const GridPoint& p, std::uint64_t seed) {
    ++calls;
    return inner(p, seed);
  };
  const auto rows = run_scenario(counted, RunOptions{4, 0});
  EXPECT_EQ(calls.load(), 24);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    ASSERT_EQ(row.cells.size(), 2u);
    EXPECT_EQ(row.cells[0].stat.count(), 4u);
    EXPECT_EQ(row.cells[1].samples.count(), 4u);
  }
}

// -------------------------------------------------- parallel == serial ----

TEST(Runner, ParallelMatchesSerialSynthetic) {
  const ScenarioSpec spec = synthetic_spec();
  const auto serial = run_scenario(spec, RunOptions{1, 0});
  for (const std::size_t jobs : {2u, 4u, 16u}) {
    const auto parallel = run_scenario(spec, RunOptions{jobs, 0});
    EXPECT_TRUE(aggregates_identical(serial, parallel))
        << "jobs=" << jobs << " aggregates diverged from serial";
  }
}

/// A tiny but real scenario: full RTDS protocol runs on a 4x4 grid.
ScenarioSpec small_rtds_spec() {
  ScenarioSpec spec;
  spec.name = "small_rtds";
  spec.axes = {GridAxis::numeric("h", "h", {1.0, 2.0}, 0)};
  spec.metrics = {MetricSpec{"ratio", "ratio", 3},
                  MetricSpec{"msgs", "msgs", 1}};
  spec.replicates = 2;
  spec.trial = [](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    ConditionSpec cs;
    cs.net = NetShape::kGrid;
    cs.sites = 16;
    cs.rate = 0.02;
    cs.horizon = 120.0;
    cs.laxity_min = 1.5;
    cs.laxity_max = 3.0;
    cs.delay_min = 0.2;
    cs.delay_max = 0.8;
    cs.seed = seed;
    const Condition c = make_condition(cs);
    SystemConfig cfg;
    cfg.node.sphere_radius_h = static_cast<std::size_t>(p.value(0));
    const RunMetrics m = run_rtds(c, cfg);
    return {m.guarantee_ratio(),
            m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0};
  };
  return spec;
}

TEST(Runner, SameSeedBitIdenticalMetrics) {
  const ScenarioSpec spec = small_rtds_spec();
  const GridPoint point = spec.grid_point(1);
  const std::uint64_t seed = spec.seed_for(1, 0);
  const TrialResult a = spec.trial(point, seed);
  const TrialResult b = spec.trial(point, seed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) EXPECT_EQ(a[m], b[m]);
  // A different replicate's seed changes the workload (and so the metrics).
  const TrialResult c = spec.trial(point, spec.seed_for(1, 1));
  EXPECT_NE(a[0], c[0]);
}

TEST(Runner, ParallelMatchesSerialRealSystem) {
  const ScenarioSpec spec = small_rtds_spec();
  const auto serial = run_scenario(spec, RunOptions{1, 0});
  const auto parallel = run_scenario(spec, RunOptions{8, 0});
  EXPECT_TRUE(aggregates_identical(serial, parallel));
  // And the run itself is reproducible end to end.
  const auto again = run_scenario(spec, RunOptions{8, 0});
  EXPECT_TRUE(aggregates_identical(parallel, again));
}

TEST(Runner, SkippedMetricsLeaveCountShort) {
  ScenarioSpec spec = synthetic_spec();
  spec.trial = [](const GridPoint& p, std::uint64_t) -> TrialResult {
    return {p.value(0), std::numeric_limits<double>::quiet_NaN()};
  };
  const auto rows = run_scenario(spec, RunOptions{2, 0});
  for (const auto& row : rows) {
    EXPECT_EQ(row.cells[0].stat.count(), 4u);
    EXPECT_EQ(row.cells[1].stat.count(), 0u);
  }
}

TEST(Runner, TrialExceptionsPropagate) {
  ScenarioSpec spec = synthetic_spec();
  spec.trial = [](const GridPoint& p, std::uint64_t) -> TrialResult {
    RTDS_REQUIRE_MSG(p.index != 3, "boom");
    return {0.0, 0.0};
  };
  EXPECT_THROW(run_scenario(spec, RunOptions{4, 0}), ContractViolation);
  EXPECT_THROW(run_scenario(spec, RunOptions{1, 0}), ContractViolation);
}

// --------------------------------------------------------------- sinks ----

void expect_records_match(const ScenarioSpec& spec,
                          const std::vector<AggregateRow>& rows,
                          const std::vector<SinkRecord>& records) {
  ASSERT_EQ(records.size(), rows.size() * spec.metrics.size());
  std::size_t r = 0;
  for (const auto& row : rows) {
    for (std::size_t m = 0; m < spec.metrics.size(); ++m, ++r) {
      const SinkRecord& rec = records[r];
      EXPECT_EQ(rec.scenario, spec.name);
      EXPECT_EQ(rec.point, row.point.index);
      ASSERT_EQ(rec.axes.size(), row.point.coords.size());
      for (std::size_t a = 0; a < rec.axes.size(); ++a)
        EXPECT_EQ(rec.axes[a], row.point.coords[a].label);
      EXPECT_EQ(rec.metric, spec.metrics[m].key);
      const AggregateCell& cell = row.cells[m];
      ASSERT_EQ(rec.count, cell.stat.count());
      if (rec.count == 0) continue;
      // %.17g round-trips doubles exactly: parse-back must be bit-equal.
      EXPECT_EQ(rec.mean, cell.stat.mean());
      EXPECT_EQ(rec.stddev, cell.stat.stddev());
      EXPECT_EQ(rec.min, cell.stat.min());
      EXPECT_EQ(rec.max, cell.stat.max());
      EXPECT_EQ(rec.p50, cell.samples.p50());
      EXPECT_EQ(rec.p95, cell.samples.p95());
      EXPECT_EQ(rec.p99, cell.samples.p99());
    }
  }
}

TEST(Sinks, CsvRoundTrip) {
  const ScenarioSpec spec = synthetic_spec();
  const auto rows = run_scenario(spec, RunOptions{4, 0});
  std::stringstream io;
  CsvSink().write(spec, rows, io);
  expect_records_match(spec, rows, parse_csv(io));
}

TEST(Sinks, JsonlRoundTrip) {
  const ScenarioSpec spec = synthetic_spec();
  const auto rows = run_scenario(spec, RunOptions{4, 0});
  std::stringstream io;
  JsonlSink().write(spec, rows, io);
  expect_records_match(spec, rows, parse_jsonl(io));
}

TEST(Sinks, JsonlEscapesAwkwardStrings) {
  // Backslash-terminated and quote-bearing names must survive the
  // write/parse round trip (the quote scanner skips escape pairs).
  ScenarioSpec spec = synthetic_spec();
  spec.name = "weird\\";
  spec.axes = {GridAxis::labeled("a", "a", {"x\"y", "tail\\"}),
               spec.axes[1]};
  const auto rows = run_scenario(spec, RunOptions{1, 0});
  std::stringstream io;
  JsonlSink().write(spec, rows, io);
  const auto records = parse_jsonl(io);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records[0].scenario, "weird\\");
  EXPECT_EQ(records[0].axes[0], "x\"y");
  EXPECT_EQ(records[0].count, rows[0].cells[0].stat.count());
  EXPECT_EQ(records[0].mean, rows[0].cells[0].stat.mean());
  const std::size_t tail_point = 2;  // second label of axis a, first of b
  const std::size_t tail_rec = tail_point * spec.metrics.size();
  EXPECT_EQ(records[tail_rec].axes[0], "tail\\");
}

TEST(Sinks, NanMetricsRenderAsMissing) {
  ScenarioSpec spec = synthetic_spec();
  spec.trial = [](const GridPoint& p, std::uint64_t) -> TrialResult {
    return {p.value(0), std::numeric_limits<double>::quiet_NaN()};
  };
  const auto rows = run_scenario(spec, RunOptions{1, 0});
  std::ostringstream table;
  TableSink().write(spec, rows, table);
  EXPECT_NE(table.str().find('-'), std::string::npos);
  std::stringstream csv;
  CsvSink().write(spec, rows, csv);
  const auto records = parse_csv(csv);
  for (std::size_t r = 1; r < records.size(); r += 2)
    EXPECT_EQ(records[r].count, 0u);
}

TEST(Sinks, MakeSinkNames) {
  EXPECT_NE(make_sink("table"), nullptr);
  EXPECT_NE(make_sink("csv"), nullptr);
  EXPECT_NE(make_sink("jsonl"), nullptr);
  EXPECT_THROW(make_sink("yaml"), ContractViolation);
}

// ------------------------------------------------------------ registry ----

TEST(Registry, BuiltinsRegisteredOnce) {
  register_builtin_scenarios();
  register_builtin_scenarios();  // idempotent
  auto& registry = Registry::instance();
  for (const char* name :
       {"e1_message_bound", "e2_guarantee_ratio", "e2_guarantee_ratio_parallel",
        "e3_sphere_radius", "e3_sphere_radius_offload", "e4_adjustment_cases",
        "e5_enroll_policy", "e5_enroll_gate", "e5_surplus_window",
        "e5_laxity_weighting", "e5_admission_policy", "e5_local_knowledge",
        "e5_transport", "e5_mapper_priority", "policy_sweep"})
    EXPECT_NE(registry.find(name), nullptr) << name;
  for (const char* name :
       {"fig1_protocol", "fig2_table1", "e4a_case_boundaries"})
    EXPECT_NE(registry.find_report(name), nullptr) << name;
  EXPECT_EQ(registry.find("nonexistent"), nullptr);

  // The legacy paper sweeps pin the shared seed the old benches used.
  EXPECT_EQ(registry.find("e2_guarantee_ratio")->seed_mode, SeedMode::kFixed);
  EXPECT_EQ(registry.find("e2_guarantee_ratio")->fixed_seed, 42u);
  EXPECT_EQ(registry.find("e1_message_bound")->grid_size(), 7u);
}

TEST(Registry, PolicySweepAxisCoversPolicyRegistry) {
  register_builtin_scenarios();
  const ScenarioSpec* sweep = Registry::instance().find("policy_sweep");
  ASSERT_NE(sweep, nullptr);
  ASSERT_FALSE(sweep->axes.empty());
  const auto names = policy::PolicyRegistry::instance().names();
  ASSERT_EQ(sweep->axes[0].values.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(sweep->axes[0].values[i].label, names[i]);
}

}  // namespace
}  // namespace rtds::exp
