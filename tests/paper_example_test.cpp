// Exact reproduction of the paper's worked example (§12, §12.1, §12.2):
// Figure 2 (the task graph), Figure 3 (schedule S, makespan M = 33),
// Figure 4 (schedule S*, makespan M* = 19) and every cell of Table 1.
#include <gtest/gtest.h>

#include "core/mapper.hpp"
#include "dag/analysis.hpp"
#include "dag/generators.hpp"

namespace rtds {
namespace {

MapperInput paper_input(const Dag& dag) {
  MapperInput in;
  in.dag = &dag;
  in.release = 0.0;   // "for sake of simplicity its release is r = 0"
  in.deadline = 66.0; // "we consider the deadline of the job is d = 66"
  in.surpluses = {0.5, 0.4};  // I1 = 0.5, I2 = 0.4
  in.comm_diameter = 3.0;     // "computed diameter of the ACS is equal to 3"
  return in;
}

TEST(PaperExample, Figure2Structure) {
  const Dag dag = paper_example();
  ASSERT_EQ(dag.task_count(), 5u);
  ASSERT_EQ(dag.arc_count(), 6u);
  EXPECT_DOUBLE_EQ(dag.cost(0), 6.0);
  EXPECT_DOUBLE_EQ(dag.cost(1), 4.0);
  EXPECT_DOUBLE_EQ(dag.cost(2), 4.0);
  EXPECT_DOUBLE_EQ(dag.cost(3), 2.0);
  EXPECT_DOUBLE_EQ(dag.cost(4), 5.0);
  EXPECT_EQ(std::vector<TaskId>(dag.predecessors(2).begin(), dag.predecessors(2).end()), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(std::vector<TaskId>(dag.predecessors(3).begin(), dag.predecessors(3).end()), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(std::vector<TaskId>(dag.predecessors(4).begin(), dag.predecessors(4).end()), (std::vector<TaskId>{2, 3}));
  EXPECT_EQ(dag.sources(), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(dag.sinks(), (std::vector<TaskId>{4}));
}

TEST(PaperExample, Figure3ScheduleS) {
  const Dag dag = paper_example();
  const auto m = build_trial_mapping(paper_input(dag));
  ASSERT_TRUE(m.has_value());

  // M = 33 ("M = 33 and the scaling factor is (d-r)/M = 2").
  EXPECT_NEAR(m->makespan, 33.0, 1e-9);

  // Table 1 columns r_i / d_i: the schedule S of Figure 3.
  const std::vector<double> ri = {0, 0, 13, 15, 23};
  const std::vector<double> di = {12, 10, 21, 20, 33};
  for (TaskId t = 0; t < 5; ++t) {
    EXPECT_NEAR(m->s_start[t], ri[t], 1e-9) << "r_" << (t + 1);
    EXPECT_NEAR(m->s_finish[t], di[t], 1e-9) << "d_" << (t + 1);
  }

  // Mapping: p0 <- {t1, t3, t5}, p1 <- {t2, t4} (1-based task names).
  EXPECT_EQ(m->used_processors, 2u);
  EXPECT_EQ(m->assignment[0], m->assignment[2]);
  EXPECT_EQ(m->assignment[2], m->assignment[4]);
  EXPECT_EQ(m->assignment[1], m->assignment[3]);
  EXPECT_NE(m->assignment[0], m->assignment[1]);
  // t1's processor is the higher-surplus one (I = 0.5).
  EXPECT_DOUBLE_EQ(m->surpluses[m->assignment[0]], 0.5);
  EXPECT_DOUBLE_EQ(m->surpluses[m->assignment[1]], 0.4);
}

TEST(PaperExample, Figure4ScheduleStar) {
  const Dag dag = paper_example();
  const auto m = build_trial_mapping(paper_input(dag));
  ASSERT_TRUE(m.has_value());

  // S*: same mapping at 100% surplus. M* = 19 is the lower bound of M.
  EXPECT_NEAR(m->makespan_full, 19.0, 1e-9);
  const std::vector<double> star_start = {0, 0, 7, 9, 14};
  const std::vector<double> star_finish = {6, 4, 11, 11, 19};
  for (TaskId t = 0; t < 5; ++t) {
    EXPECT_NEAR(m->star_start[t], star_start[t], 1e-9) << "t" << (t + 1);
    EXPECT_NEAR(m->star_finish[t], star_finish[t], 1e-9) << "t" << (t + 1);
  }
}

TEST(PaperExample, Table1AdjustedWindows) {
  const Dag dag = paper_example();
  const auto m = build_trial_mapping(paper_input(dag));
  ASSERT_TRUE(m.has_value());

  // M = 33 <= d - r = 66: case (ii), scaling factor exactly 2.
  EXPECT_EQ(m->adjustment, AdjustmentCase::kStretch);

  // Table 1: ti | ri | di | r(ti) | d(ti).
  struct Row {
    double ri, di, r_adj, d_adj;
  };
  const std::vector<Row> table1 = {
      {0, 12, 0, 24}, {0, 10, 0, 20}, {13, 21, 24, 42},
      {15, 20, 27, 40}, {23, 33, 43, 66},
  };
  for (TaskId t = 0; t < 5; ++t) {
    EXPECT_NEAR(m->s_start[t], table1[t].ri, 1e-9) << "row " << (t + 1);
    EXPECT_NEAR(m->s_finish[t], table1[t].di, 1e-9) << "row " << (t + 1);
    EXPECT_NEAR(m->release[t], table1[t].r_adj, 1e-9) << "row " << (t + 1);
    EXPECT_NEAR(m->deadline[t], table1[t].d_adj, 1e-9) << "row " << (t + 1);
  }
}

TEST(PaperExample, AdjustedWindowsAreExecutable) {
  const Dag dag = paper_example();
  const auto m = build_trial_mapping(paper_input(dag));
  ASSERT_TRUE(m.has_value());
  // Every window holds its task at full speed, and precedence + the ACS
  // diameter are respected between windows on different processors.
  for (TaskId t = 0; t < 5; ++t) {
    EXPECT_LE(m->release[t] + dag.cost(t), m->deadline[t] + 1e-9);
    for (TaskId p : dag.predecessors(t)) {
      const double omega = m->assignment[p] == m->assignment[t] ? 0.0 : 3.0;
      EXPECT_GE(m->release[t] + 1e-9, m->deadline[p] + omega);
    }
  }
}

TEST(PaperExample, CaseIRejection) {
  // Same instance with a deadline below M* = 19: case (i), rejected.
  const Dag dag = paper_example();
  MapperInput in = paper_input(dag);
  in.deadline = 18.0;
  AdjustmentCase failure = AdjustmentCase::kStretch;
  EXPECT_FALSE(build_trial_mapping(in, {}, &failure).has_value());
  EXPECT_EQ(failure, AdjustmentCase::kReject);
}

TEST(PaperExample, CaseIIIBetweenBounds) {
  // Deadline between M* = 19 and M = 33 exercises case (iii).
  const Dag dag = paper_example();
  MapperInput in = paper_input(dag);
  in.deadline = 28.0;
  const auto m = build_trial_mapping(in);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->adjustment, AdjustmentCase::kLaxity);
  for (TaskId t = 0; t < 5; ++t) {
    EXPECT_LE(m->release[t] + dag.cost(t), m->deadline[t] + 1e-9)
        << "t" << (t + 1);
    EXPECT_LE(m->deadline[t], in.deadline + 1e-9);
    EXPECT_GE(m->release[t] + 1e-9, in.release);
  }
  // Sink deadline pinned to d (eq. 4 first branch).
  EXPECT_NEAR(m->deadline[4], 28.0, 1e-9);
}

TEST(PaperExample, CriticalPathPriorities) {
  // §12: priority of t is the longest node-weighted path to a sink,
  // t included: {15, 13, 9, 7, 5}.
  const Dag dag = paper_example();
  const auto bl = bottom_levels(dag);
  const std::vector<double> expected = {15, 13, 9, 7, 5};
  for (TaskId t = 0; t < 5; ++t) EXPECT_NEAR(bl[t], expected[t], 1e-9);
}

}  // namespace
}  // namespace rtds
