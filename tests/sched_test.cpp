#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "sched/admission.hpp"
#include "sched/local_scheduler.hpp"
#include "sched/gantt.hpp"
#include "sched/plan.hpp"

namespace rtds {
namespace {

Reservation res(JobId job, TaskId task, Time start, Time end) {
  return Reservation{job, task, start, end};
}

// ---------------------------------------------------------------- plan ----

TEST(Plan, ReserveAndOverlapDetection) {
  SchedulingPlan plan;
  plan.reserve(res(1, 0, 2.0, 4.0));
  plan.reserve(res(1, 1, 5.0, 6.0));
  plan.reserve(res(2, 0, 4.0, 5.0));  // back-to-back is fine
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_THROW(plan.reserve(res(3, 0, 3.0, 3.5)), ContractViolation);
  EXPECT_THROW(plan.reserve(res(3, 0, 1.0, 2.5)), ContractViolation);
  EXPECT_THROW(plan.reserve(res(3, 0, 5.5, 7.0)), ContractViolation);
  EXPECT_THROW(plan.reserve(res(3, 0, 1.0, 1.0)), ContractViolation);  // empty
}

TEST(Plan, EarliestFit) {
  SchedulingPlan plan;
  plan.reserve(res(1, 0, 2.0, 4.0));
  plan.reserve(res(1, 1, 6.0, 8.0));
  EXPECT_DOUBLE_EQ(plan.earliest_fit(0.0, 100.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(plan.earliest_fit(0.0, 100.0, 2.5), 8.0);  // gaps too small
  EXPECT_DOUBLE_EQ(plan.earliest_fit(1.0, 100.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.earliest_fit(3.0, 100.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(plan.earliest_fit(4.5, 100.0, 1.5), 4.5);
  EXPECT_EQ(plan.earliest_fit(0.0, 9.0, 2.5), kInfiniteTime);  // misses bound
  EXPECT_DOUBLE_EQ(plan.earliest_fit(0.0, 10.5, 2.5), 8.0);
}

TEST(Plan, IdleIntervalsAndTimes) {
  SchedulingPlan plan;
  plan.reserve(res(1, 0, 2.0, 4.0));
  plan.reserve(res(1, 1, 6.0, 8.0));
  const auto gaps = plan.idle_intervals(0.0, 10.0);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0].start, 0.0);
  EXPECT_DOUBLE_EQ(gaps[0].end, 2.0);
  EXPECT_DOUBLE_EQ(gaps[1].start, 4.0);
  EXPECT_DOUBLE_EQ(gaps[1].end, 6.0);
  EXPECT_DOUBLE_EQ(gaps[2].start, 8.0);
  EXPECT_DOUBLE_EQ(gaps[2].end, 10.0);
  EXPECT_DOUBLE_EQ(plan.idle_time(0.0, 10.0), 6.0);
  EXPECT_DOUBLE_EQ(plan.busy_time(0.0, 10.0), 4.0);
  // Window clipping.
  EXPECT_DOUBLE_EQ(plan.idle_time(3.0, 7.0), 2.0);
  EXPECT_DOUBLE_EQ(plan.surplus(0.0, 10.0), 0.6);
}

TEST(Plan, SurplusFullWhenEmpty) {
  SchedulingPlan plan;
  EXPECT_DOUBLE_EQ(plan.surplus(5.0, 10.0), 1.0);
  EXPECT_THROW(plan.surplus(0.0, 0.0), ContractViolation);
}

TEST(Plan, RemoveJobAndGc) {
  SchedulingPlan plan;
  plan.reserve(res(1, 0, 0.0, 1.0));
  plan.reserve(res(2, 0, 1.0, 2.0));
  plan.reserve(res(1, 1, 2.0, 3.0));
  plan.remove_job(1);
  EXPECT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.reservations()[0].job, 2u);
  plan.garbage_collect(2.0);
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.horizon(), 0.0);
}

// ----------------------------------------------------------- admission ----

WindowedTask wt(TaskId id, Time r, Time d, Time c) {
  return WindowedTask{id, r, d, c};
}

TEST(AdmitEdf, SimpleFeasibleSet) {
  SchedulingPlan plan;
  const std::vector<WindowedTask> tasks = {wt(0, 0, 10, 3), wt(1, 0, 4, 2),
                                           wt(2, 5, 9, 1)};
  const auto p = admit_edf(plan, tasks);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(placements_valid(plan, tasks, *p));
}

TEST(AdmitEdf, RespectsExistingPlan) {
  SchedulingPlan plan;
  plan.reserve(res(9, 0, 0.0, 5.0));
  const std::vector<WindowedTask> tasks = {wt(0, 0, 8, 2)};
  const auto p = admit_edf(plan, tasks);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ((*p)[0].start, 5.0);
  EXPECT_TRUE(placements_valid(plan, tasks, *p));
}

TEST(AdmitEdf, InfeasibleWindowRejected) {
  SchedulingPlan plan;
  EXPECT_FALSE(admit_edf(plan, std::vector<WindowedTask>{wt(0, 0, 1, 2)}));
  plan.reserve(res(9, 0, 0.0, 10.0));
  EXPECT_FALSE(admit_edf(plan, std::vector<WindowedTask>{wt(0, 0, 10, 1)}));
}

TEST(AdmitEdf, OverloadRejected) {
  SchedulingPlan plan;
  const std::vector<WindowedTask> tasks = {wt(0, 0, 4, 2), wt(1, 0, 4, 2),
                                           wt(2, 0, 4, 2)};
  EXPECT_FALSE(admit_edf(plan, tasks));
}

TEST(AdmitExact, BeatsGreedyEdf) {
  // EDF orders by deadline; here the later-deadline task must go first.
  // t0: r=0 d=10 c=2; t1: r=2 d=5 c=3. EDF runs t1 first: needs [2,5); then
  // t0 earliest fit at 5.. fits [5,7) <= 10 — feasible, bad example.
  // Construct a real EDF failure: t0: r=0, d=4, c=2 and t1: r=0, d=5, c=3.
  // EDF: t0 at [0,2), t1 at [2,5) — works. Try blocking with the plan:
  // plan busy [2,3). t0: r=0 d=4 c=2 -> EDF places [0,2). t1: r=0 d=6 c=3:
  // gaps [3,6) — fits. Still fine. Classic case needs release offsets:
  // t0: r=3 d=6 c=2 (deadline earlier), t1: r=0 d=7 c=4. EDF picks t0 first:
  // [3,5); t1 earliest fit: [0,3) too short for 4, then 5 -> [5,9) > 7 fail.
  // Optimal: t1 [0,4), t0 [4,6). Exact search must find it.
  SchedulingPlan plan;
  const std::vector<WindowedTask> tasks = {wt(0, 3, 6, 2), wt(1, 0, 7, 4)};
  EXPECT_FALSE(admit_edf(plan, tasks));
  const auto p = admit_exact(plan, tasks);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(placements_valid(plan, tasks, *p));
}

TEST(AdmitExact, AgreesWithEdfWhenEdfSucceeds) {
  SchedulingPlan plan;
  plan.reserve(res(9, 0, 1.0, 2.0));
  const std::vector<WindowedTask> tasks = {wt(0, 0, 6, 1), wt(1, 0, 8, 2)};
  const auto e = admit_edf(plan, tasks);
  const auto x = admit_exact(plan, tasks);
  ASSERT_TRUE(e.has_value());
  ASSERT_TRUE(x.has_value());
}

TEST(AdmitExact, DetectsInfeasible) {
  SchedulingPlan plan;
  const std::vector<WindowedTask> tasks = {wt(0, 0, 3, 2), wt(1, 0, 3, 2)};
  EXPECT_FALSE(admit_exact(plan, tasks));
  EXPECT_THROW(
      admit_exact(plan, std::vector<WindowedTask>(20, wt(0, 0, 100, 1)), 12),
      ContractViolation);
}

// ---- pruned admit_exact vs the unpruned pre-PR-5 search ------------------
//
// PR 5 added three prunes to admit_exact (root preemptive demand bound,
// per-node idle-capacity bound, dead-node cut on an unplaceable task). All
// three only ever cut subtrees that contain no solution, so the decision
// AND the returned placements must stay bit-identical to the original
// exhaustive search, reproduced verbatim below as the oracle.

namespace unpruned {

class TrialPlan {
 public:
  explicit TrialPlan(const SchedulingPlan& base) : base_(base) {}

  Time earliest_fit(Time est, Time latest_end, Time duration) const {
    Time candidate = est;
    for (;;) {
      const Time base_fit = base_.earliest_fit(candidate, latest_end, duration);
      if (base_fit == kInfiniteTime) return kInfiniteTime;
      bool collided = false;
      Time pushed = base_fit;
      for (const auto& p : placed_) {
        if (time_lt(pushed, p.end) && time_lt(p.start, pushed + duration)) {
          pushed = p.end;
          collided = true;
        }
      }
      if (!collided) return base_fit;
      candidate = pushed;
      if (time_gt(candidate + duration, latest_end)) return kInfiniteTime;
    }
  }

  void place(const Placement& p) {
    auto pos = std::upper_bound(
        placed_.begin(), placed_.end(), p,
        [](const Placement& a, const Placement& b) { return a.start < b.start; });
    placed_.insert(pos, p);
  }

  void unplace_last_of(TaskId task) {
    for (auto it = placed_.begin(); it != placed_.end(); ++it) {
      if (it->task == task) {
        placed_.erase(it);
        return;
      }
    }
    FAIL() << "unplace of a task that was never placed";
  }

 private:
  const SchedulingPlan& base_;
  std::vector<Placement> placed_;
};

bool exact_search(TrialPlan& trial, std::vector<WindowedTask>& remaining,
                  std::vector<Placement>& placements) {
  if (remaining.empty()) return true;
  std::sort(remaining.begin(), remaining.end(),
            [](const WindowedTask& a, const WindowedTask& b) {
              if (!time_eq(a.deadline, b.deadline)) return a.deadline < b.deadline;
              return a.task < b.task;
            });
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    const WindowedTask t = remaining[i];
    if (i > 0) {
      const WindowedTask& prev = remaining[i - 1];
      if (time_eq(prev.release, t.release) && time_eq(prev.cost, t.cost) &&
          time_eq(prev.deadline, t.deadline))
        continue;
    }
    const Time start = trial.earliest_fit(t.release, t.deadline, t.cost);
    if (start == kInfiniteTime) continue;
    const Placement p{t.task, start, start + t.cost};
    trial.place(p);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(i));
    placements.push_back(p);
    if (exact_search(trial, remaining, placements)) return true;
    placements.pop_back();
    remaining.insert(remaining.begin() + static_cast<std::ptrdiff_t>(i), t);
    trial.unplace_last_of(t.task);
    Time min_other_release = kInfiniteTime;
    for (std::size_t j = 0; j < remaining.size(); ++j)
      if (j != i)
        min_other_release = std::min(min_other_release, remaining[j].release);
    if (time_le(p.end, min_other_release)) break;
  }
  return false;
}

std::optional<std::vector<Placement>> admit_exact(
    const SchedulingPlan& plan, std::span<const WindowedTask> tasks) {
  for (const auto& t : tasks)
    if (time_gt(t.release + t.cost, t.deadline)) return std::nullopt;
  if (auto edf = admit_edf(plan, tasks)) return edf;
  TrialPlan trial(plan);
  std::vector<WindowedTask> remaining(tasks.begin(), tasks.end());
  std::vector<Placement> placements;
  if (exact_search(trial, remaining, placements)) return placements;
  return std::nullopt;
}

}  // namespace unpruned

TEST(AdmitExact, PrunedSearchMatchesUnprunedOracle) {
  Rng rng(20250731);
  std::size_t accepted = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    // Random existing plan: a few busy blocks.
    SchedulingPlan plan;
    Time cursor = 0.0;
    const int blocks = static_cast<int>(rng.uniform_int(0, 5));
    for (int b = 0; b < blocks; ++b) {
      cursor += rng.uniform(0.5, 3.0);
      const Time len = rng.uniform(0.5, 2.0);
      plan.reserve(Reservation{99, 0, cursor, cursor + len});
      cursor += len;
    }
    // Random task set, windows tight enough that all three outcomes
    // (EDF-accept, search-accept, reject) occur across the suite.
    const auto count = static_cast<std::size_t>(rng.uniform_int(2, 9));
    std::vector<WindowedTask> tasks;
    for (std::size_t i = 0; i < count; ++i) {
      const Time r = rng.uniform(0.0, 10.0);
      const Time c = rng.uniform(0.5, 3.0);
      const Time slack = rng.uniform(0.0, 4.0);
      tasks.push_back(WindowedTask{static_cast<TaskId>(i), r, r + c + slack, c});
    }
    const auto pruned = admit_exact(plan, tasks);
    const auto oracle = unpruned::admit_exact(plan, tasks);
    ASSERT_EQ(pruned.has_value(), oracle.has_value()) << "trial " << trial;
    if (pruned.has_value()) {
      ++accepted;
      ASSERT_EQ(pruned->size(), oracle->size()) << "trial " << trial;
      for (std::size_t i = 0; i < pruned->size(); ++i) {
        EXPECT_EQ((*pruned)[i].task, (*oracle)[i].task) << "trial " << trial;
        EXPECT_EQ((*pruned)[i].start, (*oracle)[i].start) << "trial " << trial;
        EXPECT_EQ((*pruned)[i].end, (*oracle)[i].end) << "trial " << trial;
      }
      EXPECT_TRUE(placements_valid(plan, tasks, *pruned));
    } else {
      ++rejected;
    }
  }
  // The suite must actually exercise both outcomes to pin anything.
  EXPECT_GT(accepted, 50u);
  EXPECT_GT(rejected, 50u);
}

TEST(Preemptive, FeasibilityCriterion) {
  SchedulingPlan plan;
  // Non-preemptively infeasible, preemptively feasible:
  // t0: r=0 d=10 c=6; t1: r=2 d=6 c=2. Non-preemptive EDF: t1 [2,4),
  // t0 [4,10) = 6 fits! Choose tighter: t0 c=7 d=10: [4,11) misses.
  // Preemptive: run t0 [0,2), t1 [2,4), t0 [4,9). Wait c=7: 2+5, ends 9 <=10.
  const std::vector<WindowedTask> tasks = {wt(0, 0, 10, 7), wt(1, 2, 6, 2)};
  EXPECT_FALSE(admit_edf(plan, tasks));
  EXPECT_FALSE(admit_exact(plan, tasks));
  EXPECT_TRUE(feasible_preemptive(plan, tasks));
  const auto segs = admit_preemptive(plan, tasks);
  ASSERT_TRUE(segs.has_value());
  // Segments of t0 add up to its cost and all lie within its window.
  Time t0_total = 0.0;
  for (const auto& s : *segs) {
    if (s.task == 0) t0_total += s.end - s.start;
    const auto& task = tasks[s.task];
    EXPECT_GE(s.start + 1e-9, task.release);
    EXPECT_LE(s.end, task.deadline + 1e-9);
  }
  EXPECT_NEAR(t0_total, 7.0, 1e-9);
}

TEST(Preemptive, RespectsBlackouts) {
  SchedulingPlan plan;
  plan.reserve(res(9, 0, 1.0, 3.0));
  const std::vector<WindowedTask> tasks = {wt(0, 0, 5, 3)};
  // Idle in [0,5): [0,1) + [3,5) = 3 units, just enough.
  EXPECT_TRUE(feasible_preemptive(plan, tasks));
  const auto segs = admit_preemptive(plan, tasks);
  ASSERT_TRUE(segs.has_value());
  ASSERT_EQ(segs->size(), 2u);
  EXPECT_DOUBLE_EQ((*segs)[0].start, 0.0);
  EXPECT_DOUBLE_EQ((*segs)[0].end, 1.0);
  EXPECT_DOUBLE_EQ((*segs)[1].start, 3.0);
  EXPECT_DOUBLE_EQ((*segs)[1].end, 5.0);
  // One more unit of demand tips it over.
  EXPECT_FALSE(
      feasible_preemptive(plan, std::vector<WindowedTask>{wt(0, 0, 5, 3.5)}));
}

TEST(Preemptive, EarlierDeadlinePreempts) {
  SchedulingPlan plan;
  const std::vector<WindowedTask> tasks = {wt(0, 0, 20, 6), wt(1, 2, 5, 2)};
  const auto segs = admit_preemptive(plan, tasks);
  ASSERT_TRUE(segs.has_value());
  // t0 runs [0,2), t1 preempts [2,4), t0 resumes [4,8).
  ASSERT_EQ(segs->size(), 3u);
  EXPECT_EQ((*segs)[0].task, 0u);
  EXPECT_EQ((*segs)[1].task, 1u);
  EXPECT_EQ((*segs)[2].task, 0u);
  EXPECT_DOUBLE_EQ((*segs)[2].end, 8.0);
}

// ------------------------------------------------------ local scheduler ----

TEST(LocalScheduler, AcceptsAndCommitsDag) {
  LocalSchedulerConfig cfg;
  cfg.observation_window = 50.0;
  LocalScheduler sched(cfg);
  Job job;
  job.id = 1;
  job.dag = paper_example();
  job.release = 0.0;
  job.deadline = 30.0;  // total work 21, chain constraints OK
  const auto placements = sched.try_accept_dag_local(job, 0.0);
  ASSERT_TRUE(placements.has_value());
  EXPECT_EQ(placements->size(), 5u);
  // Precedence respected on one processor.
  std::vector<Time> start(5), end(5);
  for (const auto& p : *placements) {
    start[p.task] = p.start;
    end[p.task] = p.end;
  }
  for (const auto& arc : job.dag.arcs())
    EXPECT_LE(end[arc.from], start[arc.to] + 1e-9);
  // Plan now holds 21 units of work.
  EXPECT_DOUBLE_EQ(sched.plan().busy_time(0.0, 30.0), 21.0);
  EXPECT_NEAR(sched.surplus(0.0), 1.0 - 21.0 / 50.0, 1e-9);
}

TEST(LocalScheduler, RejectsWhenDeadlineTight) {
  LocalScheduler sched;
  Job job;
  job.id = 1;
  job.dag = paper_example();
  job.release = 0.0;
  job.deadline = 20.0;  // < total work 21 on a single site
  EXPECT_FALSE(sched.try_accept_dag_local(job, 0.0).has_value());
  EXPECT_TRUE(sched.plan().empty());  // no partial commitment
}

TEST(LocalScheduler, SecondJobFillsGaps) {
  LocalScheduler sched;
  Rng rng(1);
  Job a;
  a.id = 1;
  a.dag = make_chain(2, CostRange{3.0, 3.0}, rng);
  a.release = 0.0;
  a.deadline = 100.0;
  ASSERT_TRUE(sched.try_accept_dag_local(a, 0.0));
  Job b;
  b.id = 2;
  b.dag = make_chain(2, CostRange{2.0, 2.0}, rng);
  b.release = 0.0;
  b.deadline = 100.0;
  const auto p = sched.try_accept_dag_local(b, 0.0);
  ASSERT_TRUE(p.has_value());
  // b starts right after a (a occupies [0,6)).
  Time first = kInfiniteTime;
  for (const auto& pl : *p) first = std::min(first, pl.start);
  EXPECT_DOUBLE_EQ(first, 6.0);
}

TEST(LocalScheduler, ComputingPowerScalesExecution) {
  LocalSchedulerConfig cfg;
  cfg.computing_power = 2.0;  // §13 uniform machines
  LocalScheduler sched(cfg);
  Job job;
  job.id = 1;
  job.dag = paper_example();  // work 21 -> 10.5 at power 2
  job.release = 0.0;
  job.deadline = 11.0;
  EXPECT_TRUE(sched.try_accept_dag_local(job, 0.0).has_value());
}

TEST(LocalScheduler, TestWindowedPolicies) {
  const std::vector<WindowedTask> needs_exact = {wt(0, 3, 6, 2),
                                                 wt(1, 0, 7, 4)};
  LocalSchedulerConfig edf_cfg;
  edf_cfg.policy = AdmissionPolicy::kEdf;
  EXPECT_FALSE(LocalScheduler(edf_cfg).test_windowed(needs_exact));

  LocalSchedulerConfig exact_cfg;
  exact_cfg.policy = AdmissionPolicy::kExact;
  EXPECT_TRUE(LocalScheduler(exact_cfg).test_windowed(needs_exact));

  const std::vector<WindowedTask> needs_preempt = {wt(0, 0, 10, 7),
                                                   wt(1, 2, 6, 2)};
  EXPECT_FALSE(LocalScheduler(exact_cfg).test_windowed(needs_preempt));
  LocalSchedulerConfig pre_cfg;
  pre_cfg.policy = AdmissionPolicy::kPreemptive;
  EXPECT_TRUE(LocalScheduler(pre_cfg).test_windowed(needs_preempt));
}

TEST(LocalScheduler, CommitValidatesWindows) {
  LocalScheduler sched;
  const std::vector<WindowedTask> tasks = {wt(0, 0, 10, 2)};
  const std::vector<Placement> bad = {{0, 9.0, 11.0}};  // exceeds deadline
  EXPECT_THROW(sched.commit(1, tasks, bad), ContractViolation);
  const auto good = sched.test_windowed(tasks);
  ASSERT_TRUE(good.has_value());
  sched.commit(1, tasks, *good);
  EXPECT_EQ(sched.plan().size(), 1u);
  sched.revoke(1);
  EXPECT_TRUE(sched.plan().empty());
}


// --------------------------------------------------------------- gantt ----

TEST(Gantt, RendersBlocksAndAxis) {
  SchedulingPlan plan;
  plan.reserve(res(1, 0, 0.0, 4.0));
  plan.reserve(res(1, 1, 6.0, 8.0));
  const std::string out = render_plan(plan, 0.0, 10.0);
  EXPECT_NE(out.find("t1"), std::string::npos);  // 1-based labels
  EXPECT_NE(out.find("t2"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);   // idle fill
  EXPECT_NE(out.find('+'), std::string::npos);   // axis ticks
}

TEST(Gantt, MultiRowAlignment) {
  GanttRow a{"p1", {res(1, 0, 0.0, 5.0)}};
  GanttRow b{"site 42", {res(1, 1, 5.0, 10.0)}};
  const std::string out = render_gantt({a, b}, 0.0, 10.0);
  // Labels are padded so every row's '[' lands in the same column.
  std::vector<std::size_t> bracket_cols;
  std::size_t line_start = 0;
  while (line_start < out.size()) {
    const auto line_end = out.find('\n', line_start);
    const auto bracket = out.find('[', line_start);
    if (bracket != std::string::npos && bracket < line_end)
      bracket_cols.push_back(bracket - line_start);
    if (line_end == std::string::npos) break;
    line_start = line_end + 1;
  }
  ASSERT_GE(bracket_cols.size(), 3u);  // two rows + axis ruler
  for (std::size_t c : bracket_cols) EXPECT_EQ(c, bracket_cols.front());
}

TEST(Gantt, TinyBlocksStillVisible) {
  SchedulingPlan plan;
  plan.reserve(res(1, 0, 0.0, 0.001));  // far below one column
  const std::string out = render_plan(plan, 0.0, 100.0);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(Gantt, RangeClipping) {
  SchedulingPlan plan;
  plan.reserve(res(1, 0, 0.0, 50.0));
  const std::string out = render_plan(plan, 40.0, 60.0);
  EXPECT_NE(out.find('='), std::string::npos);
  EXPECT_THROW(render_plan(plan, 5.0, 5.0), ContractViolation);
}

}  // namespace
}  // namespace rtds
