// Property-based tests: randomized sweeps asserting the invariants that
// make the reproduction trustworthy — admission soundness relations,
// placement validity, mapper window soundness under composition with the
// local schedulers, end-to-end protocol safety across random topologies and
// seeds, and bit-for-bit determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/rtds_system.hpp"
#include "dag/generators.hpp"
#include "net/generators.hpp"
#include "sched/admission.hpp"

namespace rtds {
namespace {

// --------------------------------------------------- admission lattice ----

/// Brute-force non-preemptive feasibility over all task orders (oracle).
bool brute_force_feasible(const SchedulingPlan& plan,
                          std::vector<WindowedTask> tasks) {
  std::sort(tasks.begin(), tasks.end(),
            [](const WindowedTask& a, const WindowedTask& b) {
              return a.task < b.task;
            });
  do {
    SchedulingPlan trial = plan;
    bool ok = true;
    for (const auto& t : tasks) {
      const Time start = trial.earliest_fit(t.release, t.deadline, t.cost);
      if (start == kInfiniteTime) {
        ok = false;
        break;
      }
      trial.reserve(Reservation{0, t.task, start, start + t.cost});
    }
    if (ok) return true;
  } while (std::next_permutation(
      tasks.begin(), tasks.end(),
      [](const WindowedTask& a, const WindowedTask& b) { return a.task < b.task; }));
  return false;
}

class AdmissionLattice : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdmissionLattice, EdfImpliesExactImpliesPreemptiveAndMatchesBruteForce) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 120; ++iter) {
    // Random base plan.
    SchedulingPlan plan;
    const int blocks = static_cast<int>(rng.uniform_int(0, 3));
    Time cursor = 0.0;
    for (int b = 0; b < blocks; ++b) {
      cursor += rng.uniform(0.5, 3.0);
      const Time len = rng.uniform(0.5, 3.0);
      plan.reserve(Reservation{99, 0, cursor, cursor + len});
      cursor += len;
    }
    // Random windowed task set (small enough for the brute-force oracle).
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    std::vector<WindowedTask> tasks;
    for (int i = 0; i < n; ++i) {
      const Time r = rng.uniform(0.0, 8.0);
      const Time c = rng.uniform(0.5, 3.0);
      const Time d = r + c + rng.uniform(0.0, 6.0);
      tasks.push_back(WindowedTask{static_cast<TaskId>(i), r, d, c});
    }

    const auto edf = admit_edf(plan, tasks);
    const auto exact = admit_exact(plan, tasks);
    const bool preempt = feasible_preemptive(plan, tasks);
    const bool brute = brute_force_feasible(plan, tasks);

    // Soundness: every returned placement is valid.
    if (edf) EXPECT_TRUE(placements_valid(plan, tasks, *edf));
    if (exact) EXPECT_TRUE(placements_valid(plan, tasks, *exact));
    // Lattice: EDF ⊆ exact = brute-force ⊆ preemptive.
    if (edf) EXPECT_TRUE(exact.has_value());
    EXPECT_EQ(exact.has_value(), brute) << "exact B&B disagrees with oracle";
    if (exact) EXPECT_TRUE(preempt);
    // Preemptive admission agrees with the demand criterion.
    const auto segs = admit_preemptive(plan, tasks);
    EXPECT_EQ(segs.has_value(), preempt);
    if (segs) {
      // Segment sum per task equals its cost; all inside windows.
      std::vector<Time> got(tasks.size(), 0.0);
      for (const auto& s : *segs) {
        got[s.task] += s.end - s.start;
        EXPECT_TRUE(time_ge(s.start, tasks[s.task].release));
        EXPECT_TRUE(time_le(s.end, tasks[s.task].deadline));
      }
      for (std::size_t i = 0; i < tasks.size(); ++i)
        EXPECT_NEAR(got[i], tasks[i].cost, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissionLattice,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ------------------------------------------------ local DAG test sound ----

class LocalDagProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalDagProperty, AcceptedDagsRespectPrecedenceWindowsAndPlan) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    LocalScheduler sched;
    // Random pre-load.
    Job pre;
    pre.id = 1;
    pre.dag = make_shape(DagShape::kChain,
                         1 + static_cast<std::size_t>(rng.uniform_int(0, 4)),
                         CostRange{1.0, 4.0}, rng);
    pre.release = 0.0;
    pre.deadline = 1000.0;
    ASSERT_TRUE(sched.try_accept_dag_local(pre, 0.0).has_value());

    Job job;
    job.id = 2;
    const auto shape = static_cast<DagShape>(rng.uniform_int(0, 9));
    job.dag = make_shape(shape,
                         2 + static_cast<std::size_t>(rng.uniform_int(0, 10)),
                         CostRange{0.5, 5.0}, rng);
    job.release = rng.uniform(0.0, 10.0);
    job.deadline =
        job.release + rng.uniform(0.8, 3.0) * job.dag.total_work();
    const auto placements = sched.try_accept_dag_local(job, job.release);
    if (!placements) continue;
    std::vector<Time> start(job.dag.task_count()), end(job.dag.task_count());
    for (const auto& p : *placements) {
      start[p.task] = p.start;
      end[p.task] = p.end;
      EXPECT_TRUE(time_ge(p.start, job.release));
      EXPECT_TRUE(time_le(p.end, job.deadline));
      EXPECT_NEAR(p.end - p.start, job.dag.cost(p.task), 1e-9);
    }
    for (const auto& arc : job.dag.arcs())
      EXPECT_TRUE(time_le(end[arc.from], start[arc.to]))
          << "precedence violated on " << arc.from << "->" << arc.to;
    // The plan never overlaps (reserve() would have thrown) and contains
    // exactly pre + job tasks.
    EXPECT_EQ(sched.plan().size(),
              pre.dag.task_count() + job.dag.task_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalDagProperty, ::testing::Values(7, 17, 27));

// ----------------------------------------------------- system sweeps ------

struct SweepCase {
  std::uint64_t seed;
  NetShape net;
  EnrollPolicy policy;
};

class SystemSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SystemSweep, ProtocolSafetyAcrossTopologiesAndSeeds) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Topology topo = make_net(param.net, 20, DelayRange{0.2, 1.0}, rng);
  const auto sites = topo.site_count();

  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;
  cfg.node.enroll_policy = param.policy;
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.03;
  wl.horizon = 400.0;
  wl.laxity_min = 1.2;
  wl.laxity_max = 4.0;
  wl.seed = param.seed;
  const auto arrivals = generate_workload(sites, wl);

  RtdsSystem system(std::move(topo), cfg);
  system.run(arrivals);  // run() asserts: no misses, locks freed, queues empty
  const auto& m = system.metrics();
  EXPECT_EQ(m.arrived, arrivals.size());
  EXPECT_EQ(m.arrived, m.accepted() + m.rejected);
  EXPECT_EQ(m.deadline_misses, 0u);
  EXPECT_EQ(system.decisions().size(), arrivals.size());
  // Every decision is unique per job.
  std::vector<JobId> ids;
  for (const auto& d : system.decisions()) ids.push_back(d.job);
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(to_string(info.param.net)) + "_" +
         to_string(info.param.policy) + "_" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SystemSweep,
    ::testing::Values(
        SweepCase{101, NetShape::kGrid, EnrollPolicy::kNack},
        SweepCase{102, NetShape::kRing, EnrollPolicy::kNack},
        SweepCase{103, NetShape::kTree, EnrollPolicy::kNack},
        SweepCase{104, NetShape::kGeometric, EnrollPolicy::kNack},
        SweepCase{105, NetShape::kScaleFree, EnrollPolicy::kNack},
        SweepCase{106, NetShape::kSmallWorld, EnrollPolicy::kNack},
        SweepCase{107, NetShape::kGrid, EnrollPolicy::kTimeout},
        SweepCase{108, NetShape::kTree, EnrollPolicy::kTimeout},
        SweepCase{109, NetShape::kScaleFree, EnrollPolicy::kTimeout},
        SweepCase{110, NetShape::kGeometric, EnrollPolicy::kTimeout}),
    sweep_name);

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  auto run_once = [] {
    Rng rng(77);
    Topology topo = make_geometric(24, 0.45, 1.0, rng);
    SystemConfig cfg;
    WorkloadConfig wl;
    wl.arrival_rate_per_site = 0.02;
    wl.horizon = 500.0;
    wl.seed = 77;
    const auto arrivals = generate_workload(topo.site_count(), wl);
    RtdsSystem system(std::move(topo), cfg);
    system.run(arrivals);
    return system.decisions();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].link_messages, b[i].link_messages);
    EXPECT_DOUBLE_EQ(a[i].decision_time, b[i].decision_time);
  }
}

TEST(Monotonicity, LooserDeadlinesNeverHurtMuch) {
  // Guarantee ratio should (statistically) increase with laxity. Admission
  // schedulers are not strictly monotone instance-by-instance, so compare
  // aggregate ratios with a tolerance.
  Rng rng(5);
  Topology topo = make_grid(4, 4, DelayRange{0.2, 0.8}, rng);
  auto ratio_for = [&](double lax_min, double lax_max) {
    WorkloadConfig wl;
    wl.arrival_rate_per_site = 0.02;
    wl.horizon = 500.0;
    wl.laxity_min = lax_min;
    wl.laxity_max = lax_max;
    wl.seed = 5;
    const auto arrivals = generate_workload(topo.site_count(), wl);
    SystemConfig cfg;
    RtdsSystem system(topo, cfg);
    system.run(arrivals);
    return system.metrics().guarantee_ratio();
  };
  const double tight = ratio_for(1.1, 1.6);
  const double mid = ratio_for(2.0, 3.0);
  const double loose = ratio_for(4.0, 6.0);
  EXPECT_GE(mid + 0.05, tight);
  EXPECT_GE(loose + 0.05, mid);
  EXPECT_GT(loose, tight);  // across this span the trend must be visible
}

TEST(MessageBound, PerJobMessagesIndependentOfNetworkSize) {
  // E1's core claim as a property: growing the network at fixed h must not
  // grow the per-job message cost beyond the sphere bound.
  auto mean_msgs = [](std::size_t side) {
    Rng rng(31);
    Topology topo = make_grid(side, side, DelayRange{0.2, 0.6}, rng);
    WorkloadConfig wl;
    wl.arrival_rate_per_site = 0.02;
    wl.horizon = 300.0;
    wl.laxity_min = 1.2;
    wl.laxity_max = 2.0;
    wl.seed = 31;
    const auto arrivals = generate_workload(topo.site_count(), wl);
    SystemConfig cfg;
    RtdsSystem system(std::move(topo), cfg);
    system.run(arrivals);
    return system.metrics().msgs_per_job.max();
  };
  const double small = mean_msgs(4);
  const double large = mean_msgs(8);
  (void)small;
  // Interior spheres on a grid have identical size regardless of grid side,
  // so the per-job *maximum* cannot grow with the network.
  EXPECT_LE(large, mean_msgs(6) * 1.5 + 8.0);
}

}  // namespace
}  // namespace rtds
