#include <gtest/gtest.h>

#include <set>

#include "dag/analysis.hpp"
#include "dag/dot.hpp"
#include "dag/generators.hpp"

namespace rtds {
namespace {

// ----------------------------------------------------------------- dag ----

TEST(Dag, BuildAndQuery) {
  Dag dag;
  const TaskId a = dag.add_task(1.0, "a");
  const TaskId b = dag.add_task(2.0);
  const TaskId c = dag.add_task(3.0);
  dag.add_arc(a, b);
  dag.add_arc(b, c);
  dag.add_arc(a, c);
  dag.add_arc(a, c);  // duplicate is idempotent
  dag.finalize();
  EXPECT_EQ(dag.task_count(), 3u);
  EXPECT_EQ(dag.arc_count(), 3u);
  EXPECT_EQ(std::vector<TaskId>(dag.successors(a).begin(), dag.successors(a).end()), (std::vector<TaskId>{b, c}));
  EXPECT_EQ(std::vector<TaskId>(dag.predecessors(c).begin(), dag.predecessors(c).end()), (std::vector<TaskId>{a, b}));
  EXPECT_EQ(dag.topological_order(), (std::vector<TaskId>{a, b, c}));
  EXPECT_DOUBLE_EQ(dag.total_work(), 6.0);
  EXPECT_TRUE(dag.reaches(a, c));
  EXPECT_FALSE(dag.reaches(c, a));
  EXPECT_FALSE(dag.reaches(a, a));
}

TEST(Dag, CycleDetected) {
  Dag dag;
  const TaskId a = dag.add_task(1.0);
  const TaskId b = dag.add_task(1.0);
  dag.add_arc(a, b);
  dag.add_arc(b, a);
  EXPECT_THROW(dag.finalize(), ContractViolation);
}

TEST(Dag, InvalidInputsRejected) {
  Dag dag;
  EXPECT_THROW(dag.add_task(0.0), ContractViolation);
  EXPECT_THROW(dag.add_task(-1.0), ContractViolation);
  const TaskId a = dag.add_task(1.0);
  EXPECT_THROW(dag.add_arc(a, a), ContractViolation);
  EXPECT_THROW(dag.add_arc(a, 5), ContractViolation);
  EXPECT_THROW(dag.predecessors(a), ContractViolation);  // not finalized
  dag.finalize();
  EXPECT_THROW(dag.add_task(1.0), ContractViolation);  // frozen
  EXPECT_THROW(dag.finalize(), ContractViolation);     // double finalize
}

TEST(Dag, DataVolumes) {
  Dag dag;
  const TaskId a = dag.add_task(1.0);
  const TaskId b = dag.add_task(1.0);
  dag.add_arc(a, b, 12.5);
  dag.finalize();
  EXPECT_DOUBLE_EQ(dag.data_volume(a, b), 12.5);
  EXPECT_THROW(dag.data_volume(b, a), ContractViolation);
}

// ------------------------------------------------------------ analysis ----

TEST(Analysis, ChainLevels) {
  Rng rng(1);
  const Dag dag = make_chain(4, CostRange{2.0, 2.0}, rng);
  const auto bl = bottom_levels(dag);
  const auto tl = top_levels(dag);
  EXPECT_DOUBLE_EQ(bl[0], 8.0);
  EXPECT_DOUBLE_EQ(bl[3], 2.0);
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[3], 6.0);
  EXPECT_DOUBLE_EQ(critical_path_length(dag), 8.0);
  EXPECT_EQ(critical_path_task_count(dag), 4u);
  EXPECT_EQ(depth(dag), 4u);
  EXPECT_EQ(width(dag), 1u);
}

TEST(Analysis, ForkJoinShape) {
  Rng rng(2);
  const Dag dag = make_fork_join(5, CostRange{1.0, 1.0}, rng);
  EXPECT_EQ(dag.task_count(), 7u);
  EXPECT_DOUBLE_EQ(critical_path_length(dag), 3.0);
  EXPECT_EQ(critical_path_task_count(dag), 3u);
  EXPECT_EQ(depth(dag), 3u);
  EXPECT_EQ(width(dag), 5u);
  const auto s = summarize(dag);
  EXPECT_DOUBLE_EQ(s.total_work, 7.0);
  EXPECT_NEAR(s.parallelism, 7.0 / 3.0, 1e-12);
}

TEST(Analysis, CriticalPathTasksIsAPath) {
  Rng rng(3);
  const Dag dag = make_layered(5, 4, 0.5, CostRange{1.0, 9.0}, rng);
  const auto path = critical_path_tasks(dag);
  ASSERT_FALSE(path.empty());
  Time length = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    length += dag.cost(path[i]);
    if (i > 0) {
      const auto& preds = dag.predecessors(path[i]);
      EXPECT_NE(std::find(preds.begin(), preds.end(), path[i - 1]),
                preds.end())
          << "consecutive critical tasks must be linked";
    }
  }
  EXPECT_NEAR(length, critical_path_length(dag), 1e-9);
}

TEST(Analysis, EtaOnDiamond) {
  // Diamond a -> {b, c} -> d with heavy b: critical path a,b,d (3 tasks).
  Dag dag;
  const auto a = dag.add_task(1.0);
  const auto b = dag.add_task(5.0);
  const auto c = dag.add_task(1.0);
  const auto d = dag.add_task(1.0);
  dag.add_arc(a, b);
  dag.add_arc(a, c);
  dag.add_arc(b, d);
  dag.add_arc(c, d);
  dag.finalize();
  EXPECT_DOUBLE_EQ(critical_path_length(dag), 7.0);
  EXPECT_EQ(critical_path_task_count(dag), 3u);
}

TEST(Analysis, EtaCountsLongestWhenTied) {
  // Two critical paths with different task counts: a->z (6+1) and
  // a->b->c->z would tie if costs align. Build: src cost 3 then either one
  // task of 4 or two tasks of 2 each, then sink 1. Both paths length 8.
  Dag dag;
  const auto src = dag.add_task(3.0);
  const auto big = dag.add_task(4.0);
  const auto s1 = dag.add_task(2.0);
  const auto s2 = dag.add_task(2.0);
  const auto sink = dag.add_task(1.0);
  dag.add_arc(src, big);
  dag.add_arc(src, s1);
  dag.add_arc(s1, s2);
  dag.add_arc(big, sink);
  dag.add_arc(s2, sink);
  dag.finalize();
  EXPECT_DOUBLE_EQ(critical_path_length(dag), 8.0);
  EXPECT_EQ(critical_path_task_count(dag), 4u);  // src, s1, s2, sink
}

// ---------------------------------------------------------- generators ----

struct ShapeCase {
  DagShape shape;
  std::size_t approx;
};

class GeneratorShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(GeneratorShapes, ProducesValidDagOfRoughlyRequestedSize) {
  Rng rng(77);
  const auto [shape, approx] = GetParam();
  const Dag dag = make_shape(shape, approx, CostRange{1.0, 5.0}, rng);
  EXPECT_TRUE(dag.finalized());
  EXPECT_GE(dag.task_count(), 1u);
  // Generators honour the approximate size within a generous factor.
  EXPECT_LE(dag.task_count(), 6 * approx + 8);
  // All costs in range.
  for (TaskId t = 0; t < dag.task_count(); ++t) {
    EXPECT_GE(dag.cost(t), 1.0);
    EXPECT_LE(dag.cost(t), 5.0);
  }
  // Topological order is consistent (finalize already proved acyclicity).
  std::vector<std::size_t> pos(dag.task_count());
  for (std::size_t i = 0; i < dag.topological_order().size(); ++i)
    pos[dag.topological_order()[i]] = i;
  for (const auto& arc : dag.arcs()) EXPECT_LT(pos[arc.from], pos[arc.to]);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GeneratorShapes,
    ::testing::Values(ShapeCase{DagShape::kChain, 8},
                      ShapeCase{DagShape::kForkJoin, 10},
                      ShapeCase{DagShape::kDiamond, 16},
                      ShapeCase{DagShape::kLayered, 20},
                      ShapeCase{DagShape::kRandom, 15},
                      ShapeCase{DagShape::kInTree, 15},
                      ShapeCase{DagShape::kOutTree, 15},
                      ShapeCase{DagShape::kLu, 15},
                      ShapeCase{DagShape::kFft, 24},
                      ShapeCase{DagShape::kStencil, 16}),
    [](const auto& info) { return to_string(info.param.shape); });

TEST(Generators, ChainIsAChain) {
  Rng rng(4);
  const Dag dag = make_chain(6, CostRange{1.0, 2.0}, rng);
  EXPECT_EQ(dag.task_count(), 6u);
  EXPECT_EQ(dag.arc_count(), 5u);
  EXPECT_EQ(width(dag), 1u);
  EXPECT_EQ(depth(dag), 6u);
}

TEST(Generators, LayeredAlwaysConnectedToPreviousLayer) {
  Rng rng(5);
  const Dag dag = make_layered(6, 5, 0.05, CostRange{1.0, 2.0}, rng);
  // Even with tiny edge probability every non-first-layer task has a pred.
  std::size_t no_pred = 0;
  for (TaskId t = 0; t < dag.task_count(); ++t)
    if (dag.predecessors(t).empty()) ++no_pred;
  EXPECT_EQ(no_pred, 5u);  // exactly the first layer
}

TEST(Generators, InTreeHasSingleSink) {
  Rng rng(6);
  const Dag dag = make_in_tree(4, CostRange{1.0, 2.0}, rng);
  EXPECT_EQ(dag.task_count(), 15u);
  EXPECT_EQ(dag.sinks().size(), 1u);
  EXPECT_EQ(dag.sources().size(), 8u);
}

TEST(Generators, OutTreeHasSingleSource) {
  Rng rng(7);
  const Dag dag = make_out_tree(4, CostRange{1.0, 2.0}, rng);
  EXPECT_EQ(dag.task_count(), 15u);
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 8u);
}

TEST(Generators, FftButterflyStructure) {
  Rng rng(8);
  const Dag dag = make_fft(3, CostRange{1.0, 1.0}, rng);
  EXPECT_EQ(dag.task_count(), 8u * 4u);
  EXPECT_EQ(depth(dag), 4u);
  // Every non-input task has exactly two predecessors.
  for (TaskId t = 8; t < dag.task_count(); ++t)
    EXPECT_EQ(dag.predecessors(t).size(), 2u);
}

TEST(Generators, StencilDependencies) {
  Rng rng(9);
  const Dag dag = make_stencil(3, 3, CostRange{1.0, 1.0}, rng);
  EXPECT_EQ(dag.task_count(), 9u);
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
  EXPECT_EQ(depth(dag), 5u);  // Manhattan diagonal
}

TEST(Generators, LuTaskCount) {
  Rng rng(10);
  const Dag dag = make_lu(4, CostRange{1.0, 1.0}, rng);
  EXPECT_EQ(dag.task_count(), 10u);  // n(n+1)/2
  EXPECT_EQ(dag.sinks().size(), 1u);
}

TEST(Generators, RandomDagEdgeMonotone) {
  Rng rng(11);
  const Dag sparse = make_random_dag(30, 0.05, CostRange{1.0, 2.0}, rng);
  const Dag dense = make_random_dag(30, 0.6, CostRange{1.0, 2.0}, rng);
  EXPECT_LT(sparse.arc_count(), dense.arc_count());
}

// ----------------------------------------------------------------- dot ----

TEST(Dot, ContainsTasksAndArcs) {
  const Dag dag = paper_example();
  const std::string dot = to_dot(dag, "fig2");
  EXPECT_NE(dot.find("digraph fig2"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t2"), std::string::npos);
  EXPECT_NE(dot.find("c=6"), std::string::npos);
}

}  // namespace
}  // namespace rtds
