// Mapper unit tests beyond the worked example: window invariants across
// random instances, case selection boundaries, §13 extensions (busyness
// laxity, data volumes), logical-processor renumbering.
#include <gtest/gtest.h>

#include "core/mapper.hpp"
#include "dag/analysis.hpp"
#include "dag/generators.hpp"

namespace rtds {
namespace {

MapperInput input_for(const Dag& dag, Time deadline,
                      std::vector<double> surpluses, Time omega) {
  MapperInput in;
  in.dag = &dag;
  in.release = 0.0;
  in.deadline = deadline;
  in.surpluses = std::move(surpluses);
  in.comm_diameter = omega;
  return in;
}

void expect_windows_sound(const Dag& dag, const MapperInput& in,
                          const TrialMapping& m) {
  for (TaskId t = 0; t < dag.task_count(); ++t) {
    // Window holds the task at full speed.
    EXPECT_LE(m.release[t] + dag.cost(t), m.deadline[t] + 1e-7);
    // Windows inside the job window.
    EXPECT_GE(m.release[t] + 1e-7, in.release);
    EXPECT_LE(m.deadline[t], in.deadline + 1e-7);
    // Precedence + over-estimated comm respected between windows (eq. 5).
    for (TaskId q : dag.predecessors(t)) {
      const Time w =
          m.assignment[q] == m.assignment[t] ? 0.0 : in.comm_diameter;
      EXPECT_GE(m.release[t] + 1e-7, m.deadline[q] + w)
          << "arc " << q << "->" << t;
    }
  }
  // Logical processors are densely numbered with descending surpluses.
  EXPECT_GE(m.used_processors, 1u);
  std::vector<bool> seen(m.used_processors, false);
  for (TaskId t = 0; t < dag.task_count(); ++t) {
    ASSERT_LT(m.assignment[t], m.used_processors);
    seen[m.assignment[t]] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  for (std::size_t i = 1; i < m.surpluses.size(); ++i)
    EXPECT_LE(m.surpluses[i], m.surpluses[i - 1] + 1e-12);
}

struct RandomCase {
  std::uint64_t seed;
  DagShape shape;
};

class MapperRandom : public ::testing::TestWithParam<RandomCase> {};

TEST_P(MapperRandom, WindowInvariantsHoldWhenAccepted) {
  const auto [seed, shape] = GetParam();
  Rng rng(seed);
  for (int iter = 0; iter < 25; ++iter) {
    const Dag dag = make_shape(shape, 3 + static_cast<std::size_t>(
                                            rng.uniform_int(0, 12)),
                               CostRange{1.0, 8.0}, rng);
    std::vector<double> surpluses;
    const int np = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < np; ++i) surpluses.push_back(rng.uniform(0.1, 1.0));
    std::sort(surpluses.rbegin(), surpluses.rend());
    const Time omega = rng.uniform(0.0, 5.0);
    const Time cp = critical_path_length(dag);
    const Time deadline = rng.uniform(0.5, 6.0) * cp + omega;
    const auto in = input_for(dag, deadline, surpluses, omega);
    const auto m = build_trial_mapping(in);
    if (!m) continue;  // rejection is always allowed
    expect_windows_sound(dag, in, *m);
    EXPECT_LE(m->makespan_full, m->makespan + 1e-7) << "M* is a lower bound";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, MapperRandom,
    ::testing::Values(RandomCase{1, DagShape::kLayered},
                      RandomCase{2, DagShape::kRandom},
                      RandomCase{3, DagShape::kForkJoin},
                      RandomCase{4, DagShape::kChain},
                      RandomCase{5, DagShape::kDiamond},
                      RandomCase{6, DagShape::kInTree},
                      RandomCase{7, DagShape::kLu},
                      RandomCase{8, DagShape::kStencil}),
    [](const auto& info) {
      return std::string(to_string(info.param.shape)) + "_" +
             std::to_string(info.param.seed);
    });

TEST(Mapper, SingleProcessorSerializes) {
  const Dag dag = paper_example();
  const auto m = build_trial_mapping(input_for(dag, 100.0, {1.0}, 3.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->used_processors, 1u);
  // All on one logical processor: makespan = total work (no comm).
  EXPECT_NEAR(m->makespan, dag.total_work(), 1e-9);
  EXPECT_NEAR(m->makespan_full, dag.total_work(), 1e-9);
}

TEST(Mapper, HighCommKeepsChainOnOneProcessor) {
  // A chain with an enormous ACS diameter: every migration pays omega, so
  // the ETF rule keeps the whole chain on one logical processor.
  Rng rng(42);
  const Dag dag = make_chain(5, CostRange{3.0, 3.0}, rng);
  const auto m =
      build_trial_mapping(input_for(dag, 500.0, {1.0, 1.0, 1.0}, 1000.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->used_processors, 1u);
  EXPECT_NEAR(m->makespan, 15.0, 1e-9);
}

TEST(Mapper, ZeroCommSpreadsWork) {
  Rng rng(3);
  const Dag dag = make_fork_join(8, CostRange{4.0, 4.0}, rng);
  const auto m =
      build_trial_mapping(input_for(dag, 500.0, {1.0, 1.0, 1.0, 1.0}, 0.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_GT(m->used_processors, 1u);
  // Parallel makespan beats serial work.
  EXPECT_LT(m->makespan, dag.total_work() - 1e-9);
}

TEST(Mapper, CaseBoundaries) {
  const Dag dag = paper_example();
  // From the worked example: M = 33, M* = 19 (omega 3, surpluses .5/.4).
  const std::vector<double> surpluses = {0.5, 0.4};
  // d - r exactly M: case ii (paper: "If M <= d - r").
  auto m = build_trial_mapping(input_for(dag, 33.0, surpluses, 3.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->adjustment, AdjustmentCase::kStretch);
  // d - r exactly M*: case iii boundary, laxity budget 0.
  m = build_trial_mapping(input_for(dag, 19.0, surpluses, 3.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->adjustment, AdjustmentCase::kLaxity);
  // Just below M*: case i.
  EXPECT_FALSE(
      build_trial_mapping(input_for(dag, 19.0 - 0.001, surpluses, 3.0)));
}

TEST(Mapper, LaxityCaseSinkPinnedToDeadline) {
  const Dag dag = paper_example();
  const auto m = build_trial_mapping(input_for(dag, 25.0, {0.5, 0.4}, 3.0));
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->adjustment, AdjustmentCase::kLaxity);
  EXPECT_NEAR(m->deadline[4], 25.0, 1e-9);  // unique sink gets d
}

TEST(Mapper, BusynessWeightedLaxityStaysSound) {
  MapperConfig cfg;
  cfg.busyness_weighted_laxity = true;
  Rng rng(10);
  for (int iter = 0; iter < 40; ++iter) {
    const Dag dag = make_shape(DagShape::kLayered,
                               4 + static_cast<std::size_t>(
                                       rng.uniform_int(0, 10)),
                               CostRange{1.0, 6.0}, rng);
    std::vector<double> surpluses = {rng.uniform(0.3, 1.0),
                                     rng.uniform(0.2, 0.9)};
    std::sort(surpluses.rbegin(), surpluses.rend());
    const auto in = input_for(
        dag, critical_path_length(dag) * rng.uniform(1.0, 2.5) + 2.0,
        surpluses, 2.0);
    const auto m = build_trial_mapping(in, cfg);
    if (!m) continue;
    expect_windows_sound(dag, in, *m);
  }
}

TEST(Mapper, BusynessWeightingChangesWindows) {
  // With unequal surpluses and a case-iii window the weighted variant must
  // produce different intermediate deadlines than the uniform one.
  const Dag dag = paper_example();
  // The worked example's surpluses give M = 33 > d - r = 28 > M* = 19,
  // i.e. case iii, with unequal busyness (0.5 vs 0.6).
  const auto in = input_for(dag, 28.0, {0.5, 0.4}, 3.0);
  const auto uniform = build_trial_mapping(in);
  MapperConfig cfg;
  cfg.busyness_weighted_laxity = true;
  const auto weighted = build_trial_mapping(in, cfg);
  ASSERT_TRUE(uniform.has_value());
  ASSERT_TRUE(weighted.has_value());
  ASSERT_EQ(uniform->adjustment, AdjustmentCase::kLaxity);
  bool any_diff = false;
  for (TaskId t = 0; t < dag.task_count(); ++t)
    any_diff |= std::abs(uniform->deadline[t] - weighted->deadline[t]) > 1e-9;
  EXPECT_TRUE(any_diff);
}

TEST(Mapper, DataVolumesExtendCommDelays) {
  // Two tasks on different processors with a decorated arc: the successor's
  // release grows by volume / throughput.
  Dag dag;
  const auto a = dag.add_task(4.0);
  const auto b = dag.add_task(4.0);
  dag.add_arc(a, b, 10.0);  // volume 10
  dag.finalize();
  MapperConfig cfg;
  cfg.account_data_volumes = true;
  cfg.link_throughput = 5.0;  // transfer time 2
  // Force two processors by giving the second a huge surplus advantage…
  // simpler: compare makespans with and without volume accounting on a
  // 2-proc zero-omega setup where splitting is attractive.
  Dag wide;
  const auto s1 = wide.add_task(4.0);
  const auto s2 = wide.add_task(4.0);
  const auto join = wide.add_task(1.0);
  wide.add_arc(s1, join, 20.0);
  wide.add_arc(s2, join, 20.0);
  wide.finalize();
  const auto plain =
      build_trial_mapping(input_for(wide, 100.0, {1.0, 1.0}, 0.5));
  const auto volumes = build_trial_mapping(
      input_for(wide, 100.0, {1.0, 1.0}, 0.5), cfg);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(volumes.has_value());
  EXPECT_GE(volumes->makespan, plain->makespan - 1e-9);
  // And the config contract is enforced.
  MapperConfig bad;
  bad.account_data_volumes = true;
  EXPECT_THROW(build_trial_mapping(input_for(wide, 100.0, {1.0}, 0.5), bad),
               ContractViolation);
}

TEST(Mapper, InputValidation) {
  const Dag dag = paper_example();
  EXPECT_THROW(build_trial_mapping(input_for(dag, 50.0, {}, 1.0)),
               ContractViolation);
  EXPECT_THROW(build_trial_mapping(input_for(dag, 50.0, {1.5}, 1.0)),
               ContractViolation);
  EXPECT_THROW(build_trial_mapping(input_for(dag, 50.0, {0.4, 0.5}, 1.0)),
               ContractViolation);  // not descending
  EXPECT_THROW(build_trial_mapping(input_for(dag, -1.0, {0.5}, 1.0)),
               ContractViolation);  // deadline before release
  Dag empty;
  empty.finalize();
  EXPECT_THROW(build_trial_mapping(input_for(empty, 10.0, {0.5}, 1.0)),
               ContractViolation);
}


TEST(Mapper, LocalKnowledgeUsesExactIdleIntervals) {
  // One logical processor = the initiator, whose plan is busy [0, 10).
  // Surplus-based estimate would start t at 0 with degraded duration;
  // exact knowledge must start at 10 with full-speed duration.
  SchedulingPlan plan;
  plan.reserve(Reservation{9, 0, 0.0, 10.0});
  Dag dag;
  dag.add_task(4.0);
  dag.finalize();
  MapperInput in = input_for(dag, 100.0, {0.5}, 0.0);
  in.initiator_plan = &plan;
  in.initiator_index = 0;
  const auto m = build_trial_mapping(in);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->s_start[0], 10.0, 1e-9);
  EXPECT_NEAR(m->s_finish[0], 14.0, 1e-9);  // full speed, not 4/0.5
}

TEST(Mapper, LocalKnowledgeFillsGaps) {
  // Busy [2, 5): a 2-unit task fits the [0, 2) gap exactly.
  SchedulingPlan plan;
  plan.reserve(Reservation{9, 0, 2.0, 5.0});
  Dag dag;
  dag.add_task(2.0);
  dag.finalize();
  MapperInput in = input_for(dag, 50.0, {0.9}, 0.0);
  in.initiator_plan = &plan;
  in.initiator_index = 0;
  const auto m = build_trial_mapping(in);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->s_start[0], 0.0, 1e-9);
  EXPECT_NEAR(m->s_finish[0], 2.0, 1e-9);
}

TEST(Mapper, LocalKnowledgeMixedWithSurplusProcs) {
  // Initiator busy forever-ish: ETF should route work to the surplus proc.
  SchedulingPlan plan;
  plan.reserve(Reservation{9, 0, 0.0, 500.0});
  Rng rng(21);
  const Dag dag = make_fork_join(4, CostRange{2.0, 4.0}, rng);
  MapperInput in = input_for(dag, 400.0, {1.0, 0.8}, 1.0);
  in.initiator_plan = &plan;
  in.initiator_index = 1;  // the 0.8-surplus entry is the initiator
  const auto m = build_trial_mapping(in);
  ASSERT_TRUE(m.has_value());
  // All tasks land on the idle surplus processor (index 0 pre-renumber,
  // which is the only used one after renumbering).
  EXPECT_EQ(m->used_processors, 1u);
  expect_windows_sound(dag, in, *m);
}

TEST(Mapper, LocalKnowledgeWindowsRemainSound) {
  Rng rng(22);
  for (int iter = 0; iter < 30; ++iter) {
    SchedulingPlan plan;
    Time cursor = rng.uniform(0.0, 3.0);
    for (int b = 0; b < 3; ++b) {
      const Time len = rng.uniform(1.0, 4.0);
      plan.reserve(Reservation{9, 0, cursor, cursor + len});
      cursor += len + rng.uniform(0.5, 3.0);
    }
    const Dag dag = make_shape(DagShape::kLayered,
                               4 + std::size_t(rng.uniform_int(0, 8)),
                               CostRange{1.0, 5.0}, rng);
    std::vector<double> surpluses = {1.0, rng.uniform(0.3, 0.9)};
    MapperInput in = input_for(
        dag, critical_path_length(dag) * rng.uniform(2.0, 5.0) + cursor,
        surpluses, rng.uniform(0.0, 2.0));
    in.initiator_plan = &plan;
    in.initiator_index = 1;
    const auto m = build_trial_mapping(in);
    if (!m) continue;
    expect_windows_sound(dag, in, *m);
    EXPECT_LE(m->makespan_full, m->makespan + 1e-7);
  }
}


class MapperPriorities : public ::testing::TestWithParam<TaskPriority> {};

TEST_P(MapperPriorities, WindowsSoundUnderAnyTaskSelection) {
  MapperConfig cfg;
  cfg.task_priority = GetParam();
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);
  for (int iter = 0; iter < 30; ++iter) {
    const Dag dag = make_shape(DagShape::kLayered,
                               4 + std::size_t(rng.uniform_int(0, 10)),
                               CostRange{1.0, 7.0}, rng);
    std::vector<double> surpluses = {1.0, rng.uniform(0.3, 0.9)};
    const auto in = input_for(
        dag, critical_path_length(dag) * rng.uniform(1.5, 4.0) + 2.0,
        surpluses, rng.uniform(0.0, 2.0));
    const auto m = build_trial_mapping(in, cfg);
    if (!m) continue;
    expect_windows_sound(dag, in, *m);
  }
}

INSTANTIATE_TEST_SUITE_P(All, MapperPriorities,
                         ::testing::Values(TaskPriority::kBottomLevel,
                                           TaskPriority::kCost,
                                           TaskPriority::kFifo),
                         [](const auto& info) { return to_string(info.param); });

TEST(MapperPriorities, PaperUsesBottomLevelByDefault) {
  // The Table 1 reproduction depends on the §12 critical-path rule; the
  // default config must select it.
  MapperConfig cfg;
  EXPECT_EQ(cfg.task_priority, TaskPriority::kBottomLevel);
}

TEST(MapperPriorities, PoliciesCanDisagree) {
  // Fork-join with one long chain: cost-first picks the big independent
  // task before the chain head; bottom-level does the opposite. They must
  // produce different schedules on at least one instance.
  Rng rng(5);
  bool differed = false;
  for (int iter = 0; iter < 20 && !differed; ++iter) {
    const Dag dag = make_shape(DagShape::kLayered, 12, CostRange{1.0, 9.0}, rng);
    const auto in =
        input_for(dag, critical_path_length(dag) * 3.0, {1.0, 0.8}, 1.0);
    MapperConfig bl;
    MapperConfig cost;
    cost.task_priority = TaskPriority::kCost;
    const auto a = build_trial_mapping(in, bl);
    const auto b = build_trial_mapping(in, cost);
    if (!a || !b) continue;
    differed = !std::equal(a->s_start.begin(), a->s_start.end(),
                           b->s_start.begin(),
                           [](Time x, Time y) { return time_eq(x, y); });
  }
  EXPECT_TRUE(differed);
}

TEST(Mapper, TasksOfPartitionsAllTasks) {
  const Dag dag = paper_example();
  const auto m = build_trial_mapping(input_for(dag, 66.0, {0.5, 0.4}, 3.0));
  ASSERT_TRUE(m.has_value());
  std::size_t total = 0;
  for (std::uint32_t u = 0; u < m->used_processors; ++u) {
    const auto tasks = m->tasks_of(dag, u);
    total += tasks.size();
    for (const auto& t : tasks) {
      EXPECT_EQ(m->assignment[t.task], u);
      EXPECT_DOUBLE_EQ(t.cost, dag.cost(t.task));
      EXPECT_DOUBLE_EQ(t.release, m->release[t.task]);
      EXPECT_DOUBLE_EQ(t.deadline, m->deadline[t.task]);
    }
  }
  EXPECT_EQ(total, dag.task_count());
}

}  // namespace
}  // namespace rtds
