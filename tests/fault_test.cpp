// Fault-injection determinism and protocol-recovery regression
// (DESIGN.md §9).
//
// Three contracts are pinned here:
//  (a) the E6 fault sweep is bit-identical for any worker count (golden
//      digest, serial and 8 workers — the digest below was recorded from
//      the serial run of this exact reduced sweep);
//  (b) a crash during enrollment leaks nothing: sphere members locked by a
//      dead initiator lease their locks back, and every arrival still gets
//      a decision;
//  (c) an all-zero fault spec is an *empty* plan, and an empty plan leaves
//      a run bit-identical to one that never heard of faults (the broader
//      E1–E5 byte-identity claim is carried by determinism_test's golden
//      digests, which run in this same suite unchanged).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "core/rtds_system.hpp"
#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"
#include "fault/fault.hpp"
#include "policy/policy.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rtds {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::FaultState;
using fault::SiteTimeline;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Topology line3() {
  Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_site();
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 1.0);
  return topo;
}

// -------------------------------------------------------- plan generation --

TEST(FaultPlan, ZeroSpecYieldsEmptyPlan) {
  const Topology topo = line3();
  const FaultPlan plan = FaultPlan::from_spec(FaultSpec{}, topo);
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.events.empty());
}

TEST(FaultPlan, GenerationIsDeterministic) {
  const Topology topo = line3();
  FaultSpec spec;
  spec.site_rate = 0.05;
  spec.link_rate = 0.03;
  spec.horizon = 200.0;
  spec.seed = 9;
  const FaultPlan a = FaultPlan::from_spec(spec, topo);
  const FaultPlan b = FaultPlan::from_spec(spec, topo);
  ASSERT_FALSE(a.events.empty());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].a, b.events[i].a);
    EXPECT_EQ(a.events[i].b, b.events[i].b);
  }
  // Events are time-sorted and a different seed draws a different plan.
  for (std::size_t i = 1; i < a.events.size(); ++i)
    EXPECT_LE(a.events[i - 1].at, a.events[i].at);
  spec.seed = 10;
  const FaultPlan c = FaultPlan::from_spec(spec, topo);
  const bool same = a.events.size() == c.events.size() &&
                    (a.events.empty() || a.events[0].at == c.events[0].at);
  EXPECT_FALSE(same);
}

TEST(SiteTimeline, UpAtFollowsToggles) {
  FaultPlan plan;
  plan.events = {FaultEvent{5.0, FaultKind::kSiteDown, 1, kNoSite},
                 FaultEvent{7.5, FaultKind::kSiteUp, 1, kNoSite},
                 FaultEvent{9.0, FaultKind::kLinkDown, 0, 1}};
  const SiteTimeline timeline(plan, 3);
  EXPECT_EQ(timeline.events().size(), 2u);  // the link event is not a site event
  EXPECT_TRUE(timeline.up_at(1, 4.9));
  EXPECT_FALSE(timeline.up_at(1, 5.0));  // events at exactly t are applied
  EXPECT_FALSE(timeline.up_at(1, 7.4));
  EXPECT_TRUE(timeline.up_at(1, 7.5));
  EXPECT_TRUE(timeline.up_at(0, 6.0));  // untouched site stays up
}

// ------------------------------------------------------ transport faults --

TEST(FaultState, TracksSiteAndLinkLiveness) {
  const Topology topo = line3();
  FaultPlan plan;
  plan.events = {FaultEvent{1.0, FaultKind::kSiteDown, 1, kNoSite}};
  FaultState state(topo, plan);
  EXPECT_TRUE(state.link_up(0, 1));
  EXPECT_TRUE(state.apply(FaultEvent{1.0, FaultKind::kSiteDown, 1, kNoSite}));
  EXPECT_FALSE(state.apply(FaultEvent{1.0, FaultKind::kSiteDown, 1, kNoSite}))
      << "re-downing a down site must be a no-op";
  EXPECT_FALSE(state.site_up(1));
  EXPECT_FALSE(state.link_up(0, 1)) << "a dead endpoint downs the link";
  EXPECT_EQ(state.live_link_count(topo), 0u);
  EXPECT_TRUE(state.apply(FaultEvent{2.0, FaultKind::kSiteUp, 1, kNoSite}));
  EXPECT_TRUE(state.apply(FaultEvent{3.0, FaultKind::kLinkDown, 1, 2}));
  EXPECT_FALSE(state.link_up(2, 1));
  EXPECT_EQ(state.live_link_count(topo), 1u);
}

TEST(SimNetworkFaults, DeliveryToDeadSiteIsDropped) {
  const Topology topo = line3();
  Simulator sim;
  SimNetwork net(sim, topo);
  FaultPlan plan;
  plan.events = {FaultEvent{0.5, FaultKind::kSiteDown, 1, kNoSite}};
  FaultState state(topo, plan);
  net.set_fault_state(&state);
  int delivered = 0;
  for (SiteId s = 0; s < 3; ++s)
    net.set_handler(s, [&](SiteId, const MessageBody&) { ++delivered; });

  net.send_adjacent(0, 1, std::string("in flight"), 1);  // arrives at t=1.0
  sim.schedule_at(0.5, [&]() {
    state.apply(plan.events[0]);  // site 1 dies while the message flies
  });
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.stats().total_sends, 1u) << "traffic was still emitted";
}

// --------------------------------------------------- protocol resilience --

/// A job one site cannot hold (4 parallel tasks of cost 3 in a window of
/// 4) but a 3-site sphere could — it must go through enrollment.
std::shared_ptr<Job> parallel_job(JobId id, Time release) {
  auto job = std::make_shared<Job>();
  job->id = id;
  for (int t = 0; t < 4; ++t) job->dag.add_task(3.0);
  job->dag.finalize();
  job->release = release;
  job->deadline = release + 4.0;
  return job;
}

TEST(ProtocolFaults, CrashedInitiatorReleasesSphereLocks) {
  SystemConfig cfg;
  // Scripted plan: the initiator (site 1) dies at t=1.5 — after its
  // enrollment requests locked both sphere members (t=1.0), before their
  // replies land (t=2.0). Without the lock lease the members would stay
  // frozen forever and the end-of-run invariants would fire.
  cfg.faults.events = {FaultEvent{1.5, FaultKind::kSiteDown, 1, kNoSite}};
  RtdsSystem system(line3(), cfg);
  system.run({{1, parallel_job(1, 0.0)}});

  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_FALSE(system.node(s).locked()) << "site " << s << " leaked a lock";
    EXPECT_EQ(system.node(s).active_initiations(), 0u);
    EXPECT_EQ(system.node(s).queued_jobs(), 0u);
  }
  const RunMetrics& m = system.metrics();
  EXPECT_EQ(m.arrived, 1u);
  EXPECT_EQ(m.rejected, 1u);
  const auto it =
      m.reject_by_reason.find(static_cast<int>(RejectReason::kSiteDown));
  ASSERT_NE(it, m.reject_by_reason.end());
  EXPECT_EQ(it->second, 1u);
}

TEST(ProtocolFaults, CrashedResponderStillConcludes) {
  SystemConfig cfg;
  // A sphere member (site 2) dies before the enrollment request reaches
  // it and never comes back. The initiator's enrollment timeout must close
  // the round with the surviving member — accept or reject, but decide.
  cfg.faults.events = {FaultEvent{0.5, FaultKind::kSiteDown, 2, kNoSite}};
  RtdsSystem system(line3(), cfg);
  system.run({{1, parallel_job(1, 0.0)}});

  for (SiteId s = 0; s < 3; ++s)
    EXPECT_FALSE(system.node(s).locked()) << "site " << s << " leaked a lock";
  EXPECT_EQ(system.metrics().arrived, 1u);
  EXPECT_EQ(system.metrics().accepted() + system.metrics().rejected, 1u);
}

TEST(ProtocolFaults, CrashLosesCommittedWork) {
  SystemConfig cfg;
  cfg.faults.events = {FaultEvent{2.0, FaultKind::kSiteDown, 0, kNoSite}};
  RtdsSystem system(line3(), cfg);
  // A trivially local job on site 0 spanning the crash instant.
  auto job = std::make_shared<Job>();
  job->id = 1;
  job->dag.add_task(3.0);
  job->dag.finalize();
  job->release = 0.0;
  job->deadline = 5.0;
  system.run({{0, job}});
  EXPECT_EQ(system.metrics().accepted_local, 1u);
  EXPECT_EQ(system.metrics().jobs_lost, 1u);
  EXPECT_EQ(system.metrics().failed_jobs, 1u);
  EXPECT_EQ(system.metrics().delivered_ratio(), 0.0);
}

// ----------------------------------------------------- empty-plan parity --

/// Exact-equality probe over every externally observable RunMetrics field
/// the sweeps print (doubles compared bit-for-bit via EXPECT_EQ).
void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.accepted_local, b.accepted_local);
  EXPECT_EQ(a.accepted_remote, b.accepted_remote);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.dispatch_failures, b.dispatch_failures);
  EXPECT_EQ(a.failed_jobs, b.failed_jobs);
  EXPECT_EQ(a.jobs_lost, b.jobs_lost);
  EXPECT_EQ(a.jobs_rescheduled, b.jobs_rescheduled);
  EXPECT_EQ(a.repair_messages, b.repair_messages);
  EXPECT_EQ(a.reject_by_reason, b.reject_by_reason);
  EXPECT_EQ(a.adjustment_cases, b.adjustment_cases);
  EXPECT_EQ(a.decision_latency.count(), b.decision_latency.count());
  EXPECT_EQ(a.decision_latency.mean(), b.decision_latency.mean());
  EXPECT_EQ(a.msgs_per_job.mean(), b.msgs_per_job.mean());
  EXPECT_EQ(a.job_lateness.mean(), b.job_lateness.mean());
  EXPECT_EQ(a.acs_size.mean(), b.acs_size.mean());
  EXPECT_EQ(a.transport.total_sends, b.transport.total_sends);
  EXPECT_EQ(a.transport.total_link_messages, b.transport.total_link_messages);
  EXPECT_EQ(a.transport.messages_dropped, b.transport.messages_dropped);
  EXPECT_EQ(a.pcs_size_max, b.pcs_size_max);
  EXPECT_EQ(a.pcs_hop_diameter_max, b.pcs_hop_diameter_max);
}

TEST(ZeroFaultParity, ExplicitZeroRatesMatchNoFaultKeysBitForBit) {
  policy::register_builtin_policies();
  exp::ConditionSpec cs;
  cs.sites = 36;
  cs.horizon = 150.0;
  const exp::Condition c = exp::make_condition(cs);
  for (const auto& name : policy::PolicyRegistry::instance().names()) {
    const auto policy = policy::PolicyRegistry::instance().create(name);
    const RunMetrics plain =
        policy->run(c.topo, c.arrivals, policy->parse_params({}));
    const RunMetrics zeroed = policy->run(
        c.topo, c.arrivals,
        policy->parse_params({"faults.site_rate=0", "faults.seed=777"}));
    SCOPED_TRACE("policy " + name);
    expect_identical(plain, zeroed);
    EXPECT_EQ(plain.jobs_lost, 0u);
    EXPECT_EQ(plain.transport.messages_dropped, 0u);
  }
}

// ------------------------------------------------------ E6 golden digest --

// Digest recorded from the serial run of this reduced sweep at the commit
// that introduced E6; any worker count must reproduce every byte.
constexpr std::uint64_t kE6CsvDigest = 14329082671146674128ull;

/// E6 restricted to its first two crash rates at the low load, so the
/// regression runs in seconds; grid indices and seeds match the full
/// sweep's corresponding rows.
exp::ScenarioSpec reduced_e6() {
  exp::register_builtin_scenarios();
  const exp::ScenarioSpec* base =
      exp::Registry::instance().find("e6_fault_tolerance");
  EXPECT_NE(base, nullptr);
  exp::ScenarioSpec spec = *base;
  spec.axes.at(0).values.resize(2);  // crash rates 0.0 and 0.001
  spec.axes.at(1).values.resize(1);  // rate 0.01
  return spec;
}

std::uint64_t e6_digest(std::size_t jobs) {
  const exp::ScenarioSpec spec = reduced_e6();
  exp::RunOptions opts;
  opts.jobs = jobs;
  const auto rows = exp::run_scenario(spec, opts);
  std::ostringstream os;
  exp::CsvSink{}.write(spec, rows, os);
  return fnv1a(os.str());
}

TEST(E6GoldenDigest, SerialMatchesRecordedDigest) {
  EXPECT_EQ(e6_digest(1), kE6CsvDigest);
}

TEST(E6GoldenDigest, EightWorkersMatchesRecordedDigest) {
  EXPECT_EQ(e6_digest(8), kE6CsvDigest);
}

}  // namespace
}  // namespace rtds
