// Cross-module integration tests: RTDS + all baselines on shared workloads,
// dominance in the regimes the paper argues for, sphere-radius behaviour,
// uniform machines, preemptive local schedulers inside the full protocol,
// and the distributed-vs-in-memory PCS construction on larger networks.
#include <gtest/gtest.h>

#include "baseline/broadcast.hpp"
#include "baseline/centralized.hpp"
#include "baseline/local_only.hpp"
#include "baseline/offload.hpp"
#include "core/rtds_system.hpp"
#include "net/generators.hpp"

namespace rtds {
namespace {

struct Regime {
  const char* name;
  double rate;
  double lax_min, lax_max;
  double delay_min, delay_max;
};

/// The two regimes EXPERIMENTS.md discusses: "offload" (jobs fit on one
/// site; cooperation of any kind helps) and "parallel" (windows smaller
/// than total work; only DAG partitioning helps).
constexpr Regime kOffloadRegime{"offload", 0.02, 2.0, 6.0, 0.5, 2.0};
constexpr Regime kParallelRegime{"parallel", 0.015, 1.2, 1.8, 0.05, 0.2};

struct Scenario {
  Topology topo;
  std::vector<JobArrival> arrivals;
};

Scenario make_setup(const Regime& regime, std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.topo = make_grid(4, 4, DelayRange{regime.delay_min, regime.delay_max}, rng);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = regime.rate;
  wl.horizon = 600.0;
  wl.laxity_min = regime.lax_min;
  wl.laxity_max = regime.lax_max;
  wl.seed = seed;
  s.arrivals = generate_workload(s.topo.site_count(), wl);
  return s;
}

RunMetrics run_rtds(const Scenario& s, std::size_t h = 2) {
  SystemConfig cfg;
  cfg.node.sphere_radius_h = h;
  RtdsSystem system(s.topo, cfg);
  system.run(s.arrivals);
  return system.metrics();
}

TEST(Integration, ParallelRegimeRtdsDominatesWholeJobSchemes) {
  const Scenario s = make_setup(kParallelRegime, 9);
  const auto rtds = run_rtds(s);
  const auto local = run_local_only(s.topo, s.arrivals, LocalSchedulerConfig{});
  OffloadConfig bid_cfg;
  const auto bid = run_offload(s.topo, s.arrivals, bid_cfg);
  const auto central = run_centralized(s.topo, s.arrivals, CentralizedConfig{});

  // Jobs whose window < total work cannot run on any single site: only
  // RTDS (partitioning) and CENTRAL (omniscient) can save them.
  EXPECT_GT(rtds.guarantee_ratio(), bid.guarantee_ratio() + 0.15);
  EXPECT_GT(rtds.guarantee_ratio(), local.guarantee_ratio() + 0.15);
  EXPECT_GE(central.guarantee_ratio(), rtds.guarantee_ratio());
  EXPECT_GT(rtds.accepted_remote, 5u * bid.accepted_remote);
}

TEST(Integration, OffloadRegimeCooperationHelpsEveryone) {
  const Scenario s = make_setup(kOffloadRegime, 11);
  const auto rtds = run_rtds(s);
  const auto local = run_local_only(s.topo, s.arrivals, LocalSchedulerConfig{});
  const auto central = run_centralized(s.topo, s.arrivals, CentralizedConfig{});
  EXPECT_GT(rtds.guarantee_ratio(), local.guarantee_ratio());
  EXPECT_GE(central.guarantee_ratio() + 0.02, rtds.guarantee_ratio());
}

TEST(Integration, LargerSphereAcceptsMoreInParallelRegime) {
  const Scenario s = make_setup(kParallelRegime, 13);
  const auto h0 = run_rtds(s, 0);
  const auto h1 = run_rtds(s, 1);
  const auto h2 = run_rtds(s, 2);
  EXPECT_GE(h1.guarantee_ratio() + 0.03, h0.guarantee_ratio());
  EXPECT_GE(h2.guarantee_ratio() + 0.03, h1.guarantee_ratio());
  EXPECT_GT(h2.guarantee_ratio(), h0.guarantee_ratio() + 0.1);
  // …at a message cost that grows with the sphere.
  EXPECT_GT(h2.msgs_per_job.mean(), h1.msgs_per_job.mean());
  EXPECT_EQ(h0.msgs_per_job.max(), 0.0);
}

TEST(Integration, UniformMachinesExtension) {
  // §13: heterogeneous computing powers. Double-speed sites make the same
  // workload easier for everyone.
  Rng rng(15);
  Topology slow = make_grid(3, 3, DelayRange{0.2, 0.6}, rng);
  Topology fast;
  for (SiteId s = 0; s < slow.site_count(); ++s) fast.add_site(2.0);
  for (const auto& l : slow.links()) fast.add_link(l.a, l.b, l.delay);

  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.04;
  wl.horizon = 400.0;
  wl.laxity_min = 1.2;
  wl.laxity_max = 2.5;
  wl.seed = 15;
  const auto arrivals = generate_workload(slow.site_count(), wl);

  SystemConfig cfg;
  RtdsSystem sys_slow(std::move(slow), cfg);
  sys_slow.run(arrivals);
  RtdsSystem sys_fast(std::move(fast), cfg);
  sys_fast.run(arrivals);
  EXPECT_GT(sys_fast.metrics().guarantee_ratio(),
            sys_slow.metrics().guarantee_ratio());
  EXPECT_EQ(sys_fast.metrics().deadline_misses, 0u);
}

TEST(Integration, PreemptiveLocalSchedulersInsideProtocol) {
  // §13 "Preemptive Case": the preemptive admission test accepts a superset
  // of task sets, so the end-to-end ratio must not degrade.
  const Scenario s = make_setup(kParallelRegime, 17);
  SystemConfig np;
  np.node.sched.policy = AdmissionPolicy::kEdf;
  SystemConfig pre;
  pre.node.sched.policy = AdmissionPolicy::kPreemptive;
  RtdsSystem a(s.topo, np);
  a.run(s.arrivals);
  RtdsSystem b(s.topo, pre);
  b.run(s.arrivals);
  EXPECT_GE(b.metrics().guarantee_ratio() + 0.03,
            a.metrics().guarantee_ratio());
  EXPECT_EQ(b.metrics().deadline_misses, 0u);
}

TEST(Integration, ExactAdmissionNeverWorseThanGreedy) {
  const Scenario s = make_setup(kParallelRegime, 19);
  SystemConfig greedy;
  greedy.node.sched.policy = AdmissionPolicy::kEdf;
  SystemConfig exact;
  exact.node.sched.policy = AdmissionPolicy::kExact;
  RtdsSystem a(s.topo, greedy);
  a.run(s.arrivals);
  RtdsSystem b(s.topo, exact);
  b.run(s.arrivals);
  EXPECT_GE(b.metrics().guarantee_ratio() + 0.03,
            a.metrics().guarantee_ratio());
}

TEST(Integration, DistributedPcsBuildOnLargerNetworks) {
  for (const NetShape shape : {NetShape::kGeometric, NetShape::kScaleFree}) {
    Rng rng(21);
    Topology topo = make_net(shape, 60, DelayRange{0.5, 2.0}, rng);
    SystemConfig cfg;
    cfg.measure_pcs_build_cost = true;  // ctor reconciles both APSP engines
    RtdsSystem system(std::move(topo), cfg);
    EXPECT_GT(system.metrics().pcs_build_messages, 0u) << to_string(shape);
  }
}

TEST(Integration, SustainedLoadLongHorizon) {
  // Long-horizon soak: garbage collection keeps plans bounded, locks cycle
  // thousands of times, and every invariant holds at the end.
  Rng rng(23);
  Topology topo = make_geometric(30, 0.4, 0.5, rng);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.02;
  wl.horizon = 5000.0;
  wl.laxity_min = 1.3;
  wl.laxity_max = 4.0;
  wl.seed = 23;
  const auto arrivals = generate_workload(topo.site_count(), wl);
  ASSERT_GT(arrivals.size(), 2000u);
  SystemConfig cfg;
  RtdsSystem system(std::move(topo), cfg);
  system.run(arrivals);
  EXPECT_EQ(system.metrics().arrived, arrivals.size());
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
  // Plans were garbage collected along the way: no site should hold
  // anywhere near the full history of reservations.
  for (SiteId s = 0; s < system.topology().site_count(); ++s)
    EXPECT_LT(system.node(s).scheduler().plan().size(), 500u);
}

TEST(Integration, BidMaxAttemptsSweep) {
  const Scenario s = make_setup(kOffloadRegime, 25);
  double prev = -1.0;
  for (std::size_t attempts : {1u, 2u, 4u}) {
    OffloadConfig cfg;
    cfg.max_attempts = attempts;
    const auto m = run_offload(s.topo, s.arrivals, cfg);
    EXPECT_EQ(m.deadline_misses, 0u);
    if (prev >= 0.0) EXPECT_GE(m.guarantee_ratio() + 0.05, prev);
    prev = m.guarantee_ratio();
  }
}


TEST(Integration, InitiatorLocalKnowledgeOption) {
  // §13 "local knowledge of k": protocol safety is unchanged and the ratio
  // must not degrade materially (the option only improves the initiator's
  // own estimates).
  const Scenario s = make_setup(kParallelRegime, 27);
  SystemConfig base;
  SystemConfig exact;
  exact.node.initiator_local_knowledge = true;
  RtdsSystem a(s.topo, base);
  a.run(s.arrivals);
  RtdsSystem b(s.topo, exact);
  b.run(s.arrivals);
  EXPECT_EQ(b.metrics().deadline_misses, 0u);
  EXPECT_GE(b.metrics().guarantee_ratio() + 0.03,
            a.metrics().guarantee_ratio());
}

TEST(Integration, BroadcastBaselineComparableAcceptance) {
  // BCAST approximates BID's acceptance (same whole-job granularity) while
  // paying the network-wide flood; in the parallel regime RTDS still wins.
  const Scenario s = make_setup(kParallelRegime, 29);
  BroadcastConfig bcfg;
  const auto bcast = run_broadcast(s.topo, s.arrivals, bcfg);
  const auto rtds = run_rtds(s);
  EXPECT_GT(rtds.guarantee_ratio(), bcast.guarantee_ratio() + 0.1);
  EXPECT_EQ(bcast.deadline_misses, 0u);
}

}  // namespace
}  // namespace rtds
