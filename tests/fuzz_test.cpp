// Fuzzer subsystem regression (DESIGN.md §15).
//
// Five contracts are pinned here:
//  (a) the three PR-10 invariants (seq-monotone, repair-consistency,
//      shed-conservation) each fire on a hand-built violation and stay
//      silent on the legal counterpart;
//  (b) the .repro text format round-trips bit-for-bit for generated
//      scenarios, and generation is a pure function of (seed, index);
//  (c) a --runs-bounded campaign reports identical findings whatever the
//      worker count (the satellite-6 determinism contract);
//  (d) mutation harness: each deliberately injected bug (src/fault/bugs.hpp)
//      is found within a pinned seed budget and shrunk to at most a pinned
//      repro size, and the shrunk repro replays its pinned tag;
//  (e) a clean-HEAD soak finds nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "fault/bugs.hpp"
#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "fuzz/checks.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "net/topology.hpp"
#include "routing/apsp.hpp"
#include "routing/routing_table.hpp"
#include "util/error.hpp"

namespace rtds {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultState;
using fault::InjectedBug;
using fault::InjectedBugScope;
using fault::InvariantChecker;

Topology line3() {
  Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_site();
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 1.0);
  return topo;
}

// ---------------------------------------------------------------- (a) new
// invariants: forcing tests drive each hook directly into a violation.

TEST(FuzzInvariants, SeqMonotoneRejectsRepeatedSequence) {
  const fuzz::FatalScope fatal;
  InvariantChecker chk;
  chk.on_send_seq(1, 2, 5, 0.0);
  chk.on_send_seq(1, 2, 6, 1.0);      // strictly increasing: fine
  chk.on_send_seq(2, 1, 5, 1.0);      // independent (from,to) stream: fine
  EXPECT_THROW(chk.on_send_seq(1, 2, 6, 2.0), ContractViolation);  // repeat
  InvariantChecker fresh;
  fresh.on_send_seq(1, 2, 5, 0.0);
  EXPECT_THROW(fresh.on_send_seq(1, 2, 4, 1.0), ContractViolation);  // drop
}

TEST(FuzzInvariants, RepairConsistencyRejectsCorruptedTable) {
  const fuzz::FatalScope fatal;
  const Topology topo = line3();
  const FaultPlan empty;
  const FaultState faults(topo, empty);
  auto tables = phased_apsp(topo, 4);
  {
    InvariantChecker chk;
    chk.on_repair(tables, topo, faults, 1.0);  // the real tables are clean
  }
  // Corrupt 0 -> 2: claim a distance below the next hop's lower bound
  // (link 0-1 delay 1.0 + site 1's own distance 1.0 = 2.0).
  tables[0].set_line(2, RouteLine{0.5, 1, 2});
  InvariantChecker chk;
  EXPECT_THROW(chk.on_repair(tables, topo, faults, 1.0), ContractViolation);
}

TEST(FuzzInvariants, RepairConsistencyRejectsRouteOverDeadLink) {
  const fuzz::FatalScope fatal;
  const Topology topo = line3();
  const FaultPlan empty;
  FaultState faults(topo, empty);
  const auto tables = phased_apsp(topo, 4);  // faultless routes use 0-1
  faults.apply(FaultEvent{0.0, FaultKind::kLinkDown, 0, 1});
  InvariantChecker chk;
  EXPECT_THROW(chk.on_repair(tables, topo, faults, 1.0), ContractViolation);
}

TEST(FuzzInvariants, ShedConservationRejectsQueueAccountingDrift) {
  const fuzz::FatalScope fatal;
  const RunMetrics zero;
  {
    InvariantChecker chk;  // a push with no matching remove
    chk.on_queue_push(0, 0.0);
    chk.on_queue_push(0, 1.0);
    chk.on_queue_remove(0, 2.0);
    EXPECT_THROW(chk.finish(zero, 0, 3.0), ContractViolation);
  }
  {
    InvariantChecker chk;  // a node-level shed event metrics never recorded
    chk.on_shed(0, 0.0);
    EXPECT_THROW(chk.finish(zero, 0, 1.0), ContractViolation);
  }
  {
    InvariantChecker chk;  // a remove that was never pushed
    EXPECT_THROW(chk.on_queue_remove(0, 0.0), ContractViolation);
  }
  InvariantChecker chk;  // balanced books finish clean
  chk.on_queue_push(0, 0.0);
  chk.on_queue_remove(0, 1.0);
  chk.finish(zero, 0, 2.0);
  EXPECT_EQ(chk.violations(), 0u);
}

// ------------------------------------------------------- (b) repro format

TEST(FuzzRepro, RoundTripsGeneratedScenariosBitForBit) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const fuzz::FuzzScenario s = fuzz::generate_scenario(123, i);
    const std::string text = fuzz::to_repro(s);
    const fuzz::FuzzScenario back = fuzz::from_repro(text);
    EXPECT_EQ(fuzz::to_repro(back), text) << "scenario " << i;
  }
}

TEST(FuzzRepro, ParserRejectsMalformedInput) {
  EXPECT_THROW(fuzz::from_repro(""), ContractViolation);
  EXPECT_THROW(fuzz::from_repro("RTDSREPRO 999\nend\n"), ContractViolation);
  const std::string good = fuzz::to_repro(fuzz::generate_scenario(1, 0));
  EXPECT_THROW(fuzz::from_repro(good + "trailing junk\n"), ContractViolation);
}

TEST(FuzzRepro, GenerationIsAPureFunctionOfSeedAndIndex) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(fuzz::to_repro(fuzz::generate_scenario(7, i)),
              fuzz::to_repro(fuzz::generate_scenario(7, i)));
  }
  EXPECT_NE(fuzz::to_repro(fuzz::generate_scenario(7, 0)),
            fuzz::to_repro(fuzz::generate_scenario(7, 1)));
  EXPECT_NE(fuzz::to_repro(fuzz::generate_scenario(7, 0)),
            fuzz::to_repro(fuzz::generate_scenario(8, 0)));
}

// ------------------------------------- (c) worker-count-invariant campaign

TEST(FuzzCampaign, FindingsAreIdenticalAcrossWorkerCounts) {
  // An injected bug guarantees findings to compare; minimize=false keeps
  // the repros raw so the comparison covers the full scenario bytes.
  const InjectedBugScope bug(InjectedBug::kDedupFalsePositive);
  fuzz::FuzzOptions opts;
  opts.seed = 2024;
  opts.runs = 120;
  opts.minimize = false;
  opts.progress_every = 0;
  std::ostringstream sink;
  opts.jobs = 1;
  const fuzz::FuzzReport serial = fuzz::run_fuzz(opts, sink);
  opts.jobs = 4;
  const fuzz::FuzzReport parallel = fuzz::run_fuzz(opts, sink);
  ASSERT_FALSE(serial.findings.empty())
      << "seed budget too small to exercise the comparison";
  EXPECT_EQ(serial.runs_done, parallel.runs_done);
  ASSERT_EQ(serial.findings.size(), parallel.findings.size());
  for (std::size_t i = 0; i < serial.findings.size(); ++i) {
    EXPECT_EQ(serial.findings[i].index, parallel.findings[i].index);
    EXPECT_EQ(serial.findings[i].tag, parallel.findings[i].tag);
    EXPECT_EQ(fuzz::to_repro(serial.findings[i].repro),
              fuzz::to_repro(parallel.findings[i].repro));
  }
}

// --------------------------------------------- (d) the mutation harness

struct SeededBugCase {
  InjectedBug bug;
  const char* name;
  std::uint64_t seed;        ///< campaign key the budget is pinned under
  std::uint64_t runs;        ///< pinned seed budget: must find within this
  std::size_t max_repro_size;  ///< pinned ceiling for the shrunk repro
};

TEST(FuzzMutation, FindsAndShrinksEverySeededBug) {
  const SeededBugCase cases[] = {
      {InjectedBug::kDedupFalsePositive, "dedup-false-positive", 2024, 120, 120},
      {InjectedBug::kRepairRadiusOffByOne, "repair-radius", 2024, 120, 120},
      {InjectedBug::kCrashKeepsLock, "crash-keeps-lock", 2024, 120, 120},
  };
  for (const auto& c : cases) {
    const InjectedBugScope bug(c.bug);
    fuzz::FuzzOptions opts;
    opts.seed = c.seed;
    opts.runs = c.runs;
    opts.jobs = 4;
    opts.minimize = true;
    opts.progress_every = 0;
    std::ostringstream sink;
    const fuzz::FuzzReport report = fuzz::run_fuzz(opts, sink);
    ASSERT_FALSE(report.findings.empty())
        << c.name << " not found within " << c.runs << " scenarios";
    const fuzz::Finding& f = report.findings.front();
    std::cerr << "mutation " << c.name << ": scenario " << f.index << " ["
              << f.tag << "] shrunk to size " << f.repro.size() << " ("
              << f.shrink.attempts << " attempts, " << f.shrink.improvements
              << " improvements)\n";
    EXPECT_LE(f.repro.size(), c.max_repro_size)
        << c.name << " repro did not shrink enough";
    // The shrunk repro must replay its pinned tag (failed=false means the
    // expected failure reproduced — the rtds_cli --repro contract).
    const fuzz::FatalScope fatal;
    const fuzz::CheckResult replay = fuzz::run_scenario_checks(f.repro);
    EXPECT_FALSE(replay.failed)
        << c.name << " shrunk repro did not replay: " << replay.message;
  }
}

// ----------------------------------------------------- (e) clean-HEAD soak

TEST(FuzzSoak, CleanHeadFindsNothing) {
  fuzz::FuzzOptions opts;
  opts.seed = 2026;
  opts.runs = 60;
  opts.jobs = 4;
  opts.progress_every = 0;
  std::ostringstream sink;
  const fuzz::FuzzReport report = fuzz::run_fuzz(opts, sink);
  EXPECT_EQ(report.runs_done, 60u);
  EXPECT_TRUE(report.findings.empty()) << sink.str();
}

}  // namespace
}  // namespace rtds
