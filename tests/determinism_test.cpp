// Golden-hash determinism regression for the zero-allocation event and
// message core. The digests below were recorded by running this exact test
// against the pre-rewrite core (std::function events on a binary
// std::priority_queue, std::any payloads): a reduced E1 sweep rendered in
// the bit-exact CSV long form, and the fig2_table1 worked-example report.
// The rewritten core must reproduce every byte — serially and with 8
// workers — or the (time, seq) determinism contract has been broken.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"

namespace rtds::exp {
namespace {

// Digests recorded on the pre-rewrite event/message core (see header).
constexpr std::uint64_t kE1CsvDigest = 5809446339941925635ull;
constexpr std::uint64_t kFig2ReportDigest = 11203551605208720222ull;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// E1 restricted to its three smallest networks (16/36/64 sites) so the
/// regression runs in seconds; grid indices and derived seeds match the
/// full sweep's first three rows.
ScenarioSpec reduced_e1() {
  register_builtin_scenarios();
  const ScenarioSpec* base = Registry::instance().find("e1_message_bound");
  EXPECT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.axes.at(0).values.resize(3);
  return spec;
}

std::uint64_t e1_digest(std::size_t jobs) {
  const ScenarioSpec spec = reduced_e1();
  RunOptions opts;
  opts.jobs = jobs;
  const auto rows = run_scenario(spec, opts);
  std::ostringstream os;
  CsvSink{}.write(spec, rows, os);
  return fnv1a(os.str());
}

TEST(GoldenDigest, E1SerialReproducesPreRewriteCore) {
  EXPECT_EQ(e1_digest(1), kE1CsvDigest);
}

TEST(GoldenDigest, E1EightWorkersReproducesPreRewriteCore) {
  EXPECT_EQ(e1_digest(8), kE1CsvDigest);
}

TEST(GoldenDigest, Fig2Table1ReproducesPreRewriteCore) {
  register_builtin_scenarios();
  std::ostringstream os;
  run_report("fig2_table1", os);
  EXPECT_EQ(fnv1a(os.str()), kFig2ReportDigest);
}

}  // namespace
}  // namespace rtds::exp
