// Open-system traffic engine tests (src/load/): arrival-source
// determinism, lazy-vs-eager bit-equality, trace-replay validation,
// quantile-sketch merge invariance, warm-up trimming, shed-policy job
// conservation under the §12 invariant checker, and a pinned reduced
// e9_steady_state CSV digest at 1/3/8 workers.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/trace_io.hpp"
#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"
#include "fault/invariants.hpp"
#include "load/engine.hpp"
#include "load/source.hpp"
#include "load/window.hpp"
#include "net/generators.hpp"
#include "policy/policy.hpp"
#include "util/error.hpp"

namespace rtds::load {
namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ArrivalSpec small_spec(ArrivalKind kind, std::uint64_t seed) {
  ArrivalSpec spec;
  spec.kind = kind;
  spec.site_count = 8;
  spec.workload.arrival_rate_per_site = 0.05;
  spec.workload.seed = seed;
  return spec;
}

std::string stream_bytes(ArrivalSource& source, Time duration) {
  return trace_to_string(drain(source, duration));
}

// ---------------------------------------------------------------- sources

TEST(ArrivalSource, SameSeedSameStream) {
  for (const auto kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    const auto a = make_arrival_source(small_spec(kind, 7));
    const auto b = make_arrival_source(small_spec(kind, 7));
    EXPECT_EQ(stream_bytes(*a, 400.0), stream_bytes(*b, 400.0))
        << to_string(kind);
  }
}

TEST(ArrivalSource, DifferentSeedDifferentStream) {
  const auto a = make_arrival_source(small_spec(ArrivalKind::kPoisson, 7));
  const auto b = make_arrival_source(small_spec(ArrivalKind::kPoisson, 8));
  EXPECT_NE(stream_bytes(*a, 400.0), stream_bytes(*b, 400.0));
}

// The lazy heap-merged stream and the eager sort-everything reference are
// genuinely different merge paths; bit-equal serialization pins the
// (release, site) order and the dense-id contract between them.
TEST(ArrivalSource, LazyMatchesEagerGeneration) {
  for (const auto kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    const ArrivalSpec spec = small_spec(kind, 21);
    const auto lazy = make_arrival_source(spec);
    const auto eager = generate_open_workload(spec, 500.0);
    EXPECT_GT(eager.size(), 10u) << to_string(kind);
    EXPECT_EQ(stream_bytes(*lazy, 500.0), trace_to_string(eager))
        << to_string(kind);
  }
}

TEST(ArrivalSource, IdsDenseFromOne) {
  const auto source = make_arrival_source(small_spec(ArrivalKind::kPoisson, 3));
  const auto arrivals = drain(*source, 300.0);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    EXPECT_EQ(arrivals[i].job->id, JobId(i + 1));
}

TEST(ArrivalSource, TraceReplayRoundTrips) {
  const ArrivalSpec gen = small_spec(ArrivalKind::kPoisson, 11);
  const auto original = generate_open_workload(gen, 300.0);
  ArrivalSpec replay;
  replay.kind = ArrivalKind::kTrace;
  replay.site_count = gen.site_count;
  replay.trace = trace_from_string(trace_to_string(original), gen.site_count);
  const auto source = make_arrival_source(replay);
  EXPECT_EQ(stream_bytes(*source, 1e18), trace_to_string(original));
}

// ------------------------------------------------- trace-input validation

/// A small valid trace plus a field-level tamper hook: rewrites the i-th
/// "job <id> <site> <release> <deadline>" header line.
std::string tampered_trace(std::size_t job_index,
                           const std::function<std::string(
                               JobId, std::size_t, Time, Time)>& rewrite) {
  const auto arrivals =
      generate_open_workload(small_spec(ArrivalKind::kPoisson, 5), 200.0);
  EXPECT_GT(arrivals.size(), job_index);
  std::istringstream in(trace_to_string(arrivals));
  std::ostringstream out;
  std::string line;
  std::size_t seen = 0;
  while (std::getline(in, line)) {
    if (line.rfind("job ", 0) == 0 && seen++ == job_index) {
      std::istringstream fields(line);
      std::string word;
      JobId id;
      std::size_t site;
      Time release, deadline;
      fields >> word >> id >> site >> release >> deadline;
      out << rewrite(id, site, release, deadline) << "\n";
    } else {
      out << line << "\n";
    }
  }
  return out.str();
}

std::string violation_message(const std::string& text, std::size_t sites) {
  try {
    trace_from_string(text, sites);
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return "";  // no throw: the caller's EXPECT on "line" fails
}

TEST(TraceValidation, RejectsOutOfRangeSite) {
  const auto text = tampered_trace(1, [](JobId id, std::size_t, Time r,
                                         Time d) {
    std::ostringstream os;
    os << "job " << id << " 99 " << r << ' ' << d;
    return os.str();
  });
  const std::string msg = violation_message(text, 8);
  EXPECT_NE(msg.find("line"), std::string::npos) << msg;
  EXPECT_NE(msg.find("outside"), std::string::npos) << msg;
  // Without a site count the range check is off and the trace is fine.
  EXPECT_NO_THROW(trace_from_string(text));
}

TEST(TraceValidation, RejectsNaNTimes) {
  const auto text =
      tampered_trace(0, [](JobId id, std::size_t site, Time, Time d) {
        std::ostringstream os;
        os << "job " << id << ' ' << site << " nan " << d;
        return os.str();
      });
  const std::string msg = violation_message(text, 8);
  EXPECT_NE(msg.find("line"), std::string::npos) << msg;
  // libstdc++ operator>> refuses the token "nan" outright (failbit), so the
  // rejection may surface as a format error; either way the line is named.
  EXPECT_TRUE(msg.find("non-finite") != std::string::npos ||
              msg.find("expected 'job") != std::string::npos)
      << msg;
}

TEST(TraceValidation, RejectsNegativeTimes) {
  const auto text =
      tampered_trace(0, [](JobId id, std::size_t site, Time, Time d) {
        std::ostringstream os;
        os << "job " << id << ' ' << site << " -1.5 " << d;
        return os.str();
      });
  const std::string msg = violation_message(text, 8);
  EXPECT_NE(msg.find("line"), std::string::npos) << msg;
  EXPECT_NE(msg.find("negative"), std::string::npos) << msg;
}

TEST(TraceValidation, RejectsEmptyWindow) {
  const auto text =
      tampered_trace(0, [](JobId id, std::size_t site, Time r, Time) {
        std::ostringstream os;
        os << "job " << id << ' ' << site << ' ' << r << ' ' << r;
        return os.str();
      });
  const std::string msg = violation_message(text, 8);
  EXPECT_NE(msg.find("line"), std::string::npos) << msg;
  EXPECT_NE(msg.find("empty window"), std::string::npos) << msg;
}

TEST(TraceValidation, RejectsNonMonotoneOrder) {
  // Push job 0's release past job 1's: breaks the arrival-order contract.
  const auto text =
      tampered_trace(0, [](JobId id, std::size_t site, Time, Time) {
        std::ostringstream os;
        os << "job " << id << ' ' << site << " 1e8 2e8";
        return os.str();
      });
  const std::string msg = violation_message(text, 8);
  EXPECT_NE(msg.find("line"), std::string::npos) << msg;
  EXPECT_NE(msg.find("arrival order"), std::string::npos) << msg;
}

TEST(TraceValidation, RejectsDuplicateJobIds) {
  const auto text =
      tampered_trace(1, [](JobId, std::size_t site, Time r, Time d) {
        std::ostringstream os;
        os << "job 1 " << site << ' ' << r << ' ' << d;
        return os.str();
      });
  const std::string msg = violation_message(text, 8);
  EXPECT_NE(msg.find("duplicate"), std::string::npos) << msg;
}

// ------------------------------------------------------- windows / sketch

TEST(QuantileSketch, MergeOrderInvariant) {
  QuantileSketch a, b, c;
  for (int i = 1; i <= 100; ++i) a.add(0.13 * i);
  for (int i = 1; i <= 50; ++i) b.add(7.0 + 0.4 * i);
  for (int i = 1; i <= 25; ++i) c.add(0.001 * i);

  QuantileSketch abc, cab;
  abc.merge(a), abc.merge(b), abc.merge(c);
  cab.merge(c), cab.merge(a), cab.merge(b);
  EXPECT_EQ(abc.count(), cab.count());
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99})
    EXPECT_EQ(abc.quantile(q), cab.quantile(q)) << q;  // bit-equal, not near
}

TEST(QuantileSketch, BoundedRelativeError) {
  QuantileSketch s(0.01);
  for (int i = 1; i <= 10000; ++i) s.add(double(i));
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = q * 10000.0;
    EXPECT_NEAR(s.quantile(q), exact, 0.025 * exact) << q;
  }
}

TEST(SteadyWindows, WarmupTrimAndWindowIndexing) {
  SteadyStateCollector col(WindowConfig{100.0, 50.0, 0.01});
  col.on_completion(10.0, 60.0);    // completion inside warm-up: trimmed
  col.on_completion(90.0, 99.999);  // still inside (exact compare)
  EXPECT_TRUE(col.windows().empty());

  col.on_completion(90.0, 100.0);  // boundary: first window
  col.on_completion(120.0, 180.0);  // window 1
  JobDecision d;
  d.outcome = JobOutcome::kRejected;
  d.reject_reason = RejectReason::kShed;
  d.decision_time = 160.0;  // window 1
  col.on_decision(d);
  d.decision_time = 50.0;  // warm-up: trimmed
  col.on_decision(d);

  ASSERT_EQ(col.windows().size(), 2u);
  EXPECT_EQ(col.windows()[0].completed, 1u);
  EXPECT_EQ(col.windows()[1].completed, 1u);
  EXPECT_EQ(col.windows()[1].shed, 1u);
  EXPECT_EQ(col.windows()[1].rejected, 1u);
  EXPECT_EQ(col.windows()[0].arrived, 0u);

  const SteadySummary s = col.summary();
  EXPECT_EQ(s.completed, 2u);
  EXPECT_DOUBLE_EQ(s.sojourn_mean, (10.0 + 60.0) / 2.0);
}

// The pinned ascending merge must equal feeding every sample into one
// sketch directly — the property that makes the run summary independent
// of how trials interleave across workers.
TEST(SteadyWindows, SummaryEqualsDirectAccumulation) {
  SteadyStateCollector col(WindowConfig{0.0, 25.0, 0.01});
  QuantileSketch direct;
  for (int i = 0; i < 400; ++i) {
    const Time arrival = 0.7 * i;
    const Time completion = arrival + 1.0 + (i % 37) * 0.9;
    col.on_completion(arrival, completion);
    direct.add(completion - arrival);
  }
  const SteadySummary s = col.summary();
  EXPECT_EQ(s.completed, direct.count());
  EXPECT_EQ(s.p50, direct.p50());
  EXPECT_EQ(s.p95, direct.p95());
  EXPECT_EQ(s.p99, direct.p99());
}

// ------------------------------------------------------------- open runs

policy::ParamMap shed_params(const policy::Policy& pol, const char* cap,
                             const char* shed) {
  return policy::ParamMap::parse_pairs(
      {{"h", "2"}, {"shed.cap", cap}, {"shed.policy", shed}},
      pol.describe_params());
}

/// Overloaded open run per shed policy under the fatal §12 checker: jobs
/// must be conserved (decided == submitted — sheds are decisions too) and
/// the pressure must actually shed.
TEST(OpenRun, ShedPoliciesConserveJobsUnderFatalInvariants) {
  const bool was_checking = fault::check_invariants_enabled();
  const bool was_fatal = fault::invariants_fatal();
  fault::set_check_invariants(true);
  fault::set_invariants_fatal(true);

  Rng rng(42);
  const Topology topo =
      make_net(NetShape::kGrid, 16, DelayRange{0.5, 2.0}, rng);
  policy::register_builtin_policies();  // idempotent
  const auto pol = policy::PolicyRegistry::instance().create("rtds");
  for (const char* shed :
       {"drop_newest", "drop_lowest_laxity", "reject_enroll"}) {
    ArrivalSpec spec = small_spec(ArrivalKind::kPoisson, 42);
    spec.site_count = 16;
    spec.workload.arrival_rate_per_site = 0.2;
    const auto source = make_arrival_source(spec);
    OpenConfig cfg;
    cfg.duration = 150.0;
    const OpenRunResult r =
        run_open_rtds(topo, *source, cfg, shed_params(*pol, "1", shed));
    const RunMetrics& m = r.metrics;
    EXPECT_EQ(m.invariant_violations, 0u) << shed;
    EXPECT_EQ(m.arrived, m.accepted_local + m.accepted_remote + m.rejected)
        << shed;
    const auto it =
        m.reject_by_reason.find(static_cast<int>(RejectReason::kShed));
    ASSERT_NE(it, m.reject_by_reason.end()) << shed;
    EXPECT_GT(it->second, 0u) << shed;
    EXPECT_EQ(m.deadline_misses, 0u) << shed;
  }

  fault::set_check_invariants(was_checking);
  fault::set_invariants_fatal(was_fatal);
}

/// shed.cap=0 (the default) must leave closed-batch runs byte-identical:
/// the shed/workload keys at their defaults are a no-op.
TEST(OpenRun, DefaultShedKeysAreNoOpOnClosedRuns) {
  policy::register_builtin_policies();  // idempotent
  const auto pol = policy::PolicyRegistry::instance().create("rtds");
  exp::ConditionSpec cs;
  cs.sites = 16;
  cs.horizon = 300.0;
  const exp::Condition c = exp::make_condition(cs);

  const RunMetrics base = pol->run(c.topo, c.arrivals, pol->parse_params({}));
  const RunMetrics keyed = pol->run(
      c.topo, c.arrivals,
      pol->parse_params({"shed.cap=0", "shed.policy=drop_newest",
                         "workload.process=poisson",
                         "workload.deadline=critical_path"}));
  std::ostringstream a, b;
  base.to_jsonl(a);
  keyed.to_jsonl(b);
  EXPECT_EQ(a.str(), b.str());
}

// --------------------------------------------------------- golden digest

/// e9 reduced to poisson/bursty × rate 0.08 × all three shed policies at
/// duration 120 — small enough for CI, big enough that shedding fires.
exp::ScenarioSpec reduced_e9() {
  exp::register_builtin_scenarios();
  const exp::ScenarioSpec* base =
      exp::Registry::instance().find("e9_steady_state");
  EXPECT_NE(base, nullptr);
  exp::ScenarioSpec spec = *base;
  spec.axes.at(0).values.resize(2);  // poisson, bursty
  spec.axes.at(1) = exp::GridAxis::numeric("rate/site", "rate", {0.08}, 3);
  return spec;
}

std::uint64_t e9_digest(std::size_t jobs) {
  set_scenario_duration(120.0);
  const exp::ScenarioSpec spec = reduced_e9();
  exp::RunOptions opts;
  opts.jobs = jobs;
  const auto rows = exp::run_scenario(spec, opts);
  set_scenario_duration(0.0);
  std::ostringstream os;
  exp::CsvSink{}.write(spec, rows, os);
  return fnv1a(os.str());
}

// Recorded from this implementation; any byte drift in the open-system
// engine, the windowed sketch, or the shed policies breaks these.
constexpr std::uint64_t kE9CsvDigest = 9922621151605313232ull;

TEST(GoldenDigest, E9ReducedCsvSerial) {
  EXPECT_EQ(e9_digest(1), kE9CsvDigest);
}

TEST(GoldenDigest, E9ReducedCsvWorkerInvariant) {
  EXPECT_EQ(e9_digest(3), kE9CsvDigest);
  EXPECT_EQ(e9_digest(8), kE9CsvDigest);
}

}  // namespace
}  // namespace rtds::load
