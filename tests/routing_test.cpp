// Routing-layer tests: the §7 interrupted APSP must agree with the
// hop-bounded reference, the distributed (message-passing) run must agree
// with the in-memory phase loop, and PCS structures must be symmetric and
// correctly bounded.
#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "routing/apsp.hpp"
#include "routing/pcs.hpp"

namespace rtds {
namespace {

// ------------------------------------------------------- routing table ----

TEST(RoutingTable, InitFromNeighbors) {
  Rng rng(1);
  const Topology topo = make_star(4, DelayRange{1.0, 3.0}, rng);
  RoutingTable hub(0);
  hub.init_from_neighbors(topo);
  EXPECT_EQ(hub.size(), 5u);  // self + 4 leaves
  EXPECT_DOUBLE_EQ(hub.route(0).dist, 0.0);
  EXPECT_EQ(hub.route(0).hops, 0u);
  for (SiteId leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_EQ(hub.route(leaf).next_hop, leaf);
    EXPECT_EQ(hub.route(leaf).hops, 1u);
  }
  EXPECT_THROW(RoutingTable(1).route(0), ContractViolation);
}

TEST(RoutingTable, MergePrefersShorterDelay) {
  Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_site();
  topo.add_link(0, 1, 5.0);
  topo.add_link(0, 2, 1.0);
  topo.add_link(2, 1, 1.0);
  RoutingTable t0(0), t2(2);
  t0.init_from_neighbors(topo);
  t2.init_from_neighbors(topo);
  // Merging site 2's table over the 0--2 link reveals 0->2->1 (dist 2).
  EXPECT_TRUE(t0.merge_from(2, 1.0, t2));
  EXPECT_DOUBLE_EQ(t0.route(1).dist, 2.0);
  EXPECT_EQ(t0.route(1).next_hop, 2u);
  EXPECT_EQ(t0.route(1).hops, 2u);
  // Re-merging the same table changes nothing.
  EXPECT_FALSE(t0.merge_from(2, 1.0, t2));
}

// ---------------------------------------------------------------- apsp ----

TEST(PhasedApsp, PhaseHSemantics) {
  // Tables start with 1-hop knowledge (§7.1 start condition), and every
  // phase extends accuracy one hop further (§7.2): after p phases the
  // distances equal the (p+1)-hop-bounded shortest paths. (The paper states
  // the conservative "after h phases, accurate up to h hops".)
  Rng rng(2);
  const Topology topo = make_erdos_renyi(18, 0.15, DelayRange{0.5, 4.0}, rng);
  for (std::size_t h : {1u, 2u, 3u, 5u}) {
    const auto tables = phased_apsp(topo, h);
    for (SiteId s = 0; s < topo.site_count(); ++s) {
      const auto ref = hop_bounded_distances(topo, s, h + 1);
      for (SiteId t = 0; t < topo.site_count(); ++t) {
        if (ref[t] == kInfiniteTime) {
          EXPECT_FALSE(tables[s].has_route(t) &&
                       tables[s].route(t).dist != kInfiniteTime)
              << "phantom route " << s << "->" << t << " at h=" << h;
        } else {
          ASSERT_TRUE(tables[s].has_route(t));
          EXPECT_NEAR(tables[s].route(t).dist, ref[t], 1e-9)
              << s << "->" << t << " at h=" << h;
        }
      }
    }
  }
}

TEST(PhasedApsp, ConvergesToDijkstra) {
  Rng rng(3);
  const Topology topo = make_grid(4, 4, DelayRange{1.0, 3.0}, rng);
  const auto tables = phased_apsp(topo, topo.site_count());
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    const auto ref = dijkstra(topo, s);
    for (SiteId t = 0; t < topo.site_count(); ++t)
      EXPECT_NEAR(tables[s].route(t).dist, ref.dist[t], 1e-9);
  }
}

TEST(PhasedApsp, RecordedHopsMatchRecordedPath) {
  // next_hop chains must terminate at the destination within `hops` steps
  // and sum to `dist`.
  Rng rng(4);
  const Topology topo = make_small_world(16, 2, 0.2, DelayRange{1.0, 2.0}, rng);
  const auto tables = phased_apsp(topo, 2 * 3);
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    for (SiteId dest = 0; dest < tables[s].site_count(); ++dest) {
      if (!tables[s].has_route(dest)) continue;
      const auto& line = tables[s].route(dest);
      if (dest == s) continue;
      SiteId cur = s;
      Time total = 0.0;
      std::size_t steps = 0;
      while (cur != dest && steps <= line.hops) {
        const SiteId nxt = tables[cur].route(dest).next_hop;
        total += topo.link_delay(cur, nxt);
        cur = nxt;
        ++steps;
      }
      EXPECT_EQ(cur, dest);
      EXPECT_EQ(steps, line.hops);
      EXPECT_NEAR(total, line.dist, 1e-9);
    }
  }
}

class DistributedApspMatches
    : public ::testing::TestWithParam<std::pair<NetShape, std::size_t>> {};

TEST_P(DistributedApspMatches, AgreesWithInMemoryPhases) {
  Rng rng(5);
  const auto [shape, phases] = GetParam();
  const Topology topo = make_net(shape, 12, DelayRange{1.0, 3.0}, rng);
  const auto mem = phased_apsp(topo, phases);

  Simulator sim;
  SimNetwork net(sim, topo);
  const auto dist = distributed_apsp(sim, net, phases);
  ASSERT_EQ(dist.tables.size(), mem.size());
  EXPECT_GT(dist.messages, 0u);
  EXPECT_GT(dist.route_lines, 0u);
  EXPECT_GT(dist.completion_time, 0.0);
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    ASSERT_EQ(dist.tables[s].size(), mem[s].size()) << "site " << s;
    for (SiteId destination = 0; destination < mem[s].site_count();
         ++destination) {
      if (!mem[s].has_route(destination)) continue;
      const auto& line = mem[s].route(destination);
      ASSERT_TRUE(dist.tables[s].has_route(destination));
      const auto& dline = dist.tables[s].route(destination);
      EXPECT_NEAR(dline.dist, line.dist, 1e-9);
      EXPECT_EQ(dline.hops, line.hops);
      EXPECT_EQ(dline.next_hop, line.next_hop);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DistributedApspMatches,
    ::testing::Values(std::pair{NetShape::kLine, std::size_t{4}},
                      std::pair{NetShape::kRing, std::size_t{4}},
                      std::pair{NetShape::kGrid, std::size_t{4}},
                      std::pair{NetShape::kTree, std::size_t{6}},
                      std::pair{NetShape::kErdosRenyi, std::size_t{4}},
                      std::pair{NetShape::kScaleFree, std::size_t{4}}));

TEST(DistributedApsp, MessageCountIsPhasesTimesDirectedLinks) {
  Rng rng(6);
  const Topology topo = make_ring(8, DelayRange{1.0, 1.0}, rng);
  Simulator sim;
  SimNetwork net(sim, topo);
  const std::size_t phases = 4;
  const auto res = distributed_apsp(sim, net, phases);
  // Every site sends its table to every neighbour once per phase.
  EXPECT_EQ(res.messages, phases * 2 * topo.link_count());
}

// ----------------------------------------------------------------- pcs ----

TEST(Pcs, MembershipIsHopRadius) {
  Rng rng(7);
  const Topology topo = make_grid(5, 5, DelayRange{1.0, 2.0}, rng);
  const std::size_t h = 2;
  const auto tables = phased_apsp(topo, 2 * h);
  const SiteId center = 12;  // middle of the 5x5 grid
  const Pcs pcs = Pcs::build(tables, center, h);
  const auto hops = hop_distances(topo, center);
  // On a grid min-delay paths may take more hops than the BFS distance, so
  // PCS ⊆ BFS-ball always, and the 1-ball is certainly included.
  EXPECT_TRUE(pcs.contains(center));
  for (const auto& m : pcs.members()) {
    EXPECT_LE(m.hops, h);
    EXPECT_GE(m.hops, hops[m.site]);
  }
  for (SiteId s = 0; s < topo.site_count(); ++s)
    if (hops[s] == 1) EXPECT_TRUE(pcs.contains(s));
}

TEST(Pcs, RootDistancesMatchHopBoundedReference) {
  Rng rng(8);
  const Topology topo = make_erdos_renyi(20, 0.12, DelayRange{0.5, 5.0}, rng);
  const std::size_t h = 2;
  const auto tables = phased_apsp(topo, 2 * h);
  for (SiteId root = 0; root < topo.site_count(); ++root) {
    const Pcs pcs = Pcs::build(tables, root, h);
    const auto ref = hop_bounded_distances(topo, root, h);
    for (const auto& m : pcs.members())
      EXPECT_NEAR(m.delay, ref[m.site], 1e-9)
          << "root " << root << " member " << m.site;
  }
}

TEST(Pcs, MembershipIsSymmetric) {
  // j in PCS(k) iff k in PCS(j): both need an <=h-hop min-delay path, and
  // the metric is symmetric on an undirected graph.
  Rng rng(9);
  const Topology topo = make_small_world(20, 2, 0.15, DelayRange{1.0, 4.0}, rng);
  const std::size_t h = 2;
  const auto tables = phased_apsp(topo, 2 * h);
  std::vector<Pcs> spheres;
  for (SiteId s = 0; s < topo.site_count(); ++s)
    spheres.push_back(Pcs::build(tables, s, h));
  for (SiteId a = 0; a < topo.site_count(); ++a)
    for (SiteId b = 0; b < topo.site_count(); ++b)
      EXPECT_EQ(spheres[a].contains(b), spheres[b].contains(a))
          << a << " vs " << b;
}

TEST(Pcs, DiametersAndSubsets) {
  Rng rng(10);
  const Topology topo = make_grid(4, 4, DelayRange{1.0, 1.0}, rng);
  const std::size_t h = 2;
  const auto tables = phased_apsp(topo, 2 * h);
  const Pcs pcs = Pcs::build(tables, 5, h);
  EXPECT_GT(pcs.delay_diameter(), 0.0);
  EXPECT_GE(pcs.hop_diameter(), 1u);
  EXPECT_LE(pcs.hop_diameter(), 2 * h);
  // Subset diameter is monotone under inclusion.
  std::vector<SiteId> all;
  for (const auto& m : pcs.members()) all.push_back(m.site);
  const std::vector<SiteId> sub(all.begin(), all.begin() + 2);
  EXPECT_LE(pcs.delay_diameter_of(sub), pcs.delay_diameter() + 1e-12);
  // Singleton and pairwise basics.
  EXPECT_DOUBLE_EQ(pcs.delay_diameter_of({5}), 0.0);
  EXPECT_DOUBLE_EQ(pcs.delay(5, 5), 0.0);
  EXPECT_THROW(pcs.member(99), ContractViolation);
}

TEST(Pcs, RadiusZeroIsSelfOnly) {
  Rng rng(11);
  const Topology topo = make_ring(6, DelayRange{1.0, 1.0}, rng);
  const auto tables = phased_apsp(topo, 0);
  const Pcs pcs = Pcs::build(tables, 0, 0);
  EXPECT_EQ(pcs.size(), 1u);
  EXPECT_TRUE(pcs.contains(0));
  EXPECT_DOUBLE_EQ(pcs.delay_diameter(), 0.0);
}

TEST(Pcs, GrowsWithRadius) {
  Rng rng(12);
  const Topology topo = make_grid(5, 5, DelayRange{1.0, 1.0}, rng);
  std::size_t prev = 0;
  for (std::size_t h = 0; h <= 4; ++h) {
    const auto tables = phased_apsp(topo, 2 * h);
    const Pcs pcs = Pcs::build(tables, 12, h);
    EXPECT_GE(pcs.size(), prev);
    prev = pcs.size();
  }
  EXPECT_EQ(prev, 25u);  // radius 4 covers the whole 5x5 grid from center
}

}  // namespace
}  // namespace rtds
