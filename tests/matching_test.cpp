#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "matching/bipartite.hpp"
#include "util/rng.hpp"

namespace rtds {
namespace {

/// Brute-force maximum matching size by trying all left-vertex assignments
/// (test oracle; left side small).
std::size_t brute_force_size(const BipartiteGraph& g) {
  std::vector<std::size_t> lefts(g.left_count());
  std::iota(lefts.begin(), lefts.end(), 0);
  std::size_t best = 0;
  // Recursive exhaustive assignment.
  std::vector<bool> used(g.right_count(), false);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t i,
                                                          std::size_t matched) {
    best = std::max(best, matched);
    if (i == lefts.size()) return;
    rec(i + 1, matched);  // leave i unmatched
    for (std::size_t r : g.neighbors(lefts[i])) {
      if (!used[r]) {
        used[r] = true;
        rec(i + 1, matched + 1);
        used[r] = false;
      }
    }
  };
  rec(0, 0);
  return best;
}

bool matching_consistent(const BipartiteGraph& g, const MatchingResult& m) {
  std::vector<bool> right_used(g.right_count(), false);
  for (std::size_t l = 0; l < g.left_count(); ++l) {
    const auto r = m.match_of_left[l];
    if (r == kUnmatched) continue;
    // Edge must exist and right vertex be singly used.
    const auto& nbrs = g.neighbors(l);
    if (std::find(nbrs.begin(), nbrs.end(), r) == nbrs.end()) return false;
    if (right_used[r]) return false;
    right_used[r] = true;
    if (m.match_of_right[r] != l) return false;
  }
  return true;
}

TEST(Matching, EmptyGraph) {
  BipartiteGraph g(3, 3);
  const auto m = max_matching_hopcroft_karp(g);
  EXPECT_EQ(m.size, 0u);
  EXPECT_FALSE(m.perfect_on_left());
}

TEST(Matching, PerfectOnSquare) {
  BipartiteGraph g(3, 3);
  for (std::size_t l = 0; l < 3; ++l)
    for (std::size_t r = 0; r < 3; ++r) g.add_edge(l, r);
  const auto m = max_matching_hopcroft_karp(g);
  EXPECT_EQ(m.size, 3u);
  EXPECT_TRUE(m.perfect_on_left());
  EXPECT_TRUE(matching_consistent(g, m));
}

TEST(Matching, AugmentingPathRequired) {
  // l0-{r0}, l1-{r0, r1}: greedy that matches l1->r0 must augment.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  const auto m = max_matching_hopcroft_karp(g);
  EXPECT_EQ(m.size, 2u);
  EXPECT_EQ(m.match_of_left[0], 0u);
  EXPECT_EQ(m.match_of_left[1], 1u);
}

TEST(Matching, HallViolationDetected) {
  // Three lefts all only like r0: max matching 1.
  BipartiteGraph g(3, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  const auto m = max_matching_hopcroft_karp(g);
  EXPECT_EQ(m.size, 1u);
  EXPECT_FALSE(m.perfect_on_left());
}

TEST(Matching, MoreRightsThanLefts) {
  BipartiteGraph g(2, 5);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  const auto m = max_matching_hopcroft_karp(g);
  EXPECT_EQ(m.size, 2u);
  EXPECT_TRUE(m.perfect_on_left());
  EXPECT_TRUE(matching_consistent(g, m));
}

TEST(Matching, DuplicateEdgesIgnored) {
  BipartiteGraph g(1, 1);
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Matching, InvalidEdgeRejected) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 2), ContractViolation);
}

class RandomMatching : public ::testing::TestWithParam<int> {};

TEST_P(RandomMatching, HopcroftKarpEqualsKuhnEqualsBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 60; ++iter) {
    const auto nl = static_cast<std::size_t>(rng.uniform_int(1, 7));
    const auto nr = static_cast<std::size_t>(rng.uniform_int(1, 7));
    BipartiteGraph g(nl, nr);
    const double p = rng.uniform(0.1, 0.9);
    for (std::size_t l = 0; l < nl; ++l)
      for (std::size_t r = 0; r < nr; ++r)
        if (rng.bernoulli(p)) g.add_edge(l, r);
    const auto hk = max_matching_hopcroft_karp(g);
    const auto kuhn = max_matching_kuhn(g);
    const auto brute = brute_force_size(g);
    EXPECT_EQ(hk.size, brute);
    EXPECT_EQ(kuhn.size, brute);
    EXPECT_TRUE(matching_consistent(g, hk));
    EXPECT_TRUE(matching_consistent(g, kuhn));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatching, ::testing::Range(1, 6));

TEST(Matching, LargeBipartiteFast) {
  // Sanity at scale: a 200x200 graph with a known perfect matching.
  const std::size_t n = 200;
  BipartiteGraph g(n, n);
  Rng rng(9);
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  for (std::size_t l = 0; l < n; ++l) {
    g.add_edge(l, perm[l]);
    // noise edges
    for (int k = 0; k < 3; ++k)
      g.add_edge(l, static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  const auto m = max_matching_hopcroft_karp(g);
  EXPECT_EQ(m.size, n);
  EXPECT_TRUE(matching_consistent(g, m));
}

}  // namespace
}  // namespace rtds
