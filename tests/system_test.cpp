// End-to-end RtdsSystem tests: full protocol runs over simulated networks,
// invariant enforcement, both enrollment policies, queueing under locks.
#include <gtest/gtest.h>

#include "core/rtds_system.hpp"
#include "dag/generators.hpp"
#include "net/generators.hpp"

namespace rtds {
namespace {

Topology grid3x3(std::uint64_t seed = 1) {
  Rng rng(seed);
  return make_grid(3, 3, DelayRange{1.0, 2.0}, rng);
}

std::shared_ptr<Job> make_job(JobId id, Time release, double laxity,
                              std::uint64_t seed) {
  Rng rng(seed);
  auto job = std::make_shared<Job>();
  job->id = id;
  job->dag = make_fork_join(6, CostRange{2.0, 8.0}, rng);
  job->release = release;
  Time cp = 0.0;
  for (TaskId t = 0; t < job->dag.task_count(); ++t) cp += job->dag.cost(t);
  job->deadline = release + laxity * cp;
  return job;
}

SystemConfig default_config() {
  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;
  cfg.node.sched.observation_window = 200.0;
  return cfg;
}

TEST(RtdsSystem, SingleJobAcceptedLocally) {
  RtdsSystem system(grid3x3(), default_config());
  // Huge laxity: the local test trivially succeeds.
  std::vector<JobArrival> arrivals{{4, make_job(1, 0.0, 10.0, 1)}};
  system.run(arrivals);
  const auto& m = system.metrics();
  EXPECT_EQ(m.arrived, 1u);
  EXPECT_EQ(m.accepted_local, 1u);
  EXPECT_EQ(m.accepted_remote, 0u);
  EXPECT_EQ(m.deadline_misses, 0u);
  // A local acceptance uses zero protocol messages.
  EXPECT_EQ(m.transport.total_link_messages, 0u);
}

TEST(RtdsSystem, OverloadedSiteDistributes) {
  RtdsSystem system(grid3x3(), default_config());
  // Back-to-back jobs at the same site with tight-ish laxity: the first is
  // local; later ones cannot all fit locally and must distribute.
  std::vector<JobArrival> arrivals;
  for (JobId id = 1; id <= 6; ++id)
    arrivals.push_back({4, make_job(id, 0.1 * double(id), 1.6, id)});
  system.run(arrivals);
  const auto& m = system.metrics();
  EXPECT_EQ(m.arrived, 6u);
  EXPECT_GT(m.accepted_remote, 0u) << "expected at least one distribution";
  EXPECT_EQ(m.deadline_misses, 0u);
  EXPECT_GT(m.transport.total_link_messages, 0u);
}

TEST(RtdsSystem, ImpossibleDeadlineRejected) {
  RtdsSystem system(grid3x3(), default_config());
  auto job = make_job(1, 0.0, 10.0, 3);
  // Deadline below the critical path: nothing can schedule this.
  auto impossible = std::make_shared<Job>(*job);
  impossible->deadline = job->release + 0.01;
  std::vector<JobArrival> arrivals{{0, impossible}};
  system.run(arrivals);
  EXPECT_EQ(system.metrics().rejected, 1u);
}

TEST(RtdsSystem, IsolatedSiteRejectsWhenLocalFails) {
  // Single-site "network": PCS = {self}; distribution impossible.
  Topology topo;
  topo.add_site();
  SystemConfig cfg = default_config();
  RtdsSystem system(std::move(topo), cfg);
  auto a = make_job(1, 0.0, 10.0, 1);
  auto b = std::make_shared<Job>(*make_job(2, 0.0, 1.0, 2));
  // b's window roughly equals its critical path; after a is accepted the
  // single site cannot hold b as well.
  std::vector<JobArrival> arrivals{{0, a}, {0, b}};
  system.run(arrivals);
  const auto& m = system.metrics();
  EXPECT_EQ(m.arrived, 2u);
  EXPECT_EQ(m.accepted_local, 1u);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.reject_by_reason.at(static_cast<int>(RejectReason::kNoCandidates)),
            1u);
}

TEST(RtdsSystem, WorkloadRunNackPolicy) {
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.01;
  wl.horizon = 800.0;
  wl.seed = 99;
  const auto arrivals = generate_workload(9, wl);
  ASSERT_GT(arrivals.size(), 20u);
  RtdsSystem system(grid3x3(), default_config());
  system.run(arrivals);
  const auto& m = system.metrics();
  EXPECT_EQ(m.arrived, arrivals.size());
  EXPECT_EQ(m.arrived, m.accepted() + m.rejected);
  EXPECT_EQ(m.deadline_misses, 0u);
  // run() already enforced: all locks released, queues drained.
}

TEST(RtdsSystem, WorkloadRunTimeoutPolicy) {
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.01;
  wl.horizon = 800.0;
  wl.seed = 99;
  const auto arrivals = generate_workload(9, wl);
  SystemConfig cfg = default_config();
  cfg.node.enroll_policy = EnrollPolicy::kTimeout;
  RtdsSystem system(grid3x3(), cfg);
  system.run(arrivals);
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
  EXPECT_EQ(system.metrics().arrived, arrivals.size());
}

TEST(RtdsSystem, MessagesBoundedBySphere) {
  // Per-job link messages must be bounded by the sphere: each protocol
  // round contacts at most |PCS|-1 members, each at most hop-diameter hops,
  // and there are at most 4 rounds (enroll, enroll-reply, validate+reply,
  // dispatch) plus unlocks.
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.02;
  wl.horizon = 500.0;
  wl.seed = 7;
  const auto arrivals = generate_workload(9, wl);
  RtdsSystem system(grid3x3(), default_config());
  system.run(arrivals);

  std::size_t max_pcs = 0, max_hop_diam = 0;
  for (SiteId s = 0; s < 9; ++s) {
    max_pcs = std::max(max_pcs, system.node(s).pcs().size());
    max_hop_diam = std::max(max_hop_diam, system.node(s).pcs().hop_diameter());
  }
  const double bound =
      8.0 * static_cast<double>(max_pcs) * static_cast<double>(max_hop_diam);
  for (const auto& d : system.decisions())
    EXPECT_LE(static_cast<double>(d.link_messages), bound)
        << "job " << d.job << " used " << d.link_messages;
}

TEST(RtdsSystem, AcceptedRemoteJobsCompleteOnTime) {
  // Stress: heavy load on a small net; verify_invariants (inside run)
  // asserts completion-by-deadline for every accepted job.
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.05;
  wl.horizon = 400.0;
  wl.laxity_min = 1.2;
  wl.laxity_max = 3.0;
  wl.seed = 31;
  const auto arrivals = generate_workload(9, wl);
  RtdsSystem system(grid3x3(), default_config());
  system.run(arrivals);
  const auto& m = system.metrics();
  EXPECT_EQ(m.deadline_misses, 0u);
  if (m.accepted() > 0) {
    EXPECT_LE(m.job_lateness.max(), 1e-7);
  }
}

TEST(RtdsSystem, MeasuredPcsBuildMatchesInMemory) {
  SystemConfig cfg = default_config();
  cfg.measure_pcs_build_cost = true;
  RtdsSystem system(grid3x3(), cfg);  // ctor cross-checks tables
  EXPECT_GT(system.metrics().pcs_build_messages, 0u);
}

TEST(RtdsSystem, AdjustmentCasesObserved) {
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.04;
  wl.horizon = 600.0;
  wl.laxity_min = 1.1;
  wl.laxity_max = 5.0;
  wl.seed = 5;
  const auto arrivals = generate_workload(9, wl);
  RtdsSystem system(grid3x3(), default_config());
  system.run(arrivals);
  // Under mixed laxity some distributed jobs should land in case ii.
  std::uint64_t mapped = 0;
  for (const auto& [c, count] : system.metrics().adjustment_cases)
    mapped += count;
  EXPECT_GT(mapped, 0u);
}


TEST(RtdsSystemEdge, SingleTaskJobs) {
  RtdsSystem system(grid3x3(), default_config());
  std::vector<JobArrival> arrivals;
  for (JobId id = 1; id <= 5; ++id) {
    auto job = std::make_shared<Job>();
    job->id = id;
    job->dag.add_task(3.0);
    job->dag.finalize();
    job->release = double(id);
    job->deadline = job->release + 4.0;
    arrivals.push_back({static_cast<SiteId>(id % 9), job});
  }
  system.run(arrivals);
  EXPECT_EQ(system.metrics().accepted(), 5u);
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
}

TEST(RtdsSystemEdge, EmptyDagAcceptedTrivially) {
  RtdsSystem system(grid3x3(), default_config());
  auto job = std::make_shared<Job>();
  job->id = 1;
  job->dag.finalize();  // zero tasks
  job->release = 0.0;
  job->deadline = 1.0;
  system.run({{0, job}});
  EXPECT_EQ(system.metrics().accepted_local, 1u);
}

TEST(RtdsSystemEdge, DuplicateJobIdsRejected) {
  RtdsSystem system(grid3x3(), default_config());
  auto a = make_job(7, 0.0, 5.0, 1);
  auto b = make_job(7, 1.0, 5.0, 2);
  EXPECT_THROW(system.run({{0, a}, {1, b}}), ContractViolation);
}

TEST(RtdsSystemEdge, EmptyWindowRejectedUpfront) {
  RtdsSystem system(grid3x3(), default_config());
  auto job = make_job(1, 5.0, 1.0, 3);
  auto broken = std::make_shared<Job>(*job);
  broken->deadline = broken->release;
  EXPECT_THROW(system.run({{0, broken}}), ContractViolation);
}

TEST(RtdsSystemEdge, DisconnectedTopologyRejected) {
  Topology topo;
  topo.add_site();
  topo.add_site();  // no link
  EXPECT_THROW(RtdsSystem(std::move(topo), default_config()),
               ContractViolation);
}

TEST(RtdsSystemEdge, NullJobRejected) {
  RtdsSystem system(grid3x3(), default_config());
  EXPECT_THROW(system.run({{0, nullptr}}), ContractViolation);
}

TEST(RtdsSystemEdge, RunTwiceRejected) {
  RtdsSystem system(grid3x3(), default_config());
  system.run({});
  EXPECT_THROW(system.run({}), ContractViolation);
}

TEST(RtdsSystemEdge, ArrivalAtLastInstantStillDecided) {
  // A job whose release leaves exactly its critical path of slack: the
  // local test either fits it at the very edge or rejects it — either way
  // a decision is recorded and invariants hold.
  RtdsSystem system(grid3x3(), default_config());
  Rng rng(9);
  auto job = std::make_shared<Job>();
  job->id = 1;
  job->dag = make_chain(3, CostRange{2.0, 2.0}, rng);
  job->release = 100.0;
  job->deadline = 100.0 + 6.0 + 1e-6;  // exactly the work, plus epsilon
  system.run({{4, job}});
  EXPECT_EQ(system.decisions().size(), 1u);
  EXPECT_EQ(system.metrics().accepted_local, 1u);  // fits exactly
}

}  // namespace
}  // namespace rtds
