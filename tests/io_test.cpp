// Serialization round-trips (dag/net/trace text formats) and strict-parse
// error behaviour.
#include <gtest/gtest.h>

#include "core/trace_io.hpp"
#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/io.hpp"
#include "net/generators.hpp"
#include "net/io.hpp"

namespace rtds {
namespace {

// ----------------------------------------------------------------- dag ----

void expect_same_dag(const Dag& a, const Dag& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.arc_count(), b.arc_count());
  for (TaskId t = 0; t < a.task_count(); ++t) {
    EXPECT_DOUBLE_EQ(a.cost(t), b.cost(t));
    EXPECT_EQ(a.task(t).label, b.task(t).label);
    EXPECT_EQ(std::vector<TaskId>(a.predecessors(t).begin(), a.predecessors(t).end()),
              std::vector<TaskId>(b.predecessors(t).begin(), b.predecessors(t).end()));
    EXPECT_EQ(std::vector<TaskId>(a.successors(t).begin(), a.successors(t).end()),
              std::vector<TaskId>(b.successors(t).begin(), b.successors(t).end()));
  }
  for (const auto& arc : a.arcs())
    EXPECT_DOUBLE_EQ(a.data_volume(arc.from, arc.to),
                     b.data_volume(arc.from, arc.to));
}

TEST(DagIo, RoundTripPaperExample) {
  const Dag dag = paper_example();
  const Dag copy = dag_from_string(dag_to_string(dag));
  expect_same_dag(dag, copy);
  EXPECT_TRUE(copy.finalized());
}

class DagIoShapes : public ::testing::TestWithParam<DagShape> {};

TEST_P(DagIoShapes, RoundTripPreservesStructureAndAnalysis) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  const Dag dag = make_shape(GetParam(), 17, CostRange{0.5, 9.5}, rng);
  const Dag copy = dag_from_string(dag_to_string(dag));
  expect_same_dag(dag, copy);
  EXPECT_DOUBLE_EQ(critical_path_length(dag), critical_path_length(copy));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DagIoShapes,
    ::testing::Values(DagShape::kChain, DagShape::kForkJoin, DagShape::kLayered,
                      DagShape::kRandom, DagShape::kLu, DagShape::kFft),
    [](const auto& info) { return to_string(info.param); });

TEST(DagIo, DataVolumesSurviveRoundTrip) {
  Dag dag;
  const auto a = dag.add_task(1.0, "producer");
  const auto b = dag.add_task(2.0, "consumer");
  dag.add_arc(a, b, 123.456);
  dag.finalize();
  const Dag copy = dag_from_string(dag_to_string(dag));
  EXPECT_DOUBLE_EQ(copy.data_volume(0, 1), 123.456);
  EXPECT_EQ(copy.task(0).label, "producer");
}

TEST(DagIo, MalformedInputRejectedWithLineInfo) {
  EXPECT_THROW(dag_from_string("bogus"), ContractViolation);
  EXPECT_THROW(dag_from_string("dag v2\ntasks 0\narcs 0\nend\n"),
               ContractViolation);
  EXPECT_THROW(dag_from_string("dag v1\ntasks 1\ntask 0 -3\narcs 0\nend\n"),
               ContractViolation);
  EXPECT_THROW(dag_from_string("dag v1\ntasks 1\ntask 5 1.0\narcs 0\nend\n"),
               ContractViolation);
  EXPECT_THROW(
      dag_from_string("dag v1\ntasks 2\ntask 0 1\ntask 1 1\narcs 1\n"
                      "arc 0 7 0\nend\n"),
      ContractViolation);
  // Cycle: finalize() rejects it.
  EXPECT_THROW(
      dag_from_string("dag v1\ntasks 2\ntask 0 1\ntask 1 1\narcs 2\n"
                      "arc 0 1 0\narc 1 0 0\nend\n"),
      ContractViolation);
  // Truncated input.
  EXPECT_THROW(dag_from_string("dag v1\ntasks 2\ntask 0 1\n"),
               ContractViolation);
}

TEST(DagIo, CommentsAndBlankLinesIgnored) {
  const Dag copy = dag_from_string(
      "# a comment\ndag v1\n# another\ntasks 1\ntask 0 2.5\narcs 0\nend\n");
  EXPECT_EQ(copy.task_count(), 1u);
  EXPECT_DOUBLE_EQ(copy.cost(0), 2.5);
}

// ----------------------------------------------------------------- net ----

void expect_same_topology(const Topology& a, const Topology& b) {
  ASSERT_EQ(a.site_count(), b.site_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (SiteId s = 0; s < a.site_count(); ++s)
    EXPECT_DOUBLE_EQ(a.computing_power(s), b.computing_power(s));
  for (const auto& l : a.links()) {
    EXPECT_TRUE(b.adjacent(l.a, l.b));
    EXPECT_DOUBLE_EQ(b.link_delay(l.a, l.b), l.delay);
  }
}

class NetIoShapes : public ::testing::TestWithParam<NetShape> {};

TEST_P(NetIoShapes, RoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7);
  const Topology topo = make_net(GetParam(), 18, DelayRange{0.5, 3.0}, rng);
  const Topology copy = topology_from_string(topology_to_string(topo));
  expect_same_topology(topo, copy);
  EXPECT_TRUE(copy.connected());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NetIoShapes,
    ::testing::Values(NetShape::kRing, NetShape::kGrid, NetShape::kTree,
                      NetShape::kGeometric, NetShape::kScaleFree),
    [](const auto& info) { return to_string(info.param); });

TEST(NetIo, HeterogeneousPowersSurvive) {
  Topology topo;
  topo.add_site(1.0);
  topo.add_site(2.5);
  topo.add_link(0, 1, 3.25, 10.0);
  const Topology copy = topology_from_string(topology_to_string(topo));
  EXPECT_DOUBLE_EQ(copy.computing_power(1), 2.5);
  EXPECT_DOUBLE_EQ(copy.links()[0].throughput, 10.0);
}

TEST(NetIo, MalformedInputRejected) {
  EXPECT_THROW(topology_from_string("net v1\nsites 1\nsite 0 0.0\nlinks 0\nend\n"),
               ContractViolation);  // zero power
  EXPECT_THROW(topology_from_string("net v1\nsites 2\nsite 0 1\nsite 1 1\n"
                                    "links 1\nlink 0 5 1 0\nend\n"),
               ContractViolation);  // out-of-range link
  EXPECT_THROW(topology_from_string(""), ContractViolation);
}

// --------------------------------------------------------------- trace ----

TEST(TraceIo, RoundTripWorkload) {
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.05;
  wl.horizon = 100.0;
  wl.seed = 3;
  const auto arrivals = generate_workload(6, wl);
  ASSERT_FALSE(arrivals.empty());
  const auto copy = trace_from_string(trace_to_string(arrivals));
  ASSERT_EQ(copy.size(), arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(copy[i].site, arrivals[i].site);
    EXPECT_EQ(copy[i].job->id, arrivals[i].job->id);
    EXPECT_DOUBLE_EQ(copy[i].job->release, arrivals[i].job->release);
    EXPECT_DOUBLE_EQ(copy[i].job->deadline, arrivals[i].job->deadline);
    expect_same_dag(copy[i].job->dag, arrivals[i].job->dag);
  }
}

TEST(TraceIo, EmptyTrace) {
  const auto copy = trace_from_string(trace_to_string({}));
  EXPECT_TRUE(copy.empty());
}

TEST(TraceIo, MalformedRejected) {
  EXPECT_THROW(trace_from_string("nope"), ContractViolation);
  EXPECT_THROW(trace_from_string("trace v1\njobs 1\nend\n"), ContractViolation);
}

}  // namespace
}  // namespace rtds
