// Scale-path regressions (DESIGN.md §10).
//
// Three contracts are pinned here:
//  (a) the sphere-local phased APSP equals the full-table oracle restricted
//      to ≤(2h+1)-hop paths — on random topologies, and under injected
//      faults against the masked (live-links-only) topology;
//  (b) incremental repair after every topology-change event leaves the
//      tables route-for-route identical to a from-scratch recompute over
//      the live topology;
//  (c) the e7_scale sweep is bit-identical for any worker count (golden
//      digest, serial and 8 workers — recorded from the serial run of this
//      exact reduced sweep when E7 was introduced).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"
#include "fault/fault.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "routing/apsp.hpp"

namespace rtds {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultState;

// ----------------------------------------- sphere-local vs oracle tables --

/// Expects `tables` to equal hop-bounded shortest paths on `topo`: a route
/// exists iff the (2h+1)-hop-bounded distance is finite, and distances
/// agree. This is exactly the "full N×N table restricted to the sphere"
/// the sparse layout replaced.
void expect_matches_oracle(const Topology& topo,
                           const std::vector<RoutingTable>& tables,
                           std::size_t phases) {
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    const auto oracle = hop_bounded_distances(topo, s, phases + 1);
    std::size_t reachable = 0;
    for (SiteId d = 0; d < topo.site_count(); ++d) {
      if (oracle[d] == kInfiniteTime) {
        EXPECT_FALSE(tables[s].has_route(d))
            << "phantom route " << s << "->" << d;
      } else {
        ++reachable;
        ASSERT_TRUE(tables[s].has_route(d)) << s << "->" << d;
        const RouteLine& line = tables[s].route(d);
        EXPECT_NEAR(line.dist, oracle[d], 1e-9) << s << "->" << d;
        EXPECT_LE(line.hops, phases + 1);
      }
    }
    EXPECT_EQ(tables[s].size(), reachable) << "site " << s;
  }
}

TEST(SphereLocalApsp, MatchesHopBoundedOracleAcrossTopologies) {
  const std::vector<NetShape> shapes = {NetShape::kGrid, NetShape::kRing,
                                        NetShape::kTree, NetShape::kErdosRenyi,
                                        NetShape::kSmallWorld,
                                        NetShape::kScaleFree};
  std::uint64_t seed = 100;
  for (const NetShape shape : shapes) {
    Rng rng(seed++);
    const Topology topo = make_net(shape, 24, DelayRange{0.5, 4.0}, rng);
    for (const std::size_t h : {1u, 2u}) {
      const auto tables = phased_apsp(topo, 2 * h);
      SCOPED_TRACE(std::string(to_string(shape)) + " h=" + std::to_string(h));
      expect_matches_oracle(topo, tables, 2 * h);
    }
  }
}

/// The live topology under a fault view: same sites, only live links.
Topology masked_topology(const Topology& topo, const FaultState& faults) {
  Topology masked;
  for (SiteId s = 0; s < topo.site_count(); ++s)
    masked.add_site(topo.computing_power(s));
  for (const Link& l : topo.links())
    if (faults.link_up(l.a, l.b)) masked.add_link(l.a, l.b, l.delay);
  return masked;
}

TEST(SphereLocalApsp, MatchesMaskedOracleUnderInjectedFaults) {
  Rng rng(7);
  const Topology topo = make_grid(8, 8, DelayRange{0.5, 2.0}, rng);
  FaultPlan plan;
  plan.events = {FaultEvent{1.0, FaultKind::kSiteDown, 27, kNoSite},
                 FaultEvent{1.0, FaultKind::kLinkDown, 9, 10},
                 FaultEvent{1.0, FaultKind::kLinkDown, 40, 48},
                 FaultEvent{1.0, FaultKind::kSiteDown, 5, kNoSite}};
  FaultState faults(topo, plan);
  for (const auto& ev : plan.events) faults.apply(ev);

  const std::size_t h = 2;
  const auto tables = phased_apsp(topo, 2 * h, &faults);
  const Topology masked = masked_topology(topo, faults);
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    if (!faults.site_up(s)) {
      EXPECT_EQ(tables[s].size(), 0u) << "down site " << s << " has routes";
      continue;
    }
    const auto oracle = hop_bounded_distances(masked, s, 2 * h + 1);
    for (SiteId d = 0; d < topo.site_count(); ++d) {
      if (oracle[d] == kInfiniteTime) {
        EXPECT_FALSE(tables[s].has_route(d))
            << "phantom route " << s << "->" << d;
      } else {
        ASSERT_TRUE(tables[s].has_route(d)) << s << "->" << d;
        EXPECT_NEAR(tables[s].route(d).dist, oracle[d], 1e-9);
      }
    }
  }
}

// ------------------------------------------------------ incremental repair --

void expect_tables_identical(const std::vector<RoutingTable>& a,
                             const std::vector<RoutingTable>& b,
                             std::size_t sites, int step) {
  for (SiteId s = 0; s < sites; ++s) {
    ASSERT_EQ(a[s].size(), b[s].size()) << "site " << s << " step " << step;
    for (SiteId d = 0; d < sites; ++d) {
      const RouteLine* la = a[s].find(d);
      const RouteLine* lb = b[s].find(d);
      ASSERT_EQ(la == nullptr, lb == nullptr)
          << s << "->" << d << " step " << step;
      if (la == nullptr) continue;
      EXPECT_EQ(la->dist, lb->dist) << s << "->" << d << " step " << step;
      EXPECT_EQ(la->hops, lb->hops) << s << "->" << d << " step " << step;
      EXPECT_EQ(la->next_hop, lb->next_hop)
          << s << "->" << d << " step " << step;
    }
  }
}

TEST(IncrementalRepair, MatchesFullRecomputeAcrossEventSequences) {
  const std::vector<NetShape> shapes = {NetShape::kGrid, NetShape::kErdosRenyi,
                                        NetShape::kSmallWorld};
  std::uint64_t seed = 300;
  for (const NetShape shape : shapes) {
    Rng rng(seed++);
    const Topology topo = make_net(shape, 36, DelayRange{0.5, 3.0}, rng);
    const auto n = topo.site_count();
    SCOPED_TRACE(to_string(shape));
    // A seeded on/off process gives a realistic mix of site and link
    // events, including re-ups of the same element.
    fault::FaultSpec spec;
    spec.site_rate = 0.004;
    spec.link_rate = 0.004;
    spec.site_mttr = 60.0;
    spec.link_mttr = 60.0;
    spec.horizon = 400.0;
    spec.seed = seed;
    const FaultPlan plan = FaultPlan::from_spec(spec, topo);
    ASSERT_GE(plan.events.size(), 6u) << "spec produced too few events";

    const std::size_t phases = 4;  // h = 2
    FaultState faults(topo, plan);
    auto tables = phased_apsp(topo, phases);
    // One reused repair engine across the whole sequence — the stateful
    // path RtdsSystem drives. A second table set goes through the
    // one-shot repair_apsp wrapper so both entry points stay pinned.
    ApspRepairer repairer(topo, phases);
    auto oneshot_tables = tables;
    int step = 0;
    for (const auto& ev : plan.events) {
      if (!faults.apply(ev)) continue;  // redundant scripted event
      const SiteId changed[2] = {ev.a, ev.b};
      const std::span<const SiteId> span(changed, ev.b == kNoSite ? 1 : 2);
      repairer.repair(tables, &faults, span);
      repair_apsp(oneshot_tables, topo, phases, &faults, span);
      const auto full = phased_apsp(topo, phases, &faults);
      expect_tables_identical(tables, full, n, step);
      expect_tables_identical(oneshot_tables, full, n, step);
      ++step;
    }
    EXPECT_GE(step, 4) << "sequence exercised too few effective events";
  }
}

// ------------------------------------------------------- E7 golden digest --

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Digest recorded from the serial run of this reduced sweep at the commit
// that introduced E7; any worker count must reproduce every byte.
constexpr std::uint64_t kE7CsvDigest = 3003423502625245643ull;

/// E7 restricted to the low load, keeping all three network sizes (the
/// scale story is the sites axis); grid indices and seeds match the full
/// sweep's corresponding rows.
exp::ScenarioSpec reduced_e7() {
  exp::register_builtin_scenarios();
  const exp::ScenarioSpec* base = exp::Registry::instance().find("e7_scale");
  // Throwing (not EXPECT-and-continue) keeps a dropped registration a
  // clean test failure instead of a null dereference.
  RTDS_REQUIRE_MSG(base != nullptr, "e7_scale missing from the registry");
  exp::ScenarioSpec spec = *base;
  spec.axes.at(1).values.resize(1);  // rate 0.01 only
  return spec;
}

std::uint64_t e7_digest(std::size_t jobs) {
  const exp::ScenarioSpec spec = reduced_e7();
  exp::RunOptions opts;
  opts.jobs = jobs;
  const auto rows = exp::run_scenario(spec, opts);
  std::ostringstream os;
  exp::CsvSink{}.write(spec, rows, os);
  return fnv1a(os.str());
}

TEST(E7GoldenDigest, SerialMatchesRecordedDigest) {
  EXPECT_EQ(e7_digest(1), kE7CsvDigest);
}

TEST(E7GoldenDigest, EightWorkersMatchesRecordedDigest) {
  EXPECT_EQ(e7_digest(8), kE7CsvDigest);
}

}  // namespace
}  // namespace rtds
