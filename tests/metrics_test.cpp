// RunMetrics accounting tests.
#include <gtest/gtest.h>

#include "core/metrics.hpp"

namespace rtds {
namespace {

JobDecision decision(JobId id, JobOutcome outcome,
                     RejectReason reason = RejectReason::kNone) {
  JobDecision d;
  d.job = id;
  d.outcome = outcome;
  d.reject_reason = reason;
  d.arrival = 10.0;
  d.decision_time = 12.5;
  d.deadline = 50.0;
  d.task_count = 4;
  d.acs_size = outcome == JobOutcome::kAcceptedRemote ? 5 : 1;
  d.link_messages = outcome == JobOutcome::kAcceptedRemote ? 40 : 0;
  d.adjustment_case = outcome == JobOutcome::kAcceptedRemote ? 2 : 0;
  return d;
}

TEST(RunMetrics, CountsByOutcome) {
  RunMetrics m;
  m.record(decision(1, JobOutcome::kAcceptedLocal));
  m.record(decision(2, JobOutcome::kAcceptedRemote));
  m.record(decision(3, JobOutcome::kRejected, RejectReason::kMapperCaseI));
  m.record(decision(4, JobOutcome::kRejected, RejectReason::kMatchingFailed));
  EXPECT_EQ(m.arrived, 4u);
  EXPECT_EQ(m.accepted_local, 1u);
  EXPECT_EQ(m.accepted_remote, 1u);
  EXPECT_EQ(m.rejected, 2u);
  EXPECT_EQ(m.accepted(), 2u);
  EXPECT_DOUBLE_EQ(m.guarantee_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(m.delivered_ratio(), 0.5);
  EXPECT_EQ(m.reject_by_reason.at(int(RejectReason::kMapperCaseI)), 1u);
  EXPECT_EQ(m.reject_by_reason.at(int(RejectReason::kMatchingFailed)), 1u);
  EXPECT_EQ(m.adjustment_cases.at(2), 1u);
}

TEST(RunMetrics, LatencyAndAcsStats) {
  RunMetrics m;
  m.record(decision(1, JobOutcome::kAcceptedRemote));
  m.record(decision(2, JobOutcome::kAcceptedLocal));
  EXPECT_EQ(m.decision_latency.count(), 2u);
  EXPECT_DOUBLE_EQ(m.decision_latency.mean(), 2.5);
  // Only the distributed attempt contributes an ACS sample.
  EXPECT_EQ(m.acs_size.count(), 1u);
  EXPECT_DOUBLE_EQ(m.acs_size.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.msgs_per_job.mean(), 20.0);
}

TEST(RunMetrics, DeliveredRatioAccountsForFailedJobs) {
  RunMetrics m;
  m.record(decision(1, JobOutcome::kAcceptedRemote));
  m.record(decision(2, JobOutcome::kAcceptedRemote));
  m.failed_jobs = 1;
  EXPECT_DOUBLE_EQ(m.guarantee_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(m.delivered_ratio(), 0.5);
}

TEST(RunMetrics, EmptyRatios) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.guarantee_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.delivered_ratio(), 0.0);
}

TEST(RunMetrics, EnumNames) {
  EXPECT_STREQ(to_string(JobOutcome::kAcceptedLocal), "accepted_local");
  EXPECT_STREQ(to_string(JobOutcome::kAcceptedRemote), "accepted_remote");
  EXPECT_STREQ(to_string(JobOutcome::kRejected), "rejected");
  EXPECT_STREQ(to_string(RejectReason::kGated), "gated");
  EXPECT_STREQ(to_string(RejectReason::kMapperCaseI), "mapper_case_i");
  EXPECT_STREQ(to_string(RejectReason::kOffloadRefused), "offload_refused");
}

}  // namespace
}  // namespace rtds
