#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/generators.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rtds {
namespace {

// ----------------------------------------------------------- simulator ----

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, StableTieBreakBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilLeavesFutureEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.has_events());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), ContractViolation);
}

TEST(Simulator, ZeroDelaySelfScheduleAdvancesQueue) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    sim.schedule_in(0.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

// ------------------------------------------------------------- network ----

struct Recorded {
  SiteId to;
  SiteId from;
  std::string text;
  Time at;
};

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : rng_(1), topo_(make_line(3, DelayRange{2.0, 2.0}, rng_)),
                     net_(sim_, topo_) {
    for (SiteId s = 0; s < topo_.site_count(); ++s) {
      net_.set_handler(s, [this, s](SiteId from, const MessageBody& payload) {
        received_.push_back(Recorded{s, from,
                                     std::get<std::string>(payload),
                                     sim_.now()});
      });
    }
  }

  Rng rng_;
  Topology topo_;
  Simulator sim_;
  SimNetwork net_;
  std::vector<Recorded> received_;
};

TEST_F(NetworkFixture, AdjacentDeliveryAfterLinkDelay) {
  net_.send_adjacent(0, 1, std::string("hello"), 1);
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].to, 1u);
  EXPECT_EQ(received_[0].from, 0u);
  EXPECT_EQ(received_[0].text, "hello");
  EXPECT_DOUBLE_EQ(received_[0].at, 2.0);
  EXPECT_EQ(net_.stats().total_link_messages, 1u);
  EXPECT_EQ(net_.stats().by_category.at(1).sends, 1u);
}

TEST_F(NetworkFixture, NonAdjacentSendRejected) {
  EXPECT_THROW(net_.send_adjacent(0, 2, std::string("x")), ContractViolation);
}

TEST_F(NetworkFixture, RoutedDeliveryChargesHops) {
  net_.send_routed(0, 2, 4.0, 2, std::string("multi"), 5);
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_DOUBLE_EQ(received_[0].at, 4.0);
  EXPECT_EQ(net_.stats().by_category.at(5).link_messages, 2u);
  EXPECT_EQ(net_.stats().by_category.at(5).sends, 1u);
}

TEST_F(NetworkFixture, SelfRoutedIsFree) {
  net_.send_routed(1, 1, 0.0, 0, std::string("self"));
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].from, 1u);
  EXPECT_EQ(net_.stats().total_link_messages, 0u);
  EXPECT_EQ(net_.stats().total_sends, 1u);
}

TEST_F(NetworkFixture, LocalDeliveryAfterDelay) {
  net_.send_local(2, 1.5, std::string("timer"));
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_DOUBLE_EQ(received_[0].at, 1.5);
  EXPECT_EQ(net_.stats().total_link_messages, 0u);
}

TEST_F(NetworkFixture, OrderPreservingPerLink) {
  // §2: links are order-preserving — equal-delay messages on the same link
  // arrive in send order (guaranteed by the stable event queue).
  for (int i = 0; i < 5; ++i)
    net_.send_adjacent(0, 1, std::string(1, char('a' + i)));
  sim_.run();
  ASSERT_EQ(received_.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(received_[i].text, std::string(1, char('a' + i)));
}

TEST_F(NetworkFixture, StatsAccumulateAcrossCategories) {
  net_.send_adjacent(0, 1, std::string("a"), 1);
  net_.send_adjacent(1, 2, std::string("b"), 2);
  net_.send_routed(0, 2, 4.0, 2, std::string("c"), 2);
  sim_.run();
  EXPECT_EQ(net_.stats().total_sends, 3u);
  EXPECT_EQ(net_.stats().total_link_messages, 4u);
  EXPECT_EQ(net_.stats().by_category.at(2).link_messages, 3u);
}

}  // namespace
}  // namespace rtds
