#include <gtest/gtest.h>

#include <cmath>

#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"

namespace rtds {
namespace {

// ------------------------------------------------------------ topology ----

TEST(Topology, BuildAndQuery) {
  Topology topo;
  const SiteId a = topo.add_site();
  const SiteId b = topo.add_site(2.0);
  const SiteId c = topo.add_site();
  topo.add_link(a, b, 1.5);
  topo.add_link(b, c, 2.5, 10.0);
  EXPECT_EQ(topo.site_count(), 3u);
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_TRUE(topo.adjacent(a, b));
  EXPECT_TRUE(topo.adjacent(b, a));
  EXPECT_FALSE(topo.adjacent(a, c));
  EXPECT_DOUBLE_EQ(topo.link_delay(b, c), 2.5);
  EXPECT_DOUBLE_EQ(topo.computing_power(b), 2.0);
  EXPECT_TRUE(topo.connected());
}

TEST(Topology, InvalidInputs) {
  Topology topo;
  const SiteId a = topo.add_site();
  const SiteId b = topo.add_site();
  EXPECT_THROW(topo.add_site(0.0), ContractViolation);
  EXPECT_THROW(topo.add_link(a, a, 1.0), ContractViolation);
  EXPECT_THROW(topo.add_link(a, b, 0.0), ContractViolation);
  EXPECT_THROW(topo.add_link(a, 9, 1.0), ContractViolation);
  topo.add_link(a, b, 1.0);
  EXPECT_THROW(topo.add_link(b, a, 2.0), ContractViolation);  // parallel
  EXPECT_THROW(topo.link_delay(a, 1 + 1), ContractViolation);
}

TEST(Topology, Disconnected) {
  Topology topo;
  topo.add_site();
  topo.add_site();
  EXPECT_FALSE(topo.connected());
}

// ------------------------------------------------------------ dijkstra ----

TEST(ShortestPaths, LineGraphDistances) {
  Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_site();
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 2.0);
  topo.add_link(2, 3, 3.0);
  const auto res = dijkstra(topo, 0);
  EXPECT_DOUBLE_EQ(res.dist[3], 6.0);
  EXPECT_EQ(res.hops[3], 3u);
  EXPECT_EQ(extract_path(res, 0, 3), (std::vector<SiteId>{0, 1, 2, 3}));
}

TEST(ShortestPaths, NoTriangleInequality) {
  // §2: weights need not satisfy the triangle inequality — the direct link
  // can be *worse* than a two-hop path.
  Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_site();
  topo.add_link(0, 2, 10.0);  // direct but slow
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 1.0);
  const auto res = dijkstra(topo, 0);
  EXPECT_DOUBLE_EQ(res.dist[2], 2.0);
  EXPECT_EQ(res.hops[2], 2u);
}

TEST(ShortestPaths, DijkstraMatchesFloydWarshall) {
  Rng rng(3);
  const Topology topo = make_erdos_renyi(24, 0.15, DelayRange{0.5, 4.0}, rng);
  const auto fw = floyd_warshall(topo);
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    const auto d = dijkstra(topo, s);
    for (SiteId t = 0; t < topo.site_count(); ++t)
      EXPECT_NEAR(d.dist[t], fw[s][t], 1e-9) << s << "->" << t;
  }
}

TEST(ShortestPaths, HopBoundedConvergesToDijkstra) {
  Rng rng(4);
  const Topology topo = make_erdos_renyi(20, 0.2, DelayRange{1.0, 3.0}, rng);
  const auto full = dijkstra(topo, 0);
  const auto bounded = hop_bounded_distances(topo, 0, topo.site_count());
  for (SiteId t = 0; t < topo.site_count(); ++t)
    EXPECT_NEAR(bounded[t], full.dist[t], 1e-9);
}

TEST(ShortestPaths, HopBoundedMonotone) {
  Rng rng(5);
  const Topology topo = make_ring(12, DelayRange{1.0, 2.0}, rng);
  const auto h1 = hop_bounded_distances(topo, 0, 1);
  const auto h2 = hop_bounded_distances(topo, 0, 2);
  for (SiteId t = 0; t < topo.site_count(); ++t)
    EXPECT_LE(h2[t], h1[t] + 1e-12);
  // Exactly the two ring neighbours are reachable in one hop.
  std::size_t reachable1 = 0;
  for (SiteId t = 0; t < topo.site_count(); ++t)
    if (h1[t] != kInfiniteTime) ++reachable1;
  EXPECT_EQ(reachable1, 3u);  // self + 2 neighbours
}

TEST(ShortestPaths, HopDistancesBfs) {
  Rng rng(6);
  const Topology topo = make_grid(4, 4, DelayRange{1.0, 1.0}, rng);
  const auto hops = hop_distances(topo, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[15], 6u);  // corner to corner on a 4x4 grid
}

// ---------------------------------------------------------- generators ----

struct NetCase {
  NetShape shape;
  std::size_t approx;
};

class NetShapes : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetShapes, ConnectedAndRoughlyRequestedSize) {
  Rng rng(11);
  const auto [shape, approx] = GetParam();
  const Topology topo = make_net(shape, approx, DelayRange{1.0, 2.0}, rng);
  EXPECT_TRUE(topo.connected()) << to_string(shape);
  EXPECT_GE(topo.site_count(), 4u);
  EXPECT_LE(topo.site_count(), 3 * approx + 8);
  for (const auto& l : topo.links()) EXPECT_GT(l.delay, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, NetShapes,
    ::testing::Values(NetCase{NetShape::kLine, 10}, NetCase{NetShape::kRing, 10},
                      NetCase{NetShape::kStar, 10}, NetCase{NetShape::kGrid, 16},
                      NetCase{NetShape::kTorus, 16},
                      NetCase{NetShape::kHypercube, 16},
                      NetCase{NetShape::kTree, 20},
                      NetCase{NetShape::kErdosRenyi, 20},
                      NetCase{NetShape::kGeometric, 25},
                      NetCase{NetShape::kSmallWorld, 20},
                      NetCase{NetShape::kScaleFree, 20}),
    [](const auto& info) { return to_string(info.param.shape); });

TEST(NetGenerators, GridStructure) {
  Rng rng(12);
  const Topology topo = make_grid(3, 4, DelayRange{1.0, 1.0}, rng);
  EXPECT_EQ(topo.site_count(), 12u);
  EXPECT_EQ(topo.link_count(), 3u * 3u + 2u * 4u);  // (w-1)h + w(h-1)
}

TEST(NetGenerators, TorusIsRegular) {
  Rng rng(13);
  const Topology topo = make_torus(4, 4, DelayRange{1.0, 1.0}, rng);
  EXPECT_EQ(topo.site_count(), 16u);
  for (SiteId s = 0; s < 16; ++s)
    EXPECT_EQ(topo.neighbors(s).size(), 4u);
}

TEST(NetGenerators, HypercubeDegree) {
  Rng rng(14);
  const Topology topo = make_hypercube(4, DelayRange{1.0, 1.0}, rng);
  EXPECT_EQ(topo.site_count(), 16u);
  for (SiteId s = 0; s < 16; ++s)
    EXPECT_EQ(topo.neighbors(s).size(), 4u);
}

TEST(NetGenerators, TreeHasNMinus1Links) {
  Rng rng(15);
  const Topology topo = make_random_tree(40, DelayRange{1.0, 1.0}, rng);
  EXPECT_EQ(topo.link_count(), 39u);
  EXPECT_TRUE(topo.connected());
}

TEST(NetGenerators, GeometricDelaysScaleWithDistance) {
  Rng rng(16);
  const Topology topo = make_geometric(30, 0.4, 2.0, rng);
  EXPECT_TRUE(topo.connected());
  for (const auto& l : topo.links())
    EXPECT_LE(l.delay, 2.0 * std::sqrt(2.0) + 1e-9);
}

TEST(NetGenerators, ScaleFreeHubEmerges) {
  Rng rng(17);
  const Topology topo = make_scale_free(60, 2, DelayRange{1.0, 1.0}, rng);
  std::size_t max_degree = 0;
  for (SiteId s = 0; s < topo.site_count(); ++s)
    max_degree = std::max(max_degree, topo.neighbors(s).size());
  EXPECT_GE(max_degree, 6u);  // preferential attachment grows hubs
}

}  // namespace
}  // namespace rtds
