// Observability-layer tests (DESIGN.md §11).
//
// Three contracts, in order of importance:
//  1. *Non-interference*: attaching metrics/trace capture to a run must
//     not change the run. The reduced-E1 CSV digest with observation
//     bound must equal determinism_test's golden constant — in the
//     default build AND with -DRTDS_OBS=OFF (the CI obs-off job builds
//     this same test with the layer compiled out).
//  2. *Worker-count invariance*: merged metrics JSONL and trace bytes are
//     identical at --jobs 1, 3 and 8 — observability output is a
//     determinism surface exactly like the scenario tables, pinned here
//     by a golden digest recorded from the serial run.
//  3. Registry/buffer/recorder unit semantics (interning, kind conflict,
//     histogram bins, merge algebra, scope nesting).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "core/metrics.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"
#include "exp/sinks.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace rtds::exp {
namespace {

// Golden constant shared with determinism_test.cpp: the reduced-E1 CSV
// digest recorded on the pre-rewrite core. Observation must not move it.
constexpr std::uint64_t kE1CsvDigest = 5809446339941925635ull;

#if RTDS_OBS_ENABLED
// Golden digests of the reduced-E1 observability surfaces, recorded from
// the serial (--jobs 1) run of this test. Any worker count must
// reproduce them byte-for-byte.
constexpr std::uint64_t kE1TraceJsonlDigest = 2952125611437769674ull;
constexpr std::uint64_t kE1ChromeTraceDigest = 11283816000779628912ull;
constexpr std::uint64_t kE1MetricsDigest = 933946784402825154ull;
#endif

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Reduced E1 (16/36/64 sites), same restriction as determinism_test.
ScenarioSpec reduced_e1() {
  register_builtin_scenarios();
  const ScenarioSpec* base = Registry::instance().find("e1_message_bound");
  EXPECT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.axes.at(0).values.resize(3);
  return spec;
}

struct ObservedRun {
  std::uint64_t csv_digest = 0;
  std::uint64_t trace_jsonl_digest = 0;
  std::uint64_t chrome_digest = 0;
  std::uint64_t metrics_digest = 0;
  std::size_t trace_events = 0;
};

ObservedRun run_observed_e1(std::size_t jobs) {
  const ScenarioSpec spec = reduced_e1();
  RunObservation observation;
  RunOptions opts;
  opts.jobs = jobs;
  opts.observe = &observation;
  const auto rows = run_scenario(spec, opts);

  ObservedRun r;
  std::ostringstream csv;
  CsvSink{}.write(spec, rows, csv);
  r.csv_digest = fnv1a(csv.str());

  std::ostringstream tj, tc, mj;
  obs::TraceRecorder::write_jsonl(tj, observation.traces);
  obs::TraceRecorder::write_chrome(tc, observation.traces);
  observation.metrics.write_jsonl(mj);
  r.trace_jsonl_digest = fnv1a(tj.str());
  r.chrome_digest = fnv1a(tc.str());
  r.metrics_digest = fnv1a(mj.str());
  for (const auto& t : observation.traces) r.trace_events += t.size();
  return r;
}

// --- RunMetrics::to_jsonl (both build modes) ----------------------------

TEST(RunMetricsJsonl, OneDeterministicLinePerRecord) {
  RunMetrics m;
  JobDecision accept;
  accept.job = 7;
  accept.outcome = JobOutcome::kAcceptedRemote;
  accept.arrival = 1.0;
  accept.decision_time = 3.5;
  accept.acs_size = 4;
  accept.link_messages = 12;
  m.record(accept);
  JobDecision reject;
  reject.job = 8;
  reject.outcome = JobOutcome::kRejected;
  reject.reject_reason = RejectReason::kMatchingFailed;
  m.record(reject);

  std::ostringstream a, b;
  m.to_jsonl(a);
  m.to_jsonl(b);
  EXPECT_EQ(a.str(), b.str());
  const std::string line = a.str();
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "must be one JSONL row";
  EXPECT_NE(line.find("\"arrived\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"accepted_remote\":1"), std::string::npos);
  EXPECT_NE(line.find("\"reject_by_reason\":{\"matching_failed\":1}"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"acs_size\":{\"count\":1,\"mean\":4"),
            std::string::npos)
      << line;
}

// --- contract 1: non-interference --------------------------------------

TEST(ObsParity, ObservedRunReproducesGoldenCsvDigest) {
  // Holds in BOTH build modes: with obs compiled out the Scope is a
  // no-op; compiled in, capture must still not perturb the simulation.
  EXPECT_EQ(run_observed_e1(1).csv_digest, kE1CsvDigest);
  EXPECT_EQ(run_observed_e1(8).csv_digest, kE1CsvDigest);
}

#if RTDS_OBS_ENABLED

// --- contract 2: worker-count invariance + golden digests ---------------

TEST(ObsDeterminism, TraceAndMetricsInvariantUnderWorkerCount) {
  const ObservedRun serial = run_observed_e1(1);
  EXPECT_GT(serial.trace_events, 0u);
  EXPECT_EQ(serial.trace_jsonl_digest, kE1TraceJsonlDigest);
  EXPECT_EQ(serial.chrome_digest, kE1ChromeTraceDigest);
  EXPECT_EQ(serial.metrics_digest, kE1MetricsDigest);
  for (const std::size_t jobs : {3u, 8u}) {
    const ObservedRun parallel = run_observed_e1(jobs);
    EXPECT_EQ(parallel.trace_jsonl_digest, serial.trace_jsonl_digest)
        << "trace JSONL bytes changed at jobs=" << jobs;
    EXPECT_EQ(parallel.chrome_digest, serial.chrome_digest)
        << "chrome trace bytes changed at jobs=" << jobs;
    EXPECT_EQ(parallel.metrics_digest, serial.metrics_digest)
        << "metrics JSONL bytes changed at jobs=" << jobs;
  }
}

TEST(ObsDeterminism, ObservedMetricsCoverEveryLayer) {
  const ScenarioSpec spec = reduced_e1();
  RunObservation observation;
  RunOptions opts;
  opts.jobs = 4;
  opts.observe = &observation;
  run_scenario(spec, opts);
  const obs::MetricsBuffer& m = observation.metrics;
  // One counter from each instrumented layer must be live.
  EXPECT_GT(m.sum("net.sends"), 0u) << "sim/network layer silent";
  EXPECT_GT(m.sum("apsp.build.calls"), 0u) << "routing layer silent";
  EXPECT_GT(m.sum("jobs.decided"), 0u) << "metrics choke point silent";
  EXPECT_GT(m.sum("admit.edf.calls"), 0u) << "admission layer silent";
  EXPECT_GT(m.sum("protocol.rounds"), 0u) << "protocol layer silent";
  // Traffic accounting must agree with the closed category set: the
  // per-category counters sum to the total.
  std::uint64_t category_sends = 0;
  for (const char* name :
       {"net.msg.enroll.sends", "net.msg.enroll_reply.sends",
        "net.msg.unlock.sends", "net.msg.validate.sends",
        "net.msg.validate_reply.sends", "net.msg.dispatch.sends",
        "net.msg.bid_request.sends", "net.msg.bid_reply.sends",
        "net.msg.offer.sends", "net.msg.offer_reply.sends",
        "net.msg.surplus_flood.sends", "net.msg.focused_offer.sends",
        "net.msg.focused_reply.sends", "net.msg.apsp.sends",
        "net.msg.cat0.sends"})
    category_sends += m.sum(name);
  EXPECT_EQ(category_sends, m.sum("net.sends"));
}

// --- contract 3: unit semantics ----------------------------------------

TEST(ObsRegistry, InterningIsIdempotentAndKindChecked) {
  auto& reg = obs::Registry::instance();
  const obs::MetricId a = reg.counter("test.obs.interning");
  const obs::MetricId b = reg.counter("test.obs.interning");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(reg.name(a), "test.obs.interning");
  EXPECT_EQ(reg.kind(a), obs::MetricKind::kCounter);
  EXPECT_THROW(reg.histogram("test.obs.interning"), ContractViolation);
}

TEST(ObsBuffer, HistogramBinsAndMergeAlgebra) {
  auto& reg = obs::Registry::instance();
  const obs::MetricId h = reg.histogram("test.obs.hist");
  obs::MetricsBuffer a, b;
  a.observe(h, 0);   // bin 0
  a.observe(h, 1);   // bin 1: [1, 2)
  b.observe(h, 7);   // bin 3: [4, 8)
  b.observe(h, 8);   // bin 4: [8, 16)
  obs::MetricsBuffer ab, ba;
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  std::ostringstream ab_os, ba_os;
  ab.write_jsonl(ab_os);
  ba.write_jsonl(ba_os);
  EXPECT_EQ(ab_os.str(), ba_os.str()) << "merge must be commutative";
  EXPECT_NE(ab_os.str().find("\"bins\":{\"0\":1,\"1\":1,\"3\":1,\"4\":1}"),
            std::string::npos)
      << ab_os.str();
  EXPECT_EQ(ab.count("test.obs.hist"), 4u);
  EXPECT_EQ(ab.sum("test.obs.hist"), 16u);
}

TEST(ObsScope, MacrosAttributeToTheBoundBufferOnly) {
  obs::MetricsBuffer outer, inner;
  RTDS_COUNT("test.obs.scope");  // unbound: must be dropped
  {
    obs::Scope bind_outer(&outer);
    RTDS_COUNT("test.obs.scope");
    {
      obs::Scope bind_inner(&inner);
      RTDS_COUNT_N("test.obs.scope", 5);
    }
    RTDS_COUNT("test.obs.scope");  // restored to outer
  }
  RTDS_COUNT("test.obs.scope");  // unbound again
  EXPECT_EQ(outer.sum("test.obs.scope"), 2u);
  EXPECT_EQ(inner.sum("test.obs.scope"), 5u);
}

TEST(ObsTrace, ChromeExportShapesSpansAndInstants) {
  std::vector<obs::TraceRecorder> trials(2);
  trials[0].begin("protocol", "round", 1.5, 3, 42, 7);
  trials[0].end("protocol", "round", 2.5, 3, 42, 1);
  trials[1].instant("net", "enroll", 0.25, 1, 2, 4);
  std::ostringstream os;
  obs::TraceRecorder::write_chrome(os, trials);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(out.find("\"id2\":{\"local\":\"0x2a\"}"), std::string::npos);
  EXPECT_NE(out.find("\"pid\":1"), std::string::npos);  // trial 1 process
  EXPECT_NE(out.find("\"ts\":1.5"), std::string::npos);
}

TEST(ObsProfiler, DisabledScopesRecordNothing) {
  obs::Profiler::set_enabled(false);
  obs::Profiler::instance().reset();
  { RTDS_OBS_PHASE("test.obs.phase"); }
  std::ostringstream off;
  obs::Profiler::instance().report(off);
  EXPECT_NE(off.str().find("no phases recorded"), std::string::npos);

  obs::Profiler::set_enabled(true);
  { RTDS_OBS_PHASE("test.obs.phase"); }
  obs::Profiler::set_enabled(false);
  std::ostringstream on;
  obs::Profiler::instance().report(on);
  EXPECT_NE(on.str().find("test.obs.phase"), std::string::npos);
  obs::Profiler::instance().reset();
}

#else  // !RTDS_OBS_ENABLED

TEST(ObsDisabled, CaptureStaysEmptyAndMacrosCompileOut) {
  const ScenarioSpec spec = reduced_e1();
  RunObservation observation;
  RunOptions opts;
  opts.jobs = 2;
  opts.observe = &observation;
  run_scenario(spec, opts);
  EXPECT_TRUE(observation.metrics.empty());
  for (const auto& t : observation.traces) EXPECT_TRUE(t.empty());
  obs::MetricsBuffer buf;
  {
    obs::Scope scope(&buf);
    RTDS_COUNT("test.obs.disabled");
    RTDS_HIST("test.obs.disabled.h", 3);
  }
  EXPECT_TRUE(buf.empty());
}

#endif  // RTDS_OBS_ENABLED

}  // namespace
}  // namespace rtds::exp
