// Unified Policy API tests: every registered policy runs from schema
// defaults and reproduces its legacy free-function entry point bit for
// bit; ParamMap validation fails loudly on unknown keys, wrong types and
// out-of-range enum labels; the registry errors list valid names.
#include <gtest/gtest.h>

#include "baseline/broadcast.hpp"
#include "baseline/centralized.hpp"
#include "baseline/local_only.hpp"
#include "baseline/offload.hpp"
#include "core/rtds_system.hpp"
#include "exp/condition.hpp"
#include "policy/policy.hpp"
#include "util/error.hpp"

namespace rtds::policy {
namespace {

class PolicyApi : public ::testing::Test {
 protected:
  void SetUp() override { register_builtin_policies(); }
};

// ---------------------------------------------------------- registry ----

TEST_F(PolicyApi, AllSixFamiliesRegistered) {
  register_builtin_policies();  // idempotent
  auto& registry = PolicyRegistry::instance();
  for (const char* name :
       {"rtds", "local", "central", "bcast", "bid", "random"}) {
    ASSERT_TRUE(registry.contains(name)) << name;
    const auto policy = registry.create(name);
    EXPECT_EQ(policy->name(), name);
    EXPECT_FALSE(policy->description().empty());
    EXPECT_FALSE(policy->describe_params().specs().empty());
  }
}

TEST_F(PolicyApi, UnknownPolicyErrorListsRegisteredNames) {
  try {
    PolicyRegistry::instance().create("bogus");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    for (const char* name :
         {"rtds", "local", "central", "bcast", "bid", "random"})
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

// ------------------------------------------- bit-identity vs legacy ----

/// The E2 comparison condition, scaled down to run all six families in a
/// test: 4x4 grid, offload-regime windows.
exp::Condition small_e2_condition() {
  exp::ConditionSpec cs = exp::offload_regime();
  cs.net = NetShape::kGrid;
  cs.sites = 16;
  cs.rate = 0.03;
  cs.horizon = 200.0;
  cs.seed = 42;
  return exp::make_condition(cs);
}

void expect_stat_identical(const RunningStat& a, const RunningStat& b,
                           const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.sum(), b.sum()) << what;
  if (a.count() > 0 && b.count() > 0) {
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
}

/// Bit-identical across every field the sinks and scenario tables can
/// read: exact integer counts, exact double-compare on the accumulators.
void expect_metrics_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.accepted_local, b.accepted_local);
  EXPECT_EQ(a.accepted_remote, b.accepted_remote);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.dispatch_failures, b.dispatch_failures);
  EXPECT_EQ(a.failed_jobs, b.failed_jobs);
  EXPECT_EQ(a.reject_by_reason, b.reject_by_reason);
  EXPECT_EQ(a.adjustment_cases, b.adjustment_cases);
  expect_stat_identical(a.decision_latency, b.decision_latency,
                        "decision_latency");
  expect_stat_identical(a.acs_size, b.acs_size, "acs_size");
  expect_stat_identical(a.msgs_per_job, b.msgs_per_job, "msgs_per_job");
  expect_stat_identical(a.job_lateness, b.job_lateness, "job_lateness");
  EXPECT_EQ(a.transport.total_sends, b.transport.total_sends);
  EXPECT_EQ(a.transport.total_link_messages, b.transport.total_link_messages);
  auto it_a = a.transport.by_category.begin();
  auto it_b = b.transport.by_category.begin();
  for (; it_a != a.transport.by_category.end() &&
         it_b != b.transport.by_category.end();
       ++it_a, ++it_b) {
    EXPECT_EQ((*it_a).first, (*it_b).first);
    EXPECT_EQ((*it_a).second.sends, (*it_b).second.sends);
    EXPECT_EQ((*it_a).second.link_messages, (*it_b).second.link_messages);
  }
  EXPECT_EQ(it_a != a.transport.by_category.end(),
            it_b != b.transport.by_category.end());
  EXPECT_EQ(a.pcs_build_messages, b.pcs_build_messages);
  EXPECT_EQ(a.pcs_size_max, b.pcs_size_max);
  EXPECT_EQ(a.pcs_hop_diameter_max, b.pcs_hop_diameter_max);
}

RunMetrics run_via_registry(const std::string& name, const exp::Condition& c,
                            const std::vector<std::string>& sets = {}) {
  const auto policy = PolicyRegistry::instance().create(name);
  return policy->run(c.topo, c.arrivals, policy->parse_params(sets));
}

TEST_F(PolicyApi, RtdsMatchesLegacyEntryPoint) {
  const exp::Condition c = small_e2_condition();
  RtdsSystem system(c.topo, SystemConfig{});
  system.run(c.arrivals);
  expect_metrics_identical(run_via_registry("rtds", c), system.metrics());
}

TEST_F(PolicyApi, LocalMatchesLegacyEntryPoint) {
  const exp::Condition c = small_e2_condition();
  expect_metrics_identical(
      run_via_registry("local", c),
      run_local_only(c.topo, c.arrivals, LocalSchedulerConfig{}));
}

TEST_F(PolicyApi, CentralMatchesLegacyEntryPoint) {
  const exp::Condition c = small_e2_condition();
  expect_metrics_identical(
      run_via_registry("central", c),
      run_centralized(c.topo, c.arrivals, CentralizedConfig{}));
}

TEST_F(PolicyApi, BcastMatchesLegacyEntryPoint) {
  const exp::Condition c = small_e2_condition();
  expect_metrics_identical(run_via_registry("bcast", c),
                           run_broadcast(c.topo, c.arrivals, BroadcastConfig{}));
}

TEST_F(PolicyApi, BidMatchesLegacyEntryPoint) {
  const exp::Condition c = small_e2_condition();
  expect_metrics_identical(run_via_registry("bid", c),
                           run_offload(c.topo, c.arrivals, OffloadConfig{}));
}

TEST_F(PolicyApi, RandomMatchesLegacyEntryPoint) {
  const exp::Condition c = small_e2_condition();
  OffloadConfig cfg;
  cfg.policy = OffloadPolicy::kRandom;
  expect_metrics_identical(run_via_registry("random", c),
                           run_offload(c.topo, c.arrivals, cfg));
}

TEST_F(PolicyApi, OverridesMatchLegacyConfigs) {
  // A non-default override through the ParamMap equals the same override
  // through the legacy config struct.
  const exp::Condition c = small_e2_condition();

  SystemConfig rtds_cfg;
  rtds_cfg.node.sphere_radius_h = 3;
  rtds_cfg.node.enroll_gate = EnrollGate::kProtocolAware;
  RtdsSystem system(c.topo, rtds_cfg);
  system.run(c.arrivals);
  expect_metrics_identical(
      run_via_registry("rtds", c, {"h=3", "gate=protocol_aware"}),
      system.metrics());

  BroadcastConfig bcfg;
  bcfg.broadcast_period = 10.0;
  bcfg.surplus_window = 50.0;
  expect_metrics_identical(
      run_via_registry("bcast", c,
                       {"broadcast_period=10", "surplus_window=50"}),
      run_broadcast(c.topo, c.arrivals, bcfg));

  CentralizedConfig ccfg;
  ccfg.sphere_radius_h = 1;
  expect_metrics_identical(run_via_registry("central", c, {"h=1"}),
                           run_centralized(c.topo, c.arrivals, ccfg));
}

TEST_F(PolicyApi, EveryRegisteredPolicyRunsFromDefaults) {
  // Registry-completeness sweep: whatever is registered must run the small
  // E2 condition from an all-defaults ParamMap and produce sound counts.
  const exp::Condition c = small_e2_condition();
  for (const auto& name : PolicyRegistry::instance().names()) {
    const RunMetrics m = run_via_registry(name, c);
    EXPECT_EQ(m.arrived, c.arrivals.size()) << name;
    EXPECT_EQ(m.arrived, m.accepted() + m.rejected) << name;
    EXPECT_EQ(m.deadline_misses, 0u) << name;
  }
}

// ----------------------------------------------------------- ParamMap ----

ParamSchema probe_schema() {
  ParamSchema schema;
  schema.add_int("count", 3, "an int")
      .add_double("rate", 0.5, "a double")
      .add_bool("flag", false, "a bool")
      .add_enum("mode", "slow", {"slow", "fast"}, "an enum");
  return schema;
}

TEST(ParamMapTest, DefaultsAndOverrides) {
  const ParamSchema schema = probe_schema();
  const ParamMap empty;
  EXPECT_EQ(empty.get_int("count", 3), 3);
  EXPECT_EQ(empty.get_double("rate", 0.5), 0.5);
  EXPECT_FALSE(empty.get_bool("flag", false));
  EXPECT_EQ(empty.get_enum("mode", 0), 0u);

  const ParamMap map = ParamMap::parse(
      {"count=7", "rate=0.25", "flag=true", "mode=fast"}, schema);
  EXPECT_EQ(map.get_int("count", 3), 7);
  EXPECT_EQ(map.get_double("rate", 0.5), 0.25);
  EXPECT_TRUE(map.get_bool("flag", false));
  EXPECT_EQ(map.get_enum("mode", 0), 1u);
  EXPECT_TRUE(map.has("count"));
  EXPECT_FALSE(map.has("missing"));
}

TEST(ParamMapTest, LaterAssignmentWins) {
  const ParamMap map =
      ParamMap::parse({"count=1", "count=9"}, probe_schema());
  EXPECT_EQ(map.get_int("count", 3), 9);
  EXPECT_EQ(map.keys().size(), 1u);
}

TEST(ParamMapTest, UnknownKeyReportsSchema) {
  try {
    ParamMap::parse({"cnt=7"}, probe_schema());
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown param 'cnt'"), std::string::npos) << what;
    // The error carries the full valid schema.
    for (const char* key : {"count", "rate", "flag", "mode"})
      EXPECT_NE(what.find(key), std::string::npos) << key;
  }
}

TEST(ParamMapTest, WrongTypeReportsSchema) {
  for (const char* bad : {"count=seven", "count=7.5", "rate=fast",
                          "flag=maybe", "count=",
                          "count=99999999999999999999999", "rate=1e999"}) {
    try {
      ParamMap::parse({bad}, probe_schema());
      FAIL() << "expected ContractViolation for " << bad;
    } catch (const ContractViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("valid params"), std::string::npos) << bad;
    }
  }
}

TEST(ParamMapTest, OutOfRangeEnumReportsLabels) {
  try {
    ParamMap::parse({"mode=medium"}, probe_schema());
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mode"), std::string::npos);
    EXPECT_NE(what.find("slow|fast"), std::string::npos) << what;
  }
}

TEST(ParamMapTest, MalformedAssignmentRejected) {
  EXPECT_THROW(ParamMap::parse({"count"}, probe_schema()), ContractViolation);
}

TEST(ParamMapTest, MismatchedAccessorOnSetKeyThrows) {
  const ParamMap map = ParamMap::parse({"count=7"}, probe_schema());
  EXPECT_THROW(map.get_double("count", 0.0), ContractViolation);
}

TEST(ParamMapTest, SchemaRejectsDuplicateKeysAndBadEnumDefault) {
  ParamSchema schema;
  schema.add_int("k", 0, "");
  EXPECT_THROW(schema.add_double("k", 0.0, ""), ContractViolation);
  EXPECT_THROW(schema.add_enum("m", "c", {"a", "b"}, ""), ContractViolation);
}

}  // namespace
}  // namespace rtds::policy
