// Transport-layer tests: ideal vs contended delivery semantics, FIFO
// ordering and serialization arithmetic on contended links, and the full
// RTDS system running over the contended transport (including the honest
// dispatch-failure accounting when the protocol over-estimate is violated).
#include <gtest/gtest.h>

#include <string>

#include "core/rtds_system.hpp"
#include "net/generators.hpp"
#include "routing/apsp.hpp"
#include "routing/transport.hpp"

namespace rtds {
namespace {

struct Delivery {
  SiteId to;
  SiteId from;
  std::string text;
  Time at;
};

class TransportFixture : public ::testing::Test {
 protected:
  TransportFixture() {
    // Line 0 -- 1 -- 2 with delay 1.0 per link.
    for (int i = 0; i < 3; ++i) topo_.add_site();
    topo_.add_link(0, 1, 1.0);
    topo_.add_link(1, 2, 1.0);
    tables_ = phased_apsp(topo_, 4);
  }

  void wire(Transport& t) {
    for (SiteId s = 0; s < topo_.site_count(); ++s)
      t.set_handler(s, [this, s](SiteId from, const MessageBody& payload) {
        log_.push_back(Delivery{s, from, std::get<std::string>(payload),
                                sim_.now()});
      });
  }

  Topology topo_;
  std::vector<RoutingTable> tables_;
  Simulator sim_;
  std::vector<Delivery> log_;
};

TEST_F(TransportFixture, IdealDeliversAtMinPathDelay) {
  IdealTransport t(sim_, tables_);
  wire(t);
  const auto hops = t.send(0, 2, std::string("x"), 1, 5.0);
  EXPECT_EQ(hops, 2u);
  sim_.run();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_DOUBLE_EQ(log_[0].at, 2.0);  // pure propagation, size irrelevant
  EXPECT_EQ(log_[0].from, 0u);
  EXPECT_EQ(t.stats().total_link_messages, 2u);
}

TEST_F(TransportFixture, ContendedAddsSerializationPerHop) {
  // bandwidth 2 units/time, size 4 -> tx = 2 per hop; store-and-forward:
  // hop1 [0, 2+1), hop2 [3, 3+2+1) -> arrival 6.
  ContendedTransport t(sim_, topo_, tables_, 2.0);
  wire(t);
  t.send(0, 2, std::string("x"), 1, 4.0);
  sim_.run();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_DOUBLE_EQ(log_[0].at, 6.0);
  EXPECT_EQ(log_[0].from, 0u);  // logical sender, not the relay
  EXPECT_DOUBLE_EQ(t.max_queueing_delay(), 0.0);
}

TEST_F(TransportFixture, ContendedFifoQueueing) {
  // Two size-4 messages on the same link at t=0: the second queues behind
  // the first (tx = 2 each): arrivals at 3 and 5. Order preserved (§2).
  ContendedTransport t(sim_, topo_, tables_, 2.0);
  wire(t);
  t.send(0, 1, std::string("first"), 1, 4.0);
  t.send(0, 1, std::string("second"), 1, 4.0);
  sim_.run();
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].text, "first");
  EXPECT_DOUBLE_EQ(log_[0].at, 3.0);
  EXPECT_EQ(log_[1].text, "second");
  EXPECT_DOUBLE_EQ(log_[1].at, 5.0);
  EXPECT_DOUBLE_EQ(t.max_queueing_delay(), 2.0);
}

TEST_F(TransportFixture, ContendedDirectionsAreIndependent) {
  ContendedTransport t(sim_, topo_, tables_, 1.0);
  wire(t);
  t.send(0, 1, std::string("a"), 1, 3.0);
  t.send(1, 0, std::string("b"), 1, 3.0);
  sim_.run();
  // Full duplex: both arrive at tx + delay = 4.0, no cross queueing.
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_DOUBLE_EQ(log_[0].at, 4.0);
  EXPECT_DOUBLE_EQ(log_[1].at, 4.0);
  EXPECT_DOUBLE_EQ(t.max_queueing_delay(), 0.0);
}

TEST_F(TransportFixture, HighBandwidthApproachesIdeal) {
  ContendedTransport fast(sim_, topo_, tables_, 1e9);
  wire(fast);
  fast.send(0, 2, std::string("x"), 1, 10.0);
  sim_.run();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_NEAR(log_[0].at, 2.0, 1e-6);
}

TEST_F(TransportFixture, SelfSendFreeAndImmediate) {
  IdealTransport ideal(sim_, tables_);
  wire(ideal);
  EXPECT_EQ(ideal.send(1, 1, std::string("self"), 1, 1.0), 0u);
  sim_.run();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_DOUBLE_EQ(log_[0].at, 0.0);
  EXPECT_EQ(ideal.stats().total_link_messages, 0u);
}

TEST_F(TransportFixture, ContendedZeroBandwidthRejected) {
  EXPECT_THROW(ContendedTransport(sim_, topo_, tables_, 0.0),
               ContractViolation);
}

// ------------------------------------------------ system over contended ----

TEST(ContendedSystem, GenerousBandwidthMatchesIdealInvariants) {
  Rng rng(1);
  Topology topo = make_grid(3, 3, DelayRange{0.5, 1.0}, rng);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.02;
  wl.horizon = 400.0;
  wl.seed = 41;
  const auto arrivals = generate_workload(topo.site_count(), wl);

  SystemConfig cfg;
  cfg.transport_model = TransportModel::kContended;
  cfg.link_bandwidth = 1000.0;  // effectively no queueing
  RtdsSystem system(std::move(topo), cfg);
  system.run(arrivals);
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
  EXPECT_EQ(system.metrics().dispatch_failures, 0u);
}

TEST(ContendedSystem, TightBandwidthNeedsOverheadFactor) {
  // Under heavy contention the 3×ecc charge can be violated; the system
  // must degrade *honestly* (dispatch_failures counted, never a silent
  // deadline miss), and a raised protocol_overhead_factor must reduce or
  // eliminate the failures.
  auto run_with = [](double factor) {
    Rng rng(2);
    Topology topo = make_grid(3, 3, DelayRange{0.2, 0.5}, rng);
    WorkloadConfig wl;
    wl.arrival_rate_per_site = 0.05;
    wl.horizon = 400.0;
    wl.laxity_min = 1.2;
    wl.laxity_max = 2.5;
    wl.seed = 43;
    const auto arrivals = generate_workload(topo.site_count(), wl);
    SystemConfig cfg;
    cfg.transport_model = TransportModel::kContended;
    cfg.link_bandwidth = 5.0;  // very tight: task-code messages queue hard
    cfg.node.protocol_overhead_factor = factor;
    RtdsSystem system(std::move(topo), cfg);
    system.run(arrivals);
    return std::pair{system.metrics().dispatch_failures,
                     system.metrics().deadline_misses};
  };
  const auto [fail_1x, miss_1x] = run_with(1.0);
  const auto [fail_4x, miss_4x] = run_with(4.0);
  EXPECT_EQ(miss_1x, 0u);  // never silent — even when overloaded
  EXPECT_EQ(miss_4x, 0u);
  EXPECT_LE(fail_4x, fail_1x);
}

TEST(ContendedSystem, DeterministicLikeIdeal) {
  auto run_once = [] {
    Rng rng(3);
    Topology topo = make_ring(8, DelayRange{0.3, 0.8}, rng);
    WorkloadConfig wl;
    wl.arrival_rate_per_site = 0.03;
    wl.horizon = 300.0;
    wl.seed = 47;
    const auto arrivals = generate_workload(topo.site_count(), wl);
    SystemConfig cfg;
    cfg.transport_model = TransportModel::kContended;
    cfg.link_bandwidth = 20.0;
    RtdsSystem system(std::move(topo), cfg);
    system.run(arrivals);
    return system.metrics().transport.total_link_messages;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace rtds
