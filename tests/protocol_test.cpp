// Protocol-level tests of the RTDS node state machine: locking discipline,
// enrollment policies, queueing under locks, message-type traffic, and
// contention between concurrent initiators with overlapping spheres.
#include <gtest/gtest.h>

#include "core/rtds_system.hpp"
#include "dag/generators.hpp"
#include "net/generators.hpp"

namespace rtds {
namespace {

std::shared_ptr<Job> heavy_job(JobId id, Time release, double laxity,
                               std::uint64_t seed) {
  Rng rng(seed);
  auto job = std::make_shared<Job>();
  job->id = id;
  job->dag = make_fork_join(8, CostRange{3.0, 6.0}, rng);
  job->release = release;
  job->deadline = release + laxity * job->dag.total_work();
  return job;
}

SystemConfig cfg_with(EnrollPolicy policy) {
  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;
  cfg.node.enroll_policy = policy;
  cfg.node.sched.observation_window = 150.0;
  return cfg;
}

class ProtocolBothPolicies : public ::testing::TestWithParam<EnrollPolicy> {};

TEST_P(ProtocolBothPolicies, ConcurrentInitiatorsWithOverlappingSpheres) {
  // Line of 5 sites, h=2: sites 1 and 3 share sites {1,2,3} in their
  // spheres. Both initiate distribution at the same instant; locks must
  // serialize them and every lock must be released.
  Rng rng(1);
  Topology topo = make_line(5, DelayRange{1.0, 1.0}, rng);
  RtdsSystem system(std::move(topo), cfg_with(GetParam()));
  std::vector<JobArrival> arrivals;
  // Tight laxity so local tests fail and both sites go distributed.
  arrivals.push_back({1, heavy_job(1, 0.0, 0.45, 11)});
  arrivals.push_back({3, heavy_job(2, 0.0, 0.45, 12)});
  // Saturating pre-load on each initiator so the local test fails.
  arrivals.push_back({1, heavy_job(3, 0.0, 10.0, 13)});
  arrivals.push_back({3, heavy_job(4, 0.0, 10.0, 14)});
  std::sort(arrivals.begin(), arrivals.end(), [](const auto& a, const auto& b) {
    return a.job->id > b.job->id;  // pre-load first via arrival time ties
  });
  system.run(arrivals);
  EXPECT_EQ(system.metrics().arrived, 4u);
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
  // run() verified: no locks held, no queues, no dangling initiations.
}

INSTANTIATE_TEST_SUITE_P(Policies, ProtocolBothPolicies,
                         ::testing::Values(EnrollPolicy::kNack,
                                           EnrollPolicy::kTimeout),
                         [](const auto& info) { return to_string(info.param); });

TEST(Protocol, MessageCategoriesAppearInOrder) {
  Rng rng(2);
  Topology topo = make_star(4, DelayRange{1.0, 1.0}, rng);
  RtdsSystem system(std::move(topo), cfg_with(EnrollPolicy::kNack));
  std::vector<JobArrival> arrivals;
  arrivals.push_back({0, heavy_job(1, 0.0, 10.0, 1)});   // local accept
  arrivals.push_back({0, heavy_job(2, 0.1, 0.5, 2)});    // must distribute
  system.run(arrivals);
  const auto& stats = system.metrics().transport;
  ASSERT_TRUE(stats.by_category.count(kMsgEnroll));
  ASSERT_TRUE(stats.by_category.count(kMsgEnrollReply));
  // Enroll fan-out: one per other sphere member.
  EXPECT_EQ(stats.by_category.at(kMsgEnroll).sends, 4u);
  EXPECT_EQ(stats.by_category.at(kMsgEnrollReply).sends, 4u);
  if (system.metrics().accepted_remote > 0) {
    EXPECT_TRUE(stats.by_category.count(kMsgValidate));
    EXPECT_TRUE(stats.by_category.count(kMsgValidateReply));
    EXPECT_TRUE(stats.by_category.count(kMsgDispatch));
  }
}

TEST(Protocol, LockedSiteQueuesLocalArrivals) {
  // While site 1 is enrolled (locked) by initiator 0, a job arriving at 1
  // must be queued, then processed after unlock — never lost.
  Rng rng(3);
  Topology topo = make_line(3, DelayRange{5.0, 5.0}, rng);  // slow links
  SystemConfig cfg = cfg_with(EnrollPolicy::kNack);
  cfg.node.mapper_compute_time = 2.0;  // stretch the locked window
  RtdsSystem system(std::move(topo), cfg);
  std::vector<JobArrival> arrivals;
  arrivals.push_back({0, heavy_job(1, 0.0, 10.0, 1)});  // fills site 0
  arrivals.push_back({0, heavy_job(2, 0.1, 0.6, 2)});   // distributes, locks 1
  // Arrives at site 1 while it is locked by 0's enrollment (enroll reaches
  // site 1 at t=5; validation keeps it locked for several more time units).
  arrivals.push_back({1, heavy_job(3, 6.0, 10.0, 3)});
  system.run(arrivals);
  EXPECT_EQ(system.metrics().arrived, 3u);
  // Job 3 was eventually decided (queued, not dropped).
  bool saw_job3 = false;
  for (const auto& d : system.decisions()) saw_job3 |= (d.job == 3);
  EXPECT_TRUE(saw_job3);
}

TEST(Protocol, NackPolicyShrinksAcs) {
  // Three initiators in one sphere at once: at least one enrollment gets
  // nacked, so some ACS is smaller than the full sphere.
  Rng rng(4);
  Topology topo = make_star(5, DelayRange{1.0, 1.0}, rng);
  RtdsSystem system(std::move(topo), cfg_with(EnrollPolicy::kNack));
  std::vector<JobArrival> arrivals;
  // Pre-load then three simultaneous distributed attempts from the leaves.
  for (JobId id = 1; id <= 3; ++id)
    arrivals.push_back({static_cast<SiteId>(id), heavy_job(id, 0.0, 10.0, id)});
  for (JobId id = 4; id <= 6; ++id)
    arrivals.push_back(
        {static_cast<SiteId>(id - 3), heavy_job(id, 0.01, 0.6, id)});
  system.run(arrivals);
  EXPECT_EQ(system.metrics().arrived, 6u);
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
  if (system.metrics().acs_size.count() > 0) {
    // Full sphere for a leaf of the 5-star (h=2 covers everything) is 6
    // sites; contention must have produced at least one smaller ACS.
    EXPECT_LT(system.metrics().acs_size.min(), 6.0);
  }
}

TEST(Protocol, RemoteAcceptPlacesTasksOnMultipleSites) {
  Rng rng(5);
  Topology topo = make_star(3, DelayRange{0.5, 0.5}, rng);
  RtdsSystem system(std::move(topo), cfg_with(EnrollPolicy::kNack));
  std::vector<JobArrival> arrivals;
  arrivals.push_back({0, heavy_job(1, 0.0, 10.0, 1)});  // saturate hub
  arrivals.push_back({0, heavy_job(2, 0.1, 0.7, 2)});   // needs remote help
  system.run(arrivals);
  if (system.metrics().accepted_remote > 0) {
    // Some non-initiator site ended up with reservations.
    std::size_t sites_with_work = 0;
    for (SiteId s = 0; s < system.topology().site_count(); ++s)
      if (!system.node(s).scheduler().plan().reservations().empty())
        ++sites_with_work;
    EXPECT_GE(sites_with_work, 2u);
  } else {
    GTEST_SKIP() << "workload did not trigger a remote accept";
  }
}

TEST(Protocol, MapperComputeTimeDelaysDecision) {
  Rng rng(6);
  Topology fast = make_line(3, DelayRange{0.5, 0.5}, rng);
  Topology fast2 = fast;  // same topology, two systems

  SystemConfig quick = cfg_with(EnrollPolicy::kNack);
  quick.node.mapper_compute_time = 0.0;
  SystemConfig slow = cfg_with(EnrollPolicy::kNack);
  slow.node.mapper_compute_time = 5.0;

  auto workload = [] {
    std::vector<JobArrival> arrivals;
    arrivals.push_back({0, heavy_job(1, 0.0, 10.0, 1)});
    arrivals.push_back({0, heavy_job(2, 0.1, 0.8, 2)});
    return arrivals;
  };

  RtdsSystem a(std::move(fast), quick);
  a.run(workload());
  RtdsSystem b(std::move(fast2), slow);
  b.run(workload());
  // Distributed decisions happen strictly later with mapper latency.
  double quick_latency = 0.0, slow_latency = 0.0;
  for (const auto& d : a.decisions())
    if (d.job == 2) quick_latency = d.decision_time - d.arrival;
  for (const auto& d : b.decisions())
    if (d.job == 2) slow_latency = d.decision_time - d.arrival;
  // Not exactly +5.0: the runs may conclude via different protocol paths.
  EXPECT_GT(slow_latency, quick_latency + 2.5);
}

TEST(Protocol, TimeoutPolicyLateAckGetsUnlocked) {
  // Under kTimeout, a site locked by initiator A buffers B's enrollment and
  // acks after unlock; B (already concluded) must unlock it right back.
  // We run a contention-heavy workload and rely on run()'s invariant check
  // (no site left locked) to catch any leak.
  Rng rng(7);
  Topology topo = make_star(6, DelayRange{1.0, 3.0}, rng);
  SystemConfig cfg = cfg_with(EnrollPolicy::kTimeout);
  cfg.node.enroll_timeout_slack = 0.5;
  RtdsSystem system(std::move(topo), cfg);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.08;
  wl.horizon = 300.0;
  wl.laxity_min = 1.2;
  wl.laxity_max = 2.5;
  wl.seed = 17;
  system.run(generate_workload(7, wl));
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
}

TEST(Protocol, SphereRadiusZeroMeansLocalOnly) {
  Rng rng(8);
  Topology topo = make_grid(3, 3, DelayRange{1.0, 1.0}, rng);
  SystemConfig cfg = cfg_with(EnrollPolicy::kNack);
  cfg.node.sphere_radius_h = 0;  // PCS = {self}
  RtdsSystem system(std::move(topo), cfg);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.03;
  wl.horizon = 300.0;
  wl.seed = 23;
  system.run(generate_workload(9, wl));
  EXPECT_EQ(system.metrics().accepted_remote, 0u);
  EXPECT_EQ(system.metrics().transport.total_link_messages, 0u);
}

}  // namespace
}  // namespace rtds
