// Workload generator tests: arrival processes, deadline models, data-volume
// decoration, determinism, and statistical sanity.
#include <gtest/gtest.h>

#include "core/rtds_system.hpp"
#include "core/workload.hpp"
#include "dag/analysis.hpp"
#include "net/generators.hpp"
#include "util/stats.hpp"

namespace rtds {
namespace {

WorkloadConfig base_config(std::uint64_t seed) {
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.02;
  wl.horizon = 1000.0;
  wl.seed = seed;
  return wl;
}

TEST(Workload, SortedUniqueAndInHorizon) {
  const auto arrivals = generate_workload(8, base_config(1));
  ASSERT_FALSE(arrivals.empty());
  std::set<JobId> ids;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& a = arrivals[i];
    EXPECT_LT(a.site, 8u);
    EXPECT_GE(a.job->release, 0.0);
    EXPECT_LT(a.job->release, 1000.0);
    EXPECT_GT(a.job->deadline, a.job->release);
    EXPECT_TRUE(ids.insert(a.job->id).second) << "duplicate job id";
    if (i > 0) EXPECT_GE(a.job->release, arrivals[i - 1].job->release);
  }
}

TEST(Workload, PoissonCountNearExpectation) {
  const auto arrivals = generate_workload(20, base_config(2));
  const double expected = 20 * 0.02 * 1000.0;  // 400
  EXPECT_NEAR(double(arrivals.size()), expected, expected * 0.15);
}

TEST(Workload, DeterministicFromSeed) {
  const auto a = generate_workload(5, base_config(3));
  const auto b = generate_workload(5, base_config(3));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_DOUBLE_EQ(a[i].job->release, b[i].job->release);
    EXPECT_EQ(a[i].job->dag.task_count(), b[i].job->dag.task_count());
  }
  const auto c = generate_workload(5, base_config(4));
  EXPECT_NE(a.size(), c.size());  // overwhelmingly likely
}

TEST(Workload, LaxityBoundsRespectedForCriticalPathModel) {
  WorkloadConfig wl = base_config(5);
  wl.laxity_min = 1.5;
  wl.laxity_max = 2.5;
  for (const auto& a : generate_workload(6, wl)) {
    const double laxity = (a.job->deadline - a.job->release) /
                          critical_path_length(a.job->dag);
    EXPECT_GE(laxity, 1.5 - 1e-9);
    EXPECT_LE(laxity, 2.5 + 1e-9);
  }
}

TEST(Workload, TotalWorkDeadlineModel) {
  WorkloadConfig wl = base_config(6);
  wl.deadline_model = DeadlineModel::kTotalWork;
  wl.laxity_min = 1.2;
  wl.laxity_max = 1.4;
  for (const auto& a : generate_workload(6, wl)) {
    const double laxity =
        (a.job->deadline - a.job->release) / a.job->dag.total_work();
    EXPECT_GE(laxity, 1.2 - 1e-9);
    EXPECT_LE(laxity, 1.4 + 1e-9);
  }
  // Total-work deadlines are always locally feasible on an idle site, so
  // a light workload should be fully guaranteed by LOCAL-style tests.
  Rng rng(6);
  Topology topo = make_grid(3, 3, DelayRange{0.5, 1.0}, rng);
  wl.arrival_rate_per_site = 0.002;
  RtdsSystem system(std::move(topo), SystemConfig{});
  const auto arrivals = generate_workload(9, wl);
  system.run(arrivals);
  EXPECT_GT(system.metrics().guarantee_ratio(), 0.95);
}

TEST(Workload, TaskCountBounds) {
  WorkloadConfig wl = base_config(7);
  wl.min_tasks = 6;
  wl.max_tasks = 9;
  wl.shape_mix = {DagShape::kChain};  // chain honours the size exactly
  for (const auto& a : generate_workload(4, wl)) {
    EXPECT_GE(a.job->dag.task_count(), 6u);
    EXPECT_LE(a.job->dag.task_count(), 9u);
  }
}

TEST(Workload, BurstyHasHigherVarianceThanPoisson) {
  WorkloadConfig poisson = base_config(8);
  WorkloadConfig bursty = base_config(8);
  bursty.arrival_process = ArrivalProcess::kBursty;
  bursty.burst_multiplier = 10.0;

  auto window_count_variance = [](const std::vector<JobArrival>& arrivals) {
    // Count arrivals in 50-unit windows, return the sample variance.
    std::vector<double> counts(20, 0.0);
    for (const auto& a : arrivals) {
      const auto w = static_cast<std::size_t>(a.job->release / 50.0);
      if (w < counts.size()) counts[w] += 1.0;
    }
    RunningStat st;
    for (double c : counts) st.add(c);
    return st.variance() / std::max(1.0, st.mean());  // index of dispersion
  };
  const auto p = generate_workload(20, poisson);
  const auto b = generate_workload(20, bursty);
  EXPECT_GT(window_count_variance(b), 1.8 * window_count_variance(p));
}

TEST(Workload, BurstySystemRunStaysSound) {
  Rng rng(9);
  Topology topo = make_grid(3, 3, DelayRange{0.3, 0.8}, rng);
  WorkloadConfig wl = base_config(9);
  wl.arrival_process = ArrivalProcess::kBursty;
  wl.horizon = 600.0;
  RtdsSystem system(std::move(topo), SystemConfig{});
  system.run(generate_workload(9, wl));
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
}

TEST(Workload, DataVolumeDecoration) {
  WorkloadConfig wl = base_config(10);
  wl.data_volume_min = 2.0;
  wl.data_volume_max = 7.0;
  for (const auto& a : generate_workload(4, wl)) {
    for (const auto& arc : a.job->dag.arcs()) {
      EXPECT_GE(arc.data_volume, 2.0);
      EXPECT_LE(arc.data_volume, 7.0);
    }
  }
  // No decoration by default.
  for (const auto& a : generate_workload(2, base_config(10)))
    for (const auto& arc : a.job->dag.arcs())
      EXPECT_DOUBLE_EQ(arc.data_volume, 0.0);
}

TEST(Workload, VolumesFlowIntoVolumeAwareSystem) {
  Rng rng(11);
  Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_site();
  for (SiteId i = 0; i < 4; ++i)
    topo.add_link(i, (i + 1) % 4, 0.3, /*throughput=*/20.0);
  WorkloadConfig wl = base_config(11);
  wl.horizon = 400.0;
  wl.data_volume_min = 1.0;
  wl.data_volume_max = 10.0;
  SystemConfig cfg;
  cfg.node.mapper.account_data_volumes = true;
  cfg.node.mapper.link_throughput = 20.0;
  RtdsSystem system(std::move(topo), cfg);
  system.run(generate_workload(4, wl));
  EXPECT_EQ(system.metrics().deadline_misses, 0u);
}

TEST(Workload, InvalidConfigsRejected) {
  WorkloadConfig wl = base_config(12);
  wl.laxity_min = 0.0;
  EXPECT_THROW(generate_workload(2, wl), ContractViolation);
  wl = base_config(12);
  wl.min_tasks = 5;
  wl.max_tasks = 4;
  EXPECT_THROW(generate_workload(2, wl), ContractViolation);
  wl = base_config(12);
  wl.arrival_process = ArrivalProcess::kBursty;
  wl.burst_multiplier = 0.5;
  EXPECT_THROW(generate_workload(2, wl), ContractViolation);
  wl = base_config(12);
  wl.shape_mix = {};
  EXPECT_THROW(generate_workload(2, wl), ContractViolation);
}

}  // namespace
}  // namespace rtds
