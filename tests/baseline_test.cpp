// Baseline scheduler tests: LOCAL, CENTRAL, BID, RANDOM produce sound
// metrics, and the expected dominance ordering holds on a common workload.
#include <gtest/gtest.h>

#include "baseline/broadcast.hpp"
#include "baseline/centralized.hpp"
#include "baseline/local_only.hpp"
#include "baseline/offload.hpp"
#include "core/rtds_system.hpp"
#include "net/generators.hpp"

namespace rtds {
namespace {

struct Bench {
  Topology topo;
  std::vector<JobArrival> arrivals;
};

Bench make_bench(double rate, std::uint64_t seed) {
  Rng rng(seed);
  Bench b;
  b.topo = make_grid(4, 4, DelayRange{0.5, 1.5}, rng);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = rate;
  wl.horizon = 600.0;
  wl.laxity_min = 1.3;
  wl.laxity_max = 3.5;
  wl.seed = seed;
  b.arrivals = generate_workload(b.topo.site_count(), wl);
  return b;
}

TEST(LocalOnly, CountsAreConsistent) {
  const Bench b = make_bench(0.02, 1);
  const auto m = run_local_only(b.topo, b.arrivals, LocalSchedulerConfig{});
  EXPECT_EQ(m.arrived, b.arrivals.size());
  EXPECT_EQ(m.arrived, m.accepted() + m.rejected);
  EXPECT_EQ(m.accepted_remote, 0u);
  EXPECT_EQ(m.deadline_misses, 0u);
  EXPECT_EQ(m.msgs_per_job.max(), 0.0);  // no cooperation, no messages
}

TEST(LocalOnly, AcceptsEverythingUnderTrivialLoad) {
  // Chains only: total work == critical path, so any laxity > 1 job fits an
  // idle site. (Wide DAGs can be locally infeasible at *any* load — their
  // window can be smaller than their total work; that is the paper's whole
  // motivation for distribution.)
  Rng rng(2);
  Bench b;
  b.topo = make_grid(4, 4, DelayRange{0.5, 1.5}, rng);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = 0.001;
  wl.horizon = 600.0;
  wl.shape_mix = {DagShape::kChain};
  wl.laxity_min = 1.3;
  wl.laxity_max = 3.0;
  wl.seed = 2;
  b.arrivals = generate_workload(b.topo.site_count(), wl);
  const auto m = run_local_only(b.topo, b.arrivals, LocalSchedulerConfig{});
  EXPECT_EQ(m.guarantee_ratio(), 1.0);
}

TEST(Centralized, UpperBoundBeatsLocal) {
  const Bench b = make_bench(0.03, 3);
  const auto local = run_local_only(b.topo, b.arrivals, LocalSchedulerConfig{});
  const auto central =
      run_centralized(b.topo, b.arrivals, CentralizedConfig{});
  EXPECT_GE(central.guarantee_ratio(), local.guarantee_ratio());
  EXPECT_EQ(central.deadline_misses, 0u);
  EXPECT_EQ(central.arrived, b.arrivals.size());
}

TEST(Centralized, SphereLimitedIsNoBetterThanUnlimited) {
  const Bench b = make_bench(0.03, 4);
  CentralizedConfig limited;
  limited.sphere_radius_h = 1;
  const auto lim = run_centralized(b.topo, b.arrivals, limited);
  const auto full = run_centralized(b.topo, b.arrivals, CentralizedConfig{});
  EXPECT_LE(lim.guarantee_ratio(), full.guarantee_ratio() + 1e-12);
}

TEST(Centralized, UsesRemoteSitesUnderLoad) {
  const Bench b = make_bench(0.05, 5);
  const auto m = run_centralized(b.topo, b.arrivals, CentralizedConfig{});
  EXPECT_GT(m.accepted_remote, 0u);
}

class OffloadPolicies : public ::testing::TestWithParam<OffloadPolicy> {};

TEST_P(OffloadPolicies, SoundMetricsAndNoMisses) {
  const Bench b = make_bench(0.03, 6);
  OffloadConfig cfg;
  cfg.policy = GetParam();
  const auto m = run_offload(b.topo, b.arrivals, cfg);
  EXPECT_EQ(m.arrived, b.arrivals.size());
  EXPECT_EQ(m.arrived, m.accepted() + m.rejected);
  EXPECT_EQ(m.deadline_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Both, OffloadPolicies,
                         ::testing::Values(OffloadPolicy::kBestSurplus,
                                           OffloadPolicy::kRandom),
                         [](const auto& info) { return to_string(info.param); });

TEST(Offload, BidBeatsLocalUnderLoad) {
  const Bench b = make_bench(0.04, 7);
  const auto local = run_local_only(b.topo, b.arrivals, LocalSchedulerConfig{});
  OffloadConfig cfg;
  cfg.policy = OffloadPolicy::kBestSurplus;
  const auto bid = run_offload(b.topo, b.arrivals, cfg);
  EXPECT_GT(bid.guarantee_ratio(), local.guarantee_ratio());
  EXPECT_GT(bid.accepted_remote, 0u);
  EXPECT_GT(bid.transport.total_link_messages, 0u);
}

TEST(Offload, MoreAttemptsNeverHurtAcceptance) {
  const Bench b = make_bench(0.05, 8);
  OffloadConfig one;
  one.max_attempts = 1;
  OffloadConfig three;
  three.max_attempts = 3;
  const auto m1 = run_offload(b.topo, b.arrivals, one);
  const auto m3 = run_offload(b.topo, b.arrivals, three);
  // Not strictly monotone in theory (different accept sets shift load), but
  // across a whole workload attempts should not massively hurt.
  EXPECT_GE(m3.guarantee_ratio() + 0.05, m1.guarantee_ratio());
}


TEST(Broadcast, SoundMetricsAndNoMisses) {
  const Bench b = make_bench(0.03, 10);
  BroadcastConfig cfg;
  const auto m = run_broadcast(b.topo, b.arrivals, cfg);
  EXPECT_EQ(m.arrived, b.arrivals.size());
  EXPECT_EQ(m.arrived, m.accepted() + m.rejected);
  EXPECT_EQ(m.deadline_misses, 0u);
  // Periodic flooding dominates the transport budget.
  EXPECT_GT(m.transport.by_category.at(21).link_messages, 0u);
}

TEST(Broadcast, FloodCostGrowsWithNetworkSize) {
  auto flood_messages = [](std::size_t side) {
    Rng rng(4);
    Topology topo = make_grid(side, side, DelayRange{0.5, 1.0}, rng);
    WorkloadConfig wl;
    wl.arrival_rate_per_site = 0.01;
    wl.horizon = 200.0;
    wl.seed = 4;
    const auto arrivals = generate_workload(topo.site_count(), wl);
    BroadcastConfig cfg;
    const auto m = run_broadcast(topo, arrivals, cfg);
    // Normalize by job count for a fair per-job figure.
    return double(m.transport.total_link_messages) / double(m.arrived);
  };
  const double small = flood_messages(3);
  const double large = flood_messages(6);
  EXPECT_GT(large, 2.0 * small);  // superlinear per-job cost growth
}

TEST(Broadcast, BeatsLocalUnderLoad) {
  const Bench b = make_bench(0.04, 11);
  const auto local = run_local_only(b.topo, b.arrivals, LocalSchedulerConfig{});
  BroadcastConfig cfg;
  const auto bcast = run_broadcast(b.topo, b.arrivals, cfg);
  EXPECT_GT(bcast.guarantee_ratio(), local.guarantee_ratio());
}

TEST(Broadcast, StaleTableCostsAcceptancesVsFreshBids) {
  // With a long broadcast period the table is stale; fresh per-job bidding
  // (BID) should do at least as well on acceptance.
  const Bench b = make_bench(0.05, 12);
  BroadcastConfig stale;
  stale.broadcast_period = 200.0;  // nearly static table
  const auto bcast = run_broadcast(b.topo, b.arrivals, stale);
  OffloadConfig bid_cfg;
  const auto bid = run_offload(b.topo, b.arrivals, bid_cfg);
  EXPECT_GE(bid.guarantee_ratio() + 0.03, bcast.guarantee_ratio());
}

TEST(Comparison, ExpectedDominanceOrdering) {
  // The paper's qualitative claim (§14): cooperation accepts more jobs than
  // local-only, and the omniscient centralized scheduler bounds everyone.
  const Bench b = make_bench(0.04, 9);

  const auto local = run_local_only(b.topo, b.arrivals, LocalSchedulerConfig{});
  OffloadConfig bid_cfg;
  const auto bid = run_offload(b.topo, b.arrivals, bid_cfg);
  const auto central = run_centralized(b.topo, b.arrivals, CentralizedConfig{});

  SystemConfig rtds_cfg;
  rtds_cfg.node.sphere_radius_h = 2;
  RtdsSystem rtds(b.topo, rtds_cfg);
  rtds.run(b.arrivals);

  EXPECT_GT(rtds.metrics().guarantee_ratio(), local.guarantee_ratio());
  EXPECT_GE(central.guarantee_ratio() + 0.02,
            rtds.metrics().guarantee_ratio());
  EXPECT_GT(bid.guarantee_ratio(), local.guarantee_ratio());
}

}  // namespace
}  // namespace rtds
