#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace rtds {
namespace {

// ---------------------------------------------------------------- time ----

TEST(TimeCompare, BasicOrdering) {
  EXPECT_TRUE(time_le(1.0, 1.0));
  EXPECT_TRUE(time_le(1.0, 1.0 + kTimeEps / 2));
  EXPECT_TRUE(time_le(1.0 + kTimeEps / 2, 1.0));
  EXPECT_FALSE(time_lt(1.0, 1.0));
  EXPECT_TRUE(time_lt(1.0, 1.0 + 10 * kTimeEps));
  EXPECT_TRUE(time_eq(2.0, 2.0 + kTimeEps / 2));
  EXPECT_FALSE(time_eq(2.0, 2.1));
  EXPECT_TRUE(time_gt(3.0, 2.0));
  EXPECT_TRUE(time_ge(2.0, 2.0));
}

TEST(TimeCompare, ClampNonneg) {
  EXPECT_EQ(clamp_nonneg(-kTimeEps / 2), 0.0);
  EXPECT_EQ(clamp_nonneg(1.5), 1.5);
  EXPECT_LT(clamp_nonneg(-1.0), 0.0);  // real negatives pass through
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, Uniform01Range) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stat.mean(), 3.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(6);
  for (double mean : {2.0, 80.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += double(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(8);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(10);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ContractViolations) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.uniform_int(2, 1), ContractViolation);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), ContractViolation);
}

// --------------------------------------------------------------- stats ----

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyBehaviour) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(12);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(double(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, QuantileShorthands) {
  Samples s;
  for (int i = 1; i <= 1000; ++i) s.add(double(i));
  EXPECT_DOUBLE_EQ(s.p50(), 500.0);
  EXPECT_DOUBLE_EQ(s.p95(), 950.0);
  EXPECT_DOUBLE_EQ(s.p99(), 990.0);
}

TEST(Samples, AddAfterQueryResorts) {
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);  // forces a sort
  s.add(9.0);  // must invalidate the sorted state
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Samples, MergeMatchesSequential) {
  Rng rng(13);
  Samples all, a, b;
  for (int i = 0; i < 999; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 3 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Quantiles over the merged multiset are bit-identical to serial.
  EXPECT_EQ(a.p50(), all.p50());
  EXPECT_EQ(a.p95(), all.p95());
  EXPECT_EQ(a.p99(), all.p99());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(42.0);   // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
  EXPECT_FALSE(h.render().empty());
}

// --------------------------------------------------------------- table ----

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"x", Table::num(1.5, 1)});
  t.add_row({"longer", Table::num(std::size_t{42})});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

// --------------------------------------------------------------- flags ----

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--count=7", "--verbose",
                        "positional"};
  Flags flags(5, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.get_int("count", 0), 7);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_string("missing", "def"), "def");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  flags.check_unused();
}

TEST(Flags, UnknownFlagRejected) {
  const char* argv[] = {"prog", "--oops=1"};
  Flags flags(2, argv);
  EXPECT_THROW(flags.check_unused(), ContractViolation);
}

TEST(Flags, MalformedNumberRejected) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags flags(2, argv);
  EXPECT_THROW(flags.get_int("n", 0), ContractViolation);
}

TEST(Flags, RepeatableValueFlag) {
  // --set consumes the next argv element when bare (its values contain '='
  // themselves); get_all sees every occurrence in order, in both forms.
  const char* argv[] = {"prog", "--set", "a=1", "--set=b=2", "--set", "a=3"};
  Flags flags(6, argv, {"set"});
  const auto all = flags.get_all("set");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "a=1");
  EXPECT_EQ(all[1], "b=2");
  EXPECT_EQ(all[2], "a=3");
  EXPECT_TRUE(flags.positional().empty());
  flags.check_unused();  // one lookup covers every occurrence

  const char* dangling[] = {"prog", "--set"};
  EXPECT_THROW(Flags(2, dangling, {"set"}), ContractViolation);
}

// ------------------------------------------------------------ flat map ----

TEST(FlatMapTest, InsertFindGrow) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);

  // Push through several growth rehashes.
  for (std::uint64_t k = 0; k < 1000; ++k) map[k * 3] += static_cast<int>(k);
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const int* v = map.find(k * 3);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  EXPECT_EQ(map.find(1), nullptr);
  EXPECT_FALSE(map.contains(2));

  // operator[] default-constructs on first touch, like std::map.
  EXPECT_EQ(map[9999], 0);
  EXPECT_EQ(map.size(), 1001u);
}

TEST(FlatMapTest, SortedItemsMatchesMapOrder) {
  FlatMap<std::uint64_t, int> flat;
  std::map<std::uint64_t, int> reference;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    flat[key] = i;
    reference[key] = i;
  }
  const auto items = flat.sorted_items();
  ASSERT_EQ(items.size(), reference.size());
  std::size_t i = 0;
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(items[i].first, key);
    EXPECT_EQ(items[i].second, value);
    ++i;
  }
}

TEST(FlatMapTest, ReserveAvoidsGrowthAndZeroKeyWorks) {
  FlatMap<std::uint64_t, int> map;
  map.reserve(100);
  map[0] = 42;  // 0 must be a valid key (occupancy is a flag, not a sentinel)
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 42);
}

TEST(FlatSetTest, InsertContains) {
  FlatSet<std::uint64_t> set;
  EXPECT_FALSE(set.contains(5));
  set.insert(5);
  set.insert(5);
  EXPECT_TRUE(set.contains(5));
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace rtds
