// E9: the open-system steady-state experiment (src/load/), ROADMAP item 2.
//
// Everything E1–E8 measures is a closed batch; E9 instead streams an
// unbounded arrival process into the protocol for a fixed duration and
// reads tumbling-window steady-state metrics: post-warm-up sojourn
// quantiles, shed counts under bounded admission queues, and the
// saturation knee (first window where p99 sojourn diverges). Registered
// from register_builtin_scenarios() like every built-in.
//
// The run length honours load::scenario_duration(), so
// `rtds_exp --scenario=e9_steady_state --duration=T` bounds wall clock
// without changing the schema (the parallel sweep and the --verify serial
// re-run read the same override).
#include <ostream>

#include "exp/scenario.hpp"
#include "exp/scenarios.hpp"
#include "load/engine.hpp"
#include "net/generators.hpp"
#include "policy/policy.hpp"
#include "util/table.hpp"

namespace rtds::exp {

namespace {

using policy::ParamMap;
using policy::PolicyRegistry;

constexpr std::size_t kSites = 36;  // 6x6 grid, the E8 footprint

const std::vector<std::string>& shed_policies() {
  static const std::vector<std::string> names = {
      "drop_newest", "drop_lowest_laxity", "reject_enroll"};
  return names;
}

/// The E9 condition: topology exactly as make_condition builds it (same
/// Rng(seed) -> make_net draw order), workload as an open ArrivalSpec.
Topology e9_topology(std::uint64_t seed) {
  Rng rng(seed);
  return make_net(NetShape::kGrid, kSites, DelayRange{0.5, 2.0}, rng);
}

load::ArrivalSpec e9_arrivals(load::ArrivalKind kind, double rate,
                              std::uint64_t seed) {
  load::ArrivalSpec spec;
  spec.kind = kind;
  spec.site_count = kSites;
  spec.workload.arrival_rate_per_site = rate;
  spec.workload.laxity_min = 2.0;
  spec.workload.laxity_max = 6.0;
  spec.workload.seed = seed;
  return spec;
}

/// One open run: rtds (h=2) with a bounded admission queue and the given
/// shed policy, streamed for `duration`.
load::OpenRunResult e9_run(load::ArrivalKind kind, double rate,
                           const std::string& shed, std::uint64_t seed,
                           Time duration) {
  const Topology topo = e9_topology(seed);
  const load::ArrivalSpec spec = e9_arrivals(kind, rate, seed);
  const auto source = load::make_arrival_source(spec);

  const auto policy = PolicyRegistry::instance().create("rtds");
  const ParamMap params = ParamMap::parse_pairs(
      {{"h", "2"}, {"shed.cap", "4"}, {"shed.policy", shed}},
      policy->describe_params());

  load::OpenConfig ocfg;
  ocfg.duration = duration;
  ocfg.window.warmup = 100.0;
  ocfg.window.width = 50.0;
  return load::run_open_rtds(topo, *source, ocfg, params);
}

double shed_count(const RunMetrics& m) {
  const auto it =
      m.reject_by_reason.find(static_cast<int>(RejectReason::kShed));
  return it == m.reject_by_reason.end() ? 0.0
                                        : static_cast<double>(it->second);
}

void register_e9_sweep() {
  ScenarioSpec spec;
  spec.name = "e9_steady_state";
  spec.description =
      "open-system steady state: arrival process x offered load x shed "
      "policy (rtds h=2, shed.cap=4, 6x6 grid, windowed sojourn quantiles; "
      "honours --duration)";
  spec.axes = {
      GridAxis::labeled("arrival", "arrival", {"poisson", "bursty", "diurnal"}),
      GridAxis::numeric("rate/site", "rate", {0.02, 0.08}, 3),
      GridAxis::labeled("shed", "shed", shed_policies())};
  spec.metrics = {
      MetricSpec{"jobs", "jobs", 0},
      MetricSpec{"accept%", "guarantee_ratio", 1, 100.0},
      MetricSpec{"shed", "shed", 0},
      MetricSpec{"p50 sojourn", "sojourn_p50", 2},
      MetricSpec{"p95 sojourn", "sojourn_p95", 2},
      MetricSpec{"p99 sojourn", "sojourn_p99", 2},
      MetricSpec{"knee win", "knee_window", 0},  // -1 = never diverged
  };
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    const auto kind = static_cast<load::ArrivalKind>(
        static_cast<std::size_t>(p.value(0)));
    const auto& shed = shed_policies()[static_cast<std::size_t>(p.value(2))];
    const load::OpenRunResult r = e9_run(
        kind, p.value(1), shed, seed, load::scenario_duration(600.0));
    return {static_cast<double>(r.metrics.arrived),
            r.metrics.guarantee_ratio(),
            shed_count(r.metrics),
            r.steady.p50,
            r.steady.p95,
            r.steady.p99,
            static_cast<double>(r.steady.knee_window)};
  };
  Registry::instance().add(std::move(spec));
}

/// The saturation sweep: walk offered load upward per shed policy and
/// report the knee — the first rate (and window) where p99 sojourn
/// diverges from the policy's low-load baseline.
void register_e9_saturation() {
  Registry::instance().add_report(
      "e9_saturation",
      "saturation sweep: offered load walked upward per shed policy; "
      "per-cell steady-state table plus each policy's knee (honours "
      "--duration)",
      [](std::ostream& os) {
        const std::vector<double> rates = {0.02, 0.04, 0.08, 0.12, 0.16};
        const Time duration = load::scenario_duration(400.0);
        constexpr std::uint64_t kSeed = 42;

        os << "E9a saturation sweep (rtds h=2, shed.cap=4, poisson, 6x6 "
              "grid, duration "
           << Table::num(duration, 0) << ", seed " << kSeed << ")\n\n";

        Table table({"shed", "rate/site", "jobs", "accept%", "shed#",
                     "p99 sojourn", "knee win"});
        struct Knee {
          double rate = 0.0;
          std::ptrdiff_t window = -1;
        };
        std::vector<Knee> knees(shed_policies().size());
        for (std::size_t s = 0; s < shed_policies().size(); ++s) {
          const auto& shed = shed_policies()[s];
          for (const double rate : rates) {
            const load::OpenRunResult r = e9_run(
                load::ArrivalKind::kPoisson, rate, shed, kSeed, duration);
            table.add_row({shed, Table::num(rate, 3),
                           Table::num(r.metrics.arrived),
                           Table::num(100.0 * r.metrics.guarantee_ratio(), 1),
                           Table::num(shed_count(r.metrics), 0),
                           Table::num(r.steady.p99, 2),
                           Table::num(static_cast<long long>(
                               r.steady.knee_window))});
            if (knees[s].window < 0 && r.steady.knee_window >= 0) {
              knees[s].rate = rate;
              knees[s].window = r.steady.knee_window;
            }
          }
        }
        table.print(os);

        os << "\nknee per policy (first rate whose run diverged; window "
              "index is post-warm-up)\n\n";
        Table summary({"shed", "knee rate/site", "knee window"});
        for (std::size_t s = 0; s < shed_policies().size(); ++s) {
          summary.add_row(
              {shed_policies()[s],
               knees[s].window < 0 ? "-" : Table::num(knees[s].rate, 3),
               knees[s].window < 0
                   ? "-"
                   : Table::num(static_cast<long long>(knees[s].window))});
        }
        summary.print(os);
      });
}

}  // namespace

void register_e9_steady_state() {
  register_e9_sweep();
  register_e9_saturation();
}

}  // namespace rtds::exp
