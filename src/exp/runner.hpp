// Parallel trial runner.
//
// Expands a scenario's grid × replicates into independent trials, fans
// them across std::thread workers (each trial constructs its own
// RtdsSystem / baseline state inside the trial function — nothing is
// shared), and reduces per-trial metrics into per-grid-point accumulators
// with RunningStat::merge semantics.
//
// Determinism contract (see DESIGN.md): a trial's result depends only on
// (grid point, seed), both pure functions of the trial index; workers
// write results into a pre-sized slot array; reduction then walks the
// slots in trial-index order on the calling thread. Aggregates are
// therefore bit-identical for any worker count, including 1.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "exp/scenario.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace rtds::exp {

/// Per-(grid point, metric) aggregate: moments + exact quantiles over the
/// replicate values (NaN trial values are skipped, leaving count() short).
struct AggregateCell {
  RunningStat stat;
  Samples samples;
};

/// All aggregates of one grid point, in ScenarioSpec::metrics order.
struct AggregateRow {
  GridPoint point;
  std::vector<AggregateCell> cells;  ///< ScenarioSpec::metrics order
};

/// Observability capture for one run (attach via RunOptions::observe).
/// The runner binds an obs::Scope with a private MetricsBuffer (and,
/// unless `record_traces` is off, a private TraceRecorder) around every
/// trial, then reduces in trial-index order: metrics merge into `metrics`
/// (parallel-combine, worker-count invariant) and `traces` holds one
/// recorder per trial, trial order == pid order in the Chrome export.
/// With -DRTDS_OBS=OFF both stay empty and trial output is untouched.
struct RunObservation {
  obs::MetricsBuffer metrics;
  std::vector<obs::TraceRecorder> traces;
  bool record_traces = true;  ///< false: counters only, no event log
};

/// Execution knobs for one run_scenario call.
struct RunOptions {
  std::size_t jobs = 1;        ///< worker threads (1 = serial, in-thread)
  std::size_t replicates = 0;  ///< override; 0 = ScenarioSpec::replicates
  /// Borrowed observability capture, or nullptr (the default: trials run
  /// with no obs binding, so instrumentation costs one TLS load each).
  RunObservation* observe = nullptr;
  /// Share one serialized bring-up (routing tables + spheres) across every
  /// trial on the same (topology, h) via snap::warm_start (DESIGN.md §14).
  /// Bit-identical to cold trials — pinned by tests/warm_start_test.cpp.
  bool warm_start = false;
  /// Crash recovery: append every completed trial (values + obs metrics
  /// when observing) to this snap::SweepJournal file. Empty = off.
  std::string journal_path;
  /// With journal_path set: load the journal's completed trials instead of
  /// re-running them, then continue the sweep. The journal must belong to
  /// this exact sweep (scenario, grid, replicates, seed policy, observe
  /// mode — pinned by its header hash); a missing or foreign journal
  /// throws ContractViolation.
  bool resume = false;
};

/// Runs every trial of `spec` and returns one aggregate row per grid
/// point, in grid order. Exceptions thrown by trial functions propagate
/// (the first one, after all workers have stopped).
std::vector<AggregateRow> run_scenario(const ScenarioSpec& spec,
                                       const RunOptions& opts = {});

/// True iff the two aggregate sets are bit-identical (count, sum, mean,
/// variance, min/max and every stored sample compare exactly). This is the
/// parallel == serial assertion exposed to tests and `rtds_exp --verify`.
bool aggregates_identical(const std::vector<AggregateRow>& a,
                          const std::vector<AggregateRow>& b);

/// Convenience for the thin bench drivers: runs the named registered
/// scenario and prints its title (when set) and legacy-format table.
void run_and_print(const std::string& name, std::ostream& os,
                   const RunOptions& opts = {});

}  // namespace rtds::exp
