#include "exp/condition.hpp"

namespace rtds::exp {

Condition make_condition(const ConditionSpec& spec) {
  Rng rng(spec.seed);
  Condition c;
  c.topo = make_net(spec.net, spec.sites,
                    DelayRange{spec.delay_min, spec.delay_max}, rng);
  WorkloadConfig wl;
  wl.arrival_rate_per_site = spec.rate;
  wl.horizon = spec.horizon;
  wl.laxity_min = spec.laxity_min;
  wl.laxity_max = spec.laxity_max;
  wl.min_tasks = spec.min_tasks;
  wl.max_tasks = spec.max_tasks;
  wl.seed = spec.seed;
  c.arrivals = generate_workload(c.topo.site_count(), wl);
  return c;
}

RunMetrics run_rtds(const Condition& c, const SystemConfig& cfg) {
  RtdsSystem system(c.topo, cfg);
  system.run(c.arrivals);
  return system.metrics();
}

ConditionSpec offload_regime() {
  ConditionSpec spec;
  spec.rate = 0.025;
  spec.laxity_min = 2.0;
  spec.laxity_max = 6.0;
  spec.delay_min = 0.5;
  spec.delay_max = 2.0;
  return spec;
}

ConditionSpec parallel_regime() {
  ConditionSpec spec;
  spec.rate = 0.015;
  spec.laxity_min = 1.2;
  spec.laxity_max = 1.8;
  spec.delay_min = 0.05;
  spec.delay_max = 0.2;
  return spec;
}

}  // namespace rtds::exp
