#include "exp/condition.hpp"

#include "load/load_params.hpp"

namespace rtds::exp {

Topology make_topology(const ConditionSpec& spec) {
  Rng rng(spec.seed);
  return make_net(spec.net, spec.sites,
                  DelayRange{spec.delay_min, spec.delay_max}, rng);
}

WorkloadConfig workload_config(const ConditionSpec& spec) {
  WorkloadConfig wl;
  wl.arrival_rate_per_site = spec.rate;
  wl.horizon = spec.horizon;
  wl.laxity_min = spec.laxity_min;
  wl.laxity_max = spec.laxity_max;
  wl.min_tasks = spec.min_tasks;
  wl.max_tasks = spec.max_tasks;
  wl.seed = spec.seed;
  wl.arrival_process = spec.process;
  wl.burst_on_mean = spec.burst_on_mean;
  wl.burst_off_mean = spec.burst_off_mean;
  wl.burst_multiplier = spec.burst_multiplier;
  wl.deadline_model = spec.deadline_model;
  return wl;
}

void apply_workload_params(const policy::ParamMap& params,
                           ConditionSpec& spec) {
  WorkloadConfig wl = workload_config(spec);
  load::apply_workload_params(params, wl);
  spec.process = wl.arrival_process;
  spec.burst_on_mean = wl.burst_on_mean;
  spec.burst_off_mean = wl.burst_off_mean;
  spec.burst_multiplier = wl.burst_multiplier;
  spec.deadline_model = wl.deadline_model;
}

Condition make_condition(const ConditionSpec& spec) {
  Condition c;
  c.topo = make_topology(spec);
  c.arrivals = generate_workload(c.topo.site_count(), workload_config(spec));
  return c;
}

RunMetrics run_rtds(const Condition& c, const SystemConfig& cfg) {
  RtdsSystem system(c.topo, cfg);
  system.run(c.arrivals);
  return system.metrics();
}

ConditionSpec offload_regime() {
  ConditionSpec spec;
  spec.rate = 0.025;
  spec.laxity_min = 2.0;
  spec.laxity_max = 6.0;
  spec.delay_min = 0.5;
  spec.delay_max = 2.0;
  return spec;
}

ConditionSpec parallel_regime() {
  ConditionSpec spec;
  spec.rate = 0.015;
  spec.laxity_min = 1.2;
  spec.laxity_max = 1.8;
  spec.delay_min = 0.05;
  spec.delay_max = 0.2;
  return spec;
}

}  // namespace rtds::exp
