#include "exp/sinks.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace rtds::exp {

namespace {

/// Shortest representation that parses back to the identical double.
std::string round_trip(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

struct CellStats {
  std::size_t count = 0;
  double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

CellStats cell_stats(const AggregateCell& cell) {
  CellStats s;
  s.count = cell.stat.count();
  if (s.count == 0) return s;
  s.mean = cell.stat.mean();
  s.stddev = cell.stat.stddev();
  s.min = cell.stat.min();
  s.max = cell.stat.max();
  s.p50 = cell.samples.p50();
  s.p95 = cell.samples.p95();
  s.p99 = cell.samples.p99();
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char n = s[++i];
      out += n == 'n' ? '\n' : n == 't' ? '\t' : n;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

double parse_double(const std::string& s) {
  return s.empty() ? 0.0 : std::strtod(s.c_str(), nullptr);
}

/// `begin` = index after an opening quote; returns the index of the real
/// closing quote, skipping backslash escape *pairs* (so a value ending in
/// an escaped backslash terminates correctly).
std::size_t scan_quoted_end(const std::string& s, std::size_t begin) {
  std::size_t i = begin;
  while (i < s.size() && s[i] != '"') i += s[i] == '\\' ? 2 : 1;
  return std::min(i, s.size());
}

/// Extracts the raw text of `"key":<value>` from a JSON line; empty when
/// absent. Good enough for the flat records JsonlSink emits.
std::string json_raw_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  std::size_t begin = pos + needle.size();
  if (line[begin] == '"') {
    const std::size_t end = scan_quoted_end(line, begin + 1);
    return line.substr(begin + 1, end - begin - 1);
  }
  std::size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(begin, end - begin);
}

}  // namespace

void TableSink::write(const ScenarioSpec& spec,
                      const std::vector<AggregateRow>& rows,
                      std::ostream& os) const {
  std::vector<std::string> headers;
  for (const auto& axis : spec.axes) headers.push_back(axis.header);
  for (const auto& metric : spec.metrics) headers.push_back(metric.header);
  Table table(std::move(headers));
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    for (const auto& coord : row.point.coords) cells.push_back(coord.label);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      const AggregateCell& cell = row.cells[m];
      cells.push_back(cell.stat.count() == 0
                          ? "-"
                          : Table::num(cell.stat.mean() * spec.metrics[m].scale,
                                       spec.metrics[m].precision));
    }
    table.add_row(std::move(cells));
  }
  table.print(os);
}

void CsvSink::write(const ScenarioSpec& spec,
                    const std::vector<AggregateRow>& rows,
                    std::ostream& os) const {
  os << "scenario,point";
  for (const auto& axis : spec.axes) os << ',' << axis.key;
  os << ",metric,count,mean,stddev,min,max,p50,p95,p99\n";
  for (const auto& row : rows) {
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      os << spec.name << ',' << row.point.index;
      for (const auto& coord : row.point.coords) {
        RTDS_CHECK_MSG(coord.label.find(',') == std::string::npos,
                       "axis label contains a comma: " << coord.label);
        os << ',' << coord.label;
      }
      const CellStats s = cell_stats(row.cells[m]);
      os << ',' << spec.metrics[m].key << ',' << s.count;
      if (s.count == 0) {
        os << ",,,,,,,";
      } else {
        os << ',' << round_trip(s.mean) << ',' << round_trip(s.stddev) << ','
           << round_trip(s.min) << ',' << round_trip(s.max) << ','
           << round_trip(s.p50) << ',' << round_trip(s.p95) << ','
           << round_trip(s.p99);
      }
      os << '\n';
    }
  }
}

void JsonlSink::write(const ScenarioSpec& spec,
                      const std::vector<AggregateRow>& rows,
                      std::ostream& os) const {
  for (const auto& row : rows) {
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      os << "{\"scenario\":\"" << json_escape(spec.name) << "\",\"point\":"
         << row.point.index << ",\"axes\":{";
      for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        if (a) os << ',';
        // parse_jsonl cuts the axes object at the first '}'; keep braces
        // out of labels (mirrors the CSV sink's comma check).
        RTDS_CHECK_MSG(
            row.point.coords[a].label.find_first_of("{}") ==
                std::string::npos,
            "axis label contains a brace: " << row.point.coords[a].label);
        os << '"' << json_escape(spec.axes[a].key) << "\":\""
           << json_escape(row.point.coords[a].label) << '"';
      }
      const CellStats s = cell_stats(row.cells[m]);
      os << "},\"metric\":\"" << json_escape(spec.metrics[m].key)
         << "\",\"count\":" << s.count;
      if (s.count > 0) {
        os << ",\"mean\":" << round_trip(s.mean)
           << ",\"stddev\":" << round_trip(s.stddev)
           << ",\"min\":" << round_trip(s.min)
           << ",\"max\":" << round_trip(s.max)
           << ",\"p50\":" << round_trip(s.p50)
           << ",\"p95\":" << round_trip(s.p95)
           << ",\"p99\":" << round_trip(s.p99);
      }
      os << "}\n";
    }
  }
}

std::unique_ptr<ResultSink> make_sink(const std::string& name) {
  if (name == "table") return std::make_unique<TableSink>();
  if (name == "csv") return std::make_unique<CsvSink>();
  if (name == "jsonl") return std::make_unique<JsonlSink>();
  RTDS_REQUIRE_MSG(false, "unknown sink " << name
                                          << " (want table|csv|jsonl)");
  return nullptr;
}

std::vector<SinkRecord> parse_csv(std::istream& in) {
  std::vector<SinkRecord> records;
  std::string line;
  RTDS_REQUIRE_MSG(std::getline(in, line), "empty CSV input");
  const auto header = split_csv_line(line);
  std::size_t metric_col = header.size();
  for (std::size_t c = 0; c < header.size(); ++c)
    if (header[c] == "metric") metric_col = c;
  RTDS_REQUIRE_MSG(metric_col + 9 == header.size(),
                   "CSV header lacks the metric/stat columns");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    RTDS_REQUIRE(cells.size() == header.size());
    SinkRecord r;
    r.scenario = cells[0];
    r.point = static_cast<std::size_t>(std::strtoull(cells[1].c_str(),
                                                     nullptr, 10));
    for (std::size_t c = 2; c < metric_col; ++c) r.axes.push_back(cells[c]);
    r.metric = cells[metric_col];
    r.count = static_cast<std::size_t>(
        std::strtoull(cells[metric_col + 1].c_str(), nullptr, 10));
    r.mean = parse_double(cells[metric_col + 2]);
    r.stddev = parse_double(cells[metric_col + 3]);
    r.min = parse_double(cells[metric_col + 4]);
    r.max = parse_double(cells[metric_col + 5]);
    r.p50 = parse_double(cells[metric_col + 6]);
    r.p95 = parse_double(cells[metric_col + 7]);
    r.p99 = parse_double(cells[metric_col + 8]);
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<SinkRecord> parse_jsonl(std::istream& in) {
  std::vector<SinkRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    SinkRecord r;
    r.scenario = json_unescape(json_raw_value(line, "scenario"));
    r.point = static_cast<std::size_t>(
        std::strtoull(json_raw_value(line, "point").c_str(), nullptr, 10));
    // Axis labels, in order, from the "axes" object.
    const auto axes_pos = line.find("\"axes\":{");
    if (axes_pos != std::string::npos) {
      const auto axes_end = line.find('}', axes_pos);
      std::string axes = line.substr(axes_pos + 8, axes_end - axes_pos - 8);
      // Pairs look like "key":"label"; pull every second quoted string.
      std::vector<std::string> strings;
      std::size_t i = 0;
      while ((i = axes.find('"', i)) != std::string::npos) {
        const std::size_t end = scan_quoted_end(axes, i + 1);
        strings.push_back(json_unescape(axes.substr(i + 1, end - i - 1)));
        i = end + 1;
      }
      for (std::size_t s = 1; s < strings.size(); s += 2)
        r.axes.push_back(strings[s]);
    }
    r.metric = json_unescape(json_raw_value(line, "metric"));
    r.count = static_cast<std::size_t>(
        std::strtoull(json_raw_value(line, "count").c_str(), nullptr, 10));
    r.mean = parse_double(json_raw_value(line, "mean"));
    r.stddev = parse_double(json_raw_value(line, "stddev"));
    r.min = parse_double(json_raw_value(line, "min"));
    r.max = parse_double(json_raw_value(line, "max"));
    r.p50 = parse_double(json_raw_value(line, "p50"));
    r.p95 = parse_double(json_raw_value(line, "p95"));
    r.p99 = parse_double(json_raw_value(line, "p99"));
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace rtds::exp
