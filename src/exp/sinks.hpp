// Result sinks: render scenario aggregates as a paper-style ASCII table,
// CSV, or JSON lines.
//
// The table sink reproduces the legacy bench_e* formatting (axis labels +
// per-metric precision/scale from the MetricSpec, "-" for metrics no trial
// measured). CSV and JSONL are long-form — one record per (grid point,
// metric) — and print doubles with max_digits10 precision so a parse-back
// recovers the aggregates bit-for-bit (exp_test round-trips them).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"

namespace rtds::exp {

/// Renders one finished sweep. Sinks are pure formatters: same (spec,
/// rows) in, same bytes out — which is what lets tests pin digests of
/// sink output as determinism evidence.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Writes every row of `rows` (grid order) to `os`.
  virtual void write(const ScenarioSpec& spec,
                     const std::vector<AggregateRow>& rows,
                     std::ostream& os) const = 0;
};

/// Legacy bench table: one row per grid point, one column per axis then
/// per metric (the metric's mean, scaled and formatted per its spec).
class TableSink : public ResultSink {
 public:
  void write(const ScenarioSpec& spec, const std::vector<AggregateRow>& rows,
             std::ostream& os) const override;
};

/// Long-form CSV: header then one row per (grid point, metric) with the
/// full aggregate (count, mean, stddev, min, max, p50, p95, p99). Stat
/// fields are empty when count == 0.
class CsvSink : public ResultSink {
 public:
  void write(const ScenarioSpec& spec, const std::vector<AggregateRow>& rows,
             std::ostream& os) const override;
};

/// JSON lines, one object per (grid point, metric); stat keys are omitted
/// when count == 0.
class JsonlSink : public ResultSink {
 public:
  void write(const ScenarioSpec& spec, const std::vector<AggregateRow>& rows,
             std::ostream& os) const override;
};

/// "table", "csv" or "jsonl". Throws ContractViolation otherwise.
std::unique_ptr<ResultSink> make_sink(const std::string& name);

/// One parsed-back record of the long-form outputs (tests, tooling).
struct SinkRecord {
  std::string scenario;
  std::size_t point = 0;          ///< row-major grid index
  std::vector<std::string> axes;  ///< axis labels, in axis order
  std::string metric;             ///< MetricSpec::key
  std::size_t count = 0;          ///< trials that measured this metric
  double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Parses CsvSink output back; aggregates round-trip bit-for-bit.
std::vector<SinkRecord> parse_csv(std::istream& in);
/// Parses JsonlSink output back; aggregates round-trip bit-for-bit.
std::vector<SinkRecord> parse_jsonl(std::istream& in);

}  // namespace rtds::exp
