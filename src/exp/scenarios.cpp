// The paper's evaluation, expressed as declarative scenarios. Each legacy
// bench_e* sweep is one ScenarioSpec here; the bench binaries are thin
// drivers calling run_and_print over these names. Tables are byte-for-byte
// identical to the pre-subsystem serial output: the legacy sweeps used one
// shared seed (42) for every grid point, which SeedMode::kFixed preserves.
#include "exp/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baseline/broadcast.hpp"
#include "baseline/centralized.hpp"
#include "baseline/local_only.hpp"
#include "baseline/offload.hpp"
#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "net/shortest_paths.hpp"
#include "util/table.hpp"

namespace rtds::exp {

void register_builtin_reports();  // reports.cpp

namespace {

constexpr double kSkip = std::numeric_limits<double>::quiet_NaN();

MetricSpec ratio(std::string header, std::string key) {
  return MetricSpec{std::move(header), std::move(key), 1, 100.0};
}

MetricSpec count(std::string header, std::string key) {
  return MetricSpec{std::move(header), std::move(key), 0, 1.0};
}

SystemConfig h2_config() {
  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;
  return cfg;
}

// ------------------------------------------------------------------- E1 ----

void register_e1() {
  ScenarioSpec spec;
  spec.name = "e1_message_bound";
  spec.description =
      "per-job message cost vs network size (grid, h=2): RTDS stays flat, "
      "the [4]-style broadcast grows";
  spec.axes = {GridAxis::numeric("sites", "sites",
                                 {16, 36, 64, 144, 256, 576, 1024}, 0)};
  spec.metrics = {count("jobs", "jobs"),
                  ratio("ratio%", "guarantee_ratio"),
                  MetricSpec{"msgs/job mean", "msgs_per_job_mean", 1},
                  MetricSpec{"msgs/job max", "msgs_per_job_max", 0},
                  MetricSpec{"sphere bound", "sphere_bound", 0},
                  MetricSpec{"BCAST msgs/job", "bcast_msgs_per_job", 1},
                  count("PCS size max", "pcs_size_max")};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    ConditionSpec cs;
    cs.net = NetShape::kGrid;
    cs.sites = static_cast<std::size_t>(p.value(0));
    cs.rate = 0.02;
    cs.horizon = 400.0;
    cs.laxity_min = 1.5;
    cs.laxity_max = 3.0;
    cs.delay_min = 0.2;
    cs.delay_max = 0.8;
    cs.seed = seed;
    const Condition c = make_condition(cs);

    RtdsSystem system(c.topo, h2_config());
    system.run(c.arrivals);
    const auto& m = system.metrics();

    std::size_t max_pcs = 0, max_hop_diam = 0;
    for (SiteId s = 0; s < c.topo.site_count(); ++s) {
      max_pcs = std::max(max_pcs, system.node(s).pcs().size());
      max_hop_diam =
          std::max(max_hop_diam, system.node(s).pcs().hop_diameter());
    }
    // Analytic per-job bound: 4 sphere-wide rounds (enroll, reply,
    // validate+reply, dispatch) of |PCS|-1 sends, each <= hop-diameter
    // hops, plus unlock slack -> 8 covers every code path.
    const double bound =
        8.0 * static_cast<double>(max_pcs) * static_cast<double>(max_hop_diam);

    // Measured cost of the [4]-style periodic network-wide surplus flood,
    // amortized per job. Skipped above 256 sites: the flood itself is what
    // makes large runs expensive — which is the point.
    double bcast_msgs = kSkip;
    if (c.topo.site_count() <= 256) {
      BroadcastConfig bcfg;
      const auto bm = run_broadcast(c.topo, c.arrivals, bcfg);
      bcast_msgs = static_cast<double>(bm.transport.total_link_messages) /
                   static_cast<double>(bm.arrived);
    }

    return {static_cast<double>(m.arrived),
            m.guarantee_ratio(),
            m.msgs_per_job.mean(),
            m.msgs_per_job.max(),
            bound,
            bcast_msgs,
            static_cast<double>(max_pcs)};
  };
  Registry::instance().add(std::move(spec));
}

// ------------------------------------------------------------------- E2 ----

void register_e2(const std::string& name, std::string title,
                 ConditionSpec base, const std::vector<double>& rates) {
  ScenarioSpec spec;
  spec.name = name;
  spec.title = std::move(title);
  spec.description =
      "guarantee ratio vs offered load, RTDS against all baselines (8x8 "
      "grid, h=2)";
  spec.axes = {GridAxis::numeric("rate/site", "rate", rates, 3)};
  spec.metrics = {count("jobs", "jobs"),          ratio("RTDS%", "rtds"),
                  ratio("LOCAL%", "local"),       ratio("BID%", "bid"),
                  ratio("RANDOM%", "random"),     ratio("BCAST%", "bcast"),
                  ratio("CENTRAL%", "central")};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [base](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = base;
    cs.rate = p.value(0);
    cs.seed = seed;
    const Condition c = make_condition(cs);

    const auto rtds = run_rtds(c, h2_config());
    const auto local =
        run_local_only(c.topo, c.arrivals, LocalSchedulerConfig{});
    OffloadConfig bid_cfg;
    const auto bid = run_offload(c.topo, c.arrivals, bid_cfg);
    OffloadConfig rnd_cfg;
    rnd_cfg.policy = OffloadPolicy::kRandom;
    const auto rnd = run_offload(c.topo, c.arrivals, rnd_cfg);
    BroadcastConfig bcast_cfg;
    const auto bcast = run_broadcast(c.topo, c.arrivals, bcast_cfg);
    const auto central =
        run_centralized(c.topo, c.arrivals, CentralizedConfig{});

    return {static_cast<double>(rtds.arrived), rtds.guarantee_ratio(),
            local.guarantee_ratio(),           bid.guarantee_ratio(),
            rnd.guarantee_ratio(),             bcast.guarantee_ratio(),
            central.guarantee_ratio()};
  };
  Registry::instance().add(std::move(spec));
}

void register_e2_pair() {
  ConditionSpec offload = offload_regime();
  offload.net = NetShape::kGrid;
  offload.sites = 64;
  offload.horizon = 800.0;
  register_e2("e2_guarantee_ratio",
              "(a) offload regime: laxity 2-6, link delay 0.5-2.0", offload,
              {0.005, 0.01, 0.02, 0.04, 0.08});

  ConditionSpec parallel = parallel_regime();
  parallel.net = NetShape::kGrid;
  parallel.sites = 64;
  parallel.horizon = 800.0;
  register_e2("e2_guarantee_ratio_parallel",
              "(b) parallel regime: laxity 1.2-1.8, link delay 0.05-0.2",
              parallel, {0.005, 0.01, 0.02, 0.04});
}

// ------------------------------------------------------------------- E3 ----

void register_e3(const std::string& name, std::string title,
                 ConditionSpec base) {
  ScenarioSpec spec;
  spec.name = name;
  spec.title = std::move(title);
  spec.description =
      "sphere radius sweep (8x8 grid): acceptance vs messages/locks as h "
      "grows";
  spec.axes = {GridAxis::numeric("h", "h", {0, 1, 2, 3, 4, 5}, 0)};
  spec.metrics = {ratio("ratio%", "guarantee_ratio"),
                  count("remote", "accepted_remote"),
                  MetricSpec{"msgs/job", "msgs_per_job", 1},
                  MetricSpec{"ACS mean", "acs_mean", 1},
                  MetricSpec{"latency", "decision_latency", 2},
                  count("PCS max", "pcs_size_max")};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [base](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = base;
    cs.seed = seed;
    const Condition c = make_condition(cs);
    SystemConfig cfg;
    cfg.node.sphere_radius_h = static_cast<std::size_t>(p.value(0));
    RtdsSystem system(c.topo, cfg);
    system.run(c.arrivals);
    const auto& m = system.metrics();
    std::size_t max_pcs = 0;
    for (SiteId s = 0; s < c.topo.site_count(); ++s)
      max_pcs = std::max(max_pcs, system.node(s).pcs().size());
    return {m.guarantee_ratio(),
            static_cast<double>(m.accepted_remote),
            m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0,
            m.acs_size.count() ? m.acs_size.mean() : 0.0,
            m.decision_latency.mean(),
            static_cast<double>(max_pcs)};
  };
  Registry::instance().add(std::move(spec));
}

void register_e3_pair() {
  ConditionSpec parallel = parallel_regime();
  parallel.net = NetShape::kGrid;
  parallel.sites = 64;
  parallel.horizon = 600.0;
  parallel.rate = 0.02;
  register_e3("e3_sphere_radius", "(a) parallel regime", parallel);

  ConditionSpec offload = offload_regime();
  offload.net = NetShape::kGrid;
  offload.sites = 64;
  offload.horizon = 600.0;
  offload.rate = 0.04;
  register_e3("e3_sphere_radius_offload", "(b) offload regime", offload);
}

// ------------------------------------------------------------------- E4 ----

void register_e4() {
  struct Band {
    double lo, hi;
  };
  const std::vector<Band> bands = {{1.05, 1.2}, {1.2, 1.5}, {1.5, 2.0},
                                   {2.0, 3.0},  {3.0, 5.0}, {5.0, 8.0}};
  std::vector<std::string> labels;
  for (const Band band : bands)
    labels.push_back(Table::num(band.lo, 2) + "-" + Table::num(band.hi, 2));

  ScenarioSpec spec;
  spec.name = "e4_adjustment_cases";
  spec.description =
      "§12.2 adjustment-case frequencies vs laxity (8x8 grid, h=2, "
      "rate=0.02, delay 0.1-0.4)";
  spec.axes = {GridAxis::labeled("laxity", "laxity", std::move(labels))};
  spec.metrics = {count("jobs", "jobs"),
                  ratio("ratio%", "guarantee_ratio"),
                  count("case_ii", "case_ii"),
                  count("case_iii", "case_iii"),
                  count("reject_i", "reject_case_i"),
                  count("reject_win", "reject_windows"),
                  count("match_fail", "reject_matching"),
                  count("gated", "reject_gated")};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [bands](const GridPoint& p,
                       std::uint64_t seed) -> TrialResult {
    const Band band = bands[static_cast<std::size_t>(p.value(0))];
    ConditionSpec cs;
    cs.net = NetShape::kGrid;
    cs.sites = 64;
    cs.rate = 0.02;
    cs.horizon = 600.0;
    cs.laxity_min = band.lo;
    cs.laxity_max = band.hi;
    cs.delay_min = 0.1;
    cs.delay_max = 0.4;
    cs.seed = seed;
    const Condition c = make_condition(cs);
    RtdsSystem system(c.topo, SystemConfig{});
    system.run(c.arrivals);
    const auto& m = system.metrics();
    auto rejects = [&](RejectReason r) {
      const auto it = m.reject_by_reason.find(static_cast<int>(r));
      return it == m.reject_by_reason.end() ? 0.0
                                            : static_cast<double>(it->second);
    };
    auto cases = [&](int cse) {
      const auto it = m.adjustment_cases.find(cse);
      return it == m.adjustment_cases.end() ? 0.0
                                            : static_cast<double>(it->second);
    };
    return {static_cast<double>(m.arrived),
            m.guarantee_ratio(),
            cases(2),
            cases(3),
            rejects(RejectReason::kMapperCaseI),
            rejects(RejectReason::kMapperWindows),
            rejects(RejectReason::kMatchingFailed),
            rejects(RejectReason::kGated)};
  };
  Registry::instance().add(std::move(spec));
}

// ------------------------------------------------------------------- E5 ----

/// The two fixed conditions every ablation group reuses.
ConditionSpec e5_parallel_spec() {
  ConditionSpec cs = parallel_regime();
  cs.net = NetShape::kGrid;
  cs.sites = 64;
  cs.horizon = 600.0;
  cs.rate = 0.02;
  return cs;
}

ConditionSpec e5_offload_spec() {
  ConditionSpec cs = offload_regime();
  cs.net = NetShape::kGrid;
  cs.sites = 64;
  cs.horizon = 600.0;
  cs.rate = 0.04;
  return cs;
}

struct Variant {
  std::string name;
  SystemConfig cfg;
};

/// An ablation group: one labeled "variant" axis over fixed configs on a
/// fixed condition, with the standard comparison metric set.
void register_e5_group(const std::string& name, std::string title,
                       std::string description, ConditionSpec condition,
                       std::vector<Variant> variants) {
  std::vector<std::string> labels;
  for (const auto& v : variants) labels.push_back(v.name);

  ScenarioSpec spec;
  spec.name = name;
  spec.title = std::move(title);
  spec.description = std::move(description);
  spec.axes = {GridAxis::labeled("variant", "variant", std::move(labels))};
  spec.metrics = {ratio("ratio%", "guarantee_ratio"),
                  count("local", "accepted_local"),
                  count("remote", "accepted_remote"),
                  MetricSpec{"msgs/job", "msgs_per_job", 1},
                  MetricSpec{"latency", "decision_latency", 2}};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [condition, variants](const GridPoint& p,
                                     std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = condition;
    cs.seed = seed;
    const Condition c = make_condition(cs);
    const auto& cfg = variants[static_cast<std::size_t>(p.value(0))].cfg;
    RtdsSystem system(c.topo, cfg);
    system.run(c.arrivals);
    const auto& m = system.metrics();
    return {m.guarantee_ratio(),
            static_cast<double>(m.accepted_local),
            static_cast<double>(m.accepted_remote),
            m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0,
            m.decision_latency.mean()};
  };
  Registry::instance().add(std::move(spec));
}

void register_e5() {
  auto base = [] {
    SystemConfig cfg;
    cfg.node.sphere_radius_h = 2;
    return cfg;
  };

  {
    Variant nack{"enroll=nack (default)", base()};
    Variant timeout{"enroll=timeout (faithful §8)", base()};
    timeout.cfg.node.enroll_policy = EnrollPolicy::kTimeout;
    register_e5_group("e5_enroll_policy",
                      "(1) enrollment policy [parallel regime]",
                      "ablation: Nack vs faithful-§8 Timeout enrollment",
                      e5_parallel_spec(), {nack, timeout});
  }
  {
    std::vector<Variant> variants;
    for (const auto gate : {EnrollGate::kNone, EnrollGate::kCriticalPath,
                            EnrollGate::kProtocolAware})
      variants.push_back(
          {std::string("gate=") + to_string(gate),
           [&] {
             auto cfg = base();
             cfg.node.enroll_gate = gate;
             return cfg;
           }()});
    register_e5_group("e5_enroll_gate",
                      "(2) pre-enrollment gate [offload regime, loaded]",
                      "ablation: §9 pre-enrollment feasibility gate",
                      e5_offload_spec(), std::move(variants));
  }
  {
    Variant jobwin{"surplus=job-window (default)", base()};
    Variant fixed{"surplus=fixed-window (literal §2)", base()};
    fixed.cfg.node.job_window_surplus = false;
    register_e5_group("e5_surplus_window",
                      "(3) surplus observation window [offload regime]",
                      "ablation: job-relative vs fixed surplus window",
                      e5_offload_spec(), {jobwin, fixed});
  }
  {
    Variant uniform{"laxity=uniform (eq. 4)", base()};
    Variant weighted{"laxity=busyness-weighted (§13)", base()};
    weighted.cfg.node.mapper.busyness_weighted_laxity = true;
    register_e5_group("e5_laxity_weighting",
                      "(4) laxity dispatching [parallel regime]",
                      "ablation: §13 busyness-weighted laxity dispatching",
                      e5_parallel_spec(), {uniform, weighted});
  }
  {
    std::vector<Variant> variants;
    for (const auto policy : {AdmissionPolicy::kEdf, AdmissionPolicy::kExact,
                              AdmissionPolicy::kPreemptive})
      variants.push_back(
          {std::string("admission=") + to_string(policy),
           [&] {
             auto cfg = base();
             cfg.node.sched.policy = policy;
             return cfg;
           }()});
    register_e5_group("e5_admission_policy",
                      "(5) local admission test [parallel regime]",
                      "ablation: greedy EDF vs exact B&B vs preemptive "
                      "admission",
                      e5_parallel_spec(), std::move(variants));
  }
  {
    Variant off{"initiator=surplus-only (paper base)", base()};
    Variant on{"initiator=exact-idle-intervals (§13)", base()};
    on.cfg.node.initiator_local_knowledge = true;
    register_e5_group("e5_local_knowledge",
                      "(6) local knowledge of k [parallel regime]",
                      "ablation: §13 exact initiator idle intervals",
                      e5_parallel_spec(), {off, on});
  }
  {
    // Transport realism gets its own metric set (delivered, not accepted).
    std::vector<Variant> variants;
    Variant ideal{"transport=ideal (paper model)", base()};
    Variant roomy{"transport=contended bw=100", base()};
    roomy.cfg.transport_model = TransportModel::kContended;
    roomy.cfg.link_bandwidth = 100.0;
    Variant roomy_slack{"contended bw=100 + slack 1", base()};
    roomy_slack.cfg.transport_model = TransportModel::kContended;
    roomy_slack.cfg.link_bandwidth = 100.0;
    roomy_slack.cfg.node.protocol_overhead_slack = 1.0;
    Variant tight{"transport=contended bw=8", base()};
    tight.cfg.transport_model = TransportModel::kContended;
    tight.cfg.link_bandwidth = 8.0;
    Variant tuned{"contended bw=8 + x2 + slack 8", base()};
    tuned.cfg.transport_model = TransportModel::kContended;
    tuned.cfg.link_bandwidth = 8.0;
    tuned.cfg.node.protocol_overhead_factor = 2.0;
    tuned.cfg.node.protocol_overhead_slack = 8.0;
    variants = {ideal, roomy, roomy_slack, tight, tuned};

    std::vector<std::string> labels;
    for (const auto& v : variants) labels.push_back(v.name);
    ScenarioSpec spec;
    spec.name = "e5_transport";
    spec.title = "(7) transport model [parallel regime]";
    spec.description =
        "ablation: ideal vs contended store-and-forward transport";
    spec.axes = {GridAxis::labeled("variant", "variant", std::move(labels))};
    spec.metrics = {ratio("delivered%", "delivered_ratio"),
                    count("remote", "accepted_remote"),
                    count("failed jobs", "failed_jobs"),
                    MetricSpec{"latency", "decision_latency", 2}};
    spec.seed_mode = SeedMode::kFixed;
    const ConditionSpec condition = e5_parallel_spec();
    spec.trial = [condition, variants](const GridPoint& p,
                                       std::uint64_t seed) -> TrialResult {
      ConditionSpec cs = condition;
      cs.seed = seed;
      const Condition c = make_condition(cs);
      RtdsSystem system(c.topo,
                        variants[static_cast<std::size_t>(p.value(0))].cfg);
      system.run(c.arrivals);
      const auto& m = system.metrics();
      return {m.delivered_ratio(), static_cast<double>(m.accepted_remote),
              static_cast<double>(m.failed_jobs), m.decision_latency.mean()};
    };
    Registry::instance().add(std::move(spec));
  }
  {
    std::vector<Variant> variants;
    for (const auto prio : {TaskPriority::kBottomLevel, TaskPriority::kCost,
                            TaskPriority::kFifo})
      variants.push_back(
          {std::string("mapper-priority=") + to_string(prio),
           [&] {
             auto cfg = base();
             cfg.node.mapper.task_priority = prio;
             return cfg;
           }()});
    register_e5_group("e5_mapper_priority",
                      "(8) mapper task selection [parallel regime]",
                      "ablation: §9 mapper task-selection heuristic",
                      e5_parallel_spec(), std::move(variants));
  }
}

}  // namespace

void register_builtin_scenarios() {
  static const bool once = [] {
    register_e1();
    register_e2_pair();
    register_e3_pair();
    register_e4();
    register_e5();
    register_builtin_reports();
    return true;
  }();
  (void)once;
}

}  // namespace rtds::exp
