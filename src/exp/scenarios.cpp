// The paper's evaluation, expressed as declarative scenarios. Each legacy
// bench_e* sweep is one ScenarioSpec here; the bench binaries are thin
// drivers calling run_and_print over these names. Tables are byte-for-byte
// identical to the pre-subsystem serial output: the legacy sweeps used one
// shared seed (42) for every grid point, which SeedMode::kFixed preserves.
//
// Since the unified Policy API every condition is (policy name, param
// overrides) *data* resolved through PolicyRegistry — no scenario calls a
// scheduler family directly, so a newly registered policy is sweepable
// here (and in the generic policy_sweep scenario) without touching this
// file.
#include "exp/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exp/condition.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "policy/policy.hpp"
#include "util/table.hpp"

namespace rtds::exp {

void register_builtin_reports();     // reports.cpp
void register_e9_steady_state();     // scenarios_e9.cpp (open-system E9)

namespace {

using policy::ParamMap;
using policy::PolicyRegistry;

constexpr double kSkip = std::numeric_limits<double>::quiet_NaN();

/// One scheduler condition as data: which registered policy, with which
/// `key=value` overrides on its schema defaults.
struct PolicySpec {
  std::string policy;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Resolves and runs a PolicySpec, with optional per-trial overrides
/// appended (later assignments win, so grid-point values can refine a
/// variant's fixed params).
RunMetrics run_policy(
    const PolicySpec& ps, const Condition& c,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  const auto policy = PolicyRegistry::instance().create(ps.policy);
  auto pairs = ps.params;
  pairs.insert(pairs.end(), extra.begin(), extra.end());
  return policy->run(c.topo, c.arrivals,
                     ParamMap::parse_pairs(pairs, policy->describe_params()));
}

MetricSpec ratio(std::string header, std::string key) {
  return MetricSpec{std::move(header), std::move(key), 1, 100.0};
}

MetricSpec count(std::string header, std::string key) {
  return MetricSpec{std::move(header), std::move(key), 0, 1.0};
}

const PolicySpec kRtdsH2{"rtds", {{"h", "2"}}};

// ------------------------------------------------------------------- E1 ----

void register_e1() {
  ScenarioSpec spec;
  spec.name = "e1_message_bound";
  spec.description =
      "per-job message cost vs network size (grid, h=2): RTDS stays flat, "
      "the [4]-style broadcast grows";
  spec.axes = {GridAxis::numeric("sites", "sites",
                                 {16, 36, 64, 144, 256, 576, 1024}, 0)};
  spec.metrics = {count("jobs", "jobs"),
                  ratio("ratio%", "guarantee_ratio"),
                  MetricSpec{"msgs/job mean", "msgs_per_job_mean", 1},
                  MetricSpec{"msgs/job max", "msgs_per_job_max", 0},
                  MetricSpec{"sphere bound", "sphere_bound", 0},
                  MetricSpec{"BCAST msgs/job", "bcast_msgs_per_job", 1},
                  count("PCS size max", "pcs_size_max")};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    ConditionSpec cs;
    cs.net = NetShape::kGrid;
    cs.sites = static_cast<std::size_t>(p.value(0));
    cs.rate = 0.02;
    cs.horizon = 400.0;
    cs.laxity_min = 1.5;
    cs.laxity_max = 3.0;
    cs.delay_min = 0.2;
    cs.delay_max = 0.8;
    cs.seed = seed;
    const Condition c = make_condition(cs);

    const RunMetrics m = run_policy(kRtdsH2, c);
    // Analytic per-job bound: 4 sphere-wide rounds (enroll, reply,
    // validate+reply, dispatch) of |PCS|-1 sends, each <= hop-diameter
    // hops, plus unlock slack -> 8 covers every code path.
    const double bound = 8.0 * static_cast<double>(m.pcs_size_max) *
                         static_cast<double>(m.pcs_hop_diameter_max);

    // Measured cost of the [4]-style periodic network-wide surplus flood,
    // amortized per job. Skipped above 256 sites: the flood itself is what
    // makes large runs expensive — which is the point.
    double bcast_msgs = kSkip;
    if (c.topo.site_count() <= 256) {
      const RunMetrics bm = run_policy(PolicySpec{"bcast", {}}, c);
      bcast_msgs = static_cast<double>(bm.transport.total_link_messages) /
                   static_cast<double>(bm.arrived);
    }

    return {static_cast<double>(m.arrived),
            m.guarantee_ratio(),
            m.msgs_per_job.mean(),
            m.msgs_per_job.max(),
            bound,
            bcast_msgs,
            static_cast<double>(m.pcs_size_max)};
  };
  Registry::instance().add(std::move(spec));
}

// ------------------------------------------------------------------- E2 ----

/// The comparison columns: one (policy, overrides) pair per family, in the
/// paper's table order.
std::vector<std::pair<std::string, PolicySpec>> e2_families() {
  return {{"RTDS%", kRtdsH2},          {"LOCAL%", {"local", {}}},
          {"BID%", {"bid", {}}},       {"RANDOM%", {"random", {}}},
          {"BCAST%", {"bcast", {}}},   {"CENTRAL%", {"central", {}}}};
}

void register_e2(const std::string& name, std::string title,
                 ConditionSpec base, const std::vector<double>& rates) {
  const auto families = e2_families();

  ScenarioSpec spec;
  spec.name = name;
  spec.title = std::move(title);
  spec.description =
      "guarantee ratio vs offered load, RTDS against all baselines (8x8 "
      "grid, h=2)";
  spec.axes = {GridAxis::numeric("rate/site", "rate", rates, 3)};
  spec.metrics = {count("jobs", "jobs")};
  for (const auto& [header, ps] : families)
    spec.metrics.push_back(ratio(header, ps.policy));
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [base, families](const GridPoint& p,
                                std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = base;
    cs.rate = p.value(0);
    cs.seed = seed;
    const Condition c = make_condition(cs);

    TrialResult result{kSkip};  // jobs filled from the first family's run
    for (const auto& [header, ps] : families) {
      const RunMetrics m = run_policy(ps, c);
      if (std::isnan(result[0])) result[0] = static_cast<double>(m.arrived);
      result.push_back(m.guarantee_ratio());
    }
    return result;
  };
  Registry::instance().add(std::move(spec));
}

void register_e2_pair() {
  ConditionSpec offload = offload_regime();
  offload.net = NetShape::kGrid;
  offload.sites = 64;
  offload.horizon = 800.0;
  register_e2("e2_guarantee_ratio",
              "(a) offload regime: laxity 2-6, link delay 0.5-2.0", offload,
              {0.005, 0.01, 0.02, 0.04, 0.08});

  ConditionSpec parallel = parallel_regime();
  parallel.net = NetShape::kGrid;
  parallel.sites = 64;
  parallel.horizon = 800.0;
  register_e2("e2_guarantee_ratio_parallel",
              "(b) parallel regime: laxity 1.2-1.8, link delay 0.05-0.2",
              parallel, {0.005, 0.01, 0.02, 0.04});
}

// ------------------------------------------------------------------- E3 ----

void register_e3(const std::string& name, std::string title,
                 ConditionSpec base) {
  ScenarioSpec spec;
  spec.name = name;
  spec.title = std::move(title);
  spec.description =
      "sphere radius sweep (8x8 grid): acceptance vs messages/locks as h "
      "grows";
  spec.axes = {GridAxis::numeric("h", "h", {0, 1, 2, 3, 4, 5}, 0)};
  spec.metrics = {ratio("ratio%", "guarantee_ratio"),
                  count("remote", "accepted_remote"),
                  MetricSpec{"msgs/job", "msgs_per_job", 1},
                  MetricSpec{"ACS mean", "acs_mean", 1},
                  MetricSpec{"latency", "decision_latency", 2},
                  count("PCS max", "pcs_size_max")};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [base](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = base;
    cs.seed = seed;
    const Condition c = make_condition(cs);
    // The grid point overrides the sweep axis on an otherwise-default rtds.
    const RunMetrics m = run_policy(
        PolicySpec{"rtds", {}}, c,
        {{"h", Table::num(static_cast<std::size_t>(p.value(0)))}});
    return {m.guarantee_ratio(),
            static_cast<double>(m.accepted_remote),
            m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0,
            m.acs_size.count() ? m.acs_size.mean() : 0.0,
            m.decision_latency.mean(),
            static_cast<double>(m.pcs_size_max)};
  };
  Registry::instance().add(std::move(spec));
}

void register_e3_pair() {
  ConditionSpec parallel = parallel_regime();
  parallel.net = NetShape::kGrid;
  parallel.sites = 64;
  parallel.horizon = 600.0;
  parallel.rate = 0.02;
  register_e3("e3_sphere_radius", "(a) parallel regime", parallel);

  ConditionSpec offload = offload_regime();
  offload.net = NetShape::kGrid;
  offload.sites = 64;
  offload.horizon = 600.0;
  offload.rate = 0.04;
  register_e3("e3_sphere_radius_offload", "(b) offload regime", offload);
}

// ------------------------------------------------------------------- E4 ----

void register_e4() {
  struct Band {
    double lo, hi;
  };
  const std::vector<Band> bands = {{1.05, 1.2}, {1.2, 1.5}, {1.5, 2.0},
                                   {2.0, 3.0},  {3.0, 5.0}, {5.0, 8.0}};
  std::vector<std::string> labels;
  for (const Band band : bands)
    labels.push_back(Table::num(band.lo, 2) + "-" + Table::num(band.hi, 2));

  ScenarioSpec spec;
  spec.name = "e4_adjustment_cases";
  spec.description =
      "§12.2 adjustment-case frequencies vs laxity (8x8 grid, h=2, "
      "rate=0.02, delay 0.1-0.4)";
  spec.axes = {GridAxis::labeled("laxity", "laxity", std::move(labels))};
  spec.metrics = {count("jobs", "jobs"),
                  ratio("ratio%", "guarantee_ratio"),
                  count("case_ii", "case_ii"),
                  count("case_iii", "case_iii"),
                  count("reject_i", "reject_case_i"),
                  count("reject_win", "reject_windows"),
                  count("match_fail", "reject_matching"),
                  count("gated", "reject_gated")};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [bands](const GridPoint& p,
                       std::uint64_t seed) -> TrialResult {
    const Band band = bands[static_cast<std::size_t>(p.value(0))];
    ConditionSpec cs;
    cs.net = NetShape::kGrid;
    cs.sites = 64;
    cs.rate = 0.02;
    cs.horizon = 600.0;
    cs.laxity_min = band.lo;
    cs.laxity_max = band.hi;
    cs.delay_min = 0.1;
    cs.delay_max = 0.4;
    cs.seed = seed;
    const Condition c = make_condition(cs);
    const RunMetrics m = run_policy(PolicySpec{"rtds", {}}, c);
    auto rejects = [&](RejectReason r) {
      const auto it = m.reject_by_reason.find(static_cast<int>(r));
      return it == m.reject_by_reason.end() ? 0.0
                                            : static_cast<double>(it->second);
    };
    auto cases = [&](int cse) {
      const auto it = m.adjustment_cases.find(cse);
      return it == m.adjustment_cases.end() ? 0.0
                                            : static_cast<double>(it->second);
    };
    return {static_cast<double>(m.arrived),
            m.guarantee_ratio(),
            cases(2),
            cases(3),
            rejects(RejectReason::kMapperCaseI),
            rejects(RejectReason::kMapperWindows),
            rejects(RejectReason::kMatchingFailed),
            rejects(RejectReason::kGated)};
  };
  Registry::instance().add(std::move(spec));
}

// ------------------------------------------------------------------- E5 ----

/// The two fixed conditions every ablation group reuses.
ConditionSpec e5_parallel_spec() {
  ConditionSpec cs = parallel_regime();
  cs.net = NetShape::kGrid;
  cs.sites = 64;
  cs.horizon = 600.0;
  cs.rate = 0.02;
  return cs;
}

ConditionSpec e5_offload_spec() {
  ConditionSpec cs = offload_regime();
  cs.net = NetShape::kGrid;
  cs.sites = 64;
  cs.horizon = 600.0;
  cs.rate = 0.04;
  return cs;
}

/// An ablation variant: a display label over a (policy, overrides) pair.
struct Variant {
  std::string name;
  PolicySpec spec;
};

/// An ablation group: one labeled "variant" axis over fixed PolicySpecs on
/// a fixed condition, with the standard comparison metric set.
void register_e5_group(const std::string& name, std::string title,
                       std::string description, ConditionSpec condition,
                       std::vector<Variant> variants) {
  std::vector<std::string> labels;
  for (const auto& v : variants) labels.push_back(v.name);

  ScenarioSpec spec;
  spec.name = name;
  spec.title = std::move(title);
  spec.description = std::move(description);
  spec.axes = {GridAxis::labeled("variant", "variant", std::move(labels))};
  spec.metrics = {ratio("ratio%", "guarantee_ratio"),
                  count("local", "accepted_local"),
                  count("remote", "accepted_remote"),
                  MetricSpec{"msgs/job", "msgs_per_job", 1},
                  MetricSpec{"latency", "decision_latency", 2}};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [condition, variants](const GridPoint& p,
                                     std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = condition;
    cs.seed = seed;
    const Condition c = make_condition(cs);
    const RunMetrics m =
        run_policy(variants[static_cast<std::size_t>(p.value(0))].spec, c);
    return {m.guarantee_ratio(),
            static_cast<double>(m.accepted_local),
            static_cast<double>(m.accepted_remote),
            m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0,
            m.decision_latency.mean()};
  };
  Registry::instance().add(std::move(spec));
}

/// kRtdsH2 plus extra overrides — the E5 groups ablate one knob at a time.
Variant rtds_variant(std::string label,
                     std::vector<std::pair<std::string, std::string>> extra) {
  PolicySpec ps = kRtdsH2;
  ps.params.insert(ps.params.end(), extra.begin(), extra.end());
  return Variant{std::move(label), std::move(ps)};
}

void register_e5() {
  register_e5_group(
      "e5_enroll_policy", "(1) enrollment policy [parallel regime]",
      "ablation: Nack vs faithful-§8 Timeout enrollment", e5_parallel_spec(),
      {rtds_variant("enroll=nack (default)", {}),
       rtds_variant("enroll=timeout (faithful §8)", {{"enroll", "timeout"}})});

  {
    std::vector<Variant> variants;
    for (const char* gate : {"none", "critical_path", "protocol_aware"})
      variants.push_back(
          rtds_variant(std::string("gate=") + gate, {{"gate", gate}}));
    register_e5_group("e5_enroll_gate",
                      "(2) pre-enrollment gate [offload regime, loaded]",
                      "ablation: §9 pre-enrollment feasibility gate",
                      e5_offload_spec(), std::move(variants));
  }

  register_e5_group(
      "e5_surplus_window", "(3) surplus observation window [offload regime]",
      "ablation: job-relative vs fixed surplus window", e5_offload_spec(),
      {rtds_variant("surplus=job-window (default)", {}),
       rtds_variant("surplus=fixed-window (literal §2)",
                    {{"job_window_surplus", "false"}})});

  register_e5_group(
      "e5_laxity_weighting", "(4) laxity dispatching [parallel regime]",
      "ablation: §13 busyness-weighted laxity dispatching", e5_parallel_spec(),
      {rtds_variant("laxity=uniform (eq. 4)", {}),
       rtds_variant("laxity=busyness-weighted (§13)",
                    {{"busyness_weighted_laxity", "true"}})});

  {
    std::vector<Variant> variants;
    for (const char* policy : {"edf", "exact", "preemptive"})
      variants.push_back(rtds_variant(std::string("admission=") + policy,
                                      {{"admission", policy}}));
    register_e5_group("e5_admission_policy",
                      "(5) local admission test [parallel regime]",
                      "ablation: greedy EDF vs exact B&B vs preemptive "
                      "admission",
                      e5_parallel_spec(), std::move(variants));
  }

  register_e5_group(
      "e5_local_knowledge", "(6) local knowledge of k [parallel regime]",
      "ablation: §13 exact initiator idle intervals", e5_parallel_spec(),
      {rtds_variant("initiator=surplus-only (paper base)", {}),
       rtds_variant("initiator=exact-idle-intervals (§13)",
                    {{"initiator_local_knowledge", "true"}})});

  {
    // Transport realism gets its own metric set (delivered, not accepted).
    const std::vector<Variant> variants = {
        rtds_variant("transport=ideal (paper model)", {}),
        rtds_variant("transport=contended bw=100",
                     {{"transport", "contended"}, {"bandwidth", "100"}}),
        rtds_variant("contended bw=100 + slack 1",
                     {{"transport", "contended"},
                      {"bandwidth", "100"},
                      {"overhead_slack", "1"}}),
        rtds_variant("transport=contended bw=8",
                     {{"transport", "contended"}, {"bandwidth", "8"}}),
        rtds_variant("contended bw=8 + x2 + slack 8",
                     {{"transport", "contended"},
                      {"bandwidth", "8"},
                      {"overhead_factor", "2"},
                      {"overhead_slack", "8"}})};

    std::vector<std::string> labels;
    for (const auto& v : variants) labels.push_back(v.name);
    ScenarioSpec spec;
    spec.name = "e5_transport";
    spec.title = "(7) transport model [parallel regime]";
    spec.description =
        "ablation: ideal vs contended store-and-forward transport";
    spec.axes = {GridAxis::labeled("variant", "variant", std::move(labels))};
    spec.metrics = {ratio("delivered%", "delivered_ratio"),
                    count("remote", "accepted_remote"),
                    count("failed jobs", "failed_jobs"),
                    MetricSpec{"latency", "decision_latency", 2}};
    spec.seed_mode = SeedMode::kFixed;
    const ConditionSpec condition = e5_parallel_spec();
    spec.trial = [condition, variants](const GridPoint& p,
                                       std::uint64_t seed) -> TrialResult {
      ConditionSpec cs = condition;
      cs.seed = seed;
      const Condition c = make_condition(cs);
      const RunMetrics m =
          run_policy(variants[static_cast<std::size_t>(p.value(0))].spec, c);
      return {m.delivered_ratio(), static_cast<double>(m.accepted_remote),
              static_cast<double>(m.failed_jobs), m.decision_latency.mean()};
    };
    Registry::instance().add(std::move(spec));
  }

  {
    std::vector<Variant> variants;
    for (const char* prio : {"bottom_level", "cost", "fifo"})
      variants.push_back(rtds_variant(std::string("mapper-priority=") + prio,
                                      {{"task_priority", prio}}));
    register_e5_group("e5_mapper_priority",
                      "(8) mapper task selection [parallel regime]",
                      "ablation: §9 mapper task-selection heuristic",
                      e5_parallel_spec(), std::move(variants));
  }
}

// ------------------------------------------------------------------- E6 ----

/// Protocol resilience under site crashes (DESIGN.md §9): every family's
/// *delivered* ratio (accepted AND fully executed — acceptance alone is
/// meaningless when sites die) as the crash rate and offered load grow.
/// The zero-crash row must reproduce the faultless run bit for bit: with
/// every fault rate 0 the FaultPlan is empty and each policy takes its
/// exact pre-fault code path (pinned by tests/fault_test.cpp).
void register_e6() {
  const auto families = e2_families();

  ScenarioSpec spec;
  spec.name = "e6_fault_tolerance";
  spec.description =
      "delivered ratio under site crashes: crash rate x offered load, all "
      "six policies (8x8 grid, h=2)";
  spec.axes = {GridAxis::numeric("crash/site", "crash_rate",
                                 {0.0, 0.001, 0.002, 0.004}, 4),
               GridAxis::numeric("rate/site", "rate", {0.01, 0.04}, 3)};
  spec.metrics = {count("jobs", "jobs")};
  for (const auto& [header, ps] : families)
    spec.metrics.push_back(ratio(header, ps.policy));
  spec.metrics.push_back(count("lost", "rtds_jobs_lost"));
  spec.metrics.push_back(count("resched", "rtds_jobs_rescheduled"));
  spec.metrics.push_back(count("repair", "rtds_repair_messages"));
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [families](const GridPoint& p,
                          std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = offload_regime();
    cs.net = NetShape::kGrid;
    cs.sites = 64;
    cs.horizon = 400.0;
    cs.rate = p.value(1);
    cs.seed = seed;
    const Condition c = make_condition(cs);

    // The crash process rides the shared faults.* keys, so the same
    // overrides apply to every family (each runs its own deterministic
    // plan from the same spec).
    const std::vector<std::pair<std::string, std::string>> extra = {
        {"faults.site_rate", Table::num(p.value(0), 4)},
        {"faults.site_mttr", "25"}};

    TrialResult result{kSkip};  // jobs filled from the first family's run
    double lost = 0.0, resched = 0.0, repair = 0.0;
    for (const auto& [header, ps] : families) {
      const RunMetrics m = run_policy(ps, c, extra);
      if (std::isnan(result[0])) result[0] = static_cast<double>(m.arrived);
      result.push_back(m.delivered_ratio());
      if (ps.policy == "rtds") {
        lost = static_cast<double>(m.jobs_lost);
        resched = static_cast<double>(m.jobs_rescheduled);
        repair = static_cast<double>(m.repair_messages);
      }
    }
    result.push_back(lost);
    result.push_back(resched);
    result.push_back(repair);
    return result;
  };
  Registry::instance().add(std::move(spec));
}

// ------------------------------------------------------------------- E7 ----

/// The scale workload (DESIGN.md §10): sites × load on grids up to 32×32.
/// RTDS's sphere-local control structure is the whole point of the paper —
/// per-job cost depends on |PCS|, not on the network — so the guarantee
/// ratio and msgs/job must hold flat from 256 to 1024 sites while the
/// [4]-style broadcast baseline (measured to 256 sites, like E1) pays the
/// network-wide flood. This is also the sweep the CI scale job runs in
/// Release under a wall-clock budget, so large-N regressions in the
/// routing/PCS/event-queue layers fail the build rather than rotting.
void register_e7() {
  ScenarioSpec spec;
  spec.name = "e7_scale";
  spec.description =
      "production-scale sweep: sites x load, rtds vs local/bcast baselines "
      "(grid, h=2; bcast measured to 256 sites)";
  spec.axes = {GridAxis::numeric("sites", "sites", {256, 512, 1024}, 0),
               GridAxis::numeric("rate/site", "rate", {0.01, 0.02}, 3)};
  spec.metrics = {count("jobs", "jobs"),
                  ratio("RTDS%", "rtds"),
                  ratio("LOCAL%", "local"),
                  ratio("BCAST%", "bcast"),
                  MetricSpec{"msgs/job", "rtds_msgs_per_job", 1},
                  count("PCS max", "pcs_size_max"),
                  MetricSpec{"latency", "rtds_decision_latency", 2}};
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [](const GridPoint& p, std::uint64_t seed) -> TrialResult {
    ConditionSpec cs;
    cs.net = NetShape::kGrid;
    cs.sites = static_cast<std::size_t>(p.value(0));
    cs.rate = p.value(1);
    cs.horizon = 400.0;
    cs.laxity_min = 1.5;
    cs.laxity_max = 3.0;
    cs.delay_min = 0.2;
    cs.delay_max = 0.8;
    cs.seed = seed;
    const Condition c = make_condition(cs);

    const RunMetrics m = run_policy(kRtdsH2, c);
    const RunMetrics lm = run_policy(PolicySpec{"local", {}}, c);
    // The periodic network-wide surplus flood is what makes bcast
    // unaffordable at scale — which is the point; measured to 256 sites
    // (the E1 cap), skipped beyond.
    double bcast = kSkip;
    if (c.topo.site_count() <= 256)
      bcast = run_policy(PolicySpec{"bcast", {}}, c).guarantee_ratio();

    return {static_cast<double>(m.arrived),
            m.guarantee_ratio(),
            lm.guarantee_ratio(),
            bcast,
            m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0,
            static_cast<double>(m.pcs_size_max),
            m.decision_latency.count() ? m.decision_latency.mean() : 0.0};
  };
  Registry::instance().add(std::move(spec));
}

// ------------------------------------------------------------------- E8 ----

/// Chaos sweep (DESIGN.md §12): the adversarial network model — message
/// duplication, FIFO-violating reordering, network partitions — crossed
/// with the E6 crash process, over all six families. Baselines see the
/// crash process only (their control plane is idealized, §9); RTDS runs
/// the full adversarial transport WITH its §12 hardening on (dedup
/// windows, ack+retransmit, invariant checker). The "none" × crash-0 cell
/// must reproduce the faultless run bit for bit even though hardening is
/// enabled — an empty plan arms nothing (pinned by tests/chaos_test.cpp).
/// The invariant checker runs as part of the scenario itself, so the table
/// digest is independent of any CLI flag — and "viol" must print 0 in
/// every cell.
void register_e8() {
  const auto families = e2_families();

  ScenarioSpec spec;
  spec.name = "e8_chaos";
  spec.description =
      "delivered ratio under an adversarial network: dup/reorder/partition "
      "chaos x site crashes, all six policies (6x6 grid, h=2, hardened "
      "rtds + invariant checker)";
  spec.axes = {
      GridAxis::labeled("chaos", "chaos",
                        {"none", "dup", "reorder", "partition", "all"}),
      GridAxis::numeric("crash/site", "crash_rate", {0.0, 0.002}, 3)};
  spec.metrics = {count("jobs", "jobs")};
  for (const auto& [header, ps] : families)
    spec.metrics.push_back(ratio(header, ps.policy));
  spec.metrics.push_back(count("dup", "rtds_messages_duplicated"));
  spec.metrics.push_back(count("retrans", "rtds_retransmits"));
  spec.metrics.push_back(count("viol", "rtds_invariant_violations"));
  spec.seed_mode = SeedMode::kFixed;
  spec.trial = [families](const GridPoint& p,
                          std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = offload_regime();
    cs.net = NetShape::kGrid;
    cs.sites = 36;
    cs.horizon = 300.0;
    cs.seed = seed;
    const Condition c = make_condition(cs);

    // The crash process is shared by every family (e6 semantics).
    const std::vector<std::pair<std::string, std::string>> crash = {
        {"faults.site_rate", Table::num(p.value(1), 4)},
        {"faults.site_mttr", "25"}};

    // rtds alone runs on the simulated transport, so it alone gets the
    // network chaos — plus its §12 hardening and the invariant checker.
    const auto chaos = static_cast<std::size_t>(p.value(0));
    const bool dup = chaos == 1 || chaos == 4;
    const bool reorder = chaos == 2 || chaos == 4;
    const bool partition = chaos == 3 || chaos == 4;
    std::vector<std::pair<std::string, std::string>> rtds_extra = crash;
    if (dup) rtds_extra.emplace_back("faults.dup", "0.05");
    if (reorder) {
      rtds_extra.emplace_back("faults.reorder", "0.1");
      rtds_extra.emplace_back("faults.reorder_delay", "0.5");
    }
    if (partition) {
      rtds_extra.emplace_back("faults.partition_rate", "0.01");
      rtds_extra.emplace_back("faults.partition_mttr", "10");
    }
    rtds_extra.emplace_back("faults.retransmit", "true");
    rtds_extra.emplace_back("check_invariants", "true");

    TrialResult result{kSkip};  // jobs filled from the first family's run
    double dups = 0.0, retrans = 0.0, viol = 0.0;
    for (const auto& [header, ps] : families) {
      const RunMetrics m =
          run_policy(ps, c, ps.policy == "rtds" ? rtds_extra : crash);
      if (std::isnan(result[0])) result[0] = static_cast<double>(m.arrived);
      result.push_back(m.delivered_ratio());
      if (ps.policy == "rtds") {
        dups = static_cast<double>(m.messages_duplicated);
        retrans = static_cast<double>(m.retransmits);
        viol = static_cast<double>(m.invariant_violations);
      }
    }
    result.push_back(dups);
    result.push_back(retrans);
    result.push_back(viol);
    return result;
  };
  Registry::instance().add(std::move(spec));
}

// ----------------------------------------------------------- policy_sweep --

/// Generic cross of every registered policy against a load grid: the seam
/// new protocol variants get swept through with zero scenario code. The
/// policy axis is built from the registry at registration time, so a
/// policy registered before register_builtin_scenarios() is in the sweep
/// automatically.
void register_policy_sweep() {
  const std::vector<std::string> policies = PolicyRegistry::instance().names();

  ScenarioSpec spec;
  spec.name = "policy_sweep";
  spec.description =
      "every registered policy x offered load (8x8 grid, offload regime)";
  spec.axes = {
      GridAxis::labeled("policy", "policy",
                        std::vector<std::string>(policies.begin(),
                                                 policies.end())),
      GridAxis::numeric("rate/site", "rate", {0.005, 0.01, 0.02, 0.04}, 3)};
  spec.metrics = {count("jobs", "jobs"),
                  ratio("ratio%", "guarantee_ratio"),
                  count("remote", "accepted_remote"),
                  MetricSpec{"msgs/job", "msgs_per_job", 1},
                  MetricSpec{"latency", "decision_latency", 2}};
  spec.trial = [policies](const GridPoint& p,
                          std::uint64_t seed) -> TrialResult {
    ConditionSpec cs = offload_regime();
    cs.net = NetShape::kGrid;
    cs.sites = 64;
    cs.horizon = 400.0;
    cs.rate = p.value(1);
    cs.seed = seed;
    const Condition c = make_condition(cs);
    const RunMetrics m = run_policy(
        PolicySpec{policies[static_cast<std::size_t>(p.value(0))], {}}, c);
    return {static_cast<double>(m.arrived),
            m.guarantee_ratio(),
            static_cast<double>(m.accepted_remote),
            m.msgs_per_job.count() ? m.msgs_per_job.mean() : 0.0,
            m.decision_latency.count() ? m.decision_latency.mean() : 0.0};
  };
  Registry::instance().add(std::move(spec));
}

}  // namespace

void register_builtin_scenarios() {
  static const bool once = [] {
    policy::register_builtin_policies();
    register_e1();
    register_e2_pair();
    register_e3_pair();
    register_e4();
    register_e5();
    register_e6();
    register_e7();
    register_e8();
    register_e9_steady_state();
    register_policy_sweep();
    register_builtin_reports();
    return true;
  }();
  (void)once;
}

}  // namespace rtds::exp
