// Built-in scenario set: the paper's evaluation (E1–E5 sweeps) plus the
// worked-example / trace reports (Fig. 1, Fig. 2/Table 1, E4a). See
// EXPERIMENTS.md for the experiment -> scenario name mapping.
#pragma once

namespace rtds::exp {

/// Installs every built-in scenario and report into Registry::instance().
/// Idempotent; call before looking anything up (static registration would
/// be stripped by the archive linker).
void register_builtin_scenarios();

}  // namespace rtds::exp
