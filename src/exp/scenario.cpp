#include "exp/scenario.hpp"

#include "exp/seed.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace rtds::exp {

GridAxis GridAxis::numeric(std::string header, std::string key,
                           const std::vector<double>& values, int precision) {
  GridAxis axis;
  axis.header = std::move(header);
  axis.key = std::move(key);
  for (const double v : values)
    axis.values.push_back(AxisValue{v, Table::num(v, precision)});
  return axis;
}

GridAxis GridAxis::labeled(std::string header, std::string key,
                           std::vector<std::string> labels) {
  GridAxis axis;
  axis.header = std::move(header);
  axis.key = std::move(key);
  for (std::size_t i = 0; i < labels.size(); ++i)
    axis.values.push_back(
        AxisValue{static_cast<double>(i), std::move(labels[i])});
  return axis;
}

std::size_t ScenarioSpec::grid_size() const {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

GridPoint ScenarioSpec::grid_point(std::size_t index) const {
  RTDS_REQUIRE(index < grid_size());
  GridPoint point;
  point.index = index;
  point.coords.resize(axes.size());
  // Row-major, first axis slowest: peel from the last (fastest) axis.
  std::size_t rest = index;
  for (std::size_t a = axes.size(); a-- > 0;) {
    const auto& vals = axes[a].values;
    point.coords[a] = vals[rest % vals.size()];
    rest /= vals.size();
  }
  return point;
}

std::uint64_t ScenarioSpec::seed_for(std::size_t grid_index,
                                     std::size_t replicate) const {
  return seed_mode == SeedMode::kFixed
             ? fixed_seed
             : trial_seed(name, grid_index, replicate);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(ScenarioSpec spec) {
  RTDS_REQUIRE_MSG(!spec.name.empty(), "scenario needs a name");
  RTDS_REQUIRE_MSG(static_cast<bool>(spec.trial),
                   "scenario " << spec.name << " has no trial function");
  RTDS_REQUIRE_MSG(!spec.metrics.empty(),
                   "scenario " << spec.name << " declares no metrics");
  for (const auto& axis : spec.axes)
    RTDS_REQUIRE_MSG(!axis.values.empty(),
                     "scenario " << spec.name << " axis " << axis.key
                                 << " is empty");
  RTDS_REQUIRE(spec.replicates > 0);
  const auto name = spec.name;
  const bool inserted = scenarios_.emplace(name, std::move(spec)).second;
  RTDS_REQUIRE_MSG(inserted, "duplicate scenario " << name);
}

void Registry::add_report(std::string name, std::string description,
                          ReportFn fn) {
  RTDS_REQUIRE(!name.empty());
  RTDS_REQUIRE(static_cast<bool>(fn));
  const bool inserted =
      reports_
          .emplace(std::move(name),
                   Report{std::move(description), std::move(fn)})
          .second;
  RTDS_REQUIRE_MSG(inserted, "duplicate report scenario");
}

const ScenarioSpec* Registry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const ReportFn* Registry::find_report(const std::string& name) const {
  const auto it = reports_.find(name);
  return it == reports_.end() ? nullptr : &it->second.fn;
}

const std::string& Registry::report_description(
    const std::string& name) const {
  const auto it = reports_.find(name);
  RTDS_REQUIRE_MSG(it != reports_.end(), "unknown report " << name);
  return it->second.description;
}

std::vector<std::string> Registry::scenario_names() const {
  std::vector<std::string> names;
  for (const auto& [name, spec] : scenarios_) names.push_back(name);
  return names;
}

std::vector<std::string> Registry::report_names() const {
  std::vector<std::string> names;
  for (const auto& [name, report] : reports_) names.push_back(name);
  return names;
}

void run_report(const std::string& name, std::ostream& os) {
  const ReportFn* fn = Registry::instance().find_report(name);
  RTDS_REQUIRE_MSG(fn != nullptr, "unknown report scenario " << name);
  (*fn)(os);
}

}  // namespace rtds::exp
