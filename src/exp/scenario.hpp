// Declarative experiment scenarios.
//
// A ScenarioSpec is the full description of one paper experiment sweep: a
// parameter grid (cartesian product of named axes), a replicate count, a
// seed policy, the metric schema, and a pure trial function mapping
// (grid point, seed) -> metric values. Everything else — trial fan-out,
// parallel execution, aggregation, output formatting — lives in the
// generic TrialRunner and sinks, so a new experiment is just a
// registration (see scenarios.cpp for the built-in E1–E5 set).
//
// Scenarios that are not sweeps (worked-example regenerators, protocol
// traces: Fig. 1/2, E4a) register as *reports*: deterministic functions
// that print their artifact to a stream.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rtds::exp {

/// One coordinate on an axis: the numeric value handed to the trial
/// function plus the label the sinks print for it. For enum-like axes the
/// value is an index into a scenario-private list and the label is the
/// human name.
struct AxisValue {
  double value = 0.0;
  std::string label;
};

/// One named sweep dimension; the grid is the cartesian product of axes.
struct GridAxis {
  std::string header;  ///< table column header, e.g. "rate/site"
  std::string key;     ///< machine name for CSV/JSON, e.g. "rate"
  std::vector<AxisValue> values;

  /// Numeric axis; labels formatted with Table::num at `precision`.
  static GridAxis numeric(std::string header, std::string key,
                          const std::vector<double>& values, int precision);
  /// Enum-like axis; value i carries label labels[i].
  static GridAxis labeled(std::string header, std::string key,
                          std::vector<std::string> labels);
};

/// One point of the expanded grid (row-major over the axes, first axis
/// slowest — the nesting order of the hand-rolled loops it replaces).
struct GridPoint {
  std::size_t index = 0;
  std::vector<AxisValue> coords;  ///< one per axis, in axis order

  double value(std::size_t axis) const { return coords.at(axis).value; }
  const std::string& label(std::size_t axis) const {
    return coords.at(axis).label;
  }
};

/// Declares one column of a scenario's result schema; trial functions
/// return values in MetricSpec order.
struct MetricSpec {
  std::string header;   ///< table column header, e.g. "RTDS%"
  std::string key;      ///< machine name for CSV/JSON, e.g. "rtds_ratio"
  int precision = 3;    ///< table formatting precision for the mean
  double scale = 1.0;   ///< table display multiplier (100 for ratios)
};

/// Metric values in ScenarioSpec::metrics order. NaN = "not measured in
/// this trial" (e.g. E1 skips the broadcast baseline on huge networks);
/// the aggregator drops NaNs so the cell's count stays honest.
using TrialResult = std::vector<double>;

/// One trial: (grid point, seed) -> metric values. Must be *pure* — no
/// shared mutable state, all randomness from the given seed — which is
/// what makes the parallel runner bit-deterministic (DESIGN.md §6).
using TrialFn = std::function<TrialResult(const GridPoint&, std::uint64_t)>;

/// How per-trial seeds are chosen (rtds_exp --seeds overrides at run time).
enum class SeedMode {
  kDerived,  ///< trial_seed(name, grid_index, replicate) — the default
  kFixed,    ///< every trial uses fixed_seed (legacy bench_e* tables used
             ///< one shared seed for the whole sweep)
};

/// The full declarative description of one experiment sweep — everything
/// run_scenario needs to expand, execute, aggregate and render it.
struct ScenarioSpec {
  std::string name;         ///< registry key, e.g. "e2_guarantee_ratio"
  std::string title;        ///< printed above the table by run_and_print
  std::string description;  ///< one-liner for --list
  std::vector<GridAxis> axes;      ///< sweep dimensions (product = grid)
  std::vector<MetricSpec> metrics; ///< result schema, in trial-value order
  std::size_t replicates = 1;      ///< trials per grid point
  SeedMode seed_mode = SeedMode::kDerived;
  std::uint64_t fixed_seed = 42;   ///< the kFixed shared seed
  TrialFn trial;                   ///< the pure per-trial function
  /// Trials construct RtdsSystems, so the snap warm-start cache
  /// (RunOptions::warm_start, rtds_exp --warm-start) can reuse one
  /// serialized bring-up per (topology, h). True for every built-in sweep
  /// (they all run the rtds policy at least once per trial); a future
  /// baseline-only scenario should clear it so --list stays honest.
  bool warm_start = true;

  /// Product of axis sizes.
  std::size_t grid_size() const;
  /// Decodes a row-major grid index into its coordinates.
  GridPoint grid_point(std::size_t index) const;
  /// grid_size() × replicates — the number of trial executions.
  std::size_t trial_count() const { return grid_size() * replicates; }
  /// The seed a given (grid point, replicate) trial receives under the
  /// spec's seed mode (see exp/seed.hpp for the derivation).
  std::uint64_t seed_for(std::size_t grid_index, std::size_t replicate) const;
};

/// A non-sweep scenario: prints its deterministic artifact to the stream.
using ReportFn = std::function<void(std::ostream&)>;

/// Process-wide scenario registry. Built-ins are installed by
/// register_builtin_scenarios() (scenarios.hpp); anything may add more.
class Registry {
 public:
  /// The process-wide registry (static-initialization safe).
  static Registry& instance();

  /// Registers a sweep scenario under spec.name (duplicates throw).
  void add(ScenarioSpec spec);
  /// Registers a report scenario (duplicates throw).
  void add_report(std::string name, std::string description, ReportFn fn);

  /// nullptr when absent.
  const ScenarioSpec* find(const std::string& name) const;
  /// nullptr when absent.
  const ReportFn* find_report(const std::string& name) const;
  /// Description of a registered report; throws for unknown names.
  const std::string& report_description(const std::string& name) const;

  /// Registered sweep names, sorted.
  std::vector<std::string> scenario_names() const;
  /// Registered report names, sorted.
  std::vector<std::string> report_names() const;

 private:
  std::map<std::string, ScenarioSpec> scenarios_;
  struct Report {
    std::string description;
    ReportFn fn;
  };
  std::map<std::string, Report> reports_;
};

/// Runs a registered report scenario, printing its artifact to `os`.
/// Throws ContractViolation for unknown names.
void run_report(const std::string& name, std::ostream& os);

}  // namespace rtds::exp
