#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>

#include "exp/sinks.hpp"
#include "snap/io.hpp"
#include "snap/journal.hpp"
#include "snap/warm_start.hpp"
#include "util/error.hpp"

namespace rtds::exp {

namespace {

/// Scoped enable for the process-global warm-start cache: restores the
/// previous state on exit so a --verify re-run (or a nested scenario)
/// sees exactly the mode its caller chose.
class WarmStartScope {
 public:
  explicit WarmStartScope(bool enable)
      : previous_(snap::warm_start_enabled()) {
    if (enable) snap::set_warm_start_enabled(true);
  }
  ~WarmStartScope() { snap::set_warm_start_enabled(previous_); }
  WarmStartScope(const WarmStartScope&) = delete;
  WarmStartScope& operator=(const WarmStartScope&) = delete;

 private:
  bool previous_;
};

/// Runs trials [0, trials) of `spec`, storing each result in its slot.
/// With `observe` set, each trial additionally writes into its own
/// metrics/trace slot — same pre-sized-slot-array scheme as the results,
/// so observability output inherits the worker-count invariance.
void run_trials(const ScenarioSpec& spec, std::size_t replicates,
                std::size_t jobs, std::vector<TrialResult>& slots,
                RunObservation* observe,
                std::vector<obs::MetricsBuffer>& metric_slots,
                const std::vector<std::uint8_t>& prefilled,
                snap::SweepJournal* journal) {
  const std::size_t trials = slots.size();
  auto run_one = [&](std::size_t t) {
    if (!prefilled.empty() && prefilled[t] != 0) return;  // journal resume
    const std::size_t grid_index = t / replicates;
    const std::size_t replicate = t % replicates;
    std::optional<obs::Scope> scope;
    if (observe != nullptr)
      scope.emplace(&metric_slots[t],
                    observe->record_traces ? &observe->traces[t] : nullptr);
    TrialResult result = spec.trial(spec.grid_point(grid_index),
                                    spec.seed_for(grid_index, replicate));
    RTDS_CHECK_MSG(result.size() == spec.metrics.size(),
                   "scenario " << spec.name << " trial returned "
                               << result.size() << " metrics, declared "
                               << spec.metrics.size());
    slots[t] = std::move(result);
    scope.reset();  // unbind before journaling the trial's buffer
    if (journal != nullptr)
      journal->append(t, slots[t],
                      observe != nullptr ? &metric_slots[t] : nullptr);
  };

  if (jobs <= 1) {
    for (std::size_t t = 0; t < trials; ++t) run_one(t);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      // Stop dispatching once any trial failed: the run's result is
      // doomed either way, don't burn the remaining trials' compute.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t t = next.fetch_add(1);
      if (t >= trials) return;
      try {
        run_one(t);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) workers.emplace_back(worker);
  for (auto& w : workers) w.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace

std::vector<AggregateRow> run_scenario(const ScenarioSpec& spec,
                                       const RunOptions& opts) {
  const std::size_t replicates =
      opts.replicates > 0 ? opts.replicates : spec.replicates;
  RTDS_REQUIRE(replicates > 0);
  const std::size_t points = spec.grid_size();
  const std::size_t trials = points * replicates;
  const std::size_t jobs = std::min(std::max<std::size_t>(opts.jobs, 1),
                                    std::max<std::size_t>(trials, 1));

  const WarmStartScope warm(opts.warm_start);
  std::vector<TrialResult> slots(trials);
  std::vector<obs::MetricsBuffer> metric_slots;
  if (opts.observe != nullptr) {
    metric_slots.resize(trials);
    opts.observe->traces.assign(trials, obs::TraceRecorder{});
  }

  // Crash-recovery journal (snap/journal.hpp): completed trials append as
  // they finish; a resume prefills their slots and re-runs only the rest.
  std::unique_ptr<snap::SweepJournal> journal;
  std::vector<std::uint8_t> prefilled;
  if (!opts.journal_path.empty()) {
    snap::HashAbsorber h;
    h.str("sweep-journal");
    h.str(spec.name);
    h.u64(points);
    h.u64(replicates);
    h.u64(spec.metrics.size());
    h.u64(static_cast<std::uint64_t>(spec.seed_mode));
    h.u64(spec.fixed_seed);
    h.u64(opts.observe != nullptr ? 1 : 0);
    const std::uint64_t sweep_hash = h.digest();
    if (opts.resume) {
      std::vector<snap::JournalEntry> entries;
      journal = snap::SweepJournal::resume(opts.journal_path, sweep_hash,
                                           entries);
      prefilled.assign(trials, 0);
      for (snap::JournalEntry& e : entries) {
        if (e.trial >= trials)
          throw ContractViolation("sweep journal entry for trial " +
                                  std::to_string(e.trial) +
                                  " is outside this sweep");
        slots[e.trial] = e.values;
        prefilled[e.trial] = 1;
        // Trace recorders are not journaled: a resumed trial contributes
        // its metrics but an empty trace (long sweeps run counters-only).
        if (opts.observe != nullptr && e.has_metrics)
          metric_slots[e.trial] = std::move(e.metrics);
      }
    } else {
      journal = snap::SweepJournal::create(opts.journal_path, sweep_hash);
    }
  }

  run_trials(spec, replicates, jobs, slots, opts.observe, metric_slots,
             prefilled, journal.get());
  if (opts.observe != nullptr)
    // Trial-index merge order: commutativity makes it unnecessary for
    // correctness, but a fixed order keeps even pathological future cell
    // types (and debugging sessions) worker-count invariant.
    for (const obs::MetricsBuffer& b : metric_slots)
      opts.observe->metrics.merge(b);

  // Deterministic reduction: trial-index order, independent of which
  // worker computed which slot.
  std::vector<AggregateRow> rows;
  rows.reserve(points);
  for (std::size_t g = 0; g < points; ++g) {
    AggregateRow row;
    row.point = spec.grid_point(g);
    row.cells.resize(spec.metrics.size());
    for (std::size_t r = 0; r < replicates; ++r) {
      const TrialResult& result = slots[g * replicates + r];
      for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
        const double v = result[m];
        if (std::isnan(v)) continue;
        row.cells[m].stat.add(v);
        row.cells[m].samples.add(v);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

bool aggregates_identical(const std::vector<AggregateRow>& a,
                          const std::vector<AggregateRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].cells.size() != b[i].cells.size()) return false;
    for (std::size_t m = 0; m < a[i].cells.size(); ++m) {
      const AggregateCell& x = a[i].cells[m];
      const AggregateCell& y = b[i].cells[m];
      if (x.stat.count() != y.stat.count()) return false;
      if (x.stat.count() == 0) continue;
      if (x.stat.sum() != y.stat.sum() || x.stat.mean() != y.stat.mean() ||
          x.stat.variance() != y.stat.variance() ||
          x.stat.min() != y.stat.min() || x.stat.max() != y.stat.max())
        return false;
      // Samples may have been sorted in place by a percentile query on one
      // side only; compare as multisets.
      auto xs = x.samples.values();
      auto ys = y.samples.values();
      std::sort(xs.begin(), xs.end());
      std::sort(ys.begin(), ys.end());
      if (xs != ys) return false;
    }
  }
  return true;
}

void run_and_print(const std::string& name, std::ostream& os,
                   const RunOptions& opts) {
  const ScenarioSpec* spec = Registry::instance().find(name);
  RTDS_REQUIRE_MSG(spec != nullptr, "unknown scenario " << name);
  const auto rows = run_scenario(*spec, opts);
  if (!spec->title.empty()) os << spec->title << "\n";
  TableSink().write(*spec, rows, os);
}

}  // namespace rtds::exp
