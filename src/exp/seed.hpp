// Deterministic per-trial seed derivation.
//
// Every trial in a scenario run is identified by (scenario name, grid
// index, replicate). Its RNG seed is a pure function of that identity, so
// any single trial can be reproduced in isolation — `rtds_exp --scenario X
// --point G --replicate R` re-runs exactly the trial a full sweep would
// have run, regardless of how many workers the sweep used or in what order
// they picked trials. See DESIGN.md §"Experiment subsystem".
#pragma once

#include <cstdint>
#include <string_view>

namespace rtds::exp {

/// FNV-1a 64-bit string hash (stable across platforms and runs).
std::uint64_t fnv1a64(std::string_view s);

/// Seed for trial (scenario, grid_index, replicate): the scenario-name hash
/// absorbed with the grid index and replicate through SplitMix64 finalizers
/// so nearby indices map to statistically independent seeds.
std::uint64_t trial_seed(std::string_view scenario, std::size_t grid_index,
                         std::size_t replicate);

}  // namespace rtds::exp
