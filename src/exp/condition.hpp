// Experiment conditions: a topology family × workload family bound to one
// concrete (topology, arrivals) pair by a seed.
//
// This is the declarative half of a ScenarioSpec trial: scenario trial
// functions bind grid-point values into a ConditionSpec, call
// make_condition with the trial's derived seed, and run whichever
// schedulers the experiment compares. Moved here from bench/common.hpp so
// scenarios, tests and the rtds_exp CLI share one definition.
#pragma once

#include <vector>

#include "core/rtds_system.hpp"
#include "net/generators.hpp"
#include "policy/param_map.hpp"

namespace rtds::exp {

/// One experiment condition: a topology plus a workload on it.
struct Condition {
  Topology topo;
  std::vector<JobArrival> arrivals;
};

struct ConditionSpec {
  NetShape net = NetShape::kGrid;
  std::size_t sites = 64;
  double delay_min = 0.5, delay_max = 2.0;
  double rate = 0.02;
  Time horizon = 1500.0;
  double laxity_min = 2.0, laxity_max = 6.0;
  std::size_t min_tasks = 4, max_tasks = 12;
  std::uint64_t seed = 42;
  /// Arrival-process knobs (previously only reachable by hand-building a
  /// WorkloadConfig): MMPP burstiness and the deadline base. Defaults
  /// match WorkloadConfig, so untouched specs generate identical bytes.
  ArrivalProcess process = ArrivalProcess::kPoisson;
  Time burst_on_mean = 50.0;
  Time burst_off_mean = 200.0;
  double burst_multiplier = 6.0;
  DeadlineModel deadline_model = DeadlineModel::kCriticalPath;
};

/// The topology half of make_condition (same Rng(seed) draw order, so the
/// returned topology is bit-identical to make_condition(spec).topo).
Topology make_topology(const ConditionSpec& spec);

/// The workload half of make_condition: the WorkloadConfig a spec implies.
WorkloadConfig workload_config(const ConditionSpec& spec);

/// Decodes the shared workload.* ParamMap keys (load/load_params.hpp) onto
/// the spec. The diurnal process is open-system-only and maps to kPoisson
/// here — callers wanting it route generation through
/// load::generate_open_workload / an ArrivalSource instead.
void apply_workload_params(const policy::ParamMap& params, ConditionSpec& spec);

Condition make_condition(const ConditionSpec& spec);

RunMetrics run_rtds(const Condition& c, const SystemConfig& cfg);

/// The two workload regimes discussed throughout EXPERIMENTS.md: generous
/// windows over expensive links (cooperation as offloading) vs windows
/// tighter than total work over cheap links (cooperation as partitioning).
ConditionSpec offload_regime();
ConditionSpec parallel_regime();

}  // namespace rtds::exp
