// Experiment conditions: a topology family × workload family bound to one
// concrete (topology, arrivals) pair by a seed.
//
// This is the declarative half of a ScenarioSpec trial: scenario trial
// functions bind grid-point values into a ConditionSpec, call
// make_condition with the trial's derived seed, and run whichever
// schedulers the experiment compares. Moved here from bench/common.hpp so
// scenarios, tests and the rtds_exp CLI share one definition.
#pragma once

#include <vector>

#include "core/rtds_system.hpp"
#include "net/generators.hpp"

namespace rtds::exp {

/// One experiment condition: a topology plus a workload on it.
struct Condition {
  Topology topo;
  std::vector<JobArrival> arrivals;
};

struct ConditionSpec {
  NetShape net = NetShape::kGrid;
  std::size_t sites = 64;
  double delay_min = 0.5, delay_max = 2.0;
  double rate = 0.02;
  Time horizon = 1500.0;
  double laxity_min = 2.0, laxity_max = 6.0;
  std::size_t min_tasks = 4, max_tasks = 12;
  std::uint64_t seed = 42;
};

Condition make_condition(const ConditionSpec& spec);

RunMetrics run_rtds(const Condition& c, const SystemConfig& cfg);

/// The two workload regimes discussed throughout EXPERIMENTS.md: generous
/// windows over expensive links (cooperation as offloading) vs windows
/// tighter than total work over cheap links (cooperation as partitioning).
ConditionSpec offload_regime();
ConditionSpec parallel_regime();

}  // namespace rtds::exp
