// Report scenarios: deterministic printed artifacts that are not sweeps —
// the Figure 1 protocol trace, the Figure 2/3/4 + Table 1 worked example,
// and the E4a mapper case-boundary table. Bodies moved verbatim from the
// legacy bench binaries; the benches are now thin drivers over run_report.
#include <ostream>

#include "core/mapper.hpp"
#include "core/rtds_system.hpp"
#include "dag/dot.hpp"
#include "dag/generators.hpp"
#include "exp/scenario.hpp"
#include "net/generators.hpp"
#include "sched/gantt.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace rtds::exp {

namespace {

// --------------------------------------------------- Figure 1: trace ----

void fig1_protocol(std::ostream& os) {
  // The sink captures `os` by reference; restore on every exit path so a
  // throwing run can't leave a dangling-stream sink installed globally.
  struct LogGuard {
    ~LogGuard() {
      Log::set_sink(nullptr);
      Log::set_level(LogLevel::kOff);
    }
  } guard;
  Log::set_level(LogLevel::kTrace);
  Log::set_sink([&os](LogLevel, const std::string& msg) {
    os << "  | " << msg << "\n";
  });

  Rng rng(7);
  Topology topo = make_grid(3, 3, DelayRange{0.5, 1.0}, rng);
  SystemConfig cfg;
  cfg.node.sphere_radius_h = 2;
  RtdsSystem system(std::move(topo), cfg);

  os << "=== Figure 1: RTDS phase flow (traced run) ===\n";
  os << "network: 3x3 grid, h=2; job = paper Figure 2 DAG\n\n";

  // Pre-load the arrival site so the §5 local test fails.
  auto filler = std::make_shared<Job>();
  filler->id = 1;
  filler->dag = paper_example();
  filler->release = 0.0;
  filler->deadline = 1000.0;

  auto job = std::make_shared<Job>();
  job->id = 2;
  job->dag = paper_example();
  job->release = 0.5;
  job->deadline = 0.5 + 1.6 * job->dag.total_work();

  os << "[phase] job 1 arrives at site 4 (filler, accepted locally)\n";
  os << "[phase] job 2 arrives at site 4: local test -> ACS -> "
        "mapping -> validation -> coupling -> execution\n\n";
  system.run({{4, filler}, {4, job}});

  os << "\n=== outcome ===\n";
  Table t({"job", "outcome", "ACS size", "link messages", "decision time"});
  for (const auto& d : system.decisions())
    t.add_row({std::to_string(d.job), to_string(d.outcome),
               Table::num(d.acs_size),
               Table::num(std::size_t{d.link_messages}),
               Table::num(d.decision_time, 2)});
  t.print(os);

  os << "\nmessage budget by category:\n";
  Table cat({"category", "sends", "link messages"});
  for (const auto& [category, entry] : system.metrics().transport.by_category)
    cat.add_row({msg_category_name(category),
                 Table::num(std::size_t{entry.sends}),
                 Table::num(std::size_t{entry.link_messages})});
  cat.print(os);
}

// --------------------------------- Figure 2/3/4 + Table 1: worked example ----

void print_schedule(std::ostream& os, const char* title, const Dag& dag,
                    const TrialMapping& m, const std::vector<Time>& start,
                    const std::vector<Time>& finish) {
  os << title << "\n";
  Table t({"task", "processor", "start", "finish"});
  for (TaskId task = 0; task < dag.task_count(); ++task)
    t.add_row({"t" + std::to_string(task + 1),
               "p" + std::to_string(m.assignment[task] + 1),
               Table::num(start[task], 1), Table::num(finish[task], 1)});
  t.print(os);
  // Gantt view, one row per logical processor (as drawn in the paper).
  std::vector<GanttRow> rows(m.used_processors);
  Time horizon = 0.0;
  for (TaskId task = 0; task < dag.task_count(); ++task) {
    auto& row = rows[m.assignment[task]];
    row.label = "p" + std::to_string(m.assignment[task] + 1);
    row.reservations.push_back(
        Reservation{0, task, start[task], finish[task]});
    horizon = std::max(horizon, finish[task]);
  }
  os << "\n" << render_gantt(rows, 0.0, horizon) << "\n";
}

void fig2_table1(std::ostream& os) {
  const Dag dag = paper_example();

  os << "=== Figure 2: task graph instance ===\n";
  Table fig2({"task", "c(ti)", "successors"});
  for (TaskId t = 0; t < dag.task_count(); ++t) {
    std::string succs;
    for (TaskId s : dag.successors(t)) {
      if (!succs.empty()) succs += ", ";
      succs += "t" + std::to_string(s + 1);
    }
    fig2.add_row({"t" + std::to_string(t + 1), Table::num(dag.cost(t), 0),
                  succs.empty() ? "-" : succs});
  }
  fig2.print(os);
  os << "\nDOT:\n" << to_dot(dag, "figure2") << "\n";

  MapperInput in;
  in.dag = &dag;
  in.release = 0.0;
  in.deadline = 66.0;
  in.surpluses = {0.5, 0.4};
  in.comm_diameter = 3.0;
  const auto m = build_trial_mapping(in);
  RTDS_CHECK_MSG(m.has_value(),
                 "mapper unexpectedly rejected the paper instance");

  os << "parameters: I1=0.5  I2=0.4  omega(ACS diameter)=3  r=0  d=66\n\n";
  print_schedule(os, "=== Figure 3: schedule S (surplus-degraded) ===", dag,
                 *m, m->s_start, m->s_finish);
  os << "makespan M = " << m->makespan << "   (paper: 33)\n\n";
  print_schedule(os, "=== Figure 4: schedule S* (100% surplus) ===", dag, *m,
                 m->star_start, m->star_finish);
  os << "makespan M* = " << m->makespan_full << "   (paper: 19)\n\n";

  os << "=== Table 1: adjusted r(ti) and d(ti) ===\n";
  os << "adjustment: case " << to_string(m->adjustment)
     << ", scaling factor (d-r)/M = "
     << (in.deadline - in.release) / m->makespan << "\n";
  Table t1({"ti", "ri", "di", "r(ti)", "d(ti)"});
  for (TaskId t = 0; t < dag.task_count(); ++t)
    t1.add_row({std::to_string(t + 1), Table::num(m->s_start[t], 0),
                Table::num(m->s_finish[t], 0), Table::num(m->release[t], 0),
                Table::num(m->deadline[t], 0)});
  t1.print(os);
  os << "\npaper Table 1:   (0,12,0,24) (0,10,0,20) (13,21,24,42) "
        "(15,20,27,40) (23,33,43,66)\n";
}

// -------------------------------------- E4a: mapper case boundaries ----

void e4a_case_boundaries(std::ostream& os) {
  const Dag dag = paper_example();
  Table t({"d - r", "case", "accepted windows"});
  for (double window : {15.0, 19.0, 22.0, 28.0, 32.999, 33.0, 40.0, 66.0}) {
    MapperInput in;
    in.dag = &dag;
    in.release = 0.0;
    in.deadline = window;
    in.surpluses = {0.5, 0.4};
    in.comm_diameter = 3.0;
    AdjustmentCase failure = AdjustmentCase::kReject;
    const auto m = build_trial_mapping(in, {}, &failure);
    t.add_row({Table::num(window, 3),
               m ? to_string(m->adjustment) : to_string(failure),
               m ? "yes" : "no"});
  }
  t.print(os);
}

}  // namespace

void register_builtin_reports() {
  auto& registry = Registry::instance();
  registry.add_report(
      "fig1_protocol",
      "Figure 1 regenerated as a live traced protocol run (3x3 grid)",
      fig1_protocol);
  registry.add_report(
      "fig2_table1",
      "Figures 2-4 and Table 1 worked example, cell-for-cell",
      fig2_table1);
  registry.add_report(
      "e4a_case_boundaries",
      "E4a: §12.2 case boundaries on the paper instance (M* = 19, M = 33)",
      e4a_case_boundaries);
}

}  // namespace rtds::exp
