#include "exp/seed.hpp"

#include "util/rng.hpp"

namespace rtds::exp {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t trial_seed(std::string_view scenario, std::size_t grid_index,
                         std::size_t replicate) {
  std::uint64_t h = fnv1a64(scenario);
  h = SplitMix64(h ^ (0x9e3779b97f4a7c15ULL * (grid_index + 1))).next();
  h = SplitMix64(h ^ (0xbf58476d1ce4e5b9ULL * (replicate + 1))).next();
  return h;
}

}  // namespace rtds::exp
