#include "routing/pcs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtds {

bool Pcs::contains(SiteId s) const { return member_index_.contains(s); }

const PcsMember& Pcs::member(SiteId s) const { return members_[index_of(s)]; }

Time Pcs::delay(SiteId a, SiteId b) const {
  return pair_delay_[index_of(a) * members_.size() + index_of(b)];
}

std::size_t Pcs::hops(SiteId a, SiteId b) const {
  return pair_hops_[index_of(a) * members_.size() + index_of(b)];
}

Time Pcs::delay_diameter() const {
  Time best = 0.0;
  for (Time d : pair_delay_) best = std::max(best, d);
  return best;
}

std::size_t Pcs::hop_diameter() const {
  std::size_t best = 0;
  for (std::size_t h : pair_hops_) best = std::max(best, h);
  return best;
}

Time Pcs::delay_diameter_of(const std::vector<SiteId>& subset) const {
  const auto m = members_.size();
  Time best = 0.0;
  for (SiteId a : subset) {
    const Time* row = pair_delay_.data() + index_of(a) * m;
    for (SiteId b : subset) best = std::max(best, row[index_of(b)]);
  }
  return best;
}

std::size_t Pcs::hop_diameter_of(const std::vector<SiteId>& subset) const {
  const auto m = members_.size();
  std::size_t best = 0;
  for (SiteId a : subset) {
    const std::size_t* row = pair_hops_.data() + index_of(a) * m;
    for (SiteId b : subset) best = std::max(best, row[index_of(b)]);
  }
  return best;
}

Pcs Pcs::build(const std::vector<RoutingTable>& tables, SiteId root,
               std::size_t radius_h) {
  RTDS_REQUIRE(root < tables.size());
  Pcs pcs;
  pcs.root_ = root;
  pcs.radius_ = radius_h;

  // Scan the root's sphere-local slots only (never the whole topology).
  // Slots are sorted by destination id — a RoutingTable invariant — so
  // members_ comes out sorted by site id, as documented.
  const RoutingTable& root_table = tables[root];
  pcs.members_.reserve(root_table.size());
  for (std::size_t slot = 0; slot < root_table.slot_count(); ++slot) {
    const RouteLine& line = root_table.line_at(slot);
    if (line.dist != kInfiniteTime && line.hops <= radius_h)
      pcs.members_.push_back(
          PcsMember{root_table.dest_at(slot), line.dist,
                    static_cast<std::size_t>(line.hops)});
  }
  pcs.member_index_.reserve(pcs.members_.size());
  for (std::size_t i = 0; i < pcs.members_.size(); ++i)
    pcs.member_index_[pcs.members_[i].site] = static_cast<std::uint32_t>(i);

  const auto m = pcs.members_.size();
  pcs.pair_delay_.assign(m * m, 0.0);
  pcs.pair_hops_.assign(m * m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const SiteId a = pcs.members_[i].site;
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const SiteId b = pcs.members_[j].site;
      if (const RouteLine* line = tables[a].find(b)) {
        pcs.pair_delay_[i * m + j] = line->dist;
        pcs.pair_hops_[i * m + j] = line->hops;
      } else {
        // Relay through the root: always possible inside the sphere and a
        // safe over-estimate (the paper only needs an upper bound ω).
        pcs.pair_delay_[i * m + j] =
            pcs.members_[i].delay + pcs.members_[j].delay;
        pcs.pair_hops_[i * m + j] = pcs.members_[i].hops + pcs.members_[j].hops;
      }
    }
  }
  return pcs;
}

}  // namespace rtds
