#include "routing/pcs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtds {

bool Pcs::contains(SiteId s) const {
  return s < member_index_.size() && member_index_[s] != kNotMember;
}

const PcsMember& Pcs::member(SiteId s) const { return members_[index_of(s)]; }

Time Pcs::delay(SiteId a, SiteId b) const {
  return pair_delay_[index_of(a) * members_.size() + index_of(b)];
}

std::size_t Pcs::hops(SiteId a, SiteId b) const {
  return pair_hops_[index_of(a) * members_.size() + index_of(b)];
}

Time Pcs::delay_diameter() const {
  Time best = 0.0;
  for (Time d : pair_delay_) best = std::max(best, d);
  return best;
}

std::size_t Pcs::hop_diameter() const {
  std::size_t best = 0;
  for (std::size_t h : pair_hops_) best = std::max(best, h);
  return best;
}

Time Pcs::delay_diameter_of(const std::vector<SiteId>& subset) const {
  const auto m = members_.size();
  Time best = 0.0;
  for (SiteId a : subset) {
    const Time* row = pair_delay_.data() + index_of(a) * m;
    for (SiteId b : subset) best = std::max(best, row[index_of(b)]);
  }
  return best;
}

std::size_t Pcs::hop_diameter_of(const std::vector<SiteId>& subset) const {
  const auto m = members_.size();
  std::size_t best = 0;
  for (SiteId a : subset) {
    const std::size_t* row = pair_hops_.data() + index_of(a) * m;
    for (SiteId b : subset) best = std::max(best, row[index_of(b)]);
  }
  return best;
}

Pcs Pcs::build(const std::vector<RoutingTable>& tables, SiteId root,
               std::size_t radius_h) {
  RTDS_REQUIRE(root < tables.size());
  Pcs pcs;
  pcs.root_ = root;
  pcs.radius_ = radius_h;

  // Ascending destination scan, so members_ comes out sorted by site id.
  const RoutingTable& root_table = tables[root];
  pcs.member_index_.assign(tables.size(), kNotMember);
  std::size_t member_count = 0;
  for (SiteId dest = 0; dest < root_table.site_count(); ++dest)
    if (root_table.has_route(dest) &&
        root_table.route(dest).hops <= radius_h)
      ++member_count;
  pcs.members_.reserve(member_count);
  for (SiteId dest = 0; dest < root_table.site_count(); ++dest) {
    if (!root_table.has_route(dest)) continue;
    const RouteLine& line = root_table.route(dest);
    if (line.hops <= radius_h) {
      pcs.member_index_[dest] = static_cast<std::int32_t>(pcs.members_.size());
      pcs.members_.push_back(PcsMember{dest, line.dist, line.hops});
    }
  }

  const auto m = pcs.members_.size();
  pcs.pair_delay_.assign(m * m, 0.0);
  pcs.pair_hops_.assign(m * m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const SiteId a = pcs.members_[i].site;
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const SiteId b = pcs.members_[j].site;
      if (const RouteLine* line = tables[a].find(b)) {
        pcs.pair_delay_[i * m + j] = line->dist;
        pcs.pair_hops_[i * m + j] = line->hops;
      } else {
        // Relay through the root: always possible inside the sphere and a
        // safe over-estimate (the paper only needs an upper bound ω).
        pcs.pair_delay_[i * m + j] =
            pcs.members_[i].delay + pcs.members_[j].delay;
        pcs.pair_hops_[i * m + j] = pcs.members_[i].hops + pcs.members_[j].hops;
      }
    }
  }
  return pcs;
}

}  // namespace rtds
