#include "routing/pcs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtds {

bool Pcs::contains(SiteId s) const {
  return std::any_of(members_.begin(), members_.end(),
                     [s](const PcsMember& m) { return m.site == s; });
}

std::size_t Pcs::index_of(SiteId s) const {
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (members_[i].site == s) return i;
  RTDS_REQUIRE_MSG(false, "site " << s << " not in PCS(" << root_ << ")");
  return 0;
}

const PcsMember& Pcs::member(SiteId s) const { return members_[index_of(s)]; }

Time Pcs::delay(SiteId a, SiteId b) const {
  return pair_delay_[index_of(a)][index_of(b)];
}

std::size_t Pcs::hops(SiteId a, SiteId b) const {
  return pair_hops_[index_of(a)][index_of(b)];
}

Time Pcs::delay_diameter() const {
  Time best = 0.0;
  for (const auto& row : pair_delay_)
    for (Time d : row) best = std::max(best, d);
  return best;
}

std::size_t Pcs::hop_diameter() const {
  std::size_t best = 0;
  for (const auto& row : pair_hops_)
    for (std::size_t h : row) best = std::max(best, h);
  return best;
}

Time Pcs::delay_diameter_of(const std::vector<SiteId>& subset) const {
  Time best = 0.0;
  for (SiteId a : subset) {
    const auto ia = index_of(a);
    for (SiteId b : subset) best = std::max(best, pair_delay_[ia][index_of(b)]);
  }
  return best;
}

std::size_t Pcs::hop_diameter_of(const std::vector<SiteId>& subset) const {
  std::size_t best = 0;
  for (SiteId a : subset) {
    const auto ia = index_of(a);
    for (SiteId b : subset) best = std::max(best, pair_hops_[ia][index_of(b)]);
  }
  return best;
}

Pcs Pcs::build(const std::vector<RoutingTable>& tables, SiteId root,
               std::size_t radius_h) {
  RTDS_REQUIRE(root < tables.size());
  Pcs pcs;
  pcs.root_ = root;
  pcs.radius_ = radius_h;

  const RoutingTable& root_table = tables[root];
  for (const auto& [dest, line] : root_table.lines()) {
    if (line.dist == kInfiniteTime) continue;
    if (line.hops <= radius_h)
      pcs.members_.push_back(PcsMember{dest, line.dist, line.hops});
  }
  std::sort(pcs.members_.begin(), pcs.members_.end(),
            [](const PcsMember& a, const PcsMember& b) {
              return a.site < b.site;
            });

  const auto m = pcs.members_.size();
  pcs.pair_delay_.assign(m, std::vector<Time>(m, 0.0));
  pcs.pair_hops_.assign(m, std::vector<std::size_t>(m, 0));
  for (std::size_t i = 0; i < m; ++i) {
    const SiteId a = pcs.members_[i].site;
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const SiteId b = pcs.members_[j].site;
      if (tables[a].has_route(b) &&
          tables[a].route(b).dist != kInfiniteTime) {
        const auto& line = tables[a].route(b);
        pcs.pair_delay_[i][j] = line.dist;
        pcs.pair_hops_[i][j] = line.hops;
      } else {
        // Relay through the root: always possible inside the sphere and a
        // safe over-estimate (the paper only needs an upper bound ω).
        pcs.pair_delay_[i][j] =
            pcs.members_[i].delay + pcs.members_[j].delay;
        pcs.pair_hops_[i][j] = pcs.members_[i].hops + pcs.members_[j].hops;
      }
    }
  }
  return pcs;
}

}  // namespace rtds
