// Potential Computing Sphere (§6, §7).
//
// PCS(k) = every site whose minimum-delay path from k uses at most h hops,
// together with the control structure RTDS needs: per-member delay/hops
// from the root and pairwise delays between members (available because the
// APSP was run for 2h phases). Built once at system initialization: the
// paper's spheres are static, and under injected faults (DESIGN.md §9)
// membership deliberately stays construction-time — dead members are what
// the enrollment/validation timeouts recover from, while routing repair
// only refreshes the tables underneath.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "routing/routing_table.hpp"
#include "util/flat_map.hpp"

namespace rtds {

struct PcsMember {
  SiteId site = kNoSite;
  Time delay = 0.0;        ///< min delay from the root (<= h hops)
  std::size_t hops = 0;    ///< hop length of that path
};

class Pcs {
 public:
  Pcs() = default;

  SiteId root() const { return root_; }
  std::size_t radius() const { return radius_; }

  /// Members sorted by site id; always includes the root itself.
  const std::vector<PcsMember>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }

  bool contains(SiteId s) const;
  const PcsMember& member(SiteId s) const;

  /// Pairwise delay / hop count between two members (root-relayed upper
  /// bound when the interrupted APSP did not surface a direct line).
  Time delay(SiteId a, SiteId b) const;
  std::size_t hops(SiteId a, SiteId b) const;

  /// Max pairwise delay / hops over all members ("computed diameter", the
  /// paper's over-estimate ω for communication inside the sphere, §12).
  Time delay_diameter() const;
  std::size_t hop_diameter() const;

  /// Same, restricted to a subset of member sites (the ACS of a given job).
  Time delay_diameter_of(const std::vector<SiteId>& subset) const;
  std::size_t hop_diameter_of(const std::vector<SiteId>& subset) const;

  /// Builds PCS(root) from APSP tables that ran for >= 2h phases.
  /// `tables` is indexed by site id and must cover the whole topology.
  static Pcs build(const std::vector<RoutingTable>& tables, SiteId root,
                   std::size_t radius_h);

 private:
  std::size_t index_of(SiteId s) const {
    const std::uint32_t* idx = member_index_.find(s);
    RTDS_REQUIRE_MSG(idx != nullptr,
                     "site " << s << " not in PCS(" << root_ << ")");
    return *idx;
  }

  SiteId root_ = kNoSite;
  std::size_t radius_ = 0;
  std::vector<PcsMember> members_;
  /// site id -> index into members_. Sphere-local: sized to the membership
  /// (|PCS| ≈ the 2h-hop ball), not the topology — N spheres over an
  /// N-site network used to allocate N² member-index entries, which is
  /// what capped the simulator's network size (DESIGN.md §10).
  FlatMap<SiteId, std::uint32_t> member_index_;
  // Dense member-index matrices, row-major m×m (one allocation each; a
  // vector-of-vectors cost ~30 allocations per sphere, once per site).
  std::vector<Time> pair_delay_;
  std::vector<std::size_t> pair_hops_;

  friend struct snap::Access;  // warm-start / checkpoint serialization
};

}  // namespace rtds
