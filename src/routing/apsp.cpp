#include "routing/apsp.hpp"

#include <algorithm>
#include <utility>

#include "fault/bugs.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace rtds {

namespace {

/// Scratch for the per-destination layered relaxation: O(sites) arrays
/// allocated once and reused across every destination via version stamps,
/// so one full build touches O(sites · ball) memory, never O(sites²).
struct ApspScratch {
  /// A site whose line changed last phase, with its phase-end snapshot
  /// (synchronous §7.2 semantics: offers read phase-start state, so the
  /// values ride in the frontier, not in the live arrays).
  struct Src {
    SiteId site = kNoSite;
    Time dist = 0.0;
    std::uint32_t hops = 0;
  };

  ApspScratch(const Topology& topo, const fault::FaultState* faults)
      : dist(topo.site_count()),
        hops(topo.site_count()),
        via(topo.site_count()),
        seen(topo.site_count(), 0),
        chg_stamp(topo.site_count(), 0),
        ball_stamp(topo.site_count(), 0),
        dirty_stamp(topo.site_count(), 0) {
    rebuild_live(topo, faults);
  }

  /// (Re)builds the *live* CSR adjacency: with a fault view, dead links
  /// (and with them every edge of a dead site) are filtered out up front,
  /// so the relaxation never consults FaultState per edge — the per-edge
  /// link_up binary search used to dominate the whole repair. One O(links)
  /// counting pass over Topology::links() (whose order per site matches
  /// adjacency order: add_link appends to both in the same call), not a
  /// per-pair lookup per edge. Reuses all capacity, so the per-event
  /// refresh of a long fault run allocates nothing in steady state.
  void rebuild_live(const Topology& topo, const fault::FaultState* faults) {
    const auto n = topo.site_count();
    const auto& links = topo.links();
    const auto live = [&](std::size_t i) {
      return faults == nullptr ||
             (faults->link_index_up(i) && faults->site_up(links[i].a) &&
              faults->site_up(links[i].b));
    };
    adj_off.assign(n + 1, 0);
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (!live(i)) continue;
      ++adj_off[links[i].a + 1];
      ++adj_off[links[i].b + 1];
    }
    for (std::size_t s = 1; s <= n; ++s) adj_off[s] += adj_off[s - 1];
    adj_site.resize(adj_off[n]);
    adj_delay.resize(adj_off[n]);
    adj_cursor.assign(adj_off.begin(), adj_off.end() - 1);
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (!live(i)) continue;
      const Link& l = links[i];
      adj_site[adj_cursor[l.a]] = l.b;
      adj_delay[adj_cursor[l.a]++] = l.delay;
      adj_site[adj_cursor[l.b]] = l.a;
      adj_delay[adj_cursor[l.b]++] = l.delay;
    }
  }

  std::vector<std::uint32_t> adj_off;  ///< live CSR offsets, one per site + 1
  std::vector<SiteId> adj_site;        ///< live CSR neighbour ids
  std::vector<Time> adj_delay;         ///< live CSR link delays
  std::vector<std::uint32_t> adj_cursor;  ///< rebuild_live scatter cursors
  std::vector<Time> dist;
  std::vector<std::uint32_t> hops;
  std::vector<SiteId> via;
  std::vector<std::uint64_t> seen;       ///< == tag: line exists this dest
  std::vector<std::uint64_t> chg_stamp;  ///< == tag+p: changed this phase
  std::vector<std::uint64_t> ball_stamp; ///< static-ball BFS dedup (repair)
  std::vector<std::uint64_t> dirty_stamp;///< dirty-set membership (repair)
  std::vector<Src> cur;
  std::vector<SiteId> changed;  ///< sites improved during the current phase
  std::vector<SiteId> reached;  ///< sites with a line, first-reach order
  std::uint64_t version = 0;
};

/// Runs the §7.2 phase recurrence for one destination `d` over the live
/// topology: after `phases` phases, site s's line for d is exactly the
/// interrupted-APSP table line. Offers carry phase-start snapshots (the
/// synchronous semantics of the neighbour-table exchange) and use the same
/// strict (dist, hops, next-hop-id) `better` test, so every phase computes
/// the same per-destination minimum as the merge loop; offers the merge
/// loop would re-send for lines that did not change are dropped — a
/// re-offer can never win the strict test.
std::uint64_t relax_dest(SiteId d, std::size_t phases,
                         const fault::FaultState* faults, ApspScratch& sc) {
  sc.reached.clear();
  sc.cur.clear();
  const std::uint64_t tag = sc.version + 1;
  sc.version += phases + 2;  // distinct change stamps for every phase

  // A dead destination seeds nothing: every line to it is withdrawn. (Dead
  // links — including every edge of a dead site — are already absent from
  // the live CSR, so this is the only liveness probe the relaxation makes.)
  if (faults != nullptr && !faults->site_up(d)) return tag;

  // Phase 0 — the §7.1 start condition, seen from destination d: d itself
  // plus every site with a live direct link to d.
  sc.seen[d] = tag;
  sc.dist[d] = 0.0;
  sc.hops[d] = 0;
  sc.via[d] = d;
  sc.reached.push_back(d);
  sc.cur.push_back({d, 0.0, 0});
  for (std::uint32_t e = sc.adj_off[d]; e < sc.adj_off[d + 1]; ++e) {
    const SiteId nb = sc.adj_site[e];
    sc.seen[nb] = tag;
    sc.dist[nb] = sc.adj_delay[e];
    sc.hops[nb] = 1;
    sc.via[nb] = d;
    sc.reached.push_back(nb);
    sc.cur.push_back({nb, sc.adj_delay[e], 1});
  }

  for (std::size_t p = 1; p <= phases; ++p) {
    // Scatter: every phase-(p-1) change offers itself over each live link
    // once. The per-line minimum is order-independent (the tie-break is a
    // total preference over candidate values), so source-major scatter
    // computes exactly what a per-site fold over neighbour tables would.
    const std::uint64_t phase_tag = tag + p;
    sc.changed.clear();
    for (const ApspScratch::Src& src : sc.cur) {
      const std::uint32_t end = sc.adj_off[src.site + 1];
      for (std::uint32_t e = sc.adj_off[src.site]; e < end; ++e) {
        const SiteId s = sc.adj_site[e];
        if (s == d) continue;
        const Time cand_dist = sc.adj_delay[e] + src.dist;
        const std::uint32_t cand_hops = src.hops + 1;
        if (sc.seen[s] == tag) {
          const Time cd = sc.dist[s];
          const bool better =
              time_lt(cand_dist, cd) ||
              (time_eq(cand_dist, cd) &&
               (cand_hops < sc.hops[s] ||
                (cand_hops == sc.hops[s] && src.site < sc.via[s])));
          if (!better) continue;
        } else {
          sc.seen[s] = tag;
          sc.reached.push_back(s);
        }
        sc.dist[s] = cand_dist;
        sc.hops[s] = cand_hops;
        sc.via[s] = src.site;
        if (sc.chg_stamp[s] != phase_tag) {
          sc.chg_stamp[s] = phase_tag;
          sc.changed.push_back(s);
        }
      }
    }
    RTDS_HIST("apsp.frontier", sc.changed.size());
    if (sc.changed.empty()) break;  // converged; further phases are no-ops
    // Phase-end snapshot of every changed line — next phase's offers.
    sc.cur.clear();
    for (const SiteId s : sc.changed)
      sc.cur.push_back({s, sc.dist[s], sc.hops[s]});
  }
  return tag;
}

/// Static CSR adjacency (no delays, no fault filtering) for the repair
/// path's hop-ball sweeps: the static ball over-approximates every live
/// ball (faults only remove links), which is what makes it a safe
/// dirtying rule.
struct StaticCsr {
  explicit StaticCsr(const Topology& topo) {
    const auto n = topo.site_count();
    const auto& links = topo.links();
    off.assign(n + 1, 0);
    for (const Link& l : links) {
      ++off[l.a + 1];
      ++off[l.b + 1];
    }
    for (std::size_t s = 1; s <= n; ++s) off[s] += off[s - 1];
    site.resize(off[n]);
    std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
    for (const Link& l : links) {
      site[cursor[l.a]++] = l.b;
      site[cursor[l.b]++] = l.a;
    }
  }
  std::vector<std::uint32_t> off;
  std::vector<SiteId> site;
};

/// Multi-source BFS over the static topology up to `depth` hops. Appends
/// the visited sites to `out` in BFS order.
void static_ball(const StaticCsr& csr, std::span<const SiteId> sources,
                 std::size_t depth, ApspScratch& sc, std::vector<SiteId>& out) {
  const std::uint64_t tag = ++sc.version;
  out.clear();
  for (const SiteId s : sources) {
    if (sc.ball_stamp[s] == tag) continue;
    sc.ball_stamp[s] = tag;
    out.push_back(s);
  }
  std::size_t head = 0;
  std::size_t level_end = out.size();
  for (std::size_t level = 0; level < depth && head < out.size(); ++level) {
    for (; head < level_end; ++head) {
      const SiteId at = out[head];
      for (std::uint32_t e = csr.off[at]; e < csr.off[at + 1]; ++e) {
        const SiteId nb = csr.site[e];
        if (sc.ball_stamp[nb] == tag) continue;
        sc.ball_stamp[nb] = tag;
        out.push_back(nb);
      }
    }
    level_end = out.size();
  }
}

}  // namespace

std::vector<RoutingTable> phased_apsp(const Topology& topo,
                                      std::size_t phases,
                                      const fault::FaultState* faults) {
  const auto n = topo.site_count();
  const auto site_live = [&](SiteId s) {
    return faults == nullptr || faults->site_up(s);
  };
  std::vector<RoutingTable> tables;
  tables.reserve(n);
  for (SiteId s = 0; s < n; ++s) {
    tables.emplace_back(s);
    // A down site keeps an empty table: it routes nothing until it
    // recovers and the next repair re-seeds it.
    if (phases == 0 && site_live(s)) tables.back().init_from_neighbors(topo, faults);
  }
  if (n == 0 || phases == 0) return tables;

  // Degree-based ball-size hint: a (phases+1)-hop ball on a degree-d
  // graph holds at most 1 + d·(phases+1)·(phases+2)/2 sites when growth is
  // polynomial (grids, meshes); clamping to n covers expander-like
  // topologies. Overshooting slightly costs idle capacity, undershooting
  // costs mid-build reallocations of every table.
  for (SiteId s = 0; s < n; ++s) {
    const std::size_t deg = topo.neighbors(s).size();
    const std::size_t hint =
        std::min<std::size_t>(n, 1 + deg * (phases + 1) * (phases + 2) / 2);
    tables[s].reset(n, hint);
  }

  // Destination-major sweep: each destination's lines spread at most one
  // hop per phase, so the whole build costs O(sites · ball · degree).
  // Ascending destinations leave every table's slots in ascending
  // destination order — sorted by construction, so the id→slot binary
  // search needs no per-line bookkeeping at all.
  RTDS_COUNT("apsp.build.calls");
  RTDS_COUNT_N("apsp.build.destinations", n);
  ApspScratch sc(topo, faults);
  for (SiteId d = 0; d < n; ++d) {
    relax_dest(d, phases, faults, sc);
    RTDS_HIST("apsp.build.ball", sc.reached.size());
    for (const SiteId s : sc.reached)
      tables[s].append_line(d, RouteLine{sc.dist[s], sc.via[s], sc.hops[s]});
  }
  return tables;
}

struct ApspRepairer::Impl {
  Impl(const Topology& t, std::size_t p)
      : topo(t), phases(p), sc(t, nullptr), csr(t) {}

  const Topology& topo;
  const std::size_t phases;
  ApspScratch sc;
  const StaticCsr csr;  ///< static adjacency: a property of the topology
  // Per-repair buffers, reused across events.
  std::vector<SiteId> dirty;
  std::vector<SiteId> holders;
  struct Update {
    SiteId site;
    RoutingTable::DestLine dl;
  };
  std::vector<Update> updates;
  std::vector<RoutingTable::DestLine> sorted;
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> cursor;
  RoutingTable::MergeScratch merge_scratch;
};

ApspRepairer::ApspRepairer(const Topology& topo, std::size_t phases)
    : impl_(std::make_unique<Impl>(topo, phases)) {}

ApspRepairer::~ApspRepairer() = default;

void ApspRepairer::repair(std::vector<RoutingTable>& tables,
                          const fault::FaultState* faults,
                          std::span<const SiteId> changed) {
  Impl& im = *impl_;
  const auto n = im.topo.site_count();
  const std::size_t phases = im.phases;
  RTDS_REQUIRE_MSG(tables.size() == n, "repair needs one table per site");
  if (n == 0) return;
  ApspScratch& sc = im.sc;
  sc.rebuild_live(im.topo, faults);

  // Dirtying rule (DESIGN.md §10). A line (s → d) changes only if some
  // ≤(phases+1)-hop path from s to d runs through the changed element:
  //  * flapped link (a, b): the path's sub-path from a (or b) to d spans
  //    at most `phases` hops, so d lies within `phases` static hops of an
  //    endpoint — and symmetrically for s;
  //  * crashed/recovered site x: x's *own* table spans phases+1 hops, so
  //    destinations up to phases+1 hops away are dirty.
  // Callers pass both endpoints for a link change and the single site for
  // a site change, which is how the two radii are told apart.
  std::size_t dirty_radius = changed.size() == 1 ? phases + 1 : phases;
  if (fault::injected_bug() == fault::InjectedBug::kRepairRadiusOffByOne)
    --dirty_radius;  // mutation-test target: under-dirty by one ring
  static_ball(im.csr, changed, dirty_radius, sc, im.dirty);
  std::sort(im.dirty.begin(), im.dirty.end());
  RTDS_COUNT("apsp.repair.calls");
  RTDS_COUNT_N("apsp.repair.dirty_destinations", im.dirty.size());
  RTDS_HIST("apsp.repair.scope", im.dirty.size());
  const std::uint64_t dirty_tag = ++sc.version;
  for (const SiteId s : im.dirty) sc.dirty_stamp[s] = dirty_tag;

  // Batch every line update (dest-major, so each site's batch comes out
  // sorted by destination) and apply them per table in one merge pass —
  // scattered per-line searches and insertions would dominate otherwise.
  im.updates.clear();
  for (const SiteId d : im.dirty) {
    const std::uint64_t tag = relax_dest(d, phases, faults, sc);
    // Every site whose line for d may change sits inside d's static
    // (phases+1)-hop ball *and* the dirty ball around the change; visit
    // them all so stale lines are withdrawn, not just overwritten.
    const SiteId src[1] = {d};
    static_ball(im.csr, src, phases + 1, sc, im.holders);
    for (const SiteId s : im.holders) {
      if (sc.dirty_stamp[s] != dirty_tag) continue;
      if (sc.seen[s] == tag)
        im.updates.push_back(
            {s, {d, RouteLine{sc.dist[s], sc.via[s], sc.hops[s]}}});
      else
        im.updates.push_back({s, {d, RouteLine{}}});  // withdraw if held
    }
  }

  RTDS_COUNT_N("apsp.repair.line_updates", im.updates.size());
  // Stable counting sort by site: per-site runs stay dest-ascending.
  im.counts.assign(n + 1, 0);
  for (const Impl::Update& u : im.updates) ++im.counts[u.site + 1];
  for (std::size_t s = 1; s <= n; ++s) im.counts[s] += im.counts[s - 1];
  im.sorted.resize(im.updates.size());
  im.cursor.assign(im.counts.begin(), im.counts.end() - 1);
  for (const Impl::Update& u : im.updates)
    im.sorted[im.cursor[u.site]++] = u.dl;
  for (const SiteId s : im.dirty) {
    const std::uint32_t begin = im.counts[s], end = im.counts[s + 1];
    if (begin != end)
      tables[s].apply_updates(
          std::span<const RoutingTable::DestLine>(im.sorted.data() + begin,
                                                  end - begin),
          im.merge_scratch);
  }
}

void repair_apsp(std::vector<RoutingTable>& tables, const Topology& topo,
                 std::size_t phases, const fault::FaultState* faults,
                 std::span<const SiteId> changed) {
  ApspRepairer(topo, phases).repair(tables, faults, changed);
}

namespace {

/// Per-site protocol state for the distributed run. The payload exchanged
/// between neighbours is ApspTableMsg (core/messages.hpp): the sender's
/// table as of the start of its current phase.
struct ApspSite {
  RoutingTable table;
  std::size_t phase = 0;               // next phase to send
  std::size_t received_this_phase = 0; // neighbour tables absorbed
  /// Future-phase messages, buffered until this site catches up.
  std::vector<std::pair<std::size_t, std::shared_ptr<const RoutingTable>>>
      early;
  /// (sender, phase) pairs already counted — the APSP handler's dedup
  /// guard (DESIGN.md §12): table merges are idempotent min-merges, but a
  /// duplicated neighbour table must not double-count toward
  /// received_this_phase. Bounded by neighbours × phases; linear scan is
  /// fine at that size.
  std::vector<std::pair<SiteId, std::size_t>> seen;
  bool done = false;

  /// True the first time (from, phase) is recorded, false on a duplicate.
  bool first_delivery(SiteId from, std::size_t phase) {
    for (const auto& [s, p] : seen)
      if (s == from && p == phase) return false;
    seen.emplace_back(from, phase);
    return true;
  }
};

}  // namespace

DistributedApspResult distributed_apsp(Simulator& sim, SimNetwork& net,
                                       std::size_t phases) {
  const Topology& topo = net.topology();
  const auto n = topo.site_count();
  DistributedApspResult result;

  std::vector<ApspSite> sites(n);
  for (SiteId s = 0; s < n; ++s) {
    sites[s].table = RoutingTable(s);
    sites[s].table.init_from_neighbors(topo);
  }
  if (phases == 0 || n == 0) {
    for (auto& st : sites) result.tables.push_back(std::move(st.table));
    return result;
  }

  std::size_t finished = 0;

  // send_phase(s): broadcast s's current table stamped with its phase.
  // One phase-start snapshot is shared across all neighbour sends.
  std::function<void(SiteId)> send_phase = [&](SiteId s) {
    auto& st = sites[s];
    const auto snapshot = std::make_shared<const RoutingTable>(st.table);
    for (const auto& nb : topo.neighbors(s)) {
      result.route_lines += st.table.size();
      net.send_adjacent(s, nb.site, ApspTableMsg{st.phase, snapshot},
                        kApspMessageCategory);
    }
  };

  std::function<void(SiteId)> maybe_advance = [&](SiteId s) {
    auto& st = sites[s];
    while (!st.done &&
           st.received_this_phase == topo.neighbors(s).size()) {
      st.received_this_phase = 0;
      ++st.phase;
      if (st.phase >= phases) {
        st.done = true;
        ++finished;
        if (finished == n) result.completion_time = sim.now();
        break;
      }
      send_phase(s);
      // Absorb any messages for the new phase that arrived early.
      auto& early = st.early;
      for (std::size_t i = 0; i < early.size();) {
        if (early[i].first == st.phase) {
          const SiteId from = early[i].second->owner();
          st.table.merge_from(from, topo.link_delay(s, from),
                              *early[i].second);
          ++st.received_this_phase;
          early.erase(early.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
  };

  for (SiteId s = 0; s < n; ++s) {
    net.set_handler(s, [&, s](SiteId from, const MessageBody& payload) {
      const auto& msg = std::get<ApspTableMsg>(payload);
      auto& st = sites[s];
      if (st.done) return;
      if (!st.first_delivery(from, msg.phase)) return;  // network duplicate
      if (msg.phase == st.phase) {
        st.table.merge_from(from, topo.link_delay(s, from), *msg.table);
        ++st.received_this_phase;
        maybe_advance(s);
      } else {
        // Neighbour is ahead (asynchronous links): buffer until we get
        // there. A behind-phase table is impossible — the phase lockstep
        // only advances once every neighbour's table for the current phase
        // arrived, and duplicates were filtered above.
        RTDS_CHECK_MSG(msg.phase > st.phase,
                       "duplicate phase " << msg.phase << " at site " << s);
        st.early.emplace_back(msg.phase, msg.table);
      }
    });
  }

  const auto before = net.stats().by_category[kApspMessageCategory].link_messages;
  for (SiteId s = 0; s < n; ++s) send_phase(s);
  // Degenerate sites with no neighbours (n == 1) complete immediately.
  for (SiteId s = 0; s < n; ++s) maybe_advance(s);
  sim.run();
  result.messages =
      net.stats().by_category[kApspMessageCategory].link_messages - before;

  RTDS_CHECK_MSG(finished == n, "APSP did not complete on all sites");
  result.tables.reserve(n);
  for (auto& st : sites) result.tables.push_back(std::move(st.table));
  return result;
}

}  // namespace rtds
