#include "routing/apsp.hpp"

#include <algorithm>
#include <utility>

#include "fault/fault.hpp"

namespace rtds {

std::vector<RoutingTable> phased_apsp(const Topology& topo,
                                      std::size_t phases,
                                      const fault::FaultState* faults) {
  const auto n = topo.site_count();
  const auto site_live = [&](SiteId s) {
    return faults == nullptr || faults->site_up(s);
  };
  const auto link_live = [&](SiteId a, SiteId b) {
    return faults == nullptr || faults->link_up(a, b);
  };
  std::vector<RoutingTable> tables;
  tables.reserve(n);
  for (SiteId s = 0; s < n; ++s) {
    tables.emplace_back(s);
    // A down site keeps an empty table: it routes nothing until it
    // recovers and the next repair re-seeds it.
    if (site_live(s)) tables.back().init_from_neighbors(topo, faults);
  }
  if (n == 0 || phases == 0) return tables;
  // Synchronous semantics: all merges in a phase read the phase-start
  // snapshot. The snapshot is double-buffered against the live tables:
  // after each phase only the tables that changed are re-snapshotted, and
  // merges from neighbours whose table did not change last phase are
  // skipped outright. Both are exact no-ops on the monotone min-relaxation
  // (re-offering an already-absorbed table can never win a tie), so the
  // result is bit-identical to the copy-everything-every-phase loop.
  std::vector<RoutingTable> snapshot = tables;
  std::vector<char> changed(n, 1);
  std::vector<char> changed_now(n);
  for (std::size_t phase = 0; phase < phases; ++phase) {
    std::fill(changed_now.begin(), changed_now.end(), 0);
    for (SiteId s = 0; s < n; ++s) {
      if (!site_live(s)) continue;
      for (const auto& nb : topo.neighbors(s))
        if (changed[nb.site] && link_live(s, nb.site))
          changed_now[s] |=
              tables[s].merge_from(nb.site, nb.delay, snapshot[nb.site]);
    }
    bool any = false;
    for (SiteId s = 0; s < n; ++s) {
      if (changed_now[s]) {
        snapshot[s] = tables[s];
        any = true;
      }
    }
    if (!any) break;  // converged early; further phases are no-ops
    changed.swap(changed_now);
  }
  return tables;
}

namespace {

/// Per-site protocol state for the distributed run. The payload exchanged
/// between neighbours is ApspTableMsg (core/messages.hpp): the sender's
/// table as of the start of its current phase.
struct ApspSite {
  RoutingTable table;
  std::size_t phase = 0;               // next phase to send
  std::size_t received_this_phase = 0; // neighbour tables absorbed
  std::vector<std::pair<std::size_t, RoutingTable>> early;  // future-phase msgs
  bool done = false;
};

}  // namespace

DistributedApspResult distributed_apsp(Simulator& sim, SimNetwork& net,
                                       std::size_t phases) {
  const Topology& topo = net.topology();
  const auto n = topo.site_count();
  DistributedApspResult result;

  std::vector<ApspSite> sites(n);
  for (SiteId s = 0; s < n; ++s) {
    sites[s].table = RoutingTable(s);
    sites[s].table.init_from_neighbors(topo);
  }
  if (phases == 0 || n == 0) {
    for (auto& st : sites) result.tables.push_back(std::move(st.table));
    return result;
  }

  std::size_t finished = 0;

  // send_phase(s): broadcast s's current table stamped with its phase.
  std::function<void(SiteId)> send_phase = [&](SiteId s) {
    auto& st = sites[s];
    for (const auto& nb : topo.neighbors(s)) {
      result.route_lines += st.table.size();
      net.send_adjacent(s, nb.site, ApspTableMsg{st.phase, st.table},
                        kApspMessageCategory);
    }
  };

  std::function<void(SiteId)> maybe_advance = [&](SiteId s) {
    auto& st = sites[s];
    while (!st.done &&
           st.received_this_phase == topo.neighbors(s).size()) {
      st.received_this_phase = 0;
      ++st.phase;
      if (st.phase >= phases) {
        st.done = true;
        ++finished;
        if (finished == n) result.completion_time = sim.now();
        break;
      }
      send_phase(s);
      // Absorb any messages for the new phase that arrived early.
      auto& early = st.early;
      for (std::size_t i = 0; i < early.size();) {
        if (early[i].first == st.phase) {
          const SiteId from = early[i].second.owner();
          st.table.merge_from(from, topo.link_delay(s, from), early[i].second);
          ++st.received_this_phase;
          early.erase(early.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
  };

  for (SiteId s = 0; s < n; ++s) {
    net.set_handler(s, [&, s](SiteId from, const MessageBody& payload) {
      const auto& msg = std::get<ApspTableMsg>(payload);
      auto& st = sites[s];
      if (st.done) return;
      if (msg.phase == st.phase) {
        st.table.merge_from(from, topo.link_delay(s, from), msg.table);
        ++st.received_this_phase;
        maybe_advance(s);
      } else {
        // Neighbour is ahead (asynchronous links): buffer until we get there.
        RTDS_CHECK_MSG(msg.phase > st.phase,
                       "duplicate phase " << msg.phase << " at site " << s);
        st.early.emplace_back(msg.phase, msg.table);
      }
    });
  }

  const auto before = net.stats().by_category[kApspMessageCategory].link_messages;
  for (SiteId s = 0; s < n; ++s) send_phase(s);
  // Degenerate sites with no neighbours (n == 1) complete immediately.
  for (SiteId s = 0; s < n; ++s) maybe_advance(s);
  sim.run();
  result.messages =
      net.stats().by_category[kApspMessageCategory].link_messages - before;

  RTDS_CHECK_MSG(finished == n, "APSP did not complete on all sites");
  result.tables.reserve(n);
  for (auto& st : sites) result.tables.push_back(std::move(st.table));
  return result;
}

}  // namespace rtds
