// Interrupted all-pairs shortest paths (§7.2).
//
// The paper organizes the asynchronous Bellman–Ford of [Bertsekas–Gallager]
// into logical phases: one phase = every site sends its table to all
// immediate neighbours and absorbs all neighbour tables. After p phases a
// site's distances are exact for all destinations reachable within p hops.
// The construction is *interrupted* after 2h phases so that every member of
// a hop-radius-h sphere also knows (≤2h-hop-exact) routes to every other
// member — that is what makes the PCS control structure work without any
// network-wide flooding.
//
// Two interchangeable engines:
//  * phased_apsp       — in-memory phase loop (fast path; used by system
//                        setup and as the oracle in tests);
//  * distributed_apsp  — runs the same protocol as actual messages over a
//                        SimNetwork, so the one-time PCS construction cost
//                        (messages, route lines shipped, completion time)
//                        can be measured (rtds --set measure_pcs_build=true,
//                        example traces).
// Both produce identical tables; a gtest asserts this site-by-site.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "routing/routing_table.hpp"
#include "sim/network.hpp"

namespace rtds {

/// Runs `phases` synchronous table-exchange rounds in memory. With a
/// non-null fault view the exchange is restricted to the *live* topology —
/// down sites neither seed nor merge tables (their tables come back empty)
/// and down links carry no exchange — which is exactly the repair RTDS
/// re-triggers after every topology-change notification (DESIGN.md §9).
///
/// The implementation propagates per-destination frontiers instead of
/// merging whole neighbour tables: each destination's lines spread one hop
/// per phase, and only the lines that changed last phase are re-offered
/// (a re-offer can never win the merge's strict tie-break, so dropping
/// them is exact). Cost is O(sites · |(2h+1)-hop ball| · degree) and the
/// tables produced are route-for-route identical to the neighbour-table
/// merge formulation — distributed_apsp still runs the literal §7.2
/// exchange and a gtest pins the equality site by site.
std::vector<RoutingTable> phased_apsp(
    const Topology& topo, std::size_t phases,
    const fault::FaultState* faults = nullptr);

/// Incremental §7.2 repair after a topology change (DESIGN.md §10). A
/// change at `changed` (a crashed/recovered site, or both endpoints of a
/// flapped link) can only alter routes whose destination lies within a
/// bounded static hop ball around it — every other (site, destination)
/// line is a function of unchanged topology. A repair re-runs the
/// per-destination relaxation for exactly those dirty destinations over
/// the live topology and installs (or withdraws) the affected lines in
/// place, leaving the tables bit-identical — route for route — to a
/// from-scratch phased_apsp(topo, phases, faults).
///
/// ApspRepairer is the reusable engine for one (topology, phases) pair:
/// it owns the static adjacency and the O(sites) relaxation scratch, so a
/// fault-heavy run pays only the live-adjacency refresh plus the
/// dirty-ball work per event, with no steady-state allocation churn.
class ApspRepairer {
 public:
  ApspRepairer(const Topology& topo, std::size_t phases);
  ~ApspRepairer();
  ApspRepairer(const ApspRepairer&) = delete;
  ApspRepairer& operator=(const ApspRepairer&) = delete;

  /// Repairs `tables` in place after a change at `changed` sites: pass the
  /// crashed/recovered site alone, or both endpoints of a flapped link
  /// (the two cases have different dirty radii).
  void repair(std::vector<RoutingTable>& tables,
              const fault::FaultState* faults,
              std::span<const SiteId> changed);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience wrapper around ApspRepairer (tests, tools).
void repair_apsp(std::vector<RoutingTable>& tables, const Topology& topo,
                 std::size_t phases, const fault::FaultState* faults,
                 std::span<const SiteId> changed);

struct DistributedApspResult {
  std::vector<RoutingTable> tables;
  std::uint64_t messages = 0;      ///< table-exchange link messages
  std::uint64_t route_lines = 0;   ///< total route lines shipped (volume)
  Time completion_time = 0.0;      ///< sim time when the last site finished
};

/// Message category used by the APSP exchange on the shared SimNetwork.
inline constexpr int kApspMessageCategory = 100;

/// Runs the same protocol as real messages over `net` (which must wrap the
/// same topology). Each site advances to phase p+1 once it has received all
/// neighbour tables stamped with phase p — the §7.2 logical-phase
/// organization of an otherwise asynchronous exchange.
DistributedApspResult distributed_apsp(Simulator& sim, SimNetwork& net,
                                       std::size_t phases);

}  // namespace rtds
