// Interrupted all-pairs shortest paths (§7.2).
//
// The paper organizes the asynchronous Bellman–Ford of [Bertsekas–Gallager]
// into logical phases: one phase = every site sends its table to all
// immediate neighbours and absorbs all neighbour tables. After p phases a
// site's distances are exact for all destinations reachable within p hops.
// The construction is *interrupted* after 2h phases so that every member of
// a hop-radius-h sphere also knows (≤2h-hop-exact) routes to every other
// member — that is what makes the PCS control structure work without any
// network-wide flooding.
//
// Two interchangeable engines:
//  * phased_apsp       — in-memory phase loop (fast path; used by system
//                        setup and as the oracle in tests);
//  * distributed_apsp  — runs the same protocol as actual messages over a
//                        SimNetwork, so the one-time PCS construction cost
//                        (messages, route lines shipped, completion time)
//                        can be measured (rtds --set measure_pcs_build=true,
//                        example traces).
// Both produce identical tables; a gtest asserts this site-by-site.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing_table.hpp"
#include "sim/network.hpp"

namespace rtds {

/// Runs `phases` synchronous table-exchange rounds in memory. With a
/// non-null fault view the exchange is restricted to the *live* topology —
/// down sites neither seed nor merge tables (their tables come back empty)
/// and down links carry no exchange — which is exactly the repair RTDS
/// re-triggers after every topology-change notification (DESIGN.md §9).
std::vector<RoutingTable> phased_apsp(
    const Topology& topo, std::size_t phases,
    const fault::FaultState* faults = nullptr);

struct DistributedApspResult {
  std::vector<RoutingTable> tables;
  std::uint64_t messages = 0;      ///< table-exchange link messages
  std::uint64_t route_lines = 0;   ///< total route lines shipped (volume)
  Time completion_time = 0.0;      ///< sim time when the last site finished
};

/// Message category used by the APSP exchange on the shared SimNetwork.
inline constexpr int kApspMessageCategory = 100;

/// Runs the same protocol as real messages over `net` (which must wrap the
/// same topology). Each site advances to phase p+1 once it has received all
/// neighbour tables stamped with phase p — the §7.2 logical-phase
/// organization of an otherwise asynchronous exchange.
DistributedApspResult distributed_apsp(Simulator& sim, SimNetwork& net,
                                       std::size_t phases);

}  // namespace rtds
