// Distance-vector routing tables (§7.1): route lines
// <destination, distance, next hop> maintained per site, updated by merging
// tables received from immediate neighbours (Bertsekas–Gallager distributed
// Bellman–Ford). We additionally track the hop length of the recorded path,
// which the PCS needs both for membership (hop radius h) and for charging
// routed sends with the correct number of link-messages.
#pragma once

#include <cstddef>
#include <map>

#include "net/topology.hpp"
#include "util/time.hpp"

namespace rtds {

struct RouteLine {
  Time dist = kInfiniteTime;
  SiteId next_hop = kNoSite;
  std::size_t hops = 0;
};

class RoutingTable {
 public:
  RoutingTable() = default;
  explicit RoutingTable(SiteId owner);

  SiteId owner() const { return owner_; }

  /// Installs the trivial route to self plus one-hop routes to neighbours —
  /// the §7.1 start condition.
  void init_from_neighbors(const Topology& topo);

  bool has_route(SiteId dest) const { return lines_.count(dest) > 0; }
  const RouteLine& route(SiteId dest) const;

  /// Merges a neighbour's table received over a link with the given delay:
  /// candidate distance = link delay + neighbour's distance. Shorter delay
  /// wins; on (FP-tolerant) ties, fewer hops, then smaller next-hop id, so
  /// every site converges to a *unique* minimum-delay path as §6 requires.
  /// Returns true if any line changed.
  bool merge_from(SiteId neighbor, Time link_delay, const RoutingTable& other);

  const std::map<SiteId, RouteLine>& lines() const { return lines_; }
  std::size_t size() const { return lines_.size(); }

 private:
  SiteId owner_ = kNoSite;
  std::map<SiteId, RouteLine> lines_;
};

}  // namespace rtds
