// Distance-vector routing tables (§7.1): route lines
// <destination, distance, next hop> maintained per site, updated by merging
// tables received from immediate neighbours (Bertsekas–Gallager distributed
// Bellman–Ford). We additionally track the hop length of the recorded path,
// which the PCS needs both for membership (hop radius h) and for charging
// routed sends with the correct number of link-messages.
//
// Storage is sphere-local and sparse (DESIGN.md §10): after the interrupted
// (2h-phase) APSP a table only ever holds routes inside the owner's
// ≤(2h+1)-hop ball, so dense per-destination arrays over the whole topology
// would cost O(sites) memory and O(sites) initialization *per site* —
// quadratic in total, and the reason the pre-PR-5 simulator stopped scaling
// past a few hundred sites. Lines live in slot-dense arrays over the
// reached destinations only, kept sorted by destination id — an invariant
// every mutation path maintains (ascending appends in the bulk build,
// sorted inserts in the merge path, one sorted merge pass in
// apply_updates) — so the id→slot lookup is a branchless binary search
// over a few cache lines. Withdrawn lines (incremental repair) are
// compacted away by apply_updates' merge pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/topology.hpp"
#include "util/error.hpp"
#include "util/time.hpp"

namespace rtds::fault {
class FaultState;
}

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds {

struct RouteLine {
  Time dist = kInfiniteTime;
  SiteId next_hop = kNoSite;
  std::uint32_t hops = 0;
};

class RoutingTable {
 public:
  RoutingTable() = default;
  explicit RoutingTable(SiteId owner);

  SiteId owner() const { return owner_; }

  /// Destinations the table spans (the whole topology once built). Routes
  /// exist only for the sphere-local subset actually reached; probe with
  /// has_route / find.
  std::size_t site_count() const { return site_count_; }

  /// Installs the trivial route to self plus one-hop routes to neighbours —
  /// the §7.1 start condition. With a fault view, only *live* links seed
  /// routes (the repair path of DESIGN.md §9).
  void init_from_neighbors(const Topology& topo,
                           const fault::FaultState* faults = nullptr);

  /// Prepares an empty table spanning `site_count` destinations, reserving
  /// slot space for `expected_routes` lines (degree-based hints from the
  /// topology keep the build allocation-light).
  void reset(std::size_t site_count, std::size_t expected_routes);

  bool has_route(SiteId dest) const { return find(dest) != nullptr; }
  const RouteLine& route(SiteId dest) const;

  /// route() without the contract check: nullptr when unreachable. For
  /// tight loops (PCS construction, transport sends) that probe many pairs.
  const RouteLine* find(SiteId dest) const {
    const std::size_t slot = slot_of(dest);
    if (slot == kNoSlot) return nullptr;
    const RouteLine& line = lines_[slot];
    return line.dist == kInfiniteTime ? nullptr : &line;
  }

  /// Merges a neighbour's table received over a link with the given delay:
  /// candidate distance = link delay + neighbour's distance. Shorter delay
  /// wins; on (FP-tolerant) ties, fewer hops, then smaller next-hop id, so
  /// every site converges to a *unique* minimum-delay path as §6 requires.
  /// Returns true if any line changed.
  bool merge_from(SiteId neighbor, Time link_delay, const RoutingTable& other);

  /// Number of destinations with a live route (the paper's table volume).
  std::size_t size() const { return live_; }

  /// Installs (or overwrites) the line for `dest`.
  void set_line(SiteId dest, const RouteLine& line);

  /// Build fast path: appends the line for a destination greater than
  /// every destination already held — the bulk build visits destinations
  /// in ascending order, so sortedness is free.
  void append_line(SiteId dest, const RouteLine& line);

  /// One line-update of a repair batch: a finite distance installs (or
  /// overwrites) the route, an infinite one withdraws it.
  struct DestLine {
    SiteId dest = kNoSite;
    RouteLine line;
  };

  /// Reusable merge buffers for apply_updates. After each call the scratch
  /// holds the table's previous arrays (swapped out), so a repair loop
  /// recycles capacity instead of allocating per table per event.
  struct MergeScratch {
    std::vector<RouteLine> lines;
    std::vector<SiteId> dests;
  };

  /// Applies a batch of updates sorted by ascending destination (each
  /// destination at most once) in a single merge pass — the incremental
  /// repair path, where per-line binary searches and insertions would
  /// dominate. Tombstoned slots are compacted away in the same pass.
  void apply_updates(std::span<const DestLine> updates, MergeScratch& scratch);

  /// Slot-space iteration over reached destinations, in ascending
  /// destination order. Includes tombstones — skip lines with infinite
  /// distance.
  std::size_t slot_count() const { return dests_.size(); }
  SiteId dest_at(std::size_t slot) const { return dests_[slot]; }
  const RouteLine& line_at(std::size_t slot) const { return lines_[slot]; }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// Branchless binary search over the sorted destination array; the
  /// sphere-local tables span a handful of cache lines, so this beats
  /// both a hash probe (no second array to touch) and a dense index.
  std::size_t slot_of(SiteId dest) const {
    const SiteId* base = dests_.data();
    std::size_t len = dests_.size();
    if (len == 0) return kNoSlot;
    while (len > 1) {
      const std::size_t half = len / 2;
      base += (base[half - 1] < dest) ? half : 0;
      len -= half;
    }
    return *base == dest ? static_cast<std::size_t>(base - dests_.data())
                         : kNoSlot;
  }

  /// Slot holding `dest`, inserting a tombstone slot (shifting the tail to
  /// keep the array sorted) on first touch.
  std::size_t slot_for(SiteId dest);

  SiteId owner_ = kNoSite;
  std::uint32_t site_count_ = 0;
  std::vector<RouteLine> lines_;  ///< slot-dense route lines
  std::vector<SiteId> dests_;     ///< slot → destination id, ascending
  std::uint32_t live_ = 0;        ///< non-tombstone line count

  /// Checkpoints restore tombstoned slots verbatim — the public mutators
  /// cannot reproduce them (snap/).
  friend struct snap::Access;
};

}  // namespace rtds
