// Distance-vector routing tables (§7.1): route lines
// <destination, distance, next hop> maintained per site, updated by merging
// tables received from immediate neighbours (Bertsekas–Gallager distributed
// Bellman–Ford). We additionally track the hop length of the recorded path,
// which the PCS needs both for membership (hop radius h) and for charging
// routed sends with the correct number of link-messages.
//
// Storage is a dense per-destination array (unreachable = infinite dist),
// not a map: merge_from and route() are the inner loop of the APSP build
// and of every PCS construction, and the linear scan of a 16-byte-entry
// array beats a node-based map walk by an order of magnitude. Iterate
// destinations 0..site_count() and filter with has_route — entries come
// out in ascending destination order, as the map did.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "util/error.hpp"
#include "util/time.hpp"

namespace rtds::fault {
class FaultState;
}

namespace rtds {

struct RouteLine {
  Time dist = kInfiniteTime;
  SiteId next_hop = kNoSite;
  std::uint32_t hops = 0;
};

class RoutingTable {
 public:
  RoutingTable() = default;
  explicit RoutingTable(SiteId owner);

  SiteId owner() const { return owner_; }

  /// Destinations the dense array covers (the whole topology after
  /// init_from_neighbors).
  std::size_t site_count() const { return lines_.size(); }

  /// Installs the trivial route to self plus one-hop routes to neighbours —
  /// the §7.1 start condition. With a fault view, only *live* links seed
  /// routes (the repair path of DESIGN.md §9).
  void init_from_neighbors(const Topology& topo,
                           const fault::FaultState* faults = nullptr);

  bool has_route(SiteId dest) const {
    return dest < lines_.size() && lines_[dest].dist != kInfiniteTime;
  }
  const RouteLine& route(SiteId dest) const;

  /// route() without the contract check: nullptr when unreachable. For
  /// tight loops (PCS construction) that probe every pair.
  const RouteLine* find(SiteId dest) const {
    return has_route(dest) ? &lines_[dest] : nullptr;
  }

  /// Merges a neighbour's table received over a link with the given delay:
  /// candidate distance = link delay + neighbour's distance. Shorter delay
  /// wins; on (FP-tolerant) ties, fewer hops, then smaller next-hop id, so
  /// every site converges to a *unique* minimum-delay path as §6 requires.
  /// Returns true if any line changed.
  bool merge_from(SiteId neighbor, Time link_delay, const RoutingTable& other);

  /// Number of destinations with a route (the paper's table volume).
  std::size_t size() const { return dests_.size(); }

 private:
  SiteId owner_ = kNoSite;
  std::vector<RouteLine> lines_;
  /// Reached destinations in first-reach order. merge_from iterates this
  /// instead of the dense array: after an interrupted (2h-phase) APSP on a
  /// wide network a table covers only the local neighbourhood, and each
  /// destination's relaxation is independent, so iteration order does not
  /// affect the result.
  std::vector<SiteId> dests_;
};

}  // namespace rtds
