// Message transports for the RTDS protocol layer.
//
// The paper's base model charges a routed message the min-path propagation
// delay (links have infinite bandwidth). §13 points out the realistic
// extension: finite throughput and message volumes. Two implementations of
// one interface:
//
//  * IdealTransport     — arrives after the min-path delay from the routing
//                         tables; charged `hops` link-messages. Identical
//                         behaviour to the paper's base model.
//  * ContendedTransport — store-and-forward: the message traverses the
//                         min-delay path hop by hop; each directed link is
//                         a FIFO server with finite bandwidth, so a hop
//                         costs queueing + size/bandwidth serialization +
//                         propagation. Links stay loss-less and
//                         order-preserving (§2) — they just have capacity.
//
// Both run on the shared Simulator and use the §7 routing tables, so every
// transport decision uses exactly the knowledge the distributed algorithm
// actually built.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/messages.hpp"
#include "routing/routing_table.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rtds::snap {
struct Access;
}  // namespace rtds::snap

namespace rtds {

class Transport {
 public:
  using Handler = std::function<void(SiteId from, const MessageBody& payload)>;
  /// Invoked whenever a send is lost to injected faults, with the intended
  /// destination and the undelivered payload (the system layer inspects
  /// lost dispatches to mark their jobs failed).
  using DropHook = std::function<void(SiteId to, const MessageBody& payload)>;

  virtual ~Transport() = default;

  virtual void set_handler(SiteId site, Handler handler) = 0;

  /// Installs a fault view plus drop notification (nullptr = faultless,
  /// the default). With faults installed, sends consult site/link/route
  /// liveness and the plan's drop/extra-delay perturbations; a lost send
  /// still counts its link messages but also increments
  /// MessageStats::messages_dropped and fires `on_drop`.
  virtual void set_fault_state(fault::FaultState* faults,
                               DropHook on_drop) = 0;

  /// Sends `payload` from `from` to `to` (self-sends deliver immediately
  /// and are free). `size_units` models the message volume (task codes are
  /// bigger than acks). Returns the hop-weighted link-message count charged.
  virtual std::size_t send(SiteId from, SiteId to, MessageBody payload,
                           int category, double size_units) = 0;

  virtual const MessageStats& stats() const = 0;
};

/// Infinite-bandwidth minimum-delay delivery (the paper's base model).
class IdealTransport final : public Transport {
 public:
  /// `tables` must outlive the transport and cover every pair the protocol
  /// will use (the 2h-phase tables cover all intra-sphere pairs).
  IdealTransport(Simulator& sim, const std::vector<RoutingTable>& tables);

  void set_handler(SiteId site, Handler handler) override;
  void set_fault_state(fault::FaultState* faults, DropHook on_drop) override;
  std::size_t send(SiteId from, SiteId to, MessageBody payload, int category,
                   double size_units) override;
  const MessageStats& stats() const override { return stats_; }

 private:
  void drop(SiteId to, const MessageBody& payload);
  /// Self-send delivery: no liveness check (a site is always reachable
  /// from itself), just the handler call.
  void deliver_self(SiteId from, SiteId to, const MessageBody& payload);
  /// Routed delivery: destination liveness is checked when the message
  /// lands, not when it was sent. Both the primary and any duplicated
  /// copy fire through here, so a checkpoint replay re-enters the exact
  /// delivery path.
  void deliver(SiteId from, SiteId to, const MessageBody& payload);

  friend struct snap::Access;

  Simulator& sim_;
  const std::vector<RoutingTable>& tables_;
  std::vector<Handler> handlers_;
  MessageStats stats_;
  fault::FaultState* faults_ = nullptr;
  DropHook on_drop_;
};

/// Store-and-forward with per-directed-link FIFO queues and finite
/// bandwidth.
class ContendedTransport final : public Transport {
 public:
  /// `bandwidth` in size-units per time unit, > 0.
  ContendedTransport(Simulator& sim, const Topology& topo,
                     const std::vector<RoutingTable>& tables,
                     double bandwidth);

  void set_handler(SiteId site, Handler handler) override;
  void set_fault_state(fault::FaultState* faults, DropHook on_drop) override;
  std::size_t send(SiteId from, SiteId to, MessageBody payload, int category,
                   double size_units) override;
  const MessageStats& stats() const override { return stats_; }

  /// Peak queueing delay any single hop has experienced so far (observability
  /// for tests/benches: how badly the ideal model's assumption was violated).
  Time max_queueing_delay() const { return max_queueing_delay_; }

 private:
  void drop(SiteId to, const MessageBody& payload);
  void deliver_self(SiteId from, SiteId to, const MessageBody& payload);
  void forward(SiteId at, SiteId to,
               std::shared_ptr<const MessageBody> payload, double size_units);
  void hop(SiteId origin, SiteId cur, SiteId to,
           std::shared_ptr<const MessageBody> payload, double size_units);

  friend struct snap::Access;

  Simulator& sim_;
  const Topology& topo_;
  const std::vector<RoutingTable>& tables_;
  double bandwidth_;
  std::vector<Handler> handlers_;
  /// busy-until time per directed link (a, b).
  std::map<std::pair<SiteId, SiteId>, Time> link_busy_until_;
  MessageStats stats_;
  Time max_queueing_delay_ = 0.0;
  fault::FaultState* faults_ = nullptr;
  DropHook on_drop_;
};

}  // namespace rtds
