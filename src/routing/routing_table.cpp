#include "routing/routing_table.hpp"

#include <algorithm>

#include "fault/fault.hpp"

namespace rtds {

RoutingTable::RoutingTable(SiteId owner) : owner_(owner) {}

void RoutingTable::reset(std::size_t site_count, std::size_t expected_routes) {
  site_count_ = static_cast<std::uint32_t>(site_count);
  lines_.clear();
  dests_.clear();
  live_ = 0;
  lines_.reserve(expected_routes);
  dests_.reserve(expected_routes);
}

void RoutingTable::init_from_neighbors(const Topology& topo,
                                       const fault::FaultState* faults) {
  RTDS_REQUIRE(owner_ < topo.site_count());
  const auto& neighbors = topo.neighbors(owner_);
  reset(topo.site_count(), neighbors.size() + 1);
  set_line(owner_, RouteLine{0.0, owner_, 0});
  for (const auto& nb : neighbors) {
    if (faults != nullptr && !faults->link_up(owner_, nb.site)) continue;
    set_line(nb.site, RouteLine{nb.delay, nb.site, 1});
  }
}

const RouteLine& RoutingTable::route(SiteId dest) const {
  const RouteLine* line = find(dest);
  RTDS_REQUIRE_MSG(line != nullptr,
                   "site " << owner_ << " has no route to " << dest);
  return *line;
}

std::size_t RoutingTable::slot_for(SiteId dest) {
  const auto pos = std::lower_bound(dests_.begin(), dests_.end(), dest);
  const auto slot = static_cast<std::size_t>(pos - dests_.begin());
  if (pos == dests_.end() || *pos != dest) {
    dests_.insert(pos, dest);
    lines_.insert(lines_.begin() + static_cast<std::ptrdiff_t>(slot),
                  RouteLine{});
  }
  return slot;
}

void RoutingTable::append_line(SiteId dest, const RouteLine& line) {
  lines_.push_back(line);
  dests_.push_back(dest);
  if (line.dist != kInfiniteTime) ++live_;
}

void RoutingTable::apply_updates(std::span<const DestLine> updates,
                                 MergeScratch& scratch) {
  if (updates.empty()) return;
  std::vector<RouteLine>& merged_lines = scratch.lines;
  std::vector<SiteId>& merged_dests = scratch.dests;
  merged_lines.clear();
  merged_dests.clear();
  merged_lines.reserve(lines_.size() + updates.size());
  merged_dests.reserve(dests_.size() + updates.size());
  std::uint32_t live = 0;
  std::size_t old_slot = 0;
  const std::size_t old_count = dests_.size();
  auto keep = [&](SiteId dest, const RouteLine& line) {
    if (line.dist == kInfiniteTime) return;  // withdrawn or tombstone: drop
    merged_dests.push_back(dest);
    merged_lines.push_back(line);
    ++live;
  };
  for (const DestLine& u : updates) {
    while (old_slot < old_count && dests_[old_slot] < u.dest) {
      keep(dests_[old_slot], lines_[old_slot]);
      ++old_slot;
    }
    if (old_slot < old_count && dests_[old_slot] == u.dest) ++old_slot;
    keep(u.dest, u.line);
  }
  while (old_slot < old_count) {
    keep(dests_[old_slot], lines_[old_slot]);
    ++old_slot;
  }
  // Swap, leaving the table's previous arrays in the scratch: the next
  // apply_updates call reuses their capacity, so a repair loop settles
  // into zero allocations.
  lines_.swap(merged_lines);
  dests_.swap(merged_dests);
  live_ = live;
}

void RoutingTable::set_line(SiteId dest, const RouteLine& line) {
  RouteLine& cur = lines_[slot_for(dest)];
  if (cur.dist == kInfiniteTime && line.dist != kInfiniteTime) ++live_;
  cur = line;
}

bool RoutingTable::merge_from(SiteId neighbor, Time link_delay,
                              const RoutingTable& other) {
  RTDS_REQUIRE(other.site_count_ == site_count_);
  bool changed = false;
  const std::size_t slots = other.dests_.size();
  for (std::size_t i = 0; i < slots; ++i) {
    const SiteId dest = other.dests_[i];
    if (dest == owner_) continue;
    const RouteLine& line = other.lines_[i];
    if (line.dist == kInfiniteTime) continue;  // tombstoned line
    const Time cand_dist = link_delay + line.dist;
    const std::uint32_t cand_hops = line.hops + 1;
    RouteLine& cur = lines_[slot_for(dest)];
    bool better;
    if (cur.dist == kInfiniteTime) {
      better = true;
      ++live_;
    } else {
      better = time_lt(cand_dist, cur.dist) ||
               (time_eq(cand_dist, cur.dist) &&
                (cand_hops < cur.hops ||
                 (cand_hops == cur.hops && neighbor < cur.next_hop)));
    }
    if (better) {
      cur = RouteLine{cand_dist, neighbor, cand_hops};
      changed = true;
    }
  }
  return changed;
}

}  // namespace rtds
