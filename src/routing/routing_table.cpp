#include "routing/routing_table.hpp"

#include "util/error.hpp"

namespace rtds {

RoutingTable::RoutingTable(SiteId owner) : owner_(owner) {}

void RoutingTable::init_from_neighbors(const Topology& topo) {
  RTDS_REQUIRE(owner_ < topo.site_count());
  lines_.clear();
  lines_[owner_] = RouteLine{0.0, owner_, 0};
  for (const auto& nb : topo.neighbors(owner_))
    lines_[nb.site] = RouteLine{nb.delay, nb.site, 1};
}

const RouteLine& RoutingTable::route(SiteId dest) const {
  const auto it = lines_.find(dest);
  RTDS_REQUIRE_MSG(it != lines_.end(),
                   "site " << owner_ << " has no route to " << dest);
  return it->second;
}

bool RoutingTable::merge_from(SiteId neighbor, Time link_delay,
                              const RoutingTable& other) {
  bool changed = false;
  for (const auto& [dest, line] : other.lines()) {
    if (dest == owner_) continue;
    if (line.dist == kInfiniteTime) continue;
    const Time cand_dist = link_delay + line.dist;
    const std::size_t cand_hops = line.hops + 1;
    auto it = lines_.find(dest);
    bool better;
    if (it == lines_.end()) {
      better = true;
    } else {
      const RouteLine& cur = it->second;
      better = time_lt(cand_dist, cur.dist) ||
               (time_eq(cand_dist, cur.dist) &&
                (cand_hops < cur.hops ||
                 (cand_hops == cur.hops && neighbor < cur.next_hop)));
    }
    if (better) {
      lines_[dest] = RouteLine{cand_dist, neighbor, cand_hops};
      changed = true;
    }
  }
  return changed;
}

}  // namespace rtds
