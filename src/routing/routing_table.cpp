#include "routing/routing_table.hpp"

#include "fault/fault.hpp"

namespace rtds {

RoutingTable::RoutingTable(SiteId owner) : owner_(owner) {}

void RoutingTable::init_from_neighbors(const Topology& topo,
                                       const fault::FaultState* faults) {
  RTDS_REQUIRE(owner_ < topo.site_count());
  lines_.assign(topo.site_count(), RouteLine{});
  dests_.clear();
  lines_[owner_] = RouteLine{0.0, owner_, 0};
  dests_.push_back(owner_);
  for (const auto& nb : topo.neighbors(owner_)) {
    if (faults != nullptr && !faults->link_up(owner_, nb.site)) continue;
    lines_[nb.site] = RouteLine{nb.delay, nb.site, 1};
    dests_.push_back(nb.site);
  }
}

const RouteLine& RoutingTable::route(SiteId dest) const {
  RTDS_REQUIRE_MSG(has_route(dest),
                   "site " << owner_ << " has no route to " << dest);
  return lines_[dest];
}

bool RoutingTable::merge_from(SiteId neighbor, Time link_delay,
                              const RoutingTable& other) {
  RTDS_REQUIRE(other.lines_.size() == lines_.size());
  bool changed = false;
  for (const SiteId dest : other.dests_) {
    if (dest == owner_) continue;
    const RouteLine& line = other.lines_[dest];
    const Time cand_dist = link_delay + line.dist;
    const std::uint32_t cand_hops = line.hops + 1;
    RouteLine& cur = lines_[dest];
    bool better;
    if (cur.dist == kInfiniteTime) {
      better = true;
      dests_.push_back(dest);
    } else {
      better = time_lt(cand_dist, cur.dist) ||
               (time_eq(cand_dist, cur.dist) &&
                (cand_hops < cur.hops ||
                 (cand_hops == cur.hops && neighbor < cur.next_hop)));
    }
    if (better) {
      cur = RouteLine{cand_dist, neighbor, cand_hops};
      changed = true;
    }
  }
  return changed;
}

}  // namespace rtds
