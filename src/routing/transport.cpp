#include "routing/transport.hpp"

#include <utility>

#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace rtds {
namespace {

EventRecord msg_record(EventRecord::Kind kind, SiteId from, SiteId to,
                       std::shared_ptr<const MessageBody> payload) {
  EventRecord rec;
  rec.kind = kind;
  rec.site = from;
  rec.peer = to;
  rec.payload = std::move(payload);
  return rec;
}

}  // namespace

// --------------------------------------------------------------- ideal ----

IdealTransport::IdealTransport(Simulator& sim,
                               const std::vector<RoutingTable>& tables)
    : sim_(sim), tables_(tables), handlers_(tables.size()) {}

void IdealTransport::set_handler(SiteId site, Handler handler) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(handler != nullptr);
  handlers_[site] = std::move(handler);
}

void IdealTransport::set_fault_state(fault::FaultState* faults,
                                     DropHook on_drop) {
  faults_ = faults;
  on_drop_ = std::move(on_drop);
}

void IdealTransport::drop(SiteId to, const MessageBody& payload) {
  ++stats_.messages_dropped;
  RTDS_COUNT("net.dropped");
  if (on_drop_) on_drop_(to, payload);
}

void IdealTransport::deliver_self(SiteId from, SiteId to,
                                  const MessageBody& payload) {
  RTDS_CHECK(handlers_[to] != nullptr);
  handlers_[to](from, payload);
}

void IdealTransport::deliver(SiteId from, SiteId to,
                             const MessageBody& payload) {
  // Arrival-time liveness: the destination must be up when the message
  // lands, not merely when it was sent.
  if (faults_ != nullptr && !faults_->site_up(to)) {
    drop(to, payload);
    return;
  }
  RTDS_CHECK(handlers_[to] != nullptr);
  handlers_[to](from, payload);
}

std::size_t IdealTransport::send(SiteId from, SiteId to, MessageBody payload,
                                 int category, double size_units) {
  RTDS_REQUIRE(from < handlers_.size());
  RTDS_REQUIRE(to < handlers_.size());
  RTDS_REQUIRE(size_units >= 0.0);
  if (from == to) {
    stats_.record(category, 0);
    std::shared_ptr<const MessageBody> rec_payload;
    if (sim_.recording())
      rec_payload = std::make_shared<const MessageBody>(payload);
    sim_.schedule_in(0.0, [this, from, to, p = std::move(payload)]() {
      deliver_self(from, to, p);
    });
    if (rec_payload)
      sim_.annotate(msg_record(EventRecord::Kind::kSelfDeliver, from, to,
                               std::move(rec_payload)));
    return 0;
  }
  const RouteLine* line = tables_[from].find(to);
  if (faults_ != nullptr && line == nullptr) {
    // Topology repair left no live path (the destination's component is
    // unreachable right now). The send is lost like any other fault loss.
    stats_.record(category, 0);
    drop(to, payload);
    return 0;
  }
  RTDS_REQUIRE_MSG(line != nullptr, "no route " << from << " -> " << to);
  stats_.record(category, line->hops);
  if (auto* tr = obs::tracer())
    tr->instant("net", msg_category_name(category), sim_.now(), from, to,
                line->hops);
  Time delay = line->dist;
  if (faults_ != nullptr) {
    if (faults_->sample_drop()) {
      drop(to, payload);
      return line->hops;
    }
    // Fixed draw order per send: drop, dup, then per-copy perturbations
    // (extra delay, reorder jitter) — same contract as SimNetwork.
    const bool dup = faults_->sample_duplicate();
    delay += faults_->sample_extra_delay() + faults_->sample_reorder_delay();
    if (dup) {
      ++stats_.messages_duplicated;
      RTDS_COUNT("net.duplicated");
      const Time dup_delay = line->dist + faults_->sample_extra_delay() +
                             faults_->sample_reorder_delay();
      sim_.schedule_in(dup_delay, [this, from, to, p = MessageBody(payload)]() {
        deliver(from, to, p);
      });
      if (sim_.recording())
        sim_.annotate(msg_record(EventRecord::Kind::kDeliver, from, to,
                                 std::make_shared<const MessageBody>(payload)));
    }
  }
  std::shared_ptr<const MessageBody> rec_payload;
  if (sim_.recording())
    rec_payload = std::make_shared<const MessageBody>(payload);
  sim_.schedule_in(delay, [this, from, to, p = std::move(payload)]() {
    deliver(from, to, p);
  });
  if (rec_payload)
    sim_.annotate(msg_record(EventRecord::Kind::kDeliver, from, to,
                             std::move(rec_payload)));
  return line->hops;
}

// ----------------------------------------------------------- contended ----

ContendedTransport::ContendedTransport(Simulator& sim, const Topology& topo,
                                       const std::vector<RoutingTable>& tables,
                                       double bandwidth)
    : sim_(sim),
      topo_(topo),
      tables_(tables),
      bandwidth_(bandwidth),
      handlers_(topo.site_count()) {
  RTDS_REQUIRE_MSG(bandwidth > 0.0, "contended transport needs bandwidth > 0");
}

void ContendedTransport::set_handler(SiteId site, Handler handler) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(handler != nullptr);
  handlers_[site] = std::move(handler);
}

void ContendedTransport::set_fault_state(fault::FaultState* faults,
                                         DropHook on_drop) {
  faults_ = faults;
  on_drop_ = std::move(on_drop);
}

void ContendedTransport::drop(SiteId to, const MessageBody& payload) {
  ++stats_.messages_dropped;
  RTDS_COUNT("net.dropped");
  if (on_drop_) on_drop_(to, payload);
}

void ContendedTransport::deliver_self(SiteId from, SiteId to,
                                      const MessageBody& payload) {
  RTDS_CHECK(handlers_[to] != nullptr);
  handlers_[to](from, payload);
}

std::size_t ContendedTransport::send(SiteId from, SiteId to, MessageBody payload,
                                     int category, double size_units) {
  RTDS_REQUIRE(from < handlers_.size());
  RTDS_REQUIRE(to < handlers_.size());
  RTDS_REQUIRE(size_units >= 0.0);
  if (from == to) {
    stats_.record(category, 0);
    std::shared_ptr<const MessageBody> rec_payload;
    if (sim_.recording())
      rec_payload = std::make_shared<const MessageBody>(payload);
    sim_.schedule_in(0.0, [this, from, to, p = std::move(payload)]() {
      deliver_self(from, to, p);
    });
    if (rec_payload)
      sim_.annotate(msg_record(EventRecord::Kind::kSelfDeliver, from, to,
                               std::move(rec_payload)));
    return 0;
  }
  const RouteLine* line = tables_[from].find(to);
  if (faults_ != nullptr && line == nullptr) {
    stats_.record(category, 0);
    drop(to, payload);
    return 0;
  }
  RTDS_REQUIRE_MSG(line != nullptr, "no route " << from << " -> " << to);
  const auto hops = line->hops;
  stats_.record(category, hops);
  if (auto* tr = obs::tracer())
    tr->instant("net", msg_category_name(category), sim_.now(), from, to,
                hops);
  auto shared = std::make_shared<const MessageBody>(std::move(payload));
  if (faults_ != nullptr) {
    if (faults_->sample_drop()) {
      drop(to, *shared);
      return hops;
    }
    // The store-and-forward chain already models queueing; the plan's
    // extra delay (and reorder jitter) perturbs the injection instant
    // instead of each hop. Draw order matches SimNetwork: drop, dup, then
    // per-copy perturbations.
    const bool dup = faults_->sample_duplicate();
    const Time extra =
        faults_->sample_extra_delay() + faults_->sample_reorder_delay();
    if (dup) {
      ++stats_.messages_duplicated;
      RTDS_COUNT("net.duplicated");
      const Time dup_extra =
          faults_->sample_extra_delay() + faults_->sample_reorder_delay();
      sim_.schedule_in(dup_extra, [this, from, to, p = shared,
                                   size_units]() { forward(from, to, p, size_units); });
      if (sim_.recording()) {
        EventRecord rec =
            msg_record(EventRecord::Kind::kContendedInject, from, to, shared);
        rec.y = size_units;
        sim_.annotate(std::move(rec));
      }
    }
    if (extra > 0.0) {
      sim_.schedule_in(extra, [this, from, to, p = shared,
                               size_units]() { forward(from, to, p, size_units); });
      if (sim_.recording()) {
        EventRecord rec = msg_record(EventRecord::Kind::kContendedInject, from,
                                     to, std::move(shared));
        rec.y = size_units;
        sim_.annotate(std::move(rec));
      }
      return hops;
    }
  }
  forward(from, to, std::move(shared), size_units);
  return hops;
}

void ContendedTransport::forward(SiteId at, SiteId to,
                                 std::shared_ptr<const MessageBody> payload,
                                 double size_units) {
  // `at` on the first call is the origin; handlers receive the *logical*
  // sender, which we thread through the whole hop chain.
  hop(at, at, to, std::move(payload), size_units);
}

void ContendedTransport::hop(SiteId origin, SiteId cur, SiteId to,
                             std::shared_ptr<const MessageBody> payload,
                             double size_units) {
  if (cur == to) {
    if (faults_ != nullptr && !faults_->site_up(to)) {
      drop(to, *payload);
      return;
    }
    RTDS_CHECK(handlers_[to] != nullptr);
    handlers_[to](origin, *payload);
    return;
  }
  const RouteLine* line = tables_[cur].find(to);
  if (faults_ != nullptr && line == nullptr) {
    // A repair invalidated the path mid-flight; store-and-forward loses
    // the message at the stranded relay.
    drop(to, *payload);
    return;
  }
  RTDS_CHECK(line != nullptr);
  const SiteId next = line->next_hop;
  RTDS_CHECK(next != kNoSite);
  if (faults_ != nullptr && !faults_->link_up(cur, next)) {
    drop(to, *payload);
    return;
  }
  const Time now = sim_.now();
  Time& busy_until = link_busy_until_[{cur, next}];
  const Time queue_start = std::max(now, busy_until);
  max_queueing_delay_ = std::max(max_queueing_delay_, queue_start - now);
  // Queueing in integer microsim-units: enough resolution for the bin
  // histogram, and integral so the metric stays exactly mergeable.
  RTDS_HIST("net.contended.queue_x1000", (queue_start - now) * 1000.0);
  const Time tx = size_units / bandwidth_;
  busy_until = queue_start + tx;
  const Time arrival = queue_start + tx + topo_.link_delay(cur, next);
  sim_.schedule_at(arrival,
                   [this, origin, next, to, p = payload,
                    size_units]() { hop(origin, next, to, p, size_units); });
  if (sim_.recording()) {
    EventRecord rec = msg_record(EventRecord::Kind::kContendedHop, origin, next,
                                 std::move(payload));
    rec.dest = to;
    rec.y = size_units;
    sim_.annotate(std::move(rec));
  }
}

}  // namespace rtds
