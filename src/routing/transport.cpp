#include "routing/transport.hpp"

#include <utility>

namespace rtds {

// --------------------------------------------------------------- ideal ----

IdealTransport::IdealTransport(Simulator& sim,
                               const std::vector<RoutingTable>& tables)
    : sim_(sim), tables_(tables), handlers_(tables.size()) {}

void IdealTransport::set_handler(SiteId site, Handler handler) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(handler != nullptr);
  handlers_[site] = std::move(handler);
}

std::size_t IdealTransport::send(SiteId from, SiteId to, MessageBody payload,
                                 int category, double size_units) {
  RTDS_REQUIRE(from < handlers_.size());
  RTDS_REQUIRE(to < handlers_.size());
  RTDS_REQUIRE(size_units >= 0.0);
  if (from == to) {
    stats_.record(category, 0);
    sim_.schedule_in(0.0, [this, from, to, p = std::move(payload)]() {
      RTDS_CHECK(handlers_[to] != nullptr);
      handlers_[to](from, p);
    });
    return 0;
  }
  RTDS_REQUIRE_MSG(tables_[from].has_route(to),
                   "no route " << from << " -> " << to);
  const auto& line = tables_[from].route(to);
  stats_.record(category, line.hops);
  sim_.schedule_in(line.dist, [this, from, to, p = std::move(payload)]() {
    RTDS_CHECK(handlers_[to] != nullptr);
    handlers_[to](from, p);
  });
  return line.hops;
}

// ----------------------------------------------------------- contended ----

ContendedTransport::ContendedTransport(Simulator& sim, const Topology& topo,
                                       const std::vector<RoutingTable>& tables,
                                       double bandwidth)
    : sim_(sim),
      topo_(topo),
      tables_(tables),
      bandwidth_(bandwidth),
      handlers_(topo.site_count()) {
  RTDS_REQUIRE_MSG(bandwidth > 0.0, "contended transport needs bandwidth > 0");
}

void ContendedTransport::set_handler(SiteId site, Handler handler) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(handler != nullptr);
  handlers_[site] = std::move(handler);
}

std::size_t ContendedTransport::send(SiteId from, SiteId to, MessageBody payload,
                                     int category, double size_units) {
  RTDS_REQUIRE(from < handlers_.size());
  RTDS_REQUIRE(to < handlers_.size());
  RTDS_REQUIRE(size_units >= 0.0);
  if (from == to) {
    stats_.record(category, 0);
    sim_.schedule_in(0.0, [this, from, to, p = std::move(payload)]() {
      RTDS_CHECK(handlers_[to] != nullptr);
      handlers_[to](from, p);
    });
    return 0;
  }
  RTDS_REQUIRE_MSG(tables_[from].has_route(to),
                   "no route " << from << " -> " << to);
  const auto hops = tables_[from].route(to).hops;
  stats_.record(category, hops);
  forward(from, to,
          std::make_shared<const MessageBody>(std::move(payload)), size_units);
  return hops;
}

void ContendedTransport::forward(SiteId at, SiteId to,
                                 std::shared_ptr<const MessageBody> payload,
                                 double size_units) {
  // `at` on the first call is the origin; handlers receive the *logical*
  // sender, which we thread through the whole hop chain.
  hop(at, at, to, std::move(payload), size_units);
}

void ContendedTransport::hop(SiteId origin, SiteId cur, SiteId to,
                             std::shared_ptr<const MessageBody> payload,
                             double size_units) {
  if (cur == to) {
    RTDS_CHECK(handlers_[to] != nullptr);
    handlers_[to](origin, *payload);
    return;
  }
  RTDS_CHECK(tables_[cur].has_route(to));
  const SiteId next = tables_[cur].route(to).next_hop;
  RTDS_CHECK(next != kNoSite);
  const Time now = sim_.now();
  Time& busy_until = link_busy_until_[{cur, next}];
  const Time queue_start = std::max(now, busy_until);
  max_queueing_delay_ = std::max(max_queueing_delay_, queue_start - now);
  const Time tx = size_units / bandwidth_;
  busy_until = queue_start + tx;
  const Time arrival = queue_start + tx + topo_.link_delay(cur, next);
  sim_.schedule_at(arrival,
                   [this, origin, next, to, p = std::move(payload),
                    size_units]() { hop(origin, next, to, p, size_units); });
}

}  // namespace rtds
