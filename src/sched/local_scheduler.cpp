#include "sched/local_scheduler.hpp"

#include <algorithm>
#include <map>

#include "dag/analysis.hpp"
#include "util/inline_vec.hpp"

namespace rtds {

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kEdf: return "edf";
    case AdmissionPolicy::kExact: return "exact";
    case AdmissionPolicy::kPreemptive: return "preemptive";
  }
  return "?";
}

std::optional<std::vector<Placement>> admit_preemptive(
    const SchedulingPlan& plan, std::span<const WindowedTask> tasks) {
  if (tasks.empty()) return std::vector<Placement>{};
  for (const auto& t : tasks) {
    RTDS_REQUIRE(t.cost > 0.0);
    if (time_gt(t.release + t.cost, t.deadline)) return std::nullopt;
  }
  Time lo = kInfiniteTime, hi = 0.0;
  for (const auto& t : tasks) {
    lo = std::min(lo, t.release);
    hi = std::max(hi, t.deadline);
  }

  struct State {
    const WindowedTask* task;
    Time remaining;
  };
  std::vector<State> states;
  states.reserve(tasks.size());
  for (const auto& t : tasks) states.push_back({&t, t.cost});

  // Event-stepped preemptive EDF over the idle intervals of the plan.
  std::vector<Placement> segments;
  const auto gaps = plan.idle_intervals(lo, hi);
  for (const auto& gap : gaps) {
    Time cursor = gap.start;
    while (time_lt(cursor, gap.end)) {
      // Ready = released, unfinished; pick earliest deadline.
      State* pick = nullptr;
      for (auto& st : states)
        if (st.remaining > kTimeEps && time_le(st.task->release, cursor))
          if (!pick || st.task->deadline < pick->task->deadline) pick = &st;
      if (!pick) {
        // Idle until the next release inside this gap (or the gap ends).
        Time next_release = gap.end;
        for (const auto& st : states)
          if (st.remaining > kTimeEps && time_gt(st.task->release, cursor))
            next_release = std::min(next_release, st.task->release);
        cursor = next_release;
        continue;
      }
      // Run `pick` until it finishes, a new release preempts, or gap ends.
      Time stop = std::min(gap.end, cursor + pick->remaining);
      for (const auto& st : states)
        if (st.remaining > kTimeEps && time_gt(st.task->release, cursor) &&
            st.task->deadline < pick->task->deadline)
          stop = std::min(stop, st.task->release);
      RTDS_CHECK(time_lt(cursor, stop));
      segments.push_back(Placement{pick->task->task, cursor, stop});
      pick->remaining -= stop - cursor;
      if (pick->remaining <= kTimeEps &&
          time_gt(stop, pick->task->deadline))
        return std::nullopt;  // finished late
      if (pick->remaining > kTimeEps && time_ge(stop, pick->task->deadline))
        return std::nullopt;  // deadline hit while unfinished
      cursor = stop;
    }
  }
  for (const auto& st : states)
    if (st.remaining > kTimeEps) return std::nullopt;

  // Merge back-to-back segments of the same task for compact plans.
  std::sort(segments.begin(), segments.end(),
            [](const Placement& a, const Placement& b) { return a.start < b.start; });
  std::vector<Placement> merged;
  for (const auto& s : segments) {
    if (!merged.empty() && merged.back().task == s.task &&
        time_eq(merged.back().end, s.start))
      merged.back().end = s.end;
    else
      merged.push_back(s);
  }
  return merged;
}

LocalScheduler::LocalScheduler(LocalSchedulerConfig cfg) : cfg_(cfg) {
  RTDS_REQUIRE(cfg_.observation_window > 0.0);
  RTDS_REQUIRE(cfg_.computing_power > 0.0);
}

std::vector<WindowedTask> LocalScheduler::scale_costs(
    std::span<const WindowedTask> tasks) const {
  std::vector<WindowedTask> scaled(tasks.begin(), tasks.end());
  for (auto& t : scaled) t.cost /= cfg_.computing_power;
  return scaled;
}

std::optional<std::vector<Placement>> LocalScheduler::try_accept_dag_local(
    const Job& job, Time earliest_start) {
  const Dag& dag = job.dag;
  RTDS_REQUIRE(dag.finalized());
  if (dag.empty()) return std::vector<Placement>{};

  // Quick necessary check: total (speed-scaled) work must fit the window.
  const Time work = dag.total_work() / cfg_.computing_power;
  if (time_gt(earliest_start + work, job.deadline)) return std::nullopt;

  // Greedy list scheduling by bottom level into idle gaps; on one site all
  // communication is free, so only ordering and gaps matter.
  const auto& priority = dag.bottom_levels();
  InlineVec<Time, 32> finish;
  finish.assign(dag.task_count(), 0.0);
  InlineVec<std::size_t, 32> missing_preds;
  missing_preds.assign(dag.task_count(), 0);
  for (TaskId t = 0; t < dag.task_count(); ++t)
    missing_preds[t] = dag.predecessors(t).size();

  InlineVec<TaskId, 32> ready;
  for (TaskId t : dag.sources()) ready.push_back(t);

  // Trial placements (not committed until all succeed).
  SchedulingPlan trial = plan_;
  InlineVec<Reservation, 32> reservations;
  Time completion = earliest_start;
  std::size_t done = 0;
  while (!ready.empty()) {
    // Highest bottom level first; id breaks ties deterministically.
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (priority[ready[i]] > priority[ready[best]] + kTimeEps ||
          (time_eq(priority[ready[i]], priority[ready[best]]) &&
           ready[i] < ready[best]))
        best = i;
    }
    const TaskId t = ready[best];
    ready.erase(ready.begin() + best);

    Time est = earliest_start;
    for (TaskId p : dag.predecessors(t)) est = std::max(est, finish[p]);
    const Time duration = dag.cost(t) / cfg_.computing_power;
    const Time start = trial.earliest_fit(est, job.deadline, duration);
    if (start == kInfiniteTime) return std::nullopt;
    const Reservation r{job.id, t, start, start + duration};
    trial.reserve(r);
    reservations.push_back(r);
    finish[t] = r.end;
    completion = std::max(completion, r.end);
    ++done;
    for (TaskId s : dag.successors(t))
      if (--missing_preds[s] == 0) ready.push_back(s);
  }
  RTDS_CHECK_MSG(done == dag.task_count(), "list schedule missed tasks");
  if (time_gt(completion, job.deadline)) return std::nullopt;

  plan_ = std::move(trial);
  std::vector<Placement> placements;
  placements.reserve(reservations.size());
  for (const auto& res : reservations)
    placements.push_back(Placement{res.task, res.start, res.end});
  return placements;
}

std::optional<std::vector<Placement>> LocalScheduler::test_windowed(
    std::span<const WindowedTask> tasks) const {
  // Unit computing power needs no cost scaling — run on the caller's span.
  std::vector<WindowedTask> scaled_storage;
  std::span<const WindowedTask> scaled = tasks;
  if (cfg_.computing_power != 1.0) {
    scaled_storage = scale_costs(tasks);
    scaled = scaled_storage;
  }
  switch (cfg_.policy) {
    case AdmissionPolicy::kEdf:
      return admit_edf(plan_, scaled);
    case AdmissionPolicy::kExact:
      if (scaled.size() <= cfg_.exact_max_tasks)
        return admit_exact(plan_, scaled, cfg_.exact_max_tasks);
      return admit_edf(plan_, scaled);
    case AdmissionPolicy::kPreemptive:
      return admit_preemptive(plan_, scaled);
  }
  RTDS_CHECK(false);
  return std::nullopt;
}

bool LocalScheduler::test_windowed_feasible(
    std::span<const WindowedTask> tasks) const {
  // Allocation-free fast path exactly where test_windowed would run greedy
  // EDF; the other policies share test_windowed's dispatch so the two
  // entry points cannot drift apart.
  if (cfg_.policy == AdmissionPolicy::kEdf ||
      (cfg_.policy == AdmissionPolicy::kExact &&
       tasks.size() > cfg_.exact_max_tasks)) {
    if (cfg_.computing_power != 1.0) {
      const auto scaled = scale_costs(tasks);
      return admit_edf_feasible(plan_, scaled);
    }
    return admit_edf_feasible(plan_, tasks);
  }
  return test_windowed(tasks).has_value();
}

void LocalScheduler::commit(JobId job, std::span<const WindowedTask> tasks,
                            std::span<const Placement> placements) {
  // Defensive re-validation: placements must respect windows (segments of a
  // preemptive placement each lie inside their task's window).
  const auto scaled = scale_costs(tasks);
  for (const auto& p : placements) {
    const auto it = std::find_if(
        scaled.begin(), scaled.end(),
        [&](const WindowedTask& t) { return t.task == p.task; });
    RTDS_REQUIRE_MSG(it != scaled.end(), "placement for unknown task " << p.task);
    RTDS_REQUIRE(time_ge(p.start, it->release));
    RTDS_REQUIRE(time_le(p.end, it->deadline));
    plan_.reserve(Reservation{job, p.task, p.start, p.end});
  }
}

}  // namespace rtds
