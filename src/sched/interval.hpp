// Closed-open time intervals [start, end).
#pragma once

#include "util/time.hpp"

namespace rtds {

struct TimeInterval {
  Time start = 0.0;
  Time end = 0.0;

  Time length() const { return end - start; }
  bool empty() const { return !time_lt(start, end); }
  bool contains(Time t) const { return time_ge(t, start) && time_lt(t, end); }
};

/// True if the two intervals share a positive-length overlap.
inline bool overlaps(const TimeInterval& a, const TimeInterval& b) {
  return time_lt(a.start, b.end) && time_lt(b.start, a.end);
}

}  // namespace rtds
