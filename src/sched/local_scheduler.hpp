// Per-site local scheduler (§5).
//
// Owns the site's scheduling plan and implements the two tests RTDS needs:
//  * try_accept_dag_local — the arrival-time test: can the whole DAG be
//    scheduled in-between already-accepted work before the job deadline?
//    (greedy list scheduling by bottom-level priority into idle gaps; zero
//    communication cost on a single site);
//  * test_windowed — Trial-Mapping validation (§10): are the tasks of one
//    logical processor locally satisfiable w.r.t. their r(t)/d(t) windows?
//
// Admission policy is configurable: greedy EDF (default), exact B&B for
// small sets, or preemptive EDF with split reservations (§13 "Preemptive
// Case"). Execution time = cost / computing_power (§13 "Uniform Machines").
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dag/dag.hpp"
#include "sched/admission.hpp"
#include "sched/plan.hpp"

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds {

enum class AdmissionPolicy {
  kEdf,         ///< greedy non-preemptive EDF insertion
  kExact,       ///< branch-and-bound, falls back to EDF above the size cap
  kPreemptive,  ///< preemptive EDF, reservations may be split
};

const char* to_string(AdmissionPolicy policy);

struct LocalSchedulerConfig {
  AdmissionPolicy policy = AdmissionPolicy::kEdf;
  std::size_t exact_max_tasks = 12;    ///< B&B size cap for kExact
  Time observation_window = 100.0;     ///< W in the surplus definition (§2)
  double computing_power = 1.0;        ///< §13 uniform machines
};

/// Preemptive admission: simulate EDF over the plan's idle intervals; tasks
/// may split into several segments. Returns one Placement per segment.
std::optional<std::vector<Placement>> admit_preemptive(
    const SchedulingPlan& plan, std::span<const WindowedTask> tasks);

class LocalScheduler {
 public:
  explicit LocalScheduler(LocalSchedulerConfig cfg = {});

  const LocalSchedulerConfig& config() const { return cfg_; }
  const SchedulingPlan& plan() const { return plan_; }

  /// The paper's surplus I_k at time `now`.
  double surplus(Time now) const {
    return plan_.surplus(now, cfg_.observation_window);
  }

  /// §5 local test. On success commits every task (tagged with job.id) and
  /// returns the placements; on failure leaves the plan untouched.
  /// `earliest_start` lower-bounds all task starts (>= arrival time).
  std::optional<std::vector<Placement>> try_accept_dag_local(
      const Job& job, Time earliest_start);

  /// §10 validation: can `tasks` (costs in *work* units; they are divided by
  /// the computing power here) be placed within their windows given the
  /// current plan? Does not commit.
  std::optional<std::vector<Placement>> test_windowed(
      std::span<const WindowedTask> tasks) const;

  /// test_windowed's yes/no, without materializing placements (the §10
  /// endorsement loop runs this once per logical processor per site).
  bool test_windowed_feasible(std::span<const WindowedTask> tasks) const;

  /// Commits previously tested placements under a job id. The caller must
  /// pass placements produced against the current plan state.
  void commit(JobId job, std::span<const WindowedTask> tasks,
              std::span<const Placement> placements);

  /// Releases all reservations of a job (used by baselines/tests only; the
  /// RTDS protocol itself never revokes a committed job).
  void revoke(JobId job) { plan_.remove_job(job); }

  /// Drops reservations that finished at or before `now`.
  void garbage_collect(Time now) { plan_.garbage_collect(now); }

 private:
  std::vector<WindowedTask> scale_costs(std::span<const WindowedTask> tasks) const;

  LocalSchedulerConfig cfg_;
  SchedulingPlan plan_;

  friend struct snap::Access;  // checkpoints restore the committed plan
};

}  // namespace rtds
