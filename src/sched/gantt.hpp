// ASCII Gantt rendering of schedules — the textual equivalent of the
// paper's Figures 3 and 4, also usable on any site's SchedulingPlan for
// debugging multi-job interleavings.
#pragma once

#include <string>
#include <vector>

#include "sched/plan.hpp"

namespace rtds {

/// One labelled row of a Gantt chart.
struct GanttRow {
  std::string label;                     ///< e.g. "p1" or "site 4"
  std::vector<Reservation> reservations; ///< may be unsorted; task ids label blocks
};

struct GanttOptions {
  std::size_t width = 72;        ///< characters available for the time axis
  bool show_axis = true;         ///< print a numeric time ruler underneath
  std::string idle_fill = ".";   ///< glyph for idle time
  /// Label blocks as 1-based ("t1") to match the paper's figures.
  bool one_based_tasks = true;
};

/// Renders rows over [t_begin, t_end]; blocks are labelled with their task
/// id and truncated/merged as the resolution requires. Throws on an empty
/// or inverted time range.
std::string render_gantt(const std::vector<GanttRow>& rows, Time t_begin,
                         Time t_end, const GanttOptions& options = {});

/// Convenience: renders one site's plan between two instants.
std::string render_plan(const SchedulingPlan& plan, Time t_begin, Time t_end,
                        const GanttOptions& options = {});

}  // namespace rtds
