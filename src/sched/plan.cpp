#include "sched/plan.hpp"

#include <algorithm>

namespace rtds {

void SchedulingPlan::reserve(const Reservation& r) {
  RTDS_REQUIRE_MSG(time_lt(r.start, r.end),
                   "empty reservation [" << r.start << ", " << r.end << ")");
  const auto pos = std::lower_bound(
      items_.begin(), items_.end(), r,
      [](const Reservation& a, const Reservation& b) { return a.start < b.start; });
  if (pos != items_.end())
    RTDS_REQUIRE_MSG(!overlaps(r.interval(), pos->interval()),
                     "reservation overlap at t=" << r.start);
  if (pos != items_.begin())
    RTDS_REQUIRE_MSG(!overlaps(r.interval(), std::prev(pos)->interval()),
                     "reservation overlap at t=" << r.start);
  items_.insert(pos, r);
}

void SchedulingPlan::remove_job(JobId job) {
  items_.erase(std::remove_if(items_.begin(), items_.end(),
                              [job](const Reservation& r) { return r.job == job; }),
               items_.end());
}

void SchedulingPlan::garbage_collect(Time horizon) {
  items_.erase(std::remove_if(items_.begin(), items_.end(),
                              [horizon](const Reservation& r) {
                                return time_le(r.end, horizon);
                              }),
               items_.end());
}

Time SchedulingPlan::earliest_fit(Time est, Time latest_end,
                                  Time duration) const {
  RTDS_REQUIRE(duration > 0.0);
  Time candidate = est;
  for (const auto& r : items_) {
    if (time_le(r.end, candidate)) continue;       // reservation in the past
    if (time_ge(r.start, candidate + duration)) break;  // gap found
    candidate = r.end;  // collide: push past this reservation
  }
  if (time_le(candidate + duration, latest_end)) return candidate;
  return kInfiniteTime;
}

std::vector<TimeInterval> SchedulingPlan::idle_intervals(Time from,
                                                         Time to) const {
  std::vector<TimeInterval> gaps;
  Time cursor = from;
  for (const auto& r : items_) {
    if (time_le(r.end, cursor)) continue;
    if (time_ge(r.start, to)) break;
    if (time_lt(cursor, r.start))
      gaps.push_back(TimeInterval{cursor, std::min(r.start, to)});
    cursor = std::max(cursor, r.end);
    if (time_ge(cursor, to)) break;
  }
  if (time_lt(cursor, to)) gaps.push_back(TimeInterval{cursor, to});
  return gaps;
}

Time SchedulingPlan::idle_time(Time from, Time to) const {
  // Same walk as idle_intervals, accumulating lengths without building the
  // vector (surplus() runs on every enrollment).
  Time total = 0.0;
  Time cursor = from;
  for (const auto& r : items_) {
    if (time_le(r.end, cursor)) continue;
    if (time_ge(r.start, to)) break;
    if (time_lt(cursor, r.start)) total += std::min(r.start, to) - cursor;
    cursor = std::max(cursor, r.end);
    if (time_ge(cursor, to)) break;
  }
  if (time_lt(cursor, to)) total += to - cursor;
  return total;
}

Time SchedulingPlan::busy_time(Time from, Time to) const {
  return (to - from) - idle_time(from, to);
}

double SchedulingPlan::surplus(Time now, Time window) const {
  RTDS_REQUIRE(window > 0.0);
  const double s = idle_time(now, now + window) / window;
  return std::clamp(s, 0.0, 1.0);
}

Time SchedulingPlan::horizon() const {
  return items_.empty() ? 0.0 : items_.back().end;
}

}  // namespace rtds
