#include "sched/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rtds {

namespace {

/// Maps a time to a column in [0, width].
std::size_t column_of(Time t, Time t_begin, Time t_end, std::size_t width) {
  const double frac = (t - t_begin) / (t_end - t_begin);
  const auto col = static_cast<std::ptrdiff_t>(std::lround(frac * double(width)));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(col, 0, static_cast<std::ptrdiff_t>(width)));
}

}  // namespace

std::string render_gantt(const std::vector<GanttRow>& rows, Time t_begin,
                         Time t_end, const GanttOptions& options) {
  RTDS_REQUIRE(time_lt(t_begin, t_end));
  RTDS_REQUIRE(options.width >= 10);

  std::size_t label_width = 0;
  for (const auto& row : rows)
    label_width = std::max(label_width, row.label.size());

  std::ostringstream os;
  for (const auto& row : rows) {
    std::string line(options.width, options.idle_fill.empty()
                                        ? '.'
                                        : options.idle_fill[0]);
    auto sorted = row.reservations;
    std::sort(sorted.begin(), sorted.end(),
              [](const Reservation& a, const Reservation& b) {
                return a.start < b.start;
              });
    for (const auto& r : sorted) {
      if (time_le(r.end, t_begin) || time_ge(r.start, t_end)) continue;
      const std::size_t c0 =
          column_of(std::max(r.start, t_begin), t_begin, t_end, options.width);
      std::size_t c1 =
          column_of(std::min(r.end, t_end), t_begin, t_end, options.width);
      if (c1 <= c0) c1 = c0 + 1;  // every block visible at >= 1 column
      c1 = std::min(c1, options.width);
      // Fill with '=' then stamp the task label into the block.
      for (std::size_t c = c0; c < c1; ++c) line[c] = '=';
      const std::string tag =
          "t" + std::to_string(r.task + (options.one_based_tasks ? 1 : 0));
      if (c1 - c0 >= tag.size())
        line.replace(c0 + (c1 - c0 - tag.size()) / 2, tag.size(), tag);
      // Block boundaries.
      line[c0] = '|';
      if (c1 - 1 > c0) line[c1 - 1] = '|';
    }
    os << row.label << std::string(label_width - row.label.size(), ' ')
       << " [" << line << "]\n";
  }

  if (options.show_axis) {
    // Ruler with ~6 tick marks.
    std::string ruler(options.width, ' ');
    std::string numbers(options.width + 12, ' ');
    const int ticks = 6;
    for (int i = 0; i <= ticks; ++i) {
      const Time t = t_begin + (t_end - t_begin) * double(i) / double(ticks);
      const std::size_t col =
          std::min(column_of(t, t_begin, t_end, options.width),
                   options.width - 1);
      ruler[col] = '+';
      std::ostringstream num;
      num.precision(4);
      num << t;
      const std::string str = num.str();
      if (col + str.size() <= numbers.size())
        numbers.replace(col, str.size(), str);
    }
    os << std::string(label_width, ' ') << " [" << ruler << "]\n";
    os << std::string(label_width, ' ') << "  " << numbers << "\n";
  }
  return os.str();
}

std::string render_plan(const SchedulingPlan& plan, Time t_begin, Time t_end,
                        const GanttOptions& options) {
  GanttRow row;
  row.label = "plan";
  row.reservations = plan.reservations();
  return render_gantt({row}, t_begin, t_end, options);
}

}  // namespace rtds
