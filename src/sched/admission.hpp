// Single-site admission tests ("local satisfiability", §5 and §10).
//
// Given a site's existing plan and a set of tasks with [release, deadline]
// windows and execution costs, decide whether all tasks fit, and produce
// the concrete placements when they do. Three tests:
//  * admit_edf       — non-preemptive greedy EDF insertion (the default;
//                      fast, what a production local scheduler would run);
//  * admit_exact     — Bratley-style branch and bound, optimal for
//                      non-preemptive feasibility on small sets (n <= ~12);
//                      used to measure how much the greedy test under-admits
//                      (bench E5) and as a test oracle;
//  * feasible_preemptive — exact demand-bound criterion for the §13
//                      "Preemptive Case" extension (feasibility only).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sched/plan.hpp"

namespace rtds {

/// A task instance as seen by a single site: window + cost.
struct WindowedTask {
  TaskId task = 0;
  Time release = 0.0;
  Time deadline = 0.0;
  Time cost = 0.0;
};

struct Placement {
  TaskId task = 0;
  Time start = 0.0;
  Time end = 0.0;
};

/// Greedy EDF insertion: process tasks by (deadline, release, id); place
/// each at the earliest idle fit at or after its release. Sound (a returned
/// placement is always valid) but not complete (may miss feasible sets).
std::optional<std::vector<Placement>> admit_edf(
    const SchedulingPlan& plan, std::span<const WindowedTask> tasks);

/// Same decision as admit_edf without materializing the placements —
/// allocation-free, for the §10 validation loop that only asks yes/no.
bool admit_edf_feasible(const SchedulingPlan& plan,
                        std::span<const WindowedTask> tasks);

/// Exact non-preemptive feasibility via branch and bound over task orders,
/// with earliest-fit placement and deadline-based pruning. Exponential worst
/// case: requires tasks.size() <= max_tasks (default 12).
std::optional<std::vector<Placement>> admit_exact(
    const SchedulingPlan& plan, std::span<const WindowedTask> tasks,
    std::size_t max_tasks = 12);

/// Exact preemptive feasibility: for every window [a, b] spanned by a
/// release and a deadline, the demand of tasks fully inside must not exceed
/// the plan's idle time in [a, b]. (EDF is optimal for preemptive scheduling
/// with availability constraints, so this criterion is exact.)
bool feasible_preemptive(const SchedulingPlan& plan,
                         std::span<const WindowedTask> tasks);

/// Checks a placement vector against windows and the plan (test helper and
/// defensive validation before committing).
bool placements_valid(const SchedulingPlan& plan,
                      std::span<const WindowedTask> tasks,
                      std::span<const Placement> placements);

}  // namespace rtds
