// Per-site scheduling plan: the accepted, committed task reservations.
//
// A site's computation processor executes exactly what is reserved here
// (the management processor runs the protocol, §2, and is not modelled as a
// resource). The plan supports the three queries RTDS needs:
//  * earliest_fit       — admission tests slot tasks into idle gaps;
//  * idle_intervals     — exact idle structure for Trial-Mapping validation;
//  * surplus            — the paper's I_k: idle fraction of an observation
//                         window (we use the forward window [now, now+W],
//                         since admission reasons about future capacity).
#pragma once

#include <cstdint>
#include <vector>

#include "dag/dag.hpp"
#include "sched/interval.hpp"

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds {

struct Reservation {
  JobId job = 0;
  TaskId task = 0;
  Time start = 0.0;
  Time end = 0.0;

  TimeInterval interval() const { return {start, end}; }
};

class SchedulingPlan {
 public:
  /// Adds a reservation; throws if it overlaps an existing one or is empty.
  void reserve(const Reservation& r);

  /// Removes all reservations of a job (used by tests and by baselines that
  /// roll back trial placements).
  void remove_job(JobId job);

  /// Drops reservations that end at or before `horizon` (completed work);
  /// keeps plans short in long simulations.
  void garbage_collect(Time horizon);

  /// Earliest start s >= est with [s, s+duration] free and s+duration <=
  /// latest_end; kInfiniteTime if none. duration > 0.
  Time earliest_fit(Time est, Time latest_end, Time duration) const;

  /// Idle gaps intersected with [from, to], in increasing order.
  std::vector<TimeInterval> idle_intervals(Time from, Time to) const;

  /// Total idle time in [from, to].
  Time idle_time(Time from, Time to) const;

  /// Total reserved time in [from, to].
  Time busy_time(Time from, Time to) const;

  /// The paper's surplus I_k: idle fraction of [now, now+window], in [0, 1].
  double surplus(Time now, Time window) const;

  /// Reservations sorted by start time.
  const std::vector<Reservation>& reservations() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// End of the last reservation (0 if empty).
  Time horizon() const;

 private:
  std::vector<Reservation> items_;  // sorted by start, non-overlapping

  friend struct snap::Access;  // checkpoints restore the sorted array verbatim
};

}  // namespace rtds
