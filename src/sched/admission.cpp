#include "sched/admission.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/inline_vec.hpp"

namespace rtds {

namespace {

/// Typical per-call task counts are single digits (the tasks of one logical
/// processor); keep that case allocation-free.
constexpr std::size_t kInlineTasks = 32;

/// Plan copy we can extend during a trial without touching the real plan.
class TrialPlan {
 public:
  explicit TrialPlan(const SchedulingPlan& base) : base_(base) {}

  Time earliest_fit(Time est, Time latest_end, Time duration) const {
    Time candidate = est;
    for (;;) {
      const Time base_fit = base_.earliest_fit(candidate, latest_end, duration);
      if (base_fit == kInfiniteTime) return kInfiniteTime;
      // Check the candidate against trial placements too.
      bool collided = false;
      Time pushed = base_fit;
      for (const auto& p : placed_) {
        if (time_lt(pushed, p.end) && time_lt(p.start, pushed + duration)) {
          pushed = p.end;
          collided = true;
        }
      }
      if (!collided) return base_fit;
      candidate = pushed;
      if (time_gt(candidate + duration, latest_end)) return kInfiniteTime;
    }
  }

  void place(const Placement& p) {
    // placed_ stays sorted by start (placements never overlap, so starts
    // are unique and this equals the re-sort it replaces).
    auto* pos = std::upper_bound(
        placed_.begin(), placed_.end(), p,
        [](const Placement& a, const Placement& b) { return a.start < b.start; });
    placed_.insert(pos, p);
  }

  /// Idle capacity of the trial plan in [from, to]: the base plan's idle
  /// time minus the trial placements' overlap (placements never overlap
  /// reservations or each other, so plain subtraction is exact).
  Time idle_time(Time from, Time to) const {
    Time idle = base_.idle_time(from, to);
    for (const auto& p : placed_) {
      const Time lo = std::max(from, p.start);
      const Time hi = std::min(to, p.end);
      if (lo < hi) idle -= hi - lo;
    }
    return idle;
  }

  void unplace_last_of(TaskId task) {
    for (auto it = placed_.begin(); it != placed_.end(); ++it) {
      if (it->task == task) {
        placed_.erase(it);
        return;
      }
    }
    RTDS_CHECK(false);
  }

 private:
  const SchedulingPlan& base_;
  InlineVec<Placement, kInlineTasks> placed_;
};

void sort_edf(WindowedTask* first, WindowedTask* last) {
  const auto before = [](const WindowedTask& a, const WindowedTask& b) {
    if (!time_eq(a.deadline, b.deadline)) return a.deadline < b.deadline;
    if (!time_eq(a.release, b.release)) return a.release < b.release;
    return a.task < b.task;
  };
  const std::ptrdiff_t n = last - first;
  if (n <= 16) {  // typical case; std::sort's dispatch costs more than it buys
    for (std::ptrdiff_t i = 1; i < n; ++i) {
      const WindowedTask key = first[i];
      std::ptrdiff_t j = i;
      while (j > 0 && before(key, first[j - 1])) {
        first[j] = first[j - 1];
        --j;
      }
      first[j] = key;
    }
    return;
  }
  std::sort(first, last, before);
}

}  // namespace

namespace {

/// Shared EDF pass; `emit` receives each placement in EDF order.
template <typename Emit>
bool run_edf(const SchedulingPlan& plan, std::span<const WindowedTask> tasks,
             Emit&& emit) {
  RTDS_COUNT("admit.edf.calls");
  for (const auto& t : tasks) {
    RTDS_REQUIRE(t.cost > 0.0);
    if (time_gt(t.release + t.cost, t.deadline)) {
      RTDS_COUNT("admit.edf.reject");
      return false;
    }
  }
  TrialPlan trial(plan);
  InlineVec<WindowedTask, kInlineTasks> order;
  for (const auto& t : tasks) order.push_back(t);
  sort_edf(order.begin(), order.end());
  for (const auto& t : order) {
    const Time start = trial.earliest_fit(t.release, t.deadline, t.cost);
    if (start == kInfiniteTime) {
      RTDS_COUNT("admit.edf.reject");
      return false;
    }
    const Placement p{t.task, start, start + t.cost};
    trial.place(p);
    emit(p);
  }
  return true;
}

}  // namespace

std::optional<std::vector<Placement>> admit_edf(
    const SchedulingPlan& plan, std::span<const WindowedTask> tasks) {
  std::vector<Placement> placements;
  placements.reserve(tasks.size());
  if (!run_edf(plan, tasks, [&](const Placement& p) { placements.push_back(p); }))
    return std::nullopt;
  return placements;
}

bool admit_edf_feasible(const SchedulingPlan& plan,
                        std::span<const WindowedTask> tasks) {
  return run_edf(plan, tasks, [](const Placement&) {});
}

namespace {

bool exact_search(TrialPlan& trial, std::vector<WindowedTask>& remaining,
                  std::vector<Placement>& placements) {
  RTDS_COUNT("admit.exact.nodes");
  if (remaining.empty()) return true;
  // Bound prune: everything still unplaced must fit the trial plan's idle
  // capacity inside the remaining span. A necessary condition only — but
  // when it fails, no ordering of this subtree can succeed, so cutting it
  // changes neither the decision nor the placements of the first-found
  // solution.
  {
    Time min_release = kInfiniteTime, max_deadline = 0.0, demand = 0.0;
    for (const auto& t : remaining) {
      min_release = std::min(min_release, t.release);
      max_deadline = std::max(max_deadline, t.deadline);
      demand += t.cost;
    }
    if (time_gt(demand, trial.idle_time(min_release, max_deadline))) {
      RTDS_COUNT("admit.exact.bound_prune");
      return false;
    }
  }
  // Candidate ordering: EDF first finds feasible orders early.
  std::sort(remaining.begin(), remaining.end(),
            [](const WindowedTask& a, const WindowedTask& b) {
              if (!time_eq(a.deadline, b.deadline)) return a.deadline < b.deadline;
              return a.task < b.task;
            });
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    const WindowedTask t = remaining[i];
    // Identical candidates are interchangeable: branch on the first only.
    if (i > 0) {
      const WindowedTask& prev = remaining[i - 1];
      if (time_eq(prev.release, t.release) && time_eq(prev.cost, t.cost) &&
          time_eq(prev.deadline, t.deadline))
        continue;
    }
    const Time start = trial.earliest_fit(t.release, t.deadline, t.cost);
    // Dominance: adding placements only ever delays or closes a task's
    // earliest fit, so a task unplaceable *now* stays unplaceable
    // everywhere below this node — the whole node is dead, not just this
    // branch. (The old `continue` kept expanding siblings that each
    // rediscovered the same dead task deeper down.)
    if (start == kInfiniteTime) {
      RTDS_COUNT("admit.exact.dominance_cut");
      return false;
    }
    const Placement p{t.task, start, start + t.cost};
    trial.place(p);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(i));
    placements.push_back(p);
    if (exact_search(trial, remaining, placements)) return true;
    placements.pop_back();
    remaining.insert(remaining.begin() + static_cast<std::ptrdiff_t>(i), t);
    trial.unplace_last_of(t.task);
    // Safe dominance: if t, placed first, finishes before every remaining
    // task is even released, it cannot interfere with any of them — any
    // feasible order can be rearranged to put t first. So if that subtree
    // failed, the whole node fails.
    Time min_other_release = kInfiniteTime;
    for (std::size_t j = 0; j < remaining.size(); ++j)
      if (j != i)
        min_other_release = std::min(min_other_release, remaining[j].release);
    if (time_le(p.end, min_other_release)) break;
  }
  return false;
}

}  // namespace

std::optional<std::vector<Placement>> admit_exact(
    const SchedulingPlan& plan, std::span<const WindowedTask> tasks,
    std::size_t max_tasks) {
  RTDS_REQUIRE_MSG(tasks.size() <= max_tasks,
                   "admit_exact limited to " << max_tasks << " tasks, got "
                                             << tasks.size());
  for (const auto& t : tasks) {
    RTDS_REQUIRE(t.cost > 0.0);
    if (time_gt(t.release + t.cost, t.deadline)) return std::nullopt;
  }
  RTDS_COUNT("admit.exact.calls");
  // Fast path: if greedy EDF succeeds, we are done.
  if (auto edf = admit_edf(plan, tasks)) {
    RTDS_COUNT("admit.exact.edf_fastpath");
    return edf;
  }
  // Preemptive demand bound: a set infeasible even with preemption is
  // certainly infeasible without it, and proving that here is polynomial
  // while the search below would prove it exponentially.
  if (!feasible_preemptive(plan, tasks)) {
    RTDS_COUNT("admit.exact.preemptive_prune");
    return std::nullopt;
  }
  TrialPlan trial(plan);
  std::vector<WindowedTask> remaining(tasks.begin(), tasks.end());
  std::vector<Placement> placements;
  if (exact_search(trial, remaining, placements)) return placements;
  return std::nullopt;
}

bool feasible_preemptive(const SchedulingPlan& plan,
                         std::span<const WindowedTask> tasks) {
  for (const auto& t : tasks) {
    RTDS_REQUIRE(t.cost > 0.0);
    if (time_gt(t.release + t.cost, t.deadline)) return false;
  }
  // Candidate window endpoints: all releases and all deadlines.
  std::vector<Time> starts, ends;
  for (const auto& t : tasks) {
    starts.push_back(t.release);
    ends.push_back(t.deadline);
  }
  for (Time a : starts) {
    for (Time b : ends) {
      if (!time_lt(a, b)) continue;
      Time demand = 0.0;
      for (const auto& t : tasks)
        if (time_ge(t.release, a) && time_le(t.deadline, b)) demand += t.cost;
      if (time_gt(demand, plan.idle_time(a, b))) return false;
    }
  }
  return true;
}

bool placements_valid(const SchedulingPlan& plan,
                      std::span<const WindowedTask> tasks,
                      std::span<const Placement> placements) {
  if (tasks.size() != placements.size()) return false;
  // Each placement matches a task window and cost.
  for (const auto& p : placements) {
    const auto it = std::find_if(
        tasks.begin(), tasks.end(),
        [&](const WindowedTask& t) { return t.task == p.task; });
    if (it == tasks.end()) return false;
    if (!time_eq(p.end - p.start, it->cost)) return false;
    if (time_lt(p.start, it->release)) return false;
    if (time_gt(p.end, it->deadline)) return false;
  }
  // Placements must not overlap each other…
  std::vector<Placement> sorted(placements.begin(), placements.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Placement& a, const Placement& b) { return a.start < b.start; });
  for (std::size_t i = 1; i < sorted.size(); ++i)
    if (time_lt(sorted[i].start, sorted[i - 1].end)) return false;
  // …nor the existing plan.
  for (const auto& p : sorted)
    for (const auto& r : plan.reservations())
      if (overlaps(TimeInterval{p.start, p.end}, r.interval())) return false;
  return true;
}

}  // namespace rtds
