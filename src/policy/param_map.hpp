// Typed key=value parameters for the unified Policy API.
//
// A ParamSchema declares the parameters a policy understands — key, type,
// default and one-line description — and a ParamMap holds a *validated* set
// of overrides against one schema. Validation is strict and loud: unknown
// keys, malformed values and out-of-range enum labels all throw
// ContractViolation with the full schema appended, so a typo in
// `--set broadcst_period=10` fails with the list of spellings that would
// have worked instead of silently running the defaults.
//
// Schemas subsume the per-family config structs (SystemConfig,
// BroadcastConfig, CentralizedConfig, OffloadConfig, LocalSchedulerConfig):
// every schema default equals the corresponding struct default, so an empty
// ParamMap reproduces the legacy free-function behaviour bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rtds::policy {

/// Value types a parameter can declare. kBool parses true/false/1/0/on/off;
/// kEnum parses one of the declared labels and reads back as its index.
enum class ParamType { kInt, kDouble, kBool, kEnum };

/// Lower-case type name ("int", "double", "bool", "enum") for messages.
const char* to_string(ParamType type);

/// One parameter declaration: its key, type, default and documentation.
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kDouble;
  std::string description;
  std::string default_value;             ///< rendered default, for listings
  std::vector<std::string> enum_values;  ///< kEnum only: the valid labels
};

/// Ordered parameter declarations for one policy. Insertion order is the
/// listing order (keep related keys together).
class ParamSchema {
 public:
  // Declaration builders: each adds one key (duplicates throw) and
  // returns *this for chaining. The default is rendered into the listing
  // and must equal the corresponding config-struct default (DESIGN.md §8).
  ParamSchema& add_int(std::string key, std::int64_t def,
                       std::string description);
  ParamSchema& add_double(std::string key, double def,
                          std::string description);
  ParamSchema& add_bool(std::string key, bool def, std::string description);
  /// `def` must be one of `values`; get_enum returns the label's index.
  ParamSchema& add_enum(std::string key, std::string def,
                        std::vector<std::string> values,
                        std::string description);

  const ParamSpec* find(const std::string& key) const;  ///< nullptr if absent
  /// All declarations, in insertion (listing) order.
  const std::vector<ParamSpec>& specs() const { return specs_; }

  /// Human-readable one-line-per-param rendering, used in listings and
  /// appended to every validation error.
  std::string describe() const;

 private:
  ParamSpec& add(std::string key, ParamType type, std::string description);
  std::vector<ParamSpec> specs_;
};

/// A validated bag of overrides for one schema. Construct via parse();
/// a default-constructed map is empty (every lookup returns the default).
class ParamMap {
 public:
  ParamMap() = default;

  /// Validates `key=value` assignments against `schema`. Throws
  /// ContractViolation (message includes schema.describe()) on an unknown
  /// key, a value that does not parse as the declared type, or an enum
  /// label not in the declared set. Later assignments override earlier
  /// ones for the same key.
  static ParamMap parse(const std::vector<std::string>& assignments,
                        const ParamSchema& schema);
  /// Same, from already-split (key, value) pairs. (A distinct name: an
  /// overload would make single-element brace lists ambiguous.)
  static ParamMap parse_pairs(
      const std::vector<std::pair<std::string, std::string>>& pairs,
      const ParamSchema& schema);

  /// True iff `key` was explicitly set (typed getters then ignore `def`).
  bool has(const std::string& key) const;

  // Typed lookups. The key must have been declared with the matching type
  // in the schema the map was parsed against (checked at parse time); a
  // mismatched accessor on a *set* key is a policy bug and throws.
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;
  /// Index of the set label in the schema's enum_values, or `def` when the
  /// key is unset.
  std::size_t get_enum(const std::string& key, std::size_t def) const;

  /// Keys explicitly set, in first-set order (stable for labels/logs).
  std::vector<std::string> keys() const;

 private:
  struct Entry {
    std::string key;
    ParamType type = ParamType::kDouble;
    std::int64_t int_value = 0;     // kInt / kBool (0/1) / kEnum (index)
    double double_value = 0.0;      // kDouble
  };
  const Entry* find(const std::string& key, ParamType want) const;
  std::vector<Entry> entries_;
};

}  // namespace rtds::policy
