// The unified scheduler Policy API.
//
// Every scheduler family in the repo — the paper's RTDS protocol and all
// five comparison baselines (LOCAL, CENTRAL, BCAST, BID, RANDOM) — is one
// Policy: a name, a ParamSchema describing its knobs, and a pure
// run(topology, arrivals, params) -> RunMetrics. Policies are registered in
// the string-keyed PolicyRegistry, so experiments, the rtds_exp / rtds_cli
// front ends and tests all select schedulers as `(policy name, param
// overrides)` *data* instead of calling per-family free functions with
// per-family config structs. A new protocol variant plugs in by
// registering itself; nothing in src/exp needs to change.
//
// Contract (pinned by tests/policy_test.cpp): with an empty ParamMap a
// policy's RunMetrics is bit-identical to the legacy entry point it wraps
// (RtdsSystem::run, run_local_only, run_centralized, run_broadcast,
// run_offload) called with the corresponding default config struct.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "net/topology.hpp"
#include "policy/param_map.hpp"

namespace rtds::policy {

/// One scheduler family. Implementations are stateless façades: identity
/// (name/description), a schema of typed knobs, and a pure run().
class Policy {
 public:
  virtual ~Policy() = default;

  /// Registry key, stable across releases (e.g. "rtds", "bcast").
  virtual std::string name() const = 0;
  /// One-line human description, shown by `rtds_exp --list`.
  virtual std::string description() const = 0;
  /// The parameters this policy understands. Must return the same schema
  /// object every call (callers keep references across runs).
  virtual const ParamSchema& describe_params() const = 0;

  /// Runs the whole workload to completion. Pure: all state is local to
  /// the call, so concurrent runs of the same Policy object are safe.
  virtual RunMetrics run(const Topology& topo,
                         const std::vector<JobArrival>& arrivals,
                         const ParamMap& params) const = 0;

  /// Convenience: validate `key=value` assignments against this policy's
  /// schema.
  ParamMap parse_params(const std::vector<std::string>& assignments) const {
    return ParamMap::parse(assignments, describe_params());
  }
};

/// Constructs a fresh Policy instance (factories run at create() time, so
/// registration itself is cheap and order-independent).
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

/// Process-wide policy registry. Policies self-register via PolicyRegistrar
/// (see the bottom of rtds_policy.cpp / baseline_policies.cpp);
/// register_builtin_policies() guarantees the built-in six are installed
/// even when the static library's registrar objects would otherwise be
/// dropped by the linker.
class PolicyRegistry {
 public:
  /// The process-wide registry (static-initialization safe).
  static PolicyRegistry& instance();

  /// Registers a factory under `name`. Throws ContractViolation on a
  /// duplicate name — two families must never shadow each other.
  void add(std::string name, PolicyFactory factory);

  /// Instantiates the named policy. Throws ContractViolation listing every
  /// registered name when `name` is unknown.
  std::unique_ptr<Policy> create(const std::string& name) const;

  /// True iff `name` is registered (no instantiation).
  bool contains(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, PolicyFactory>> factories_;
};

/// `static PolicyRegistrar r{"name", [] { return std::make_unique<P>(); }};`
struct PolicyRegistrar {
  PolicyRegistrar(std::string name, PolicyFactory factory) {
    PolicyRegistry::instance().add(std::move(name), std::move(factory));
  }
};

/// Installs the six built-in families (rtds, local, central, bcast, bid,
/// random). Idempotent; call before touching the registry from a binary.
void register_builtin_policies();

}  // namespace rtds::policy
