#include "policy/policy.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace rtds::policy {

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::add(std::string name, PolicyFactory factory) {
  RTDS_REQUIRE_MSG(!contains(name), "policy " << name << " already registered");
  RTDS_REQUIRE(factory != nullptr);
  factories_.emplace_back(std::move(name), std::move(factory));
}

std::unique_ptr<Policy> PolicyRegistry::create(const std::string& name) const {
  for (const auto& [key, factory] : factories_) {
    if (key != name) continue;
    auto policy = factory();
    RTDS_CHECK_MSG(policy != nullptr && policy->name() == key,
                   "factory for " << key << " built a mismatched policy");
    return policy;
  }
  std::ostringstream os;
  os << "unknown policy '" << name << "'; registered policies:";
  for (const auto& known : names()) os << " " << known;
  throw ContractViolation(os.str());
}

bool PolicyRegistry::contains(const std::string& name) const {
  for (const auto& [key, factory] : factories_) {
    (void)factory;
    if (key == name) return true;
  }
  return false;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, factory] : factories_) {
    (void)factory;
    out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Defined in rtds_policy.cpp / baseline_policies.cpp. Explicit hooks keep
// the registrations alive under static-library linking, where a TU nothing
// references would be dropped along with its registrar objects.
void register_rtds_policy();
void register_baseline_policies();

void register_builtin_policies() {
  static const bool once = [] {
    register_rtds_policy();
    register_baseline_policies();
    return true;
  }();
  (void)once;
}

}  // namespace rtds::policy
