#include "policy/param_map.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace rtds::policy {

const char* to_string(ParamType type) {
  switch (type) {
    case ParamType::kInt: return "int";
    case ParamType::kDouble: return "double";
    case ParamType::kBool: return "bool";
    case ParamType::kEnum: return "enum";
  }
  return "?";
}

ParamSpec& ParamSchema::add(std::string key, ParamType type,
                            std::string description) {
  RTDS_REQUIRE_MSG(find(key) == nullptr, "duplicate param key " << key);
  ParamSpec spec;
  spec.key = std::move(key);
  spec.type = type;
  spec.description = std::move(description);
  specs_.push_back(std::move(spec));
  return specs_.back();
}

ParamSchema& ParamSchema::add_int(std::string key, std::int64_t def,
                                  std::string description) {
  auto& spec = add(std::move(key), ParamType::kInt, std::move(description));
  spec.default_value = std::to_string(def);
  return *this;
}

ParamSchema& ParamSchema::add_double(std::string key, double def,
                                     std::string description) {
  auto& spec = add(std::move(key), ParamType::kDouble, std::move(description));
  std::ostringstream os;
  os << def;
  spec.default_value = os.str();
  return *this;
}

ParamSchema& ParamSchema::add_bool(std::string key, bool def,
                                   std::string description) {
  auto& spec = add(std::move(key), ParamType::kBool, std::move(description));
  spec.default_value = def ? "true" : "false";
  return *this;
}

ParamSchema& ParamSchema::add_enum(std::string key, std::string def,
                                   std::vector<std::string> values,
                                   std::string description) {
  RTDS_REQUIRE_MSG(std::find(values.begin(), values.end(), def) != values.end(),
                   "enum default " << def << " not among its values");
  auto& spec = add(std::move(key), ParamType::kEnum, std::move(description));
  spec.default_value = std::move(def);
  spec.enum_values = std::move(values);
  return *this;
}

const ParamSpec* ParamSchema::find(const std::string& key) const {
  for (const auto& spec : specs_)
    if (spec.key == key) return &spec;
  return nullptr;
}

std::string ParamSchema::describe() const {
  std::ostringstream os;
  for (const auto& spec : specs_) {
    os << "  " << spec.key << " (";
    if (spec.type == ParamType::kEnum) {
      for (std::size_t i = 0; i < spec.enum_values.size(); ++i)
        os << (i ? "|" : "") << spec.enum_values[i];
    } else {
      os << to_string(spec.type);
    }
    os << ", default " << spec.default_value << ") — " << spec.description
       << "\n";
  }
  return os.str();
}

namespace {

[[noreturn]] void param_error(const ParamSchema& schema,
                              const std::string& what) {
  std::ostringstream os;
  os << what << "\nvalid params:\n" << schema.describe();
  throw ContractViolation(os.str());
}

std::int64_t parse_int(const ParamSchema& schema, const std::string& key,
                       const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const auto v = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty() || errno == ERANGE)
    param_error(schema, "param " + key + " expects an integer, got '" +
                            value + "'");
  return v;
}

double parse_double(const ParamSchema& schema, const std::string& key,
                    const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || value.empty() ||
      (errno == ERANGE && std::isinf(v)))
    param_error(schema,
                "param " + key + " expects a number, got '" + value + "'");
  return v;
}

bool parse_bool(const ParamSchema& schema, const std::string& key,
                const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  param_error(schema,
              "param " + key + " expects a boolean, got '" + value + "'");
}

}  // namespace

ParamMap ParamMap::parse_pairs(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const ParamSchema& schema) {
  ParamMap map;
  for (const auto& [key, value] : pairs) {
    const ParamSpec* spec = schema.find(key);
    if (spec == nullptr) param_error(schema, "unknown param '" + key + "'");

    Entry entry;
    entry.key = key;
    entry.type = spec->type;
    switch (spec->type) {
      case ParamType::kInt:
        entry.int_value = parse_int(schema, key, value);
        break;
      case ParamType::kDouble:
        entry.double_value = parse_double(schema, key, value);
        break;
      case ParamType::kBool:
        entry.int_value = parse_bool(schema, key, value) ? 1 : 0;
        break;
      case ParamType::kEnum: {
        const auto it = std::find(spec->enum_values.begin(),
                                  spec->enum_values.end(), value);
        if (it == spec->enum_values.end())
          param_error(schema, "param " + key + " has no value '" + value +
                                  "' (see the valid labels below)");
        entry.int_value =
            static_cast<std::int64_t>(it - spec->enum_values.begin());
        break;
      }
    }

    // Later assignments override earlier ones in place.
    const auto existing =
        std::find_if(map.entries_.begin(), map.entries_.end(),
                     [&](const Entry& e) { return e.key == key; });
    if (existing != map.entries_.end())
      *existing = std::move(entry);
    else
      map.entries_.push_back(std::move(entry));
  }
  return map;
}

ParamMap ParamMap::parse(const std::vector<std::string>& assignments,
                         const ParamSchema& schema) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& assignment : assignments) {
    const auto eq = assignment.find('=');
    if (eq == std::string::npos)
      param_error(schema, "malformed param assignment '" + assignment +
                              "' (expected key=value)");
    pairs.emplace_back(assignment.substr(0, eq), assignment.substr(eq + 1));
  }
  return parse_pairs(pairs, schema);
}

bool ParamMap::has(const std::string& key) const {
  for (const auto& e : entries_)
    if (e.key == key) return true;
  return false;
}

const ParamMap::Entry* ParamMap::find(const std::string& key,
                                      ParamType want) const {
  for (const auto& e : entries_) {
    if (e.key != key) continue;
    RTDS_CHECK_MSG(e.type == want, "param " << key << " read as "
                                            << to_string(want) << " but set as "
                                            << to_string(e.type));
    return &e;
  }
  return nullptr;
}

std::int64_t ParamMap::get_int(const std::string& key, std::int64_t def) const {
  const Entry* e = find(key, ParamType::kInt);
  return e == nullptr ? def : e->int_value;
}

double ParamMap::get_double(const std::string& key, double def) const {
  const Entry* e = find(key, ParamType::kDouble);
  return e == nullptr ? def : e->double_value;
}

bool ParamMap::get_bool(const std::string& key, bool def) const {
  const Entry* e = find(key, ParamType::kBool);
  return e == nullptr ? def : e->int_value != 0;
}

std::size_t ParamMap::get_enum(const std::string& key, std::size_t def) const {
  const Entry* e = find(key, ParamType::kEnum);
  return e == nullptr ? def : static_cast<std::size_t>(e->int_value);
}

std::vector<std::string> ParamMap::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.key);
  return out;
}

}  // namespace rtds::policy
