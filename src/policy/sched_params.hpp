// The local-scheduler parameter fragment every policy family shares.
//
// All six families run the same §5 local admission machinery underneath
// (LocalSchedulerConfig), so its knobs appear under the same keys in every
// schema and decode through one helper. computing_power is deliberately
// not a param: it is per-site data owned by the Topology (§13 uniform
// machines), not a scheduler knob.
#pragma once

#include "policy/param_map.hpp"
#include "sched/local_scheduler.hpp"

namespace rtds::policy {

inline ParamSchema& add_sched_params(ParamSchema& schema) {
  schema
      .add_enum("admission", "edf", {"edf", "exact", "preemptive"},
                "§5 local admission test (greedy EDF, exact B&B, "
                "preemptive EDF)")
      .add_int("exact_max_tasks", 12,
               "B&B size cap for admission=exact; larger sets fall back to "
               "EDF")
      .add_double("observation_window", 100.0,
                  "W in the §2 surplus definition");
  return schema;
}

inline LocalSchedulerConfig sched_config_from(const ParamMap& params) {
  LocalSchedulerConfig cfg;
  cfg.policy = static_cast<AdmissionPolicy>(
      params.get_enum("admission", static_cast<std::size_t>(cfg.policy)));
  cfg.exact_max_tasks = static_cast<std::size_t>(params.get_int(
      "exact_max_tasks", static_cast<std::int64_t>(cfg.exact_max_tasks)));
  cfg.observation_window =
      params.get_double("observation_window", cfg.observation_window);
  return cfg;
}

}  // namespace rtds::policy
