// Exported half of the rtds policy's ParamMap decoding: the open-system
// engine (src/load/engine.cpp) builds RtdsSystem instances directly — it
// streams arrivals instead of going through Policy::run — but must honour
// exactly the same keys, so the decode lives here instead of being
// duplicated.
#pragma once

#include "core/rtds_system.hpp"
#include "policy/param_map.hpp"

namespace rtds::policy {

/// Decodes every rtds schema key (h, enroll, gate, mapper/sched knobs,
/// transport, shed.*, ...) into a SystemConfig; defaults equal the struct
/// defaults, so an empty map is exactly `SystemConfig{}`. Fault keys are
/// NOT decoded here (the fault plan needs the workload horizon).
SystemConfig rtds_system_config_from(const ParamMap& params);

}  // namespace rtds::policy
