// The paper's RTDS protocol as a Policy. The schema subsumes SystemConfig:
// every key maps onto one SystemConfig / RtdsConfig / MapperConfig field
// and every default equals the struct default, so an empty ParamMap is
// exactly `RtdsSystem(topo, SystemConfig{})`.
#include "core/rtds_system.hpp"
#include "fault/fault_params.hpp"
#include "load/load_params.hpp"
#include "policy/policy.hpp"
#include "policy/rtds_params.hpp"
#include "policy/sched_params.hpp"

namespace rtds::policy {

namespace {

ParamSchema make_rtds_schema() {
  ParamSchema schema;
  schema
      .add_int("h", 2, "PCS sphere radius in hops (§6)")
      .add_enum("enroll", "nack", {"nack", "timeout"},
                "§8 enrollment completion rule for locked sites")
      .add_enum("gate", "critical_path",
                {"none", "critical_path", "protocol_aware"},
                "§9 pre-enrollment feasibility gate")
      .add_double("enroll_timeout_slack", 1.0,
                  "enroll=timeout: slack added to the 2×radius RTT bound")
      .add_double("mapper_compute_time", 0.0,
                  "simulated Trial-Mapping construction latency (§13)")
      .add_double("overhead_factor", 1.0,
                  "multiplier on the 3×eccentricity protocol-overhead "
                  "charge")
      .add_double("overhead_slack", 0.0,
                  "additive protocol-overhead slack (absorbs contention)")
      .add_double("min_surplus", 0.02,
                  "sites below this surplus get no logical processor")
      .add_bool("job_window_surplus", true,
                "report surplus over [now, job deadline] instead of the "
                "fixed window")
      .add_bool("initiator_local_knowledge", false,
                "§13: map the initiator against its exact idle intervals")
      .add_enum("task_priority", "bottom_level",
                {"bottom_level", "cost", "fifo"},
                "§9 mapper task-selection heuristic")
      .add_bool("busyness_weighted_laxity", false,
                "§13: scatter case-iii laxity by logical-processor busyness")
      .add_bool("account_data_volumes", false,
                "§13: charge data_volume / throughput on data-bearing arcs")
      .add_double("link_throughput", 0.0,
                  "throughput for account_data_volumes (must be > 0 when "
                  "enabled)")
      .add_bool("reject_infeasible_windows", true,
                "defensively reject mappings whose adjusted windows cannot "
                "hold their task")
      .add_enum("transport", "ideal", {"ideal", "contended"},
                "message transport model")
      .add_double("bandwidth", 100.0,
                  "transport=contended: link bandwidth in size units per "
                  "time unit")
      .add_bool("measure_pcs_build", false,
                "also run the §7 distributed APSP as real messages")
      .add_bool("check_invariants", false,
                "run the §12 runtime invariant checker (pure observer; "
                "also enabled by the CLIs' --check-invariants)")
      .add_int("shed.cap", 0,
               "overload control: bounded admission-queue capacity "
               "(0 = unbounded, the paper's protocol)")
      .add_enum("shed.policy", "drop_newest",
                {"drop_newest", "drop_lowest_laxity", "reject_enroll"},
                "what a full admission queue sheds (shed.cap > 0 only)");
  add_sched_params(schema);
  load::add_workload_params(schema);
  // rtds is the only family on the simulated transport, so it gets the
  // full network-fault surface (link failures, drops, extra delay) on top
  // of the crash process every policy shares.
  fault::add_fault_params(schema);
  return schema;
}

}  // namespace

SystemConfig rtds_system_config_from(const ParamMap& p) {
  SystemConfig cfg;
  cfg.node.sphere_radius_h = static_cast<std::size_t>(
      p.get_int("h", static_cast<std::int64_t>(cfg.node.sphere_radius_h)));
  cfg.node.sched = sched_config_from(p);
  cfg.node.enroll_policy = static_cast<EnrollPolicy>(
      p.get_enum("enroll", static_cast<std::size_t>(cfg.node.enroll_policy)));
  cfg.node.enroll_gate = static_cast<EnrollGate>(
      p.get_enum("gate", static_cast<std::size_t>(cfg.node.enroll_gate)));
  cfg.node.enroll_timeout_slack =
      p.get_double("enroll_timeout_slack", cfg.node.enroll_timeout_slack);
  cfg.node.mapper_compute_time =
      p.get_double("mapper_compute_time", cfg.node.mapper_compute_time);
  cfg.node.protocol_overhead_factor =
      p.get_double("overhead_factor", cfg.node.protocol_overhead_factor);
  cfg.node.protocol_overhead_slack =
      p.get_double("overhead_slack", cfg.node.protocol_overhead_slack);
  cfg.node.min_surplus = p.get_double("min_surplus", cfg.node.min_surplus);
  cfg.node.job_window_surplus =
      p.get_bool("job_window_surplus", cfg.node.job_window_surplus);
  cfg.node.initiator_local_knowledge = p.get_bool(
      "initiator_local_knowledge", cfg.node.initiator_local_knowledge);

  cfg.node.mapper.task_priority = static_cast<TaskPriority>(p.get_enum(
      "task_priority", static_cast<std::size_t>(cfg.node.mapper.task_priority)));
  cfg.node.mapper.busyness_weighted_laxity = p.get_bool(
      "busyness_weighted_laxity", cfg.node.mapper.busyness_weighted_laxity);
  cfg.node.mapper.account_data_volumes = p.get_bool(
      "account_data_volumes", cfg.node.mapper.account_data_volumes);
  cfg.node.mapper.link_throughput =
      p.get_double("link_throughput", cfg.node.mapper.link_throughput);
  cfg.node.mapper.reject_infeasible_windows = p.get_bool(
      "reject_infeasible_windows", cfg.node.mapper.reject_infeasible_windows);

  cfg.transport_model = static_cast<TransportModel>(
      p.get_enum("transport", static_cast<std::size_t>(cfg.transport_model)));
  cfg.link_bandwidth = p.get_double("bandwidth", cfg.link_bandwidth);
  cfg.measure_pcs_build_cost =
      p.get_bool("measure_pcs_build", cfg.measure_pcs_build_cost);
  cfg.check_invariants = p.get_bool("check_invariants", cfg.check_invariants);
  // §12 hardening knobs (inert with an empty fault plan: no retries are
  // ever armed, so hardened faultless runs stay bit-identical).
  cfg.node.retransmit = p.get_bool("faults.retransmit", cfg.node.retransmit);
  cfg.node.retransmit_tries = static_cast<int>(p.get_int(
      "faults.retransmit_tries",
      static_cast<std::int64_t>(cfg.node.retransmit_tries)));
  // Overload control (src/load/). cap 0 keeps the exact legacy code path.
  cfg.node.admission_queue_cap = static_cast<std::size_t>(p.get_int(
      "shed.cap", static_cast<std::int64_t>(cfg.node.admission_queue_cap)));
  cfg.node.shed_policy = static_cast<ShedPolicy>(p.get_enum(
      "shed.policy", static_cast<std::size_t>(cfg.node.shed_policy)));
  return cfg;
}

namespace {

class RtdsPolicy final : public Policy {
 public:
  std::string name() const override { return "rtds"; }
  std::string description() const override {
    return "the paper's distributed protocol: sphere enrollment, "
           "Trial-Mapping, validation, maximum coupling, dispatch";
  }
  const ParamSchema& describe_params() const override {
    static const ParamSchema schema = make_rtds_schema();
    return schema;
  }
  RunMetrics run(const Topology& topo, const std::vector<JobArrival>& arrivals,
                 const ParamMap& params) const override {
    SystemConfig cfg = rtds_system_config_from(params);
    cfg.faults = fault::FaultPlan::from_spec(
        fault::fault_spec_from(params, fault::fault_horizon(arrivals)), topo);
    RtdsSystem system(topo, cfg);
    system.run(arrivals);
    return system.metrics();
  }
};

const PolicyRegistrar rtds_registrar{
    "rtds", [] { return std::make_unique<RtdsPolicy>(); }};

}  // namespace

void register_rtds_policy() {
  // The registrar above already ran if this TU's initializers were kept;
  // the explicit hook only needs to anchor the TU (see policy.cpp).
  (void)rtds_registrar;
}

}  // namespace rtds::policy
