// The five comparison baselines as Policies: LOCAL, CENTRAL, BCAST, BID,
// RANDOM. Each schema subsumes the family's config struct with identical
// defaults, so an empty ParamMap reproduces the legacy free function bit
// for bit (pinned by tests/policy_test.cpp).
#include "baseline/broadcast.hpp"
#include "baseline/centralized.hpp"
#include "baseline/local_only.hpp"
#include "baseline/offload.hpp"
#include "fault/fault_params.hpp"
#include "load/load_params.hpp"
#include "policy/policy.hpp"
#include "policy/sched_params.hpp"

namespace rtds::policy {

namespace {

/// Every baseline drives execution-plane faults from the shared crash keys
/// (DESIGN.md §9); their control planes stay reliable by design.
fault::FaultPlan crash_plan(const ParamMap& params, const Topology& topo,
                            const std::vector<JobArrival>& arrivals) {
  return fault::FaultPlan::from_spec(
      fault::fault_spec_from(params, fault::fault_horizon(arrivals)), topo);
}

class LocalPolicy final : public Policy {
 public:
  std::string name() const override { return "local"; }
  std::string description() const override {
    return "LOCAL baseline: every site schedules only its own arrivals "
           "(§5 test, no cooperation)";
  }
  const ParamSchema& describe_params() const override {
    static const ParamSchema schema = [] {
      ParamSchema s;
      add_sched_params(s);
      load::add_workload_params(s);
      fault::add_crash_params(s);
      return s;
    }();
    return schema;
  }
  RunMetrics run(const Topology& topo, const std::vector<JobArrival>& arrivals,
                 const ParamMap& params) const override {
    return run_local_only(topo, arrivals, sched_config_from(params),
                          crash_plan(params, topo, arrivals));
  }
};

class CentralPolicy final : public Policy {
 public:
  std::string name() const override { return "central"; }
  std::string description() const override {
    return "CENTRAL baseline: omniscient zero-cost centralized scheduler "
           "(upper bound)";
  }
  const ParamSchema& describe_params() const override {
    static const ParamSchema schema = [] {
      ParamSchema s;
      s.add_int("h", -1,
                "restrict candidates to the arrival site's h-hop sphere "
                "(-1 = whole network)");
      add_sched_params(s);
      load::add_workload_params(s);
      fault::add_crash_params(s);
      return s;
    }();
    return schema;
  }
  RunMetrics run(const Topology& topo, const std::vector<JobArrival>& arrivals,
                 const ParamMap& params) const override {
    CentralizedConfig cfg;
    cfg.sched = sched_config_from(params);
    const auto h = params.get_int("h", -1);
    cfg.sphere_radius_h = h < 0 ? CentralizedConfig::kNoRadiusLimit
                                : static_cast<std::size_t>(h);
    cfg.faults = crash_plan(params, topo, arrivals);
    return run_centralized(topo, arrivals, cfg);
  }
};

class BcastPolicy final : public Policy {
 public:
  std::string name() const override { return "bcast"; }
  std::string description() const override {
    return "BCAST baseline: periodic network-wide surplus floods + focused "
           "addressing ([4])";
  }
  const ParamSchema& describe_params() const override {
    static const ParamSchema schema = [] {
      ParamSchema s;
      s.add_double("broadcast_period", 25.0,
                   "surplus flood interval per site")
          .add_int("max_attempts", 3, "focused-addressing offers per job")
          .add_double("surplus_window", 100.0,
                      "fixed observation window for flooded surpluses")
          .add_bool("stop_with_arrivals", true,
                    "cease broadcasting after the last arrival");
      add_sched_params(s);
      load::add_workload_params(s);
      fault::add_crash_params(s);
      return s;
    }();
    return schema;
  }
  RunMetrics run(const Topology& topo, const std::vector<JobArrival>& arrivals,
                 const ParamMap& params) const override {
    BroadcastConfig cfg;
    cfg.sched = sched_config_from(params);
    cfg.broadcast_period =
        params.get_double("broadcast_period", cfg.broadcast_period);
    cfg.max_attempts = static_cast<std::size_t>(params.get_int(
        "max_attempts", static_cast<std::int64_t>(cfg.max_attempts)));
    cfg.surplus_window = params.get_double("surplus_window", cfg.surplus_window);
    cfg.stop_with_arrivals =
        params.get_bool("stop_with_arrivals", cfg.stop_with_arrivals);
    cfg.faults = crash_plan(params, topo, arrivals);
    return run_broadcast(topo, arrivals, cfg);
  }
};

/// BID and RANDOM share OffloadConfig; they differ only in the pinned
/// OffloadPolicy (which is what makes them distinct registry entries).
class OffloadFamilyPolicy : public Policy {
 public:
  explicit OffloadFamilyPolicy(OffloadPolicy pick) : pick_(pick) {}

  const ParamSchema& describe_params() const override {
    static const ParamSchema schema = [] {
      ParamSchema s;
      s.add_int("h", 2, "sphere radius the offers are confined to")
          .add_int("max_attempts", 3, "offers before giving up (BID)")
          .add_int("seed", 7, "RANDOM pick stream");
      add_sched_params(s);
      load::add_workload_params(s);
      fault::add_crash_params(s);
      return s;
    }();
    return schema;
  }
  RunMetrics run(const Topology& topo, const std::vector<JobArrival>& arrivals,
                 const ParamMap& params) const override {
    OffloadConfig cfg;
    cfg.policy = pick_;
    cfg.sched = sched_config_from(params);
    cfg.sphere_radius_h = static_cast<std::size_t>(params.get_int(
        "h", static_cast<std::int64_t>(cfg.sphere_radius_h)));
    cfg.max_attempts = static_cast<std::size_t>(params.get_int(
        "max_attempts", static_cast<std::int64_t>(cfg.max_attempts)));
    cfg.seed = static_cast<std::uint64_t>(
        params.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
    cfg.faults = crash_plan(params, topo, arrivals);
    return run_offload(topo, arrivals, cfg);
  }

 private:
  OffloadPolicy pick_;
};

class BidPolicy final : public OffloadFamilyPolicy {
 public:
  BidPolicy() : OffloadFamilyPolicy(OffloadPolicy::kBestSurplus) {}
  std::string name() const override { return "bid"; }
  std::string description() const override {
    return "BID baseline: per-job sphere bidding, whole-DAG offers to the "
           "best surpluses ([10])";
  }
};

class RandomPolicy final : public OffloadFamilyPolicy {
 public:
  RandomPolicy() : OffloadFamilyPolicy(OffloadPolicy::kRandom) {}
  std::string name() const override { return "random"; }
  std::string description() const override {
    return "RANDOM baseline: whole-DAG offer to one uniformly random "
           "sphere member";
  }
};

const PolicyRegistrar local_registrar{
    "local", [] { return std::make_unique<LocalPolicy>(); }};
const PolicyRegistrar central_registrar{
    "central", [] { return std::make_unique<CentralPolicy>(); }};
const PolicyRegistrar bcast_registrar{
    "bcast", [] { return std::make_unique<BcastPolicy>(); }};
const PolicyRegistrar bid_registrar{
    "bid", [] { return std::make_unique<BidPolicy>(); }};
const PolicyRegistrar random_registrar{
    "random", [] { return std::make_unique<RandomPolicy>(); }};

}  // namespace

void register_baseline_policies() {
  // Anchor the TU so static-library linking keeps the registrars above.
  (void)local_registrar;
  (void)central_registrar;
  (void)bcast_registrar;
  (void)bid_registrar;
  (void)random_registrar;
}

}  // namespace rtds::policy
