#include "dag/analysis.hpp"

#include <algorithm>

namespace rtds {

std::vector<Time> bottom_levels(const Dag& dag) {
  return dag.bottom_levels();  // copy of the finalize()-time cache
}

std::vector<Time> top_levels(const Dag& dag) {
  std::vector<Time> tl(dag.task_count(), 0.0);
  for (TaskId t : dag.topological_order()) {
    for (TaskId s : dag.successors(t))
      tl[s] = std::max(tl[s], tl[t] + dag.cost(t));
  }
  return tl;
}

Time critical_path_length(const Dag& dag) { return dag.critical_path(); }

std::size_t critical_path_task_count(const Dag& dag) {
  if (dag.empty()) return 0;
  const Time cp = critical_path_length(dag);
  const auto& bl = dag.bottom_levels();
  const auto tl = top_levels(dag);
  // Longest (task-count) path among tasks lying on *some* critical path.
  // A task t is on a critical path iff tl[t] + bl[t] == cp. Count via DP over
  // the topological order restricted to critical tasks and critical arcs.
  std::vector<std::size_t> cnt(dag.task_count(), 0);
  std::size_t best = 0;
  for (TaskId t : dag.topological_order()) {
    if (!time_eq(tl[t] + bl[t], cp)) continue;
    cnt[t] = 1;
    for (TaskId p : dag.predecessors(t)) {
      // Arc p->t is critical iff both endpoints critical and tight.
      if (time_eq(tl[p] + bl[p], cp) && time_eq(tl[p] + dag.cost(p), tl[t]))
        cnt[t] = std::max(cnt[t], cnt[p] + 1);
    }
    best = std::max(best, cnt[t]);
  }
  return best;
}

std::vector<TaskId> critical_path_tasks(const Dag& dag) {
  std::vector<TaskId> path;
  if (dag.empty()) return path;
  const auto bl = bottom_levels(dag);
  // Start from the source-side task with the largest bottom level; walk
  // greedily through successors that keep the path tight.
  TaskId cur = 0;
  Time best = -1.0;
  for (TaskId t : dag.sources()) {
    if (bl[t] > best) {
      best = bl[t];
      cur = t;
    }
  }
  path.push_back(cur);
  while (!dag.successors(cur).empty()) {
    const Time want = bl[cur] - dag.cost(cur);
    if (time_eq(want, 0.0)) break;
    TaskId next = dag.successors(cur).front();
    for (TaskId s : dag.successors(cur)) {
      if (time_eq(bl[s], want)) {
        next = s;
        break;
      }
    }
    path.push_back(next);
    cur = next;
  }
  return path;
}

namespace {
/// Longest-path (hop count) layer index per task.
std::vector<std::size_t> layers(const Dag& dag) {
  std::vector<std::size_t> layer(dag.task_count(), 0);
  for (TaskId t : dag.topological_order())
    for (TaskId s : dag.successors(t))
      layer[s] = std::max(layer[s], layer[t] + 1);
  return layer;
}
}  // namespace

std::size_t depth(const Dag& dag) {
  if (dag.empty()) return 0;
  const auto ls = layers(dag);
  return 1 + *std::max_element(ls.begin(), ls.end());
}

std::size_t width(const Dag& dag) {
  if (dag.empty()) return 0;
  const auto ls = layers(dag);
  std::vector<std::size_t> counts(depth(dag), 0);
  for (auto l : ls) ++counts[l];
  return *std::max_element(counts.begin(), counts.end());
}

DagSummary summarize(const Dag& dag) {
  DagSummary s;
  s.tasks = dag.task_count();
  s.arcs = dag.arc_count();
  s.depth = depth(dag);
  s.width = width(dag);
  s.total_work = dag.total_work();
  s.critical_path = critical_path_length(dag);
  s.parallelism = s.critical_path > 0 ? s.total_work / s.critical_path : 0.0;
  return s;
}

}  // namespace rtds
