// Graphviz DOT export for task graphs (debugging and documentation).
#pragma once

#include <ostream>
#include <string>

#include "dag/dag.hpp"

namespace rtds {

/// Writes the DAG as a `digraph`, labelling each task with its id and cost.
void write_dot(const Dag& dag, std::ostream& os,
               const std::string& graph_name = "job");

std::string to_dot(const Dag& dag, const std::string& graph_name = "job");

}  // namespace rtds
