#include "dag/dot.hpp"

#include <sstream>

namespace rtds {

void write_dot(const Dag& dag, std::ostream& os, const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=circle];\n";
  for (TaskId t = 0; t < dag.task_count(); ++t) {
    const auto& task = dag.task(t);
    os << "  t" << t << " [label=\"";
    if (!task.label.empty())
      os << task.label;
    else
      os << 't' << (t + 1);
    os << "\\nc=" << task.cost << "\"];\n";
  }
  for (const auto& a : dag.arcs()) {
    os << "  t" << a.from << " -> t" << a.to;
    if (a.data_volume > 0.0) os << " [label=\"" << a.data_volume << "\"]";
    os << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const Dag& dag, const std::string& graph_name) {
  std::ostringstream os;
  write_dot(dag, os, graph_name);
  return os.str();
}

}  // namespace rtds
