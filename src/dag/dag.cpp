#include "dag/dag.hpp"

#include <algorithm>
#include <queue>

namespace rtds {

TaskId Dag::add_task(Time cost, std::string label) {
  RTDS_REQUIRE_MSG(!finalized_, "cannot mutate a finalized Dag");
  RTDS_REQUIRE_MSG(cost > 0.0, "task cost must be positive, got " << cost);
  tasks_.push_back(Task{cost, std::move(label)});
  return static_cast<TaskId>(tasks_.size() - 1);
}

void Dag::add_arc(TaskId from, TaskId to, double data_volume) {
  RTDS_REQUIRE_MSG(!finalized_, "cannot mutate a finalized Dag");
  RTDS_REQUIRE(from < tasks_.size());
  RTDS_REQUIRE(to < tasks_.size());
  RTDS_REQUIRE_MSG(from != to, "self-loop on task " << from);
  RTDS_REQUIRE(data_volume >= 0.0);
  for (const auto& a : arcs_)
    if (a.from == from && a.to == to) return;  // idempotent
  arcs_.push_back(Arc{from, to, data_volume});
}

void Dag::finalize() {
  RTDS_REQUIRE_MSG(!finalized_, "Dag already finalized");
  const auto n = tasks_.size();

  // CSR adjacency: count degrees, prefix-sum offsets, scatter, sort rows.
  pred_off_.assign(n + 1, 0);
  succ_off_.assign(n + 1, 0);
  for (const auto& a : arcs_) {
    ++succ_off_[a.from + 1];
    ++pred_off_[a.to + 1];
  }
  for (std::size_t t = 1; t <= n; ++t) {
    pred_off_[t] += pred_off_[t - 1];
    succ_off_[t] += succ_off_[t - 1];
  }
  pred_data_.resize(arcs_.size());
  succ_data_.resize(arcs_.size());
  {
    std::vector<std::uint32_t> pc(pred_off_.begin(), pred_off_.end() - 1);
    std::vector<std::uint32_t> sc(succ_off_.begin(), succ_off_.end() - 1);
    for (const auto& a : arcs_) {
      succ_data_[sc[a.from]++] = a.to;
      pred_data_[pc[a.to]++] = a.from;
    }
  }
  for (TaskId t = 0; t < n; ++t) {
    std::sort(pred_data_.begin() + pred_off_[t],
              pred_data_.begin() + pred_off_[t + 1]);
    std::sort(succ_data_.begin() + succ_off_[t],
              succ_data_.begin() + succ_off_[t + 1]);
  }

  // Kahn's algorithm with a min-heap for a stable (id-ordered) topo order.
  std::vector<std::size_t> indegree(n);
  for (TaskId t = 0; t < n; ++t) indegree[t] = pred_off_[t + 1] - pred_off_[t];
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId t = 0; t < n; ++t)
    if (indegree[t] == 0) ready.push(t);
  topo_.clear();
  topo_.reserve(n);
  finalized_ = true;  // successors() below requires it
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    topo_.push_back(t);
    for (TaskId s : successors(t))
      if (--indegree[s] == 0) ready.push(s);
  }
  if (topo_.size() != n) {
    finalized_ = false;
    RTDS_REQUIRE_MSG(false, "precedence graph contains a cycle");
  }

  sources_.clear();
  sinks_.clear();
  for (TaskId t = 0; t < n; ++t) {
    if (pred_off_[t] == pred_off_[t + 1]) sources_.push_back(t);
    if (succ_off_[t] == succ_off_[t + 1]) sinks_.push_back(t);
  }

  bottom_levels_.assign(n, 0.0);
  critical_path_ = 0.0;
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const TaskId t = *it;
    Time best = 0.0;
    for (TaskId s : successors(t)) best = std::max(best, bottom_levels_[s]);
    bottom_levels_[t] = tasks_[t].cost + best;
    critical_path_ = std::max(critical_path_, bottom_levels_[t]);
  }
}

std::span<const TaskId> Dag::predecessors(TaskId t) const {
  require_finalized();
  RTDS_REQUIRE(t < tasks_.size());
  return {pred_data_.data() + pred_off_[t],
          pred_data_.data() + pred_off_[t + 1]};
}

std::span<const TaskId> Dag::successors(TaskId t) const {
  require_finalized();
  RTDS_REQUIRE(t < tasks_.size());
  return {succ_data_.data() + succ_off_[t],
          succ_data_.data() + succ_off_[t + 1]};
}

double Dag::data_volume(TaskId from, TaskId to) const {
  for (const auto& a : arcs_)
    if (a.from == from && a.to == to) return a.data_volume;
  RTDS_REQUIRE_MSG(false, "no arc " << from << " -> " << to);
  return 0.0;
}

const std::vector<TaskId>& Dag::sources() const {
  require_finalized();
  return sources_;
}

const std::vector<TaskId>& Dag::sinks() const {
  require_finalized();
  return sinks_;
}

const std::vector<TaskId>& Dag::topological_order() const {
  require_finalized();
  return topo_;
}

Time Dag::total_work() const {
  Time w = 0.0;
  for (const auto& t : tasks_) w += t.cost;
  return w;
}

bool Dag::reaches(TaskId ancestor, TaskId descendant) const {
  require_finalized();
  RTDS_REQUIRE(ancestor < tasks_.size());
  RTDS_REQUIRE(descendant < tasks_.size());
  if (ancestor == descendant) return false;
  std::vector<bool> seen(tasks_.size(), false);
  std::vector<TaskId> stack{ancestor};
  seen[ancestor] = true;
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    for (TaskId s : successors(t)) {
      if (s == descendant) return true;
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

}  // namespace rtds
