#include "dag/dag.hpp"

#include <algorithm>
#include <queue>

namespace rtds {

TaskId Dag::add_task(Time cost, std::string label) {
  RTDS_REQUIRE_MSG(!finalized_, "cannot mutate a finalized Dag");
  RTDS_REQUIRE_MSG(cost > 0.0, "task cost must be positive, got " << cost);
  tasks_.push_back(Task{cost, std::move(label)});
  return static_cast<TaskId>(tasks_.size() - 1);
}

void Dag::add_arc(TaskId from, TaskId to, double data_volume) {
  RTDS_REQUIRE_MSG(!finalized_, "cannot mutate a finalized Dag");
  RTDS_REQUIRE(from < tasks_.size());
  RTDS_REQUIRE(to < tasks_.size());
  RTDS_REQUIRE_MSG(from != to, "self-loop on task " << from);
  RTDS_REQUIRE(data_volume >= 0.0);
  for (const auto& a : arcs_)
    if (a.from == from && a.to == to) return;  // idempotent
  arcs_.push_back(Arc{from, to, data_volume});
}

void Dag::finalize() {
  RTDS_REQUIRE_MSG(!finalized_, "Dag already finalized");
  const auto n = tasks_.size();
  preds_.assign(n, {});
  succs_.assign(n, {});
  for (const auto& a : arcs_) {
    succs_[a.from].push_back(a.to);
    preds_[a.to].push_back(a.from);
  }
  for (auto& v : preds_) std::sort(v.begin(), v.end());
  for (auto& v : succs_) std::sort(v.begin(), v.end());

  // Kahn's algorithm with a min-heap for a stable (id-ordered) topo order.
  std::vector<std::size_t> indegree(n);
  for (TaskId t = 0; t < n; ++t) indegree[t] = preds_[t].size();
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId t = 0; t < n; ++t)
    if (indegree[t] == 0) ready.push(t);
  topo_.clear();
  topo_.reserve(n);
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    topo_.push_back(t);
    for (TaskId s : succs_[t])
      if (--indegree[s] == 0) ready.push(s);
  }
  RTDS_REQUIRE_MSG(topo_.size() == n, "precedence graph contains a cycle");

  sources_.clear();
  sinks_.clear();
  for (TaskId t = 0; t < n; ++t) {
    if (preds_[t].empty()) sources_.push_back(t);
    if (succs_[t].empty()) sinks_.push_back(t);
  }
  finalized_ = true;
}

const std::vector<TaskId>& Dag::predecessors(TaskId t) const {
  require_finalized();
  return preds_.at(t);
}

const std::vector<TaskId>& Dag::successors(TaskId t) const {
  require_finalized();
  return succs_.at(t);
}

double Dag::data_volume(TaskId from, TaskId to) const {
  for (const auto& a : arcs_)
    if (a.from == from && a.to == to) return a.data_volume;
  RTDS_REQUIRE_MSG(false, "no arc " << from << " -> " << to);
  return 0.0;
}

const std::vector<TaskId>& Dag::sources() const {
  require_finalized();
  return sources_;
}

const std::vector<TaskId>& Dag::sinks() const {
  require_finalized();
  return sinks_;
}

const std::vector<TaskId>& Dag::topological_order() const {
  require_finalized();
  return topo_;
}

Time Dag::total_work() const {
  Time w = 0.0;
  for (const auto& t : tasks_) w += t.cost;
  return w;
}

bool Dag::reaches(TaskId ancestor, TaskId descendant) const {
  require_finalized();
  RTDS_REQUIRE(ancestor < tasks_.size());
  RTDS_REQUIRE(descendant < tasks_.size());
  if (ancestor == descendant) return false;
  std::vector<bool> seen(tasks_.size(), false);
  std::vector<TaskId> stack{ancestor};
  seen[ancestor] = true;
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    for (TaskId s : succs_[t]) {
      if (s == descendant) return true;
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

}  // namespace rtds
