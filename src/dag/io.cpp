#include "dag/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace rtds {

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  RTDS_REQUIRE_MSG(false, "dag parse error at line " << line << ": " << what);
  std::abort();  // unreachable
}

}  // namespace

void write_dag(const Dag& dag, std::ostream& os) {
  RTDS_REQUIRE(dag.finalized());
  os << "dag v1\n";
  os << "tasks " << dag.task_count() << "\n";
  os.precision(17);
  for (TaskId t = 0; t < dag.task_count(); ++t) {
    os << "task " << t << ' ' << dag.cost(t);
    if (!dag.task(t).label.empty()) os << ' ' << dag.task(t).label;
    os << "\n";
  }
  os << "arcs " << dag.arc_count() << "\n";
  for (const auto& a : dag.arcs())
    os << "arc " << a.from << ' ' << a.to << ' ' << a.data_volume << "\n";
  os << "end\n";
}

std::string dag_to_string(const Dag& dag) {
  std::ostringstream os;
  write_dag(dag, os);
  return os.str();
}

Dag read_dag(std::istream& is) {
  Dag dag;
  std::string line;
  std::size_t lineno = 0;
  auto next_line = [&]() -> std::istringstream {
    while (std::getline(is, line)) {
      ++lineno;
      if (!line.empty() && line[0] != '#') return std::istringstream(line);
    }
    parse_fail(lineno, "unexpected end of input");
  };

  {
    auto ls = next_line();
    std::string word, version;
    ls >> word >> version;
    if (word != "dag" || version != "v1")
      parse_fail(lineno, "expected header 'dag v1'");
  }
  std::size_t task_count = 0;
  {
    auto ls = next_line();
    std::string word;
    ls >> word >> task_count;
    if (word != "tasks" || ls.fail()) parse_fail(lineno, "expected 'tasks <n>'");
  }
  for (std::size_t i = 0; i < task_count; ++i) {
    auto ls = next_line();
    std::string word, label;
    std::size_t id = 0;
    double cost = 0.0;
    ls >> word >> id >> cost;
    if (word != "task" || ls.fail()) parse_fail(lineno, "expected 'task <id> <cost>'");
    ls >> label;  // optional
    if (id != i) parse_fail(lineno, "task ids must be dense and in order");
    if (cost <= 0.0) parse_fail(lineno, "task cost must be positive");
    dag.add_task(cost, label);
  }
  std::size_t arc_count = 0;
  {
    auto ls = next_line();
    std::string word;
    ls >> word >> arc_count;
    if (word != "arcs" || ls.fail()) parse_fail(lineno, "expected 'arcs <m>'");
  }
  for (std::size_t i = 0; i < arc_count; ++i) {
    auto ls = next_line();
    std::string word;
    std::size_t from = 0, to = 0;
    double volume = 0.0;
    ls >> word >> from >> to >> volume;
    if (word != "arc" || ls.fail())
      parse_fail(lineno, "expected 'arc <from> <to> <volume>'");
    if (from >= task_count || to >= task_count)
      parse_fail(lineno, "arc endpoint out of range");
    dag.add_arc(static_cast<TaskId>(from), static_cast<TaskId>(to), volume);
  }
  {
    auto ls = next_line();
    std::string word;
    ls >> word;
    if (word != "end") parse_fail(lineno, "expected 'end'");
  }
  dag.finalize();  // throws on cycles
  return dag;
}

Dag dag_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_dag(is);
}

}  // namespace rtds
