// Critical-path and structural analysis of task DAGs.
//
// The Mapper (§12) prioritizes tasks by bottom level (longest node-weighted
// path to a sink, task included); the adjustment step (§12.2) needs η, the
// maximum number of tasks on any critical path of the full-speed schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "dag/dag.hpp"

namespace rtds {

/// Longest path from each task to any sink, counting node costs only and
/// including the task itself — the paper's list-scheduling priority.
std::vector<Time> bottom_levels(const Dag& dag);

/// Longest path from any source to each task, counting node costs only and
/// excluding the task itself.
std::vector<Time> top_levels(const Dag& dag);

/// Length of the (node-weighted) critical path: max over tasks of
/// top_level + cost.
Time critical_path_length(const Dag& dag);

/// Maximum number of tasks on any path realizing the critical-path length
/// (the paper's η, used to scale laxity in §12.2 case iii).
std::size_t critical_path_task_count(const Dag& dag);

/// One task sequence realizing the critical path, in precedence order.
std::vector<TaskId> critical_path_tasks(const Dag& dag);

/// Number of precedence levels (longest path in hop count + 1); 0 if empty.
std::size_t depth(const Dag& dag);

/// Maximum number of tasks in any single precedence level (by longest-path
/// layering) — a coarse parallelism measure.
std::size_t width(const Dag& dag);

struct DagSummary {
  std::size_t tasks = 0;
  std::size_t arcs = 0;
  std::size_t depth = 0;
  std::size_t width = 0;
  Time total_work = 0.0;
  Time critical_path = 0.0;
  double parallelism = 0.0;  ///< total_work / critical_path.
};

DagSummary summarize(const Dag& dag);

}  // namespace rtds
