// Job model: a deadline-constrained DAG of tasks (the paper's G = (T, E)).
//
// Each task t_i carries a Computational Complexity c(t_i) (its execution
// time on an idle, unit-speed site). Arcs may optionally carry a data
// volume, used by the §13 "Communication Delays" extension where transfer
// time = volume / link throughput.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/time.hpp"

namespace rtds {

/// Index of a task within its DAG (dense, 0-based).
using TaskId = std::uint32_t;

/// Globally unique job identifier assigned by the workload source.
using JobId = std::uint64_t;

struct Task {
  Time cost = 0.0;        ///< Computational Complexity c(t), > 0.
  std::string label;      ///< Optional human-readable name (DOT export).
};

struct Arc {
  TaskId from = 0;
  TaskId to = 0;
  double data_volume = 0.0;  ///< Optional §13 decoration; 0 = pure precedence.
};

/// Directed acyclic graph of tasks with a common release and deadline.
///
/// Mutation is add-only (add_task / add_arc); `finalize()` freezes the graph,
/// verifies acyclicity and caches topological order and adjacency. All query
/// methods require a finalized DAG.
class Dag {
 public:
  Dag() = default;

  /// Adds a task and returns its id. Cost must be positive.
  TaskId add_task(Time cost, std::string label = {});

  /// Adds a precedence arc from -> to. Both ids must exist; self-loops are
  /// rejected. Duplicate arcs are idempotent.
  void add_arc(TaskId from, TaskId to, double data_volume = 0.0);

  /// Freezes the DAG: verifies acyclicity (throws ContractViolation on a
  /// cycle), builds predecessor/successor lists and a topological order.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t arc_count() const { return arcs_.size(); }
  bool empty() const { return tasks_.empty(); }

  const Task& task(TaskId t) const { return tasks_.at(t); }
  Time cost(TaskId t) const { return tasks_.at(t).cost; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Immediate predecessors Γ⁻(t) / successors Γ⁺(t). Spans into the CSR
  /// adjacency, valid while the Dag lives and is not re-finalized.
  std::span<const TaskId> predecessors(TaskId t) const;
  std::span<const TaskId> successors(TaskId t) const;

  /// Data volume on arc (from, to); requires the arc to exist.
  double data_volume(TaskId from, TaskId to) const;

  /// Tasks with no predecessors / successors.
  const std::vector<TaskId>& sources() const;
  const std::vector<TaskId>& sinks() const;

  /// A topological order (stable: ties broken by task id).
  const std::vector<TaskId>& topological_order() const;

  /// Bottom levels b(t) = c(t) + max over successors' b, cached at
  /// finalize(): the admission tests, the mapper, and the enrollment gate
  /// all re-derived this once per job per site.
  const std::vector<Time>& bottom_levels() const {
    require_finalized();
    return bottom_levels_;
  }
  /// max_t b(t) — the critical path length.
  Time critical_path() const {
    require_finalized();
    return critical_path_;
  }

  /// Sum of all task costs (total work W).
  Time total_work() const;

  /// True if `ancestor` reaches `descendant` through one or more arcs.
  bool reaches(TaskId ancestor, TaskId descendant) const;

 private:
  void require_finalized() const {
    RTDS_REQUIRE_MSG(finalized_, "Dag must be finalize()d before queries");
  }

  std::vector<Task> tasks_;
  std::vector<Arc> arcs_;
  // CSR adjacency (offsets + packed ids): two allocations total instead of
  // one vector per task — DAG construction and copies sit on the hot path
  // of every trial.
  std::vector<std::uint32_t> pred_off_, succ_off_;
  std::vector<TaskId> pred_data_, succ_data_;
  std::vector<TaskId> topo_;
  std::vector<TaskId> sources_;
  std::vector<TaskId> sinks_;
  std::vector<Time> bottom_levels_;
  Time critical_path_ = 0.0;
  bool finalized_ = false;
};

/// A job: a DAG instance plus its real-time parameters. Release r and
/// deadline d bound the whole graph (the paper's sporadic job model, §2).
struct Job {
  JobId id = 0;
  Dag dag;
  Time release = 0.0;   ///< r: arrival time at the receiving site.
  Time deadline = 0.0;  ///< d: absolute deadline for the whole DAG.

  Time window() const { return deadline - release; }
};

}  // namespace rtds
