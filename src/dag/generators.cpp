#include "dag/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rtds {

Dag paper_example() {
  Dag dag;
  const TaskId t1 = dag.add_task(6.0, "t1");
  const TaskId t2 = dag.add_task(4.0, "t2");
  const TaskId t3 = dag.add_task(4.0, "t3");
  const TaskId t4 = dag.add_task(2.0, "t4");
  const TaskId t5 = dag.add_task(5.0, "t5");
  dag.add_arc(t1, t3);
  dag.add_arc(t2, t3);
  dag.add_arc(t1, t4);
  dag.add_arc(t2, t4);
  dag.add_arc(t3, t5);
  dag.add_arc(t4, t5);
  dag.finalize();
  return dag;
}

Dag make_chain(std::size_t n, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(n >= 1);
  Dag dag;
  TaskId prev = dag.add_task(costs.sample(rng));
  for (std::size_t i = 1; i < n; ++i) {
    const TaskId cur = dag.add_task(costs.sample(rng));
    dag.add_arc(prev, cur);
    prev = cur;
  }
  dag.finalize();
  return dag;
}

Dag make_fork_join(std::size_t parallel_tasks, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(parallel_tasks >= 1);
  Dag dag;
  const TaskId src = dag.add_task(costs.sample(rng), "fork");
  std::vector<TaskId> mid(parallel_tasks);
  for (auto& t : mid) t = dag.add_task(costs.sample(rng));
  const TaskId sink = dag.add_task(costs.sample(rng), "join");
  for (TaskId t : mid) {
    dag.add_arc(src, t);
    dag.add_arc(t, sink);
  }
  dag.finalize();
  return dag;
}

Dag make_diamond(std::size_t width, std::size_t depth, CostRange costs,
                 Rng& rng) {
  RTDS_REQUIRE(width >= 1 && depth >= 1);
  Dag dag;
  std::vector<std::vector<TaskId>> grid(depth, std::vector<TaskId>(width));
  for (auto& row : grid)
    for (auto& t : row) t = dag.add_task(costs.sample(rng));
  for (std::size_t r = 1; r < depth; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      dag.add_arc(grid[r - 1][c], grid[r][c]);
      if (c + 1 < width) dag.add_arc(grid[r - 1][c], grid[r][c + 1]);
    }
  }
  dag.finalize();
  return dag;
}

Dag make_layered(std::size_t layer_count, std::size_t layer_width,
                 double edge_prob, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(layer_count >= 1 && layer_width >= 1);
  RTDS_REQUIRE(edge_prob >= 0.0 && edge_prob <= 1.0);
  Dag dag;
  std::vector<std::vector<TaskId>> layers(layer_count);
  for (auto& layer : layers) {
    layer.resize(layer_width);
    for (auto& t : layer) t = dag.add_task(costs.sample(rng));
  }
  for (std::size_t l = 1; l < layer_count; ++l) {
    for (TaskId t : layers[l]) {
      bool has_pred = false;
      for (TaskId p : layers[l - 1]) {
        if (rng.bernoulli(edge_prob)) {
          dag.add_arc(p, t);
          has_pred = true;
        }
      }
      if (!has_pred) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(layer_width) - 1));
        dag.add_arc(layers[l - 1][pick], t);
      }
    }
  }
  dag.finalize();
  return dag;
}

Dag make_random_dag(std::size_t n, double p, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(n >= 1);
  RTDS_REQUIRE(p >= 0.0 && p <= 1.0);
  Dag dag;
  std::vector<TaskId> ids(n);
  for (auto& t : ids) t = dag.add_task(costs.sample(rng));
  // Random topological order; arcs only forward along it.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(p)) dag.add_arc(ids[order[i]], ids[order[j]]);
  dag.finalize();
  return dag;
}

Dag make_in_tree(std::size_t levels, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(levels >= 1);
  Dag dag;
  // Build per level, leaves first; level l has 2^(levels-1-l) nodes.
  std::vector<TaskId> prev;
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t n = std::size_t{1} << (levels - 1 - l);
    std::vector<TaskId> cur(n);
    for (auto& t : cur) t = dag.add_task(costs.sample(rng));
    for (std::size_t i = 0; i < prev.size(); ++i)
      dag.add_arc(prev[i], cur[i / 2]);
    prev = std::move(cur);
  }
  dag.finalize();
  return dag;
}

Dag make_out_tree(std::size_t levels, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(levels >= 1);
  Dag dag;
  std::vector<TaskId> prev;
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t n = std::size_t{1} << l;
    std::vector<TaskId> cur(n);
    for (auto& t : cur) t = dag.add_task(costs.sample(rng));
    for (std::size_t i = 0; i < cur.size(); ++i)
      if (!prev.empty()) dag.add_arc(prev[i / 2], cur[i]);
    prev = std::move(cur);
  }
  dag.finalize();
  return dag;
}

Dag make_lu(std::size_t n, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(n >= 1);
  Dag dag;
  // Task (k, j) with k <= j < n: pivot tasks are (k, k); update task (k, j)
  // depends on pivot (k, k) and on the same-column task of the previous step.
  std::vector<std::vector<TaskId>> id(n);
  for (std::size_t k = 0; k < n; ++k) {
    id[k].resize(n);
    for (std::size_t j = k; j < n; ++j)
      id[k][j] = dag.add_task(costs.sample(rng));
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = k + 1; j < n; ++j) {
      dag.add_arc(id[k][k], id[k][j]);           // pivot feeds updates
      if (k + 1 < n && j >= k + 1) dag.add_arc(id[k][j], id[k + 1][j]);
    }
    if (k + 1 < n) dag.add_arc(id[k][k + 1], id[k + 1][k + 1]);
  }
  dag.finalize();
  return dag;
}

Dag make_fft(std::size_t log2n, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(log2n >= 1);
  const std::size_t n = std::size_t{1} << log2n;
  Dag dag;
  std::vector<TaskId> prev(n);
  for (auto& t : prev) t = dag.add_task(costs.sample(rng));
  for (std::size_t stage = 0; stage < log2n; ++stage) {
    std::vector<TaskId> cur(n);
    for (auto& t : cur) t = dag.add_task(costs.sample(rng));
    const std::size_t stride = std::size_t{1} << stage;
    for (std::size_t i = 0; i < n; ++i) {
      dag.add_arc(prev[i], cur[i]);
      dag.add_arc(prev[i ^ stride], cur[i]);  // butterfly partner
    }
    prev = std::move(cur);
  }
  dag.finalize();
  return dag;
}

Dag make_stencil(std::size_t w, std::size_t h, CostRange costs, Rng& rng) {
  RTDS_REQUIRE(w >= 1 && h >= 1);
  Dag dag;
  std::vector<std::vector<TaskId>> grid(h, std::vector<TaskId>(w));
  for (auto& row : grid)
    for (auto& t : row) t = dag.add_task(costs.sample(rng));
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      if (r > 0) dag.add_arc(grid[r - 1][c], grid[r][c]);
      if (c > 0) dag.add_arc(grid[r][c - 1], grid[r][c]);
    }
  }
  dag.finalize();
  return dag;
}

const char* to_string(DagShape shape) {
  switch (shape) {
    case DagShape::kChain: return "chain";
    case DagShape::kForkJoin: return "fork_join";
    case DagShape::kDiamond: return "diamond";
    case DagShape::kLayered: return "layered";
    case DagShape::kRandom: return "random";
    case DagShape::kInTree: return "in_tree";
    case DagShape::kOutTree: return "out_tree";
    case DagShape::kLu: return "lu";
    case DagShape::kFft: return "fft";
    case DagShape::kStencil: return "stencil";
  }
  return "?";
}

Dag make_shape(DagShape shape, std::size_t approx_tasks, CostRange costs,
               Rng& rng) {
  RTDS_REQUIRE(approx_tasks >= 1);
  const auto n = approx_tasks;
  switch (shape) {
    case DagShape::kChain:
      return make_chain(n, costs, rng);
    case DagShape::kForkJoin:
      return make_fork_join(n > 2 ? n - 2 : 1, costs, rng);
    case DagShape::kDiamond: {
      const auto side = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(std::sqrt(double(n)))));
      return make_diamond(side, side, costs, rng);
    }
    case DagShape::kLayered: {
      const auto width = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(std::sqrt(double(n)))));
      const auto layer_count = std::max<std::size_t>(1, n / width);
      return make_layered(layer_count, width, 0.4, costs, rng);
    }
    case DagShape::kRandom:
      return make_random_dag(n, std::min(1.0, 4.0 / double(n ? n : 1)), costs,
                             rng);
    case DagShape::kInTree: {
      std::size_t levels = 1;
      while (((std::size_t{1} << levels) - 1) < n) ++levels;
      return make_in_tree(levels, costs, rng);
    }
    case DagShape::kOutTree: {
      std::size_t levels = 1;
      while (((std::size_t{1} << levels) - 1) < n) ++levels;
      return make_out_tree(levels, costs, rng);
    }
    case DagShape::kLu: {
      std::size_t side = 1;
      while (side * (side + 1) / 2 < n) ++side;
      return make_lu(side, costs, rng);
    }
    case DagShape::kFft: {
      std::size_t log2n = 1;
      while ((std::size_t{1} << log2n) * (log2n + 1) < n) ++log2n;
      return make_fft(log2n, costs, rng);
    }
    case DagShape::kStencil: {
      const auto side = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(std::sqrt(double(n)))));
      return make_stencil(side, side, costs, rng);
    }
  }
  RTDS_CHECK(false);
  return Dag{};
}

}  // namespace rtds
