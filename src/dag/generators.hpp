// Task-graph generators.
//
// `paper_example()` is the exact 5-task instance of §12/Fig. 2, recovered
// from Table 1 (see DESIGN.md §4). The rest are standard synthetic families
// used by the evaluation benches (E1–E5): random layered DAGs, fork-joins,
// trees, plus structured application graphs (LU elimination wavefronts, FFT
// butterflies, stencils) of the kind the paper's motivation cites.
#pragma once

#include <cstdint>

#include "dag/dag.hpp"
#include "util/rng.hpp"

namespace rtds {

/// Cost model for random generators: uniform in [min_cost, max_cost].
struct CostRange {
  Time min_cost = 1.0;
  Time max_cost = 10.0;

  Time sample(Rng& rng) const { return rng.uniform(min_cost, max_cost); }
};

/// The exact task graph of Fig. 2: tasks 1..5 with costs {6,4,4,2,5} and
/// arcs 1→3, 2→3, 1→4, 2→4, 3→5, 4→5 (0-based ids 0..4 here).
Dag paper_example();

/// n tasks in a single precedence chain.
Dag make_chain(std::size_t n, CostRange costs, Rng& rng);

/// Fork-join: source → n parallel tasks → sink (n + 2 tasks).
Dag make_fork_join(std::size_t parallel_tasks, CostRange costs, Rng& rng);

/// Diamond lattice of the given width and depth (grid with down-right arcs).
Dag make_diamond(std::size_t width, std::size_t depth, CostRange costs,
                 Rng& rng);

/// Random layered DAG: `layer_count` layers of `layer_width` tasks each;
/// every task gets at least one predecessor in the previous layer and extra
/// arcs with probability `edge_prob` (classic STG-style generator).
Dag make_layered(std::size_t layer_count, std::size_t layer_width,
                 double edge_prob, CostRange costs, Rng& rng);

/// Erdős–Rényi DAG: arc i→j (i < j in a random permutation) with
/// probability p. Isolated ordering keeps it acyclic by construction.
Dag make_random_dag(std::size_t n, double p, CostRange costs, Rng& rng);

/// Complete binary in-tree (reduction): leaves feed towards a single sink.
Dag make_in_tree(std::size_t levels, CostRange costs, Rng& rng);

/// Complete binary out-tree (broadcast): a single source fans out.
Dag make_out_tree(std::size_t levels, CostRange costs, Rng& rng);

/// Gaussian-elimination style wavefront DAG for an n×n system: task (k)
/// pivots feed column updates, the classic LU task graph (n(n+1)/2 tasks).
Dag make_lu(std::size_t n, CostRange costs, Rng& rng);

/// FFT butterfly of 2^log2n points: (log2n + 1) ranks of 2^log2n tasks.
Dag make_fft(std::size_t log2n, CostRange costs, Rng& rng);

/// 2-D stencil wavefront over a w×h grid: each cell depends on its left and
/// upper neighbours.
Dag make_stencil(std::size_t w, std::size_t h, CostRange costs, Rng& rng);

/// Catalogue of DAG shapes for mixed workloads.
enum class DagShape {
  kChain,
  kForkJoin,
  kDiamond,
  kLayered,
  kRandom,
  kInTree,
  kOutTree,
  kLu,
  kFft,
  kStencil,
};

const char* to_string(DagShape shape);

/// Draws a DAG of the given shape with roughly `approx_tasks` tasks.
Dag make_shape(DagShape shape, std::size_t approx_tasks, CostRange costs,
               Rng& rng);

}  // namespace rtds
