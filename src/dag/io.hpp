// Plain-text serialization of task graphs.
//
// Line-oriented format, stable across versions of this library:
//   dag v1
//   tasks <n>
//   task <id> <cost> [label]
//   arcs <m>
//   arc <from> <to> <data_volume>
//   end
// Parsing is strict: any malformed line throws ContractViolation with the
// offending line number, so corrupted experiment artifacts fail loudly.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/dag.hpp"

namespace rtds {

void write_dag(const Dag& dag, std::ostream& os);
std::string dag_to_string(const Dag& dag);

/// Reads a DAG in the format above; the result is finalized.
Dag read_dag(std::istream& is);
Dag dag_from_string(const std::string& text);

}  // namespace rtds
