// Append-only sweep journal: crash recovery for long experiment sweeps
// (DESIGN.md §14).
//
// A full Snapshot freezes one live RtdsSystem; a sweep is thousands of
// independent trials, so its natural checkpoint grain is *one completed
// trial*. The journal appends a self-contained, checksummed "trial"
// section (trial index, metric values, and — when the run observes — the
// trial's obs::MetricsBuffer) the moment each trial finishes, flushed
// before the runner moves on. A SIGKILL therefore loses at most the
// trials in flight; resume() reads the valid prefix, tolerates exactly
// one truncated tail section (the kill artifact), compacts the file and
// re-runs only what is missing. Aggregates built from a resumed sweep are
// bit-identical to an uninterrupted one because the journal stores the
// exact trial values the reduction would have consumed.
//
// The header's config hash pins the sweep identity (scenario name, grid,
// replicates, seed policy, observe mode): resuming a journal written by a
// different sweep fails loudly instead of splicing foreign trials.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace rtds::snap {

/// One recorded trial, as read() returns it.
struct JournalEntry {
  std::uint64_t trial = 0;
  std::vector<double> values;  ///< TrialResult, ScenarioSpec::metrics order
  bool has_metrics = false;
  obs::MetricsBuffer metrics;  ///< the trial's obs capture (observe runs)
};

class SweepJournal {
 public:
  /// Creates (truncating) `path` with a fresh journal header.
  static std::unique_ptr<SweepJournal> create(const std::string& path,
                                              std::uint64_t sweep_hash);

  /// Resumes an interrupted sweep: reads the valid section prefix of
  /// `path` (a truncated tail section — the SIGKILL artifact — is
  /// discarded; a damaged *complete* section is a hard error), requires
  /// the header hash to equal `sweep_hash`, fills `entries`, compacts the
  /// file to the valid prefix and reopens it for append. Throws
  /// ContractViolation when the file is missing, unreadable or belongs to
  /// a different sweep.
  static std::unique_ptr<SweepJournal> resume(
      const std::string& path, std::uint64_t sweep_hash,
      std::vector<JournalEntry>& entries);

  /// Appends one completed trial and flushes. Thread-safe: workers call
  /// this concurrently as trials finish (section order in the file is
  /// completion order — irrelevant, entries carry their trial index).
  void append(std::uint64_t trial, const std::vector<double>& values,
              const obs::MetricsBuffer* metrics);

 private:
  SweepJournal() = default;

  std::string path_;
  std::uint64_t sweep_hash_ = 0;
  std::ofstream out_;
  std::mutex mutex_;
};

}  // namespace rtds::snap
