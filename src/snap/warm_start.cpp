#include "snap/warm_start.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "routing/pcs.hpp"
#include "routing/routing_table.hpp"
#include "snap/access.hpp"
#include "snap/io.hpp"

namespace rtds::snap {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_hits{0};
std::atomic<std::size_t> g_misses{0};

std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

/// (topology content hash, radius h) -> serialized tables + spheres.
std::map<std::pair<std::uint64_t, std::size_t>, std::string>& cache() {
  static std::map<std::pair<std::uint64_t, std::size_t>, std::string> c;
  return c;
}

}  // namespace

void set_warm_start_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool warm_start_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

bool warm_start_acquire(const Topology& topo, std::size_t h,
                        std::vector<RoutingTable>& tables,
                        std::vector<Pcs>& spheres) {
  const auto key = std::make_pair(Access::topology_hash(topo), h);
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(cache_mutex());
    const auto it = cache().find(key);
    if (it == cache().end()) {
      g_misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    bytes = it->second;  // copy out; decode outside the lock
  }
  g_hits.fetch_add(1, std::memory_order_relaxed);

  Reader r(std::move(bytes), "warm-start cache entry");
  r.require_config_hash(key.first);
  r.expect_section("bring_up");
  const std::uint64_t n = r.u64();
  tables.clear();
  tables.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    RoutingTable t;
    Access::load(r, t);
    tables.push_back(std::move(t));
  }
  spheres.clear();
  spheres.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Pcs p;
    Access::load(r, p);
    spheres.push_back(std::move(p));
  }
  r.end_section();
  return true;
}

void warm_start_store(const Topology& topo, std::size_t h,
                      const std::vector<RoutingTable>& tables,
                      const std::vector<Pcs>& spheres) {
  const auto key = std::make_pair(Access::topology_hash(topo), h);
  Writer w(kFormatVersion, key.first);
  w.begin_section("bring_up");
  w.u64(tables.size());
  for (const RoutingTable& t : tables) Access::save(w, t);
  for (const Pcs& p : spheres) Access::save(w, p);
  w.end_section();
  std::string bytes = w.finish();

  std::lock_guard<std::mutex> lock(cache_mutex());
  cache().emplace(key, std::move(bytes));  // first builder wins on a race
}

void warm_start_clear() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  cache().clear();
}

std::size_t warm_start_hits() {
  return g_hits.load(std::memory_order_relaxed);
}
std::size_t warm_start_misses() {
  return g_misses.load(std::memory_order_relaxed);
}

}  // namespace rtds::snap
