#include "snap/journal.hpp"

#include <utility>

#include "snap/access.hpp"
#include "snap/io.hpp"

namespace rtds::snap {

namespace {

// The fixed container header a Writer emits before its first section:
// magic (8) + u32 version (4) + u64 config hash (8). encode_section builds
// one section by round-tripping a throwaway Writer and stripping this
// header plus the 1-byte end-of-file marker, so the journal's section
// bytes come from the exact same encoder as the snapshots'.
constexpr std::size_t kHeaderSize = 8 + 4 + 8;

std::string header_bytes(std::uint64_t sweep_hash) {
  Writer w(kFormatVersion, sweep_hash);
  std::string all = w.finish();
  RTDS_CHECK_MSG(all.size() == kHeaderSize + 1,
                 "snapshot container header changed size — update "
                 "snap/journal.cpp");
  all.resize(kHeaderSize);  // drop the end-of-file marker
  return all;
}

std::string encode_section(std::uint64_t sweep_hash, std::uint64_t trial,
                           const std::vector<double>& values,
                           const obs::MetricsBuffer* metrics) {
  Writer w(kFormatVersion, sweep_hash);
  w.begin_section("trial");
  w.u64(trial);
  w.u64(values.size());
  for (const double v : values) w.f64(v);
  w.b(metrics != nullptr);
  if (metrics != nullptr) Access::save(w, *metrics);
  w.end_section();
  const std::string& all = w.finish();
  return all.substr(kHeaderSize, all.size() - kHeaderSize - 1);
}

}  // namespace

std::unique_ptr<SweepJournal> SweepJournal::create(const std::string& path,
                                                  std::uint64_t sweep_hash) {
  auto j = std::unique_ptr<SweepJournal>(new SweepJournal());
  j->path_ = path;
  j->sweep_hash_ = sweep_hash;
  j->out_.open(path, std::ios::binary | std::ios::trunc);
  RTDS_REQUIRE_MSG(j->out_.good(),
                   "cannot open sweep journal for writing: " << path);
  const std::string header = header_bytes(sweep_hash);
  j->out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  j->out_.flush();
  RTDS_REQUIRE_MSG(j->out_.good(), "sweep journal write failed: " << path);
  return j;
}

std::unique_ptr<SweepJournal> SweepJournal::resume(
    const std::string& path, std::uint64_t sweep_hash,
    std::vector<JournalEntry>& entries) {
  Reader r = Reader::from_file(path, "sweep journal");
  r.require_config_hash(sweep_hash);
  entries.clear();
  std::string name;
  for (;;) {
    const SectionStatus status = r.try_next_section(name);
    // A truncated tail is the normal SIGKILL artifact: the trials it held
    // were mid-append and simply re-run.
    if (status != SectionStatus::kOk) break;
    if (name != "trial") r.fail("unexpected journal section \"" + name + "\"");
    JournalEntry e;
    e.trial = r.u64();
    const std::uint64_t count = r.u64();
    e.values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) e.values.push_back(r.f64());
    e.has_metrics = r.b();
    if (e.has_metrics) Access::load(r, e.metrics);
    r.end_section();
    entries.push_back(std::move(e));
  }
  // Compact: rewrite the valid prefix (dropping any truncated tail) so the
  // append cursor starts on a section boundary.
  auto j = create(path, sweep_hash);
  for (const JournalEntry& e : entries)
    j->append(e.trial, e.values, e.has_metrics ? &e.metrics : nullptr);
  return j;
}

void SweepJournal::append(std::uint64_t trial,
                          const std::vector<double>& values,
                          const obs::MetricsBuffer* metrics) {
  const std::string section = encode_section(sweep_hash_, trial, values, metrics);
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.write(section.data(), static_cast<std::streamsize>(section.size()));
  out_.flush();
  RTDS_REQUIRE_MSG(out_.good(), "sweep journal write failed: " << path_);
}

}  // namespace rtds::snap
