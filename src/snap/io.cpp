#include "snap/io.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace rtds::snap {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Fixed-width values travel little-endian; on a little-endian host the
/// in-memory representation IS the wire representation, so bulk writes and
/// reads collapse to memcpy.
constexpr bool kHostIsLittle = std::endian::native == std::endian::little;

void append_le(std::string& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t read_le(const char* p, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}
}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t section_checksum(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    if constexpr (kHostIsLittle) {
      std::memcpy(&word, p + i, 8);
    } else {
      word = read_le(reinterpret_cast<const char*>(p) + i, 8);
    }
    h = (h ^ word) * kFnvPrime;
  }
  for (; i < size; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

void HashAbsorber::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  h_ = fnv1a(buf, 8, h_);
}

void HashAbsorber::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void HashAbsorber::str(std::string_view s) {
  u64(s.size());
  h_ = fnv1a(s.data(), s.size(), h_);
}

Writer::Writer(std::uint32_t version, std::uint64_t config_hash) {
  out_.append(kMagic, sizeof(kMagic));
  append_le(out_, version, 4);
  append_le(out_, config_hash, 8);
}

void Writer::begin_section(std::string_view name) {
  RTDS_REQUIRE_MSG(section_name_.empty(), "unclosed section '"
                                              << section_name_ << "'");
  RTDS_REQUIRE_MSG(!name.empty() && name.size() < 256,
                   "section name must be 1..255 bytes");
  RTDS_REQUIRE(!finished_);
  section_name_ = name;
  out_.push_back(static_cast<char>(name.size()));
  out_.append(name);
  // Placeholders for body length + checksum, patched by end_section.
  append_le(out_, 0, 8);
  append_le(out_, 0, 8);
  body_start_ = out_.size();
}

void Writer::end_section() {
  RTDS_REQUIRE_MSG(!section_name_.empty(), "end_section without a section");
  const std::size_t body_len = out_.size() - body_start_;
  const std::uint64_t sum = section_checksum(out_.data() + body_start_, body_len);
  std::string patch;
  append_le(patch, body_len, 8);
  append_le(patch, sum, 8);
  out_.replace(body_start_ - 16, 16, patch);
  section_name_.clear();
}

void Writer::u8(std::uint8_t v) { append_le(out_, v, 1); }
void Writer::u32(std::uint32_t v) { append_le(out_, v, 4); }
void Writer::u64(std::uint64_t v) { append_le(out_, v, 8); }
void Writer::i64(std::int64_t v) {
  append_le(out_, static_cast<std::uint64_t>(v), 8);
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  append_le(out_, bits, 8);
}

void Writer::str(std::string_view s) {
  u64(s.size());
  out_.append(s);
}

void Writer::bytes(const void* data, std::size_t size) {
  out_.append(static_cast<const char*>(data), size);
}

void Writer::u32_array(const std::uint32_t* v, std::size_t n) {
  if (n == 0) return;  // v may be null for an empty vector
  if constexpr (kHostIsLittle) {
    out_.append(reinterpret_cast<const char*>(v), n * 4);
  } else {
    for (std::size_t i = 0; i < n; ++i) u32(v[i]);
  }
}

void Writer::u64_array(const std::uint64_t* v, std::size_t n) {
  if (n == 0) return;  // v may be null for an empty vector
  if constexpr (kHostIsLittle) {
    out_.append(reinterpret_cast<const char*>(v), n * 8);
  } else {
    for (std::size_t i = 0; i < n; ++i) u64(v[i]);
  }
}

void Writer::f64_array(const double* v, std::size_t n) {
  if (n == 0) return;  // v may be null for an empty vector
  if constexpr (kHostIsLittle) {
    out_.append(reinterpret_cast<const char*>(v), n * 8);
  } else {
    for (std::size_t i = 0; i < n; ++i) f64(v[i]);
  }
}

const std::string& Writer::finish() {
  RTDS_REQUIRE_MSG(section_name_.empty(), "unclosed section '"
                                              << section_name_ << "'");
  if (!finished_) {
    out_.push_back('\0');  // end-of-file marker (name length 0)
    finished_ = true;
  }
  return out_;
}

void Writer::write_file(const std::string& path) {
  const std::string& data = finish();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    RTDS_REQUIRE_MSG(os.good(), "cannot open '" << tmp << "' for writing");
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    RTDS_REQUIRE_MSG(os.good(), "short write to '" << tmp << "'");
  }
  RTDS_REQUIRE_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                   "cannot publish snapshot to '" << path << "'");
}

Reader::Reader(std::string data, std::string_view what)
    : data_(std::move(data)), what_(what) {
  if (data_.size() < sizeof(kMagic) + 4 + 8)
    RTDS_REQUIRE_MSG(false, what_ << " header truncated: " << data_.size()
                                  << " bytes, need "
                                  << sizeof(kMagic) + 4 + 8);
  if (std::memcmp(data_.data(), kMagic, sizeof(kMagic)) != 0)
    RTDS_REQUIRE_MSG(false, what_ << " has wrong magic (offset 0): not a "
                                     "snapshot container");
  pos_ = sizeof(kMagic);
  version_ = static_cast<std::uint32_t>(read_le(data_.data() + pos_, 4));
  pos_ += 4;
  config_hash_ = read_le(data_.data() + pos_, 8);
  pos_ += 8;
  if (version_ != kFormatVersion)
    RTDS_REQUIRE_MSG(false, what_ << " format version " << version_
                                  << " (offset 8) not supported; this build "
                                     "reads version "
                                  << kFormatVersion);
  section_end_ = pos_;
}

Reader Reader::from_file(const std::string& path, std::string_view what) {
  std::ifstream is(path, std::ios::binary);
  RTDS_REQUIRE_MSG(is.good(), "cannot open " << what << " file '" << path
                                             << "'");
  std::ostringstream ss;
  ss << is.rdbuf();
  return Reader(std::move(ss).str(), what);
}

void Reader::require_config_hash(std::uint64_t expected) const {
  if (config_hash_ != expected)
    RTDS_REQUIRE_MSG(false,
                     what_ << " config hash mismatch (offset 12): file has "
                           << config_hash_ << ", this configuration hashes to "
                           << expected
                           << " — the snapshot was taken under a different "
                              "topology/config");
}

SectionStatus Reader::open_section(std::string& name, bool verify_checksum) {
  section_.clear();
  if (pos_ >= data_.size()) return SectionStatus::kEnd;  // journal clean EOF
  const auto name_len =
      static_cast<std::size_t>(static_cast<unsigned char>(data_[pos_]));
  if (name_len == 0) return SectionStatus::kEnd;
  if (pos_ + 1 + name_len + 16 > data_.size()) return SectionStatus::kTruncated;
  name.assign(data_.data() + pos_ + 1, name_len);
  const std::size_t body_len =
      static_cast<std::size_t>(read_le(data_.data() + pos_ + 1 + name_len, 8));
  const std::uint64_t sum = read_le(data_.data() + pos_ + 1 + name_len + 8, 8);
  const std::size_t body_off = pos_ + 1 + name_len + 16;
  if (body_off + body_len > data_.size()) return SectionStatus::kTruncated;
  if (verify_checksum) {
    const std::uint64_t actual = section_checksum(data_.data() + body_off,
                                                  body_len);
    if (actual != sum) {
      section_ = name;  // so fail() names the damaged section
      pos_ = body_off;
      fail("checksum mismatch: section is corrupt");
    }
  }
  section_ = name;
  pos_ = body_off;
  section_end_ = body_off + body_len;
  return SectionStatus::kOk;
}

void Reader::expect_section(std::string_view name) {
  std::string found;
  const SectionStatus st = open_section(found, /*verify_checksum=*/true);
  if (st == SectionStatus::kEnd)
    RTDS_REQUIRE_MSG(false, what_ << " ends at offset " << pos_
                                  << " but section '" << name
                                  << "' was expected");
  if (st == SectionStatus::kTruncated)
    RTDS_REQUIRE_MSG(false, what_ << " truncated at offset " << pos_
                                  << " inside section '" << name << "'");
  if (found != name)
    RTDS_REQUIRE_MSG(false, what_ << " has section '" << found
                                  << "' at offset " << pos_ << " where '"
                                  << name << "' was expected");
}

SectionStatus Reader::try_next_section(std::string& name) {
  return open_section(name, /*verify_checksum=*/true);
}

void Reader::end_section() {
  if (pos_ != section_end_)
    fail("section has " + std::to_string(section_end_ - pos_) +
         " undecoded bytes");
  section_.clear();
}

void Reader::need(std::size_t n) {
  if (pos_ + n > section_end_) fail("read past the end of the section body");
}

std::uint8_t Reader::u8() {
  need(1);
  const auto v = static_cast<std::uint8_t>(read_le(data_.data() + pos_, 1));
  pos_ += 1;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  const auto v = static_cast<std::uint32_t>(read_le(data_.data() + pos_, 4));
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  const std::uint64_t v = read_le(data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Reader::u32_array(std::uint32_t* out, std::size_t n) {
  if (n == 0) return;  // out may be null for an empty vector
  // Divide instead of multiplying so a hostile count cannot wrap size_t.
  if (n > section_remaining() / 4)
    fail("array of " + std::to_string(n) + " u32 extends past the section");
  if constexpr (kHostIsLittle) {
    std::memcpy(out, data_.data() + pos_, n * 4);
    pos_ += n * 4;
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = u32();
  }
}

void Reader::u64_array(std::uint64_t* out, std::size_t n) {
  if (n == 0) return;  // out may be null for an empty vector
  if (n > section_remaining() / 8)
    fail("array of " + std::to_string(n) + " u64 extends past the section");
  if constexpr (kHostIsLittle) {
    std::memcpy(out, data_.data() + pos_, n * 8);
    pos_ += n * 8;
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = u64();
  }
}

void Reader::f64_array(double* out, std::size_t n) {
  if (n == 0) return;  // out may be null for an empty vector
  if (n > section_remaining() / 8)
    fail("array of " + std::to_string(n) + " f64 extends past the section");
  if constexpr (kHostIsLittle) {
    std::memcpy(out, data_.data() + pos_, n * 8);
    pos_ += n * 8;
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = f64();
  }
}

std::string Reader::str() {
  const std::uint64_t len = u64();
  need(static_cast<std::size_t>(len));
  std::string s(data_.data() + pos_, static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

void Reader::fail(const std::string& why) const {
  RTDS_REQUIRE_MSG(false, what_ << " section '"
                                << (section_.empty() ? "<header>" : section_)
                                << "' at offset " << pos_ << ": " << why);
}

}  // namespace rtds::snap
