// Warm-start cache for sphere construction (DESIGN.md §14).
//
// Every RtdsSystem pays an O(sites · ball · 2h) APSP build plus one
// Pcs::build per site before the first event fires. A parameter sweep
// re-pays that bring-up for every (condition, seed) trial even though the
// tables and spheres depend on nothing but the topology and the radius h.
// This cache keys the *serialized* post-bring-up tables + spheres by
// (topology content hash, h): the first trial on a topology builds and
// stores, every later trial deserializes fresh copies.
//
// Bit-identity by construction: a hit hands back objects decoded from the
// exact bytes a cold build would produce (the store serializes the freshly
// built state through the same snap format the checkpoints use), so warm
// and cold runs are byte-identical — pinned by tests/warm_start_test.cpp
// over every registered scenario digest. Deserializing on every hit (never
// sharing live objects) also keeps trials isolated under --jobs N: workers
// only ever touch their own copies, and the cache itself is mutex-guarded.
//
// Off by default: the flag is process-global opt-in (rtds_exp/rtds_cli
// --warm-start, TrialRunner::RunOptions::warm_start), because a cache that
// outlives a run is a liability in memory-bounded soaks.
#pragma once

#include <cstddef>
#include <vector>

namespace rtds {
class Topology;
class RoutingTable;
class Pcs;
}  // namespace rtds

namespace rtds::snap {

/// Process-global enable switch. Off by default.
void set_warm_start_enabled(bool on);
bool warm_start_enabled();

/// Cache lookup for (topology, h). On a hit, fills `tables` and `spheres`
/// with fresh deserialized copies and returns true. On a miss returns
/// false; the caller builds and should call warm_start_store.
bool warm_start_acquire(const Topology& topo, std::size_t h,
                        std::vector<RoutingTable>& tables,
                        std::vector<Pcs>& spheres);

/// Serializes the freshly built bring-up state into the cache. Later
/// acquire() calls for the same (topology, h) decode copies of it.
void warm_start_store(const Topology& topo, std::size_t h,
                      const std::vector<RoutingTable>& tables,
                      const std::vector<Pcs>& spheres);

/// Drops every cached entry (tests; long-lived processes between sweeps).
void warm_start_clear();

/// Cache statistics since process start (sweep reporting).
std::size_t warm_start_hits();
std::size_t warm_start_misses();

}  // namespace rtds::snap
