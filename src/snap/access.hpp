// The one friend of every checkpointable class (DESIGN.md §14).
//
// Serialization lives OUTSIDE the classes it captures: each state-bearing
// class declares `friend struct snap::Access;` and nothing else — no
// serialize() members, no format knowledge leaking into core/, routing/ or
// sched/. Access's static functions read and restore the private fields
// directly, so the capture is exact (tombstoned routing slots, RNG stream
// words, Welford accumulator bits) where a public-API reconstruction would
// be lossy or slow.
//
// Philosophy (PhoenixOS-style): capture *live* state, recompute *derived*
// state. Anything a fresh construction rebuilds deterministically from the
// config — sphere membership, CSR adjacency, interned metric ids — is not
// in the format; load() starts from a freshly constructed object and
// overwrites only what the run mutated.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "snap/io.hpp"

namespace rtds {
class Rng;
class RunningStat;
class Samples;
class RoutingTable;
class Pcs;
class Topology;
class SchedulingPlan;
class LocalScheduler;
class Simulator;
class RtdsNode;
class RtdsSystem;
struct SystemConfig;
struct RunMetrics;
struct MessageStats;
struct Job;
struct TrialMapping;
struct JobDecision;
}  // namespace rtds
namespace rtds::fault {
class FaultState;
class InvariantChecker;
class DedupWindow;
}  // namespace rtds::fault
namespace rtds::load {
class QuantileSketch;
class SteadyStateCollector;
}  // namespace rtds::load
namespace rtds::obs {
class MetricsBuffer;
}  // namespace rtds::obs

namespace rtds::snap {

/// Shared-pointer interner: bulky immutable payloads (Jobs, TrialMappings)
/// are shared across node queues, active initiations and pending-event
/// records. The first encounter serializes the body and assigns the next
/// dense index; later encounters serialize the index only — so the restored
/// object graph shares exactly like the live one, and a job referenced from
/// five places costs one body.
struct SaveContext {
  std::vector<const Job*> jobs;
  std::vector<const TrialMapping*> mappings;
};
struct LoadContext {
  std::vector<std::shared_ptr<const Job>> jobs;
  std::vector<std::shared_ptr<const TrialMapping>> mappings;
};

struct Access {
  // --- util ---
  static void save(Writer& w, const Rng& rng);
  static void load(Reader& r, Rng& rng);
  static void save(Writer& w, const RunningStat& s);
  static void load(Reader& r, RunningStat& s);
  static void save(Writer& w, const Samples& s);
  static void load(Reader& r, Samples& s);

  // --- routing ---
  static void save(Writer& w, const RoutingTable& t);
  static void load(Reader& r, RoutingTable& t);
  static void save(Writer& w, const Pcs& p);
  static void load(Reader& r, Pcs& p);

  // --- fault ---
  static void save(Writer& w, const fault::FaultState& f);
  static void load(Reader& r, fault::FaultState& f);
  static void save(Writer& w, const fault::InvariantChecker& c);
  static void load(Reader& r, fault::InvariantChecker& c);
  static void save(Writer& w, const fault::DedupWindow& d);
  static void load(Reader& r, fault::DedupWindow& d);

  // --- sched ---
  static void save(Writer& w, const SchedulingPlan& p);
  static void load(Reader& r, SchedulingPlan& p);
  static void save(Writer& w, const LocalScheduler& s);  ///< plan only
  static void load(Reader& r, LocalScheduler& s);

  // --- load/ (open-system measurement) ---
  static void save(Writer& w, const load::QuantileSketch& q);
  static void load(Reader& r, load::QuantileSketch& q);
  static void save(Writer& w, const load::SteadyStateCollector& c);
  static void load(Reader& r, load::SteadyStateCollector& c);

  // --- obs (serialized by metric NAME: interned ids are process order) ---
  static void save(Writer& w, const obs::MetricsBuffer& m);
  static void load(Reader& r, obs::MetricsBuffer& m);

  // --- core value types ---
  static void save(Writer& w, const MessageStats& s);
  static void load(Reader& r, MessageStats& s);
  static void save(Writer& w, const RunMetrics& m);
  static void load(Reader& r, RunMetrics& m);
  static void save(Writer& w, const JobDecision& d);
  static void load(Reader& r, JobDecision& d);

  // --- shared immutable payloads (interned) ---
  static void save_job(Writer& w, SaveContext& ctx,
                       const std::shared_ptr<const Job>& job);
  static std::shared_ptr<const Job> load_job(Reader& r, LoadContext& ctx);
  static void save_mapping(Writer& w, SaveContext& ctx,
                           const std::shared_ptr<const TrialMapping>& m);
  static std::shared_ptr<const TrialMapping> load_mapping(Reader& r,
                                                          LoadContext& ctx);

  // --- node / system (snapshot.cpp) ---
  static void save_node(Writer& w, SaveContext& ctx, const RtdsNode& n);
  static void load_node(Reader& r, LoadContext& ctx, RtdsNode& n);
  /// Writes / restores the sections clock, tables, fault, checker, nodes,
  /// transport and system (everything but the pending events).
  static void save_system(Writer& w, SaveContext& ctx,
                          const RtdsSystem& sys);
  static void load_system(Reader& r, LoadContext& ctx, RtdsSystem& sys);
  /// Writes / re-posts the "events" section: every pending event's
  /// (time, record) pair in execution order. load_events re-schedules each
  /// through the original private entry point and re-annotates it, so a
  /// resumed run can itself be snapshotted again.
  static void save_events(Writer& w, SaveContext& ctx,
                          const RtdsSystem& sys);
  static void load_events(Reader& r, LoadContext& ctx, RtdsSystem& sys);

  // --- identity hashes ---
  /// Content hash of the static graph (sites, powers, links).
  static std::uint64_t topology_hash(const Topology& topo);
  /// Hash of everything a snapshot's validity depends on: the topology
  /// plus the determinism-relevant SystemConfig fields.
  static std::uint64_t config_hash(const Topology& topo,
                                   const SystemConfig& cfg);
  /// config_hash over a live system's own topology and config.
  static std::uint64_t config_hash_of(const RtdsSystem& sys);
};

}  // namespace rtds::snap
