// Access serializers for the leaf state types (DESIGN.md §14). The
// node/system/event-queue entry points live in snap/snapshot.cpp; this file
// covers everything they compose: RNG streams, statistics accumulators,
// routing tables, spheres, fault views, dedup windows, scheduling plans,
// quantile sketches, metrics buffers, and the shared immutable payloads
// (Jobs, TrialMappings) with their pointer interners.
#include <memory>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/rtds_system.hpp"
#include "core/trial_mapping.hpp"
#include "fault/dedup.hpp"
#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "load/window.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "routing/pcs.hpp"
#include "routing/routing_table.hpp"
#include "sched/local_scheduler.hpp"
#include "sched/plan.hpp"
#include "snap/access.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rtds::snap {

namespace {

// Shared-pointer interning markers (save_job / save_mapping).
constexpr std::uint8_t kPtrNull = 0;
constexpr std::uint8_t kPtrInline = 1;  ///< body follows; index = next dense
constexpr std::uint8_t kPtrRef = 2;     ///< u64 index of an earlier inline

/// Validates a decoded element count against the bytes actually left in
/// the section, BEFORE the caller allocates `n` elements — so a damaged
/// length field fails with a section/offset-named ContractViolation
/// instead of an allocation blowup.
std::size_t checked_count(Reader& r, std::uint64_t n, std::size_t width) {
  if (n > r.section_remaining() / width)
    r.fail("element count " + std::to_string(n) +
           " exceeds the remaining section body");
  return static_cast<std::size_t>(n);
}

void save_f64_vec(Writer& w, const std::vector<double>& v) {
  w.u64(v.size());
  w.f64_array(v.data(), v.size());
}
void load_f64_vec(Reader& r, std::vector<double>& v) {
  v.resize(checked_count(r, r.u64(), 8));
  r.f64_array(v.data(), v.size());
}

void save_time_vec(Writer& w, const std::vector<Time>& v) {
  w.u64(v.size());
  w.f64_array(v.data(), v.size());
}
void load_time_vec(Reader& r, std::vector<Time>& v) {
  v.resize(checked_count(r, r.u64(), 8));
  r.f64_array(v.data(), v.size());
}

void save_u32_vec(Writer& w, const std::vector<std::uint32_t>& v) {
  w.u64(v.size());
  w.u32_array(v.data(), v.size());
}
void load_u32_vec(Reader& r, std::vector<std::uint32_t>& v) {
  v.resize(checked_count(r, r.u64(), 4));
  r.u32_array(v.data(), v.size());
}

void save_windowed_tasks(Writer& w, const std::vector<WindowedTask>& v) {
  w.u64(v.size());
  for (const WindowedTask& t : v) {
    w.u32(t.task);
    w.f64(t.release);
    w.f64(t.deadline);
    w.f64(t.cost);
  }
}
void load_windowed_tasks(Reader& r, std::vector<WindowedTask>& v) {
  const std::uint64_t n = r.u64();
  v.clear();
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    WindowedTask t;
    t.task = r.u32();
    t.release = r.f64();
    t.deadline = r.f64();
    t.cost = r.f64();
    v.push_back(t);
  }
}

}  // namespace

// --- util/rng.hpp ---

void Access::save(Writer& w, const Rng& rng) {
  for (std::uint64_t word : rng.s_) w.u64(word);
  w.b(rng.have_spare_normal_);
  w.f64(rng.spare_normal_);
}
void Access::load(Reader& r, Rng& rng) {
  for (std::uint64_t& word : rng.s_) word = r.u64();
  rng.have_spare_normal_ = r.b();
  rng.spare_normal_ = r.f64();
}

// --- util/stats.hpp ---

void Access::save(Writer& w, const RunningStat& s) {
  w.u64(s.n_);
  w.f64(s.mean_);
  w.f64(s.m2_);
  w.f64(s.min_);
  w.f64(s.max_);
  w.f64(s.sum_);
}
void Access::load(Reader& r, RunningStat& s) {
  s.n_ = r.u64();
  s.mean_ = r.f64();
  s.m2_ = r.f64();
  s.min_ = r.f64();
  s.max_ = r.f64();
  s.sum_ = r.f64();
}

void Access::save(Writer& w, const Samples& s) {
  // The raw insertion-order values (sorted_ may have reordered them in
  // place; either order yields the same sorted multiset, so capturing the
  // current array verbatim is exact).
  w.b(s.sorted_);
  save_f64_vec(w, s.values_);
}
void Access::load(Reader& r, Samples& s) {
  s.sorted_ = r.b();
  load_f64_vec(r, s.values_);
}

// --- routing/routing_table.hpp ---

void Access::save(Writer& w, const RoutingTable& t) {
  w.u32(t.owner_);
  w.u32(t.site_count_);
  w.u32(t.live_);
  const std::size_t n = t.dests_.size();
  w.u64(n);
  // RouteLine travels struct-of-arrays: padding-free on the wire and
  // bulk-copyable on decode (tables dominate warm-start entries).
  w.u32_array(t.dests_.data(), n);
  std::vector<double> dist(n);
  std::vector<std::uint32_t> next_hop(n);
  std::vector<std::uint32_t> hops(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    dist[slot] = t.lines_[slot].dist;
    next_hop[slot] = t.lines_[slot].next_hop;
    hops[slot] = t.lines_[slot].hops;
  }
  w.f64_array(dist.data(), n);
  w.u32_array(next_hop.data(), n);
  w.u32_array(hops.data(), n);
}
void Access::load(Reader& r, RoutingTable& t) {
  t.owner_ = r.u32();
  t.site_count_ = r.u32();
  t.live_ = r.u32();
  const std::size_t n = checked_count(r, r.u64(), 4 + 8 + 4 + 4);
  t.dests_.resize(n);
  r.u32_array(t.dests_.data(), n);
  std::vector<double> dist(n);
  std::vector<std::uint32_t> next_hop(n);
  std::vector<std::uint32_t> hops(n);
  r.f64_array(dist.data(), n);
  r.u32_array(next_hop.data(), n);
  r.u32_array(hops.data(), n);
  t.lines_.resize(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    t.lines_[slot].dist = dist[slot];
    t.lines_[slot].next_hop = next_hop[slot];
    t.lines_[slot].hops = hops[slot];
  }
}

// --- routing/pcs.hpp ---

void Access::save(Writer& w, const Pcs& p) {
  w.u32(p.root_);
  w.u64(p.radius_);
  const std::size_t m = p.members_.size();
  w.u64(m);
  // PcsMember travels struct-of-arrays (see RoutingTable); the m*m pair
  // matrices are the bulk of every sphere and bulk-copy directly.
  std::vector<std::uint32_t> sites(m);
  std::vector<double> delays(m);
  std::vector<std::uint64_t> hops(m);
  for (std::size_t i = 0; i < m; ++i) {
    sites[i] = p.members_[i].site;
    delays[i] = p.members_[i].delay;
    hops[i] = p.members_[i].hops;
  }
  w.u32_array(sites.data(), m);
  w.f64_array(delays.data(), m);
  w.u64_array(hops.data(), m);
  w.f64_array(p.pair_delay_.data(), p.pair_delay_.size());
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "pair_hops_ is reinterpreted as u64 on the wire");
  w.u64_array(reinterpret_cast<const std::uint64_t*>(p.pair_hops_.data()),
              p.pair_hops_.size());
}
void Access::load(Reader& r, Pcs& p) {
  p.root_ = r.u32();
  p.radius_ = r.u64();
  const std::size_t m = checked_count(r, r.u64(), 4 + 8 + 8);
  std::vector<std::uint32_t> sites(m);
  std::vector<double> delays(m);
  std::vector<std::uint64_t> hops(m);
  r.u32_array(sites.data(), m);
  r.f64_array(delays.data(), m);
  r.u64_array(hops.data(), m);
  p.members_.resize(m);
  p.member_index_ = FlatMap<SiteId, std::uint32_t>{};
  p.member_index_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    p.members_[i].site = sites[i];
    p.members_[i].delay = delays[i];
    p.members_[i].hops = hops[i];
    // member_index_ is derived (site -> dense index); rebuilt, not stored.
    p.member_index_[sites[i]] = static_cast<std::uint32_t>(i);
  }
  p.pair_delay_.resize(m * m);
  r.f64_array(p.pair_delay_.data(), m * m);
  p.pair_hops_.resize(m * m);
  r.u64_array(reinterpret_cast<std::uint64_t*>(p.pair_hops_.data()), m * m);
}

// --- fault/fault.hpp ---

void Access::save(Writer& w, const fault::FaultState& f) {
  // topo_ (reference) and link_of_pair_ (ctor-derived) are not stored; the
  // perturbation parameters ARE, as a guard: they must round-trip equal to
  // what the fresh construction derived from the plan.
  w.u64(f.site_up_.size());
  for (char c : f.site_up_) w.u8(static_cast<std::uint8_t>(c));
  w.u64(f.link_up_.size());
  for (char c : f.link_up_) w.u8(static_cast<std::uint8_t>(c));
  w.u64(f.sites_down_);
  w.u64(f.links_down_);
  w.f64(f.drop_prob_);
  w.f64(f.extra_delay_max_);
  w.f64(f.dup_prob_);
  w.f64(f.reorder_prob_);
  w.f64(f.reorder_delay_max_);
  w.u32(f.partition_boundary_);
  w.u64(f.partition_downed_.size());
  for (std::size_t link : f.partition_downed_) w.u64(link);
  w.u64(f.partition_changed_sites_.size());
  for (SiteId s : f.partition_changed_sites_) w.u32(s);
  save(w, f.perturb_rng_);
}
void Access::load(Reader& r, fault::FaultState& f) {
  const std::uint64_t sites = r.u64();
  if (sites != f.site_up_.size())
    r.fail("fault state spans a different site count than the topology");
  for (char& c : f.site_up_) c = static_cast<char>(r.u8());
  const std::uint64_t links = r.u64();
  if (links != f.link_up_.size())
    r.fail("fault state spans a different link count than the topology");
  for (char& c : f.link_up_) c = static_cast<char>(r.u8());
  f.sites_down_ = r.u64();
  f.links_down_ = r.u64();
  f.drop_prob_ = r.f64();
  f.extra_delay_max_ = r.f64();
  f.dup_prob_ = r.f64();
  f.reorder_prob_ = r.f64();
  f.reorder_delay_max_ = r.f64();
  f.partition_boundary_ = r.u32();
  const std::uint64_t downed = r.u64();
  f.partition_downed_.clear();
  f.partition_downed_.reserve(downed);
  for (std::uint64_t i = 0; i < downed; ++i)
    f.partition_downed_.push_back(r.u64());
  const std::uint64_t changed = r.u64();
  f.partition_changed_sites_.clear();
  f.partition_changed_sites_.reserve(changed);
  for (std::uint64_t i = 0; i < changed; ++i)
    f.partition_changed_sites_.push_back(r.u32());
  load(r, f.perturb_rng_);
}

// --- fault/invariants.hpp ---

void Access::save(Writer& w, const fault::InvariantChecker& c) {
  w.f64(c.last_event_time_);
  w.u64(c.submitted_);
  w.u64(c.violations_);
  const auto decided = c.decided_.map_.sorted_items();
  w.u64(decided.size());
  for (const auto& [job, present] : decided) {
    (void)present;
    w.u64(job);
  }
  const auto seqs = c.last_seq_.sorted_items();
  w.u64(seqs.size());
  for (const auto& [key, seq] : seqs) {
    w.u64(key);
    w.u64(seq);
  }
  w.u64(c.queue_pushed_);
  w.u64(c.queue_removed_);
  w.u64(c.sheds_);
}
void Access::load(Reader& r, fault::InvariantChecker& c) {
  c.last_event_time_ = r.f64();
  c.submitted_ = r.u64();
  c.violations_ = r.u64();
  const std::uint64_t n = r.u64();
  c.decided_ = FlatSet<JobId>{};
  c.decided_.map_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) c.decided_.insert(r.u64());
  const std::uint64_t seqs = checked_count(r, r.u64(), 16);
  c.last_seq_ = FlatMap<std::uint64_t, std::uint64_t>{};
  c.last_seq_.reserve(seqs);
  for (std::uint64_t i = 0; i < seqs; ++i) {
    const std::uint64_t key = r.u64();
    c.last_seq_[key] = r.u64();
  }
  c.queue_pushed_ = r.u64();
  c.queue_removed_ = r.u64();
  c.sheds_ = r.u64();
}

// --- fault/dedup.hpp ---

void Access::save(Writer& w, const fault::DedupWindow& d) {
  w.u64(d.max_seq_);
  w.u64(d.mask_);
}
void Access::load(Reader& r, fault::DedupWindow& d) {
  d.max_seq_ = r.u64();
  d.mask_ = r.u64();
}

// --- sched/plan.hpp + sched/local_scheduler.hpp ---

void Access::save(Writer& w, const SchedulingPlan& p) {
  w.u64(p.items_.size());
  for (const Reservation& res : p.items_) {
    w.u64(res.job);
    w.u32(res.task);
    w.f64(res.start);
    w.f64(res.end);
  }
}
void Access::load(Reader& r, SchedulingPlan& p) {
  const std::uint64_t n = r.u64();
  p.items_.clear();
  p.items_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Reservation res;
    res.job = r.u64();
    res.task = r.u32();
    res.start = r.f64();
    res.end = r.f64();
    p.items_.push_back(res);
  }
}

void Access::save(Writer& w, const LocalScheduler& s) {
  save(w, s.plan_);  // cfg_ is construction input, not live state
}
void Access::load(Reader& r, LocalScheduler& s) { load(r, s.plan_); }

// --- load/window.hpp ---

void Access::save(Writer& w, const load::QuantileSketch& q) {
  // gamma_/inv_log_gamma_ are ctor-derived from the relative error; stored
  // anyway so a config-skewed restore trips the round-trip guard instead of
  // silently re-binning.
  w.f64(q.gamma_);
  w.f64(q.inv_log_gamma_);
  w.u64(q.zero_count_);
  w.u64(q.total_);
  w.u64(q.bins_.size());
  for (const auto& [key, count] : q.bins_) {
    w.i64(key);
    w.u64(count);
  }
}
void Access::load(Reader& r, load::QuantileSketch& q) {
  q.gamma_ = r.f64();
  q.inv_log_gamma_ = r.f64();
  q.zero_count_ = r.u64();
  q.total_ = r.u64();
  const std::uint64_t n = r.u64();
  q.bins_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int32_t key = static_cast<std::int32_t>(r.i64());
    q.bins_[key] = r.u64();
  }
}

void Access::save(Writer& w, const load::SteadyStateCollector& c) {
  // cfg_ is construction input (the resumed run re-creates the collector
  // with the same WindowConfig); only the accumulated windows travel.
  w.u64(c.windows_.size());
  for (const load::WindowCell& cell : c.windows_) {
    w.u64(cell.arrived);
    w.u64(cell.accepted);
    w.u64(cell.rejected);
    w.u64(cell.shed);
    w.u64(cell.completed);
    save(w, cell.sojourn);
    save(w, cell.sketch);
  }
}
void Access::load(Reader& r, load::SteadyStateCollector& c) {
  const std::uint64_t n = r.u64();
  c.windows_.clear();
  c.windows_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    load::WindowCell cell(c.cfg_.sketch_relative_error);
    cell.arrived = r.u64();
    cell.accepted = r.u64();
    cell.rejected = r.u64();
    cell.shed = r.u64();
    cell.completed = r.u64();
    load(r, cell.sojourn);
    load(r, cell.sketch);
    c.windows_.push_back(std::move(cell));
  }
}

// --- obs/obs.hpp ---

void Access::save(Writer& w, const obs::MetricsBuffer& m) {
  // By NAME: MetricIds are process interning order, which depends on which
  // call sites ran first — not stable across builds or runs.
  const obs::Registry& reg = obs::Registry::instance();
  std::uint64_t recorded = 0;
  for (std::size_t i = 0; i < m.cells_.size(); ++i)
    if (m.cells_[i].count > 0) ++recorded;
  w.u64(recorded);
  for (std::uint32_t i = 0; i < m.cells_.size(); ++i) {
    if (m.cells_[i].count == 0) continue;
    const obs::MetricId id{i};
    w.str(reg.name(id));
    w.u8(static_cast<std::uint8_t>(reg.kind(id)));
    w.u64(m.cells_[i].count);
    w.u64(m.cells_[i].sum);
    w.u64(m.cells_[i].min);
    w.u64(m.cells_[i].max);
    const bool has_bins = i < m.bins_.size() && m.bins_[i] != nullptr;
    w.b(has_bins);
    if (has_bins)  // 65 bins: 0 for the value 0, then bit_width 1..64
      w.u64_array(m.bins_[i].get(), 65);
  }
}
void Access::load(Reader& r, obs::MetricsBuffer& m) {
  obs::Registry& reg = obs::Registry::instance();
  m.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t entry = 0; entry < n; ++entry) {
    const std::string name = r.str();
    const auto kind = static_cast<obs::MetricKind>(r.u8());
    if (kind != obs::MetricKind::kCounter &&
        kind != obs::MetricKind::kGaugeMax && kind != obs::MetricKind::kHist)
      r.fail("unknown metric kind for \"" + name + "\"");
    const obs::MetricId id = reg.intern(name, kind);
    obs::MetricsBuffer::Cell& cell = m.cell(id);
    cell.count = r.u64();
    cell.sum = r.u64();
    cell.min = r.u64();
    cell.max = r.u64();
    if (r.b()) {
      if (id.index >= m.bins_.size()) m.bins_.resize(m.cells_.size());
      m.bins_[id.index] = std::make_unique<std::uint64_t[]>(65);
      r.u64_array(m.bins_[id.index].get(), 65);
    }
  }
}

// --- sim/network.hpp MessageStats ---

void Access::save(Writer& w, const MessageStats& s) {
  std::uint64_t categories = 0;
  for (const auto& [category, entry] : s.by_category) {
    (void)category;
    (void)entry;
    ++categories;
  }
  w.u64(categories);
  for (const auto& [category, entry] : s.by_category) {
    w.u32(static_cast<std::uint32_t>(category));
    w.u64(entry.sends);
    w.u64(entry.link_messages);
  }
  w.u64(s.total_sends);
  w.u64(s.total_link_messages);
  w.u64(s.messages_dropped);
  w.u64(s.messages_duplicated);
}
void Access::load(Reader& r, MessageStats& s) {
  s.clear();
  const std::uint64_t categories = r.u64();
  for (std::uint64_t i = 0; i < categories; ++i) {
    const int category = static_cast<int>(r.u32());
    if (category < 0 || category >= MessageStats::CategoryCounters::kCapacity)
      r.fail("message category out of range");
    MessageStats::Entry& entry = s.by_category[category];
    entry.sends = r.u64();
    entry.link_messages = r.u64();
  }
  s.total_sends = r.u64();
  s.total_link_messages = r.u64();
  s.messages_dropped = r.u64();
  s.messages_duplicated = r.u64();
}

// --- core/metrics.hpp ---

void Access::save(Writer& w, const RunMetrics& m) {
  w.u64(m.arrived);
  w.u64(m.accepted_local);
  w.u64(m.accepted_remote);
  w.u64(m.rejected);
  w.u64(m.deadline_misses);
  w.u64(m.dispatch_failures);
  w.u64(m.failed_jobs);
  w.u64(m.jobs_lost);
  w.u64(m.jobs_rescheduled);
  w.u64(m.repair_messages);
  w.u64(m.messages_duplicated);
  w.u64(m.retransmits);
  w.u64(m.invariant_violations);
  w.u64(m.reject_by_reason.size());
  for (const auto& [reason, count] : m.reject_by_reason) {
    w.i64(reason);
    w.u64(count);
  }
  w.u64(m.adjustment_cases.size());
  for (const auto& [case_no, count] : m.adjustment_cases) {
    w.i64(case_no);
    w.u64(count);
  }
  save(w, m.decision_latency);
  save(w, m.acs_size);
  save(w, m.msgs_per_job);
  save(w, m.job_lateness);
  save(w, m.transport);
  w.u64(m.pcs_build_messages);
  w.u64(m.pcs_size_max);
  w.u64(m.pcs_hop_diameter_max);
}
void Access::load(Reader& r, RunMetrics& m) {
  m.arrived = r.u64();
  m.accepted_local = r.u64();
  m.accepted_remote = r.u64();
  m.rejected = r.u64();
  m.deadline_misses = r.u64();
  m.dispatch_failures = r.u64();
  m.failed_jobs = r.u64();
  m.jobs_lost = r.u64();
  m.jobs_rescheduled = r.u64();
  m.repair_messages = r.u64();
  m.messages_duplicated = r.u64();
  m.retransmits = r.u64();
  m.invariant_violations = r.u64();
  const std::uint64_t reasons = r.u64();
  m.reject_by_reason.clear();
  for (std::uint64_t i = 0; i < reasons; ++i) {
    const auto reason = static_cast<int>(r.i64());
    m.reject_by_reason[reason] = r.u64();
  }
  const std::uint64_t cases = r.u64();
  m.adjustment_cases.clear();
  for (std::uint64_t i = 0; i < cases; ++i) {
    const auto case_no = static_cast<int>(r.i64());
    m.adjustment_cases[case_no] = r.u64();
  }
  m.decision_latency = RunningStat{};
  load(r, m.decision_latency);
  m.acs_size = RunningStat{};
  load(r, m.acs_size);
  m.msgs_per_job = RunningStat{};
  load(r, m.msgs_per_job);
  m.job_lateness = RunningStat{};
  load(r, m.job_lateness);
  load(r, m.transport);
  m.pcs_build_messages = r.u64();
  m.pcs_size_max = r.u64();
  m.pcs_hop_diameter_max = r.u64();
}

void Access::save(Writer& w, const JobDecision& d) {
  w.u64(d.job);
  w.u32(d.initiator);
  w.u8(static_cast<std::uint8_t>(d.outcome));
  w.u8(static_cast<std::uint8_t>(d.reject_reason));
  w.f64(d.arrival);
  w.f64(d.decision_time);
  w.f64(d.deadline);
  w.u64(d.task_count);
  w.u64(d.acs_size);
  w.u64(d.link_messages);
  w.i64(d.adjustment_case);
  w.b(d.fault_recovered);
}
void Access::load(Reader& r, JobDecision& d) {
  d.job = r.u64();
  d.initiator = r.u32();
  d.outcome = static_cast<JobOutcome>(r.u8());
  d.reject_reason = static_cast<RejectReason>(r.u8());
  d.arrival = r.f64();
  d.decision_time = r.f64();
  d.deadline = r.f64();
  d.task_count = r.u64();
  d.acs_size = r.u64();
  d.link_messages = r.u64();
  d.adjustment_case = static_cast<int>(r.i64());
  d.fault_recovered = r.b();
}

// --- shared immutable payloads ---

void Access::save_job(Writer& w, SaveContext& ctx,
                      const std::shared_ptr<const Job>& job) {
  if (!job) {
    w.u8(kPtrNull);
    return;
  }
  for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
    if (ctx.jobs[i] == job.get()) {
      w.u8(kPtrRef);
      w.u64(i);
      return;
    }
  }
  w.u8(kPtrInline);
  ctx.jobs.push_back(job.get());
  w.u64(job->id);
  w.f64(job->release);
  w.f64(job->deadline);
  const Dag& dag = job->dag;
  w.b(dag.finalized());
  w.u64(dag.task_count());
  for (TaskId t = 0; t < dag.task_count(); ++t) {
    w.f64(dag.task(t).cost);
    w.str(dag.task(t).label);
  }
  w.u64(dag.arc_count());
  for (const Arc& arc : dag.arcs()) {
    w.u32(arc.from);
    w.u32(arc.to);
    w.f64(arc.data_volume);
  }
}
std::shared_ptr<const Job> Access::load_job(Reader& r, LoadContext& ctx) {
  const std::uint8_t marker = r.u8();
  if (marker == kPtrNull) return nullptr;
  if (marker == kPtrRef) {
    const std::uint64_t index = r.u64();
    if (index >= ctx.jobs.size()) r.fail("job back-reference out of range");
    return ctx.jobs[index];
  }
  if (marker != kPtrInline) r.fail("bad job pointer marker");
  auto job = std::make_shared<Job>();
  job->id = r.u64();
  job->release = r.f64();
  job->deadline = r.f64();
  const bool finalized = r.b();
  const std::uint64_t tasks = r.u64();
  for (std::uint64_t t = 0; t < tasks; ++t) {
    const Time cost = r.f64();
    job->dag.add_task(cost, r.str());
  }
  const std::uint64_t arcs = r.u64();
  for (std::uint64_t a = 0; a < arcs; ++a) {
    const TaskId from = r.u32();
    const TaskId to = r.u32();
    job->dag.add_arc(from, to, r.f64());
  }
  // CSR adjacency, topological order and bottom levels are re-derived;
  // finalize() is deterministic, so the rebuilt caches match the originals.
  if (finalized) job->dag.finalize();
  std::shared_ptr<const Job> shared = std::move(job);
  ctx.jobs.push_back(shared);
  return shared;
}

void Access::save_mapping(Writer& w, SaveContext& ctx,
                          const std::shared_ptr<const TrialMapping>& m) {
  if (!m) {
    w.u8(kPtrNull);
    return;
  }
  for (std::size_t i = 0; i < ctx.mappings.size(); ++i) {
    if (ctx.mappings[i] == m.get()) {
      w.u8(kPtrRef);
      w.u64(i);
      return;
    }
  }
  w.u8(kPtrInline);
  ctx.mappings.push_back(m.get());
  save_u32_vec(w, m->assignment);
  save_time_vec(w, m->release);
  save_time_vec(w, m->deadline);
  w.u32(m->used_processors);
  save_f64_vec(w, m->surpluses);
  w.f64(m->makespan);
  w.f64(m->makespan_full);
  w.u8(static_cast<std::uint8_t>(m->adjustment));
  save_time_vec(w, m->s_start);
  save_time_vec(w, m->s_finish);
  save_time_vec(w, m->star_start);
  save_time_vec(w, m->star_finish);
  w.u64(m->by_processor.size());
  for (const auto& tasks : m->by_processor) save_windowed_tasks(w, tasks);
}
std::shared_ptr<const TrialMapping> Access::load_mapping(Reader& r,
                                                         LoadContext& ctx) {
  const std::uint8_t marker = r.u8();
  if (marker == kPtrNull) return nullptr;
  if (marker == kPtrRef) {
    const std::uint64_t index = r.u64();
    if (index >= ctx.mappings.size())
      r.fail("mapping back-reference out of range");
    return ctx.mappings[index];
  }
  if (marker != kPtrInline) r.fail("bad mapping pointer marker");
  auto m = std::make_shared<TrialMapping>();
  load_u32_vec(r, m->assignment);
  load_time_vec(r, m->release);
  load_time_vec(r, m->deadline);
  m->used_processors = r.u32();
  load_f64_vec(r, m->surpluses);
  m->makespan = r.f64();
  m->makespan_full = r.f64();
  m->adjustment = static_cast<AdjustmentCase>(r.u8());
  load_time_vec(r, m->s_start);
  load_time_vec(r, m->s_finish);
  load_time_vec(r, m->star_start);
  load_time_vec(r, m->star_finish);
  const std::uint64_t procs = r.u64();
  m->by_processor.clear();
  m->by_processor.resize(procs);
  for (auto& tasks : m->by_processor) load_windowed_tasks(r, tasks);
  std::shared_ptr<const TrialMapping> shared = std::move(m);
  ctx.mappings.push_back(shared);
  return shared;
}

// --- identity hashes ---

std::uint64_t Access::topology_hash(const Topology& topo) {
  HashAbsorber h;
  h.str("topology");
  h.u64(topo.site_count());
  for (SiteId s = 0; s < topo.site_count(); ++s)
    h.f64(topo.computing_power(s));
  h.u64(topo.link_count());
  for (const Link& link : topo.links()) {
    h.u64(link.a);
    h.u64(link.b);
    h.f64(link.delay);
    h.f64(link.throughput);
  }
  return h.digest();
}

std::uint64_t Access::config_hash(const Topology& topo,
                                  const SystemConfig& cfg) {
  HashAbsorber h;
  h.u64(topology_hash(topo));
  h.str("system_config");
  const RtdsConfig& n = cfg.node;
  h.u64(n.sphere_radius_h);
  h.u64(static_cast<std::uint64_t>(n.sched.policy));
  h.u64(n.sched.exact_max_tasks);
  h.f64(n.sched.observation_window);
  h.f64(n.sched.computing_power);
  h.u64(static_cast<std::uint64_t>(n.mapper.task_priority));
  h.u64(n.mapper.busyness_weighted_laxity ? 1 : 0);
  h.u64(n.mapper.account_data_volumes ? 1 : 0);
  h.f64(n.mapper.link_throughput);
  h.u64(n.mapper.reject_infeasible_windows ? 1 : 0);
  h.u64(static_cast<std::uint64_t>(n.enroll_policy));
  h.u64(static_cast<std::uint64_t>(n.enroll_gate));
  h.f64(n.enroll_timeout_slack);
  h.f64(n.mapper_compute_time);
  h.f64(n.protocol_overhead_factor);
  h.f64(n.protocol_overhead_slack);
  h.f64(n.min_surplus);
  h.u64(n.job_window_surplus ? 1 : 0);
  h.u64(n.initiator_local_knowledge ? 1 : 0);
  h.u64(n.fault_tolerant ? 1 : 0);
  h.f64(n.lock_lease);
  h.u64(n.retransmit ? 1 : 0);
  h.u64(static_cast<std::uint64_t>(n.retransmit_tries));
  h.u64(n.fault_seed);
  h.u64(n.admission_queue_cap);
  h.u64(static_cast<std::uint64_t>(n.shed_policy));
  h.u64(static_cast<std::uint64_t>(cfg.transport_model));
  h.f64(cfg.link_bandwidth);
  h.u64(cfg.measure_pcs_build_cost ? 1 : 0);
  h.u64(cfg.check_invariants ? 1 : 0);
  h.str("fault_plan");
  const fault::FaultPlan& plan = cfg.faults;
  h.u64(plan.events.size());
  for (const fault::FaultEvent& ev : plan.events) {
    h.f64(ev.at);
    h.u64(static_cast<std::uint64_t>(ev.kind));
    h.u64(ev.a);
    h.u64(ev.b);
  }
  h.f64(plan.drop_prob);
  h.f64(plan.extra_delay_max);
  h.f64(plan.dup_prob);
  h.f64(plan.reorder_prob);
  h.f64(plan.reorder_delay_max);
  h.u64(plan.seed);
  return h.digest();
}

}  // namespace rtds::snap
