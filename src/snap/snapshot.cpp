// Whole-system snapshot save/restore (DESIGN.md §14).
//
// save walks the live object graph through snap::Access and writes one
// section per subsystem; load starts from a freshly constructed
// RtdsSystem of the same (topology, config) — enforced by the header's
// config hash — and overwrites exactly the state a run mutates. Pending
// events travel as EventRecords (sim/event_record.hpp) and are re-posted
// through the original private entry points in saved execution order, so
// the re-posted queue pops identically to the saved one: re-posting in
// ascending (time, seq) order hands out ascending fresh sequence numbers,
// preserving every tie-break, and everything scheduled after resume draws
// sequences above them all.
#include "snap/snapshot.hpp"

#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "core/rtds_system.hpp"
#include "load/source.hpp"
#include "load/window.hpp"
#include "obs/obs.hpp"
#include "routing/transport.hpp"
#include "snap/access.hpp"
#include "snap/io.hpp"

namespace rtds::snap {

namespace {

// Stable on-disk payload tags — deliberately NOT the variant index, which
// shifts whenever MessageBody grows an alternative.
constexpr std::uint8_t kBodyMono = 0;
constexpr std::uint8_t kBodyEnrollRequest = 1;
constexpr std::uint8_t kBodyEnrollReply = 2;
constexpr std::uint8_t kBodyUnlock = 3;
constexpr std::uint8_t kBodyValidateRequest = 4;
constexpr std::uint8_t kBodyValidateReply = 5;
constexpr std::uint8_t kBodyDispatch = 6;
constexpr std::uint8_t kBodyDispatchAck = 7;
constexpr std::uint8_t kBodyString = 8;

void save_u32_vec(Writer& w, const std::vector<std::uint32_t>& v) {
  w.u64(v.size());
  for (const auto x : v) w.u32(x);
}

std::vector<std::uint32_t> load_u32_vec(Reader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u32());
  return v;
}

/// Serializes an in-flight protocol payload. Only the RTDS protocol
/// messages (plus monostate and the tests' debug string) are
/// checkpointable: the APSP exchange runs on throwaway simulators and the
/// baseline policies never annotate, so meeting one of their payloads in a
/// checkpoint is a contract violation, not a format gap.
void save_body(Writer& w, SaveContext& ctx, const MessageBody& body) {
  if (std::holds_alternative<std::monostate>(body)) {
    w.u8(kBodyMono);
    return;
  }
  if (const auto* m = std::get_if<EnrollRequest>(&body)) {
    w.u8(kBodyEnrollRequest);
    w.u64(m->job);
    w.f64(m->deadline);
    w.u64(m->seq);
    return;
  }
  if (const auto* m = std::get_if<EnrollReply>(&body)) {
    w.u8(kBodyEnrollReply);
    w.u64(m->job);
    w.b(m->accepted);
    w.f64(m->surplus);
    w.u64(m->seq);
    return;
  }
  if (const auto* m = std::get_if<UnlockMsg>(&body)) {
    w.u8(kBodyUnlock);
    w.u64(m->job);
    w.u64(m->seq);
    return;
  }
  if (const auto* m = std::get_if<ValidateRequest>(&body)) {
    w.u8(kBodyValidateRequest);
    w.u64(m->job);
    Access::save_job(w, ctx, m->job_data);
    Access::save_mapping(w, ctx, m->mapping);
    w.u64(m->seq);
    return;
  }
  if (const auto* m = std::get_if<ValidateReply>(&body)) {
    w.u8(kBodyValidateReply);
    w.u64(m->job);
    save_u32_vec(w, m->endorsable);
    w.u64(m->seq);
    return;
  }
  if (const auto* m = std::get_if<DispatchMsg>(&body)) {
    w.u8(kBodyDispatch);
    w.u64(m->job);
    w.u32(m->logical);
    Access::save_job(w, ctx, m->job_data);
    Access::save_mapping(w, ctx, m->mapping);
    w.u64(m->seq);
    return;
  }
  if (const auto* m = std::get_if<DispatchAck>(&body)) {
    w.u8(kBodyDispatchAck);
    w.u64(m->job);
    w.u64(m->seq);
    return;
  }
  if (const auto* s = std::get_if<std::string>(&body)) {
    w.u8(kBodyString);
    w.str(*s);
    return;
  }
  RTDS_REQUIRE_MSG(
      false, "checkpoint met an unsupported in-flight payload (variant index "
                 << body.index()
                 << "): only RTDS protocol messages are serializable — the "
                    "APSP exchange and the baseline policies are not "
                    "checkpointable");
}

MessageBody load_body(Reader& r, LoadContext& ctx) {
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case kBodyMono:
      return MessageBody{};
    case kBodyEnrollRequest: {
      EnrollRequest m;
      m.job = r.u64();
      m.deadline = r.f64();
      m.seq = r.u64();
      return m;
    }
    case kBodyEnrollReply: {
      EnrollReply m;
      m.job = r.u64();
      m.accepted = r.b();
      m.surplus = r.f64();
      m.seq = r.u64();
      return m;
    }
    case kBodyUnlock: {
      UnlockMsg m;
      m.job = r.u64();
      m.seq = r.u64();
      return m;
    }
    case kBodyValidateRequest: {
      ValidateRequest m;
      m.job = r.u64();
      m.job_data = Access::load_job(r, ctx);
      m.mapping = Access::load_mapping(r, ctx);
      m.seq = r.u64();
      return m;
    }
    case kBodyValidateReply: {
      ValidateReply m;
      m.job = r.u64();
      m.endorsable = load_u32_vec(r);
      m.seq = r.u64();
      return m;
    }
    case kBodyDispatch: {
      DispatchMsg m;
      m.job = r.u64();
      m.logical = r.u32();
      m.job_data = Access::load_job(r, ctx);
      m.mapping = Access::load_mapping(r, ctx);
      m.seq = r.u64();
      return m;
    }
    case kBodyDispatchAck: {
      DispatchAck m;
      m.job = r.u64();
      m.seq = r.u64();
      return m;
    }
    case kBodyString:
      return MessageBody{r.str()};
    default:
      r.fail("unknown message payload tag " + std::to_string(tag));
  }
}

}  // namespace

// ------------------------------------------------------------- node ----

void Access::save_node(Writer& w, SaveContext& ctx, const RtdsNode& n) {
  w.b(n.alive_);
  w.u64(n.epoch_);
  w.u64(n.lock_seq_);
  w.f64(n.lease_);
  w.b(n.start_pending_);

  w.b(n.lock_.has_value());
  if (n.lock_.has_value()) {
    w.u32(n.lock_->initiator);
    w.u64(n.lock_->job);
  }

  w.b(n.endorsement_.has_value());
  if (n.endorsement_.has_value()) {
    w.u64(n.endorsement_->job);
    save_job(w, ctx, n.endorsement_->job_data);
    save_mapping(w, ctx, n.endorsement_->mapping);
    save_u32_vec(w, n.endorsement_->endorsed);
  }

  w.u64(n.queue_.size());
  for (const auto& j : n.queue_) save_job(w, ctx, j);

  w.u64(n.active_.size());
  for (const auto& [job, init] : n.active_) {
    w.u64(job);
    save_job(w, ctx, init.job);
    w.u8(static_cast<std::uint8_t>(init.phase));
    w.u64(init.expected_replies);
    w.u64(init.received_replies);
    save_u32_vec(w, init.repliers);
    save_u32_vec(w, init.acs);
    w.u64(init.surplus_of.size());
    for (const auto& [site, surplus] : init.surplus_of) {
      w.u32(site);
      w.f64(surplus);
    }
    save_mapping(w, ctx, init.mapping);
    w.f64(init.acs_diameter);
    w.u64(init.endorsements.size());
    for (const auto& [site, procs] : init.endorsements) {
      w.u32(site);
      save_u32_vec(w, procs);
    }
    w.u64(init.validate_expected);
    w.b(init.timed_out);
  }

  w.u64(n.buffered_enrolls_.size());
  for (const auto& [from, msg] : n.buffered_enrolls_) {
    w.u32(from);
    w.u64(msg.job);
    w.f64(msg.deadline);
    w.u64(msg.seq);
  }

  w.u64(n.pending_completions_.size());
  for (const auto& [job, count] : n.pending_completions_) {
    w.u64(job);
    w.u32(count);
  }

  {
    const auto items = n.send_seq_.sorted_items();
    w.u64(items.size());
    for (const auto& [peer, seq] : items) {
      w.u32(peer);
      w.u64(seq);
    }
  }
  {
    const auto items = n.recv_window_.sorted_items();
    w.u64(items.size());
    for (const auto& [peer, window] : items) {
      w.u32(peer);
      save(w, window);
    }
  }

  w.u64(n.retries_.size());
  for (const auto& [key, retry] : n.retries_) {
    w.u64(key.first);
    w.u32(key.second);
    save_body(w, ctx, retry.payload);
    w.i64(retry.category);
    w.f64(retry.size_units);
    w.i64(retry.attempts);
    w.u64(retry.gen);
  }
  w.u64(n.retry_gen_);
  save(w, n.retry_rng_);
  for (const JobId j : n.recent_dispatch_) w.u64(j);
  w.u64(n.recent_dispatch_count_);

  save(w, n.sched_);
}

void Access::load_node(Reader& r, LoadContext& ctx, RtdsNode& n) {
  n.alive_ = r.b();
  n.epoch_ = r.u64();
  n.lock_seq_ = r.u64();
  n.lease_ = r.f64();
  n.start_pending_ = r.b();

  n.lock_.reset();
  if (r.b()) {
    // Field-at-a-time reads: argument evaluation order is unspecified, so
    // never nest two Reader calls in one expression.
    RtdsNode::Lock lock{};
    lock.initiator = r.u32();
    lock.job = r.u64();
    n.lock_ = lock;
  }

  n.endorsement_.reset();
  if (r.b()) {
    RtdsNode::OutstandingEndorsement e;
    e.job = r.u64();
    e.job_data = load_job(r, ctx);
    e.mapping = load_mapping(r, ctx);
    e.endorsed = load_u32_vec(r);
    n.endorsement_ = std::move(e);
  }

  n.queue_.clear();
  {
    const std::uint64_t count = r.u64();
    n.queue_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      auto job = load_job(r, ctx);
      if (job == nullptr) r.fail("queued job without a body");
      n.queue_.push_back(std::move(job));
    }
  }

  n.active_.clear();
  {
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const JobId id = r.u64();
      RtdsNode::Initiation init;
      init.job = load_job(r, ctx);
      const std::uint8_t phase = r.u8();
      if (phase > static_cast<std::uint8_t>(RtdsNode::Initiation::Phase::kDone))
        r.fail("initiation phase out of range");
      init.phase = static_cast<RtdsNode::Initiation::Phase>(phase);
      init.expected_replies = static_cast<std::size_t>(r.u64());
      init.received_replies = static_cast<std::size_t>(r.u64());
      init.repliers = load_u32_vec(r);
      init.acs = load_u32_vec(r);
      const std::uint64_t surplus_count = r.u64();
      init.surplus_of.reserve(surplus_count);
      for (std::uint64_t k = 0; k < surplus_count; ++k) {
        const SiteId site = r.u32();
        const double surplus = r.f64();
        init.surplus_of.emplace_back(site, surplus);
      }
      init.mapping = load_mapping(r, ctx);
      init.acs_diameter = r.f64();
      const std::uint64_t endorse_count = r.u64();
      init.endorsements.reserve(endorse_count);
      for (std::uint64_t k = 0; k < endorse_count; ++k) {
        const SiteId site = r.u32();
        auto procs = load_u32_vec(r);
        init.endorsements.emplace_back(site, std::move(procs));
      }
      init.validate_expected = static_cast<std::size_t>(r.u64());
      init.timed_out = r.b();
      n.active_.emplace(id, std::move(init));
    }
  }

  n.buffered_enrolls_.clear();
  {
    const std::uint64_t count = r.u64();
    n.buffered_enrolls_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const SiteId from = r.u32();
      EnrollRequest msg;
      msg.job = r.u64();
      msg.deadline = r.f64();
      msg.seq = r.u64();
      n.buffered_enrolls_.emplace_back(from, msg);
    }
  }

  n.pending_completions_.clear();
  {
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const JobId job = r.u64();
      n.pending_completions_[job] = r.u32();
    }
  }

  n.send_seq_ = FlatMap<SiteId, std::uint64_t>{};
  {
    const std::uint64_t count = r.u64();
    n.send_seq_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const SiteId peer = r.u32();
      n.send_seq_[peer] = r.u64();
    }
  }
  n.recv_window_ = FlatMap<SiteId, fault::DedupWindow>{};
  {
    const std::uint64_t count = r.u64();
    n.recv_window_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const SiteId peer = r.u32();
      load(r, n.recv_window_[peer]);
    }
  }

  n.retries_.clear();
  {
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const JobId job = r.u64();
      const SiteId peer = r.u32();
      RtdsNode::Retry retry;
      retry.payload = load_body(r, ctx);
      retry.category = static_cast<int>(r.i64());
      retry.size_units = r.f64();
      retry.attempts = static_cast<int>(r.i64());
      retry.gen = r.u64();
      n.retries_.emplace(std::make_pair(job, peer), std::move(retry));
    }
  }
  n.retry_gen_ = r.u64();
  load(r, n.retry_rng_);
  for (auto& j : n.recent_dispatch_) j = r.u64();
  n.recent_dispatch_count_ = static_cast<std::size_t>(r.u64());

  load(r, n.sched_);
}

// ----------------------------------------------------------- system ----

void Access::save_system(Writer& w, SaveContext& ctx, const RtdsSystem& sys) {
  RTDS_REQUIRE_MSG(sys.cfg_.record_events && sys.sim_.recording(),
                   "Snapshot::save requires SystemConfig::record_events = "
                   "true from construction (pending events would carry no "
                   "replay records)");

  w.begin_section("clock");
  w.f64(sys.sim_.now());
  w.u64(sys.sim_.next_seq());
  w.u64(sys.sim_.executed_events());
  w.end_section();

  // Repair-mutated routing tables (faults re-converge them in place).
  w.begin_section("tables");
  w.u64(sys.tables_.size());
  for (const auto& t : sys.tables_) save(w, t);
  w.end_section();

  w.begin_section("fault");
  w.b(sys.fault_state_ != nullptr);
  if (sys.fault_state_ != nullptr) save(w, *sys.fault_state_);
  w.end_section();

  w.begin_section("checker");
  w.b(sys.checker_ != nullptr);
  if (sys.checker_ != nullptr) save(w, *sys.checker_);
  w.end_section();

  w.begin_section("nodes");
  w.u64(sys.nodes_.size());
  for (const auto& n : sys.nodes_) save_node(w, ctx, *n);
  w.end_section();

  w.begin_section("transport");
  w.u8(static_cast<std::uint8_t>(sys.cfg_.transport_model));
  switch (sys.cfg_.transport_model) {
    case TransportModel::kIdeal: {
      const auto* t =
          static_cast<const IdealTransport*>(sys.transport_.get());
      save(w, t->stats_);
      break;
    }
    case TransportModel::kContended: {
      const auto* t =
          static_cast<const ContendedTransport*>(sys.transport_.get());
      save(w, t->stats_);
      w.f64(t->max_queueing_delay_);
      w.u64(t->link_busy_until_.size());
      for (const auto& [link, until] : t->link_busy_until_) {
        w.u32(link.first);
        w.u32(link.second);
        w.f64(until);
      }
      break;
    }
  }
  w.end_section();

  w.begin_section("system");
  save(w, sys.metrics_);
  w.u64(sys.decisions_.size());
  for (const auto& d : sys.decisions_) save(w, d);
  {
    const auto items = sys.job_messages_.sorted_items();
    w.u64(items.size());
    for (const auto& [job, hops] : items) {
      w.u64(job);
      w.u64(hops);
    }
  }
  {
    const auto items = sys.accepted_.sorted_items();
    w.u64(items.size());
    for (const auto& [job, track] : items) {
      w.u64(job);
      w.u64(track.tasks_expected);
      w.u64(track.tasks_done);
      w.f64(track.arrival);
      w.f64(track.completion);
      w.f64(track.deadline);
      w.b(track.failed);
    }
  }
  {
    const auto items = sys.early_failures_.map_.sorted_items();
    w.u64(items.size());
    for (const auto& [job, present] : items) {
      (void)present;
      w.u64(job);
    }
  }
  w.b(sys.ran_);
  w.f64(sys.last_stream_release_);
  w.end_section();
}

void Access::load_system(Reader& r, LoadContext& ctx, RtdsSystem& sys) {
  RTDS_REQUIRE_MSG(sys.cfg_.record_events && sys.sim_.recording(),
                   "snapshot restore target must be constructed with "
                   "SystemConfig::record_events = true");
  RTDS_REQUIRE_MSG(!sys.ran_,
                   "snapshot restore target must be freshly constructed "
                   "(this system already ran)");

  // Clock first: drop the constructor-scheduled events (the fault plan),
  // which the snapshot's own event section supersedes, then move the clock
  // so the re-posted events schedule legally.
  r.expect_section("clock");
  const Time now = r.f64();
  const std::uint64_t next_seq = r.u64();
  const std::uint64_t executed = r.u64();
  r.end_section();
  sys.sim_.clear_pending();
  sys.sim_.restore_clock(now, next_seq, executed);

  r.expect_section("tables");
  if (r.u64() != sys.tables_.size())
    r.fail("snapshot spans a different site count than this topology");
  for (auto& t : sys.tables_) load(r, t);
  r.end_section();
  // repairer_ stays null: it is pure per-repair scratch, rebuilt on the
  // next topology change exactly as a cold run would.

  r.expect_section("fault");
  {
    const bool has_fault = r.b();
    if (has_fault != (sys.fault_state_ != nullptr))
      r.fail("snapshot fault-plan presence does not match this config");
    if (has_fault) load(r, *sys.fault_state_);
  }
  r.end_section();

  r.expect_section("checker");
  {
    const bool has_checker = r.b();
    if (has_checker != (sys.checker_ != nullptr))
      r.fail(has_checker
                 ? "snapshot was taken with the invariant checker on — "
                   "enable check_invariants (--check-invariants) to resume"
                 : "snapshot was taken without the invariant checker — "
                   "disable check_invariants to resume");
    if (has_checker) load(r, *sys.checker_);
  }
  r.end_section();

  r.expect_section("nodes");
  if (r.u64() != sys.nodes_.size())
    r.fail("snapshot node count does not match this topology");
  for (auto& n : sys.nodes_) load_node(r, ctx, *n);
  r.end_section();

  r.expect_section("transport");
  if (r.u8() != static_cast<std::uint8_t>(sys.cfg_.transport_model))
    r.fail("snapshot transport model does not match this config");
  switch (sys.cfg_.transport_model) {
    case TransportModel::kIdeal: {
      auto* t = static_cast<IdealTransport*>(sys.transport_.get());
      load(r, t->stats_);
      break;
    }
    case TransportModel::kContended: {
      auto* t = static_cast<ContendedTransport*>(sys.transport_.get());
      load(r, t->stats_);
      t->max_queueing_delay_ = r.f64();
      t->link_busy_until_.clear();
      const std::uint64_t count = r.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        const SiteId a = r.u32();
        const SiteId b = r.u32();
        t->link_busy_until_[{a, b}] = r.f64();
      }
      break;
    }
  }
  r.end_section();

  r.expect_section("system");
  load(r, sys.metrics_);
  {
    const std::uint64_t count = r.u64();
    sys.decisions_.clear();
    sys.decisions_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      JobDecision d;
      load(r, d);
      sys.decisions_.push_back(d);
    }
  }
  {
    const std::uint64_t count = r.u64();
    sys.job_messages_ = FlatMap<JobId, std::uint64_t>{};
    sys.job_messages_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const JobId job = r.u64();
      sys.job_messages_[job] = r.u64();
    }
  }
  {
    const std::uint64_t count = r.u64();
    sys.accepted_ = FlatMap<JobId, RtdsSystem::JobTrack>{};
    sys.accepted_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const JobId job = r.u64();
      RtdsSystem::JobTrack& track = sys.accepted_[job];
      track.tasks_expected = static_cast<std::size_t>(r.u64());
      track.tasks_done = static_cast<std::size_t>(r.u64());
      track.arrival = r.f64();
      track.completion = r.f64();
      track.deadline = r.f64();
      track.failed = r.b();
    }
  }
  {
    const std::uint64_t count = r.u64();
    sys.early_failures_ = FlatSet<JobId>{};
    for (std::uint64_t i = 0; i < count; ++i)
      sys.early_failures_.insert(r.u64());
  }
  sys.ran_ = r.b();
  sys.last_stream_release_ = r.f64();
  r.end_section();
}

// ----------------------------------------------------------- events ----

void Access::save_events(Writer& w, SaveContext& ctx, const RtdsSystem& sys) {
  const Simulator& sim = sys.sim_;
  w.begin_section("events");
  const auto pending = sim.pending_events();
  w.u64(pending.size());
  for (const auto& pe : pending) {
    const EventRecord* rec = sim.record_of(pe.seq);
    RTDS_REQUIRE_MSG(rec != nullptr,
                     "pending event seq " << pe.seq << " at t=" << pe.at
                                          << " carries no replay record — "
                                             "this event source does not "
                                             "support checkpointing");
    w.f64(pe.at);
    w.u8(static_cast<std::uint8_t>(rec->kind));
    w.u8(rec->small);
    w.u32(rec->site);
    w.u32(rec->peer);
    w.u32(rec->dest);
    w.u64(rec->job);
    w.u32(rec->task);
    w.u64(rec->a);
    w.f64(rec->x);
    w.f64(rec->y);
    w.b(rec->job_ref != nullptr);
    if (rec->job_ref != nullptr)
      save_job(w, ctx, std::static_pointer_cast<const Job>(rec->job_ref));
    w.b(rec->payload != nullptr);
    if (rec->payload != nullptr)
      save_body(w, ctx,
                *std::static_pointer_cast<const MessageBody>(rec->payload));
  }
  w.end_section();
}

void Access::load_events(Reader& r, LoadContext& ctx, RtdsSystem& sys) {
  using Kind = EventRecord::Kind;
  Simulator& sim = sys.sim_;
  IdealTransport* ideal =
      sys.cfg_.transport_model == TransportModel::kIdeal
          ? static_cast<IdealTransport*>(sys.transport_.get())
          : nullptr;
  ContendedTransport* cont =
      sys.cfg_.transport_model == TransportModel::kContended
          ? static_cast<ContendedTransport*>(sys.transport_.get())
          : nullptr;

  r.expect_section("events");
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Time at = r.f64();
    EventRecord rec;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(Kind::kContendedHop))
      r.fail("unknown event kind " + std::to_string(kind));
    rec.kind = static_cast<Kind>(kind);
    rec.small = r.u8();
    rec.site = r.u32();
    rec.peer = r.u32();
    rec.dest = r.u32();
    rec.job = r.u64();
    rec.task = r.u32();
    rec.a = r.u64();
    rec.x = r.f64();
    rec.y = r.f64();
    if (r.b()) rec.job_ref = load_job(r, ctx);
    if (r.b())
      rec.payload = std::make_shared<const MessageBody>(load_body(r, ctx));

    const auto node_of = [&](SiteId s) -> RtdsNode* {
      if (s >= sys.nodes_.size()) r.fail("event site outside the topology");
      return sys.nodes_[s].get();
    };
    const auto body_of = [&]() -> std::shared_ptr<const MessageBody> {
      auto p = std::static_pointer_cast<const MessageBody>(rec.payload);
      if (p == nullptr) r.fail("message event without a payload");
      return p;
    };

    // Re-post through the entry point the original closure called; each
    // draws a fresh sequence >= the saved next_seq, in saved execution
    // order, so ties break exactly as before.
    switch (rec.kind) {
      case Kind::kNone:
        r.fail("event record without a kind");
      case Kind::kFault: {
        fault::FaultEvent ev;
        ev.at = rec.x;
        ev.kind = static_cast<fault::FaultKind>(rec.small);
        ev.a = rec.site;
        ev.b = rec.peer;
        sim.schedule_at(at, [&sys, ev]() { sys.apply_fault(ev); });
        break;
      }
      case Kind::kArrival: {
        auto job = std::static_pointer_cast<const Job>(rec.job_ref);
        if (job == nullptr) r.fail("arrival event without a job");
        RtdsNode* node = node_of(rec.site);
        sim.schedule_at(at, [node, job]() { node->submit(job); });
        break;
      }
      case Kind::kStreamArrival: {
        auto job = std::static_pointer_cast<const Job>(rec.job_ref);
        if (job == nullptr) r.fail("stream arrival event without a job");
        node_of(rec.site);  // range check only
        JobArrival a{rec.site, std::move(job)};
        sim.schedule_at(at, [&sys, a]() { sys.fire_stream_arrival(a); });
        break;
      }
      case Kind::kEnrollTimeout: {
        RtdsNode* node = node_of(rec.site);
        sim.schedule_at(
            at, [node, job = rec.job]() { node->on_enroll_timeout(job); });
        break;
      }
      case Kind::kMapper: {
        RtdsNode* node = node_of(rec.site);
        sim.schedule_at(at, [node, job = rec.job]() { node->run_mapper(job); });
        break;
      }
      case Kind::kValidateTimeout: {
        RtdsNode* node = node_of(rec.site);
        sim.schedule_at(
            at, [node, job = rec.job]() { node->on_validate_timeout(job); });
        break;
      }
      case Kind::kRetryTimer: {
        RtdsNode* node = node_of(rec.site);
        sim.schedule_at(at, [node, job = rec.job, peer = rec.peer,
                             gen = rec.a, rto = rec.x]() {
          node->on_retry_timer(job, peer, gen, rto);
        });
        break;
      }
      case Kind::kCompletion: {
        RtdsNode* node = node_of(rec.site);
        sim.schedule_at(at, [node, job = rec.job, task = rec.task,
                             end = rec.x, epoch = rec.a]() {
          node->fire_completion(job, task, end, epoch);
        });
        break;
      }
      case Kind::kLeaseExpiry: {
        RtdsNode* node = node_of(rec.site);
        sim.schedule_at(
            at, [node, seq = rec.a]() { node->on_lease_expired(seq); });
        break;
      }
      case Kind::kStartNext: {
        RtdsNode* node = node_of(rec.site);
        sim.schedule_at(at, [node]() { node->fire_start_next(); });
        break;
      }
      case Kind::kSelfDeliver: {
        auto p = body_of();
        if (ideal != nullptr) {
          sim.schedule_at(at,
                          [t = ideal, from = rec.site, to = rec.peer, p]() {
                            t->deliver_self(from, to, *p);
                          });
        } else {
          sim.schedule_at(at,
                          [t = cont, from = rec.site, to = rec.peer, p]() {
                            t->deliver_self(from, to, *p);
                          });
        }
        break;
      }
      case Kind::kDeliver: {
        if (ideal == nullptr)
          r.fail("ideal-transport event under a contended config");
        auto p = body_of();
        sim.schedule_at(at, [t = ideal, from = rec.site, to = rec.peer, p]() {
          t->deliver(from, to, *p);
        });
        break;
      }
      case Kind::kContendedInject: {
        if (cont == nullptr)
          r.fail("contended-transport event under an ideal config");
        auto p = body_of();
        sim.schedule_at(at, [t = cont, from = rec.site, to = rec.peer, p,
                             size = rec.y]() { t->forward(from, to, p, size); });
        break;
      }
      case Kind::kContendedHop: {
        if (cont == nullptr)
          r.fail("contended-transport event under an ideal config");
        auto p = body_of();
        sim.schedule_at(at, [t = cont, origin = rec.site, cur = rec.peer,
                             to = rec.dest, p, size = rec.y]() {
          t->hop(origin, cur, to, p, size);
        });
        break;
      }
    }
    // Re-annotate so the resumed run can itself be snapshotted.
    sim.annotate(std::move(rec));
  }
  r.end_section();
}

std::uint64_t Access::config_hash_of(const RtdsSystem& sys) {
  return config_hash(sys.topo_, sys.cfg_);
}

// --------------------------------------------------------- Snapshot ----

namespace {

void write_snapshot(Writer& w, const RtdsSystem& sys,
                    const SnapshotExtras& extras) {
  SaveContext ctx;
  Access::save_system(w, ctx, sys);
  Access::save_events(w, ctx, sys);

  w.begin_section("obs");
  w.b(extras.metrics != nullptr);
  if (extras.metrics != nullptr) Access::save(w, *extras.metrics);
  w.end_section();

  w.begin_section("collector");
  w.b(extras.collector != nullptr);
  if (extras.collector != nullptr) Access::save(w, *extras.collector);
  w.end_section();

  w.begin_section("source");
  w.b(extras.source != nullptr);
  if (extras.source != nullptr) extras.source->save_state(w);
  w.end_section();
}

void read_snapshot(Reader& r, RtdsSystem& sys, const SnapshotExtras& extras) {
  r.require_config_hash(Access::config_hash_of(sys));
  LoadContext ctx;
  Access::load_system(r, ctx, sys);
  Access::load_events(r, ctx, sys);

  r.expect_section("obs");
  {
    const bool present = r.b();
    if (present && extras.metrics == nullptr)
      r.fail("snapshot carries obs metrics but no buffer was supplied");
    if (!present && extras.metrics != nullptr)
      r.fail("snapshot carries no obs metrics but a buffer was supplied");
    if (present) Access::load(r, *extras.metrics);
  }
  r.end_section();

  r.expect_section("collector");
  {
    const bool present = r.b();
    if (present && extras.collector == nullptr)
      r.fail("snapshot carries a steady-state collector but none was "
             "supplied");
    if (!present && extras.collector != nullptr)
      r.fail("snapshot carries no steady-state collector but one was "
             "supplied");
    if (present) Access::load(r, *extras.collector);
  }
  r.end_section();

  r.expect_section("source");
  {
    const bool present = r.b();
    if (present && extras.source == nullptr)
      r.fail("snapshot carries an arrival source but none was supplied");
    if (!present && extras.source != nullptr)
      r.fail("snapshot carries no arrival source but one was supplied");
    if (present) extras.source->load_state(r);
  }
  r.end_section();
}

}  // namespace

std::string Snapshot::save(const RtdsSystem& sys,
                           const SnapshotExtras& extras) {
  Writer w(kFormatVersion, Access::config_hash_of(sys));
  write_snapshot(w, sys, extras);
  return w.finish();
}

void Snapshot::save_file(const RtdsSystem& sys, const std::string& path,
                         const SnapshotExtras& extras) {
  Writer w(kFormatVersion, Access::config_hash_of(sys));
  write_snapshot(w, sys, extras);
  w.write_file(path);
}

void Snapshot::load(std::string bytes, RtdsSystem& sys,
                    const SnapshotExtras& extras) {
  Reader r(std::move(bytes), "snapshot");
  read_snapshot(r, sys, extras);
}

void Snapshot::load_file(const std::string& path, RtdsSystem& sys,
                         const SnapshotExtras& extras) {
  Reader r = Reader::from_file(path, "snapshot");
  read_snapshot(r, sys, extras);
}

}  // namespace rtds::snap
