// Deterministic full-state checkpoints of a live RtdsSystem
// (DESIGN.md §14).
//
// A snapshot captures everything the remaining run depends on: the
// simulator clock and every pending event (via the EventRecord side
// channel), the repair-mutated routing tables, the fault state and its
// perturbation RNG, every node's protocol state machine (locks, leases,
// dedup windows, retransmit slots, admission queues, scheduling plans),
// the transport queues and the run's accumulated metrics. Restoring into
// a freshly constructed RtdsSystem of the *same* (topology, config) —
// enforced by the header's config hash — then stepping to completion
// produces byte-identical results to the uninterrupted run (pinned by
// tests/snapshot_test.cpp).
//
// Requirements on the saved system:
//  * SystemConfig::record_events was true from construction (otherwise
//    pending events carry no replayable record and save() throws).
//  * The restore target is freshly constructed and never stepped.
//
// The caller drives the run through the checkpointable phases
// (RtdsSystem::start / step_events / run_events_until / finish):
//
//   // save side                         // resume side
//   sys.start(arrivals);                 Snapshot::load_file(path, sys2);
//   sys.step_events(100'000);            while (sys2.step_events(N)) {}
//   Snapshot::save_file(sys, path);      sys2.finish();
//
// Open-system runs additionally pass the ArrivalSource (its generator
// state rides in the snapshot) and re-install the pull function with
// RtdsSystem::set_stream_source after load.
#pragma once

#include <string>

namespace rtds {
class RtdsSystem;
}
namespace rtds::obs {
class MetricsBuffer;
}
namespace rtds::load {
class ArrivalSource;
class SteadyStateCollector;
}  // namespace rtds::load

namespace rtds::snap {

/// Sidecar state checkpointed alongside the system. All optional: pass the
/// same set on save and load — a snapshot that carries (or lacks) a
/// sidecar the resumer lacks (or expects) fails loudly, because the
/// resumed run's outputs could not match the uninterrupted run's.
struct SnapshotExtras {
  /// Per-run obs metrics buffer (the JSONL determinism surface).
  obs::MetricsBuffer* metrics = nullptr;
  /// Open-system steady-state windows.
  load::SteadyStateCollector* collector = nullptr;
  /// Open-system arrival generator (save: serialized; load: restored).
  load::ArrivalSource* source = nullptr;
};

struct Snapshot {
  /// Serializes the full live state of `sys`. Throws ContractViolation if
  /// recording is off or any pending event carries no replay record.
  static std::string save(const RtdsSystem& sys,
                          const SnapshotExtras& extras = {});
  /// save() + atomic publish (write to `path`.tmp, rename over `path`).
  static void save_file(const RtdsSystem& sys, const std::string& path,
                        const SnapshotExtras& extras = {});

  /// Restores a snapshot into `sys`, which must be freshly constructed
  /// from the same (topology, config) with record_events on. Rejects
  /// wrong magic, version skew, config-hash mismatch, checksum failures
  /// and truncation with ContractViolations naming section and offset.
  static void load(std::string bytes, RtdsSystem& sys,
                   const SnapshotExtras& extras = {});
  static void load_file(const std::string& path, RtdsSystem& sys,
                        const SnapshotExtras& extras = {});
};

}  // namespace rtds::snap
