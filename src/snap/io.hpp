// Binary container format for snapshots and journals (DESIGN.md §14).
//
// A file is a fixed header followed by named sections:
//
//   header:   magic "RTDSNAP\0" (8 bytes)
//             u32 format version
//             u64 config hash (what the payload is only valid against)
//   section:  u8  name length (> 0; 0 is the end-of-file marker)
//             name bytes
//             u64 body length
//             u64 checksum of the body (word-folded FNV-1a)
//             body bytes
//
// Everything is little-endian fixed-width; doubles travel as their IEEE-754
// bit pattern, so a round trip is bit-exact by construction. Every decode
// failure — wrong magic, version skew, config-hash mismatch, a checksum
// that does not match, or a read past a section body — throws
// ContractViolation naming the section and the absolute byte offset, so a
// corrupt file says *where* it broke instead of crashing downstream.
//
// Writers buffer in memory and publish with an atomic rename (write_file),
// so a crash mid-save can never leave a half-written snapshot under the
// final name. Journals instead append whole sections to an open file and
// tolerate exactly one truncated *tail* section (the artifact of a SIGKILL
// mid-append); a damaged *complete* section is still a hard error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace rtds::snap {

inline constexpr char kMagic[8] = {'R', 'T', 'D', 'S', 'N', 'A', 'P', '\0'};
// v2: InvariantChecker section grew the seq-monotone map and shed-queue
// accounting counters (PR 10) — old snapshots are rejected, not misread.
inline constexpr std::uint32_t kFormatVersion = 2;

/// FNV-1a 64-bit over a byte range (the building block for config hashes).
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = 14695981039346656037ull);

/// The per-section checksum: FNV-1a folded 8 little-endian bytes per
/// multiply instead of 1. Byte-wise FNV is a serial ~1 byte/cycle chain,
/// which made checksum verification the dominant cost of opening large
/// sections (warm-start entries, full snapshots); word folding keeps the
/// single-bit-flip guarantee (xor-then-multiply-by-odd is injective per
/// step) at ~8x the throughput.
std::uint64_t section_checksum(const void* data, std::size_t size);

/// Incremental config-hash helper: absorb typed values into an FNV state.
class HashAbsorber {
 public:
  void u64(std::uint64_t v);
  void f64(double v);
  void str(std::string_view s);
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
};

class Writer {
 public:
  Writer(std::uint32_t version, std::uint64_t config_hash);

  void begin_section(std::string_view name);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void b(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);
  void bytes(const void* data, std::size_t size);

  /// Bulk fixed-width writes: identical bytes to calling the scalar form
  /// in a loop, one append on little-endian hosts. The decode side of
  /// these is where warm-start hits and snapshot loads spend their time.
  void u32_array(const std::uint32_t* v, std::size_t n);
  void u64_array(const std::uint64_t* v, std::size_t n);
  void f64_array(const double* v, std::size_t n);

  /// The finished container (appends the end-of-file marker once).
  const std::string& finish();

  /// finish() + atomic publish: writes to `path`.tmp and renames over
  /// `path`, so readers only ever see complete files.
  void write_file(const std::string& path);

 private:
  std::string out_;
  std::string section_name_;
  std::size_t body_start_ = 0;  ///< offset of the current section body
  bool finished_ = false;
};

/// What try_next_section found at the read cursor.
enum class SectionStatus {
  kOk,         ///< a complete, checksum-verified section
  kEnd,        ///< the end-of-file marker (or clean EOF, journal mode)
  kTruncated,  ///< an incomplete tail section (crash artifact)
};

class Reader {
 public:
  /// Parses and validates the header; throws on wrong magic or a version
  /// newer than this build understands.
  explicit Reader(std::string data, std::string_view what = "snapshot");

  /// Reads the whole file (throws ContractViolation when unreadable).
  static Reader from_file(const std::string& path,
                          std::string_view what = "snapshot");

  std::uint32_t version() const { return version_; }
  std::uint64_t config_hash() const { return config_hash_; }

  /// Requires the configuration hash recorded in the header to equal
  /// `expected` (the caller recomputed it from its own config).
  void require_config_hash(std::uint64_t expected) const;

  /// Opens the next section and requires it to be `name`; verifies the
  /// checksum over the whole body before any field is decoded.
  void expect_section(std::string_view name);

  /// Journal-mode iteration: advances to the next section, verifying its
  /// checksum. kTruncated means the file ends inside the section header or
  /// body — the tail a killed writer leaves — and the cursor stops there.
  SectionStatus try_next_section(std::string& name);

  /// Requires the current section body to be fully consumed.
  void end_section();

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool b() { return u8() != 0; }
  std::string str();

  /// Bulk fixed-width reads: one bounds check + one memcpy on
  /// little-endian hosts, equivalent to the scalar form in a loop.
  void u32_array(std::uint32_t* out, std::size_t n);
  void u64_array(std::uint64_t* out, std::size_t n);
  void f64_array(double* out, std::size_t n);

  /// Bytes left in the current section body.
  std::size_t section_remaining() const { return section_end_ - pos_; }

  /// Throws a ContractViolation naming the current section and offset.
  [[noreturn]] void fail(const std::string& why) const;

 private:
  void need(std::size_t n);  ///< bounds check against the section body
  /// Reads the section header at pos_; returns kTruncated/kEnd without
  /// consuming on a short or final file.
  SectionStatus open_section(std::string& name, bool verify_checksum);

  std::string data_;
  std::string what_;
  std::size_t pos_ = 0;
  std::uint32_t version_ = 0;
  std::uint64_t config_hash_ = 0;
  std::string section_;
  std::size_t section_end_ = 0;
};

}  // namespace rtds::snap
