// Message transport over the simulated topology.
//
// Two delivery primitives match the two communication patterns in the
// paper:
//  * send_adjacent — one physical link hop (used by the distributed
//    Bellman–Ford flooding during PCS construction, §7);
//  * send_routed — a logical end-to-end send along an already-discovered
//    minimum-delay path inside a sphere (enrollment, trial-mapping
//    broadcast, validation replies, dispatch; §§8–11). It arrives after the
//    path delay and is charged `hops` link-messages, so message accounting
//    reflects real link usage, which is what the paper's "limited number of
//    communication links" claim is about.
//
// Payloads are MessageBody — a closed variant over every protocol struct
// (core/messages.hpp) — so a send moves the body straight into the
// delivery event's inline storage: no heap allocation per message. Every
// send carries a small integer category for per-message-type accounting.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/messages.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace rtds::fault {
class FaultState;
}

namespace rtds {

/// obs hook behind MessageStats::record — every send in the tree funnels
/// through it, so this one call gives the observability layer its
/// per-message-category traffic counters (net.sends / net.link_messages /
/// net.msg.<category>.*). Out of line: it touches the metric-id table,
/// which would bloat the inlined hot path for the common unbound case.
void obs_count_message(int category, std::uint64_t hops);

/// Per-category message counters. Categories are small dense integers
/// (protocol 1–6, baselines 11–23, APSP 100), so the table is a flat
/// array indexed by category — the per-send increment is two adds, not a
/// std::map walk. `by_category` keeps the map-shaped read API (at /
/// count / iteration over recorded categories, ascending).
struct MessageStats {
  struct Entry {
    std::uint64_t sends = 0;          ///< logical sends
    std::uint64_t link_messages = 0;  ///< hop-weighted physical messages
  };

  class CategoryCounters {
   public:
    /// One past the largest category in the tree (kApspMessageCategory).
    static constexpr int kCapacity = 101;

    Entry& operator[](int category) {
      const auto i = checked(category);
      recorded_[i] = true;
      return slots_[i];
    }

    const Entry& at(int category) const {
      const auto i = checked(category);
      RTDS_REQUIRE_MSG(recorded_[i], "category " << category
                                                 << " never recorded");
      return slots_[i];
    }

    std::size_t count(int category) const {
      return recorded_[checked(category)] ? 1u : 0u;
    }

    void clear() {
      slots_.fill(Entry{});
      recorded_.fill(false);
    }

    /// Iterates (category, entry) over recorded categories in ascending
    /// category order — the iteration order of the std::map it replaces.
    class const_iterator {
     public:
      const_iterator(const CategoryCounters* c, int i) : c_(c), i_(i) {
        skip();
      }
      std::pair<int, const Entry&> operator*() const {
        return {i_, c_->slots_[static_cast<std::size_t>(i_)]};
      }
      const_iterator& operator++() {
        ++i_;
        skip();
        return *this;
      }
      bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
      bool operator==(const const_iterator& o) const { return i_ == o.i_; }

     private:
      void skip() {
        while (i_ < kCapacity && !c_->recorded_[static_cast<std::size_t>(i_)])
          ++i_;
      }
      const CategoryCounters* c_;
      int i_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, kCapacity}; }

   private:
    static std::size_t checked(int category) {
      RTDS_REQUIRE_MSG(category >= 0 && category < kCapacity,
                       "message category " << category << " out of range");
      return static_cast<std::size_t>(category);
    }

    std::array<Entry, kCapacity> slots_{};
    std::array<bool, kCapacity> recorded_{};
  };

  CategoryCounters by_category;
  std::uint64_t total_sends = 0;
  std::uint64_t total_link_messages = 0;
  /// Sends lost to injected faults (dead destination, downed link, drop
  /// coin, vanished route). Always 0 without a fault plan.
  std::uint64_t messages_dropped = 0;
  /// Extra copies injected by the duplication fault process. Always 0
  /// without a fault plan.
  std::uint64_t messages_duplicated = 0;

  void record(int category, std::uint64_t hops) {
    auto& e = by_category[category];
    ++e.sends;
    e.link_messages += hops;
    ++total_sends;
    total_link_messages += hops;
#if RTDS_OBS_ENABLED
    if (obs::current() != nullptr) obs_count_message(category, hops);
#endif
  }

  void clear() {
    by_category.clear();
    total_sends = 0;
    total_link_messages = 0;
    messages_dropped = 0;
    messages_duplicated = 0;
  }
};

/// Delivers typed messages between sites with simulated delays.
class SimNetwork {
 public:
  /// (from, payload) -> handled by the receiving site's handler.
  using Handler = std::function<void(SiteId from, const MessageBody& payload)>;

  SimNetwork(Simulator& sim, const Topology& topo);

  const Topology& topology() const { return topo_; }
  Simulator& simulator() { return sim_; }

  /// Registers the receive callback for a site (exactly once per site).
  void set_handler(SiteId site, Handler handler);

  /// Sends one hop across an existing physical link; arrives after the link
  /// delay. Charged 1 link-message.
  void send_adjacent(SiteId from, SiteId to, MessageBody payload,
                     int category = 0);

  /// Sends along a known multi-hop route: arrives after `path_delay`,
  /// charged `hops` link-messages. The caller (protocol layer) supplies the
  /// delay/hops it learned during PCS construction; hops must be >= 1 for
  /// distinct sites.
  void send_routed(SiteId from, SiteId to, Time path_delay, std::size_t hops,
                   MessageBody payload, int category = 0);

  /// Local self-delivery after `delay` (e.g. mapper compute time). Charged
  /// zero link-messages.
  void send_local(SiteId site, Time delay, MessageBody payload,
                  int category = 0);

  /// Installs a fault view (nullptr = faultless, the default). With faults
  /// installed every send consults it: the drop coin, duplication coin,
  /// extra delay and reorder jitter are sampled at send time, adjacency
  /// additionally requires the link up at send time, and delivery is
  /// suppressed when the destination is down at arrival time. Dropped
  /// sends still count their link messages (the traffic was emitted) and
  /// increment MessageStats::messages_dropped; a duplicated send delivers
  /// twice and increments MessageStats::messages_duplicated.
  void set_fault_state(fault::FaultState* faults) { faults_ = faults; }

  MessageStats& stats() { return stats_; }
  const MessageStats& stats() const { return stats_; }

 private:
  void deliver(SiteId from, SiteId to, Time delay, MessageBody payload);
  /// Enqueues one delivery event at `delay` (deliver() may call it twice
  /// for a duplicated send, each copy with its own sampled jitter).
  void schedule_delivery(SiteId from, SiteId to, Time delay,
                         MessageBody payload);

  Simulator& sim_;
  const Topology& topo_;
  std::vector<Handler> handlers_;
  MessageStats stats_;
  fault::FaultState* faults_ = nullptr;
};

}  // namespace rtds
