// Message transport over the simulated topology.
//
// Two delivery primitives match the two communication patterns in the
// paper:
//  * send_adjacent — one physical link hop (used by the distributed
//    Bellman–Ford flooding during PCS construction, §7);
//  * send_routed — a logical end-to-end send along an already-discovered
//    minimum-delay path inside a sphere (enrollment, trial-mapping
//    broadcast, validation replies, dispatch; §§8–11). It arrives after the
//    path delay and is charged `hops` link-messages, so message accounting
//    reflects real link usage, which is what the paper's "limited number of
//    communication links" claim is about.
//
// Payloads are type-erased (std::any); the protocol layers define their own
// message structs. Every send carries a small integer category for
// per-message-type accounting.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace rtds {

/// Per-category message counters.
struct MessageStats {
  struct Entry {
    std::uint64_t sends = 0;          ///< logical sends
    std::uint64_t link_messages = 0;  ///< hop-weighted physical messages
  };

  std::map<int, Entry> by_category;
  std::uint64_t total_sends = 0;
  std::uint64_t total_link_messages = 0;

  void record(int category, std::uint64_t hops) {
    auto& e = by_category[category];
    ++e.sends;
    e.link_messages += hops;
    ++total_sends;
    total_link_messages += hops;
  }

  void clear() {
    by_category.clear();
    total_sends = 0;
    total_link_messages = 0;
  }
};

/// Delivers type-erased messages between sites with simulated delays.
class SimNetwork {
 public:
  /// (from, payload) -> handled by the receiving site's handler.
  using Handler = std::function<void(SiteId from, const std::any& payload)>;

  SimNetwork(Simulator& sim, const Topology& topo);

  const Topology& topology() const { return topo_; }
  Simulator& simulator() { return sim_; }

  /// Registers the receive callback for a site (exactly once per site).
  void set_handler(SiteId site, Handler handler);

  /// Sends one hop across an existing physical link; arrives after the link
  /// delay. Charged 1 link-message.
  void send_adjacent(SiteId from, SiteId to, std::any payload,
                     int category = 0);

  /// Sends along a known multi-hop route: arrives after `path_delay`,
  /// charged `hops` link-messages. The caller (protocol layer) supplies the
  /// delay/hops it learned during PCS construction; hops must be >= 1 for
  /// distinct sites.
  void send_routed(SiteId from, SiteId to, Time path_delay, std::size_t hops,
                   std::any payload, int category = 0);

  /// Local self-delivery after `delay` (e.g. mapper compute time). Charged
  /// zero link-messages.
  void send_local(SiteId site, Time delay, std::any payload, int category = 0);

  MessageStats& stats() { return stats_; }
  const MessageStats& stats() const { return stats_; }

 private:
  void deliver(SiteId from, SiteId to, Time delay, std::any payload);

  Simulator& sim_;
  const Topology& topo_;
  std::vector<Handler> handlers_;
  MessageStats stats_;
};

}  // namespace rtds
