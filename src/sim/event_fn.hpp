// Small-buffer-optimized move-only `void()` callables for simulator events.
//
// Every protocol message used to cost a heap allocation just to enter the
// event queue, because std::function heap-allocates any capture larger than
// two pointers. BasicEventFn<N> instead stores captures up to N bytes in
// place and falls back to the heap only for oversized captures, which no
// hot-path closure has. Two instantiations cover the event population:
//
//  * SmallEventFn (16-byte buffer, 24-byte object) — timers, completion
//    notifications, "this plus a word or two" closures: the vast majority
//    of events, packed nearly three per cache line in the slab;
//  * EventFn (104-byte buffer) — sized so the SimNetwork/Transport delivery
//    closures (receiver state + a full MessageBody) fit inline.
//
// Move semantics are "relocate": move-construct into the destination and
// destroy the source, driven through a per-type ops table (one static per
// instantiated callable type, no RTTI, no virtual dispatch).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rtds {

template <std::size_t InlineCapacity>
class BasicEventFn {
 public:
  static constexpr std::size_t kInlineCapacity = InlineCapacity;
  /// Small buffers only promise pointer alignment — that is what keeps the
  /// object at 8 + InlineCapacity bytes instead of padding to 16.
  static constexpr std::size_t kAlign =
      InlineCapacity >= 2 * alignof(std::max_align_t)
          ? alignof(std::max_align_t)
          : alignof(void*);

  BasicEventFn() = default;
  BasicEventFn(std::nullptr_t) {}  // NOLINT: mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicEventFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  BasicEventFn(F&& f) {  // NOLINT: implicit, like std::function
    emplace_unchecked(std::forward<F>(f));
  }

  BasicEventFn(BasicEventFn&& other) noexcept { steal(other); }

  BasicEventFn& operator=(BasicEventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  BasicEventFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  BasicEventFn(const BasicEventFn&) = delete;
  BasicEventFn& operator=(const BasicEventFn&) = delete;

  ~BasicEventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const BasicEventFn& f, std::nullptr_t) { return !f; }
  friend bool operator!=(const BasicEventFn& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

  void operator()() { ops_->invoke(storage_); }

  /// Constructs the callable directly in this object's storage — the slab
  /// fast path, which skips the temporary a construct-then-move-assign
  /// would cost.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicEventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    emplace_unchecked(std::forward<F>(f));
  }

  /// True when F's captures live in the inline buffer (no allocation).
  template <typename F>
  static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<F>>();
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= kAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename F>
  void emplace_unchecked(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      static_assert(sizeof(Fn*) <= kInlineCapacity);
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) noexcept {
          Fn* s = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* p) noexcept { delete *static_cast<Fn**>(p); },
    };
    return &ops;
  }

  void steal(BasicEventFn& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kAlign) unsigned char storage_[kInlineCapacity];
};

using EventFn = BasicEventFn<96>;
using SmallEventFn = BasicEventFn<16>;

static_assert(sizeof(SmallEventFn) == 24);
static_assert(sizeof(EventFn) == 112);

}  // namespace rtds
