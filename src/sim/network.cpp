#include "sim/network.hpp"

#include <array>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace rtds {

// The zero-allocation contract: a MessageBody moves without throwing (so
// delivery closures qualify for EventFn's inline buffer) and the closure
// below actually fits that buffer.
static_assert(std::is_nothrow_move_constructible_v<MessageBody>,
              "MessageBody must be nothrow-movable for inline event storage");

namespace {

/// Stable obs name for every category in the tree's closed set (see the
/// MessageStats comment: protocol 1–6, baselines 11–23, APSP 100).
/// msg_category_name only covers the protocol six; the baseline and APSP
/// constants are TU-local by design, so the accounting choke point names
/// them here. Unknown categories degrade to "catN", never fail.
std::string obs_category_name(int category) {
  switch (category) {
    case 1: return "enroll";
    case 2: return "enroll_reply";
    case 3: return "unlock";
    case 4: return "validate";
    case 5: return "validate_reply";
    case 6: return "dispatch";
    case 7: return "dispatch_ack";
    case 11: return "bid_request";
    case 12: return "bid_reply";
    case 13: return "offer";
    case 14: return "offer_reply";
    case 21: return "surplus_flood";
    case 22: return "focused_offer";
    case 23: return "focused_reply";
    case 100: return "apsp";
    default: return "cat" + std::to_string(category);
  }
}

}  // namespace

#if RTDS_OBS_ENABLED
void obs_count_message(int category, std::uint64_t hops) {
  obs::Context* ctx = obs::current();
  if (ctx == nullptr || ctx->metrics == nullptr) return;
  struct Ids {
    obs::MetricId sends, links;
  };
  static const auto table = [] {
    std::array<Ids, MessageStats::CategoryCounters::kCapacity> t;
    auto& reg = obs::Registry::instance();
    for (int c = 0; c < MessageStats::CategoryCounters::kCapacity; ++c) {
      const std::string base = "net.msg." + obs_category_name(c);
      t[static_cast<std::size_t>(c)] = {reg.counter(base + ".sends"),
                                        reg.counter(base + ".link_messages")};
    }
    return t;
  }();
  static const obs::MetricId total_sends =
      obs::Registry::instance().counter("net.sends");
  static const obs::MetricId total_links =
      obs::Registry::instance().counter("net.link_messages");
  obs::MetricsBuffer& m = *ctx->metrics;
  if (category >= 0 &&
      category < MessageStats::CategoryCounters::kCapacity) {
    const Ids& ids = table[static_cast<std::size_t>(category)];
    m.add(ids.sends, 1);
    m.add(ids.links, hops);
  }
  m.add(total_sends, 1);
  m.add(total_links, hops);
}
#else
void obs_count_message(int, std::uint64_t) {}
#endif

namespace {

/// Trace-name table for message instants: tracer events store the name
/// pointer, so the strings must be process-lived, not per-event.
const char* obs_category_cstr(int category) {
  static const auto& table = *[] {
    auto* t = new std::array<std::string,
                             MessageStats::CategoryCounters::kCapacity>();
    for (int c = 0; c < MessageStats::CategoryCounters::kCapacity; ++c)
      (*t)[static_cast<std::size_t>(c)] = obs_category_name(c);
    return t;
  }();
  if (category >= 0 && category < MessageStats::CategoryCounters::kCapacity)
    return table[static_cast<std::size_t>(category)].c_str();
  return "cat?";
}

}  // namespace

SimNetwork::SimNetwork(Simulator& sim, const Topology& topo)
    : sim_(sim), topo_(topo), handlers_(topo.site_count()) {}

void SimNetwork::set_handler(SiteId site, Handler handler) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(handler != nullptr);
  handlers_[site] = std::move(handler);
}

void SimNetwork::send_adjacent(SiteId from, SiteId to, MessageBody payload,
                               int category) {
  RTDS_REQUIRE_MSG(topo_.adjacent(from, to),
                   "send_adjacent requires a link " << from << "--" << to);
  stats_.record(category, 1);
  if (auto* tr = obs::tracer())
    tr->instant("net", obs_category_cstr(category), sim_.now(), from, to, 1);
  if (faults_ != nullptr && !faults_->link_up(from, to)) {
    ++stats_.messages_dropped;
    RTDS_COUNT("net.dropped");
    return;
  }
  deliver(from, to, topo_.link_delay(from, to), std::move(payload));
}

void SimNetwork::send_routed(SiteId from, SiteId to, Time path_delay,
                             std::size_t hops, MessageBody payload,
                             int category) {
  RTDS_REQUIRE(from < handlers_.size());
  RTDS_REQUIRE(to < handlers_.size());
  if (from == to) {
    stats_.record(category, 0);
    deliver(from, to, 0.0, std::move(payload));
    return;
  }
  RTDS_REQUIRE_MSG(hops >= 1, "multi-site route needs >= 1 hop");
  RTDS_REQUIRE(path_delay >= 0.0);
  stats_.record(category, hops);
  if (auto* tr = obs::tracer())
    tr->instant("net", obs_category_cstr(category), sim_.now(), from, to,
                hops);
  deliver(from, to, path_delay, std::move(payload));
}

void SimNetwork::send_local(SiteId site, Time delay, MessageBody payload,
                            int category) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(delay >= 0.0);
  stats_.record(category, 0);
  deliver(site, site, delay, std::move(payload));
}

void SimNetwork::deliver(SiteId from, SiteId to, Time delay,
                         MessageBody payload) {
  if (faults_ != nullptr) {
    if (faults_->sample_drop()) {
      ++stats_.messages_dropped;
      RTDS_COUNT("net.dropped");
      return;
    }
    // Fixed draw order per send — drop, dup, then per-copy (extra delay,
    // reorder jitter) — so enabling one fault process never shifts the
    // stream another process reads.
    const Time base = delay;
    const bool dup = faults_->sample_duplicate();
    delay += faults_->sample_extra_delay() + faults_->sample_reorder_delay();
    if (dup) {
      ++stats_.messages_duplicated;
      RTDS_COUNT("net.duplicated");
      const Time dup_delay = base + faults_->sample_extra_delay() +
                             faults_->sample_reorder_delay();
      schedule_delivery(from, to, dup_delay, MessageBody(payload));
    }
  }
  schedule_delivery(from, to, delay, std::move(payload));
}

void SimNetwork::schedule_delivery(SiteId from, SiteId to, Time delay,
                                   MessageBody payload) {
  auto fire = [this, from, to, p = std::move(payload)]() {
    // Arrival-time fault check: the destination must be up when the
    // message lands, not merely when it was sent.
    if (faults_ != nullptr && !faults_->site_up(to)) {
      ++stats_.messages_dropped;
      RTDS_COUNT("net.dropped");
      return;
    }
    RTDS_CHECK_MSG(handlers_[to] != nullptr,
                   "no handler registered for site " << to);
    handlers_[to](from, p);
  };
  static_assert(EventFn::stores_inline<decltype(fire)>(),
                "delivery closure must fit EventFn's inline buffer");
  sim_.schedule_in(delay, std::move(fire));
}

}  // namespace rtds
