#include "sim/network.hpp"

#include <utility>

namespace rtds {

SimNetwork::SimNetwork(Simulator& sim, const Topology& topo)
    : sim_(sim), topo_(topo), handlers_(topo.site_count()) {}

void SimNetwork::set_handler(SiteId site, Handler handler) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(handler != nullptr);
  handlers_[site] = std::move(handler);
}

void SimNetwork::send_adjacent(SiteId from, SiteId to, std::any payload,
                               int category) {
  RTDS_REQUIRE_MSG(topo_.adjacent(from, to),
                   "send_adjacent requires a link " << from << "--" << to);
  stats_.record(category, 1);
  deliver(from, to, topo_.link_delay(from, to), std::move(payload));
}

void SimNetwork::send_routed(SiteId from, SiteId to, Time path_delay,
                             std::size_t hops, std::any payload, int category) {
  RTDS_REQUIRE(from < handlers_.size());
  RTDS_REQUIRE(to < handlers_.size());
  if (from == to) {
    stats_.record(category, 0);
    deliver(from, to, 0.0, std::move(payload));
    return;
  }
  RTDS_REQUIRE_MSG(hops >= 1, "multi-site route needs >= 1 hop");
  RTDS_REQUIRE(path_delay >= 0.0);
  stats_.record(category, hops);
  deliver(from, to, path_delay, std::move(payload));
}

void SimNetwork::send_local(SiteId site, Time delay, std::any payload,
                            int category) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(delay >= 0.0);
  stats_.record(category, 0);
  deliver(site, site, delay, std::move(payload));
}

void SimNetwork::deliver(SiteId from, SiteId to, Time delay,
                         std::any payload) {
  sim_.schedule_in(delay, [this, from, to, p = std::move(payload)]() {
    RTDS_CHECK_MSG(handlers_[to] != nullptr,
                   "no handler registered for site " << to);
    handlers_[to](from, p);
  });
}

}  // namespace rtds
