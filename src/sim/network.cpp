#include "sim/network.hpp"

#include <utility>

#include "fault/fault.hpp"

namespace rtds {

// The zero-allocation contract: a MessageBody moves without throwing (so
// delivery closures qualify for EventFn's inline buffer) and the closure
// below actually fits that buffer.
static_assert(std::is_nothrow_move_constructible_v<MessageBody>,
              "MessageBody must be nothrow-movable for inline event storage");

SimNetwork::SimNetwork(Simulator& sim, const Topology& topo)
    : sim_(sim), topo_(topo), handlers_(topo.site_count()) {}

void SimNetwork::set_handler(SiteId site, Handler handler) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(handler != nullptr);
  handlers_[site] = std::move(handler);
}

void SimNetwork::send_adjacent(SiteId from, SiteId to, MessageBody payload,
                               int category) {
  RTDS_REQUIRE_MSG(topo_.adjacent(from, to),
                   "send_adjacent requires a link " << from << "--" << to);
  stats_.record(category, 1);
  if (faults_ != nullptr && !faults_->link_up(from, to)) {
    ++stats_.messages_dropped;
    return;
  }
  deliver(from, to, topo_.link_delay(from, to), std::move(payload));
}

void SimNetwork::send_routed(SiteId from, SiteId to, Time path_delay,
                             std::size_t hops, MessageBody payload,
                             int category) {
  RTDS_REQUIRE(from < handlers_.size());
  RTDS_REQUIRE(to < handlers_.size());
  if (from == to) {
    stats_.record(category, 0);
    deliver(from, to, 0.0, std::move(payload));
    return;
  }
  RTDS_REQUIRE_MSG(hops >= 1, "multi-site route needs >= 1 hop");
  RTDS_REQUIRE(path_delay >= 0.0);
  stats_.record(category, hops);
  deliver(from, to, path_delay, std::move(payload));
}

void SimNetwork::send_local(SiteId site, Time delay, MessageBody payload,
                            int category) {
  RTDS_REQUIRE(site < handlers_.size());
  RTDS_REQUIRE(delay >= 0.0);
  stats_.record(category, 0);
  deliver(site, site, delay, std::move(payload));
}

void SimNetwork::deliver(SiteId from, SiteId to, Time delay,
                         MessageBody payload) {
  if (faults_ != nullptr) {
    if (faults_->sample_drop()) {
      ++stats_.messages_dropped;
      return;
    }
    delay += faults_->sample_extra_delay();
  }
  auto fire = [this, from, to, p = std::move(payload)]() {
    // Arrival-time fault check: the destination must be up when the
    // message lands, not merely when it was sent.
    if (faults_ != nullptr && !faults_->site_up(to)) {
      ++stats_.messages_dropped;
      return;
    }
    RTDS_CHECK_MSG(handlers_[to] != nullptr,
                   "no handler registered for site " << to);
    handlers_[to](from, p);
  };
  static_assert(EventFn::stores_inline<decltype(fire)>(),
                "delivery closure must fit EventFn's inline buffer");
  sim_.schedule_in(delay, std::move(fire));
}

}  // namespace rtds
