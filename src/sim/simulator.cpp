#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace rtds {

namespace {

/// Staged batches small enough that per-node heap pushes beat setting up a
/// bucket sort.
constexpr std::size_t kSmallBatch = 8;

/// Batches above this get the coarse pre-pass; below it, a single fine
/// scatter already fits the cache.
constexpr std::size_t kCoarseThreshold = 8192;

/// Coarse bucket count scales with the batch so each bucket stays at most
/// ~kCoarseTarget nodes (one fine scatter's cache-resident working set):
/// the fixed 64-bucket pre-pass left ≥100k-event populations with
/// multi-thousand-node buckets, each paying a second full scatter — the
/// items/s cliff BENCH_micro.json showed between 10k and 100k pending
/// events. Bounded above so the count arrays stay small relative to the
/// batch.
constexpr std::size_t kCoarseBucketsMin = 64;
constexpr std::size_t kCoarseBucketsMax = 8192;
constexpr std::size_t kCoarseTarget = 1024;

std::size_t coarse_buckets_for(std::size_t n) {
  return std::clamp(std::bit_ceil(n / kCoarseTarget), kCoarseBucketsMin,
                    kCoarseBucketsMax);
}

/// Small ranges (and the per-bucket fix-ups) use insertion sort.
constexpr std::size_t kInsertionSortMax = 32;

}  // namespace

void Simulator::push_heap_node(const Node& n) {
  heap_.push_back(n);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(n, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = n;
}

void Simulator::pop_heap_node() {
  const Node last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

/// Linear-time bucket sort on the event time, two-phase so the scatter
/// working set stays cache-resident: a huge batch first fans out into
/// batch-scaled coarse buckets (few write streams, pure streaming), then
/// each coarse bucket — now cache-sized — is scattered at fine granularity
/// straight into its final position. staged_ is in scheduling order (seq
/// strictly ascending), the counting scatter is stable, and the per-bucket
/// fix-ups use the full (time, seq) order — so equal times end up in
/// scheduling order, exactly as a comparison sort would leave them.
void Simulator::sort_staged_ascending() {
  const std::size_t n = staged_.size();
  ensure_sort_buf(n);
  Node* const data = staged_.data();
  if (n <= kCoarseThreshold) {
    sort_fine(data, n);
    return;
  }
  Time lo = data[0].at, hi = data[0].at;
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, data[i].at);
    hi = std::max(hi, data[i].at);
  }
  if (!(hi > lo)) return;  // all timestamps equal: input order is the answer

  const std::size_t buckets = coarse_buckets_for(n);
  const double scale = static_cast<double>(buckets) / (hi - lo);
  auto bucket_of = [&](const Node& node) {
    const auto b = static_cast<std::size_t>((node.at - lo) * scale);
    return std::min(b, buckets - 1);
  };
  coarse_counts_.assign(buckets + 1, 0);
  std::uint32_t* counts = coarse_counts_.data();
  for (std::size_t i = 0; i < n; ++i) ++counts[bucket_of(data[i]) + 1];
  for (std::size_t b = 1; b <= buckets; ++b) counts[b] += counts[b - 1];
  {
    coarse_cursor_.assign(counts, counts + buckets);
    std::uint32_t* cursor = coarse_cursor_.data();
    for (std::size_t i = 0; i < n; ++i)
      sort_buf_[cursor[bucket_of(data[i])]++] = data[i];
  }
  // Fused second level: each coarse bucket is fine-scattered from the raw
  // straight into its final position in data — the two full copy-back
  // passes the unfused pipeline made were pure memory traffic, which is
  // what large (≥100k-event) populations are bound by.
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t len = counts[b + 1] - counts[b];
    if (len == 0) continue;
    Node* const src = sort_buf_.get() + counts[b];
    Node* const dst = data + counts[b];
    if (len > kCoarseThreshold) {
      // Adversarial clustering: give up on linear-time for this bucket.
      std::copy(src, src + len, dst);
      std::sort(dst, dst + len, earlier);
    } else {
      sort_fine_into(src, dst, len);
    }
  }
}

/// Sorts `n` nodes from `src` into `dst` (disjoint ranges): counting
/// scatter straight into the destination, then per-bucket fix-ups there.
void Simulator::sort_fine_into(Node* src, Node* dst, std::size_t n) {
  if (n <= kInsertionSortMax) {
    std::copy(src, src + n, dst);
    insertion_sort_nodes(dst, n);
    return;
  }
  Time lo = src[0].at, hi = src[0].at;
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, src[i].at);
    hi = std::max(hi, src[i].at);
  }
  if (!(hi > lo)) {  // all timestamps equal: input order is the answer
    std::copy(src, src + n, dst);
    return;
  }
  const std::size_t buckets = std::bit_ceil(n);
  const double scale = static_cast<double>(buckets) / (hi - lo);
  auto bucket_of = [&](const Node& node) {
    const auto b = static_cast<std::size_t>((node.at - lo) * scale);
    return std::min(b, buckets - 1);
  };
  bucket_counts_.assign(buckets + 1, 0);
  std::uint32_t* counts = bucket_counts_.data();
  for (std::size_t i = 0; i < n; ++i) ++counts[bucket_of(src[i]) + 1];
  for (std::size_t b = 1; b <= buckets; ++b) counts[b] += counts[b - 1];
  {
    std::uint32_t* cursor = counts;  // walks each bucket start -> end
    for (std::size_t i = 0; i < n; ++i) dst[cursor[bucket_of(src[i])]++] = src[i];
  }
  // counts[b] now holds bucket b's END offset; fix up each bucket.
  std::size_t begin = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t end = counts[b];
    const std::size_t len = end - begin;
    if (len > 1) {
      if (len <= kInsertionSortMax)
        insertion_sort_nodes(dst + begin, len);
      else
        std::sort(dst + begin, dst + end, earlier);
    }
    begin = end;
  }
}

void Simulator::sort_fine(Node* first, std::size_t n) {
  if (n <= kInsertionSortMax) {
    insertion_sort_nodes(first, n);
    return;
  }
  Time lo = first[0].at, hi = first[0].at;
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, first[i].at);
    hi = std::max(hi, first[i].at);
  }
  if (!(hi > lo)) return;  // all timestamps equal: input order is the answer

  const std::size_t buckets = std::bit_ceil(n);
  const double scale = static_cast<double>(buckets) / (hi - lo);
  auto bucket_of = [&](const Node& node) {
    const auto b = static_cast<std::size_t>((node.at - lo) * scale);
    return std::min(b, buckets - 1);
  };
  bucket_counts_.assign(buckets + 1, 0);
  std::uint32_t* counts = bucket_counts_.data();
  for (std::size_t i = 0; i < n; ++i) ++counts[bucket_of(first[i]) + 1];
  for (std::size_t b = 1; b <= buckets; ++b) counts[b] += counts[b - 1];

  Node* const out = sort_buf_.get() + (first - staged_.data());
  {
    std::uint32_t* cursor = counts;  // walks each bucket start -> end
    for (std::size_t i = 0; i < n; ++i)
      out[cursor[bucket_of(first[i])]++] = first[i];
  }
  std::copy(out, out + n, first);

  // counts[b] now holds bucket b's END offset; fix up each bucket.
  std::size_t begin = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t end = counts[b];
    const std::size_t len = end - begin;
    if (len > 1) {
      if (len <= kInsertionSortMax)
        insertion_sort_nodes(first + begin, len);
      else
        std::sort(first + begin, first + end, earlier);
    }
    begin = end;
  }
}

void Simulator::insertion_sort_nodes(Node* first, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    const Node key = first[i];
    std::size_t j = i;
    while (j > 0 && earlier(key, first[j - 1])) {
      first[j] = first[j - 1];
      --j;
    }
    first[j] = key;
  }
}

void Simulator::flush_staged() {
  const std::size_t s = staged_.size();
  if (s == 0) return;
  const std::size_t live = run_.size() - run_head_;
  if (s <= kSmallBatch || s * 8 < live) {
    // Too small to be worth (re)building a run: feed the heap.
    for (const Node& n : staged_) push_heap_node(n);
    staged_.clear();
    return;
  }
  sort_staged_ascending();
  if (live == 0) {
    run_.swap(staged_);
  } else {
    scratch_.clear();
    scratch_.reserve(live + s);
    std::merge(run_.begin() + static_cast<std::ptrdiff_t>(run_head_),
               run_.end(), staged_.begin(), staged_.end(),
               std::back_inserter(scratch_), earlier);
    run_.swap(scratch_);
  }
  run_head_ = 0;
  staged_.clear();
}

const Simulator::Node* Simulator::peek() const {
  const Node* best = run_head_ < run_.size() ? &run_[run_head_] : nullptr;
  if (!heap_.empty() && (best == nullptr || earlier(heap_[0], *best)))
    best = &heap_[0];
  return best;
}

bool Simulator::step() {
  flush_staged();
  const bool have_run = run_head_ < run_.size();
  const bool have_heap = !heap_.empty();
  if (!have_run && !have_heap) return false;
  Node top;
  if (have_run && (!have_heap || earlier(run_[run_head_], heap_[0]))) {
    top = run_[run_head_++];
    if (run_head_ == run_.size()) {
      run_.clear();
      run_head_ = 0;
    } else if (run_head_ + 4 < run_.size()) {
      // Slab slots were filled in scheduling order but are consumed in time
      // order, so the slot walk is random; the run tells us the slots a few
      // pops ahead — pull them into cache while this event executes.
      const std::uint32_t ahead = run_[run_head_ + 4].slot;
      if (ahead & kBigSlot)
        big_slab_.prefetch(ahead & ~kBigSlot);
      else
        small_slab_.prefetch(ahead);
    }
  } else {
    top = heap_[0];
    pop_heap_node();
  }
  now_ = top.at;
  ++executed_;
  if (recording_) records_.erase(top.seq);
  // Invoke in place: the slot stays occupied (not in the free list) while
  // the event body runs, and chunk storage is stable even if the body
  // schedules events that grow the slab. Recycle after.
  if (top.slot & kBigSlot) {
    const std::uint32_t id = top.slot & ~kBigSlot;
    EventFn& fn = big_slab_.at(id);
    fn();
    fn = nullptr;
    big_slab_.release(id);
  } else {
    SmallEventFn& fn = small_slab_.at(top.slot);
    fn();
    fn = nullptr;
    small_slab_.release(top.slot);
  }
  if (observer_ != nullptr) observer_(observer_ctx_, now_);
  return true;
}

std::vector<Simulator::PendingEvent> Simulator::pending_events() const {
  std::vector<Node> nodes;
  nodes.reserve(pending());
  nodes.insert(nodes.end(), staged_.begin(), staged_.end());
  nodes.insert(nodes.end(),
               run_.begin() + static_cast<std::ptrdiff_t>(run_head_),
               run_.end());
  nodes.insert(nodes.end(), heap_.begin(), heap_.end());
  std::sort(nodes.begin(), nodes.end(), earlier);
  std::vector<PendingEvent> out;
  out.reserve(nodes.size());
  for (const Node& n : nodes) out.push_back({n.at, n.seq});
  return out;
}

void Simulator::destroy_slot(std::uint32_t slot) {
  if (slot & kBigSlot) {
    const std::uint32_t id = slot & ~kBigSlot;
    big_slab_.at(id) = nullptr;
    big_slab_.release(id);
  } else {
    small_slab_.at(slot) = nullptr;
    small_slab_.release(slot);
  }
}

void Simulator::clear_pending() {
  for (const Node& n : staged_) destroy_slot(n.slot);
  for (std::size_t i = run_head_; i < run_.size(); ++i)
    destroy_slot(run_[i].slot);
  for (const Node& n : heap_) destroy_slot(n.slot);
  staged_.clear();
  run_.clear();
  run_head_ = 0;
  heap_.clear();
  records_.clear();
}

std::size_t Simulator::run(std::size_t max_events) {
  const std::size_t fired = run_chunk(max_events);
  RTDS_CHECK_MSG(fired < max_events || !has_events(),
                 "event budget exhausted at t=" << now_);
  return fired;
}

std::size_t Simulator::run_chunk(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(Time t_end, std::size_t max_events) {
  std::size_t fired = 0;
  for (;;) {
    flush_staged();
    const Node* next = peek();
    if (next == nullptr || !time_le(next->at, t_end)) break;
    if (fired == max_events) {
      // Budget exhaustion means eligible events remain, mirroring run():
      // draining — or everything left being beyond t_end — is a normal
      // return even when fired == max_events.
      RTDS_CHECK_MSG(false, "event budget exhausted at t=" << now_);
    }
    step();
    ++fired;
  }
  return fired;
}

}  // namespace rtds
