#include "sim/simulator.hpp"

#include <utility>

namespace rtds {

void Simulator::schedule_at(Time at, EventFn fn) {
  RTDS_REQUIRE_MSG(time_ge(at, now_),
                   "cannot schedule in the past: " << at << " < " << now_);
  RTDS_REQUIRE(fn != nullptr);
  // Clamp FP noise so now() never goes backwards.
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move out of the const top; priority_queue has no non-const top().
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  RTDS_CHECK_MSG(fired < max_events || queue_.empty(),
                 "event budget exhausted at t=" << now_);
  return fired;
}

std::size_t Simulator::run_until(Time t_end, std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && !queue_.empty() &&
         time_le(queue_.top().at, t_end)) {
    step();
    ++fired;
  }
  RTDS_CHECK_MSG(fired < max_events, "event budget exhausted at t=" << now_);
  return fired;
}

}  // namespace rtds
