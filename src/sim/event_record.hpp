// Replayable descriptions of pending events (DESIGN.md §14).
//
// Event callables are opaque closures — they cannot be serialized. A
// checkpoint therefore rides a side channel: every schedule site on the
// RTDS path annotates the event it just scheduled with an EventRecord, a
// POD-plus-shared_ptr description from which the *same* closure can be
// reconstructed (snap/snapshot.cpp re-posts records through the original
// private entry points). Recording is opt-in (Simulator::set_recording)
// and costs one branch per schedule site when off; Snapshot::save rejects
// any pending event that carries no record, so a policy family that never
// annotates fails a checkpoint loudly instead of silently dropping events.
//
// The two shared_ptr fields are type-erased so this header stays free of
// core/ dependencies: ref-counted payloads are cast back by the snapshot
// layer, which knows which Kind owns a Job and which owns a MessageBody.
#pragma once

#include <cstdint>
#include <memory>

#include "util/time.hpp"

namespace rtds {

struct EventRecord {
  enum class Kind : std::uint8_t {
    kNone = 0,
    // --- RtdsSystem ---
    kFault,           ///< apply_fault(FaultEvent{x=at, small=kind, site=a, peer=b})
    kArrival,         ///< nodes_[site]->submit(job)              (closed run())
    kStreamArrival,   ///< submit + pull the next streamed arrival
    // --- RtdsNode (owner = site) ---
    kEnrollTimeout,   ///< on_enroll_timeout(job_ref)
    kMapper,          ///< run_mapper(job_ref)
    kValidateTimeout, ///< on_validate_timeout(job_ref)
    kRetryTimer,      ///< on_retry_timer(job, peer, a=gen, x=rto)
    kCompletion,      ///< task completion: job, task, x=end, a=epoch
    kLeaseExpiry,     ///< on_lease_expired(a=lock seq)
    kStartNext,       ///< deferred start_next_job kick
    // --- transports ---
    kSelfDeliver,     ///< ideal/contended self-send: handler(peer)<-site
    kDeliver,         ///< IdealTransport delivery (site -> peer), liveness
                      ///< checked at fire time exactly like the original
    kContendedInject, ///< ContendedTransport source injection -> forward()
    kContendedHop,    ///< store-and-forward hop: site=origin, peer=cur,
                      ///< dest=final, y=size_units
  };

  Kind kind = Kind::kNone;
  std::uint8_t small = 0;      ///< fault event kind
  std::uint32_t site = 0;      ///< owning node / sender / fault site a
  std::uint32_t peer = 0;      ///< receiver / retry peer / fault site b
  std::uint32_t dest = 0;      ///< final destination (contended hops)
  std::uint64_t job = 0;       ///< JobId, where the record carries one by id
  std::uint32_t task = 0;      ///< TaskId (completions)
  std::uint64_t a = 0;         ///< generation / epoch / lock sequence
  double x = 0.0;              ///< rto / completion end / fault time
  double y = 0.0;              ///< message size_units
  std::shared_ptr<const void> job_ref;  ///< shared_ptr<const Job>
  std::shared_ptr<const void> payload;  ///< shared_ptr<const MessageBody>
};

}  // namespace rtds
