// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (a monotonic sequence number breaks ties), so a run is
// reproducible bit-for-bit from its inputs. This is the substrate standing
// in for the paper's physical "arbitrary wide network" testbed.
//
// The queue is allocation-free in steady state and sorts nothing until it
// must. Event callables are EventFn (small-buffer-optimized, see
// event_fn.hpp) stored in a slab of fixed-size slots recycled through a
// free list; the priority structure holds only 24-byte POD nodes
// (time, seq, slot) split across three tiers:
//
//  * staged_ — raw appends, in scheduling order. Nothing is ordered at
//    schedule time, so bulk loads (a scenario's whole arrival list, the
//    event-queue microbenchmark) cost O(1) per event.
//  * run_   — an ascending sorted run consumed through a cursor. A large
//    staged batch becomes a run via a linear-time bucket sort keyed on the
//    event time (stable, so equal times keep scheduling order), not a
//    comparison sort.
//  * heap_  — a 4-ary implicit min-heap for events scheduled while a run
//    is live (the protocol's dynamic sends), which would otherwise force
//    repeated re-sorting.
//
// step() flushes staged_ and pops the global (time, seq) minimum of
// run_/heap_, which is exactly the pop order of the std::priority_queue
// this replaces: the key is unique, so any correct priority queue yields
// the identical event sequence.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/event_record.hpp"
#include "util/error.hpp"
#include "util/time.hpp"

namespace rtds {

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). The callable is
  /// constructed directly in a slot of the size-class slab its capture
  /// needs — no temporary, no relocation, no allocation.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void schedule_at(Time at, F&& fn) {
    RTDS_REQUIRE_MSG(time_ge(at, now_),
                     "cannot schedule in the past: " << at << " < " << now_);
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>)
      RTDS_REQUIRE(fn != nullptr);
    std::uint32_t idx;
    if constexpr (SmallEventFn::stores_inline<F>()) {
      idx = small_slab_.place(std::forward<F>(fn));
    } else {
      idx = big_slab_.place(std::forward<F>(fn)) | kBigSlot;
    }
    // Clamp FP noise so now() never goes backwards.
    if (staged_.capacity() == 0) staged_.reserve(64);
    staged_.push_back(Node{std::max(at, now_), next_seq_++, idx});
  }

  /// Schedules `fn` after a non-negative delay.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void schedule_in(Time delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  bool has_events() const {
    return !staged_.empty() || run_head_ < run_.size() || !heap_.empty();
  }
  std::size_t pending() const {
    return staged_.size() + (run_.size() - run_head_) + heap_.size();
  }

  /// Executes the next event; returns false if none remain.
  bool step();

  /// Runs until the queue drains or `max_events` fire; returns events fired.
  /// Exhausting the budget with events still queued is an error: this is
  /// the run-to-completion driver, and the budget only exists to catch
  /// runaway event loops. For deliberate partial stepping use run_chunk.
  std::size_t run(std::size_t max_events = kDefaultEventBudget);

  /// Fires up to `max_events` events and returns the count fired. Unlike
  /// run(), leftover events are normal — this is the stepping primitive of
  /// the chunked checkpoint drivers (`while (run_chunk(N)) maybe_save();`).
  std::size_t run_chunk(std::size_t max_events);

  /// Runs while event times are <= t_end (events beyond stay queued).
  std::size_t run_until(Time t_end, std::size_t max_events = kDefaultEventBudget);

  std::uint64_t executed_events() const { return executed_; }

  /// Next sequence number to be assigned (checkpoints save it so resumed
  /// runs keep the saved (time, seq) pop order, see restore_clock).
  std::uint64_t next_seq() const { return next_seq_; }

  /// Post-event observer (raw function pointer + context, null by default):
  /// called after every executed event with the event's time. The invariant
  /// checker (fault/invariants.hpp) uses it for the monotone-time check;
  /// keeping it a plain pointer keeps the unobserved hot path to one
  /// null test per event.
  using EventObserver = void (*)(void* ctx, Time now);
  void set_event_observer(EventObserver fn, void* ctx) {
    observer_ = fn;
    observer_ctx_ = ctx;
  }

  /// Guard against runaway protocols in tests.
  static constexpr std::size_t kDefaultEventBudget = 100'000'000;

  // --- checkpoint support (snap/, DESIGN.md §14) ---

  /// Turns event-record annotation on/off. While on, schedule sites on the
  /// RTDS path attach an EventRecord to the event they just scheduled
  /// (annotate), and executed events discard theirs — so at any instant
  /// the record table describes exactly the pending events. Off (the
  /// default), annotation costs one branch per schedule site.
  void set_recording(bool on) {
    recording_ = on;
    if (!on) records_.clear();
  }
  bool recording() const { return recording_; }

  /// Attaches `rec` to the most recently scheduled event. Must directly
  /// follow the schedule_at/schedule_in call it describes.
  void annotate(EventRecord rec) {
    RTDS_REQUIRE_MSG(next_seq_ > 0, "annotate before any schedule");
    records_[next_seq_ - 1] = std::move(rec);
  }

  /// The record attached to pending event `seq`, or nullptr (an opaque
  /// event — Snapshot::save refuses to serialize those).
  const EventRecord* record_of(std::uint64_t seq) const {
    const auto it = records_.find(seq);
    return it == records_.end() ? nullptr : &it->second;
  }

  /// (time, seq) of every pending event, in execution order — the
  /// checkpoint's view of the queue. Copies; does not disturb the tiers.
  struct PendingEvent {
    Time at;
    std::uint64_t seq;
  };
  std::vector<PendingEvent> pending_events() const;

  /// Destroys every pending callable (slab slots recycled) and all
  /// records. The restore path clears the constructor-scheduled queue
  /// before re-posting the snapshot's events.
  void clear_pending();

  /// Restores the clock/counters captured by a snapshot. Only valid on a
  /// simulator with no pending events; re-posted events then draw fresh
  /// sequence numbers >= next_seq, preserving the saved (time, seq) pop
  /// order relative to everything scheduled after resume.
  void restore_clock(Time now, std::uint64_t next_seq, std::uint64_t executed) {
    RTDS_REQUIRE_MSG(!has_events(), "restore_clock with pending events");
    RTDS_REQUIRE(next_seq >= next_seq_);
    now_ = now;
    next_seq_ = next_seq;
    executed_ = executed;
  }

 private:
  /// Queue node: POD, so sorting and sifting move 24 bytes, never a
  /// callable.
  struct Node {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Strict weak order of the original priority_queue, inverted to
  /// min-first. seq is unique, so this is a total order.
  static bool earlier(const Node& a, const Node& b) {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  }

  void flush_staged();
  void sort_staged_ascending();
  void sort_fine(Node* first, std::size_t n);
  void sort_fine_into(Node* src, Node* dst, std::size_t n);
  static void insertion_sort_nodes(Node* first, std::size_t n);
  void push_heap_node(const Node& n);
  void pop_heap_node();
  /// Global (time, seq) minimum across run_ and heap_; staged_ must be
  /// flushed. Returns nullptr when drained.
  const Node* peek() const;

  /// Fixed-size-slot pool for one callable size class. Slots live in raw
  /// chunks (no value-init sweep); construction happens on first use via a
  /// monotone bump cursor, recycling via a LIFO free list. Chunk storage
  /// never moves, so an executing event may schedule freely.
  template <typename FnT>
  class Slab {
   public:
    static constexpr std::uint32_t kChunkShift = 8;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

    Slab() = default;
    Slab(const Slab&) = delete;
    Slab& operator=(const Slab&) = delete;
    ~Slab() {
      // Every id below the bump cursor holds a constructed FnT (freed slots
      // were reset to empty, pending ones still own their callable).
      for (std::uint32_t id = 0; id < bump_next_; ++id) at(id).~FnT();
    }

    /// Constructs `fn` in a slot and returns its id.
    template <typename F>
    std::uint32_t place(F&& fn) {
      if (!free_.empty()) {
        const std::uint32_t id = free_.back();
        free_.pop_back();
        at(id).emplace(std::forward<F>(fn));
        return id;
      }
      if (bump_next_ == bump_end_) grow();
      const std::uint32_t id = bump_next_++;
      ::new (static_cast<void*>(addr(id))) FnT(std::forward<F>(fn));
      return id;
    }

    FnT& at(std::uint32_t id) {
      return *std::launder(reinterpret_cast<FnT*>(addr(id)));
    }

    void prefetch(std::uint32_t id) const {
      __builtin_prefetch(chunks_[id >> kChunkShift].get() +
                         sizeof(FnT) * (id & (kChunkSize - 1)));
    }

    /// Recycles a slot whose callable has already been reset to empty.
    void release(std::uint32_t id) { free_.push_back(id); }

   private:
    std::byte* addr(std::uint32_t id) {
      return chunks_[id >> kChunkShift].get() +
             sizeof(FnT) * (id & (kChunkSize - 1));
    }
    void grow() {
      chunks_.push_back(
          std::make_unique_for_overwrite<std::byte[]>(kChunkSize *
                                                      sizeof(FnT)));
      bump_next_ = (static_cast<std::uint32_t>(chunks_.size()) - 1)
                   << kChunkShift;
      bump_end_ = bump_next_ + kChunkSize;
    }

    std::vector<std::unique_ptr<std::byte[]>> chunks_;
    std::vector<std::uint32_t> free_;
    std::uint32_t bump_next_ = 0;
    std::uint32_t bump_end_ = 0;
  };

  /// Node::slot tag: big-slab ids have the top bit set.
  static constexpr std::uint32_t kBigSlot = 0x8000'0000u;

  /// Recycles one slot given its tagged Node::slot value (the callable is
  /// destroyed first; used by step() and clear_pending()).
  void destroy_slot(std::uint32_t slot);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  EventObserver observer_ = nullptr;
  void* observer_ctx_ = nullptr;
  bool recording_ = false;
  /// seq -> replayable description of the pending event (recording only).
  std::unordered_map<std::uint64_t, EventRecord> records_;

  std::vector<Node> staged_;
  std::vector<Node> run_;
  std::size_t run_head_ = 0;
  std::vector<Node> heap_;
  // Reused buffers for the bucket sort / run merge (no steady-state
  // allocation). The sort temp is a raw uninitialized buffer: value-
  // initializing a vector of 100k+ POD nodes on first use was a visible
  // slice of a large flush.
  void ensure_sort_buf(std::size_t n) {
    if (sort_buf_cap_ >= n) return;
    sort_buf_cap_ = std::bit_ceil(std::max<std::size_t>(n, 64));
    sort_buf_ = std::make_unique_for_overwrite<Node[]>(sort_buf_cap_);
  }
  std::unique_ptr<Node[]> sort_buf_;
  std::size_t sort_buf_cap_ = 0;
  std::vector<Node> scratch_;
  std::vector<std::uint32_t> bucket_counts_;
  std::vector<std::uint32_t> coarse_counts_;
  std::vector<std::uint32_t> coarse_cursor_;

  Slab<SmallEventFn> small_slab_;
  Slab<EventFn> big_slab_;
};

}  // namespace rtds
