// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (a monotonic sequence number breaks ties), so a run is
// reproducible bit-for-bit from its inputs. This is the substrate standing
// in for the paper's physical "arbitrary wide network" testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.hpp"
#include "util/time.hpp"

namespace rtds {

class Simulator {
 public:
  using EventFn = std::function<void()>;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now).
  void schedule_at(Time at, EventFn fn);

  /// Schedules `fn` after a non-negative delay.
  void schedule_in(Time delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  bool has_events() const { return !queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Executes the next event; returns false if none remain.
  bool step();

  /// Runs until the queue drains or `max_events` fire; returns events fired.
  std::size_t run(std::size_t max_events = kDefaultEventBudget);

  /// Runs while event times are <= t_end (events beyond stay queued).
  std::size_t run_until(Time t_end, std::size_t max_events = kDefaultEventBudget);

  std::uint64_t executed_events() const { return executed_; }

  /// Guard against runaway protocols in tests.
  static constexpr std::size_t kDefaultEventBudget = 100'000'000;

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace rtds
