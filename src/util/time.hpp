// Simulated-time representation and tolerant comparisons.
//
// The paper expresses every quantity (computational complexity, delays,
// surpluses, releases, deadlines) as non-negative reals, and the worked
// example divides costs by fractional surpluses; we therefore use double
// seconds rather than integer ticks, and funnel all ordering decisions
// through the epsilon helpers below so accumulated FP error cannot flip an
// admission decision.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace rtds {

/// Simulated time / duration, in (unitless) seconds.
using Time = double;

/// Sentinel for "never" / unreachable.
inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::infinity();

/// Absolute tolerance for time comparisons. The worked example's quantities
/// are O(10); typical simulations run to O(1e6); 1e-9 relative to O(1e3)
/// magnitudes keeps decisions stable without hiding real gaps.
inline constexpr Time kTimeEps = 1e-7;

/// a <= b within tolerance.
inline bool time_le(Time a, Time b, Time eps = kTimeEps) { return a <= b + eps; }

/// a >= b within tolerance.
inline bool time_ge(Time a, Time b, Time eps = kTimeEps) { return a + eps >= b; }

/// a < b strictly beyond tolerance.
inline bool time_lt(Time a, Time b, Time eps = kTimeEps) { return a + eps < b; }

/// a > b strictly beyond tolerance.
inline bool time_gt(Time a, Time b, Time eps = kTimeEps) { return a > b + eps; }

/// |a - b| within tolerance.
inline bool time_eq(Time a, Time b, Time eps = kTimeEps) {
  return std::fabs(a - b) <= eps;
}

/// Clamp tiny negative values (FP noise) to exactly zero.
inline Time clamp_nonneg(Time t) { return t < 0 && t > -kTimeEps ? 0.0 : t; }

}  // namespace rtds
