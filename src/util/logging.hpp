// Minimal leveled logger for protocol tracing.
//
// The RTDS node state machine can emit a per-message trace (used by
// bench_fig1_protocol to reproduce the paper's Figure 1 flow); everything
// defaults to silent so simulations stay fast.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace rtds {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Process-wide log sink and threshold. One simulation is single-threaded,
/// but the experiment runner fans trials across real threads, so the level
/// is an atomic and sink replacement/invocation is mutex-serialized —
/// messages from concurrent trials interleave whole, never torn. The
/// disabled fast path (the default) is a single relaxed atomic load.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel lvl);

  /// Replace the sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void write(LogLevel lvl, const std::string& msg);
  static bool enabled(LogLevel lvl) { return lvl >= level(); }
};

}  // namespace rtds

#define RTDS_LOG(lvl, expr)                               \
  do {                                                    \
    if (::rtds::Log::enabled(lvl)) {                      \
      std::ostringstream rtds_log_os_;                    \
      rtds_log_os_ << expr;                               \
      ::rtds::Log::write(lvl, rtds_log_os_.str());        \
    }                                                     \
  } while (0)

#define RTDS_TRACE(expr) RTDS_LOG(::rtds::LogLevel::kTrace, expr)
#define RTDS_DEBUG(expr) RTDS_LOG(::rtds::LogLevel::kDebug, expr)
#define RTDS_INFO(expr) RTDS_LOG(::rtds::LogLevel::kInfo, expr)
#define RTDS_WARN(expr) RTDS_LOG(::rtds::LogLevel::kWarn, expr)
