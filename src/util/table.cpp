#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace rtds {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RTDS_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RTDS_REQUIRE_MSG(cells.size() == headers_.size(),
                   "row has " << cells.size() << " cells, expected "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }
std::string Table::num(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  std::vector<std::string> rule(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule[c] = std::string(widths[c], '-');
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace rtds
