// Tiny command-line flag parser for examples and bench binaries.
//
// Supports `--name=value` and boolean `--name`. Unknown flags are an error
// so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace rtds {

class Flags {
 public:
  /// Parses argv. Throws ContractViolation on malformed input. Call
  /// `check_unused()` after all lookups to reject unknown flags.
  /// Flags named in `value_flags` consume the next argv element when given
  /// bare, so `--set key=value` parses like `--set=key=value` (needed
  /// because param assignments themselves contain '=').
  Flags(int argc, const char* const* argv,
        std::initializer_list<const char*> value_flags = {});

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, std::string def) const;
  /// Every value given for a repeatable flag, in command-line order
  /// (`--set a=1 --set b=2`; the single-value getters see only the last).
  std::vector<std::string> get_all(const std::string& name) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Throws if any provided flag was never looked up (catches typos).
  void check_unused() const;

 private:
  std::map<std::string, std::string> values_;
  /// All (name, value) pairs in argv order, for repeatable flags.
  std::vector<std::pair<std::string, std::string>> ordered_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace rtds
