// Tiny command-line flag parser for examples and bench binaries.
//
// Supports `--name=value` and boolean `--name`. Unknown flags are an error
// so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rtds {

class Flags {
 public:
  /// Parses argv. Throws ContractViolation on malformed input. Call
  /// `check_unused()` after all lookups to reject unknown flags.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, std::string def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Throws if any provided flag was never looked up (catches typos).
  void check_unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace rtds
