// Online statistics for experiment metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds {

/// Welford online mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel-combine rule).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;

  friend struct snap::Access;  // checkpoints restore the accumulator bits
};

/// Stores every sample; supports exact percentiles. Meant for per-run
/// collection of a few million values at most.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return values_.size(); }
  double mean() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  /// Quantile shorthands for the experiment sinks (exact, nearest-rank).
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
  double min() const;
  double max() const;
  const std::vector<double>& values() const { return values_; }

  /// Parallel-combine rule (mirrors RunningStat::merge): concatenates the
  /// stored samples. Because percentiles are computed over the sorted
  /// multiset, the result is independent of merge order — merging
  /// per-worker accumulators yields bit-identical quantiles to a single
  /// serial accumulator fed the same values.
  void merge(const Samples& other);

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;

  friend struct snap::Access;  // checkpoints restore the sample vector
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

  /// Render a fixed-width ASCII bar chart (for bench output).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rtds
