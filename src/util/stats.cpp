#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace rtds {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  RTDS_REQUIRE(n_ > 0);
  return min_;
}

double RunningStat::max() const {
  RTDS_REQUIRE(n_ > 0);
  return max_;
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::merge(const Samples& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::percentile(double p) const {
  RTDS_REQUIRE(p >= 0.0 && p <= 100.0);
  RTDS_REQUIRE(!values_.empty());
  ensure_sorted();
  if (p == 0.0) return values_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values_.size())));
  return values_[std::min(rank, values_.size()) - 1];
}

double Samples::min() const {
  RTDS_REQUIRE(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  RTDS_REQUIRE(!values_.empty());
  ensure_sorted();
  return values_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  RTDS_REQUIRE(hi > lo);
  RTDS_REQUIRE(buckets > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  RTDS_REQUIRE(bucket < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        peak == 0 ? 0 : counts_[b] * width / peak;
    os << '[';
    os.width(10);
    os << bucket_lo(b);
    os << ", ";
    os.width(10);
    os << bucket_hi(b);
    os << ") " << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace rtds
