// Assertion and contract-checking helpers.
//
// RTDS_REQUIRE is a precondition check (Core Guidelines I.6 "Expects"):
// it is always on, in every build type, because the simulator's correctness
// claims (no overlapping reservations, deadlines met, locks released) are
// the whole point of the reproduction.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rtds {

/// Thrown by RTDS_REQUIRE / RTDS_CHECK on contract violation.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace rtds

/// Precondition: argument/state validation at public API boundaries.
#define RTDS_REQUIRE(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::rtds::detail::contract_fail("Precondition", #expr, __FILE__,        \
                                    __LINE__, "");                          \
  } while (0)

#define RTDS_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream rtds_os_;                                          \
      rtds_os_ << msg;                                                      \
      ::rtds::detail::contract_fail("Precondition", #expr, __FILE__,        \
                                    __LINE__, rtds_os_.str());              \
    }                                                                       \
  } while (0)

/// Internal invariant: a bug in this library if it fires.
#define RTDS_CHECK(expr)                                                    \
  do {                                                                      \
    if (!(expr))                                                            \
      ::rtds::detail::contract_fail("Invariant", #expr, __FILE__, __LINE__, \
                                    "");                                    \
  } while (0)

#define RTDS_CHECK_MSG(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream rtds_os_;                                          \
      rtds_os_ << msg;                                                      \
      ::rtds::detail::contract_fail("Invariant", #expr, __FILE__, __LINE__, \
                                    rtds_os_.str());                        \
    }                                                                       \
  } while (0)
