#include "util/rng.hpp"

#include <cmath>

namespace rtds {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> uniform in [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RTDS_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RTDS_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) {
  RTDS_REQUIRE(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

double Rng::exponential(double rate) {
  RTDS_REQUIRE(rate > 0.0);
  // 1 - U in (0, 1] avoids log(0).
  return -std::log(1.0 - uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
  RTDS_REQUIRE(stddev >= 0.0);
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

std::int64_t Rng::poisson(double mean) {
  RTDS_REQUIRE(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  RTDS_REQUIRE(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RTDS_REQUIRE(w >= 0.0);
    total += w;
  }
  RTDS_REQUIRE(total > 0.0);
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // FP round-off fallthrough
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace rtds
