#include "util/flags.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace rtds {

Flags::Flags(int argc, const char* const* argv,
             std::initializer_list<const char*> value_flags) {
  auto takes_value = [&](const std::string& name) {
    for (const char* vf : value_flags)
      if (name == vf) return true;
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    std::string name = eq == std::string::npos ? arg : arg.substr(0, eq);
    std::string value =
        eq == std::string::npos ? "true" : arg.substr(eq + 1);  // bare = bool
    if (eq == std::string::npos && takes_value(name)) {
      RTDS_REQUIRE_MSG(i + 1 < argc, "--" << name << " expects a value");
      value = argv[++i];
    }
    values_[name] = value;
    ordered_.emplace_back(std::move(name), std::move(value));
  }
}

bool Flags::has(const std::string& name) const {
  used_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name, std::string def) const {
  used_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::vector<std::string> Flags::get_all(const std::string& name) const {
  used_[name] = true;
  std::vector<std::string> out;
  for (const auto& [key, value] : ordered_)
    if (key == name) out.push_back(value);
  return out;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  RTDS_REQUIRE_MSG(end && *end == '\0', "--" << name << " expects an integer");
  return v;
}

double Flags::get_double(const std::string& name, double def) const {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  RTDS_REQUIRE_MSG(end && *end == '\0', "--" << name << " expects a number");
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  RTDS_REQUIRE_MSG(false, "--" << name << " expects a boolean");
  return def;
}

std::uint64_t Flags::get_seed(const std::string& name, std::uint64_t def) const {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const auto v = std::strtoull(it->second.c_str(), &end, 0);
  RTDS_REQUIRE_MSG(end && *end == '\0', "--" << name << " expects a seed");
  return v;
}

void Flags::check_unused() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    RTDS_REQUIRE_MSG(used_.count(name) > 0, "unknown flag --" << name);
  }
}

}  // namespace rtds
