// Deterministic pseudo-random generation for workloads and topologies.
//
// Self-contained xoshiro256** seeded via SplitMix64 (Blackman & Vigna).
// We avoid std::mt19937 + std::distributions because their outputs are not
// specified identically across standard libraries; reproducibility of every
// experiment from a printed seed is a hard requirement here.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, tiny-state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 random bits.
  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponential variate with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Poisson variate (Knuth for small mean, normal approximation for large).
  std::int64_t poisson(double mean);

  /// Index in [0, weights.size()) drawn proportionally to weights (>= 0,
  /// not all zero).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-site streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;

  friend struct snap::Access;  // checkpoints capture the exact stream state
};

}  // namespace rtds
