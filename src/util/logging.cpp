#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace rtds {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
// The sink is shared process state and TrialRunner fans trials across real
// std::thread workers, so swapping or invoking it must be serialized. The
// mutex is only ever taken once the level check has passed — the disabled
// fast path (the default) stays a single relaxed atomic load.
std::mutex g_sink_mutex;
Log::Sink g_sink;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
void Log::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

void Log::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel lvl, const std::string& msg) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(lvl, msg);
  } else {
    std::cerr << '[' << level_name(lvl) << "] " << msg << '\n';
  }
}

}  // namespace rtds
