#include "util/logging.hpp"

#include <iostream>

namespace rtds {

namespace {
LogLevel g_level = LogLevel::kOff;
Log::Sink g_sink;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel lvl) { g_level = lvl; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel lvl, const std::string& msg) {
  if (g_sink) {
    g_sink(lvl, msg);
  } else {
    std::cerr << '[' << level_name(lvl) << "] " << msg << '\n';
  }
}

}  // namespace rtds
