// InlineVec<T, N>: a vector whose first N elements live on the stack.
//
// The admission tests and trial plans handle a handful of tasks per call
// but run tens of times per protocol round; their temporaries were ~40% of
// the round's allocator traffic. Restricted to trivially copyable T so
// growth and erase are memcpy/memmove, nothing more.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace rtds {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  InlineVec() = default;
  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  void push_back(const T& v) {
    if (size_ == capacity_) spill(2 * capacity_);
    data_[size_++] = v;
  }

  void assign(std::size_t n, const T& v) {
    size_ = 0;  // contents need not survive the spill
    if (n > capacity_) spill(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
    size_ = n;
  }

  void insert(T* pos, const T& v) {
    const std::size_t idx = static_cast<std::size_t>(pos - data_);
    RTDS_CHECK(idx <= size_);
    if (size_ == capacity_) spill(2 * capacity_);
    std::memmove(data_ + idx + 1, data_ + idx, sizeof(T) * (size_ - idx));
    data_[idx] = v;
    ++size_;
  }

  void erase(T* pos) {
    RTDS_CHECK(pos >= data_ && pos < data_ + size_);
    std::memmove(pos, pos + 1,
                 sizeof(T) * static_cast<std::size_t>(data_ + size_ - pos - 1));
    --size_;
  }

  void clear() { size_ = 0; }

 private:
  void spill(std::size_t new_cap) {
    std::vector<T> bigger(new_cap);
    std::memcpy(bigger.data(), data_, sizeof(T) * size_);
    heap_.swap(bigger);  // old heap_ (possibly data_'s target) dies after
    data_ = heap_.data();
    capacity_ = new_cap;
  }

  std::size_t size_ = 0;
  std::size_t capacity_ = N;
  std::vector<T> heap_;
  T inline_[N];
  T* data_ = inline_;
};

}  // namespace rtds
