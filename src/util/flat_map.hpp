// Open-addressed hash map for integer-keyed per-job bookkeeping.
//
// The zero-allocation core (DESIGN.md §7) removed node-based containers
// from the per-message hot paths; this removes them from the per-job ones.
// Linear probing over one flat slot array, power-of-two capacity, no
// erase (runs only accumulate). Keys are mixed with the splitmix64
// finalizer so clustered job ids still probe well; iteration order is
// probe-table order and therefore unspecified — callers that fold floats
// or print must use sorted_items(), which reproduces std::map's key order
// exactly (that keeps RunningStat accumulation bit-identical to the
// node-based containers this replaces).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds {

template <typename Key, typename Value>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` keys (one rehash up front instead of
  /// log(n) growth rehashes mid-run).
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * kMaxLoadNum < n * kMaxLoadDen) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  /// Inserts a default-constructed value on first access, like std::map.
  Value& operator[](const Key& key) {
    if (needs_growth()) rehash(slots_.empty() ? kMinCapacity
                                              : slots_.size() * 2);
    const std::size_t slot = probe(key);
    if (!slots_[slot].used) {
      slots_[slot].used = true;
      slots_[slot].key = key;
      slots_[slot].value = Value{};
      ++size_;
    }
    return slots_[slot].value;
  }

  Value* find(const Key& key) {
    if (slots_.empty()) return nullptr;
    const std::size_t slot = probe(key);
    return slots_[slot].used ? &slots_[slot].value : nullptr;
  }
  const Value* find(const Key& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  bool contains(const Key& key) const { return find(key) != nullptr; }

  /// Occupied (key, value) pairs sorted by key — the deterministic
  /// iteration order for end-of-run folds and printing.
  std::vector<std::pair<Key, Value>> sorted_items() const {
    std::vector<std::pair<Key, Value>> items;
    items.reserve(size_);
    for (const auto& slot : slots_)
      if (slot.used) items.emplace_back(slot.key, slot.value);
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return items;
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool used = false;
  };

  static constexpr std::size_t kMinCapacity = 16;
  // Grow beyond 7/8 load (linear probing stays short well past 1/2).
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  static std::size_t mix(const Key& key) {
    auto x = static_cast<std::uint64_t>(key);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  bool needs_growth() const {
    return slots_.empty() ||
           (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum;
  }

  /// First slot holding `key`, or the empty slot where it would go.
  std::size_t probe(const Key& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = mix(key) & mask;
    while (slots_[slot].used && !(slots_[slot].key == key))
      slot = (slot + 1) & mask;
    return slot;
  }

  void rehash(std::size_t capacity) {
    RTDS_CHECK((capacity & (capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    for (auto& slot : old) {
      if (!slot.used) continue;
      const std::size_t target = probe(slot.key);
      slots_[target] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

/// Open-addressed set with FlatMap's probing and growth policy.
template <typename Key>
class FlatSet {
 public:
  void insert(const Key& key) { map_[key] = true; }
  bool contains(const Key& key) const { return map_.contains(key); }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

 private:
  FlatMap<Key, bool> map_;

  friend struct snap::Access;  // checkpoints enumerate via map_.sorted_items()
};

}  // namespace rtds
