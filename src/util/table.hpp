// ASCII table writer used by bench binaries to print paper-style tables.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace rtds {

/// Accumulates rows of strings and renders an aligned ASCII table.
/// All bench binaries print through this so output stays uniform and
/// grep-able (`EXPERIMENTS.md` quotes these tables verbatim).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::size_t v);
  static std::string num(long long v);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   col1  col2
  ///   ----  ----
  ///   a     b
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtds
