#include "matching/bipartite.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace rtds {

BipartiteGraph::BipartiteGraph(std::size_t left_count, std::size_t right_count)
    : adj_(left_count), right_count_(right_count) {}

void BipartiteGraph::add_edge(std::size_t left, std::size_t right) {
  RTDS_REQUIRE(left < adj_.size());
  RTDS_REQUIRE(right < right_count_);
  auto& nbrs = adj_[left];
  if (std::find(nbrs.begin(), nbrs.end(), right) == nbrs.end())
    nbrs.push_back(right);
}

std::size_t BipartiteGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& nbrs : adj_) total += nbrs.size();
  return total;
}

namespace {

MatchingResult make_result(const BipartiteGraph& g,
                           std::vector<std::size_t> match_left,
                           std::vector<std::size_t> match_right) {
  MatchingResult res;
  res.match_of_left = std::move(match_left);
  res.match_of_right = std::move(match_right);
  res.size = static_cast<std::size_t>(
      std::count_if(res.match_of_left.begin(), res.match_of_left.end(),
                    [](std::size_t m) { return m != kUnmatched; }));
  (void)g;
  return res;
}

}  // namespace

MatchingResult max_matching_hopcroft_karp(const BipartiteGraph& g) {
  const std::size_t nl = g.left_count();
  const std::size_t nr = g.right_count();
  std::vector<std::size_t> match_l(nl, kUnmatched), match_r(nr, kUnmatched);
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(nl);

  auto bfs = [&]() -> bool {
    std::queue<std::size_t> q;
    for (std::size_t l = 0; l < nl; ++l) {
      if (match_l[l] == kUnmatched) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found_free = false;
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      for (std::size_t r : g.neighbors(l)) {
        const std::size_t next = match_r[r];
        if (next == kUnmatched) {
          found_free = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          q.push(next);
        }
      }
    }
    return found_free;
  };

  std::function<bool(std::size_t)> dfs = [&](std::size_t l) -> bool {
    for (std::size_t r : g.neighbors(l)) {
      const std::size_t next = match_r[r];
      if (next == kUnmatched || (dist[next] == dist[l] + 1 && dfs(next))) {
        match_l[l] = r;
        match_r[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  };

  while (bfs())
    for (std::size_t l = 0; l < nl; ++l)
      if (match_l[l] == kUnmatched) dfs(l);

  return make_result(g, std::move(match_l), std::move(match_r));
}

MatchingResult max_matching_kuhn(const BipartiteGraph& g) {
  const std::size_t nl = g.left_count();
  const std::size_t nr = g.right_count();
  std::vector<std::size_t> match_l(nl, kUnmatched), match_r(nr, kUnmatched);
  std::vector<bool> visited(nr);

  std::function<bool(std::size_t)> try_augment = [&](std::size_t l) -> bool {
    for (std::size_t r : g.neighbors(l)) {
      if (visited[r]) continue;
      visited[r] = true;
      if (match_r[r] == kUnmatched || try_augment(match_r[r])) {
        match_l[l] = r;
        match_r[r] = l;
        return true;
      }
    }
    return false;
  };

  for (std::size_t l = 0; l < nl; ++l) {
    std::fill(visited.begin(), visited.end(), false);
    try_augment(l);
  }
  return make_result(g, std::move(match_l), std::move(match_r));
}

}  // namespace rtds
