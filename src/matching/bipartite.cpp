#include "matching/bipartite.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace rtds {

BipartiteGraph::BipartiteGraph(std::size_t left_count, std::size_t right_count)
    : adj_(left_count), right_count_(right_count) {}

void BipartiteGraph::add_edge(std::size_t left, std::size_t right) {
  RTDS_REQUIRE(left < adj_.size());
  RTDS_REQUIRE(right < right_count_);
  adj_[left].push_back(right);
  deduped_ = false;
}

void BipartiteGraph::dedupe() const {
  // Stable first-occurrence dedupe; `stamp[r] == left+1` marks r as already
  // seen from the current left vertex.
  std::vector<std::size_t> stamp(right_count_, 0);
  for (std::size_t l = 0; l < adj_.size(); ++l) {
    auto& nbrs = adj_[l];
    std::size_t kept = 0;
    for (const std::size_t r : nbrs) {
      if (stamp[r] == l + 1) continue;
      stamp[r] = l + 1;
      nbrs[kept++] = r;
    }
    nbrs.resize(kept);
  }
  deduped_ = true;
}

std::size_t BipartiteGraph::edge_count() const {
  if (!deduped_) dedupe();
  std::size_t total = 0;
  for (const auto& nbrs : adj_) total += nbrs.size();
  return total;
}

namespace {

MatchingResult make_result(const BipartiteGraph& g,
                           std::vector<std::size_t> match_left,
                           std::vector<std::size_t> match_right) {
  MatchingResult res;
  res.match_of_left = std::move(match_left);
  res.match_of_right = std::move(match_right);
  res.size = static_cast<std::size_t>(
      std::count_if(res.match_of_left.begin(), res.match_of_left.end(),
                    [](std::size_t m) { return m != kUnmatched; }));
  (void)g;
  return res;
}

}  // namespace

MatchingResult max_matching_hopcroft_karp(const BipartiteGraph& g) {
  const std::size_t nl = g.left_count();
  const std::size_t nr = g.right_count();
  std::vector<std::size_t> match_l(nl, kUnmatched), match_r(nr, kUnmatched);
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(nl);

  auto bfs = [&]() -> bool {
    std::queue<std::size_t> q;
    for (std::size_t l = 0; l < nl; ++l) {
      if (match_l[l] == kUnmatched) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found_free = false;
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      for (std::size_t r : g.neighbors(l)) {
        const std::size_t next = match_r[r];
        if (next == kUnmatched) {
          found_free = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          q.push(next);
        }
      }
    }
    return found_free;
  };

  // Explicit-stack DFS (the recursive version burned a std::function frame
  // per level). A frame remembers which edge led downward (`via`); on
  // success the whole stack is the augmenting path, flipped in one sweep.
  // Edge order, the dist gate, and the fail marker (dist[l] = kInf) are
  // exactly the recursive algorithm's, so the matching is identical.
  struct Frame {
    std::size_t l;
    std::size_t edge;
    std::size_t via;
  };
  std::vector<Frame> stack;
  stack.reserve(nl);

  auto dfs = [&](std::size_t root) -> bool {
    stack.clear();
    stack.push_back(Frame{root, 0, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& nbrs = g.neighbors(f.l);
      bool descended = false;
      while (f.edge < nbrs.size()) {
        const std::size_t r = nbrs[f.edge++];
        const std::size_t next = match_r[r];
        if (next == kUnmatched) {
          f.via = r;
          for (const Frame& fr : stack) {
            match_l[fr.l] = fr.via;
            match_r[fr.via] = fr.l;
          }
          return true;
        }
        if (dist[next] == dist[f.l] + 1) {
          f.via = r;
          stack.push_back(Frame{next, 0, 0});  // invalidates f
          descended = true;
          break;
        }
      }
      if (descended) continue;
      dist[f.l] = kInf;
      stack.pop_back();
    }
    return false;
  };

  while (bfs())
    for (std::size_t l = 0; l < nl; ++l)
      if (match_l[l] == kUnmatched) dfs(l);

  return make_result(g, std::move(match_l), std::move(match_r));
}

MatchingResult max_matching_kuhn(const BipartiteGraph& g) {
  const std::size_t nl = g.left_count();
  const std::size_t nr = g.right_count();
  std::vector<std::size_t> match_l(nl, kUnmatched), match_r(nr, kUnmatched);
  std::vector<bool> visited(nr);

  std::function<bool(std::size_t)> try_augment = [&](std::size_t l) -> bool {
    for (std::size_t r : g.neighbors(l)) {
      if (visited[r]) continue;
      visited[r] = true;
      if (match_r[r] == kUnmatched || try_augment(match_r[r])) {
        match_l[l] = r;
        match_r[r] = l;
        return true;
      }
    }
    return false;
  };

  for (std::size_t l = 0; l < nl; ++l) {
    std::fill(visited.begin(), visited.end(), false);
    try_augment(l);
  }
  return make_result(g, std::move(match_l), std::move(match_r));
}

}  // namespace rtds
