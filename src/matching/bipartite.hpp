// Maximum bipartite matching — the paper's "maximum coupling" (§10).
//
// Validation produces, per ACS site, the list of logical processors it can
// endorse; the initiator must pick a site-per-logical-processor assignment.
// The job is accepted iff a matching of size |U| exists (a system of
// distinct representatives). Hopcroft–Karp is the production algorithm;
// Kuhn's augmenting-path method is kept as a reference oracle for tests.
#pragma once

#include <cstddef>
#include <vector>

namespace rtds {

/// Bipartite graph between `left_count` left vertices (logical processors)
/// and `right_count` right vertices (candidate sites). Edges are added as
/// (left, right) index pairs.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t left_count, std::size_t right_count);

  /// O(1): records the edge unconditionally. Duplicates are removed in one
  /// O(E) pass the first time the graph is read (a per-insertion duplicate
  /// scan made construction O(E·deg)). First-occurrence order is kept, so
  /// adjacency lists — and hence augmenting-path choices — are identical
  /// to what the scan-on-insert build produced.
  void add_edge(std::size_t left, std::size_t right);

  std::size_t left_count() const { return adj_.size(); }
  std::size_t right_count() const { return right_count_; }
  const std::vector<std::size_t>& neighbors(std::size_t left) const {
    if (!deduped_) dedupe();
    return adj_[left];
  }
  std::size_t edge_count() const;

 private:
  void dedupe() const;

  mutable std::vector<std::vector<std::size_t>> adj_;
  std::size_t right_count_;
  mutable bool deduped_ = true;
};

/// match_of_left[l] = matched right vertex or kUnmatched.
inline constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);

struct MatchingResult {
  std::vector<std::size_t> match_of_left;
  std::vector<std::size_t> match_of_right;
  std::size_t size = 0;

  /// True iff every left vertex (logical processor) is matched — the §10
  /// acceptance condition.
  bool perfect_on_left() const { return size == match_of_left.size(); }
};

/// Hopcroft–Karp: O(E sqrt(V)).
MatchingResult max_matching_hopcroft_karp(const BipartiteGraph& g);

/// Kuhn's algorithm (simple augmenting paths): O(V·E). Reference oracle.
MatchingResult max_matching_kuhn(const BipartiteGraph& g);

}  // namespace rtds
