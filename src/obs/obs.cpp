#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "util/error.hpp"

namespace rtds::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGaugeMax: return "gauge_max";
    case MetricKind::kHist: return "hist";
  }
  return "?";
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

MetricId Registry::intern(std::string_view name, MetricKind kind) {
  RTDS_REQUIRE_MSG(!name.empty(), "metric name must be non-empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(name); it != index_.end()) {
    const MetricId id{it->second};
    RTDS_REQUIRE_MSG(metrics_[id.index]->kind == kind,
                     "metric " << name << " registered as "
                               << to_string(metrics_[id.index]->kind)
                               << ", re-requested as " << to_string(kind));
    return id;
  }
  const auto index = static_cast<std::uint32_t>(metrics_.size());
  metrics_.push_back(std::make_unique<Info>(Info{std::string(name), kind}));
  index_.emplace(metrics_.back()->name, index);
  return MetricId{index};
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

const std::string& Registry::name(MetricId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RTDS_REQUIRE(id.index < metrics_.size());
  return metrics_[id.index]->name;
}

MetricKind Registry::kind(MetricId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RTDS_REQUIRE(id.index < metrics_.size());
  return metrics_[id.index]->kind;
}

void MetricsBuffer::observe(MetricId id, std::uint64_t v) {
  Cell& c = cell(id);
  ++c.count;
  c.sum += v;
  if (v < c.min) c.min = v;
  if (v > c.max) c.max = v;
  if (bins_.size() <= id.index) bins_.resize(id.index + 1);
  if (bins_[id.index] == nullptr) {
    bins_[id.index] = std::make_unique<std::uint64_t[]>(65);
    std::fill_n(bins_[id.index].get(), 65, 0);
  }
  // Bin 0 holds the value 0; bin k holds [2^(k-1), 2^k).
  ++bins_[id.index][v == 0 ? 0 : std::bit_width(v)];
}

bool MetricsBuffer::empty() const {
  for (const Cell& c : cells_)
    if (c.count != 0) return false;
  return true;
}

void MetricsBuffer::merge(const MetricsBuffer& other) {
  if (cells_.size() < other.cells_.size()) cells_.resize(other.cells_.size());
  for (std::size_t i = 0; i < other.cells_.size(); ++i) {
    const Cell& o = other.cells_[i];
    if (o.count == 0) continue;
    Cell& c = cells_[i];
    c.count += o.count;
    c.sum += o.sum;
    if (o.min < c.min) c.min = o.min;
    if (o.max > c.max) c.max = o.max;
  }
  if (bins_.size() < other.bins_.size()) bins_.resize(other.bins_.size());
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    if (other.bins_[i] == nullptr) continue;
    if (bins_[i] == nullptr) {
      bins_[i] = std::make_unique<std::uint64_t[]>(65);
      std::fill_n(bins_[i].get(), 65, 0);
    }
    for (std::size_t b = 0; b < 65; ++b) bins_[i][b] += other.bins_[i][b];
  }
}

void MetricsBuffer::write_jsonl(std::ostream& os) const {
  const Registry& reg = Registry::instance();
  // Name-sorted export: the registry's interning order depends on which
  // call sites ran first (and on which thread won a race), so it must not
  // shape the output.
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].count != 0) order.push_back(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return reg.name(MetricId{a}) < reg.name(MetricId{b});
            });
  for (const std::uint32_t i : order) {
    const Cell& c = cells_[i];
    const MetricKind kind = reg.kind(MetricId{i});
    os << "{\"metric\":\"" << reg.name(MetricId{i}) << "\",\"kind\":\""
       << to_string(kind) << "\",\"count\":" << c.count;
    switch (kind) {
      case MetricKind::kCounter:
        os << ",\"sum\":" << c.sum;
        break;
      case MetricKind::kGaugeMax:
        os << ",\"max\":" << c.max;
        break;
      case MetricKind::kHist:
        os << ",\"sum\":" << c.sum << ",\"min\":" << c.min
           << ",\"max\":" << c.max << ",\"bins\":{";
        if (i < bins_.size() && bins_[i] != nullptr) {
          bool first = true;
          for (std::size_t b = 0; b < 65; ++b) {
            if (bins_[i][b] == 0) continue;
            if (!first) os << ",";
            first = false;
            os << "\"" << b << "\":" << bins_[i][b];
          }
        }
        os << "}";
        break;
    }
    os << "}\n";
  }
}

const MetricsBuffer::Cell* MetricsBuffer::find(std::string_view name) const {
  const Registry& reg = Registry::instance();
  for (std::uint32_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].count != 0 && reg.name(MetricId{i}) == name)
      return &cells_[i];
  return nullptr;
}

std::uint64_t MetricsBuffer::sum(std::string_view name) const {
  const Cell* c = find(name);
  return c != nullptr ? c->sum : 0;
}

std::uint64_t MetricsBuffer::count(std::string_view name) const {
  const Cell* c = find(name);
  return c != nullptr ? c->count : 0;
}

}  // namespace rtds::obs
