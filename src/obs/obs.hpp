// Deterministic metrics registry — the hot half of the observability
// layer (DESIGN.md §11).
//
// Three ideas, in cost order:
//
//  1. A process-wide *registry* interns metric names into dense MetricIds
//     exactly once per call site (a function-local static inside the
//     RTDS_COUNT/RTDS_HIST macros), so the steady-state hot path never
//     touches a string or a map.
//  2. A per-trial *MetricsBuffer* holds the values: dense arrays indexed
//     by MetricId. An increment is one thread-local load, one branch and
//     two adds. Buffers from parallel trial workers merge with the same
//     parallel-combine rule as RunningStat — commutative and associative —
//     and the JSONL export sorts by metric name, so the emitted bytes are
//     invariant under worker count (pinned by tests/obs_test.cpp).
//  3. A thread-local *Context* binds the buffer (and optionally a
//     TraceRecorder, obs/trace.hpp) to whatever code the current thread
//     runs. Instrumented code never knows about trials or threads; the
//     TrialRunner installs an obs::Scope around each trial and the context
//     does the attribution.
//
// Overhead model (measured by BM_MetricsHotPath / bench_compare-gated):
//  * compiled out (-DRTDS_OBS=OFF): zero — the macros expand to nothing
//    and obs::current() is a constant nullptr, so every `if (current())`
//    block is dead code.
//  * compiled in, no Scope bound (the default for every experiment table):
//    one thread-local load + predictable branch per instrumentation site.
//  * bound: the increment itself, O(1), allocation-free in steady state.
//
// Determinism: metric values are functions of the simulated execution
// only — no wall clock, no addresses, no thread ids — so a (grid point,
// seed) trial always produces the same buffer, and trace/metrics output
// is a determinism surface pinned by golden digests exactly like the
// scenario tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef RTDS_OBS_ENABLED
#define RTDS_OBS_ENABLED 1
#endif

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds::obs {

class TraceRecorder;  // obs/trace.hpp

/// Dense handle for one registered metric; index into MetricsBuffer.
struct MetricId {
  std::uint32_t index = 0;
};

enum class MetricKind : std::uint8_t {
  kCounter,   ///< monotone sum of deltas
  kGaugeMax,  ///< maximum observed value
  kHist,      ///< count/sum/min/max plus power-of-two magnitude bins
};

const char* to_string(MetricKind kind);

/// Process-wide name -> MetricId interner. Registration is mutexed (it
/// happens once per call site); reads after interning are lock-free
/// because ids and names are append-only.
class Registry {
 public:
  static Registry& instance();

  /// Interns `name` with the given kind; returns the existing id when the
  /// name is already registered. Re-registering under a different kind
  /// throws — one name, one meaning.
  MetricId intern(std::string_view name, MetricKind kind);

  MetricId counter(std::string_view name) {
    return intern(name, MetricKind::kCounter);
  }
  MetricId gauge_max(std::string_view name) {
    return intern(name, MetricKind::kGaugeMax);
  }
  MetricId histogram(std::string_view name) {
    return intern(name, MetricKind::kHist);
  }

  /// Number of registered metrics (ids are 0..size()-1).
  std::size_t size() const;
  /// Name of a registered metric (stable reference).
  const std::string& name(MetricId id) const;
  MetricKind kind(MetricId id) const;

 private:
  Registry() = default;
  struct Info {
    std::string name;
    MetricKind kind;
  };
  mutable std::mutex mutex_;
  // Deque-like stable storage: names_ entries are never moved once
  // created, so name(id) may return references without the lock.
  std::vector<std::unique_ptr<Info>> metrics_;
  std::map<std::string, std::uint32_t, std::less<>> index_;
};

/// One trial's (or one run's) metric values: dense cells indexed by
/// MetricId, grown on first touch. Merging and exporting are cold paths.
class MetricsBuffer {
 public:
  /// Counter: accumulate `delta`.
  void add(MetricId id, std::uint64_t delta) {
    Cell& c = cell(id);
    ++c.count;
    c.sum += delta;
  }

  /// Gauge: keep the maximum observed value.
  void observe_max(MetricId id, std::uint64_t v) {
    Cell& c = cell(id);
    ++c.count;
    if (v > c.max) c.max = v;
  }

  /// Histogram: count/sum/min/max plus a power-of-two magnitude bin
  /// (bin k holds values in [2^(k-1), 2^k); bin 0 holds value 0).
  void observe(MetricId id, std::uint64_t v);

  /// True when nothing was ever recorded.
  bool empty() const;

  /// Parallel-combine: cellwise sum/min/max/bin-add. Commutative and
  /// associative, so merge order cannot leak into the output.
  void merge(const MetricsBuffer& other);

  void clear() { cells_.clear(); bins_.clear(); }

  /// One JSON object per recorded metric, sorted by metric name:
  ///   {"metric":NAME,"kind":KIND,"count":N,"sum":S} (counter)
  ///   {"metric":NAME,"kind":"gauge_max","count":N,"max":M}
  ///   {"metric":NAME,"kind":"hist","count":N,"sum":S,"min":m,"max":M,
  ///    "bins":{"K":N,...}} (empty bins omitted)
  /// Byte-deterministic: integers only, name-sorted.
  void write_jsonl(std::ostream& os) const;

  /// Counter sum / gauge-or-hist max by name; 0 when never recorded
  /// (test and report convenience — walks the registry, cold).
  std::uint64_t sum(std::string_view name) const;
  std::uint64_t count(std::string_view name) const;

 private:
  struct Cell {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = UINT64_MAX;
    std::uint64_t max = 0;
  };
  Cell& cell(MetricId id) {
    if (id.index >= cells_.size()) cells_.resize(id.index + 1);
    return cells_[id.index];
  }
  const Cell* find(std::string_view name) const;

  std::vector<Cell> cells_;
  /// Lazily allocated 64-way log2 bins, parallel to cells_ (hist only).
  std::vector<std::unique_ptr<std::uint64_t[]>> bins_;

  /// Checkpoints serialize cells by *name* (ids are process-interning
  /// order, which is not stable across builds or runs) — snap/.
  friend struct rtds::snap::Access;
};

/// What the current thread attributes its observations to.
struct Context {
  MetricsBuffer* metrics = nullptr;
  TraceRecorder* trace = nullptr;
};

#if RTDS_OBS_ENABLED
namespace detail {
inline thread_local Context* t_context = nullptr;
}
/// The binding installed by the innermost live Scope on this thread, or
/// nullptr (the common case: observation off, overhead is this load).
inline Context* current() { return detail::t_context; }
#else
inline constexpr Context* current() { return nullptr; }
#endif

/// RAII binding of a metrics buffer / trace recorder to the current
/// thread. Nests: the previous binding is restored on destruction.
class Scope {
 public:
  explicit Scope(MetricsBuffer* metrics, TraceRecorder* trace = nullptr) {
#if RTDS_OBS_ENABLED
    ctx_.metrics = metrics;
    ctx_.trace = trace;
    prev_ = detail::t_context;
    detail::t_context = &ctx_;
#else
    (void)metrics;
    (void)trace;
#endif
  }
  ~Scope() {
#if RTDS_OBS_ENABLED
    detail::t_context = prev_;
#endif
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
#if RTDS_OBS_ENABLED
  Context ctx_;
  Context* prev_ = nullptr;
#endif
};

}  // namespace rtds::obs

// Hot-path instrumentation macros. `name` must be a string literal (or at
// least live for the program — it is interned once per call site through a
// function-local static). All of them compile to nothing with
// -DRTDS_OBS=OFF and to a thread-local load + branch when no Scope is
// bound.
#if RTDS_OBS_ENABLED

#define RTDS_COUNT_N(name, delta)                                           \
  do {                                                                      \
    if (::rtds::obs::Context* rtds_obs_c_ = ::rtds::obs::current();         \
        rtds_obs_c_ != nullptr && rtds_obs_c_->metrics != nullptr) {        \
      static const ::rtds::obs::MetricId rtds_obs_id_ =                     \
          ::rtds::obs::Registry::instance().counter(name);                  \
      rtds_obs_c_->metrics->add(rtds_obs_id_,                               \
                                static_cast<std::uint64_t>(delta));         \
    }                                                                       \
  } while (0)

#define RTDS_GAUGE_MAX(name, value)                                         \
  do {                                                                      \
    if (::rtds::obs::Context* rtds_obs_c_ = ::rtds::obs::current();         \
        rtds_obs_c_ != nullptr && rtds_obs_c_->metrics != nullptr) {        \
      static const ::rtds::obs::MetricId rtds_obs_id_ =                     \
          ::rtds::obs::Registry::instance().gauge_max(name);                \
      rtds_obs_c_->metrics->observe_max(rtds_obs_id_,                       \
                                        static_cast<std::uint64_t>(value)); \
    }                                                                       \
  } while (0)

#define RTDS_HIST(name, value)                                              \
  do {                                                                      \
    if (::rtds::obs::Context* rtds_obs_c_ = ::rtds::obs::current();         \
        rtds_obs_c_ != nullptr && rtds_obs_c_->metrics != nullptr) {        \
      static const ::rtds::obs::MetricId rtds_obs_id_ =                     \
          ::rtds::obs::Registry::instance().histogram(name);                \
      rtds_obs_c_->metrics->observe(rtds_obs_id_,                           \
                                    static_cast<std::uint64_t>(value));     \
    }                                                                       \
  } while (0)

#else

#define RTDS_COUNT_N(name, delta) \
  do {                            \
  } while (0)
#define RTDS_GAUGE_MAX(name, value) \
  do {                              \
  } while (0)
#define RTDS_HIST(name, value) \
  do {                         \
  } while (0)

#endif

#define RTDS_COUNT(name) RTDS_COUNT_N(name, 1)
