// Wall-clock phase profiler — the "where does real time go" third of the
// observability layer (DESIGN.md §11).
//
// Scoped timers around the coarse phases of a run (APSP build, PCS/node
// bring-up, protocol execution, routing repair, trial fan-out) accumulate
// into one process-wide table keyed by phase name: count, total, max.
// `rtds_exp --profile` / `rtds_cli run --profile` enable it and print the
// table, giving the strong-scaling denominators ROADMAP item 1 needs.
//
// Wall time is inherently nondeterministic, so the profiler is kept
// strictly outside every determinism surface: nothing it measures ever
// reaches a table, sink, trace or metric — the report goes to stderr (or
// a stream the CLI owns) on request only. Disabled (the default), a
// ScopedPhase costs one relaxed atomic load; it never reads the clock.
// The accumulator is mutexed because trial workers are real threads —
// phase boundaries are orders of magnitude rarer than hot-path counters,
// so contention is irrelevant.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

#include "obs/obs.hpp"

namespace rtds::obs {

class Profiler {
 public:
  static Profiler& instance();

  /// Master switch (`--profile`). Off by default; flipping it on never
  /// changes simulation output, only whether wall clocks are read.
  static void set_enabled(bool on) {
    instance().enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Accumulates one timed interval under `phase`.
  void add(const std::string& phase, std::uint64_t ns);

  /// Drops all accumulated phases (CLIs reset before the timed region).
  void reset();

  /// Renders the accumulated table sorted by total time, descending:
  /// phase, count, total ms, mean us, max us. Empty profile prints a
  /// one-line note.
  void report(std::ostream& os) const;

 private:
  Profiler() = default;
  struct Acc {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, Acc> phases_;
};

/// RAII phase timer. Reads the clock only when the profiler is enabled at
/// construction time; `name` must outlive the scope (string literals).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;  ///< 0 = profiler was off, skip the stop
};

}  // namespace rtds::obs

/// Times the rest of the enclosing scope under `name` when profiling is
/// enabled. Compiled out entirely with -DRTDS_OBS=OFF.
#if RTDS_OBS_ENABLED
#define RTDS_OBS_PHASE_CAT2(a, b) a##b
#define RTDS_OBS_PHASE_CAT(a, b) RTDS_OBS_PHASE_CAT2(a, b)
#define RTDS_OBS_PHASE(name) \
  ::rtds::obs::ScopedPhase RTDS_OBS_PHASE_CAT(rtds_obs_phase_, __LINE__)(name)
#else
#define RTDS_OBS_PHASE(name) \
  do {                       \
  } while (0)
#endif
