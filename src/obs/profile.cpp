#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "util/table.hpp"

namespace rtds::obs {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::add(const std::string& phase, std::uint64_t ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Acc& acc = phases_[phase];
  ++acc.count;
  acc.total_ns += ns;
  acc.max_ns = std::max(acc.max_ns, ns);
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  phases_.clear();
}

void Profiler::report(std::ostream& os) const {
  std::vector<std::pair<std::string, Acc>> rows;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rows.assign(phases_.begin(), phases_.end());
  }
  if (rows.empty()) {
    os << "profile: no phases recorded (is --profile on?)\n";
    return;
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns)
      return a.second.total_ns > b.second.total_ns;
    return a.first < b.first;
  });
  Table t({"phase", "count", "total ms", "mean us", "max us"});
  for (const auto& [name, acc] : rows) {
    t.add_row({name, Table::num(acc.count),
               Table::num(static_cast<double>(acc.total_ns) / 1e6, 3),
               Table::num(static_cast<double>(acc.total_ns) /
                              static_cast<double>(acc.count) / 1e3,
                          3),
               Table::num(static_cast<double>(acc.max_ns) / 1e3, 3)});
  }
  t.print(os);
}

ScopedPhase::ScopedPhase(const char* name) : name_(name) {
  if (Profiler::enabled()) start_ns_ = now_ns();
}

ScopedPhase::~ScopedPhase() {
  if (start_ns_ == 0) return;
  Profiler::instance().add(name_, now_ns() - start_ns_);
}

}  // namespace rtds::obs
