// Structured trace recorder — the timeline half of the observability
// layer (DESIGN.md §11).
//
// A TraceRecorder captures an append-only sequence of events stamped with
// simulated time: per-protocol-phase spans (async begin/end keyed by job
// id) and per-message instants. Because one trial is single-threaded and
// every event is emitted from inside the simulator's (time, seq) total
// order, the recorded sequence is a pure function of (grid point, seed) —
// trace output is a determinism surface exactly like the scenario tables,
// and tests/obs_test.cpp pins it with a golden digest at 1 and 8 workers.
//
// Two exporters:
//  * write_chrome — Chrome trace-event JSON (the "JSON Array Format"),
//    loadable in Perfetto / chrome://tracing. Sim time maps to the `ts`
//    microsecond field unchanged; each trial becomes one process (pid),
//    each site one thread (tid); protocol phases are nestable async spans
//    ("b"/"e") scoped to the trial via id2.local, messages are thread
//    instants ("i").
//  * write_jsonl — one compact JSON object per event, in recording order,
//    for grep/jq pipelines and archival next to the experiment sinks.
//
// Event names and categories must be string literals (or outlive the
// recorder): the recorder stores the pointers, never copies — recording an
// event is a bounds check and a 48-byte append.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "obs/obs.hpp"

namespace rtds::obs {

class TraceRecorder {
 public:
  enum class Phase : std::uint8_t {
    kBegin,    ///< async span open  (chrome ph "b")
    kEnd,      ///< async span close (chrome ph "e")
    kInstant,  ///< point event      (chrome ph "i", thread scope)
  };

  struct Event {
    const char* cat;    ///< chrome category, e.g. "protocol"
    const char* name;   ///< event name, e.g. "enroll"
    double ts;          ///< simulated time
    std::uint64_t id;   ///< span correlation id (job id) / instant arg "id"
    std::uint64_t arg;  ///< one numeric payload, exported as args.v
    std::uint32_t site; ///< emitting site -> chrome tid
    Phase ph;
  };

  /// Opens an async span `id` (spans of one job may interleave freely with
  /// other jobs on the same site — async events don't need stack nesting).
  void begin(const char* cat, const char* name, double ts, std::uint32_t site,
             std::uint64_t id, std::uint64_t arg = 0) {
    events_.push_back(Event{cat, name, ts, id, arg, site, Phase::kBegin});
  }
  /// Closes the matching async span.
  void end(const char* cat, const char* name, double ts, std::uint32_t site,
           std::uint64_t id, std::uint64_t arg = 0) {
    events_.push_back(Event{cat, name, ts, id, arg, site, Phase::kEnd});
  }
  /// Records a point event on `site`'s timeline.
  void instant(const char* cat, const char* name, double ts,
               std::uint32_t site, std::uint64_t id = 0,
               std::uint64_t arg = 0) {
    events_.push_back(Event{cat, name, ts, id, arg, site, Phase::kInstant});
  }

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }
  const std::vector<Event>& events() const { return events_; }

  /// Chrome trace-event JSON over one recorder per trial, in trial order
  /// (trial index = pid). Deterministic bytes for deterministic input.
  static void write_chrome(std::ostream& os,
                           std::span<const TraceRecorder> trials);
  /// Compact JSONL, one event per line, trials in order.
  static void write_jsonl(std::ostream& os,
                          std::span<const TraceRecorder> trials);

 private:
  std::vector<Event> events_;
};

#if RTDS_OBS_ENABLED
/// The trace recorder bound to this thread, or nullptr — instrumentation
/// guards every event with `if (auto* tr = obs::tracer())`.
inline TraceRecorder* tracer() {
  const Context* c = current();
  return c != nullptr ? c->trace : nullptr;
}
#else
inline constexpr TraceRecorder* tracer() { return nullptr; }
#endif

}  // namespace rtds::obs
