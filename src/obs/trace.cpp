#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace rtds::obs {

namespace {

/// Shortest round-trippable decimal for a sim timestamp. printf %.17g is
/// deterministic for identical doubles, which the (time, seq) contract
/// guarantees — this is what makes trace bytes diggestible.
void put_ts(std::ostream& os, double ts) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", ts);
  os << buf;
}

void put_hex_id(std::ostream& os, std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, id);
  os << buf;
}

void write_chrome_event(std::ostream& os, std::size_t trial,
                        const TraceRecorder::Event& e) {
  os << "{\"cat\":\"" << e.cat << "\",\"name\":\"" << e.name << "\",\"ph\":\"";
  switch (e.ph) {
    case TraceRecorder::Phase::kBegin: os << "b"; break;
    case TraceRecorder::Phase::kEnd: os << "e"; break;
    case TraceRecorder::Phase::kInstant: os << "i\",\"s\":\"t"; break;
  }
  os << "\",\"ts\":";
  put_ts(os, e.ts);
  os << ",\"pid\":" << trial << ",\"tid\":" << e.site;
  if (e.ph == TraceRecorder::Phase::kInstant) {
    os << ",\"args\":{\"id\":" << e.id << ",\"v\":" << e.arg << "}}";
    return;
  }
  // Async spans correlate begin/end through id2.local, which scopes the id
  // to the pid — job ids repeat across trials, sim timestamps overlap, and
  // a process-local id keeps Perfetto from pairing spans across trials.
  os << ",\"id2\":{\"local\":\"";
  put_hex_id(os, e.id);
  os << "\"},\"args\":{\"v\":" << e.arg << "}}";
}

}  // namespace

void TraceRecorder::write_chrome(std::ostream& os,
                                 std::span<const TraceRecorder> trials) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t t = 0; t < trials.size(); ++t) {
    if (trials[t].empty()) continue;
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << t
       << ",\"tid\":0,\"args\":{\"name\":\"trial " << t << "\"}}";
    for (const Event& e : trials[t].events()) {
      os << ",\n";
      write_chrome_event(os, t, e);
    }
  }
  os << "\n]}\n";
}

void TraceRecorder::write_jsonl(std::ostream& os,
                                std::span<const TraceRecorder> trials) {
  for (std::size_t t = 0; t < trials.size(); ++t) {
    for (const Event& e : trials[t].events()) {
      os << "{\"trial\":" << t << ",\"ph\":\"";
      switch (e.ph) {
        case Phase::kBegin: os << "b"; break;
        case Phase::kEnd: os << "e"; break;
        case Phase::kInstant: os << "i"; break;
      }
      os << "\",\"cat\":\"" << e.cat << "\",\"name\":\"" << e.name
         << "\",\"ts\":";
      put_ts(os, e.ts);
      os << ",\"site\":" << e.site << ",\"id\":" << e.id << ",\"v\":" << e.arg
         << "}\n";
    }
  }
}

}  // namespace rtds::obs
