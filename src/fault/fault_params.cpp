#include "fault/fault_params.hpp"

#include <algorithm>

namespace rtds::fault {

Time fault_horizon(const std::vector<JobArrival>& arrivals) {
  Time horizon = 0.0;
  for (const auto& a : arrivals) horizon = std::max(horizon, a.job->deadline);
  return horizon;
}

policy::ParamSchema& add_crash_params(policy::ParamSchema& schema) {
  schema
      .add_double("faults.site_rate", 0.0,
                  "site crashes per site per time unit (0 = faultless)")
      .add_double("faults.site_mttr", 25.0, "mean site down-time")
      .add_int("faults.seed", 42, "fault plan + perturbation stream seed");
  return schema;
}

policy::ParamSchema& add_fault_params(policy::ParamSchema& schema) {
  add_crash_params(schema);
  schema
      .add_double("faults.link_rate", 0.0,
                  "link failures per link per time unit")
      .add_double("faults.link_mttr", 10.0, "mean link down-time")
      .add_double("faults.drop", 0.0, "per-send message loss probability")
      .add_double("faults.extra_delay", 0.0,
                  "uniform [0, max) extra delay per send")
      .add_double("faults.dup", 0.0,
                  "per-send message duplication probability")
      .add_double("faults.reorder", 0.0,
                  "per-send probability of FIFO-violating reorder jitter")
      .add_double("faults.reorder_delay", 1.0,
                  "uniform [0, max) reorder jitter delay")
      .add_double("faults.partition_rate", 0.0,
                  "network partitions per time unit (random halving cuts)")
      .add_double("faults.partition_mttr", 15.0,
                  "mean partition duration before healing")
      .add_bool("faults.retransmit", false,
                "ack+retransmit unanswered protocol messages with capped "
                "exponential backoff")
      .add_int("faults.retransmit_tries", 3,
               "max retransmissions per unanswered message");
  return schema;
}

FaultSpec fault_spec_from(const policy::ParamMap& params, Time horizon) {
  FaultSpec spec;
  spec.site_rate = params.get_double("faults.site_rate", spec.site_rate);
  spec.site_mttr = params.get_double("faults.site_mttr", spec.site_mttr);
  spec.link_rate = params.get_double("faults.link_rate", spec.link_rate);
  spec.link_mttr = params.get_double("faults.link_mttr", spec.link_mttr);
  spec.drop_prob = params.get_double("faults.drop", spec.drop_prob);
  spec.extra_delay_max =
      params.get_double("faults.extra_delay", spec.extra_delay_max);
  spec.dup_prob = params.get_double("faults.dup", spec.dup_prob);
  spec.reorder_prob = params.get_double("faults.reorder", spec.reorder_prob);
  spec.reorder_delay_max =
      params.get_double("faults.reorder_delay", spec.reorder_delay_max);
  spec.partition_rate =
      params.get_double("faults.partition_rate", spec.partition_rate);
  spec.partition_mttr =
      params.get_double("faults.partition_mttr", spec.partition_mttr);
  spec.seed = static_cast<std::uint64_t>(
      params.get_int("faults.seed", static_cast<std::int64_t>(spec.seed)));
  spec.horizon = horizon;
  return spec;
}

}  // namespace rtds::fault
