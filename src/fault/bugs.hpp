// Deliberately injected bugs for mutation-testing the fuzzer (DESIGN.md
// §15). Each enumerator re-introduces one specific, historically plausible
// defect behind a process-global switch; tests/fuzz_test.cpp flips a bug on
// and asserts rtds_fuzz finds and shrinks it within a pinned seed budget.
// kNone (the default) must keep every code path bit-identical to the
// unhooked build — the golden determinism digests pin that.
#pragma once

namespace rtds::fault {

enum class InjectedBug {
  kNone,
  /// Dedup-window boundary off-by-one: every 8th fresh sequence is
  /// misreported as already seen, so legitimate protocol messages are
  /// silently dropped (a lost dispatch leaves a guaranteed job short of
  /// its tasks — the end-of-run completion invariant).
  kDedupFalsePositive,
  /// Incremental routing repair under-dirties by one ring: stale routes
  /// survive at the ball edge (repair-consistency / repair-divergence).
  kRepairRadiusOffByOne,
  /// crash() forgets to drop the local PCS lock: the dead site still
  /// "holds" it when the run drains (lock-conservation).
  kCrashKeepsLock,
};

void set_injected_bug(InjectedBug bug);
InjectedBug injected_bug();

/// RAII guard for tests: installs a bug, restores the previous one.
class InjectedBugScope {
 public:
  explicit InjectedBugScope(InjectedBug bug) : prev_(injected_bug()) {
    set_injected_bug(bug);
  }
  ~InjectedBugScope() { set_injected_bug(prev_); }
  InjectedBugScope(const InjectedBugScope&) = delete;
  InjectedBugScope& operator=(const InjectedBugScope&) = delete;

 private:
  InjectedBug prev_;
};

}  // namespace rtds::fault
