#include "fault/fault.hpp"

#include <algorithm>

namespace rtds::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSiteDown: return "site_down";
    case FaultKind::kSiteUp: return "site_up";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
  }
  return "?";
}

namespace {

/// Generates the alternating up/down toggle times of one element and
/// appends the corresponding event pairs. Each element draws from its own
/// split() child generator, so adding sites/links to a spec never perturbs
/// the streams of the others.
void generate_on_off(Rng& rng, double fail_rate, double mttr, Time horizon,
                     FaultKind down, FaultKind up, SiteId a, SiteId b,
                     std::vector<FaultEvent>& out) {
  if (fail_rate <= 0.0 || horizon <= 0.0) return;
  RTDS_REQUIRE_MSG(mttr > 0.0, "fault mean-time-to-recover must be > 0");
  Time t = 0.0;
  for (;;) {
    t += rng.exponential(fail_rate);
    if (t >= horizon) return;
    out.push_back(FaultEvent{t, down, a, b});
    t += rng.exponential(1.0 / mttr);
    if (t >= horizon) return;  // still down at the horizon: stays down
    out.push_back(FaultEvent{t, up, a, b});
  }
}

}  // namespace

FaultPlan FaultPlan::from_spec(const FaultSpec& spec, const Topology& topo) {
  RTDS_REQUIRE_MSG(spec.drop_prob >= 0.0 && spec.drop_prob < 1.0,
                   "faults.drop must be in [0, 1): " << spec.drop_prob);
  RTDS_REQUIRE(spec.extra_delay_max >= 0.0);
  RTDS_REQUIRE_MSG(spec.dup_prob >= 0.0 && spec.dup_prob < 1.0,
                   "faults.dup must be in [0, 1): " << spec.dup_prob);
  RTDS_REQUIRE_MSG(spec.reorder_prob >= 0.0 && spec.reorder_prob < 1.0,
                   "faults.reorder must be in [0, 1): " << spec.reorder_prob);
  RTDS_REQUIRE(spec.reorder_delay_max >= 0.0);
  RTDS_REQUIRE(spec.partition_rate >= 0.0);
  FaultPlan plan;
  plan.drop_prob = spec.drop_prob;
  plan.extra_delay_max = spec.extra_delay_max;
  plan.dup_prob = spec.dup_prob;
  plan.reorder_prob = spec.reorder_prob;
  plan.reorder_delay_max = spec.reorder_delay_max;
  plan.seed = spec.seed;
  if (spec.empty()) return plan;

  Rng root(spec.seed);
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    Rng child = root.split();
    generate_on_off(child, spec.site_rate, spec.site_mttr, spec.horizon,
                    FaultKind::kSiteDown, FaultKind::kSiteUp, s, kNoSite,
                    plan.events);
  }
  for (const Link& l : topo.links()) {
    Rng child = root.split();
    generate_on_off(child, spec.link_rate, spec.link_mttr, spec.horizon,
                    FaultKind::kLinkDown, FaultKind::kLinkUp, l.a, l.b,
                    plan.events);
  }
  // The partition process draws its child *after* every site and link, so
  // enabling partitions never perturbs the crash/flap streams of a spec
  // that already generated them (stream stability, as for sites vs links).
  if (spec.partition_rate > 0.0 && spec.horizon > 0.0 &&
      topo.site_count() >= 2) {
    RTDS_REQUIRE_MSG(spec.partition_mttr > 0.0,
                     "faults.partition_mttr must be > 0");
    Rng child = root.split();
    Time t = 0.0;
    for (;;) {
      t += child.exponential(spec.partition_rate);
      if (t >= spec.horizon) break;
      const SiteId cut = static_cast<SiteId>(child.uniform_int(
          1, static_cast<std::int64_t>(topo.site_count()) - 1));
      plan.events.push_back(FaultEvent{t, FaultKind::kPartition, cut, kNoSite});
      t += child.exponential(1.0 / spec.partition_mttr);
      if (t >= spec.horizon) {
        // Still split at the horizon: heal exactly there so a finite run
        // always ends with a whole network (leases can then drain).
        t = spec.horizon;
      }
      plan.events.push_back(FaultEvent{t, FaultKind::kHeal, 0, kNoSite});
      if (t >= spec.horizon) break;
    }
  }
  // Stable by time: simultaneous events keep generation order (sites by id,
  // then links by Topology::links() order, then partitions) — a total,
  // reproducible order.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  plan.validate(topo);
  return plan;
}

void FaultPlan::validate(const Topology& topo) const {
  const auto n = topo.site_count();
  Time prev = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    RTDS_REQUIRE_MSG(ev.at >= 0.0, "fault event #" << i
                                       << ": negative time " << ev.at);
    RTDS_REQUIRE_MSG(ev.at >= prev, "fault event #" << i << " at t=" << ev.at
                                        << " precedes event #" << (i - 1)
                                        << " at t=" << prev
                                        << " (events must be time-sorted)");
    prev = ev.at;
    switch (ev.kind) {
      case FaultKind::kSiteDown:
      case FaultKind::kSiteUp:
        RTDS_REQUIRE_MSG(ev.a < n, "fault event #" << i << " ("
                                       << to_string(ev.kind) << "): site "
                                       << ev.a << " out of range (" << n
                                       << " sites)");
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        RTDS_REQUIRE_MSG(ev.a < n && ev.b < n,
                         "fault event #" << i << " (" << to_string(ev.kind)
                                         << "): endpoint out of range: "
                                         << ev.a << "--" << ev.b);
        RTDS_REQUIRE_MSG(topo.adjacent(ev.a, ev.b),
                         "fault event #" << i << " (" << to_string(ev.kind)
                                         << "): no link " << ev.a << "--"
                                         << ev.b << " in the topology");
        break;
      case FaultKind::kPartition:
        RTDS_REQUIRE_MSG(ev.a >= 1 && ev.a < n,
                         "fault event #" << i << " (partition): boundary "
                                         << ev.a << " must be in [1, " << n
                                         << ")");
        break;
      case FaultKind::kHeal:
        break;
    }
  }
}

// ------------------------------------------------------------ FaultState --

FaultState::FaultState(const Topology& topo, const FaultPlan& plan)
    : topo_(topo),
      site_up_(topo.site_count(), 1),
      link_up_(topo.link_count(), 1),
      drop_prob_(plan.drop_prob),
      extra_delay_max_(plan.extra_delay_max),
      dup_prob_(plan.dup_prob),
      reorder_prob_(plan.reorder_prob),
      reorder_delay_max_(plan.reorder_delay_max),
      perturb_rng_(plan.seed ^ 0x9e3779b97f4a7c15ULL) {
  link_of_pair_.reserve(topo.link_count());
  const auto& links = topo.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto lo = std::min(links[i].a, links[i].b);
    const auto hi = std::max(links[i].a, links[i].b);
    link_of_pair_.emplace_back((std::uint64_t{lo} << 32) | hi, i);
  }
  std::sort(link_of_pair_.begin(), link_of_pair_.end());
}

std::size_t FaultState::link_index(SiteId a, SiteId b) const {
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  const std::uint64_t key = (std::uint64_t{lo} << 32) | hi;
  const auto it = std::lower_bound(
      link_of_pair_.begin(), link_of_pair_.end(), key,
      [](const auto& entry, std::uint64_t k) { return entry.first < k; });
  RTDS_REQUIRE_MSG(it != link_of_pair_.end() && it->first == key,
                   "no link " << a << "--" << b << " in the topology");
  return it->second;
}

bool FaultState::link_up(SiteId a, SiteId b) const {
  return site_up_[a] && site_up_[b] && link_up_[link_index(a, b)];
}

bool FaultState::apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kSiteDown:
      if (!site_up_[ev.a]) return false;
      site_up_[ev.a] = 0;
      ++sites_down_;
      return true;
    case FaultKind::kSiteUp:
      if (site_up_[ev.a]) return false;
      site_up_[ev.a] = 1;
      --sites_down_;
      return true;
    case FaultKind::kLinkDown: {
      const auto i = link_index(ev.a, ev.b);
      if (!link_up_[i]) return false;
      link_up_[i] = 0;
      ++links_down_;
      return true;
    }
    case FaultKind::kLinkUp: {
      const auto i = link_index(ev.a, ev.b);
      if (link_up_[i]) return false;
      // A cut link may not recover while the partition holds: defer the
      // recovery by handing ownership of the link to the partition, which
      // restores it at kHeal.
      if (partition_boundary_ != 0) {
        const auto& l = topo_.links()[i];
        if ((l.a < partition_boundary_) != (l.b < partition_boundary_)) {
          partition_downed_.push_back(i);
          return false;
        }
      }
      link_up_[i] = 1;
      --links_down_;
      return true;
    }
    case FaultKind::kPartition: {
      if (partition_boundary_ != 0) return false;  // one partition at a time
      partition_boundary_ = ev.a;
      partition_changed_sites_.clear();
      const auto& links = topo_.links();
      for (std::size_t i = 0; i < links.size(); ++i) {
        if ((links[i].a < ev.a) == (links[i].b < ev.a)) continue;
        if (!link_up_[i]) continue;  // independently down: not ours to heal
        link_up_[i] = 0;
        ++links_down_;
        partition_downed_.push_back(i);
        partition_changed_sites_.push_back(links[i].a);
        partition_changed_sites_.push_back(links[i].b);
      }
      return !partition_changed_sites_.empty();
    }
    case FaultKind::kHeal: {
      if (partition_boundary_ == 0) return false;
      partition_boundary_ = 0;
      partition_changed_sites_.clear();
      for (const std::size_t i : partition_downed_) {
        if (link_up_[i]) continue;
        link_up_[i] = 1;
        --links_down_;
        partition_changed_sites_.push_back(topo_.links()[i].a);
        partition_changed_sites_.push_back(topo_.links()[i].b);
      }
      partition_downed_.clear();
      return !partition_changed_sites_.empty();
    }
  }
  return false;
}

bool FaultState::sample_drop() {
  if (drop_prob_ <= 0.0) return false;
  return perturb_rng_.bernoulli(drop_prob_);
}

Time FaultState::sample_extra_delay() {
  if (extra_delay_max_ <= 0.0) return 0.0;
  return perturb_rng_.uniform(0.0, extra_delay_max_);
}

bool FaultState::sample_duplicate() {
  if (dup_prob_ <= 0.0) return false;
  return perturb_rng_.bernoulli(dup_prob_);
}

Time FaultState::sample_reorder_delay() {
  if (reorder_prob_ <= 0.0) return 0.0;
  if (!perturb_rng_.bernoulli(reorder_prob_)) return 0.0;
  return perturb_rng_.uniform(0.0, reorder_delay_max_);
}

std::size_t FaultState::live_link_count(const Topology& topo) const {
  std::size_t live = 0;
  const auto& links = topo.links();
  for (std::size_t i = 0; i < links.size(); ++i)
    if (link_up_[i] && site_up_[links[i].a] && site_up_[links[i].b]) ++live;
  return live;
}

// ----------------------------------------------------------- SiteTimeline --

SiteTimeline::SiteTimeline(const FaultPlan& plan, std::size_t sites)
    : toggles_(sites) {
  for (const FaultEvent& ev : plan.events) {
    if (ev.kind != FaultKind::kSiteDown && ev.kind != FaultKind::kSiteUp)
      continue;
    const bool up = ev.kind == FaultKind::kSiteUp;
    RTDS_REQUIRE(ev.a < sites);
    auto& t = toggles_[ev.a];
    // Sites start up and generated plans alternate; tolerate redundant
    // scripted events by skipping no-op toggles.
    const bool currently_up = t.size() % 2 == 0;
    if (up == currently_up) continue;
    t.push_back(ev.at);
    events_.push_back(Event{ev.at, ev.a, up});
  }
}

bool SiteTimeline::up_at(SiteId s, Time t) const {
  if (s >= toggles_.size()) return true;
  const auto& tg = toggles_[s];
  const auto applied = static_cast<std::size_t>(
      std::upper_bound(tg.begin(), tg.end(), t) - tg.begin());
  return applied % 2 == 0;
}

}  // namespace rtds::fault
