// Deterministic fault injection and dynamic topology (DESIGN.md §9).
//
// The paper's §2 network model is faultless: links are loss-less and sites
// never die. This layer relaxes exactly that assumption, as *data*: a
// FaultPlan is a time-ordered script of site-crash/recover,
// link-down/up and partition/heal events plus per-send message
// perturbations (drop probability, extra delay, duplication, FIFO-violating
// reorder jitter), either written explicitly (tests, worked examples) or
// generated from seeded exponential on/off processes (FaultPlan::from_spec).
// Everything downstream consumes the plan through FaultState, a runtime
// view the simulator advances event by event. The adversarial-network
// extension (DESIGN.md §12) is what the RtdsNode hardening — dedup windows,
// ack+retransmit — is tested against.
//
// Determinism contract: a plan is a pure function of its FaultSpec (seed
// included), and a run under a plan is single-threaded discrete-event
// simulation — so fault runs are bit-identical for a given seed regardless
// of experiment-runner worker count. An empty plan must leave every
// consumer on its exact pre-fault code path (no timers armed, no RNG
// consumed); tests/fault_test.cpp pins both properties.
//
// Crash semantics (the §9 design choice): crash = lose in-flight state.
// A crashed site drops its lock, queue, active initiations, outstanding
// endorsements and its whole scheduling plan; committed-but-unfinished
// jobs with work on the site are lost. Link-down = drop (messages in
// flight on a downed link are lost, not buffered).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds::fault {

enum class FaultKind : std::uint8_t {
  kSiteDown,   ///< site `a` crashes (loses all in-flight state)
  kSiteUp,     ///< site `a` recovers with an empty plan
  kLinkDown,   ///< link `a`--`b` stops carrying messages
  kLinkUp,     ///< link `a`--`b` comes back
  kPartition,  ///< network splits into sites [0, a) vs [a, N)
  kHeal,       ///< the active partition heals
};

const char* to_string(FaultKind kind);

/// One scripted fault, applied at absolute simulation time `at`. For site
/// events `b` is unused (kNoSite). For kPartition, `a` is the cut boundary
/// (every link crossing [0,a) | [a,N) goes down until kHeal); for kHeal
/// both `a` and `b` are unused.
struct FaultEvent {
  Time at = 0.0;
  FaultKind kind = FaultKind::kSiteDown;
  SiteId a = 0;
  SiteId b = kNoSite;
};

/// Seeded random fault processes. Each site (link) alternates exponential
/// up-times at rate `site_rate` (`link_rate`) with exponential down-times
/// of mean `site_mttr` (`link_mttr`); events are generated over
/// [0, horizon). All-zero rates and perturbations yield an empty plan.
struct FaultSpec {
  double site_rate = 0.0;       ///< crashes per site per time unit
  double site_mttr = 25.0;      ///< mean site down-time
  double link_rate = 0.0;       ///< failures per link per time unit
  double link_mttr = 10.0;      ///< mean link down-time
  double drop_prob = 0.0;       ///< per-send message loss probability
  double extra_delay_max = 0.0; ///< uniform [0, max) extra delay per send
  double dup_prob = 0.0;        ///< per-send message duplication probability
  double reorder_prob = 0.0;    ///< per-send probability of reorder jitter
  double reorder_delay_max = 1.0;  ///< uniform [0, max) jitter when reordered
  double partition_rate = 0.0;  ///< network partitions per time unit
  double partition_mttr = 15.0; ///< mean partition duration before healing
  Time horizon = 0.0;           ///< event generation window
  std::uint64_t seed = 42;      ///< plan + perturbation stream seed

  bool empty() const {
    return site_rate <= 0.0 && link_rate <= 0.0 && drop_prob <= 0.0 &&
           extra_delay_max <= 0.0 && dup_prob <= 0.0 && reorder_prob <= 0.0 &&
           partition_rate <= 0.0;
  }
};

/// The full fault script for one run: time-sorted events plus the message
/// perturbation parameters. Copyable value type — it rides inside
/// SystemConfig / baseline configs.
struct FaultPlan {
  std::vector<FaultEvent> events;  ///< ascending by `at` (ties: input order)
  double drop_prob = 0.0;
  double extra_delay_max = 0.0;
  double dup_prob = 0.0;
  double reorder_prob = 0.0;
  double reorder_delay_max = 1.0;
  std::uint64_t seed = 42;

  /// True iff the plan changes nothing: consumers must then behave
  /// bit-identically to a run with no plan at all.
  bool empty() const {
    return events.empty() && drop_prob <= 0.0 && extra_delay_max <= 0.0 &&
           dup_prob <= 0.0 && reorder_prob <= 0.0;
  }

  /// Rejects malformed plans up front instead of failing (or, worse,
  /// silently misbehaving) at apply time: out-of-range sites, links absent
  /// from the topology, partition boundaries outside [1, N), negative or
  /// non-monotone event times. Throws ContractViolation with the offending
  /// event index. RtdsSystem calls this on every scripted plan.
  void validate(const Topology& topo) const;

  /// Generates the deterministic plan for `spec` on `topo` (sites/links
  /// index into it). Same spec -> same plan, always.
  static FaultPlan from_spec(const FaultSpec& spec, const Topology& topo);
};

/// Runtime fault view: which sites/links are currently up, plus the
/// deterministic per-send perturbation stream. The owner (RtdsSystem)
/// applies plan events in time order via apply(); transports consult the
/// up/down state and sample perturbations at send/delivery time.
class FaultState {
 public:
  FaultState(const Topology& topo, const FaultPlan& plan);

  bool site_up(SiteId s) const { return site_up_[s]; }
  /// Both endpoints up and the link itself up.
  bool link_up(SiteId a, SiteId b) const;
  /// Raw link state by Topology::links() index (ignores endpoint
  /// liveness): bulk consumers — the routing repair rebuilding its live
  /// adjacency — combine it with site_up in one O(links) sweep instead of
  /// paying a per-pair lookup per edge.
  bool link_index_up(std::size_t link) const { return link_up_[link] != 0; }

  /// Applies one event (idempotent: re-downing a down site is a no-op).
  /// Returns true if the up/down state actually changed.
  bool apply(const FaultEvent& ev);

  /// Samples the per-send loss coin. Consumes RNG only when drop_prob > 0.
  bool sample_drop();
  /// Samples the per-send extra delay. Consumes RNG only when
  /// extra_delay_max > 0.
  Time sample_extra_delay();
  /// Samples the per-send duplication coin. Consumes RNG only when
  /// dup_prob > 0.
  bool sample_duplicate();
  /// Samples the per-send reorder jitter (0 when the coin says no jitter —
  /// the FIFO-violating extra delay). Consumes RNG only when
  /// reorder_prob > 0.
  Time sample_reorder_delay();

  std::size_t sites_down() const { return sites_down_; }
  std::size_t links_down() const { return links_down_; }
  /// Live undirected links: link up and both endpoints up.
  std::size_t live_link_count(const Topology& topo) const;

  /// Boundary of the active partition (0 when the network is whole).
  SiteId partition_boundary() const { return partition_boundary_; }
  /// Endpoints of every link the last kPartition/kHeal event flipped —
  /// the routing-repair seed set. Valid until the next apply().
  const std::vector<SiteId>& partition_changed_sites() const {
    return partition_changed_sites_;
  }

 private:
  std::size_t link_index(SiteId a, SiteId b) const;

  const Topology& topo_;
  std::vector<char> site_up_;
  std::vector<char> link_up_;  ///< by Topology::links() index
  /// (min,max) endpoint pair -> links() index, sorted for binary search.
  std::vector<std::pair<std::uint64_t, std::size_t>> link_of_pair_;
  std::size_t sites_down_ = 0;
  std::size_t links_down_ = 0;
  double drop_prob_ = 0.0;
  double extra_delay_max_ = 0.0;
  double dup_prob_ = 0.0;
  double reorder_prob_ = 0.0;
  double reorder_delay_max_ = 0.0;
  /// Cut boundary of the active partition, 0 = none. While a partition is
  /// active the cut's link states stay authoritative in link_up_ (so the
  /// routing repair sees the partition for free); kHeal restores exactly
  /// the links in partition_downed_, preserving independent link faults.
  SiteId partition_boundary_ = 0;
  std::vector<std::size_t> partition_downed_;  ///< links() indices the cut owns
  std::vector<SiteId> partition_changed_sites_;
  Rng perturb_rng_;

  friend struct snap::Access;  // checkpoints restore the live fault view
};

/// Site up/down schedule extracted from a plan, for drivers that model
/// execution-plane faults only (the comparison baselines): arrivals at a
/// down site are lost, a crash loses the site's in-flight jobs, and the
/// control plane stays reliable (see DESIGN.md §9 on why this idealization
/// is conservative *against* RTDS).
class SiteTimeline {
 public:
  struct Event {
    Time at = 0.0;
    SiteId site = 0;
    bool up = false;  ///< state after the event
  };

  SiteTimeline() = default;
  SiteTimeline(const FaultPlan& plan, std::size_t sites);

  /// Site events in plan (time) order.
  const std::vector<Event>& events() const { return events_; }

  /// State of `s` at time `t` (events at exactly `t` have been applied).
  bool up_at(SiteId s, Time t) const;

  bool empty() const { return events_.empty(); }

 private:
  std::vector<Event> events_;
  /// Per-site toggle times; state after toggles_[s][i] is (i % 2 == 0) ?
  /// down : up (sites start up, toggles alternate).
  std::vector<std::vector<Time>> toggles_;
};

}  // namespace rtds::fault
