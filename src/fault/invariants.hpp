// Runtime safety-invariant checker (DESIGN.md §12). The paper's guarantees
// are safety properties — a guaranteed job is never double-promised, locks
// never leak, the simulation clock never runs backwards — and under the
// adversarial network model (duplication, reordering, partitions) they are
// exactly what the hardening must preserve. RtdsSystem registers one
// checker per run when enabled; each hook is O(1), and violations are
// counted into RunMetrics::invariant_violations and reported through the
// obs layer (an "invariant" counter plus a trace instant). In fatal mode
// (the tests' default) the first violation throws, so a chaos soak cannot
// quietly pass with a broken invariant.
//
// Catalog:
//   monotone-time      simulator events execute at non-decreasing times
//   delivery-liveness  no message is handed to a crashed site
//   at-most-one        every job gets at most one decision (one guarantee)
//   job-conservation   decided == submitted at end of run (accepted_local +
//                      accepted_remote + rejected == arrived, exactly)
//   lock-conservation  no site still holds a PCS lock after the run drains
//   seq-monotone       per-(sender,receiver) protocol sequence numbers are
//                      strictly increasing — the dedup window's contract
//   repair-consistency after every routing repair each live route crosses a
//                      live link and agrees with its next hop's table
//                      (Bellman triangle: dist = link delay + next-hop dist)
//   shed-conservation  bounded-queue accounting balances: every enqueue is
//                      matched by a dequeue/shed/crash-clear, and node-level
//                      shed events equal the kShed rejections in RunMetrics
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/dag.hpp"
#include "net/topology.hpp"
#include "util/flat_map.hpp"
#include "util/time.hpp"

namespace rtds {
struct RunMetrics;
class RoutingTable;
}

namespace rtds::fault {
class FaultState;
}

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds::fault {

/// Process-wide enable switch (`--check-invariants` in both CLIs; tests set
/// it directly). Per-run SystemConfig::check_invariants OR-s with this, so
/// a scenario can force checking on regardless of the CLI flag.
void set_check_invariants(bool on);
bool check_invariants_enabled();

/// When fatal, the first violation throws ContractViolation instead of
/// only counting — the test-suite mode.
void set_invariants_fatal(bool on);
bool invariants_fatal();

class InvariantChecker {
 public:
  /// Post-event simulator hook: the clock must never run backwards.
  void on_event(Time now);
  /// Transport-delivery hook: `up` is the receiving node's liveness at the
  /// moment the handler would run.
  void on_delivery(SiteId to, bool up, Time now);
  /// Decision hook: at most one guarantee/rejection per job, ever.
  void on_decision(JobId job, Time now);
  void on_submitted(std::uint64_t count) { submitted_ += count; }
  /// Send hook: the per-(sender,receiver) protocol sequence stamp must be
  /// strictly increasing, crashes included — the dedup window's contract.
  void on_send_seq(SiteId from, SiteId to, std::uint64_t seq, Time now);
  /// Post-repair hook: every live route must cross a live link and agree
  /// with its next hop's table (dist = link delay + next-hop dist, hops =
  /// next-hop hops + 1). Catches under-dirtied incremental repairs.
  void on_repair(const std::vector<RoutingTable>& tables, const Topology& topo,
                 const FaultState& faults, Time now);
  /// Bounded admission-queue accounting hooks (shed-conservation).
  void on_queue_push(SiteId site, Time now);
  void on_queue_remove(SiteId site, Time now);
  void on_shed(SiteId site, Time now);
  /// End-of-run audit: job conservation, lock conservation, and shed-queue
  /// accounting (queued jobs all left the queue; node-level shed events
  /// match the kShed rejections recorded in metrics).
  void finish(const RunMetrics& metrics, std::size_t locks_held, Time now);

  std::uint64_t violations() const { return violations_; }

 private:
  void violate(const std::string& what, Time now, SiteId site);

  Time last_event_time_ = 0.0;
  std::uint64_t submitted_ = 0;
  std::uint64_t violations_ = 0;
  FlatSet<JobId> decided_;
  FlatMap<std::uint64_t, std::uint64_t> last_seq_;  ///< (from<<32|to) -> seq
  std::uint64_t queue_pushed_ = 0;
  std::uint64_t queue_removed_ = 0;
  std::uint64_t sheds_ = 0;

  friend struct snap::Access;  // checkpoints restore the audit counters
};

}  // namespace rtds::fault
