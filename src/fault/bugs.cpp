#include "fault/bugs.hpp"

namespace rtds::fault {

namespace {
InjectedBug g_bug = InjectedBug::kNone;
}  // namespace

void set_injected_bug(InjectedBug bug) { g_bug = bug; }
InjectedBug injected_bug() { return g_bug; }

}  // namespace rtds::fault
