#include "fault/invariants.hpp"

#include <sstream>

#include "core/metrics.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/routing_table.hpp"
#include "util/error.hpp"

namespace rtds::fault {

namespace {
bool g_check_enabled = false;
bool g_fatal = false;
}  // namespace

void set_check_invariants(bool on) { g_check_enabled = on; }
bool check_invariants_enabled() { return g_check_enabled; }
void set_invariants_fatal(bool on) { g_fatal = on; }
bool invariants_fatal() { return g_fatal; }

void InvariantChecker::violate(const std::string& what, Time now, SiteId site) {
  ++violations_;
  RTDS_COUNT("invariant.violations");
  if (auto* tr = obs::tracer())
    tr->instant("invariant", "violation", now, site);
  if (g_fatal)
    throw ContractViolation("invariant violated: " + what);
}

void InvariantChecker::on_event(Time now) {
  if (now < last_event_time_) {
    std::ostringstream os;
    os << "monotone-time: event at t=" << now << " after t="
       << last_event_time_;
    violate(os.str(), now, 0);
  }
  last_event_time_ = now;
}

void InvariantChecker::on_delivery(SiteId to, bool up, Time now) {
  if (!up) {
    std::ostringstream os;
    os << "delivery-liveness: message delivered to down site " << to
       << " at t=" << now;
    violate(os.str(), now, to);
  }
}

void InvariantChecker::on_decision(JobId job, Time now) {
  if (decided_.contains(job)) {
    std::ostringstream os;
    os << "at-most-one: second decision for job " << job << " at t=" << now;
    violate(os.str(), now, 0);
    return;
  }
  decided_.insert(job);
}

void InvariantChecker::on_send_seq(SiteId from, SiteId to, std::uint64_t seq,
                                   Time now) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  std::uint64_t& last = last_seq_[key];
  if (seq <= last) {
    std::ostringstream os;
    os << "seq-monotone: site " << from << " stamped seq " << seq << " to "
       << to << " after seq " << last;
    violate(os.str(), now, from);
    return;
  }
  last = seq;
}

void InvariantChecker::on_repair(const std::vector<RoutingTable>& tables,
                                 const Topology& topo,
                                 const FaultState& faults, Time now) {
  for (SiteId s = 0; s < tables.size(); ++s) {
    const RoutingTable& table = tables[s];
    for (std::size_t slot = 0; slot < table.slot_count(); ++slot) {
      const RouteLine& line = table.line_at(slot);
      if (line.dist >= kInfiniteTime) continue;  // withdrawn tombstone
      const SiteId dest = table.dest_at(slot);
      if (dest == s) continue;  // trivial self route
      const SiteId nh = line.next_hop;
      if (!faults.link_up(s, nh)) {
        std::ostringstream os;
        os << "repair-consistency: site " << s << " routes to " << dest
           << " over dead link to " << nh;
        violate(os.str(), now, s);
        continue;
      }
      if (nh == dest) {
        if (!time_eq(line.dist, topo.link_delay(s, nh)) || line.hops != 1) {
          std::ostringstream os;
          os << "repair-consistency: site " << s << " one-hop route to "
             << dest << " has dist=" << line.dist << " hops=" << line.hops
             << " but the link delay is " << topo.link_delay(s, nh);
          violate(os.str(), now, s);
        }
        continue;
      }
      // Hop-bounded routing weakens Bellman equality to an inequality:
      // the next hop's own line may use MORE hops (it has the full budget
      // again), so it is a lower bound — a route strictly below it is a
      // stale under-estimate the repair failed to re-converge.
      const RouteLine* via = tables[nh].find(dest);
      if (via == nullptr || via->dist >= kInfiniteTime) {
        std::ostringstream os;
        os << "repair-consistency: site " << s << " routes to " << dest
           << " via " << nh << " which has no route there";
        violate(os.str(), now, s);
        continue;
      }
      const Time bound = topo.link_delay(s, nh) + via->dist;
      if (!time_ge(line.dist, bound)) {
        std::ostringstream os;
        os << "repair-consistency: site " << s << " -> " << dest << " via "
           << nh << " claims dist=" << line.dist
           << " below the next hop's lower bound " << bound;
        violate(os.str(), now, s);
      }
    }
  }
}

void InvariantChecker::on_queue_push(SiteId, Time) { ++queue_pushed_; }

void InvariantChecker::on_queue_remove(SiteId site, Time now) {
  if (queue_removed_ >= queue_pushed_) {
    std::ostringstream os;
    os << "shed-conservation: site " << site
       << " dequeued a job that was never enqueued";
    violate(os.str(), now, site);
    return;
  }
  ++queue_removed_;
}

void InvariantChecker::on_shed(SiteId, Time) { ++sheds_; }

void InvariantChecker::finish(const RunMetrics& metrics,
                              std::size_t locks_held, Time now) {
  const std::uint64_t decided =
      metrics.accepted_local + metrics.accepted_remote + metrics.rejected;
  if (decided != metrics.arrived || metrics.arrived != submitted_) {
    std::ostringstream os;
    os << "job-conservation: submitted=" << submitted_ << " arrived="
       << metrics.arrived << " decided=" << decided
       << " (accepted+rejected must equal submitted exactly)";
    violate(os.str(), now, 0);
  }
  if (locks_held != 0) {
    std::ostringstream os;
    os << "lock-conservation: " << locks_held
       << " PCS lock(s) still held after the run drained";
    violate(os.str(), now, 0);
  }
  if (queue_pushed_ != queue_removed_) {
    std::ostringstream os;
    os << "shed-conservation: " << queue_pushed_ << " jobs enqueued but "
       << queue_removed_ << " left the queue (queued + shed + admitted "
       << "must be conserved)";
    violate(os.str(), now, 0);
  }
  const auto it = metrics.reject_by_reason.find(
      static_cast<int>(RejectReason::kShed));
  const std::uint64_t metric_sheds =
      it == metrics.reject_by_reason.end() ? 0 : it->second;
  if (sheds_ != metric_sheds) {
    std::ostringstream os;
    os << "shed-conservation: " << sheds_ << " shed event(s) at the nodes "
       << "but metrics recorded " << metric_sheds << " kShed rejection(s)";
    violate(os.str(), now, 0);
  }
}

}  // namespace rtds::fault
