#include "fault/invariants.hpp"

#include <sstream>

#include "core/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace rtds::fault {

namespace {
bool g_check_enabled = false;
bool g_fatal = false;
}  // namespace

void set_check_invariants(bool on) { g_check_enabled = on; }
bool check_invariants_enabled() { return g_check_enabled; }
void set_invariants_fatal(bool on) { g_fatal = on; }
bool invariants_fatal() { return g_fatal; }

void InvariantChecker::violate(const std::string& what, Time now, SiteId site) {
  ++violations_;
  RTDS_COUNT("invariant.violations");
  if (auto* tr = obs::tracer())
    tr->instant("invariant", "violation", now, site);
  if (g_fatal)
    throw ContractViolation("invariant violated: " + what);
}

void InvariantChecker::on_event(Time now) {
  if (now < last_event_time_) {
    std::ostringstream os;
    os << "monotone-time: event at t=" << now << " after t="
       << last_event_time_;
    violate(os.str(), now, 0);
  }
  last_event_time_ = now;
}

void InvariantChecker::on_delivery(SiteId to, bool up, Time now) {
  if (!up) {
    std::ostringstream os;
    os << "delivery-liveness: message delivered to down site " << to
       << " at t=" << now;
    violate(os.str(), now, to);
  }
}

void InvariantChecker::on_decision(JobId job, Time now) {
  if (decided_.contains(job)) {
    std::ostringstream os;
    os << "at-most-one: second decision for job " << job << " at t=" << now;
    violate(os.str(), now, 0);
    return;
  }
  decided_.insert(job);
}

void InvariantChecker::finish(const RunMetrics& metrics,
                              std::size_t locks_held, Time now) {
  const std::uint64_t decided =
      metrics.accepted_local + metrics.accepted_remote + metrics.rejected;
  if (decided != metrics.arrived || metrics.arrived != submitted_) {
    std::ostringstream os;
    os << "job-conservation: submitted=" << submitted_ << " arrived="
       << metrics.arrived << " decided=" << decided
       << " (accepted+rejected must equal submitted exactly)";
    violate(os.str(), now, 0);
  }
  if (locks_held != 0) {
    std::ostringstream os;
    os << "lock-conservation: " << locks_held
       << " PCS lock(s) still held after the run drained";
    violate(os.str(), now, 0);
  }
}

}  // namespace rtds::fault
