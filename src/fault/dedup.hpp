// Sliding anti-replay window for idempotent message delivery (DESIGN.md
// §12). Senders stamp each protocol message with a per-(sender, receiver)
// sequence number; the receiver keeps one DedupWindow per peer and drops
// any sequence it has already accepted. The IPsec-style 64-bit bitmap
// tolerates reordering up to kWindow positions behind the newest sequence;
// anything older is conservatively treated as a duplicate (under the
// retransmit scheme every live resend carries a *fresh* sequence, so a
// too-old original can only be a stale network duplicate).
#pragma once

#include <cstdint>

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds::fault {

class DedupWindow {
 public:
  static constexpr std::uint64_t kWindow = 64;

  /// True iff `seq` has never been accepted: fresh sequences advance the
  /// window, in-window gaps are back-filled, and duplicates or sequences
  /// older than the window are rejected. seq 0 is reserved for unstamped
  /// messages and must be filtered by the caller.
  bool accept(std::uint64_t seq) {
    if (max_seq_ == 0) {  // first stamped message from this peer
      max_seq_ = seq;
      mask_ = 1;
      return true;
    }
    if (seq > max_seq_) {
      const std::uint64_t shift = seq - max_seq_;
      mask_ = shift >= kWindow ? 0 : mask_ << shift;
      mask_ |= 1;
      max_seq_ = seq;
      return true;
    }
    const std::uint64_t behind = max_seq_ - seq;
    if (behind >= kWindow) return false;
    const std::uint64_t bit = std::uint64_t{1} << behind;
    if (mask_ & bit) return false;
    mask_ |= bit;
    return true;
  }

  std::uint64_t max_seq() const { return max_seq_; }

 private:
  std::uint64_t max_seq_ = 0;  ///< highest sequence accepted so far
  std::uint64_t mask_ = 0;     ///< bit i set = (max_seq_ - i) accepted

  friend struct snap::Access;  // checkpoints restore the window verbatim
};

}  // namespace rtds::fault
